// Micro-benchmarks (google-benchmark) of the compiler-side components:
// MII computation, SMS node ordering, full SMS and TMS scheduling, and
// the SpMT simulator's per-iteration throughput.
#include <benchmark/benchmark.h>

#include "codegen/kernel_program.hpp"
#include "sched/mii.hpp"
#include "sched/order.hpp"
#include "sched/sms.hpp"
#include "sched/tms.hpp"
#include "spmt/address.hpp"
#include "spmt/sim.hpp"
#include "spmt/single_core.hpp"
#include "workloads/builder.hpp"
#include "workloads/figure1.hpp"

namespace {

using namespace tms;

ir::Loop sized_loop(int instrs, std::uint64_t seed) {
  workloads::LoopShape s;
  s.name = "micro";
  s.target_instrs = instrs;
  s.rec_circuit_delay = instrs / 4;
  s.rec_circuit_len = 4;
  s.accumulators = 2;
  s.feeders = 2;
  s.mem_deps = 2;
  s.seed = seed;
  return workloads::build_loop(s);
}

void BM_MinII(benchmark::State& state) {
  const ir::Loop loop = sized_loop(static_cast<int>(state.range(0)), 42);
  const machine::MachineModel mach;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::min_ii(loop, mach));
  }
}
BENCHMARK(BM_MinII)->Arg(16)->Arg(64)->Arg(160);

void BM_NodeOrder(benchmark::State& state) {
  const ir::Loop loop = sized_loop(static_cast<int>(state.range(0)), 43);
  const machine::MachineModel mach;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::sms_node_order(loop, mach));
  }
}
BENCHMARK(BM_NodeOrder)->Arg(16)->Arg(64)->Arg(160);

void BM_SmsSchedule(benchmark::State& state) {
  const ir::Loop loop = sized_loop(static_cast<int>(state.range(0)), 44);
  const machine::MachineModel mach;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::sms_schedule(loop, mach));
  }
}
BENCHMARK(BM_SmsSchedule)->Arg(16)->Arg(64)->Arg(160);

void BM_TmsSchedule(benchmark::State& state) {
  const ir::Loop loop = sized_loop(static_cast<int>(state.range(0)), 45);
  const machine::MachineModel mach;
  const machine::SpmtConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::tms_schedule(loop, mach, cfg));
  }
}
BENCHMARK(BM_TmsSchedule)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_TmsFixedThresholds(benchmark::State& state) {
  const ir::Loop loop = sized_loop(static_cast<int>(state.range(0)), 46);
  const machine::MachineModel mach;
  const machine::SpmtConfig cfg;
  const int mii = sched::min_ii(loop, mach);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::tms_try_thresholds(loop, mach, cfg, mii + 4, 2 * cfg.min_c_delay(), 1.0));
  }
}
BENCHMARK(BM_TmsFixedThresholds)->Arg(16)->Arg(64)->Arg(160);

void BM_SpmtSimulate(benchmark::State& state) {
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel mach = workloads::figure1_machine();
  const machine::SpmtConfig cfg;
  const auto sms = sched::sms_schedule(loop, mach);
  const auto kp = codegen::lower_kernel(sms->schedule, cfg);
  const spmt::AddressStreams streams = spmt::default_streams(loop, 42);
  spmt::SpmtOptions opts;
  opts.iterations = state.range(0);
  opts.keep_memory = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spmt::run_spmt(loop, kp, cfg, streams, opts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SpmtSimulate)->Arg(1000)->Arg(10000);

void BM_SingleCore(benchmark::State& state) {
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel mach;
  const machine::SpmtConfig cfg;
  const spmt::AddressStreams streams = spmt::default_streams(loop, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        spmt::run_single_threaded(loop, mach, cfg, streams, state.range(0)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SingleCore)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
