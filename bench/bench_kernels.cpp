// Classic kernel comparison: SMS vs TMS vs single-threaded on the
// Livermore-style kernel collection — recognisable loops complementing
// the calibrated synthetic suite. Shows where modulo scheduling on SpMT
// pays off (DOALL, wide expression trees, sliding windows, speculative
// scatter) and where recurrences cap it (prefix sum, tridiagonal).
#include <cstdio>

#include "harness.hpp"
#include "ir/unroll.hpp"
#include "support/table.hpp"
#include "workloads/kernels.hpp"

using namespace tms;

int main(int argc, char** argv) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const std::int64_t iters = bench::iterations_arg(argc, argv, 2000);
  std::printf("=== Classic kernels: SMS vs TMS vs single-threaded (%lld iters) ===\n\n",
              static_cast<long long>(iters));

  support::TextTable t({"kernel", "MII", "SMS II/Cd", "TMS II/Cd", "single c/i", "SMS c/i",
                        "TMS c/i", "TMSx4 c/i", "TMS vs SMS", "TMSx4 vs single"});
  using TT = support::TextTable;
  std::uint64_t seed = 1001;
  for (workloads::Kernel& k : workloads::classic_kernels()) {
    // The paper unrolls its smallest loops 4x before scheduling ("two
    // selected loops in art ... are thus unrolled four times"): at these
    // kernel sizes the per-iteration communication floor would otherwise
    // dominate. Report both granularities.
    const ir::Loop unrolled = ir::unroll(k.loop, 4);
    bench::LoopEval e = bench::schedule_loop("kernels", std::move(k.loop), mach, cfg);
    bench::LoopEval e4 = bench::schedule_loop("kernels", unrolled, mach, cfg);
    const bench::SimPair p = bench::simulate_pair(e, cfg, iters, seed);
    const spmt::SpmtStats t4 = bench::simulate_tms(e4, cfg, iters / 4, seed);
    const std::int64_t single = bench::simulate_single(e, mach, cfg, iters, seed);
    ++seed;
    const double di = static_cast<double>(iters);
    const double tms4_ci = static_cast<double>(t4.total_cycles) / (di / 4.0 * 4.0);
    t.add_row({e.loop->name(), std::to_string(e.m_sms.mii),
               std::to_string(e.m_sms.ii) + "/" + std::to_string(e.m_sms.c_delay),
               std::to_string(e.m_tms.ii) + "/" + std::to_string(e.m_tms.c_delay),
               TT::num(static_cast<double>(single) / di, 2),
               TT::num(static_cast<double>(p.sms.total_cycles) / di, 2),
               TT::num(static_cast<double>(p.tms.total_cycles) / di, 2),
               TT::num(tms4_ci, 2),
               TT::pct(100.0 * (static_cast<double>(p.sms.total_cycles) /
                                    static_cast<double>(p.tms.total_cycles) -
                                1.0)),
               TT::pct(100.0 * (static_cast<double>(single) / di / tms4_ci - 1.0))});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "reading: at 5-12 instructions the per-thread communication floor dominates, so\n"
      "un-unrolled kernels lose to a dynamic single core — exactly why the paper unrolls\n"
      "its smallest art loops 4x. Unrolling recovers the window/speculation kernels\n"
      "(fir4, scatter); pure recurrences (first_sum, tridiag) remain bounded by RecII\n"
      "and belong on one core (or need the outer-loop strategies of src/nest). TMS\n"
      "still beats SMS nearly everywhere — the paper's actual claim.\n");
  return 0;
}
