// Table 1 — Architecture simulated.
//
// Echoes the configuration and verifies, by direct microprobes of the
// simulator substrate, that each modelled overhead actually exhibits the
// configured latency: cache hit/miss chains, ring SEND/RECV latency,
// spawn/commit pipelining on a trivial loop, and the invalidation charge
// on a forced misspeculation.
#include <cstdio>

#include "codegen/kernel_program.hpp"
#include "cost/cost_model.hpp"
#include "harness.hpp"
#include "spmt/address.hpp"
#include "spmt/cache.hpp"
#include "support/table.hpp"

using namespace tms;

namespace {

/// Steady-state cycles/iteration of a loop under a hand-made schedule.
double per_iter(const ir::Loop& loop, const sched::Schedule& s, const machine::SpmtConfig& cfg,
                std::int64_t n) {
  const spmt::AddressStreams streams = spmt::default_streams(loop, 7);
  const codegen::KernelProgram kp = codegen::lower_kernel(s, cfg);
  spmt::SpmtOptions opts;
  opts.iterations = n;
  opts.keep_memory = false;
  const auto r1 = spmt::run_spmt(loop, kp, cfg, streams, opts);
  opts.iterations = 2 * n;
  const auto r2 = spmt::run_spmt(loop, kp, cfg, streams, opts);
  return static_cast<double>(r2.stats.total_cycles - r1.stats.total_cycles) /
         static_cast<double>(n);
}

}  // namespace

int main() {
  machine::SpmtConfig cfg;
  machine::MachineModel mach;
  std::printf("=== Table 1: architecture simulated ===\n\n");

  support::TextTable t({"Parameter", "Configured", "Measured (microprobe)"});

  // Memory hierarchy probes.
  {
    spmt::MemoryHierarchy h(cfg, cfg.ncore);
    const int cold = h.access_latency(0, 0xA000, false);
    const int warm = h.access_latency(0, 0xA000, false);
    const int l2 = h.access_latency(1, 0xA000, false);
    t.add_row({"L1 D-cache hit", std::to_string(cfg.l1d_hit) + " cycles", std::to_string(warm)});
    t.add_row({"L2 hit (via other core's L1 miss)",
               std::to_string(cfg.l1d_hit + cfg.l2_hit) + " cycles", std::to_string(l2)});
    t.add_row({"L2 miss (memory)", std::to_string(cfg.l1d_hit + cfg.l2_miss) + " cycles",
               std::to_string(cold)});
  }

  // SEND/RECV latency: comm_latency for one hop must equal C_reg_com.
  t.add_row({"SEND/RECV latency", std::to_string(cfg.c_reg_com) + " cycles",
             std::to_string(cfg.comm_latency(1))});

  // Spawn/commit floor: single 1-cycle instruction per iteration; the
  // steady state rate is the cost model's floor max(C_spn, C_ci, T_lb/n).
  {
    ir::Loop loop("trivial");
    loop.add_instr(ir::Opcode::kIAdd);
    sched::Schedule s(loop, mach, 1);
    s.set_slot(0, 0);
    const double rate = per_iter(loop, s, cfg, 4000);
    const double expect = cost::per_iter_nomiss(1, 0, cfg);
    t.add_row({"Spawn overhead (pipeline floor)",
               support::TextTable::num(expect, 2) + " cycles/iter",
               support::TextTable::num(rate, 2)});
  }

  // Invalidation overhead: a permanently violating dependence pays
  // roughly II + C_inv extra per misspeculated thread.
  {
    ir::Loop loop("violate");
    const ir::NodeId st = loop.add_instr(ir::Opcode::kStore);
    const ir::NodeId ld = loop.add_instr(ir::Opcode::kLoad);
    loop.add_mem_flow(st, ld, 1, 1.0);
    sched::Schedule s(loop, mach, 4);
    s.set_slot(st, 3);
    s.set_slot(ld, 0);
    const spmt::AddressStreams streams = spmt::default_streams(loop, 3);
    const codegen::KernelProgram kp = codegen::lower_kernel(s, cfg);
    spmt::SpmtOptions opts;
    opts.iterations = 2000;
    opts.keep_memory = false;
    const auto r = spmt::run_spmt(loop, kp, cfg, streams, opts);
    const double per_miss =
        r.stats.misspeculations > 0
            ? static_cast<double>(r.stats.squashed_cycles) /
                  static_cast<double>(r.stats.misspeculations)
            : 0.0;
    t.add_row({"Invalidation overhead (per squash, incl. wasted exec)",
               ">= " + std::to_string(cfg.c_inv) + " cycles",
               support::TextTable::num(per_miss, 1)});
  }

  t.add_row({"Fetch/issue/commit width", "4, out-of-order", "4 (MachineModel)"});
  t.add_row({"Cores (ring)", std::to_string(cfg.ncore), "-"});
  t.add_row({"Spawn / commit overheads",
             std::to_string(cfg.c_spn) + " / " + std::to_string(cfg.c_ci) + " cycles", "-"});
  t.add_row({"Speculative write buffer", std::to_string(cfg.spec_write_buffer_entries) +
                                             " entries, double-buffered",
             "-"});
  std::printf("%s\n", t.render().c_str());
  return 0;
}
