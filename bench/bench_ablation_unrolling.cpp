// Ablation — thread granularity via loop unrolling (the paper's stated
// future work, Section 6).
//
// Unrolling by u makes each thread execute u source iterations: most
// distance-1 dependences become intra-thread (less communication), while
// threads get coarser (II grows ~u-fold, so fewer of them overlap). The
// sweet spot depends on how communication-bound the loop is.
#include <cstdio>

#include "codegen/kernel_program.hpp"
#include "harness.hpp"
#include "ir/unroll.hpp"
#include "sched/postpass.hpp"
#include "support/table.hpp"
#include "workloads/doacross.hpp"
#include "workloads/figure1.hpp"

using namespace tms;

namespace {

void sweep(const char* title, const ir::Loop& base, const machine::MachineModel& mach,
           std::int64_t src_iters) {
  machine::SpmtConfig cfg;
  std::printf("--- %s (%lld source iterations) ---\n", title, (long long)src_iters);
  support::TextTable t({"unroll", "II", "II/src-iter", "C_delay", "pairs/src-iter",
                        "cycles", "cycles/src-iter"});
  using TT = support::TextTable;
  for (const int u : {1, 2, 4}) {
    const ir::Loop lu = ir::unroll(base, u);
    bench::LoopEval e = bench::schedule_loop("unroll", lu, mach, cfg);
    const sched::CommPlan plan = sched::plan_communication(e.tms->schedule);
    const std::int64_t iters = src_iters / u;
    const spmt::SpmtStats s = bench::simulate_tms(e, cfg, iters, 17);
    t.add_row({std::to_string(u), std::to_string(e.m_tms.ii),
               TT::num(static_cast<double>(e.m_tms.ii) / u, 1),
               std::to_string(e.m_tms.c_delay),
               TT::num(static_cast<double>(plan.comm_pairs_per_iter) / u, 2),
               std::to_string(s.total_cycles),
               TT::num(static_cast<double>(s.total_cycles) / static_cast<double>(src_iters), 2)});
  }
  std::printf("%s\n", t.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t iters = bench::iterations_arg(argc, argv, 2000);
  std::printf("=== Ablation: thread granularity via unrolling ===\n\n");
  sweep("Figure-1 motivating loop", workloads::figure1_loop(), workloads::figure1_machine(),
        iters);
  machine::MachineModel mach;
  auto sel = workloads::doacross_selected_loops();
  sweep("art selected loop", sel[0].loop, mach, iters);
  return 0;
}
