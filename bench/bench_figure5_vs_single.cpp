// Figure 5 — Speedups of TMS over single-threaded code for the selected
// DOACROSS loops.
//
// Each selected loop runs single-threaded on one core (the original,
// unpipelined body under a dynamic 4-wide scheduler) and TMS-scheduled on
// the quad-core SpMT machine. Loop and program speedups are reported per
// benchmark; expected shape: loop speedups 37..210% (avg ~73%), largest
// program speedup on equake (~24%) thanks to its 58.5% coverage.
#include <cstdio>
#include <map>

#include "harness.hpp"
#include "support/table.hpp"

using namespace tms;

int main(int argc, char** argv) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const std::int64_t iters = bench::iterations_arg(argc, argv, 2000);
  std::printf(
      "=== Figure 5: speedups of TMS over single-threaded code (%lld iters/loop) ===\n\n",
      static_cast<long long>(iters));

  const std::vector<bench::LoopEval> sel = bench::schedule_selected(mach, cfg);

  struct Agg {
    std::vector<double> speedup;
    std::vector<double> coverage;
  };
  std::map<std::string, Agg> per_bench;
  std::vector<std::string> order;
  double all_speedups = 0.0;
  int all_n = 0;

  std::uint64_t seed = 77;
  for (const bench::LoopEval& e : sel) {
    const std::int64_t single = bench::simulate_single(e, mach, cfg, iters, seed);
    const spmt::SpmtStats tms = bench::simulate_tms(e, cfg, iters, seed);
    ++seed;
    if (per_bench.find(e.benchmark) == per_bench.end()) order.push_back(e.benchmark);
    const double s = static_cast<double>(single) / static_cast<double>(tms.total_cycles);
    per_bench[e.benchmark].speedup.push_back(s);
    per_bench[e.benchmark].coverage.push_back(e.loop->coverage());
    all_speedups += (s - 1.0) * 100.0;
    ++all_n;
    std::printf("  %-12s single=%9lld cycles   TMS=%9lld cycles   speedup %+6.1f%%\n",
                e.loop->name().c_str(), static_cast<long long>(single),
                static_cast<long long>(tms.total_cycles), (s - 1.0) * 100.0);
  }
  std::printf("\n");

  support::TextTable t({"Benchmark", "Loop speedup", "Program speedup"});
  using TT = support::TextTable;
  double prog_sum = 0.0;
  for (const std::string& name : order) {
    const Agg& a = per_bench[name];
    const bench::AggregateSpeedup s = bench::aggregate_speedups(a.speedup, a.coverage);
    prog_sum += s.program_speedup_pct;
    t.add_row({name, TT::pct(s.loop_speedup_pct), TT::pct(s.program_speedup_pct)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("average loop speedup %.1f%%, average program speedup %.1f%%\n",
              all_speedups / all_n, prog_sum / static_cast<double>(order.size()));
  std::printf("paper: loop speedups 37..210%% (avg 73%%); program max 24%% (equake), avg 12%%\n");
  return 0;
}
