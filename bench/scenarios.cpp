#include "scenarios.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include "codegen/kernel_program.hpp"
#include "driver/batch.hpp"
#include "driver/sim_sweep.hpp"
#include "harness.hpp"
#include "machine/machine.hpp"
#include "machine/spmt_config.hpp"
#include "router/cluster.hpp"
#include "sched/tms.hpp"
#include "serve/client.hpp"
#include "serve/message.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "support/assert.hpp"
#include "support/json.hpp"
#include "support/json_parse.hpp"
#include "workloads/builder.hpp"
#include "workloads/doacross.hpp"
#include "workloads/kernels.hpp"
#include "workloads/spec_suite.hpp"

namespace tms::bench {

namespace {

namespace fs = std::filesystem;

double elapsed_ns(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - start)
      .count();
}

/// The pinned workload set: the first `per_benchmark` figure-4 suite
/// loops of each benchmark (deterministic — shapes derive from the
/// spec's fixed seed) plus the eight classic kernels. Taking a prefix
/// rather than the whole 778-loop suite keeps one benchgate run in CI
/// territory while still spanning every benchmark's loop family.
std::vector<ir::Loop> pinned_loops(int per_benchmark) {
  std::vector<ir::Loop> loops;
  for (const workloads::BenchmarkSpec& spec : workloads::spec_fp2000_suite()) {
    int taken = 0;
    for (workloads::ShapedLoop& s : workloads::benchmark_shapes(spec)) {
      if (taken++ >= per_benchmark) break;
      loops.push_back(workloads::build_loop(s.shape));
    }
  }
  for (workloads::Kernel& k : workloads::classic_kernels()) {
    loops.push_back(std::move(k.loop));
  }
  return loops;
}

}  // namespace

ScenarioOptions quick_options() {
  ScenarioOptions o;
  o.sched_warmup_rounds = 0;
  o.sched_sample_rounds = 1;
  o.shapes_per_benchmark = 1;
  o.batch_warmup = 0;
  o.batch_rounds = 1;
  o.batch_shapes_per_benchmark = 2;
  o.serve_warmup = 4;
  o.serve_requests = 16;
  o.cluster_loops = 24;
  o.cluster_cache_capacity = 16;
  o.cluster_rounds = 1;
  o.cluster_clients = 2;
  o.sim_loops = 2;
  o.sim_iterations = 400;
  o.policy_loops = 2;
  o.policy_iterations = 400;
  return o;
}

double ScenarioResult::get(const std::string& key, double fallback) const {
  for (const auto& [k, v] : values) {
    if (k == key) return v;
  }
  return fallback;
}

ScenarioResult run_sched_single(const ScenarioOptions& opts) {
  const machine::MachineModel mach;
  const machine::SpmtConfig cfg;
  const std::vector<ir::Loop> loops = pinned_loops(opts.shapes_per_benchmark);

  std::vector<double> ns;
  ns.reserve(static_cast<std::size_t>(opts.sched_sample_rounds) * loops.size());
  const int rounds = opts.sched_warmup_rounds + opts.sched_sample_rounds;
  for (int round = 0; round < rounds; ++round) {
    for (const ir::Loop& loop : loops) {
      const auto start = std::chrono::steady_clock::now();
      const auto result = sched::tms_schedule(loop, mach, cfg);
      const double t = elapsed_ns(start);
      TMS_ASSERT_MSG(result.has_value(), "TMS failed on a pinned scenario loop");
      if (round >= opts.sched_warmup_rounds) ns.push_back(t);
    }
  }

  const SteadyTiming t = summarise_steady(ns, /*warmup=*/0);
  ScenarioResult r;
  r.name = "sched_single";
  r.values = {
      {"schedule_us_p50", t.p50_ns / 1e3}, {"schedule_us_p90", t.p90_ns / 1e3},
      {"schedule_us_p99", t.p99_ns / 1e3}, {"schedule_us_mean", t.mean_ns / 1e3},
      {"schedule_us_max", t.max_ns / 1e3}, {"loops", static_cast<double>(loops.size())},
      {"samples", static_cast<double>(t.samples)},
  };
  return r;
}

ScenarioResult run_batch_throughput(const ScenarioOptions& opts) {
  const machine::MachineModel mach;
  const machine::SpmtConfig cfg;

  std::vector<driver::BatchJob> jobs;
  for (ir::Loop& loop : pinned_loops(opts.batch_shapes_per_benchmark)) {
    driver::BatchJob j;
    j.name = loop.name();
    j.loop = std::move(loop);
    j.cfg = cfg;
    j.scheduler = "tms";
    jobs.push_back(std::move(j));
  }

  driver::BatchOptions bopts;
  bopts.jobs = opts.jobs;
  bopts.validate = true;  // the tmsbatch default: schedule + independent check

  std::vector<double> round_ns;
  int failures = 0;
  const int rounds = opts.batch_warmup + opts.batch_rounds;
  for (int round = 0; round < rounds; ++round) {
    const auto start = std::chrono::steady_clock::now();
    const driver::BatchReport report = driver::run_batch(jobs, mach, bopts, nullptr);
    const double t = elapsed_ns(start);
    failures += static_cast<int>(jobs.size()) - report.count(driver::JobStatus::kOk);
    if (round >= opts.batch_warmup) round_ns.push_back(t);
  }
  TMS_ASSERT_MSG(failures == 0, "batch scenario had failing jobs");

  const double p50_s = sample_quantile(round_ns, 0.5) / 1e9;
  ScenarioResult r;
  r.name = "batch_throughput";
  r.values = {
      {"jobs_per_sec", p50_s > 0.0 ? static_cast<double>(jobs.size()) / p50_s : 0.0},
      {"batch_ms_p50", p50_s * 1e3},
      {"jobs", static_cast<double>(jobs.size())},
      {"rounds", static_cast<double>(round_ns.size())},
  };
  return r;
}

ScenarioResult run_serve_e2e(const ScenarioOptions& opts) {
  const machine::MachineModel mach;

  // Socket in a scratch dir under the cwd (short enough for sun_path),
  // torn down with the scenario.
  std::string dir = opts.socket_dir;
  if (dir.empty()) dir = "benchgate_sock." + std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string socket = dir + "/s";

  // No ScheduleCache: every request must run the real pipeline, so the
  // scenario tracks scheduler speed, not cache-hit transport time.
  serve::CompileService service(mach, nullptr, serve::ServiceOptions{});
  serve::SocketServer server(service, [&] {
    serve::ServerOptions so;
    so.unix_path = socket;
    return so;
  }());
  const auto start_err = server.start();
  TMS_ASSERT_MSG(!start_err.has_value(), "serve scenario: server failed to start");

  serve::Client client;
  const auto conn_err = client.connect_unix(socket);
  TMS_ASSERT_MSG(!conn_err.has_value(), "serve scenario: client failed to connect");

  std::vector<workloads::Kernel> kernels = workloads::classic_kernels();
  std::vector<double> ns;
  ns.reserve(static_cast<std::size_t>(opts.serve_requests));
  int failures = 0;
  const int total = opts.serve_warmup + opts.serve_requests;
  for (int i = 0; i < total; ++i) {
    serve::Request req;
    req.id = static_cast<std::uint64_t>(i) + 1;
    req.scheduler = "tms";
    req.loop = kernels[static_cast<std::size_t>(i) % kernels.size()].loop;
    const auto start = std::chrono::steady_clock::now();
    const auto resp = client.compile(req);
    const double t = elapsed_ns(start);
    const auto* ok = std::get_if<serve::Response>(&resp);
    if (ok == nullptr || !ok->ok) ++failures;
    if (i >= opts.serve_warmup) ns.push_back(t);
  }
  client.close();
  server.drain();
  service.shutdown();
  fs::remove_all(dir);
  TMS_ASSERT_MSG(failures == 0, "serve scenario had failing requests");

  const SteadyTiming t = summarise_steady(ns, /*warmup=*/0);
  ScenarioResult r;
  r.name = "serve_e2e";
  r.values = {
      {"request_us_p50", t.p50_ns / 1e3},  {"request_us_p90", t.p90_ns / 1e3},
      {"request_us_p99", t.p99_ns / 1e3},  {"request_us_mean", t.mean_ns / 1e3},
      {"requests", static_cast<double>(t.samples)},
  };
  return r;
}

ScenarioResult run_cluster_scaling(const ScenarioOptions& opts) {
  const machine::MachineModel mach;

  // Working set: the `cluster_loops` largest pinned loops (stable sort,
  // so the set is deterministic). Big loops make a cache miss cost a
  // real schedule rather than a socket round trip.
  std::vector<ir::Loop> all = pinned_loops((opts.cluster_loops + 13) / 14 + 2);
  std::stable_sort(all.begin(), all.end(), [](const ir::Loop& a, const ir::Loop& b) {
    return a.num_instrs() > b.num_instrs();
  });
  const std::size_t want = static_cast<std::size_t>(std::max(opts.cluster_loops, 1));
  if (all.size() > want) all.resize(want);
  const std::vector<ir::Loop>& loops = all;
  const std::size_t working_set = loops.size();
  const std::size_t capacity = opts.cluster_cache_capacity != 0 ? opts.cluster_cache_capacity
                                                                : working_set * 3 / 4;

  std::string dir = opts.socket_dir;
  if (dir.empty()) dir = "benchgate_sock." + std::to_string(::getpid());

  const int clients = std::max(opts.cluster_clients, 1);
  const long long measured = static_cast<long long>(opts.cluster_rounds) *
                             static_cast<long long>(working_set);

  // One topology: bring the cluster up, one warm pass over the whole
  // working set, then time `cluster_rounds` further passes.
  auto run_topology = [&](int backends, double& hit_rate) -> double {
    fs::remove_all(dir);
    fs::create_directories(dir);
    router::LocalClusterOptions copts;
    copts.backends = backends;
    copts.threads_per_backend = 1;
    copts.cache_capacity = capacity;
    // Keys are owned by exactly one shard here, so peer fill could only
    // add probe traffic; off keeps this a pure capacity measurement.
    copts.peer_fill = false;
    copts.dir = dir;
    router::LocalCluster lc(mach, copts);
    const auto start_err = lc.start();
    TMS_ASSERT_MSG(!start_err.has_value(), "cluster scenario: cluster failed to start");

    std::atomic<long long> failures{0};
    std::atomic<long long> hits{0};
    auto run_pass = [&](long long nreq) {
      std::atomic<long long> next{0};
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(clients));
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&] {
          serve::Client client;
          if (client.connect_unix(lc.router_socket()).has_value()) {
            failures.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          for (;;) {
            const long long k = next.fetch_add(1, std::memory_order_relaxed);
            if (k >= nreq) break;
            serve::Request req;
            req.id = static_cast<std::uint64_t>(k) + 1;
            req.scheduler = "tms";
            req.loop = loops[static_cast<std::size_t>(k) % working_set];
            const auto resp = client.compile(req);
            const auto* ok = std::get_if<serve::Response>(&resp);
            if (ok == nullptr || !ok->ok) {
              failures.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            if (ok->cache_hit) hits.fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
      for (std::thread& t : threads) t.join();
    };

    run_pass(static_cast<long long>(working_set));  // warm pass, untimed
    hits.store(0, std::memory_order_relaxed);
    const auto start = std::chrono::steady_clock::now();
    run_pass(measured);
    const double seconds = elapsed_ns(start) / 1e9;
    lc.stop();
    fs::remove_all(dir);
    TMS_ASSERT_MSG(failures.load() == 0, "cluster scenario had failing requests");
    hit_rate = measured > 0
                   ? static_cast<double>(hits.load()) / static_cast<double>(measured)
                   : 0.0;
    return seconds > 0.0 ? static_cast<double>(measured) / seconds : 0.0;
  };

  double hit_1 = 0.0;
  double hit_2 = 0.0;
  double hit_4 = 0.0;
  const double rps_1 = run_topology(1, hit_1);
  const double rps_2 = run_topology(2, hit_2);
  const double rps_4 = run_topology(4, hit_4);

  ScenarioResult r;
  r.name = "cluster_scaling";
  r.values = {
      {"rps_1", rps_1},
      {"rps_2", rps_2},
      {"rps_4", rps_4},
      {"speedup_2x", rps_1 > 0.0 ? rps_2 / rps_1 : 0.0},
      {"speedup_4x", rps_1 > 0.0 ? rps_4 / rps_1 : 0.0},
      {"hit_rate_1", hit_1},
      {"hit_rate_2", hit_2},
      {"hit_rate_4", hit_4},
      {"loops", static_cast<double>(working_set)},
      {"cache_capacity", static_cast<double>(capacity)},
      {"requests_per_point", static_cast<double>(measured)},
  };
  return r;
}

ScenarioResult run_sim_scaling(const ScenarioOptions& opts) {
  const machine::MachineModel mach;

  // The Table-3 DOACROSS loops: memory-dependence-heavy by construction
  // (lucas carries a probability-1.0 loop-carried flow), so their loads
  // actually alias committed stores and the engines' store-history
  // machinery — the part the rearchitecture replaced — is on the hot
  // path, not just the per-op walk both engines share.
  std::vector<ir::Loop> loops;
  for (workloads::SelectedLoop& sel : workloads::doacross_selected_loops()) {
    loops.push_back(std::move(sel.loop));
    if (static_cast<int>(loops.size()) >= std::max(opts.sim_loops, 1)) break;
  }
  TMS_ASSERT_MSG(!loops.empty(), "sim scenario: no DOACROSS loops");

  ScenarioResult r;
  r.name = "sim_scaling";
  for (const int ncore : {16, 32, 64}) {
    std::vector<driver::SimSweepPoint> event_points;
    std::vector<driver::SimSweepPoint> legacy_points;
    for (const ir::Loop& loop : loops) {
      machine::SpmtConfig cfg;
      cfg.ncore = ncore;
      const auto tms = sched::tms_schedule(loop, mach, cfg);
      TMS_ASSERT_MSG(tms.has_value(), "sim scenario: TMS failed on a pinned loop");
      driver::SimSweepPoint p;
      p.name = loop.name() + ".ncore" + std::to_string(ncore);
      p.loop = loop;
      p.kp = codegen::lower_kernel(tms->schedule, cfg);
      p.cfg = cfg;
      p.sim.iterations = opts.sim_iterations;
      p.sim.keep_memory = false;  // timing study; semantics are the tests' job
      p.sim.engine = spmt::SimEngine::kEventDriven;
      event_points.push_back(p);
      p.sim.engine = spmt::SimEngine::kLegacyStepper;
      legacy_points.push_back(std::move(p));
    }

    // The legacy side is the old world — one monolithic walker, no sweep
    // parallelism — so it runs on one thread; the event side gets the
    // full sweep driver. On a single-core runner both are serial and the
    // ratio is pure engine algorithmics.
    driver::SimSweepOptions legacy_sweep;
    legacy_sweep.threads = 1;
    driver::SimSweepOptions event_sweep;
    event_sweep.threads = opts.sim_jobs;

    const auto legacy_start = std::chrono::steady_clock::now();
    const auto legacy = driver::run_sim_sweep(legacy_points, legacy_sweep);
    const double legacy_ms = elapsed_ns(legacy_start) / 1e6;
    const auto event_start = std::chrono::steady_clock::now();
    const auto event = driver::run_sim_sweep(event_points, event_sweep);
    const double event_ms = elapsed_ns(event_start) / 1e6;

    for (std::size_t i = 0; i < legacy.size(); ++i) {
      TMS_ASSERT_MSG(legacy[i].ok && event[i].ok, "sim scenario: a sweep point failed");
      TMS_ASSERT_MSG(legacy[i].stats.total_cycles == event[i].stats.total_cycles &&
                         legacy[i].stats.misspeculations == event[i].stats.misspeculations &&
                         legacy[i].stats.threads_committed == event[i].stats.threads_committed,
                     "sim scenario: engines diverged — the speedup would be meaningless");
    }

    const std::string suffix = "_ncore" + std::to_string(ncore);
    r.values.emplace_back("legacy_ms" + suffix, legacy_ms);
    r.values.emplace_back("event_ms" + suffix, event_ms);
    r.values.emplace_back("speedup" + suffix, event_ms > 0.0 ? legacy_ms / event_ms : 0.0);
  }
  r.values.emplace_back("loops", static_cast<double>(loops.size()));
  r.values.emplace_back("iterations", static_cast<double>(opts.sim_iterations));
  return r;
}

ScenarioResult run_policy_compare(const ScenarioOptions& opts) {
  const machine::MachineModel mach;

  // Same DOACROSS family as sim_scaling: loop-carried register flows are
  // what the policies price differently, so DOALL loops would show
  // nothing but the bus charge.
  std::vector<ir::Loop> loops;
  for (workloads::SelectedLoop& sel : workloads::doacross_selected_loops()) {
    loops.push_back(std::move(sel.loop));
    if (static_cast<int>(loops.size()) >= std::max(opts.policy_loops, 1)) break;
  }
  TMS_ASSERT_MSG(!loops.empty(), "policy scenario: no DOACROSS loops");

  struct PolicyPoint {
    machine::AllocPolicy policy;
    const char* key;
  };
  const PolicyPoint policies[] = {
      {machine::AllocPolicy::kModulo, "modulo"},
      {machine::AllocPolicy::kRoundRobinStride, "round_robin_stride"},
      {machine::AllocPolicy::kLocality, "locality"},
      {machine::AllocPolicy::kDepDistance, "dep_distance"},
  };

  ScenarioResult r;
  r.name = "policy_compare";
  // cycles[p][l]: simulated total cycles of loop l under policy p. Every
  // point is scheduled fresh under its own config (the policy changes
  // reg_comm_cycles and therefore C1), then simulated on both engines,
  // which must agree bit-for-bit before the number counts.
  std::vector<std::vector<double>> cycles(std::size(policies),
                                          std::vector<double>(loops.size(), 0.0));
  for (std::size_t pi = 0; pi < std::size(policies); ++pi) {
    std::vector<driver::SimSweepPoint> event_points;
    std::vector<driver::SimSweepPoint> legacy_points;
    for (const ir::Loop& loop : loops) {
      machine::SpmtConfig cfg;
      cfg.ncore = opts.policy_ncore;
      cfg.policy = policies[pi].policy;
      // Fixed non-trivial parameters: stride 3 exercises the non-unit
      // round-robin walk, block 4 gives locality three free forwards per
      // bus-priced one; dep_distance derives its own block per loop.
      cfg.policy_stride = 3;
      cfg.policy_block = 4;
      cfg.bus_bytes_per_transfer = opts.policy_bus_bytes;
      const auto tms = sched::tms_schedule(loop, mach, cfg);
      TMS_ASSERT_MSG(tms.has_value(), "policy scenario: TMS failed on a pinned loop");
      driver::SimSweepPoint p;
      p.name = loop.name() + "." + policies[pi].key;
      p.loop = loop;
      p.kp = codegen::lower_kernel(tms->schedule, cfg);
      p.cfg = cfg;
      p.sim.iterations = opts.policy_iterations;
      p.sim.keep_memory = false;
      p.sim.engine = spmt::SimEngine::kEventDriven;
      event_points.push_back(p);
      p.sim.engine = spmt::SimEngine::kLegacyStepper;
      legacy_points.push_back(std::move(p));
    }
    driver::SimSweepOptions sweep;
    sweep.threads = opts.sim_jobs;
    const auto event = driver::run_sim_sweep(event_points, sweep);
    driver::SimSweepOptions legacy_sweep;
    legacy_sweep.threads = 1;
    const auto legacy = driver::run_sim_sweep(legacy_points, legacy_sweep);
    for (std::size_t i = 0; i < loops.size(); ++i) {
      TMS_ASSERT_MSG(event[i].ok && legacy[i].ok, "policy scenario: a sweep point failed");
      TMS_ASSERT_MSG(event[i].stats.total_cycles == legacy[i].stats.total_cycles &&
                         event[i].stats.bus_transfers == legacy[i].stats.bus_transfers &&
                         event[i].stats.bus_cycles == legacy[i].stats.bus_cycles,
                     "policy scenario: engines diverged under a policy");
      cycles[pi][i] = static_cast<double>(event[i].stats.total_cycles);
    }
    double total = 0.0;
    for (const double c : cycles[pi]) total += c;
    r.values.emplace_back(std::string("cycles_") + policies[pi].key, total);
  }

  // Headline: the best per-loop win a non-default policy posts over
  // modulo (>1 means some loop runs strictly faster off the default),
  // plus how many of the loops see any such win.
  double best_vs_modulo = 0.0;
  double wins = 0.0;
  for (std::size_t i = 0; i < loops.size(); ++i) {
    double best_nondefault = cycles[1][i];
    for (std::size_t pi = 2; pi < std::size(policies); ++pi) {
      best_nondefault = std::min(best_nondefault, cycles[pi][i]);
    }
    if (best_nondefault > 0.0) {
      best_vs_modulo = std::max(best_vs_modulo, cycles[0][i] / best_nondefault);
    }
    if (best_nondefault < cycles[0][i]) wins += 1.0;
  }
  r.values.emplace_back("best_vs_modulo", best_vs_modulo);
  r.values.emplace_back("loops_won_nondefault", wins);
  r.values.emplace_back("loops", static_cast<double>(loops.size()));
  r.values.emplace_back("ncore", static_cast<double>(opts.policy_ncore));
  r.values.emplace_back("iterations", static_cast<double>(opts.policy_iterations));
  return r;
}

std::vector<ScenarioResult> run_all_scenarios(const ScenarioOptions& opts) {
  return {run_sched_single(opts),    run_batch_throughput(opts), run_serve_e2e(opts),
          run_cluster_scaling(opts), run_sim_scaling(opts),      run_policy_compare(opts)};
}

// ---- bench-trajectory-v1 JSON -------------------------------------------

namespace {

void append_scenarios(support::JsonWriter& w, const std::vector<ScenarioResult>& scenarios) {
  w.key("scenarios").begin_object();
  for (const ScenarioResult& s : scenarios) {
    w.key(s.name).begin_object();
    for (const auto& [k, v] : s.values) w.member(k, v);
    w.end_object();
  }
  w.end_object();
}

}  // namespace

std::string trajectory_json(const std::vector<ScenarioResult>& scenarios, int pr,
                            const std::string& baseline_label,
                            const std::vector<ScenarioResult>& baseline) {
  support::JsonWriter w;
  w.begin_object();
  w.member("schema", "bench-trajectory-v1");
  w.member("pr", pr);
  append_scenarios(w, scenarios);
  if (!baseline.empty()) {
    w.key("baseline").begin_object();
    w.member("label", baseline_label);
    append_scenarios(w, baseline);
    w.end_object();
  }
  w.end_object();
  return w.str() + "\n";
}

std::vector<ScenarioResult> scenarios_from_json(const support::JsonValue& root,
                                                bool from_baseline) {
  std::vector<ScenarioResult> out;
  const support::JsonValue* schema = root.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "bench-trajectory-v1") {
    return out;
  }
  const support::JsonValue* scen =
      from_baseline ? root.find_path("baseline.scenarios") : root.find("scenarios");
  if (scen == nullptr || !scen->is_object()) return out;
  for (const auto& [name, obj] : scen->members()) {
    if (!obj.is_object()) continue;
    ScenarioResult r;
    r.name = name;
    for (const auto& [k, v] : obj.members()) {
      if (v.is_number()) r.values.emplace_back(k, v.as_number());
    }
    out.push_back(std::move(r));
  }
  return out;
}

// ---- CI gating -----------------------------------------------------------

const std::vector<MetricSpec>& trajectory_metrics() {
  static const std::vector<MetricSpec> specs = {
      {"sched_single", "schedule_us_p50", /*higher_is_better=*/false, 150.0},
      {"sched_single", "schedule_us_p99", /*higher_is_better=*/false, 250.0},
      {"batch_throughput", "jobs_per_sec", /*higher_is_better=*/true, 60.0},
      {"serve_e2e", "request_us_p50", /*higher_is_better=*/false, 150.0},
      {"serve_e2e", "request_us_p99", /*higher_is_better=*/false, 250.0},
      // Speedups are already machine-relative ratios, so the bands can
      // be tighter than the absolute-rate metrics — but keep them wide
      // enough that scheduler noise on a loaded runner never trips them.
      {"cluster_scaling", "speedup_2x", /*higher_is_better=*/true, 40.0},
      {"cluster_scaling", "speedup_4x", /*higher_is_better=*/true, 50.0},
      // Also a machine-relative ratio (legacy and event engines run on
      // the same box back to back), but the legacy side's quadratic
      // store-history scan makes the ratio sensitive to the iteration
      // count and allocator behaviour, so the band stays generous.
      {"sim_scaling", "speedup_ncore32", /*higher_is_better=*/true, 60.0},
      // A deterministic cycle-count ratio (no wall clocks involved), so
      // any movement is a real model/scheduler change — but schedules may
      // legitimately shift as the cost model evolves, hence a real band.
      {"policy_compare", "best_vs_modulo", /*higher_is_better=*/true, 25.0},
  };
  return specs;
}

std::vector<MetricDelta> compare_trajectories(const std::vector<ScenarioResult>& baseline,
                                              const std::vector<ScenarioResult>& current) {
  auto find = [](const std::vector<ScenarioResult>& side, const char* name,
                 const char* key) -> double {
    for (const ScenarioResult& s : side) {
      if (s.name == name) return s.get(key, -1.0);
    }
    return -1.0;
  };

  std::vector<MetricDelta> out;
  for (const MetricSpec& spec : trajectory_metrics()) {
    MetricDelta d;
    d.metric = std::string(spec.scenario) + "." + spec.key;
    d.higher_is_better = spec.higher_is_better;
    d.tolerance_pct = spec.tolerance_pct;
    d.baseline = find(baseline, spec.scenario, spec.key);
    d.current = find(current, spec.scenario, spec.key);
    if (d.baseline <= 0.0 || d.current < 0.0) {
      d.missing = true;  // new/retired metric, or degenerate baseline: never a gate failure
    } else {
      d.worse_pct = spec.higher_is_better ? (1.0 - d.current / d.baseline) * 100.0
                                          : (d.current / d.baseline - 1.0) * 100.0;
      d.regression = d.worse_pct > d.tolerance_pct;
    }
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace tms::bench
