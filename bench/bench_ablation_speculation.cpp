// Section 5.2 ablation — the value of data speculation.
//
// The selected loops run TMS-scheduled with speculation enabled (memory
// dependences tracked by the MDT, rolled back on violation) and disabled
// (every inter-thread memory dependence synchronised: consumers wait for
// the producing thread's store). The paper reports that without
// speculation the gain of the equake loop drops by ~19% and fma3d's by
// ~21.4%.
#include <cstdio>

#include "harness.hpp"
#include "support/table.hpp"

using namespace tms;

int main(int argc, char** argv) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const std::int64_t iters = bench::iterations_arg(argc, argv, 2000);
  std::printf("=== Ablation: data speculation on vs off (selected loops, %lld iters) ===\n\n",
              static_cast<long long>(iters));

  const std::vector<bench::LoopEval> sel = bench::schedule_selected(mach, cfg);

  support::TextTable t({"Loop", "spec on (cycles)", "spec off (cycles)", "slowdown w/o spec",
                        "gain-vs-single lost"});
  using TT = support::TextTable;
  std::uint64_t seed = 11;
  for (const bench::LoopEval& e : sel) {
    const spmt::SpmtStats on = bench::simulate_tms(e, cfg, iters, seed, false);
    const spmt::SpmtStats off = bench::simulate_tms(e, cfg, iters, seed, true);
    const std::int64_t single = bench::simulate_single(e, mach, cfg, iters, seed);
    ++seed;
    const double slowdown = 100.0 * (static_cast<double>(off.total_cycles) /
                                         static_cast<double>(on.total_cycles) -
                                     1.0);
    const double gain_on = static_cast<double>(single) / static_cast<double>(on.total_cycles) - 1.0;
    const double gain_off =
        static_cast<double>(single) / static_cast<double>(off.total_cycles) - 1.0;
    const double lost = gain_on > 0.0 ? 100.0 * (gain_on - gain_off) / gain_on : 0.0;
    t.add_row({e.loop->name(), std::to_string(on.total_cycles),
               std::to_string(off.total_cycles), TT::pct(slowdown), TT::pct(lost)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("paper: without speculation the loop gain drops ~19%% (equake), ~21.4%% (fma3d)\n");
  return 0;
}
