#include "harness.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "codegen/kernel_program.hpp"
#include "driver/job_pool.hpp"
#include "obs/counters.hpp"
#include "spmt/address.hpp"
#include "support/assert.hpp"
#include "support/json.hpp"
#include "workloads/builder.hpp"
#include "workloads/doacross.hpp"
#include "workloads/spec_suite.hpp"

namespace tms::bench {

LoopEval schedule_loop(std::string benchmark, ir::Loop loop, const machine::MachineModel& mach,
                       const machine::SpmtConfig& cfg) {
  LoopEval e;
  e.benchmark = std::move(benchmark);
  e.loop = std::make_unique<ir::Loop>(std::move(loop));
  e.sms = sched::sms_schedule(*e.loop, mach);
  TMS_ASSERT_MSG(e.sms.has_value(), "SMS failed on a workload loop");
  e.tms = sched::tms_schedule(*e.loop, mach, cfg);
  TMS_ASSERT_MSG(e.tms.has_value(), "TMS failed on a workload loop");
  e.m_sms = sched::measure(e.sms->schedule, cfg);
  e.m_tms = sched::measure(e.tms->schedule, cfg);
  return e;
}

std::vector<LoopEval> schedule_suite(const machine::MachineModel& mach,
                                     const machine::SpmtConfig& cfg, int jobs) {
  // Shape derivation is serial (one RNG stream per benchmark); the
  // expensive build + schedule step runs per job, each job constructing
  // its loop from the shape's private forked seed. Results land at their
  // submission index, so suite order is independent of the thread count.
  struct Item {
    std::string benchmark;
    workloads::ShapedLoop shaped;
  };
  std::vector<Item> items;
  for (const workloads::BenchmarkSpec& spec : workloads::spec_fp2000_suite()) {
    for (workloads::ShapedLoop& s : workloads::benchmark_shapes(spec)) {
      items.push_back({spec.name, std::move(s)});
    }
  }

  std::vector<LoopEval> out(items.size());
  driver::JobPool pool(jobs);
  pool.run(items.size(), [&](std::size_t i) {
    ir::Loop loop = workloads::build_loop(items[i].shaped.shape);
    loop.set_coverage(items[i].shaped.coverage);
    out[i] = schedule_loop(items[i].benchmark, std::move(loop), mach, cfg);
  });
  return out;
}

std::vector<LoopEval> schedule_selected(const machine::MachineModel& mach,
                                        const machine::SpmtConfig& cfg) {
  std::vector<LoopEval> out;
  for (workloads::SelectedLoop& sel : workloads::doacross_selected_loops()) {
    out.push_back(schedule_loop(sel.benchmark, std::move(sel.loop), mach, cfg));
  }
  return out;
}

namespace {

spmt::SpmtStats simulate(const ir::Loop& loop, const sched::Schedule& sched,
                         const machine::SpmtConfig& cfg, std::int64_t iterations,
                         std::uint64_t stream_seed, bool disable_speculation) {
  const spmt::AddressStreams streams = spmt::default_streams(loop, stream_seed);
  const codegen::KernelProgram kp = codegen::lower_kernel(sched, cfg);
  spmt::SpmtOptions opts;
  opts.iterations = iterations;
  opts.keep_memory = false;
  opts.disable_speculation = disable_speculation;
  return spmt::run_spmt(loop, kp, cfg, streams, opts).stats;
}

}  // namespace

SimPair simulate_pair(const LoopEval& e, const machine::SpmtConfig& cfg,
                      std::int64_t iterations, std::uint64_t stream_seed) {
  SimPair p;
  p.sms = simulate(*e.loop, e.sms->schedule, cfg, iterations, stream_seed, false);
  p.tms = simulate(*e.loop, e.tms->schedule, cfg, iterations, stream_seed, false);
  return p;
}

spmt::SpmtStats simulate_tms(const LoopEval& e, const machine::SpmtConfig& cfg,
                             std::int64_t iterations, std::uint64_t stream_seed,
                             bool disable_speculation) {
  return simulate(*e.loop, e.tms->schedule, cfg, iterations, stream_seed, disable_speculation);
}

std::int64_t simulate_single(const LoopEval& e, const machine::MachineModel& mach,
                             const machine::SpmtConfig& cfg, std::int64_t iterations,
                             std::uint64_t stream_seed) {
  const spmt::AddressStreams streams = spmt::default_streams(*e.loop, stream_seed);
  return spmt::run_single_threaded(*e.loop, mach, cfg, streams, iterations).total_cycles;
}

AggregateSpeedup aggregate_speedups(const std::vector<double>& speedup,
                                    const std::vector<double>& coverage) {
  TMS_ASSERT(speedup.size() == coverage.size());
  double cov_total = 0.0;
  double scaled = 0.0;  // sum of cov_i / s_i: the loops' share of time after
  for (std::size_t i = 0; i < speedup.size(); ++i) {
    TMS_ASSERT(speedup[i] > 0.0);
    cov_total += coverage[i];
    scaled += coverage[i] / speedup[i];
  }
  AggregateSpeedup out;
  if (cov_total > 0.0 && scaled > 0.0) {
    out.loop_speedup_pct = (cov_total / scaled - 1.0) * 100.0;
    out.program_speedup_pct = (1.0 / ((1.0 - cov_total) + scaled) - 1.0) * 100.0;
  }
  return out;
}

double sample_quantile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0.0) return xs.front();
  if (p >= 1.0) return xs.back();
  const double pos = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

SteadyTiming summarise_steady(const std::vector<double>& ns, int warmup) {
  SteadyTiming t;
  t.warmup = std::min<int>(warmup, static_cast<int>(ns.size()));
  std::vector<double> steady(ns.begin() + t.warmup, ns.end());
  t.samples = static_cast<int>(steady.size());
  if (steady.empty()) return t;
  double sum = 0.0;
  t.min_ns = steady.front();
  t.max_ns = steady.front();
  for (const double x : steady) {
    sum += x;
    t.min_ns = std::min(t.min_ns, x);
    t.max_ns = std::max(t.max_ns, x);
  }
  t.mean_ns = sum / static_cast<double>(steady.size());
  t.p50_ns = sample_quantile(steady, 0.50);
  t.p90_ns = sample_quantile(steady, 0.90);
  t.p99_ns = sample_quantile(steady, 0.99);
  return t;
}

SteadyTiming measure_steady(int warmup, int samples, const std::function<void()>& fn) {
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<double> ns;
  ns.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    ns.push_back(std::chrono::duration<double, std::nano>(
                     std::chrono::steady_clock::now() - start)
                     .count());
  }
  SteadyTiming t = summarise_steady(ns, /*warmup=*/0);
  t.warmup = warmup;
  return t;
}

void append_steady_timing(support::JsonWriter& w, const std::string& prefix,
                          const SteadyTiming& t) {
  w.member(prefix + "p50", t.p50_ns / 1e3);
  w.member(prefix + "p90", t.p90_ns / 1e3);
  w.member(prefix + "p99", t.p99_ns / 1e3);
  w.member(prefix + "mean", t.mean_ns / 1e3);
  w.member(prefix + "min", t.min_ns / 1e3);
  w.member(prefix + "max", t.max_ns / 1e3);
  w.member(prefix + "warmup", t.warmup);
  w.member(prefix + "samples", t.samples);
}

std::int64_t iterations_arg(int argc, char** argv, std::int64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--iterations") == 0) {
      return std::atoll(argv[i + 1]);
    }
  }
  return fallback;
}

int jobs_arg(int argc, char** argv, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0) {
      return std::atoi(argv[i + 1]);
    }
  }
  return fallback;
}

const char* json_path_arg(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      return argv[i + 1];
    }
  }
  return nullptr;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  return static_cast<bool>(out);
}

void append_counters(support::JsonWriter& w) {
  w.key("observability");
  obs::write_counters_json(w, obs::counters_snapshot());
}

}  // namespace tms::bench
