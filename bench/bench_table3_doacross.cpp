// Table 3 — Selected DOACROSS loops and their TMS-scheduled statistics.
//
// Mirrors the paper's columns: per benchmark, loop count, coverage (LC),
// average #instructions, #SCCs, MII, LDP, then TMS's II, MaxLive and
// C_delay. Expected: art/equake/fma3d resource-bound with small C_delay;
// lucas recurrence-bound with C_delay >= MII (ILP only).
#include <cstdio>
#include <map>

#include "harness.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace tms;

int main() {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  std::printf("=== Table 3: selected DOACROSS loops, TMS statistics ===\n\n");

  const std::vector<bench::LoopEval> sel = bench::schedule_selected(mach, cfg);

  struct Agg {
    support::RunningStat inst, scc, mii, ldp, ii, ml, cd;
    double coverage = 0.0;
    int n = 0;
  };
  std::map<std::string, Agg> per_bench;
  std::vector<std::string> order;
  for (const bench::LoopEval& e : sel) {
    if (per_bench.find(e.benchmark) == per_bench.end()) order.push_back(e.benchmark);
    Agg& a = per_bench[e.benchmark];
    ++a.n;
    a.coverage += e.loop->coverage();
    a.inst.add(e.m_tms.num_instrs);
    a.scc.add(e.m_tms.num_sccs);
    a.mii.add(e.m_tms.mii);
    a.ldp.add(e.m_tms.ldp);
    a.ii.add(e.m_tms.ii);
    a.ml.add(e.m_tms.max_live);
    a.cd.add(e.m_tms.c_delay);
  }

  support::TextTable t({"Benchmark", "#Loops", "LC", "AVG #Inst", "AVG #SCC", "AVG MII", "LDP",
                        "TMS II", "TMS ML", "TMS D"});
  using TT = support::TextTable;
  for (const std::string& name : order) {
    const Agg& a = per_bench[name];
    t.add_row({name, std::to_string(a.n), TT::pct(a.coverage * 100.0), TT::num(a.inst.mean(), 0),
               TT::num(a.scc.mean(), 0), TT::num(a.mii.mean(), 0), TT::num(a.ldp.mean(), 0),
               TT::num(a.ii.mean()), TT::num(a.ml.mean(), 0), TT::num(a.cd.mean(), 0)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("paper:  art 4 21.6%% 27 3 11 29 | 15.5 15 5\n");
  std::printf("        equake 1 58.5%% 82 3 20 26 | 27 31 6\n");
  std::printf("        lucas 1 33.4%% 102 8 62 89 | 64 15 62\n");
  std::printf("        fma3d 1 14.3%% 72 3 18 34 | 20 30 6\n");
  return 0;
}
