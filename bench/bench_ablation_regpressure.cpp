// Ablation — register-file pressure.
//
// Table 2 reports MaxLive because it decides realisability: tighter
// register files force larger IIs (longer rows, shorter relative
// lifetimes). This sweeps the register budget for SMS and TMS over the
// selected DOACROSS loops, showing the II each scheduler needs to fit —
// and that TMS (more stages, longer lifetimes) pays more under tight
// budgets, the cost of its TLP.
#include <cstdio>

#include "harness.hpp"
#include "sched/regpressure.hpp"
#include "support/table.hpp"
#include "workloads/doacross.hpp"

using namespace tms;

int main() {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  std::printf("=== Ablation: register budget vs achievable II (selected loops) ===\n\n");

  auto sel = workloads::doacross_selected_loops();
  for (auto& s : sel) {
    if (s.loop.name() != "art_sel0" && s.loop.name() != "equake_sel" &&
        s.loop.name() != "fma3d_sel") {
      continue;
    }
    const ir::Loop loop = std::move(s.loop);
    std::printf("--- %s ---\n", loop.name().c_str());
    support::TextTable t({"registers", "SMS II", "SMS pressure", "TMS II", "TMS pressure",
                          "TMS C_delay"});
    for (const int regs : {16, 24, 32, 48, 64, 128}) {
      const auto sms = sched::sms_schedule_reglimited(loop, mach, regs);
      const auto tms = sched::tms_schedule_reglimited(loop, mach, cfg, regs);
      t.add_row({std::to_string(regs),
                 sms ? std::to_string(sms->schedule.ii()) : std::string("-"),
                 sms ? std::to_string(sms->pressure) : std::string("-"),
                 tms ? std::to_string(tms->schedule.ii()) : std::string("-"),
                 tms ? std::to_string(tms->pressure) : std::string("-"),
                 tms ? std::to_string(tms->schedule.c_delay(cfg)) : std::string("-")});
    }
    std::printf("%s\n", t.render().c_str());
  }
  std::printf("reading: below ~24 registers both schedulers must inflate II; TMS needs more\n"
              "headroom than SMS because thread-sensitivity stretches lifetimes across stages.\n");
  return 0;
}
