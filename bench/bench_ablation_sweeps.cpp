// Ablation sweeps over the design parameters the paper motivates:
//   - core count (TLP headroom changes the II/C_delay trade-off),
//   - register-communication latency C_reg_com (the ring's speed is what
//     makes fine-grain threads viable at all),
//   - P_max (speculation aggressiveness of Fig. 3's C2).
// Run on the Figure-1 motivating loop and the equake selected loop.
#include <cstdio>

#include "harness.hpp"
#include "support/table.hpp"
#include "workloads/doacross.hpp"
#include "workloads/figure1.hpp"

using namespace tms;

namespace {

void sweep_loop(const char* title, const ir::Loop& loop, const machine::MachineModel& mach,
                std::int64_t iters) {
  std::printf("--- %s ---\n", title);
  using TT = support::TextTable;

  {
    support::TextTable t({"ncore", "TMS II", "TMS C_delay", "cycles", "cycles/iter"});
    for (const int ncore : {1, 2, 4, 8}) {
      machine::SpmtConfig cfg;
      cfg.ncore = ncore;
      bench::LoopEval e = bench::schedule_loop("sweep", loop, mach, cfg);
      const spmt::SpmtStats s = bench::simulate_tms(e, cfg, iters, 3);
      t.add_row({std::to_string(ncore), std::to_string(e.m_tms.ii),
                 std::to_string(e.m_tms.c_delay), std::to_string(s.total_cycles),
                 TT::num(static_cast<double>(s.total_cycles) / static_cast<double>(iters), 2)});
    }
    std::printf("%s", t.render().c_str());
  }
  {
    support::TextTable t({"C_reg_com", "TMS II", "TMS C_delay", "cycles/iter"});
    for (const int comm : {1, 3, 6}) {
      machine::SpmtConfig cfg;
      cfg.c_reg_com = comm;
      cfg.send_cycles = 0;
      cfg.hop_cycles = comm - 1;
      cfg.recv_cycles = 1;
      if (comm == 1) {
        cfg.send_cycles = 0;
        cfg.hop_cycles = 1;
        cfg.recv_cycles = 0;
      }
      bench::LoopEval e = bench::schedule_loop("sweep", loop, mach, cfg);
      const spmt::SpmtStats s = bench::simulate_tms(e, cfg, iters, 3);
      t.add_row({std::to_string(comm), std::to_string(e.m_tms.ii),
                 std::to_string(e.m_tms.c_delay),
                 TT::num(static_cast<double>(s.total_cycles) / static_cast<double>(iters), 2)});
    }
    std::printf("%s", t.render().c_str());
  }
  {
    support::TextTable t({"P_max", "TMS II", "TMS C_delay", "P_M", "misspec freq", "cycles/iter"});
    for (const double pmax : {0.0001, 0.01, 0.1, 1.0}) {
      machine::SpmtConfig cfg;
      sched::TmsOptions opts;
      opts.p_max_values = {pmax};
      auto tms = sched::tms_schedule(loop, mach, cfg, opts);
      if (!tms.has_value()) {
        t.add_row({TT::num(pmax, 4), "-", "-", "-", "-", "unschedulable"});
        continue;
      }
      bench::LoopEval e;
      e.benchmark = "sweep";
      e.loop = std::make_unique<ir::Loop>(loop);
      // Re-schedule against the owned copy so the schedule's loop pointer
      // stays valid.
      e.tms = sched::tms_schedule(*e.loop, mach, cfg, opts);
      e.sms = sched::sms_schedule(*e.loop, mach);
      e.m_tms = sched::measure(e.tms->schedule, cfg);
      const spmt::SpmtStats s = bench::simulate_tms(e, cfg, iters, 3);
      t.add_row({TT::num(pmax, 4), std::to_string(e.m_tms.ii), std::to_string(e.m_tms.c_delay),
                 TT::num(e.tms->misspec_probability, 4),
                 TT::pct(100.0 * s.misspec_frequency(), 3),
                 TT::num(static_cast<double>(s.total_cycles) / static_cast<double>(iters), 2)});
    }
    std::printf("%s\n", t.render().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t iters = bench::iterations_arg(argc, argv, 1500);
  std::printf("=== Ablation sweeps: ncore, C_reg_com, P_max ===\n\n");

  sweep_loop("Figure-1 motivating loop", workloads::figure1_loop(), workloads::figure1_machine(),
             iters);
  machine::MachineModel mach;
  auto sel = workloads::doacross_selected_loops();
  sweep_loop("equake selected loop", sel[4].loop, mach, iters);
  return 0;
}
