// The six canonical benchmark scenarios behind the perf trajectory.
//
// Every committed BENCH_<pr>.json point (docs/BENCHMARKS.md) is produced
// by exactly this code, so the numbers are comparable PR over PR:
//
//   sched_single      TMS schedule time per loop, p50/p99 over the
//                     figure-4 workload loops (the scheduler hot path).
//   batch_throughput  driver::run_batch jobs/second over a pinned job
//                     list (the tmsbatch use-case).
//   serve_e2e         end-to-end request latency against an in-process
//                     CompileService + SocketServer over a Unix socket
//                     (the tmsd + loadgen use-case).
//   cluster_scaling   router::LocalCluster throughput at 1, 2 and 4
//                     backends over a fixed working set sized to
//                     overflow one shard's ScheduleCache but partition
//                     cleanly across two — the headline speedup_2x /
//                     speedup_4x numbers measure aggregate cache
//                     capacity, which scales with shard count even on a
//                     single-core runner (the tmsrouter use-case).
//   sim_scaling       wall-clock of the ncore=16/32/64 simulation sweep:
//                     the event-driven engine (sorted store history,
//                     timing-only fast path, parallel sweep driver)
//                     against the retained legacy stepper at threads=1,
//                     after asserting both produce identical SpmtStats —
//                     the headline speedup_ncore32 tracks the simulator
//                     rearchitecture (docs/SIMULATOR.md).
//   policy_compare    simulated cycles of the Table-3 DOACROSS loops
//                     under each core-allocation policy (docs/POLICY.md)
//                     at one bus-contended core count, every point
//                     cross-checked event-vs-legacy — the headline
//                     best_vs_modulo is the largest per-loop win any
//                     non-default policy posts over the paper's modulo
//                     mapping once bus transfers cost cycles.
//
// Results are flat (key, value) lists so emission (trajectory_json),
// parsing (scenarios_from_json) and comparison (compare_trajectories)
// stay schema-agnostic: adding a metric to a scenario is one append
// plus, if it should gate CI, one row in trajectory_metrics().
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace tms::support {
class JsonValue;
}

namespace tms::bench {

struct ScenarioOptions {
  // sched_single: rounds × loops individual schedule timings.
  int sched_warmup_rounds = 1;
  int sched_sample_rounds = 5;
  int shapes_per_benchmark = 2;  ///< suite loops per benchmark in the pinned set

  // batch_throughput: repeated run_batch calls over the pinned job list.
  int batch_warmup = 1;
  int batch_rounds = 3;
  int batch_shapes_per_benchmark = 8;
  int jobs = 0;  ///< batch worker threads; 0 = hardware_concurrency

  // serve_e2e: requests against the in-process daemon.
  int serve_warmup = 32;
  int serve_requests = 256;
  std::string socket_dir;  ///< scratch dir for the Unix socket; "" = ./benchgate_sock.<pid>

  // cluster_scaling: LocalCluster at 1/2/4 backends. The working set is
  // the `cluster_loops` largest pinned loops (miss cost = a real
  // schedule, so it dwarfs the socket round trip); the per-shard cache
  // bound defaults to 3/4 of that, which one shard cannot hold but two
  // shards' caches can.
  int cluster_loops = 640;
  std::size_t cluster_cache_capacity = 0;  ///< per-shard entries; 0 = 3/4 of cluster_loops
  int cluster_rounds = 2;                  ///< measured round-robin passes per topology
  int cluster_clients = 4;

  // sim_scaling: event-driven vs legacy simulator over the ncore sweep.
  // The workload is the Table-3 DOACROSS loops — their loads alias
  // committed stores, so the store-history machinery (what the
  // rearchitecture replaced) is hot — simulated for enough iterations
  // that the legacy walker's linear per-load history scan dominates.
  int sim_loops = 7;                 ///< Table-3 loops per sweep point (7 = all)
  std::int64_t sim_iterations = 200000;  ///< source iterations per simulation
  int sim_jobs = 0;  ///< event-sweep workers; 0 = JobPool default (legacy stays at 1)

  // policy_compare: the four core-allocation policies over the same
  // DOACROSS loops, at a core count high enough that the shared-bus
  // charge (which scales with ncore) separates the policies' transfer
  // volumes. stride/block are fixed inside the scenario so the committed
  // numbers stay comparable PR over PR.
  int policy_loops = 7;                    ///< Table-3 loops per policy (7 = all)
  int policy_ncore = 32;                   ///< core count; bus charge scales with it
  std::int64_t policy_iterations = 20000;  ///< source iterations per simulation
  int policy_bus_bytes = 8;                ///< bus_bytes_per_transfer (bandwidth stays 16)
};

/// `--quick` preset: one round / few requests everywhere. Useful for
/// smoke-testing the plumbing; numbers are not trajectory-grade.
ScenarioOptions quick_options();

struct ScenarioResult {
  std::string name;
  /// Flat ordered metrics; keys unique within a scenario.
  std::vector<std::pair<std::string, double>> values;

  double get(const std::string& key, double fallback = -1.0) const;
};

ScenarioResult run_sched_single(const ScenarioOptions& opts);
ScenarioResult run_batch_throughput(const ScenarioOptions& opts);
ScenarioResult run_serve_e2e(const ScenarioOptions& opts);
ScenarioResult run_cluster_scaling(const ScenarioOptions& opts);
ScenarioResult run_sim_scaling(const ScenarioOptions& opts);
ScenarioResult run_policy_compare(const ScenarioOptions& opts);

/// All six, in canonical order.
std::vector<ScenarioResult> run_all_scenarios(const ScenarioOptions& opts);

// ---- bench-trajectory-v1 JSON -------------------------------------------

/// Serialises scenarios (plus an optional embedded baseline — the
/// pre-change measurement the current numbers claim an improvement over)
/// into one deterministic bench-trajectory-v1 document.
std::string trajectory_json(const std::vector<ScenarioResult>& scenarios, int pr,
                            const std::string& baseline_label = "",
                            const std::vector<ScenarioResult>& baseline = {});

/// Reads the "scenarios" member of a parsed bench-trajectory-v1 document
/// (or its "baseline.scenarios" when `from_baseline`). Empty on schema
/// mismatch.
std::vector<ScenarioResult> scenarios_from_json(const support::JsonValue& root,
                                                bool from_baseline = false);

// ---- CI gating -----------------------------------------------------------

/// One gated metric: which scenario/key, which direction is better, and
/// how much worse than baseline is tolerated before CI fails. Bands are
/// deliberately wide — the committed snapshot and the CI runner are
/// different machines, so the gate exists to catch structural
/// regressions (an accidental O(n^2), a dropped cache), not 10% noise.
struct MetricSpec {
  const char* scenario;
  const char* key;
  bool higher_is_better;
  double tolerance_pct;  ///< allowed worsening relative to baseline
};
const std::vector<MetricSpec>& trajectory_metrics();

struct MetricDelta {
  std::string metric;  ///< "scenario.key"
  double baseline = 0.0;
  double current = 0.0;
  double worse_pct = 0.0;      ///< how much worse than baseline (negative = better)
  double tolerance_pct = 0.0;
  bool higher_is_better = false;
  bool missing = false;        ///< metric absent from one side; never a failure
  bool regression = false;
};

/// Applies trajectory_metrics() to a (baseline, current) scenario pair.
std::vector<MetricDelta> compare_trajectories(const std::vector<ScenarioResult>& baseline,
                                              const std::vector<ScenarioResult>& current);

}  // namespace tms::bench
