// Shared evaluation harness for the benchmark binaries.
//
// Wraps the full pipeline (schedule with SMS and TMS -> lower -> simulate
// on the SpMT machine -> aggregate per benchmark) the way Section 5 of
// the paper evaluates: per-loop metrics like Table 2/3, simulated loop
// speedups weighted by loop coverage, and program speedups via Amdahl's
// law over the benchmark's coverage.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "machine/machine.hpp"
#include "machine/spmt_config.hpp"
#include "sched/postpass.hpp"
#include "sched/sms.hpp"
#include "sched/tms.hpp"
#include "spmt/sim.hpp"
#include "spmt/single_core.hpp"

namespace tms::support {
class JsonWriter;
}

namespace tms::bench {

/// One loop scheduled both ways. The loop is heap-owned so Schedule's
/// internal pointer stays valid as LoopEvals move around.
struct LoopEval {
  std::string benchmark;
  std::unique_ptr<ir::Loop> loop;
  std::optional<sched::SmsResult> sms;
  std::optional<sched::TmsResult> tms;
  sched::LoopMetrics m_sms;
  sched::LoopMetrics m_tms;
};

LoopEval schedule_loop(std::string benchmark, ir::Loop loop, const machine::MachineModel& mach,
                       const machine::SpmtConfig& cfg);

/// Schedules the full 13-benchmark synthetic SPECfp2000 suite (778 loops)
/// on a driver::JobPool: loops are built and scheduled in parallel
/// (`jobs` worker threads; 0 = hardware_concurrency) with one private RNG
/// per job, and results are returned in deterministic suite order
/// regardless of the thread count.
std::vector<LoopEval> schedule_suite(const machine::MachineModel& mach,
                                     const machine::SpmtConfig& cfg, int jobs = 0);

/// Schedules the seven selected DOACROSS loops of Table 3.
std::vector<LoopEval> schedule_selected(const machine::MachineModel& mach,
                                        const machine::SpmtConfig& cfg);

struct SimPair {
  spmt::SpmtStats sms;
  spmt::SpmtStats tms;
};

/// Simulates both schedules of a loop on the SpMT machine.
SimPair simulate_pair(const LoopEval& e, const machine::SpmtConfig& cfg,
                      std::int64_t iterations, std::uint64_t stream_seed);

/// Simulates one schedule (by reference to its LoopEval).
spmt::SpmtStats simulate_tms(const LoopEval& e, const machine::SpmtConfig& cfg,
                             std::int64_t iterations, std::uint64_t stream_seed,
                             bool disable_speculation = false);

/// Single-threaded baseline cycles for the loop.
std::int64_t simulate_single(const LoopEval& e, const machine::MachineModel& mach,
                             const machine::SpmtConfig& cfg, std::int64_t iterations,
                             std::uint64_t stream_seed);

/// Coverage-weighted aggregation of per-loop speedups into a benchmark
/// loop speedup and a whole-program speedup (Amdahl). `speedup[i]` is the
/// per-loop time ratio base/new; `coverage[i]` the loop's share of
/// program time.
struct AggregateSpeedup {
  double loop_speedup_pct = 0.0;     ///< aggregated over the loops only
  double program_speedup_pct = 0.0;  ///< over the whole program
};
AggregateSpeedup aggregate_speedups(const std::vector<double>& speedup,
                                    const std::vector<double>& coverage);

// ---- Steady-state timing ------------------------------------------------
//
// Trajectory points (docs/BENCHMARKS.md) are only comparable across PRs if
// every binary measures the same way: discard warmup iterations (first-run
// effects — cold caches, lazy allocation, branch-predictor training — are
// not the steady state a service runs at) and report the distribution, not
// just the mean (one slow outlier should move p99, not poison p50).

/// Summary of a steady-state timing run. All times in nanoseconds.
struct SteadyTiming {
  int warmup = 0;   ///< discarded leading iterations
  int samples = 0;  ///< measured iterations
  double p50_ns = 0.0;
  double p90_ns = 0.0;
  double p99_ns = 0.0;
  double mean_ns = 0.0;
  double min_ns = 0.0;
  double max_ns = 0.0;
};

/// Exact sample quantile with linear interpolation between order
/// statistics; `p` in [0,1]. Sorts a copy; returns 0 on an empty sample.
double sample_quantile(std::vector<double> xs, double p);

/// Summarises an already-collected sample vector (nanoseconds), dropping
/// the first `warmup` entries. Collection order is preserved until the
/// drop, so interleaved warmups must be excluded by the caller instead.
SteadyTiming summarise_steady(const std::vector<double>& ns, int warmup);

/// Runs `fn` `warmup` times untimed, then `samples` timed repetitions,
/// and summarises the steady-state distribution of one call.
SteadyTiming measure_steady(int warmup, int samples, const std::function<void()>& fn);

/// Appends p50/p90/p99/mean/min/max (in microseconds, the natural unit of
/// every scenario in the tree) plus warmup/sample counts to an open JSON
/// object, prefixing each key with `prefix` (e.g. "schedule_us_").
void append_steady_timing(support::JsonWriter& w, const std::string& prefix,
                          const SteadyTiming& t);

/// Parses an optional "--iterations N" / env-style argv override used by
/// the bench binaries; returns `fallback` when absent.
std::int64_t iterations_arg(int argc, char** argv, std::int64_t fallback);

/// Parses "--jobs N"; returns `fallback` when absent (0 lets the JobPool
/// pick hardware_concurrency).
int jobs_arg(int argc, char** argv, int fallback = 0);

/// Parses "--json PATH"; returns nullptr when absent.
const char* json_path_arg(int argc, char** argv);

/// Writes `text` to `path`; returns false (with a message on stderr) on
/// failure. Used by the bench binaries' --json emitters.
bool write_text_file(const std::string& path, const std::string& text);

/// Appends an "observability" member — the full process counter snapshot
/// (obs/counters) — to an open JSON object. Called by the bench binaries'
/// --json emitters so trajectory files carry the work counters (slots
/// tried, squashes, sync stalls, ...) alongside the results.
void append_counters(support::JsonWriter& w);

}  // namespace tms::bench
