// Figure 4 — Speedups of TMS over SMS.
//
// Every loop of the synthetic suite is scheduled both ways and simulated
// on the quad-core SpMT machine; per-benchmark loop speedups are the
// coverage-weighted aggregate over its loops, and program speedups apply
// Amdahl's law at the benchmark's loop-coverage ratio. Expected shape:
// positive loop speedups everywhere except wupwise (~0), art largest,
// averages around the paper's 28% (loops) / 10% (program).
#include <chrono>
#include <cstdio>
#include <map>

#include "harness.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

using namespace tms;

int main(int argc, char** argv) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const std::int64_t iters = bench::iterations_arg(argc, argv, 800);
  std::printf("=== Figure 4: speedups of TMS over SMS (quad-core SpMT, %lld iters/loop) ===\n\n",
              static_cast<long long>(iters));

  const auto start = std::chrono::steady_clock::now();
  const std::vector<bench::LoopEval> suite =
      bench::schedule_suite(mach, cfg, bench::jobs_arg(argc, argv));

  struct Agg {
    std::vector<double> speedup;
    std::vector<double> coverage;
    std::int64_t misspecs = 0;
    std::int64_t threads = 0;
  };
  std::map<std::string, Agg> per_bench;
  std::vector<std::string> order;

  std::uint64_t seed = 1;
  for (const bench::LoopEval& e : suite) {
    const bench::SimPair p = bench::simulate_pair(e, cfg, iters, seed++);
    if (per_bench.find(e.benchmark) == per_bench.end()) order.push_back(e.benchmark);
    Agg& a = per_bench[e.benchmark];
    a.speedup.push_back(static_cast<double>(p.sms.total_cycles) /
                        static_cast<double>(p.tms.total_cycles));
    a.coverage.push_back(e.loop->coverage());
    a.misspecs += p.tms.misspeculations;
    a.threads += p.tms.threads_committed;
  }

  support::TextTable t(
      {"Benchmark", "Loop speedup", "Program speedup", "TMS misspec freq"});
  using TT = support::TextTable;
  double sum_loop = 0.0;
  double sum_prog = 0.0;
  struct Row {
    std::string name;
    bench::AggregateSpeedup agg;
    double misspec_pct = 0.0;
  };
  std::vector<Row> rows;
  for (const std::string& name : order) {
    const Agg& a = per_bench[name];
    const bench::AggregateSpeedup s = bench::aggregate_speedups(a.speedup, a.coverage);
    sum_loop += s.loop_speedup_pct;
    sum_prog += s.program_speedup_pct;
    const double mf = a.threads > 0 ? 100.0 * static_cast<double>(a.misspecs) /
                                          static_cast<double>(a.threads)
                                    : 0.0;
    rows.push_back({name, s, mf});
    t.add_row({name, TT::pct(s.loop_speedup_pct), TT::pct(s.program_speedup_pct),
               TT::pct(mf, 3)});
  }
  t.add_row({"(average)", TT::pct(sum_loop / static_cast<double>(order.size())),
             TT::pct(sum_prog / static_cast<double>(order.size())), ""});
  std::printf("%s\n", t.render().c_str());
  std::printf("paper: average loop speedup 28%%, program 10%%; art largest; wupwise ~0\n");

  if (const char* json_path = bench::json_path_arg(argc, argv)) {
    const double total_ns = std::chrono::duration<double, std::nano>(
                                std::chrono::steady_clock::now() - start)
                                .count();
    const std::int64_t sims = static_cast<std::int64_t>(suite.size()) * iters;
    support::JsonWriter w;
    w.begin_object();
    w.member("schema", "tms-bench-v1");
    w.member("benchmark", "bench_figure4_speedups");
    w.member("iterations", iters);
    w.member("ns_op", total_ns / static_cast<double>(sims));  // ns per simulated iteration
    w.member("avg_loop_speedup_pct", sum_loop / static_cast<double>(order.size()));
    w.member("avg_program_speedup_pct", sum_prog / static_cast<double>(order.size()));
    w.key("records").begin_array();
    for (const Row& r : rows) {
      w.begin_object();
      w.member("name", r.name);
      w.member("loop_speedup_pct", r.agg.loop_speedup_pct);
      w.member("program_speedup_pct", r.agg.program_speedup_pct);
      w.member("misspec_freq_pct", r.misspec_pct);
      w.end_object();
    }
    w.end_array();
    bench::append_counters(w);
    w.end_object();
    if (!bench::write_text_file(json_path, w.str() + "\n")) return 1;
  }
  return 0;
}
