// Figure 4 — Speedups of TMS over SMS.
//
// Every loop of the synthetic suite is scheduled both ways and simulated
// on the quad-core SpMT machine; per-benchmark loop speedups are the
// coverage-weighted aggregate over its loops, and program speedups apply
// Amdahl's law at the benchmark's loop-coverage ratio. Expected shape:
// positive loop speedups everywhere except wupwise (~0), art largest,
// averages around the paper's 28% (loops) / 10% (program).
#include <cstdio>
#include <map>

#include "harness.hpp"
#include "support/table.hpp"

using namespace tms;

int main(int argc, char** argv) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const std::int64_t iters = bench::iterations_arg(argc, argv, 800);
  std::printf("=== Figure 4: speedups of TMS over SMS (quad-core SpMT, %lld iters/loop) ===\n\n",
              static_cast<long long>(iters));

  const std::vector<bench::LoopEval> suite = bench::schedule_suite(mach, cfg);

  struct Agg {
    std::vector<double> speedup;
    std::vector<double> coverage;
    std::int64_t misspecs = 0;
    std::int64_t threads = 0;
  };
  std::map<std::string, Agg> per_bench;
  std::vector<std::string> order;

  std::uint64_t seed = 1;
  for (const bench::LoopEval& e : suite) {
    const bench::SimPair p = bench::simulate_pair(e, cfg, iters, seed++);
    if (per_bench.find(e.benchmark) == per_bench.end()) order.push_back(e.benchmark);
    Agg& a = per_bench[e.benchmark];
    a.speedup.push_back(static_cast<double>(p.sms.total_cycles) /
                        static_cast<double>(p.tms.total_cycles));
    a.coverage.push_back(e.loop->coverage());
    a.misspecs += p.tms.misspeculations;
    a.threads += p.tms.threads_committed;
  }

  support::TextTable t(
      {"Benchmark", "Loop speedup", "Program speedup", "TMS misspec freq"});
  using TT = support::TextTable;
  double sum_loop = 0.0;
  double sum_prog = 0.0;
  for (const std::string& name : order) {
    const Agg& a = per_bench[name];
    const bench::AggregateSpeedup s = bench::aggregate_speedups(a.speedup, a.coverage);
    sum_loop += s.loop_speedup_pct;
    sum_prog += s.program_speedup_pct;
    const double mf = a.threads > 0 ? 100.0 * static_cast<double>(a.misspecs) /
                                          static_cast<double>(a.threads)
                                    : 0.0;
    t.add_row({name, TT::pct(s.loop_speedup_pct), TT::pct(s.program_speedup_pct),
               TT::pct(mf, 3)});
  }
  t.add_row({"(average)", TT::pct(sum_loop / static_cast<double>(order.size())),
             TT::pct(sum_prog / static_cast<double>(order.size())), ""});
  std::printf("%s\n", t.render().c_str());
  std::printf("paper: average loop speedup 28%%, program 10%%; art largest; wupwise ~0\n");
  return 0;
}
