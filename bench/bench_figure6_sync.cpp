// Figure 6 — Synchronisation of TMS vs SMS on the selected DOACROSS
// loops:
//   (a) synchronisation-stall reduction (cycles stalled at RECV),
//   (b) increase in dynamic SEND/RECV pairs,
//   (c) communication-overhead reduction (stalls + C_reg_com * pairs).
// Expected shape: stall reductions above 50% for art/equake/fma3d, less
// impressive for lucas (recurrence-bound); small pair increases (TMS
// trades communication for TLP); net communication overhead reduced.
#include <cstdio>
#include <map>

#include "harness.hpp"
#include "support/table.hpp"

using namespace tms;

int main(int argc, char** argv) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const std::int64_t iters = bench::iterations_arg(argc, argv, 2000);
  std::printf("=== Figure 6: synchronisation of TMS vs SMS (selected loops, %lld iters) ===\n\n",
              static_cast<long long>(iters));

  const std::vector<bench::LoopEval> sel = bench::schedule_selected(mach, cfg);

  struct Agg {
    std::int64_t stalls_sms = 0, stalls_tms = 0;
    std::int64_t pairs_sms = 0, pairs_tms = 0;
    std::int64_t comm_sms = 0, comm_tms = 0;
  };
  std::map<std::string, Agg> per_bench;
  std::vector<std::string> order;

  std::uint64_t seed = 5;
  for (const bench::LoopEval& e : sel) {
    const bench::SimPair p = bench::simulate_pair(e, cfg, iters, seed++);
    if (per_bench.find(e.benchmark) == per_bench.end()) order.push_back(e.benchmark);
    Agg& a = per_bench[e.benchmark];
    a.stalls_sms += p.sms.sync_stall_cycles;
    a.stalls_tms += p.tms.sync_stall_cycles;
    a.pairs_sms += p.sms.send_recv_pairs;
    a.pairs_tms += p.tms.send_recv_pairs;
    a.comm_sms += p.sms.communication_overhead(cfg);
    a.comm_tms += p.tms.communication_overhead(cfg);
  }

  support::TextTable t({"Benchmark", "(a) sync-stall reduction", "(b) SEND/RECV pair increase",
                        "(c) comm-overhead reduction"});
  using TT = support::TextTable;
  for (const std::string& name : order) {
    const Agg& a = per_bench[name];
    const double red = a.stalls_sms > 0
                           ? 100.0 * (1.0 - static_cast<double>(a.stalls_tms) /
                                                static_cast<double>(a.stalls_sms))
                           : 0.0;
    const double inc = a.pairs_sms > 0
                           ? 100.0 * (static_cast<double>(a.pairs_tms) /
                                          static_cast<double>(a.pairs_sms) -
                                      1.0)
                           : 0.0;
    const double comm = a.comm_sms > 0
                            ? 100.0 * (1.0 - static_cast<double>(a.comm_tms) /
                                                 static_cast<double>(a.comm_sms))
                            : 0.0;
    t.add_row({name, TT::pct(red), TT::pct(inc), TT::pct(comm)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "paper shape: (a) >50%% for art/equake/fma3d, less for lucas; (b) small increases\n"
      "(lucas largest, ~3 extra pairs/iteration); (c) net reduction everywhere\n");
  return 0;
}
