// Table 2 — SMS and TMS compared using traditional modulo-scheduling
// metrics over the 778 loops of the synthetic SPECfp2000 suite.
//
// Columns mirror the paper: per-benchmark loop count, average instruction
// count, average MII, then (II, MaxLive, C_delay) for SMS and for TMS.
// Expected shape: TMS trades a larger II for a much smaller C_delay with
// slightly larger MaxLive.
#include <chrono>
#include <cstdio>
#include <map>

#include "harness.hpp"
#include "support/json.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace tms;

int main(int argc, char** argv) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  std::printf("=== Table 2: SMS vs TMS, traditional metrics (778 synthetic loops) ===\n\n");

  const auto sched_start = std::chrono::steady_clock::now();
  const std::vector<bench::LoopEval> suite =
      bench::schedule_suite(mach, cfg, bench::jobs_arg(argc, argv));
  const double sched_ns = std::chrono::duration<double, std::nano>(
                              std::chrono::steady_clock::now() - sched_start)
                              .count();

  struct Agg {
    support::RunningStat inst, mii, ii_s, ml_s, cd_s, ii_t, ml_t, cd_t;
    int n = 0;
  };
  std::map<std::string, Agg> per_bench;
  std::vector<std::string> order;
  for (const bench::LoopEval& e : suite) {
    if (per_bench.find(e.benchmark) == per_bench.end()) order.push_back(e.benchmark);
    Agg& a = per_bench[e.benchmark];
    ++a.n;
    a.inst.add(e.m_sms.num_instrs);
    a.mii.add(e.m_sms.mii);
    a.ii_s.add(e.m_sms.ii);
    a.ml_s.add(e.m_sms.max_live);
    a.cd_s.add(e.m_sms.c_delay);
    a.ii_t.add(e.m_tms.ii);
    a.ml_t.add(e.m_tms.max_live);
    a.cd_t.add(e.m_tms.c_delay);
  }

  support::TextTable t({"Benchmark", "#Loops", "AVG #Inst", "AVG MII", "SMS II", "SMS MaxLive",
                        "SMS Cdelay", "TMS II", "TMS MaxLive", "TMS Cdelay"});
  using TT = support::TextTable;
  Agg total;
  for (const std::string& name : order) {
    const Agg& a = per_bench[name];
    t.add_row({name, std::to_string(a.n), TT::num(a.inst.mean()), TT::num(a.mii.mean()),
               TT::num(a.ii_s.mean()), TT::num(a.ml_s.mean()), TT::num(a.cd_s.mean()),
               TT::num(a.ii_t.mean()), TT::num(a.ml_t.mean()), TT::num(a.cd_t.mean())});
    total.n += a.n;
    total.inst.merge(a.inst);
    total.mii.merge(a.mii);
    total.ii_s.merge(a.ii_s);
    total.ml_s.merge(a.ml_s);
    total.cd_s.merge(a.cd_s);
    total.ii_t.merge(a.ii_t);
    total.ml_t.merge(a.ml_t);
    total.cd_t.merge(a.cd_t);
  }
  t.add_row({"(all)", std::to_string(total.n), TT::num(total.inst.mean()),
             TT::num(total.mii.mean()), TT::num(total.ii_s.mean()), TT::num(total.ml_s.mean()),
             TT::num(total.cd_s.mean()), TT::num(total.ii_t.mean()), TT::num(total.ml_t.mean()),
             TT::num(total.cd_t.mean())});
  std::printf("%s\n", t.render().c_str());

  std::printf("shape checks: TMS II >= SMS II: %s;  TMS C_delay << SMS C_delay: %s\n",
              total.ii_t.mean() >= total.ii_s.mean() ? "yes" : "NO",
              total.cd_t.mean() < 0.6 * total.cd_s.mean() ? "yes" : "NO");

  if (const char* json_path = bench::json_path_arg(argc, argv)) {
    support::JsonWriter w;
    w.begin_object();
    w.member("schema", "tms-bench-v1");
    w.member("benchmark", "bench_table2_sms_vs_tms");
    w.member("iterations", static_cast<std::int64_t>(total.n));
    w.member("ns_op", sched_ns / static_cast<double>(total.n));  // scheduling ns per loop
    w.key("records").begin_array();
    for (const std::string& name : order) {
      const Agg& a = per_bench[name];
      w.begin_object();
      w.member("name", name);
      w.member("loops", a.n);
      w.member("avg_inst", a.inst.mean());
      w.member("avg_mii", a.mii.mean());
      w.member("sms_ii", a.ii_s.mean());
      w.member("sms_max_live", a.ml_s.mean());
      w.member("sms_c_delay", a.cd_s.mean());
      w.member("tms_ii", a.ii_t.mean());
      w.member("tms_max_live", a.ml_t.mean());
      w.member("tms_c_delay", a.cd_t.mean());
      w.end_object();
    }
    w.end_array();
    bench::append_counters(w);
    w.end_object();
    if (!bench::write_text_file(json_path, w.str() + "\n")) return 1;
  }
  return 0;
}
