// Baseline comparison — SMS vs IMS (Codina, Llosa, Gonzalez, ICS'02).
//
// The paper builds TMS on SMS "since SMS finds the best schedules in
// general [3]". This bench reproduces that comparison on the synthetic
// suite: achieved II relative to MII, MaxLive, and scheduling attempts,
// for both classic schedulers.
#include <cstdio>
#include <map>

#include "harness.hpp"
#include "sched/ims.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workloads/spec_suite.hpp"

using namespace tms;

int main() {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  std::printf("=== Baseline comparison: SMS vs IMS (778 synthetic loops) ===\n\n");

  struct Agg {
    support::RunningStat ii_ratio_sms, ii_ratio_ims, ml_sms, ml_ims;
    int sms_wins = 0, ims_wins = 0, ties = 0, n = 0;
  };
  std::map<std::string, Agg> per_bench;
  std::vector<std::string> order;

  for (const workloads::BenchmarkSpec& spec : workloads::spec_fp2000_suite()) {
    for (ir::Loop& loop : workloads::generate_benchmark(spec)) {
      const auto sms = sched::sms_schedule(loop, mach);
      const auto ims = sched::ims_schedule(loop, mach);
      if (!sms || !ims) continue;
      if (per_bench.find(spec.name) == per_bench.end()) order.push_back(spec.name);
      Agg& a = per_bench[spec.name];
      ++a.n;
      a.ii_ratio_sms.add(static_cast<double>(sms->schedule.ii()) / sms->mii);
      a.ii_ratio_ims.add(static_cast<double>(ims->schedule.ii()) / ims->mii);
      a.ml_sms.add(sms->schedule.max_live());
      a.ml_ims.add(ims->schedule.max_live());
      if (sms->schedule.ii() < ims->schedule.ii()) {
        ++a.sms_wins;
      } else if (ims->schedule.ii() < sms->schedule.ii()) {
        ++a.ims_wins;
      } else {
        ++a.ties;
      }
    }
  }

  support::TextTable t({"Benchmark", "SMS II/MII", "IMS II/MII", "SMS MaxLive", "IMS MaxLive",
                        "SMS wins", "IMS wins", "ties"});
  using TT = support::TextTable;
  Agg total;
  for (const std::string& name : order) {
    const Agg& a = per_bench[name];
    t.add_row({name, TT::num(a.ii_ratio_sms.mean(), 2), TT::num(a.ii_ratio_ims.mean(), 2),
               TT::num(a.ml_sms.mean()), TT::num(a.ml_ims.mean()), std::to_string(a.sms_wins),
               std::to_string(a.ims_wins), std::to_string(a.ties)});
    total.ii_ratio_sms.merge(a.ii_ratio_sms);
    total.ii_ratio_ims.merge(a.ii_ratio_ims);
    total.ml_sms.merge(a.ml_sms);
    total.ml_ims.merge(a.ml_ims);
    total.sms_wins += a.sms_wins;
    total.ims_wins += a.ims_wins;
    total.ties += a.ties;
  }
  t.add_row({"(all)", TT::num(total.ii_ratio_sms.mean(), 2), TT::num(total.ii_ratio_ims.mean(), 2),
             TT::num(total.ml_sms.mean()), TT::num(total.ml_ims.mean()),
             std::to_string(total.sms_wins), std::to_string(total.ims_wins),
             std::to_string(total.ties)});
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Codina et al.'s finding (the paper's rationale for building TMS on SMS) is that\n"
      "SMS combines near-MII IIs with lower register pressure. In this reproduction the\n"
      "register-pressure half holds clearly (SMS MaxLive is ~half of IMS's), while our\n"
      "backtracking IMS reaches MII more often than our SMS — i.e. the II gap of our\n"
      "SMS implementation (EXPERIMENTS.md, fidelity gap 1) is a property of the\n"
      "heuristic, not of the workloads or the MII computation.\n");
  return 0;
}
