#include "nest/loop_nest.hpp"

#include <algorithm>

#include "codegen/kernel_program.hpp"
#include "cost/cost_model.hpp"
#include "ir/graph.hpp"
#include "sched/tms.hpp"
#include "spmt/address.hpp"
#include "spmt/sim.hpp"
#include "spmt/single_core.hpp"
#include "support/assert.hpp"

namespace tms::nest {

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::kInnerTms: return "inner-TMS";
    case Strategy::kOuterTls: return "outer-TLS";
    case Strategy::kSequential: return "sequential";
  }
  return "?";
}

NestEval evaluate_nest(const LoopNest& nest, const machine::MachineModel& mach,
                       const machine::SpmtConfig& cfg, std::int64_t outer_trips,
                       std::uint64_t seed) {
  TMS_ASSERT(outer_trips >= 1);
  TMS_ASSERT(nest.inner_trips >= 1);
  TMS_ASSERT_MSG(!nest.inner.validate().has_value(), "nest has malformed inner loop");
  for (const OuterDep& d : nest.outer_deps) {
    TMS_ASSERT(d.src >= 0 && d.src < nest.inner.num_instrs());
    TMS_ASSERT(d.dst >= 0 && d.dst < nest.inner.num_instrs());
    TMS_ASSERT(d.distance >= 1);
  }

  NestEval ev;
  const spmt::AddressStreams streams = spmt::default_streams(nest.inner, seed);

  // --- One outer iteration on a single core (the sequential body and the
  // outer-TLS thread body). ---
  const auto single =
      spmt::run_single_threaded(nest.inner, mach, cfg, streams, nest.inner_trips);
  ev.thread_body_cycles = single.total_cycles;
  ev.cycles_sequential = single.total_cycles * outer_trips;

  // --- Strategy A: inner-TMS. Outer iterations are sequential; each pays
  // the software pipeline's startup, fill and drain. ---
  {
    const auto tms = sched::tms_schedule(nest.inner, mach, cfg);
    TMS_ASSERT_MSG(tms.has_value(), "TMS failed on the inner loop");
    const auto kp = codegen::lower_kernel(tms->schedule, cfg);
    spmt::SpmtOptions opts;
    opts.iterations = nest.inner_trips;
    opts.keep_memory = false;
    const auto sim = spmt::run_spmt(nest.inner, kp, cfg, streams, opts);
    ev.cycles_inner_tms = sim.stats.total_cycles * outer_trips;
  }

  // --- Strategy B: outer-TLS. One coarse thread per outer iteration. ---
  {
    const std::int64_t body = ev.thread_body_cycles;
    // Approximate each node's completion position inside the thread by
    // its topological rank share of the body.
    const std::vector<ir::NodeId> topo = ir::topo_order_intra(nest.inner);
    std::vector<double> pos(static_cast<std::size_t>(nest.inner.num_instrs()), 0.0);
    for (std::size_t r = 0; r < topo.size(); ++r) {
      pos[static_cast<std::size_t>(topo[r])] =
          static_cast<double>(r + 1) / static_cast<double>(topo.size());
    }
    int c_delay = 0;
    double keep = 1.0;
    for (const OuterDep& d : nest.outer_deps) {
      if (d.kind == ir::DepKind::kRegister) {
        // Consumer thread waits until the producer (late in the previous
        // thread) finishes: the end-to-start span of the body.
        const double span = (pos[static_cast<std::size_t>(d.src)] -
                             pos[static_cast<std::size_t>(d.dst)]) *
                                static_cast<double>(body) +
                            cfg.reg_comm_cycles();
        c_delay = std::max(c_delay, static_cast<int>(std::max(0.0, span)));
      } else {
        keep *= 1.0 - d.probability;
      }
    }
    ev.outer_c_delay = c_delay;
    ev.outer_misspec_probability = 1.0 - keep;

    const double per_iter =
        cost::per_iter_nomiss(static_cast<int>(std::min<std::int64_t>(body, 1 << 28)), c_delay,
                              cfg);
    const double penalty =
        static_cast<double>(body) + cfg.c_inv;  // whole coarse thread wasted
    ev.outer_misspeculations =
        static_cast<std::int64_t>(ev.outer_misspec_probability * static_cast<double>(outer_trips));
    ev.cycles_outer_tls = static_cast<std::int64_t>(
        per_iter * static_cast<double>(outer_trips) +
        penalty * static_cast<double>(ev.outer_misspeculations));
  }

  ev.best = Strategy::kSequential;
  std::int64_t best = ev.cycles_sequential;
  if (ev.cycles_inner_tms < best) {
    best = ev.cycles_inner_tms;
    ev.best = Strategy::kInnerTms;
  }
  if (ev.cycles_outer_tls < best) {
    ev.best = Strategy::kOuterTls;
  }
  return ev;
}

}  // namespace tms::nest
