// Loop nests and parallelisation-level choice — the paper's second
// "future work" item (Section 6: "We are also working on extending TMS
// to also parallelise outer loops").
//
// A nest is an inner loop (the innermost-loop IR TMS understands) that
// runs `inner_trips` iterations inside each iteration of an enclosing
// outer loop, plus the dependences carried by the *outer* loop. Two
// parallelisation strategies compete:
//
//   inner-TMS: outer iterations run sequentially; each one executes the
//     TMS-parallelised inner loop across all cores. Pays the software
//     pipeline's fill/drain every outer iteration, so it fades as
//     inner_trips shrinks.
//
//   outer-TLS: each outer iteration becomes one coarse thread running
//     the whole inner loop single-core (the Du/Quinones-style
//     speculative threading the paper cites as prior work). Outer
//     register dependences are synchronised end-to-start; outer memory
//     dependences are speculated with their profiled probability, with
//     a whole-thread squash on violation.
//
// evaluate_nest() prices both using the same machinery the rest of the
// repository uses: the SpMT simulator for inner-TMS, the single-core
// executor for thread bodies, and the Section-4.2 cost model (applied at
// the outer level) for outer-TLS.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/loop.hpp"
#include "machine/machine.hpp"
#include "machine/spmt_config.hpp"

namespace tms::nest {

/// A dependence carried by the outer loop between two inner-body nodes
/// (e.g. this outer iteration's store feeding next outer iteration's
/// load).
struct OuterDep {
  ir::NodeId src = ir::kInvalidNode;
  ir::NodeId dst = ir::kInvalidNode;
  ir::DepKind kind = ir::DepKind::kMemory;
  int distance = 1;          ///< outer-loop distance (>= 1)
  double probability = 1.0;  ///< for memory deps: profiled collision rate
};

struct LoopNest {
  std::string name;
  ir::Loop inner;
  std::int64_t inner_trips = 100;  ///< inner iterations per outer iteration
  std::vector<OuterDep> outer_deps;
  double coverage = 0.0;
};

enum class Strategy { kInnerTms, kOuterTls, kSequential };

struct NestEval {
  /// Cycles for `outer_trips` outer iterations under each strategy.
  std::int64_t cycles_sequential = 0;
  std::int64_t cycles_inner_tms = 0;
  std::int64_t cycles_outer_tls = 0;
  Strategy best = Strategy::kSequential;
  /// Details of the outer-TLS estimate.
  std::int64_t thread_body_cycles = 0;  ///< one outer iteration, single core
  int outer_c_delay = 0;                ///< serialisation from outer register deps
  double outer_misspec_probability = 0.0;
  std::int64_t outer_misspeculations = 0;
};

NestEval evaluate_nest(const LoopNest& nest, const machine::MachineModel& mach,
                       const machine::SpmtConfig& cfg, std::int64_t outer_trips,
                       std::uint64_t seed = 1);

const char* to_string(Strategy s);

}  // namespace tms::nest
