#include "policy/policy.hpp"

#include <algorithm>
#include <vector>

#include "obs/counters.hpp"
#include "support/assert.hpp"

namespace tms::policy {
namespace {

/// The paper's mapping: core k mod ncore, values relayed hop by hop
/// around the ring so a distance-d dependence pays d full SEND/RECV
/// legs (and d bus transfers). With the bus term off this is exactly
/// the pre-policy hardcoded d_ker * c_reg_com.
class ModuloPolicy final : public CorePolicy {
 public:
  explicit ModuloPolicy(const machine::SpmtConfig& cfg)
      : ncore_(cfg.ncore), per_leg_(cfg.c_reg_com + cfg.bus_transfer_cycles()) {}
  machine::AllocPolicy kind() const override { return machine::AllocPolicy::kModulo; }
  int core_of(std::int64_t k) const override { return static_cast<int>(k % ncore_); }
  CommCost comm_cost(int d_ker, std::int64_t) const override {
    if (d_ker <= 0) return {};
    return {static_cast<std::int64_t>(d_ker) * per_leg_, d_ker};
  }
  bool uniform() const override { return true; }

 private:
  std::int64_t ncore_;
  std::int64_t per_leg_;
};

/// core (k * stride) mod ncore. A distance-d dependence is always
/// (d * stride) mod ncore ring positions downstream, delivered in one
/// direct SEND/hops/RECV leg (one bus transfer) — or free when the
/// stride wraps producer and consumer onto the same core.
class RoundRobinStridePolicy final : public CorePolicy {
 public:
  explicit RoundRobinStridePolicy(const machine::SpmtConfig& cfg) : cfg_(cfg) {}
  machine::AllocPolicy kind() const override { return machine::AllocPolicy::kRoundRobinStride; }
  int core_of(std::int64_t k) const override {
    return static_cast<int>((k * cfg_.policy_stride) % cfg_.ncore);
  }
  CommCost comm_cost(int d_ker, std::int64_t) const override {
    if (d_ker <= 0) return {};
    const int hops = static_cast<int>(
        (static_cast<std::int64_t>(d_ker) * cfg_.policy_stride) % cfg_.ncore);
    if (hops == 0) return {};
    return {static_cast<std::int64_t>(cfg_.comm_latency(hops) + cfg_.bus_transfer_cycles()), 1};
  }
  bool uniform() const override { return true; }

 private:
  const machine::SpmtConfig cfg_;
};

/// core (k / block) mod ncore: blocks of `block` consecutive iterations
/// share a core, so short-distance dependences stay on-core (delay 0)
/// and only block-crossing ones pay one forward ring leg. Non-uniform:
/// whether a distance crosses a block boundary depends on k itself.
/// kDepDistance is this mapping with block = dominant_dep_distance, so
/// the loop's most common dependence always lands exactly one hop away.
class BlockPolicy final : public CorePolicy {
 public:
  BlockPolicy(const machine::SpmtConfig& cfg, machine::AllocPolicy kind, int block)
      : cfg_(cfg), kind_(kind), block_(block) {
    TMS_ASSERT(block_ >= 1);
  }
  machine::AllocPolicy kind() const override { return kind_; }
  int core_of(std::int64_t k) const override {
    return static_cast<int>((k / block_) % cfg_.ncore);
  }
  CommCost comm_cost(int d_ker, std::int64_t k) const override {
    if (d_ker <= 0) return {};
    const int src = core_of(k - d_ker);
    const int dst = core_of(k);
    const int hops = (dst - src + cfg_.ncore) % cfg_.ncore;
    if (hops == 0) return {};
    return {static_cast<std::int64_t>(cfg_.comm_latency(hops) + cfg_.bus_transfer_cycles()), 1};
  }
  bool uniform() const override { return false; }

 private:
  const machine::SpmtConfig cfg_;
  const machine::AllocPolicy kind_;
  const std::int64_t block_;
};

}  // namespace

int dominant_dep_distance(const ir::Loop& loop) {
  std::vector<std::pair<int, int>> freq;  // (distance, count), distance-sorted
  for (const ir::DepEdge& e : loop.deps()) {
    if (e.distance < 1) continue;
    auto it = std::lower_bound(freq.begin(), freq.end(), std::make_pair(e.distance, 0));
    if (it != freq.end() && it->first == e.distance) {
      ++it->second;
    } else {
      freq.insert(it, {e.distance, 1});
    }
  }
  int best = 1, best_count = 0;
  for (const auto& [dist, count] : freq) {
    if (count > best_count) {  // ties resolve to the smallest distance
      best = dist;
      best_count = count;
    }
  }
  return best;
}

std::unique_ptr<CorePolicy> make_policy(const machine::SpmtConfig& cfg, const ir::Loop& loop) {
  cfg.check();
  obs::counters().policy_instances.add(1);
  if (cfg.policy != machine::AllocPolicy::kModulo) obs::counters().policy_nondefault.add(1);
  switch (cfg.policy) {
    case machine::AllocPolicy::kModulo:
      return std::make_unique<ModuloPolicy>(cfg);
    case machine::AllocPolicy::kRoundRobinStride:
      return std::make_unique<RoundRobinStridePolicy>(cfg);
    case machine::AllocPolicy::kLocality:
      return std::make_unique<BlockPolicy>(cfg, machine::AllocPolicy::kLocality,
                                           cfg.policy_block);
    case machine::AllocPolicy::kDepDistance:
      return std::make_unique<BlockPolicy>(cfg, machine::AllocPolicy::kDepDistance,
                                           dominant_dep_distance(loop));
  }
  TMS_ASSERT(false && "unreachable: unknown AllocPolicy");
  return nullptr;
}

std::string_view to_string(machine::AllocPolicy p) {
  switch (p) {
    case machine::AllocPolicy::kModulo: return "modulo";
    case machine::AllocPolicy::kRoundRobinStride: return "round_robin_stride";
    case machine::AllocPolicy::kLocality: return "locality";
    case machine::AllocPolicy::kDepDistance: return "dep_distance";
  }
  return "modulo";
}

bool policy_from_string(std::string_view s, machine::AllocPolicy& out) {
  if (s == "modulo") {
    out = machine::AllocPolicy::kModulo;
  } else if (s == "round_robin_stride") {
    out = machine::AllocPolicy::kRoundRobinStride;
  } else if (s == "locality") {
    out = machine::AllocPolicy::kLocality;
  } else if (s == "dep_distance") {
    out = machine::AllocPolicy::kDepDistance;
  } else {
    return false;
  }
  return true;
}

}  // namespace tms::policy
