// Pluggable iteration→core allocation policies (docs/POLICY.md).
//
// The paper fixes the mapping at "thread k runs on core k mod ncore" and
// prices every cross-thread register dependence at d_ker hops of ring
// relay. The thread-to-core allocation literature (Navarro et al.) shows
// the mapping alone is worth double-digit percent, and a shared-bus
// contention term (Eremeev et al.) changes which mapping wins — so both
// become machine knobs here: machine::SpmtConfig names the policy and
// the bus parameters, and this library turns them into behaviour.
//
// A CorePolicy answers exactly two questions, and both simulator engines
// (spmt/sim.cpp, spmt/event_sim.cpp) route every placement and every
// forwarding delay through it:
//   core_of(k)        which core runs thread/iteration k
//   comm_cost(d, k)   cycles (and bus transfers) to deliver a value
//                     produced d threads upstream to consumer thread k
//
// The modulo policy reproduces the legacy hardcoded behaviour bit-exactly
// when the bus term is off — enforced by tests/policy_test.cpp and the
// golden stats pinned in tests/event_sim_test.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "ir/loop.hpp"
#include "machine/spmt_config.hpp"

namespace tms::policy {

/// Cost of delivering one cross-thread register value to its consumer.
struct CommCost {
  std::int64_t delay = 0;      ///< cycles after producer completion
  std::int64_t transfers = 0;  ///< shared-bus transfers charged
};

class CorePolicy {
 public:
  virtual ~CorePolicy() = default;
  virtual machine::AllocPolicy kind() const = 0;

  /// Which core runs thread/iteration k (k >= 0).
  virtual int core_of(std::int64_t k) const = 0;

  /// Delivery cost of a value produced d_ker threads upstream of
  /// consumer thread k. delay == 0 exactly when producer and consumer
  /// land on the same core (no SEND/RECV, no bus occupancy).
  virtual CommCost comm_cost(int d_ker, std::int64_t k) const = 0;

  /// True when comm_cost depends only on d_ker, never on k. Uniform
  /// policies let the event engine keep its precomputed per-input costs;
  /// non-uniform ones are queried per access.
  virtual bool uniform() const = 0;
};

/// Most frequent cross-iteration dependence distance of `loop` (ties go
/// to the smallest); 1 when the loop carries no cross-iteration
/// dependence. This is kDepDistance's block size: iterations k and k-D
/// then always share a core boundary exactly one ring hop apart.
int dominant_dep_distance(const ir::Loop& loop);

/// Policy factory. `loop` feeds kDepDistance's dominant-distance choice;
/// the other policies ignore it. Bumps the policy.* obs counters.
std::unique_ptr<CorePolicy> make_policy(const machine::SpmtConfig& cfg, const ir::Loop& loop);

/// "modulo", "round_robin_stride", "locality", "dep_distance".
std::string_view to_string(machine::AllocPolicy p);
/// Inverse of to_string; false when `s` names no policy.
bool policy_from_string(std::string_view s, machine::AllocPolicy& out);

}  // namespace tms::policy
