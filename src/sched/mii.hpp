// Minimum initiation interval: MII = max(ResII, RecII).
//
// ResII counts resource pressure: for each functional-unit class, the total
// occupancy of the loop's instructions divided by the number of units,
// plus the issue-width bound. RecII is the smallest II for which no
// dependence cycle is over-constrained, found by binary search on the
// feasibility predicate "no positive cycle with edge weight
// delay(e) - II*distance(e)" (Bellman-Ford).
#pragma once

#include "ir/loop.hpp"
#include "machine/machine.hpp"

namespace tms::sched {

int res_ii(const ir::Loop& loop, const machine::MachineModel& mach);

/// RecII over all dependence edges (register and memory). Returns 1 if the
/// loop has no recurrence.
int rec_ii(const ir::Loop& loop, const machine::MachineModel& mach);

/// RecII restricted to a subset of nodes (used for per-SCC criticality in
/// the SMS node ordering). `in_subset[v]` selects the nodes.
int rec_ii_subset(const ir::Loop& loop, const machine::MachineModel& mach,
                  const std::vector<bool>& in_subset);

int min_ii(const ir::Loop& loop, const machine::MachineModel& mach);

/// True iff no dependence cycle requires more than `ii` cycles per
/// iteration, i.e. a modulo schedule at this II is not excluded by
/// recurrences alone.
bool recurrences_feasible(const ir::Loop& loop, const machine::MachineModel& mach, int ii);

}  // namespace tms::sched
