// Post-scheduling pass (Section 3 / end of Section 4.3).
//
// After a schedule is built, overlapping lifetimes are renamed with
// register copies so that every inter-iteration register dependence has
// kernel distance 1; values are then communicated between *adjacent*
// cores only, one SEND/RECV pair per hop. Dependences sharing a producer
// share one communication channel ("since n6->n0 and n6->n6 share one
// producer, only one communication is required").
#pragma once

#include <vector>

#include "machine/spmt_config.hpp"
#include "sched/schedule.hpp"

namespace tms::sched {

/// One producer value that crosses thread boundaries.
struct CommChannel {
  ir::NodeId producer = ir::kInvalidNode;
  /// Largest kernel distance among the producer's cross-thread register
  /// consumers: the value must be forwarded this many hops.
  int hops = 0;
  /// Cross-thread consumers and their kernel distances.
  std::vector<std::pair<ir::NodeId, int>> consumers;
};

struct CommPlan {
  std::vector<CommChannel> channels;
  /// Register copy instructions inserted per kernel iteration to reduce
  /// all dependence distances to 1 (hops-1 per channel).
  int copies_per_iter = 0;
  /// Dynamic SEND/RECV pairs executed per kernel iteration: one per hop
  /// of every channel.
  int comm_pairs_per_iter = 0;
};

/// Builds the communication plan for a complete schedule.
CommPlan plan_communication(const Schedule& sched);

/// Summary metrics of one scheduled loop, as reported in Tables 2 and 3.
struct LoopMetrics {
  int num_instrs = 0;
  int num_sccs = 0;   ///< non-trivial SCCs
  int mii = 0;
  int ldp = 0;        ///< longest dependence path
  int ii = 0;
  int max_live = 0;
  int c_delay = 0;    ///< max sync delay of the schedule (Def. 2)
  int stages = 0;
  int copies = 0;
  int comm_pairs = 0;
  double misspec_probability = 0.0;  ///< P_M (Eq. 3)
};

LoopMetrics measure(const Schedule& sched, const machine::SpmtConfig& cfg);

}  // namespace tms::sched
