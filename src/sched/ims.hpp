// Iterative Modulo Scheduling (Rau, MICRO'94) — the other classic modulo
// scheduler the paper positions against (via Codina et al.'s comparison,
// which found SMS to produce the best schedules in general). Provided as
// a second baseline so the repository can reproduce that comparison and
// demonstrate that TMS's ideas are not tied to SMS.
//
// IMS schedules operations highest-priority-first (by height), placing
// each at the earliest feasible cycle of its modulo window; when no cycle
// is free it force-places the operation and evicts whatever conflicts
// (resource-wise or dependence-wise), bounded by a per-II backtracking
// budget.
#pragma once

#include <optional>

#include "sched/schedule.hpp"

namespace tms::sched {

struct ImsOptions {
  int max_ii_slack = 256;
  /// Scheduling-step budget per II, as a multiple of the loop size.
  int budget_factor = 8;
};

struct ImsResult {
  Schedule schedule;
  int mii = 0;
  int attempts = 0;  ///< II values tried
};

std::optional<ImsResult> ims_schedule(const ir::Loop& loop, const machine::MachineModel& mach,
                                      const ImsOptions& opts = {});

}  // namespace tms::sched
