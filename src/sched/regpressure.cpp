#include "sched/regpressure.hpp"

#include "sched/postpass.hpp"
#include "support/assert.hpp"

namespace tms::sched {

int register_pressure(const Schedule& s) {
  const CommPlan plan = plan_communication(s);
  return s.max_live() + plan.copies_per_iter;
}

std::optional<RegLimitResult> sms_schedule_reglimited(const ir::Loop& loop,
                                                      const machine::MachineModel& mach,
                                                      int register_limit, int max_retries) {
  TMS_ASSERT(register_limit >= 1);
  SmsOptions opts;
  for (int retry = 0; retry <= max_retries; ++retry) {
    auto r = sms_schedule(loop, mach, opts);
    if (!r.has_value()) return std::nullopt;
    const int pressure = register_pressure(r->schedule);
    if (pressure <= register_limit) {
      return RegLimitResult{std::move(r->schedule), pressure, retry};
    }
    // Larger II shortens relative lifetimes; restart one II above the
    // schedule that overflowed.
    opts.ii_floor = r->schedule.ii() + 1;
  }
  return std::nullopt;
}

std::optional<RegLimitResult> tms_schedule_reglimited(const ir::Loop& loop,
                                                      const machine::MachineModel& mach,
                                                      const machine::SpmtConfig& cfg,
                                                      int register_limit, int max_retries,
                                                      const TmsOptions& base_opts) {
  TMS_ASSERT(register_limit >= 1);
  TmsOptions opts = base_opts;
  for (int retry = 0; retry <= max_retries; ++retry) {
    auto r = tms_schedule(loop, mach, cfg, opts);
    if (!r.has_value()) return std::nullopt;
    const int pressure = register_pressure(r->schedule);
    if (pressure <= register_limit) {
      return RegLimitResult{std::move(r->schedule), pressure, retry};
    }
    opts.ii_floor = r->schedule.ii() + 1;
  }
  return std::nullopt;
}

}  // namespace tms::sched
