#include "sched/order.hpp"

#include <algorithm>

#include "ir/graph.hpp"
#include "obs/trace.hpp"
#include "sched/mii.hpp"
#include "support/assert.hpp"

namespace tms::sched {
namespace {

/// All-pairs reachability over the full DDG (any distance), bitset-free
/// BFS per node; loops here are at most a few hundred nodes.
std::vector<std::vector<bool>> reachability(const ir::Loop& loop) {
  const auto n = static_cast<std::size_t>(loop.num_instrs());
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (ir::NodeId s = 0; s < loop.num_instrs(); ++s) {
    std::vector<ir::NodeId> stack{s};
    while (!stack.empty()) {
      const ir::NodeId v = stack.back();
      stack.pop_back();
      for (const std::size_t ei : loop.out_edges(v)) {
        const ir::NodeId w = loop.dep(ei).dst;
        if (!reach[static_cast<std::size_t>(s)][static_cast<std::size_t>(w)]) {
          reach[static_cast<std::size_t>(s)][static_cast<std::size_t>(w)] = true;
          stack.push_back(w);
        }
      }
    }
  }
  return reach;
}

}  // namespace

std::vector<std::vector<ir::NodeId>> sms_node_sets(const ir::Loop& loop,
                                                   const machine::MachineModel& mach) {
  const ir::SccResult scc = strongly_connected_components(loop);
  struct Rec {
    int comp;
    int rec_ii;
  };
  std::vector<Rec> recs;
  for (int c = 0; c < scc.num_components(); ++c) {
    if (scc.is_trivial(c)) continue;
    std::vector<bool> subset(static_cast<std::size_t>(loop.num_instrs()), false);
    for (const ir::NodeId v : scc.sccs[static_cast<std::size_t>(c)]) {
      subset[static_cast<std::size_t>(v)] = true;
    }
    recs.push_back(Rec{c, rec_ii_subset(loop, mach, subset)});
  }
  // Most critical recurrence first; ties by component id for determinism.
  std::sort(recs.begin(), recs.end(), [](const Rec& a, const Rec& b) {
    if (a.rec_ii != b.rec_ii) return a.rec_ii > b.rec_ii;
    return a.comp < b.comp;
  });

  const auto reach = reachability(loop);
  std::vector<bool> placed(static_cast<std::size_t>(loop.num_instrs()), false);
  std::vector<std::vector<ir::NodeId>> sets;

  for (const Rec& r : recs) {
    std::vector<ir::NodeId> set;
    auto add = [&](ir::NodeId v) {
      if (!placed[static_cast<std::size_t>(v)]) {
        placed[static_cast<std::size_t>(v)] = true;
        set.push_back(v);
      }
    };
    // Nodes on paths between already-placed sets and this recurrence (in
    // either direction) join the recurrence's set, per the SMS paper.
    const auto& members = scc.sccs[static_cast<std::size_t>(r.comp)];
    if (!sets.empty()) {
      for (ir::NodeId w = 0; w < loop.num_instrs(); ++w) {
        if (placed[static_cast<std::size_t>(w)]) continue;
        bool from_placed_to_w = false;
        bool w_to_placed = false;
        for (ir::NodeId p = 0; p < loop.num_instrs(); ++p) {
          if (!placed[static_cast<std::size_t>(p)]) continue;
          from_placed_to_w |= reach[static_cast<std::size_t>(p)][static_cast<std::size_t>(w)];
          w_to_placed |= reach[static_cast<std::size_t>(w)][static_cast<std::size_t>(p)];
        }
        bool w_to_scc = false;
        bool scc_to_w = false;
        for (const ir::NodeId m : members) {
          w_to_scc |= reach[static_cast<std::size_t>(w)][static_cast<std::size_t>(m)];
          scc_to_w |= reach[static_cast<std::size_t>(m)][static_cast<std::size_t>(w)];
        }
        if ((from_placed_to_w && w_to_scc) || (scc_to_w && w_to_placed)) add(w);
      }
    }
    for (const ir::NodeId m : members) add(m);
    if (!set.empty()) {
      std::sort(set.begin(), set.end());
      sets.push_back(std::move(set));
    }
  }

  // Remaining (non-recurrence) nodes form the final set.
  std::vector<ir::NodeId> rest;
  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    if (!placed[static_cast<std::size_t>(v)]) rest.push_back(v);
  }
  if (!rest.empty()) sets.push_back(std::move(rest));
  return sets;
}

std::vector<ir::NodeId> sms_node_order(const ir::Loop& loop, const machine::MachineModel& mach) {
  TMS_TRACE_SPAN(span, "sched", "sms.node_order");
  TMS_TRACE_SPAN_ARG(span, obs::targ("nodes", loop.num_instrs()));
  const auto sets = sms_node_sets(loop, mach);
  const std::vector<int> lat = mach.latencies(loop);
  const std::vector<ir::NodeId> topo = ir::topo_order_intra(loop);
  const std::vector<int> height = ir::node_heights(loop, lat, topo);
  const std::vector<int> depth = ir::node_depths(loop, lat, topo);

  const auto n = static_cast<std::size_t>(loop.num_instrs());
  std::vector<bool> ordered(n, false);
  std::vector<ir::NodeId> order;
  order.reserve(n);

  // Neighbour queries restricted to a node set, over all DDG edges.
  auto preds_in = [&](ir::NodeId v, const std::vector<bool>& in_set,
                      std::vector<ir::NodeId>& out) {
    for (const std::size_t ei : loop.in_edges(v)) {
      const ir::NodeId u = loop.dep(ei).src;
      if (in_set[static_cast<std::size_t>(u)] && !ordered[static_cast<std::size_t>(u)]) {
        out.push_back(u);
      }
    }
  };
  auto succs_in = [&](ir::NodeId v, const std::vector<bool>& in_set,
                      std::vector<ir::NodeId>& out) {
    for (const std::size_t ei : loop.out_edges(v)) {
      const ir::NodeId w = loop.dep(ei).dst;
      if (in_set[static_cast<std::size_t>(w)] && !ordered[static_cast<std::size_t>(w)]) {
        out.push_back(w);
      }
    }
  };

  enum class Dir { kBottomUp, kTopDown };

  for (const auto& set : sets) {
    std::vector<bool> in_set(n, false);
    for (const ir::NodeId v : set) in_set[static_cast<std::size_t>(v)] = true;

    // Seed: successors of the already-ordered nodes inside this set are
    // ordered top-down; predecessors bottom-up; otherwise start from the
    // deepest node (longest path below it) top-down.
    std::vector<ir::NodeId> ready;
    Dir dir = Dir::kTopDown;
    for (const ir::NodeId o : order) succs_in(o, in_set, ready);
    if (ready.empty()) {
      for (const ir::NodeId o : order) preds_in(o, in_set, ready);
      if (!ready.empty()) dir = Dir::kBottomUp;
    }
    if (ready.empty()) {
      ir::NodeId best = set.front();
      for (const ir::NodeId v : set) {
        if (height[static_cast<std::size_t>(v)] > height[static_cast<std::size_t>(best)]) best = v;
      }
      ready.push_back(best);
      dir = Dir::kTopDown;
    }

    int remaining = static_cast<int>(set.size());
    for (const ir::NodeId v : set) {
      if (ordered[static_cast<std::size_t>(v)]) --remaining;
    }

    while (remaining > 0) {
      while (!ready.empty()) {
        // Pick by criticality: top-down sweeps prefer maximal height
        // (longest path below), bottom-up sweeps prefer maximal depth.
        const auto* key = (dir == Dir::kTopDown) ? &height : &depth;
        auto it = std::max_element(ready.begin(), ready.end(), [&](ir::NodeId a, ir::NodeId b) {
          const int ka = (*key)[static_cast<std::size_t>(a)];
          const int kb = (*key)[static_cast<std::size_t>(b)];
          if (ka != kb) return ka < kb;
          return a > b;  // tie: smaller id wins under max_element
        });
        const ir::NodeId v = *it;
        ready.erase(it);
        if (ordered[static_cast<std::size_t>(v)]) continue;
        ordered[static_cast<std::size_t>(v)] = true;
        order.push_back(v);
        --remaining;
        if (dir == Dir::kTopDown) {
          succs_in(v, in_set, ready);
        } else {
          preds_in(v, in_set, ready);
        }
        // Deduplicate lazily: the `ordered` check above drops repeats.
      }
      if (remaining == 0) break;
      // Swing to the opposite direction from everything ordered so far.
      dir = (dir == Dir::kTopDown) ? Dir::kBottomUp : Dir::kTopDown;
      for (const ir::NodeId o : order) {
        if (dir == Dir::kTopDown) {
          succs_in(o, in_set, ready);
        } else {
          preds_in(o, in_set, ready);
        }
      }
      if (ready.empty()) {
        // Disconnected remainder inside the set: restart from the most
        // critical unordered node.
        ir::NodeId best = ir::kInvalidNode;
        for (const ir::NodeId v : set) {
          if (ordered[static_cast<std::size_t>(v)]) continue;
          if (best == ir::kInvalidNode ||
              height[static_cast<std::size_t>(v)] > height[static_cast<std::size_t>(best)]) {
            best = v;
          }
        }
        TMS_ASSERT(best != ir::kInvalidNode);
        ready.push_back(best);
        dir = Dir::kTopDown;
      }
    }
  }
  TMS_ASSERT(order.size() == n);
  return order;
}

}  // namespace tms::sched
