#include "sched/postpass.hpp"

#include <algorithm>

#include "ir/graph.hpp"
#include "sched/mii.hpp"
#include "support/assert.hpp"

namespace tms::sched {

CommPlan plan_communication(const Schedule& sched) {
  TMS_ASSERT(sched.complete());
  const ir::Loop& loop = sched.loop();

  CommPlan plan;
  std::vector<int> channel_of(static_cast<std::size_t>(loop.num_instrs()), -1);
  for (const std::size_t ei : sched.reg_dep_set()) {
    const ir::DepEdge& e = loop.dep(ei);
    const int dker = sched.kernel_distance(e);
    TMS_ASSERT(dker >= 1);
    int& ch = channel_of[static_cast<std::size_t>(e.src)];
    if (ch < 0) {
      ch = static_cast<int>(plan.channels.size());
      plan.channels.push_back(CommChannel{e.src, 0, {}});
    }
    CommChannel& channel = plan.channels[static_cast<std::size_t>(ch)];
    channel.hops = std::max(channel.hops, dker);
    channel.consumers.emplace_back(e.dst, dker);
  }
  for (const CommChannel& ch : plan.channels) {
    plan.copies_per_iter += ch.hops - 1;
    plan.comm_pairs_per_iter += ch.hops;
  }
  return plan;
}

LoopMetrics measure(const Schedule& sched, const machine::SpmtConfig& cfg) {
  TMS_ASSERT(sched.complete());
  const ir::Loop& loop = sched.loop();
  const machine::MachineModel& mach = sched.machine();

  LoopMetrics m;
  m.num_instrs = loop.num_instrs();
  m.num_sccs = ir::count_nontrivial_sccs(loop);
  m.mii = min_ii(loop, mach);
  m.ldp = ir::longest_dependence_path(loop, mach.latencies(loop));
  m.ii = sched.ii();
  m.max_live = sched.max_live();
  m.c_delay = sched.c_delay(cfg);
  m.stages = sched.stage_count();
  const CommPlan plan = plan_communication(sched);
  m.copies = plan.copies_per_iter;
  m.comm_pairs = plan.comm_pairs_per_iter;
  m.misspec_probability = sched.misspec_probability(cfg);
  return m;
}

}  // namespace tms::sched
