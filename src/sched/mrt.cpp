#include "sched/mrt.hpp"

namespace tms::sched {

ModuloReservationTable::ModuloReservationTable(const machine::MachineModel& mach, int ii)
    : mach_(mach), ii_(ii), issue_used_(static_cast<std::size_t>(ii), 0) {
  TMS_ASSERT(ii >= 1);
  fu_used_.assign(ir::kNumFuClasses, std::vector<int>(static_cast<std::size_t>(ii), 0));
}

bool ModuloReservationTable::can_place(ir::Opcode op, int cycle) const {
  const ir::FuClass c = ir::fu_class(op);
  const int row = row_of(cycle);
  if (c == ir::FuClass::kNone) return true;
  if (issue_used_[static_cast<std::size_t>(row)] >= mach_.issue_width()) return false;
  const int occ = mach_.occupancy(op);
  // A non-pipelined op whose occupancy reaches II would need the unit on
  // every row; allowed only if occupancy <= II.
  if (occ > ii_) return false;
  const int limit = mach_.fu_count(c);
  for (int k = 0; k < occ; ++k) {
    const int r = row_of(cycle + k);
    if (fu_used_[static_cast<std::size_t>(c)][static_cast<std::size_t>(r)] >= limit) return false;
  }
  return true;
}

void ModuloReservationTable::place(ir::Opcode op, int cycle) {
  TMS_ASSERT(can_place(op, cycle));
  const ir::FuClass c = ir::fu_class(op);
  if (c == ir::FuClass::kNone) return;
  ++issue_used_[static_cast<std::size_t>(row_of(cycle))];
  for (int k = 0; k < mach_.occupancy(op); ++k) {
    ++fu_used_[static_cast<std::size_t>(c)][static_cast<std::size_t>(row_of(cycle + k))];
  }
}

void ModuloReservationTable::remove(ir::Opcode op, int cycle) {
  const ir::FuClass c = ir::fu_class(op);
  if (c == ir::FuClass::kNone) return;
  const int row = row_of(cycle);
  TMS_ASSERT(issue_used_[static_cast<std::size_t>(row)] > 0);
  --issue_used_[static_cast<std::size_t>(row)];
  for (int k = 0; k < mach_.occupancy(op); ++k) {
    const int r = row_of(cycle + k);
    TMS_ASSERT(fu_used_[static_cast<std::size_t>(c)][static_cast<std::size_t>(r)] > 0);
    --fu_used_[static_cast<std::size_t>(c)][static_cast<std::size_t>(r)];
  }
}

}  // namespace tms::sched
