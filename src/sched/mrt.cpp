#include "sched/mrt.hpp"

#include <algorithm>

namespace tms::sched {

ModuloReservationTable::ModuloReservationTable(const machine::MachineModel& mach, int ii)
    : mach_(mach) {
  reset(ii);
}

void ModuloReservationTable::reset(int ii) {
  TMS_ASSERT(ii >= 1);
  ii_ = ii;
  words_ = (ii + 63) / 64;
  const auto rows = static_cast<std::size_t>(ii);
  const auto words = static_cast<std::size_t>(words_);
  issue_used_.assign(rows, 0);
  fu_used_.assign(ir::kNumFuClasses * rows, 0);
  issue_full_.assign(words, 0);
  fu_full_.assign(ir::kNumFuClasses * words, 0);
  for (std::size_t c = 0; c < ir::kNumFuClasses; ++c) {
    fu_limit_[c] = mach_.fu_count(static_cast<ir::FuClass>(c));
  }
  // A class with zero units is full on every row; pre-setting the bitmap
  // keeps the probe branch-free (the count path rejected via `0 >= 0`).
  for (std::size_t c = 0; c < ir::kNumFuClasses; ++c) {
    if (fu_limit_[c] == 0) {
      std::uint64_t* full = fu_full(static_cast<ir::FuClass>(c));
      for (int r = 0; r < ii_; ++r) set_bit(full, r);
    }
  }
}

bool ModuloReservationTable::any_set(const std::uint64_t* bits, int lo, int hi) {
  if (lo >= hi) return false;
  const int wlo = lo >> 6;
  const int whi = (hi - 1) >> 6;
  const std::uint64_t head = ~std::uint64_t{0} << (lo & 63);
  const std::uint64_t tail = ~std::uint64_t{0} >> (63 - ((hi - 1) & 63));
  if (wlo == whi) return (bits[wlo] & head & tail) != 0;
  if ((bits[wlo] & head) != 0) return true;
  for (int w = wlo + 1; w < whi; ++w) {
    if (bits[w] != 0) return true;
  }
  return (bits[whi] & tail) != 0;
}

bool ModuloReservationTable::can_place(ir::Opcode op, int cycle) const {
  const ir::FuClass c = ir::fu_class(op);
  if (c == ir::FuClass::kNone) return true;
  const int row = row_of(cycle);
  if (test_bit(issue_full_.data(), row)) return false;
  const int occ = mach_.occupancy(op);
  // A non-pipelined op whose occupancy reaches II would need the unit on
  // every row; allowed only if occupancy <= II.
  if (occ > ii_) return false;
  const std::uint64_t* full = fu_full(c);
  if (occ == 1) return !test_bit(full, row);
  const int wrap = row + occ - ii_;  // rows past the table end, if any
  if (wrap <= 0) return !any_set(full, row, row + occ);
  return !any_set(full, row, ii_) && !any_set(full, 0, wrap);
}

void ModuloReservationTable::place(ir::Opcode op, int cycle) {
  TMS_ASSERT(can_place(op, cycle));
  const ir::FuClass c = ir::fu_class(op);
  if (c == ir::FuClass::kNone) return;
  const int row = row_of(cycle);
  if (++issue_used_[static_cast<std::size_t>(row)] >= mach_.issue_width()) {
    set_bit(issue_full_.data(), row);
  }
  int* used = fu_used_.data() + static_cast<std::size_t>(c) * static_cast<std::size_t>(ii_);
  std::uint64_t* full = fu_full(c);
  const int limit = fu_limit_[static_cast<std::size_t>(c)];
  for (int k = 0; k < mach_.occupancy(op); ++k) {
    const int r = row_of(cycle + k);
    if (++used[r] >= limit) set_bit(full, r);
  }
}

void ModuloReservationTable::remove(ir::Opcode op, int cycle) {
  const ir::FuClass c = ir::fu_class(op);
  if (c == ir::FuClass::kNone) return;
  const int row = row_of(cycle);
  TMS_ASSERT(issue_used_[static_cast<std::size_t>(row)] > 0);
  if (--issue_used_[static_cast<std::size_t>(row)] < mach_.issue_width()) {
    clear_bit(issue_full_.data(), row);
  }
  int* used = fu_used_.data() + static_cast<std::size_t>(c) * static_cast<std::size_t>(ii_);
  std::uint64_t* full = fu_full(c);
  const int limit = fu_limit_[static_cast<std::size_t>(c)];
  for (int k = 0; k < mach_.occupancy(op); ++k) {
    const int r = row_of(cycle + k);
    TMS_ASSERT(used[r] > 0);
    if (--used[r] < limit) clear_bit(full, r);
  }
}

// ---- ScalarReferenceMrt --------------------------------------------------

ScalarReferenceMrt::ScalarReferenceMrt(const machine::MachineModel& mach, int ii)
    : mach_(mach), ii_(ii), issue_used_(static_cast<std::size_t>(ii), 0) {
  TMS_ASSERT(ii >= 1);
  fu_used_.assign(ir::kNumFuClasses, std::vector<int>(static_cast<std::size_t>(ii), 0));
}

bool ScalarReferenceMrt::can_place(ir::Opcode op, int cycle) const {
  const ir::FuClass c = ir::fu_class(op);
  const int row = row_of(cycle);
  if (c == ir::FuClass::kNone) return true;
  if (issue_used_[static_cast<std::size_t>(row)] >= mach_.issue_width()) return false;
  const int occ = mach_.occupancy(op);
  if (occ > ii_) return false;
  const int limit = mach_.fu_count(c);
  for (int k = 0; k < occ; ++k) {
    const int r = row_of(cycle + k);
    if (fu_used_[static_cast<std::size_t>(c)][static_cast<std::size_t>(r)] >= limit) return false;
  }
  return true;
}

void ScalarReferenceMrt::place(ir::Opcode op, int cycle) {
  TMS_ASSERT(can_place(op, cycle));
  const ir::FuClass c = ir::fu_class(op);
  if (c == ir::FuClass::kNone) return;
  ++issue_used_[static_cast<std::size_t>(row_of(cycle))];
  for (int k = 0; k < mach_.occupancy(op); ++k) {
    ++fu_used_[static_cast<std::size_t>(c)][static_cast<std::size_t>(row_of(cycle + k))];
  }
}

void ScalarReferenceMrt::remove(ir::Opcode op, int cycle) {
  const ir::FuClass c = ir::fu_class(op);
  if (c == ir::FuClass::kNone) return;
  const int row = row_of(cycle);
  TMS_ASSERT(issue_used_[static_cast<std::size_t>(row)] > 0);
  --issue_used_[static_cast<std::size_t>(row)];
  for (int k = 0; k < mach_.occupancy(op); ++k) {
    const int r = row_of(cycle + k);
    TMS_ASSERT(fu_used_[static_cast<std::size_t>(c)][static_cast<std::size_t>(r)] > 0);
    --fu_used_[static_cast<std::size_t>(c)][static_cast<std::size_t>(r)];
  }
}

}  // namespace tms::sched
