// Thread-Sensitive Modulo Scheduling (the paper's Section 4.3, Fig. 3).
//
// TMS generalises SMS for SpMT multicores. Instead of minimising II, it
// minimises the cost model's per-iteration time F(II, C_delay) =
// max(C_spn, C_ci, C_delay, (II + C_ci + max(C_spn, C_delay))/ncore),
// enumerating (II, C_delay) pairs in increasing F order. For each pair a
// schedule is attempted in which
//   C1: every inter-thread register dependence has sync(x,y) <= C_delay
//       (Definition 2), and
//   C2: the misspeculation frequency of the non-preserved inter-thread
//       memory dependences stays <= P_max (Definitions 3-4, Eq. 3).
// Slot selection additionally prefers, within the SMS window, the cycle
// that introduces the smallest synchronisation delay — this is what turns
// the motivating example's 11-cycle stall into a 5-cycle one.
#pragma once

#include <optional>
#include <vector>

#include "machine/spmt_config.hpp"
#include "sched/schedule.hpp"

namespace tms::sched {

struct TmsOptions {
  /// Misspeculation-frequency thresholds, tried strictest-first for each
  /// (II, C_delay) pair (Fig. 3 line 1; "several values can be tried").
  std::vector<double> p_max_values = {0.01, 0.10, 1.0};
  /// Budget on II above MII, as in SMS.
  int max_ii_slack = 256;
  /// Cap on the number of (II, C_delay) pairs attempted before giving up.
  int max_pair_attempts = 20000;
  /// How many consecutive non-improving IIs to scan at the incumbent's F
  /// value before stopping (equal-F schedules can still trade C_delay or
  /// communication pairs down).
  int plateau_budget = 8;
  /// Lower bound on the II sweep (register-pressure wrappers raise it);
  /// 0 means start at MII.
  int ii_floor = 0;
  /// Reuse one workspace (Schedule, MRT, queues, scratch) across the
  /// relaxation ladder's rungs, and skip P_max sweeps that a stricter
  /// C2-rejection-free sweep already proved identical. Both are exactly
  /// outcome-preserving — same schedule, thresholds, and pairs_tried —
  /// and the property suite holds this flag to account: disabling it
  /// runs every rung from freshly constructed state as the reference.
  bool ladder_reuse = true;
};

struct TmsResult {
  Schedule schedule;        ///< complete and normalised
  int mii = 0;
  int c_delay_threshold = 0;  ///< the C_delay the schedule was found under
  double p_max = 0.0;         ///< the P_max the schedule was found under
  double f_value = 0.0;       ///< F(II, C_delay) of the accepted schedule
  double misspec_probability = 0.0;  ///< P_M of the final schedule (Eq. 3)
  int pairs_tried = 0;        ///< (II, C_delay) combinations attempted
};

std::optional<TmsResult> tms_schedule(const ir::Loop& loop, const machine::MachineModel& mach,
                                      const machine::SpmtConfig& cfg,
                                      const TmsOptions& opts = {});

/// One scheduling attempt at fixed thresholds (II, C_delay, P_max) —
/// Fig. 3's inner loop body. Exposed for tests and ablation studies.
std::optional<Schedule> tms_try_thresholds(const ir::Loop& loop,
                                           const machine::MachineModel& mach,
                                           const machine::SpmtConfig& cfg, int ii, int c_delay,
                                           double p_max);

}  // namespace tms::sched
