// A modulo schedule of a loop, plus the paper's per-schedule analyses.
//
// slot(v) is the absolute schedule cycle assigned to node v; it may be
// negative while scheduling (SMS schedules in both directions) and is
// normalised afterwards. Derived quantities:
//   row(v)    = slot(v) mod II      (position in the kernel)
//   stage(v)  = floor(slot(v)/II)   (software pipeline stage)
//   d_ker(e)  = d(e) + stage(dst) - stage(src)          [Definition 1]
//   sync(x,y) = row(x) - row(y) + lat(x) + C_reg_com    [Definition 2]
// Inter-thread (inter-iteration-in-kernel) register flow dependences have
// d_ker >= 1 and are synchronised with SEND/RECV; memory dependences with
// d_ker >= 1 are speculated unless "preserved" [Definition 3].
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/loop.hpp"
#include "machine/machine.hpp"
#include "machine/spmt_config.hpp"

namespace tms::sched {

class Schedule {
 public:
  /// The schedule is a view over `loop` and `mach`: both must outlive the
  /// Schedule (and any SmsResult/TmsResult carrying one). Passing a
  /// temporary loop to a scheduler and keeping the result is an error.
  Schedule(const ir::Loop& loop, const machine::MachineModel& mach, int ii);

  /// Clears every placement and re-targets the schedule at a new II,
  /// keeping the slot storage. Equivalent to constructing afresh: stale
  /// slot values are unobservable because slot() asserts placed_.
  void reset(int ii);

  const ir::Loop& loop() const { return *loop_; }
  const machine::MachineModel& machine() const { return *mach_; }
  int ii() const { return ii_; }

  bool is_placed(ir::NodeId v) const { return placed_.at(static_cast<std::size_t>(v)); }
  int slot(ir::NodeId v) const;
  void set_slot(ir::NodeId v, int cycle);
  void clear_slot(ir::NodeId v);
  int num_placed() const { return num_placed_; }
  bool complete() const { return num_placed_ == loop_->num_instrs(); }

  int row(ir::NodeId v) const {
    const int r = slot(v) % ii_;
    return r < 0 ? r + ii_ : r;
  }
  /// Floor division so that negative slots land in negative stages.
  int stage(ir::NodeId v) const {
    const int s = slot(v);
    return (s >= 0) ? s / ii_ : -(((-s) + ii_ - 1) / ii_);
  }

  /// Definition 1: dependence distance as seen in the kernel.
  int kernel_distance(const ir::DepEdge& e) const {
    return e.distance + stage(e.dst) - stage(e.src);
  }

  /// Definition 2: synchronisation delay of an inter-iteration register
  /// dependence (applied per copy-chain hop; for d_ker > 1 this is the
  /// per-hop delay of the chain the post-pass will materialise).
  int sync_delay(const ir::DepEdge& e, const machine::SpmtConfig& cfg) const;

  /// Memory analogue of Definition 2 without the communication term: the
  /// number of cycles by which the consumer thread must lag for the
  /// speculated dependence x->y to be naturally preserved.
  int mem_gap(const ir::DepEdge& e) const;

  /// Definition 3: is the inter-thread memory dependence `mem` preserved
  /// by the synchronisation delays of the register dependences `reg_deps`
  /// (edge indices into loop().deps())?
  bool preserved(const ir::DepEdge& mem, const std::vector<std::size_t>& reg_deps,
                 const machine::SpmtConfig& cfg) const;

  /// Definition 4 specialised: indices of inter-iteration register
  /// (resp. memory) flow dependences whose endpoints are both placed.
  /// Only kernel-distance >= 1 edges qualify (they cross threads).
  std::vector<std::size_t> reg_dep_set() const;
  std::vector<std::size_t> mem_dep_set() const;

  /// Shift all slots so the minimum stage is 0 (post-scheduling cleanup).
  void normalise();

  int min_slot() const;
  int max_slot() const;
  /// Number of pipeline stages of the kernel (1 + max stage) after
  /// normalisation.
  int stage_count() const;

  // ---- Traditional quality metrics (Table 2 / Table 3) -----------------

  /// MaxLive: maximum number of simultaneously live scalar values at any
  /// kernel row, computed from flow-dependence lifetimes.
  int max_live() const;

  /// C_delay of the schedule: the largest sync delay over all inter-thread
  /// register flow dependences (0 if there are none, i.e. DOALL-like).
  int c_delay(const machine::SpmtConfig& cfg) const;

  /// Misspeculation probability P_M (Eq. 3) over the schedule's
  /// non-preserved inter-thread memory dependences:
  /// P_M = 1 - prod(1 - p_e). Requires a complete schedule.
  double misspec_probability(const machine::SpmtConfig& cfg) const;

  /// The non-preserved inter-thread memory dependences themselves (edge
  /// indices) — these are the dependences the hardware may roll back.
  std::vector<std::size_t> speculated_deps(const machine::SpmtConfig& cfg) const;

  /// Validity: every dependence satisfies the modulo constraint
  /// slot(dst) >= slot(src) + delay - II*distance. Returns a diagnostic
  /// for the first violated edge, or nullopt if valid. Requires a
  /// complete schedule.
  std::optional<std::string> validate() const;

 private:
  const ir::Loop* loop_;
  const machine::MachineModel* mach_;
  int ii_;
  std::vector<int> slots_;
  std::vector<bool> placed_;
  int num_placed_ = 0;
};

}  // namespace tms::sched
