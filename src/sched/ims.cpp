#include "sched/ims.hpp"

#include <algorithm>
#include <deque>
#include <vector>

#include "ir/graph.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sched/dep_delay.hpp"
#include "sched/mii.hpp"
#include "sched/mrt.hpp"
#include "support/assert.hpp"

namespace tms::sched {
namespace {

/// Hot-loop tallies, flushed to the registry once per pass.
struct SlotTally {
  std::uint64_t tried = 0;
  std::uint64_t mrt = 0;
  std::uint64_t ejected = 0;

  ~SlotTally() {
    obs::Counters& c = obs::counters();
    if (tried != 0) c.sched_slots_tried.add(tried);
    if (mrt != 0) c.sched_slot_reject_mrt.add(mrt);
    if (ejected != 0) c.sched_ejections.add(ejected);
  }
};

/// One IMS pass at a fixed II.
std::optional<Schedule> try_ii(const ir::Loop& loop, const machine::MachineModel& mach, int ii,
                               const std::vector<int>& height, int budget) {
  const auto n = static_cast<std::size_t>(loop.num_instrs());
  Schedule ps(loop, mach, ii);
  ModuloReservationTable mrt(mach, ii);

  // Never-scheduled-before operations start at their dependence-driven
  // earliest cycle; re-scheduled ones must move at least one cycle past
  // their previous position to guarantee progress.
  std::vector<int> prev_slot(n, -1);
  std::vector<bool> ever_placed(n, false);

  // Highest height first; ties by node id for determinism.
  auto priority_less = [&](ir::NodeId a, ir::NodeId b) {
    const int ha = height[static_cast<std::size_t>(a)];
    const int hb = height[static_cast<std::size_t>(b)];
    if (ha != hb) return ha > hb;
    return a < b;
  };
  std::vector<ir::NodeId> work;
  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) work.push_back(v);
  std::sort(work.begin(), work.end(), priority_less);
  std::deque<ir::NodeId> queue(work.begin(), work.end());
  SlotTally tally;

  while (!queue.empty()) {
    if (budget-- <= 0) return std::nullopt;
    const ir::NodeId v = queue.front();
    queue.pop_front();

    // Earliest start from placed predecessors.
    int estart = 0;
    for (const std::size_t ei : loop.in_edges(v)) {
      const ir::DepEdge& e = loop.dep(ei);
      if (e.src == v || !ps.is_placed(e.src)) continue;
      estart = std::max(estart, ps.slot(e.src) + dep_delay(mach, loop, e) - ii * e.distance);
    }

    int chosen = -1;
    for (int c = estart; c < estart + ii; ++c) {
      ++tally.tried;
      if (mrt.can_place(loop.instr(v).op, c)) {
        chosen = c;
        break;
      }
      ++tally.mrt;
    }
    bool forced = false;
    if (chosen < 0) {
      // Force placement, evicting whatever stands in the way (Rau's
      // schedule-and-displace step).
      chosen = ever_placed[static_cast<std::size_t>(v)]
                   ? std::max(estart, prev_slot[static_cast<std::size_t>(v)] + 1)
                   : estart;
      forced = true;
    }

    if (forced) {
      // Evict resource conflicts at the chosen cycle.
      // Anything issued in the same modulo row may hold the unit or the
      // issue bandwidth v needs; evict one at a time until v fits.
      const int target_row = ((chosen % ii) + ii) % ii;
      for (ir::NodeId w = 0; w < loop.num_instrs(); ++w) {
        if (w == v || !ps.is_placed(w)) continue;
        if (ps.row(w) != target_row) continue;
        mrt.remove(loop.instr(w).op, ps.slot(w));
        ps.clear_slot(w);
        queue.push_back(w);
        ++tally.ejected;
        if (mrt.can_place(loop.instr(v).op, chosen)) break;
      }
      if (!mrt.can_place(loop.instr(v).op, chosen)) {
        // Could not clear the row (e.g. occupancy wrap-around): give up
        // on this II.
        return std::nullopt;
      }
    }

    // Evict placed successors whose dependence constraint the new
    // placement violates (predecessor constraints were honoured above).
    for (const std::size_t ei : loop.out_edges(v)) {
      const ir::DepEdge& e = loop.dep(ei);
      if (e.dst == v || !ps.is_placed(e.dst)) continue;
      if (ps.slot(e.dst) < chosen + dep_delay(mach, loop, e) - ii * e.distance) {
        mrt.remove(loop.instr(e.dst).op, ps.slot(e.dst));
        ps.clear_slot(e.dst);
        queue.push_back(e.dst);
        ++tally.ejected;
      }
    }

    mrt.place(loop.instr(v).op, chosen);
    ps.set_slot(v, chosen);
    prev_slot[static_cast<std::size_t>(v)] = chosen;
    ever_placed[static_cast<std::size_t>(v)] = true;
  }
  return ps;
}

}  // namespace

std::optional<ImsResult> ims_schedule(const ir::Loop& loop, const machine::MachineModel& mach,
                                      const ImsOptions& opts) {
  TMS_ASSERT_MSG(!loop.validate().has_value(), "loop must be well-formed");
  const int mii = min_ii(loop, mach);
  const std::vector<int> height = ir::node_heights(loop, mach.latencies(loop));

  for (int ii = mii; ii <= mii + opts.max_ii_slack; ++ii) {
    if (!recurrences_feasible(loop, mach, ii)) continue;
    obs::counters().sched_attempts.add(1);
    TMS_TRACE_SPAN(span, "sched", "ims.attempt");
    std::optional<Schedule> s =
        try_ii(loop, mach, ii, height, opts.budget_factor * loop.num_instrs());
    TMS_TRACE_SPAN_ARG(span, obs::targ("ii", ii), obs::targ("feasible", s.has_value() ? 1 : 0));
    if (s.has_value()) {
      s->normalise();
      if (s->validate().has_value()) continue;  // eviction raced a constraint; try next II
      obs::Counters& c = obs::counters();
      c.sched_attempts_feasible.add(1);
      c.sched_schedules.add(1);
      c.sched_ii_minus_mii.record(static_cast<std::uint64_t>(std::max(0, ii - mii)));
      return ImsResult{std::move(*s), mii, ii - mii + 1};
    }
  }
  return std::nullopt;
}

}  // namespace tms::sched
