// Swing Modulo Scheduling (Llosa, PACT'96) — the baseline the paper builds
// on, as adopted in GCC 4.1.1.
//
// SMS iterates II upward from MII; for each II it walks the nodes in the
// SMS priority order, placing each at the first resource-feasible cycle of
// its scheduling window. There is no backtracking: if any node fails, the
// II is bumped and scheduling restarts.
#pragma once

#include <optional>

#include "sched/schedule.hpp"

namespace tms::sched {

struct SmsOptions {
  /// Give up after this many II values above MII (a safety valve; real
  /// loops schedule within a handful of attempts).
  int max_ii_slack = 256;
  /// Lower bound on the II to try (used by register-pressure-aware
  /// wrappers to force larger IIs); 0 means start at MII.
  int ii_floor = 0;
};

struct SmsResult {
  Schedule schedule;       ///< complete and normalised
  int mii = 0;
  int attempts = 0;        ///< number of II values tried
};

/// Returns nullopt only if no schedule was found within the II budget
/// (which indicates a malformed loop rather than a hard instance).
std::optional<SmsResult> sms_schedule(const ir::Loop& loop, const machine::MachineModel& mach,
                                      const SmsOptions& opts = {});

}  // namespace tms::sched
