// Modulo reservation table (MRT).
//
// Tracks functional-unit occupancy and issue-slot usage per modulo row.
// An instruction placed at absolute cycle c occupies:
//   - one issue slot at row c mod II, and
//   - its functional unit at rows (c mod II) .. (c + occupancy - 1 mod II).
// Non-pipelined units (occupancy > 1) therefore wrap around the table,
// which is exactly why ResII must account for total occupancy.
#pragma once

#include <vector>

#include "ir/opcode.hpp"
#include "machine/machine.hpp"
#include "support/assert.hpp"

namespace tms::sched {

class ModuloReservationTable {
 public:
  ModuloReservationTable(const machine::MachineModel& mach, int ii);

  int ii() const { return ii_; }

  /// Mathematical modulo: result in [0, ii) even for negative cycles.
  int row_of(int cycle) const {
    const int r = cycle % ii_;
    return r < 0 ? r + ii_ : r;
  }

  bool can_place(ir::Opcode op, int cycle) const;
  void place(ir::Opcode op, int cycle);
  void remove(ir::Opcode op, int cycle);

  int issue_used(int row) const { return issue_used_.at(static_cast<std::size_t>(row)); }
  int fu_used(ir::FuClass c, int row) const {
    return fu_used_[static_cast<std::size_t>(c)].at(static_cast<std::size_t>(row));
  }

 private:
  const machine::MachineModel& mach_;
  int ii_;
  std::vector<int> issue_used_;                          ///< per row
  std::vector<std::vector<int>> fu_used_;                ///< [class][row]
};

}  // namespace tms::sched
