// Modulo reservation table (MRT).
//
// Tracks functional-unit occupancy and issue-slot usage per modulo row.
// An instruction placed at absolute cycle c occupies:
//   - one issue slot at row c mod II, and
//   - its functional unit at rows (c mod II) .. (c + occupancy - 1 mod II).
// Non-pipelined units (occupancy > 1) therefore wrap around the table,
// which is exactly why ResII must account for total occupancy.
//
// can_place() is the innermost probe of every scheduler in the tree (it
// runs once per candidate cycle per node per relaxation-ladder rung), so
// the table keeps two representations: exact per-row usage counts, and
// "full-row" bitmaps — bit r is set exactly when row r has no capacity
// left (issue slots exhausted, or the FU class at its unit count). A
// probe is then one or two bit tests plus a word-wise scan for
// non-pipelined ranges, instead of `occupancy` indexed count compares.
// The counts remain authoritative; the bitmaps are derived on every
// place/remove and only answer "full or not".
//
// ScalarReferenceMrt retains the original count-only implementation.
// It is not used by any scheduler — it exists so tests/mrt_test.cpp can
// assert, over randomized machine shapes and operation sequences, that
// the bitmap fast path answers bit-for-bit like the scalar reference.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ir/opcode.hpp"
#include "machine/machine.hpp"
#include "support/assert.hpp"

namespace tms::sched {

class ModuloReservationTable {
 public:
  ModuloReservationTable(const machine::MachineModel& mach, int ii);

  /// Re-dimensions the table for a new II and clears every reservation,
  /// reusing the existing storage. Equivalent to constructing afresh;
  /// this is what lets the TMS relaxation ladder recycle one table
  /// across hundreds of attempts instead of reallocating each time.
  void reset(int ii);

  int ii() const { return ii_; }

  /// Mathematical modulo: result in [0, ii) even for negative cycles.
  int row_of(int cycle) const {
    const int r = cycle % ii_;
    return r < 0 ? r + ii_ : r;
  }

  bool can_place(ir::Opcode op, int cycle) const;
  void place(ir::Opcode op, int cycle);
  void remove(ir::Opcode op, int cycle);

  int issue_used(int row) const { return issue_used_.at(static_cast<std::size_t>(row)); }
  int fu_used(ir::FuClass c, int row) const {
    TMS_ASSERT(row >= 0 && row < ii_);
    return fu_used_[static_cast<std::size_t>(c) * static_cast<std::size_t>(ii_) +
                    static_cast<std::size_t>(row)];
  }

 private:
  static bool test_bit(const std::uint64_t* bits, int i) {
    return (bits[i >> 6] >> (i & 63)) & 1u;
  }
  static void set_bit(std::uint64_t* bits, int i) { bits[i >> 6] |= std::uint64_t{1} << (i & 63); }
  static void clear_bit(std::uint64_t* bits, int i) {
    bits[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  /// Any bit set in [lo, hi)? Word-wise, no wrap handling (callers split).
  static bool any_set(const std::uint64_t* bits, int lo, int hi);

  const std::uint64_t* fu_full(ir::FuClass c) const {
    return fu_full_.data() + static_cast<std::size_t>(c) * static_cast<std::size_t>(words_);
  }
  std::uint64_t* fu_full(ir::FuClass c) {
    return fu_full_.data() + static_cast<std::size_t>(c) * static_cast<std::size_t>(words_);
  }

  const machine::MachineModel& mach_;
  int ii_ = 0;
  int words_ = 0;                        ///< 64-bit words per bitmap
  std::vector<int> issue_used_;          ///< per row
  std::vector<int> fu_used_;             ///< [class * ii + row]
  std::vector<std::uint64_t> issue_full_;  ///< bit r: issue slots at row r exhausted
  std::vector<std::uint64_t> fu_full_;     ///< [class][word]; bit r: FU class full at row r
  std::array<int, ir::kNumFuClasses> fu_limit_{};  ///< cached unit counts
};

/// The pre-bitmap MRT, kept verbatim as the differential-testing
/// reference for ModuloReservationTable (see file comment). Scalar
/// per-row counts only; asymptotically slower probes, trivially correct.
class ScalarReferenceMrt {
 public:
  ScalarReferenceMrt(const machine::MachineModel& mach, int ii);

  int ii() const { return ii_; }
  int row_of(int cycle) const {
    const int r = cycle % ii_;
    return r < 0 ? r + ii_ : r;
  }

  bool can_place(ir::Opcode op, int cycle) const;
  void place(ir::Opcode op, int cycle);
  void remove(ir::Opcode op, int cycle);

  int issue_used(int row) const { return issue_used_.at(static_cast<std::size_t>(row)); }
  int fu_used(ir::FuClass c, int row) const {
    return fu_used_[static_cast<std::size_t>(c)].at(static_cast<std::size_t>(row));
  }

 private:
  const machine::MachineModel& mach_;
  int ii_;
  std::vector<int> issue_used_;            ///< per row
  std::vector<std::vector<int>> fu_used_;  ///< [class][row]
};

}  // namespace tms::sched
