#include "sched/tms.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "cost/cost_model.hpp"
#include "ir/graph.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sched/dep_delay.hpp"
#include "sched/mii.hpp"
#include "sched/mrt.hpp"
#include "sched/order.hpp"
#include "sched/postpass.hpp"
#include "sched/window.hpp"
#include "support/assert.hpp"

namespace tms::sched {
namespace {

/// New inter-thread register dependences that appear if `v` is placed at
/// its tentative slot: edges adjacent to `v` whose other endpoint is
/// placed and whose kernel distance is >= 1.
void collect_new_reg_deps(const Schedule& ps, const ir::Loop& loop, ir::NodeId v,
                          std::vector<std::size_t>& out) {
  out.clear();
  for (const std::size_t ei : loop.in_edges(v)) {
    const ir::DepEdge& e = loop.dep(ei);
    if (!e.is_register_flow()) continue;
    if (e.src != v && !ps.is_placed(e.src)) continue;
    if (ps.kernel_distance(e) >= 1) out.push_back(ei);
  }
  for (const std::size_t ei : loop.out_edges(v)) {
    const ir::DepEdge& e = loop.dep(ei);
    if (!e.is_register_flow()) continue;
    if (e.src == e.dst) continue;  // self edges already handled above
    if (!ps.is_placed(e.dst)) continue;
    if (ps.kernel_distance(e) >= 1) out.push_back(ei);
  }
}

void collect_new_mem_deps(const Schedule& ps, const ir::Loop& loop, ir::NodeId v,
                          std::vector<std::size_t>& out) {
  out.clear();
  for (const std::size_t ei : loop.in_edges(v)) {
    const ir::DepEdge& e = loop.dep(ei);
    if (!e.is_memory_flow()) continue;
    if (e.src != v && !ps.is_placed(e.src)) continue;
    if (ps.kernel_distance(e) >= 1) out.push_back(ei);
  }
  for (const std::size_t ei : loop.out_edges(v)) {
    const ir::DepEdge& e = loop.dep(ei);
    if (!e.is_memory_flow()) continue;
    if (e.src == e.dst) continue;
    if (!ps.is_placed(e.dst)) continue;
    if (ps.kernel_distance(e) >= 1) out.push_back(ei);
  }
}

struct SlotCheck {
  bool ok = false;
  int max_new_sync = 0;        ///< largest sync delay introduced by this slot
  const char* reject = nullptr;  ///< "c_delay" or "p_max" when !ok
};

/// Reusable storage for the relaxation ladder. One workspace serves every
/// rung of a tms_schedule call: the Schedule and MRT are reset() instead
/// of reconstructed, the ready queue is a vector with a head index (the
/// only push_front happens on a node that was just popped, so the slot in
/// front of the head is always free), and the scratch vectors keep the
/// per-slot dependence probes allocation-free. Valid for one (loop, mach)
/// pair — reset() does not re-target the Schedule's loop.
struct TmsWorkspace {
  std::optional<Schedule> sched;
  std::optional<ModuloReservationTable> mrt;
  std::vector<ir::NodeId> queue;
  std::size_t qhead = 0;
  std::vector<std::size_t> reg_ps;
  std::vector<std::size_t> mem_ps;
  std::vector<std::size_t> tmp;
  std::vector<std::size_t> reg_v;    ///< check_slot scratch
  std::vector<std::size_t> mem_v;    ///< check_slot scratch
  std::vector<std::size_t> reg_all;  ///< check_slot scratch
  Window window;
};

/// Hot-loop tallies, flushed to the registry once per scheduling pass so
/// the per-slot cost stays free of atomic traffic.
struct SlotTally {
  std::uint64_t tried = 0;
  std::uint64_t mrt = 0;
  std::uint64_t c_delay = 0;
  std::uint64_t p_max = 0;
  std::uint64_t headroom = 0;
  std::uint64_t none = 0;
  std::uint64_t ejected = 0;

  ~SlotTally() {
    obs::Counters& c = obs::counters();
    if (tried != 0) c.sched_slots_tried.add(tried);
    if (mrt != 0) c.sched_slot_reject_mrt.add(mrt);
    if (c_delay != 0) c.sched_slot_reject_c_delay.add(c_delay);
    if (p_max != 0) c.sched_slot_reject_p_max.add(p_max);
    if (headroom != 0) c.sched_slot_reject_headroom.add(headroom);
    if (none != 0) c.sched_window_exhausted.add(none);
    if (ejected != 0) c.sched_ejections.add(ejected);
  }
};

/// ISSUE_SLOT_SELECTION body for one candidate cycle (Fig. 3 lines 20-26),
/// evaluated with `v` tentatively placed at `cycle`.
SlotCheck check_slot(Schedule& ps, const machine::SpmtConfig& cfg, ir::NodeId v, int cycle,
                     int c_delay, double p_max, const std::vector<std::size_t>& reg_ps,
                     const std::vector<std::size_t>& mem_ps, TmsWorkspace& ws) {
  const ir::Loop& loop = ps.loop();
  ps.set_slot(v, cycle);

  SlotCheck result;
  std::vector<std::size_t>& reg_v = ws.reg_v;
  std::vector<std::size_t>& mem_v = ws.mem_v;
  collect_new_reg_deps(ps, loop, v, reg_v);
  collect_new_mem_deps(ps, loop, v, mem_v);

  // C1: every new synchronised dependence within the delay threshold.
  bool ok = true;
  for (const std::size_t ei : reg_v) {
    const int s = ps.sync_delay(loop.dep(ei), cfg);
    result.max_new_sync = std::max(result.max_new_sync, s);
    if (s > c_delay) {
      ok = false;
      result.reject = "c_delay";
      break;
    }
  }

  // C2: only evaluated when v introduces new speculated dependences
  // (Fig. 3 line 26: M_v != {} ==> misspec frequency <= P_max).
  if (ok && !mem_v.empty() && p_max < 1.0) {
    std::vector<std::size_t>& reg_all = ws.reg_all;
    reg_all.assign(reg_ps.begin(), reg_ps.end());
    reg_all.insert(reg_all.end(), reg_v.begin(), reg_v.end());
    double keep = 1.0;
    auto fold_nonpreserved = [&](const std::vector<std::size_t>& mems) {
      for (const std::size_t mi : mems) {
        const ir::DepEdge& m = loop.dep(mi);
        if (!ps.preserved(m, reg_all, cfg)) keep *= 1.0 - m.probability;
      }
    };
    fold_nonpreserved(mem_ps);
    fold_nonpreserved(mem_v);
    if (1.0 - keep > p_max + 1e-12) {
      ok = false;
      result.reject = "p_max";
    }
  }

  ps.clear_slot(v);
  result.ok = ok;
  return result;
}

/// One TMS pass at fixed (II, C_delay, P_max). Within the SMS window,
/// feasible slots are ranked by the sync delay they introduce (smallest
/// first), with the SMS lifetime-minimal preference as tie-break.
///
/// Unlike plain SMS, the pass backtracks: when a node has no feasible
/// slot (typically because an early-placed speculated-dependence
/// consumer empties a two-sided window, or a predecessor landed on a row
/// that strands its consumers), the blocking placed neighbours are
/// ejected and re-queued, bounded by a global ejection budget. This is
/// the iterative-modulo-scheduling style of recovery, needed because
/// thread-sensitive slot choices drift much further from the
/// lifetime-minimal positions than SMS's ever do.
/// `saw_c2_reject`, when non-null, is set if any candidate slot was
/// rejected by the misspeculation-frequency check (C2) — the signal the
/// ladder uses to prove a whole P_max sweep redundant.
std::optional<Schedule> try_thresholds(const ir::Loop& loop, const machine::MachineModel& mach,
                                       const machine::SpmtConfig& cfg, int ii, int c_delay,
                                       double p_max, const std::vector<ir::NodeId>& order,
                                       const std::vector<int>& depth, TmsWorkspace& ws,
                                       bool* saw_c2_reject = nullptr) {
  if (ws.sched.has_value()) {
    ws.sched->reset(ii);
  } else {
    ws.sched.emplace(loop, mach, ii);
  }
  if (ws.mrt.has_value()) {
    ws.mrt->reset(ii);
  } else {
    ws.mrt.emplace(mach, ii);
  }
  Schedule& ps = *ws.sched;
  ModuloReservationTable& mrt = *ws.mrt;
  std::vector<std::size_t>& reg_ps = ws.reg_ps;  // RegDep(PS), recomputed per placement
  std::vector<std::size_t>& mem_ps = ws.mem_ps;  // MemDep(PS)
  std::vector<std::size_t>& tmp = ws.tmp;
  reg_ps.clear();
  mem_ps.clear();

  ws.queue.assign(order.begin(), order.end());
  ws.qhead = 0;
  int ejections_left = 2 * loop.num_instrs() + 16;
  SlotTally tally;

  while (ws.qhead < ws.queue.size()) {
    const ir::NodeId v = ws.queue[ws.qhead++];
    scheduling_window(ps, v, depth[static_cast<std::size_t>(v)], ws.window);
    const Window& w = ws.window;

    // Successor headroom: a producer placed in the last rows of the II
    // strands any still-unscheduled same-iteration consumer — the
    // consumer would have to cross a stage with
    // sync = row(v) + lat(v) + C_reg_com - row(consumer) > C_delay for
    // every legal row. Reserve the dead-zone rows up front.
    int headroom = 0;
    {
      bool pending_succ = false;
      for (const std::size_t ei : loop.out_edges(v)) {
        const ir::DepEdge& e = loop.dep(ei);
        if (e.distance == 0 && e.type == ir::DepType::kFlow && e.dst != v &&
            !ps.is_placed(e.dst)) {
          pending_succ = true;
          break;
        }
      }
      if (pending_succ) {
        headroom =
            std::max(0, mach.latency(loop.instr(v).op) + cfg.reg_comm_cycles() - c_delay);
      }
    }

    int best_cycle = 0;
    int best_sync = 0;
    bool found = false;
    for (std::size_t i = 0; i < w.candidates.size(); ++i) {
      const int c = w.candidates[i];
      ++tally.tried;
      if (headroom > 0) {
        const int row = ((c % ii) + ii) % ii;
        if (row >= ii - headroom) {
          ++tally.headroom;
          TMS_TRACE_INSTANT("sched", "slot.reject", obs::targ("node", v), obs::targ("row", row),
                            obs::targ("reason", "headroom"));
          continue;
        }
      }
      if (!mrt.can_place(loop.instr(v).op, c)) {
        ++tally.mrt;
        TMS_TRACE_INSTANT("sched", "slot.reject", obs::targ("node", v),
                          obs::targ("row", ((c % ii) + ii) % ii), obs::targ("reason", "mrt"));
        continue;
      }
      const SlotCheck sc = check_slot(ps, cfg, v, c, c_delay, p_max, reg_ps, mem_ps, ws);
      if (!sc.ok) {
        if (sc.reject != nullptr && sc.reject[0] == 'c') {
          ++tally.c_delay;
        } else {
          ++tally.p_max;
          if (saw_c2_reject != nullptr) *saw_c2_reject = true;
        }
        TMS_TRACE_INSTANT("sched", "slot.reject", obs::targ("node", v),
                          obs::targ("row", ((c % ii) + ii) % ii),
                          obs::targ("reason", sc.reject != nullptr ? sc.reject : "?"));
        continue;
      }
      // Window order already encodes the SMS preference, so strict
      // improvement keeps the earliest (most lifetime-friendly) slot
      // among equals.
      if (!found || sc.max_new_sync < best_sync) {
        found = true;
        best_cycle = c;
        best_sync = sc.max_new_sync;
        if (best_sync == 0) break;  // cannot do better than no new stall
      }
    }
    if (!found) {
      ++tally.none;
      TMS_TRACE_INSTANT("sched", "slot.none", obs::targ("node", v),
                        obs::targ("candidates", w.candidates.size()));
      // Backtrack: eject the placed successors (they bound the window
      // from above), or failing that the placed predecessors, re-queue
      // them, and retry v immediately.
      auto eject = [&](bool successors) {
        bool any = false;
        const auto& edges = successors ? loop.out_edges(v) : loop.in_edges(v);
        for (const std::size_t ei : edges) {
          const ir::DepEdge& e = loop.dep(ei);
          const ir::NodeId other = successors ? e.dst : e.src;
          if (other == v || !ps.is_placed(other)) continue;
          mrt.remove(loop.instr(other).op, ps.slot(other));
          ps.clear_slot(other);
          ws.queue.push_back(other);
          ++tally.ejected;
          TMS_TRACE_INSTANT("sched", "eject", obs::targ("node", v), obs::targ("victim", other));
          any = true;
        }
        return any;
      };
      if (ejections_left-- <= 0) return std::nullopt;
      if (!eject(/*successors=*/true) && !eject(/*successors=*/false)) {
        if (std::getenv("TMS_DEBUG_SLOTS") != nullptr) {
          std::fprintf(stderr, "TMS: no slot for %s (II=%d, Cd=%d, window %zu cands)\n",
                       loop.instr(v).name.c_str(), ii, c_delay, w.candidates.size());
        }
        return std::nullopt;  // unconstrained failure: resources alone
      }
      // Placements changed: rebuild the inter-thread dependence sets.
      reg_ps = ps.reg_dep_set();
      mem_ps = ps.mem_dep_set();
      // Retry v first: it was just popped, so the slot ahead of qhead is
      // free and this is a plain deque push_front.
      TMS_ASSERT(ws.qhead > 0);
      ws.queue[--ws.qhead] = v;
      continue;
    }

    mrt.place(loop.instr(v).op, best_cycle);
    ps.set_slot(v, best_cycle);
    collect_new_reg_deps(ps, loop, v, tmp);
    reg_ps.insert(reg_ps.end(), tmp.begin(), tmp.end());
    collect_new_mem_deps(ps, loop, v, tmp);
    mem_ps.insert(mem_ps.end(), tmp.begin(), tmp.end());
  }
  return ps;
}

}  // namespace

std::optional<Schedule> tms_try_thresholds(const ir::Loop& loop,
                                           const machine::MachineModel& mach,
                                           const machine::SpmtConfig& cfg, int ii, int c_delay,
                                           double p_max) {
  TMS_ASSERT_MSG(!loop.validate().has_value(), "loop must be well-formed");
  const std::vector<ir::NodeId> order = sms_node_order(loop, mach);
  const std::vector<int> depth = ir::node_depths(loop, mach.latencies(loop));
  obs::counters().sched_attempts.add(1);
  TMS_TRACE_SPAN(span, "sched", "tms.attempt");
  TmsWorkspace ws;
  std::optional<Schedule> s = try_thresholds(loop, mach, cfg, ii, c_delay, p_max, order, depth, ws);
  if (s.has_value()) {
    obs::counters().sched_attempts_feasible.add(1);
    s->normalise();
  }
  TMS_TRACE_SPAN_ARG(span, obs::targ("ii", ii), obs::targ("c_delay", c_delay),
                     obs::targ("p_max", p_max), obs::targ("feasible", s.has_value() ? 1 : 0));
  return s;
}

std::optional<TmsResult> tms_schedule(const ir::Loop& loop, const machine::MachineModel& mach,
                                      const machine::SpmtConfig& cfg, const TmsOptions& opts) {
  TMS_ASSERT_MSG(!loop.validate().has_value(), "loop must be well-formed");
  cfg.check();
  const int mii = min_ii(loop, mach);
  const std::vector<ir::NodeId> order = sms_node_order(loop, mach);
  const std::vector<int> lat = mach.latencies(loop);
  const std::vector<int> depth = ir::node_depths(loop, lat);

  int max_lat = 1;
  for (const int l : lat) max_lat = std::max(max_lat, l);

  // Fig. 3 enumerates (II, C_delay) pairs in increasing F order and stops
  // at the first schedulable pair. A literal F_min++ sweep re-tries the
  // same expensive schedule attempts many times, so we implement the same
  // minimisation as: for each II (ascending), binary-search the smallest
  // schedulable C_delay (feasibility is monotone in the threshold), and
  // keep the candidate minimising the full per-iteration cost
  // F(II, C_delay) + misspec_penalty * P_M. The II sweep stops once even
  // the best conceivable F at the floor C_delay can no longer beat the
  // incumbent, which bounds the search exactly as the paper's "II can be
  // bounded by the longest critical path" remark intends.
  struct Best {
    Schedule schedule;
    double total;
    int c_delay;
    double p_max;
    double f;
    int actual_c_delay;
    int comm_pairs;
  };
  std::optional<Best> best;
  int pairs_tried = 0;
  int plateau = 0;  // consecutive non-improving IIs at the incumbent's F

  // One relaxation-ladder rung: a fixed-threshold pass, traced as a span
  // so --explain can segment the per-slot events it encloses. With
  // ladder_reuse the workspace persists across rungs so every attempt
  // recycles the same Schedule/MRT/queue storage; without it each rung
  // constructs from scratch (the differential-testing reference).
  TmsWorkspace shared_ws;
  auto attempt = [&](int ii, int cd_thr, double pm, bool* saw_c2) {
    obs::counters().sched_attempts.add(1);
    TMS_TRACE_SPAN(span, "sched", "tms.attempt");
    std::optional<Schedule> s;
    if (opts.ladder_reuse) {
      s = try_thresholds(loop, mach, cfg, ii, cd_thr, pm, order, depth, shared_ws, saw_c2);
    } else {
      TmsWorkspace fresh;
      s = try_thresholds(loop, mach, cfg, ii, cd_thr, pm, order, depth, fresh, saw_c2);
    }
    if (s.has_value()) obs::counters().sched_attempts_feasible.add(1);
    TMS_TRACE_SPAN_ARG(span, obs::targ("ii", ii), obs::targ("c_delay", cd_thr),
                       obs::targ("p_max", pm), obs::targ("feasible", s.has_value() ? 1 : 0));
    return s;
  };

  const int start_ii = std::max(mii, opts.ii_floor);
  for (int ii = start_ii; ii <= start_ii + opts.max_ii_slack; ++ii) {
    if (!recurrences_feasible(loop, mach, ii)) continue;
    if (best.has_value()) {
      // Candidates are judged by achieved C_delay, which can be as low as
      // zero (fully parallel), so the II-monotone lower bound uses 0.
      const double f_floor = cost::per_iter_nomiss(ii, 0, cfg);
      // F is nondecreasing in II at fixed C_delay, so no larger II can
      // strictly beat the incumbent once the floor passes it. Equal-F IIs
      // can still reduce communication (e.g. fold a chain into one
      // stage), so a bounded plateau is scanned for tie-breaks.
      if (f_floor > best->total + 1e-9) break;
      if (f_floor > best->total - 1e-9 && plateau >= opts.plateau_budget) break;
    }
    const int cd_floor = cfg.min_c_delay();
    // At cd_ceiling C1 can never bind: the row gap is at most II-1 and the
    // producer latency at most max_lat.
    const int cd_ceiling = ii - 1 + max_lat + cfg.reg_comm_cycles();

    bool ii_improved = false;
    // Every schedule produced during the threshold search is judged by
    // its *achieved* C_delay and misspeculation probability — the
    // thresholds only steer the heuristic, the schedule itself determines
    // the runtime.
    auto consider = [&](Schedule&& s, int cd_thr, double p_max) {
      s.normalise();
      TMS_ASSERT_MSG(!s.validate().has_value(), "TMS produced an invalid schedule");
      const int actual_cd = s.c_delay(cfg);
      const double f = cost::per_iter_nomiss(ii, actual_cd, cfg);
      const double p_m = s.misspec_probability(cfg);
      const double total = f + cost::misspec_penalty(ii, actual_cd, cfg) * p_m;
      const int pairs = plan_communication(s).comm_pairs_per_iter;
      const bool strictly_better = !best.has_value() || total < best->total - 1e-9;
      const bool tie_better =
          best.has_value() && total < best->total + 1e-9 &&
          (actual_cd < best->actual_c_delay ||
           (actual_cd == best->actual_c_delay && pairs < best->comm_pairs));
      if (strictly_better || tie_better) {
        best = Best{std::move(s), total, cd_thr, p_max, f, actual_cd, pairs};
        ii_improved = true;
      }
    };

    // P_max only gates the misspeculation check (C2). If a whole sweep at
    // some threshold produced no C2 rejection anywhere, then any looser
    // threshold makes every slot decision — and therefore every schedule
    // and the entire binary-search trajectory — bit-identical. The sweeps
    // run strictest-first, so the first "clean" sweep proves all later
    // ones redundant; they are skipped by replaying its considered
    // schedules (so tie-breaking and P_max attribution stay exact) and
    // charging the same pairs_tried it consumed.
    double clean_pm = -1.0;     // threshold of the first C2-rejection-free sweep
    int clean_bs_attempts = 0;  // its binary-search attempt count
    std::vector<std::pair<Schedule, int>> clean_considered;  // (schedule, cd_thr), in order

    for (const double p_max : opts.p_max_values) {
      if (opts.ladder_reuse && clean_pm >= 0.0 && p_max >= clean_pm) {
        ++pairs_tried;
        if (pairs_tried > opts.max_pair_attempts) break;
        pairs_tried += clean_bs_attempts;
        obs::counters().sched_pmax_sweeps_skipped.add(1);
        TMS_TRACE_INSTANT("sched", "tms.sweep_skipped", obs::targ("ii", ii),
                          obs::targ("p_max", p_max));
        for (const auto& [cs, cd_thr] : clean_considered) {
          consider(Schedule(cs), cd_thr, p_max);
        }
        continue;
      }
      ++pairs_tried;
      if (pairs_tried > opts.max_pair_attempts) break;
      bool sweep_saw_c2 = false;
      int bs_attempts = 0;
      const bool record = opts.ladder_reuse && clean_pm < 0.0;
      std::optional<Schedule> at_ceiling = attempt(ii, cd_ceiling, p_max, &sweep_saw_c2);
      if (at_ceiling.has_value()) {
        if (record) clean_considered.emplace_back(*at_ceiling, cd_ceiling);
        consider(std::move(*at_ceiling), cd_ceiling, p_max);

        // Binary search for the smallest feasible C1 threshold; every
        // feasible point is a candidate.
        int lo = cd_floor;
        int hi = cd_ceiling;
        while (lo < hi) {
          const int mid = lo + (hi - lo) / 2;
          ++pairs_tried;
          ++bs_attempts;
          std::optional<Schedule> s = attempt(ii, mid, p_max, &sweep_saw_c2);
          if (s.has_value()) {
            if (record) clean_considered.emplace_back(*s, mid);
            consider(std::move(*s), mid, p_max);
            hi = mid;
          } else {
            lo = mid + 1;
          }
        }
      }
      if (record && !sweep_saw_c2) {
        clean_pm = p_max;
        clean_bs_attempts = bs_attempts;
      } else if (record) {
        clean_considered.clear();
      }
    }
    plateau = ii_improved ? 0 : plateau + 1;
    if (pairs_tried > opts.max_pair_attempts) break;
  }

  if (!best.has_value()) {
    TMS_TRACE_INSTANT("sched", "tms.result", obs::targ("feasible", 0));
    return std::nullopt;
  }
  {
    obs::Counters& c = obs::counters();
    c.sched_schedules.add(1);
    c.sched_ii_minus_mii.record(static_cast<std::uint64_t>(
        std::max(0, best->schedule.ii() - mii)));
    c.sched_tms_c_delay.record(static_cast<std::uint64_t>(std::max(0, best->actual_c_delay)));
  }
  TMS_TRACE_INSTANT("sched", "tms.result", obs::targ("ii", best->schedule.ii()),
                    obs::targ("c_delay", best->actual_c_delay), obs::targ("p_max", best->p_max),
                    obs::targ("feasible", 1));
  TmsResult r{std::move(best->schedule), mii,       best->c_delay,
              best->p_max,               best->f,   0.0,
              pairs_tried};
  r.misspec_probability = r.schedule.misspec_probability(cfg);
  return r;
}

}  // namespace tms::sched
