#include "sched/sms.hpp"

#include <algorithm>

#include "ir/graph.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sched/mii.hpp"
#include "sched/mrt.hpp"
#include "sched/order.hpp"
#include "sched/window.hpp"
#include "support/assert.hpp"

namespace tms::sched {
namespace {

/// Hot-loop tallies, flushed to the registry once per pass.
struct SlotTally {
  std::uint64_t tried = 0;
  std::uint64_t mrt = 0;
  std::uint64_t none = 0;

  ~SlotTally() {
    obs::Counters& c = obs::counters();
    if (tried != 0) c.sched_slots_tried.add(tried);
    if (mrt != 0) c.sched_slot_reject_mrt.add(mrt);
    if (none != 0) c.sched_window_exhausted.add(none);
  }
};

/// One SMS pass at a fixed II. Returns the complete schedule or nullopt.
std::optional<Schedule> try_ii(const ir::Loop& loop, const machine::MachineModel& mach, int ii,
                               const std::vector<ir::NodeId>& order,
                               const std::vector<int>& depth) {
  Schedule ps(loop, mach, ii);
  ModuloReservationTable mrt(mach, ii);
  SlotTally tally;
  for (const ir::NodeId v : order) {
    const Window w = scheduling_window(ps, v, depth[static_cast<std::size_t>(v)]);
    bool placed = false;
    for (const int c : w.candidates) {
      ++tally.tried;
      if (mrt.can_place(loop.instr(v).op, c)) {
        mrt.place(loop.instr(v).op, c);
        ps.set_slot(v, c);
        placed = true;
        break;
      }
      ++tally.mrt;
      TMS_TRACE_INSTANT("sched", "slot.reject", obs::targ("node", v),
                        obs::targ("row", ((c % ii) + ii) % ii), obs::targ("reason", "mrt"));
    }
    if (!placed) {
      ++tally.none;
      TMS_TRACE_INSTANT("sched", "slot.none", obs::targ("node", v),
                        obs::targ("candidates", w.candidates.size()));
      return std::nullopt;
    }
  }
  return ps;
}

}  // namespace

std::optional<SmsResult> sms_schedule(const ir::Loop& loop, const machine::MachineModel& mach,
                                      const SmsOptions& opts) {
  TMS_ASSERT_MSG(!loop.validate().has_value(), "loop must be well-formed");
  const int mii = min_ii(loop, mach);
  const std::vector<ir::NodeId> order = sms_node_order(loop, mach);
  const std::vector<int> depth = ir::node_depths(loop, mach.latencies(loop));

  const int start_ii = std::max(mii, opts.ii_floor);
  for (int ii = start_ii; ii <= start_ii + opts.max_ii_slack; ++ii) {
    if (!recurrences_feasible(loop, mach, ii)) continue;
    obs::counters().sched_attempts.add(1);
    TMS_TRACE_SPAN(span, "sched", "sms.attempt");
    std::optional<Schedule> s = try_ii(loop, mach, ii, order, depth);
    TMS_TRACE_SPAN_ARG(span, obs::targ("ii", ii), obs::targ("feasible", s.has_value() ? 1 : 0));
    if (s.has_value()) {
      s->normalise();
      TMS_ASSERT_MSG(!s->validate().has_value(), "SMS produced an invalid schedule");
      obs::Counters& c = obs::counters();
      c.sched_attempts_feasible.add(1);
      c.sched_schedules.add(1);
      c.sched_ii_minus_mii.record(static_cast<std::uint64_t>(std::max(0, ii - mii)));
      return SmsResult{std::move(*s), mii, ii - mii + 1};
    }
  }
  return std::nullopt;
}

}  // namespace tms::sched
