#include "sched/sms.hpp"

#include <algorithm>

#include "ir/graph.hpp"
#include "sched/mii.hpp"
#include "sched/mrt.hpp"
#include "sched/order.hpp"
#include "sched/window.hpp"
#include "support/assert.hpp"

namespace tms::sched {
namespace {

/// One SMS pass at a fixed II. Returns the complete schedule or nullopt.
std::optional<Schedule> try_ii(const ir::Loop& loop, const machine::MachineModel& mach, int ii,
                               const std::vector<ir::NodeId>& order,
                               const std::vector<int>& depth) {
  Schedule ps(loop, mach, ii);
  ModuloReservationTable mrt(mach, ii);
  for (const ir::NodeId v : order) {
    const Window w = scheduling_window(ps, v, depth[static_cast<std::size_t>(v)]);
    bool placed = false;
    for (const int c : w.candidates) {
      if (mrt.can_place(loop.instr(v).op, c)) {
        mrt.place(loop.instr(v).op, c);
        ps.set_slot(v, c);
        placed = true;
        break;
      }
    }
    if (!placed) return std::nullopt;
  }
  return ps;
}

}  // namespace

std::optional<SmsResult> sms_schedule(const ir::Loop& loop, const machine::MachineModel& mach,
                                      const SmsOptions& opts) {
  TMS_ASSERT_MSG(!loop.validate().has_value(), "loop must be well-formed");
  const int mii = min_ii(loop, mach);
  const std::vector<ir::NodeId> order = sms_node_order(loop, mach);
  const std::vector<int> depth = ir::node_depths(loop, mach.latencies(loop));

  const int start_ii = std::max(mii, opts.ii_floor);
  for (int ii = start_ii; ii <= start_ii + opts.max_ii_slack; ++ii) {
    if (!recurrences_feasible(loop, mach, ii)) continue;
    std::optional<Schedule> s = try_ii(loop, mach, ii, order, depth);
    if (s.has_value()) {
      s->normalise();
      TMS_ASSERT_MSG(!s->validate().has_value(), "SMS produced an invalid schedule");
      return SmsResult{std::move(*s), mii, ii - mii + 1};
    }
  }
  return std::nullopt;
}

}  // namespace tms::sched
