// SMS node ordering (the "ordering phase" of Swing Modulo Scheduling).
//
// Nodes are grouped into node sets: recurrences (non-trivial SCCs) in
// decreasing RecII order, each augmented with the nodes on DDG paths
// between it and the already-grouped sets, followed by the remaining
// nodes. Within the sets the order alternates bottom-up and top-down
// sweeps driven by node depth/height, so that a node is (almost) never
// scheduled after both a predecessor and a successor — the property the
// scheduling-window logic relies on.
#pragma once

#include <vector>

#include "ir/loop.hpp"
#include "machine/machine.hpp"

namespace tms::sched {

/// Returns every node exactly once, in SMS scheduling priority order.
std::vector<ir::NodeId> sms_node_order(const ir::Loop& loop, const machine::MachineModel& mach);

/// The node-set partition prior to intra-set ordering (exposed for tests):
/// each element is one node set; their concatenation covers all nodes.
std::vector<std::vector<ir::NodeId>> sms_node_sets(const ir::Loop& loop,
                                                   const machine::MachineModel& mach);

}  // namespace tms::sched
