#include "sched/schedule.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "sched/dep_delay.hpp"
#include "support/assert.hpp"

namespace tms::sched {

Schedule::Schedule(const ir::Loop& loop, const machine::MachineModel& mach, int ii)
    : loop_(&loop),
      mach_(&mach),
      ii_(ii),
      slots_(static_cast<std::size_t>(loop.num_instrs()), 0),
      placed_(static_cast<std::size_t>(loop.num_instrs()), false) {
  TMS_ASSERT(ii >= 1);
}

void Schedule::reset(int ii) {
  TMS_ASSERT(ii >= 1);
  ii_ = ii;
  std::fill(placed_.begin(), placed_.end(), false);
  num_placed_ = 0;
}

int Schedule::slot(ir::NodeId v) const {
  TMS_ASSERT_MSG(placed_.at(static_cast<std::size_t>(v)), "querying slot of unplaced node");
  return slots_[static_cast<std::size_t>(v)];
}

void Schedule::set_slot(ir::NodeId v, int cycle) {
  const auto i = static_cast<std::size_t>(v);
  if (!placed_[i]) {
    placed_[i] = true;
    ++num_placed_;
  }
  slots_[i] = cycle;
}

void Schedule::clear_slot(ir::NodeId v) {
  const auto i = static_cast<std::size_t>(v);
  TMS_ASSERT(placed_[i]);
  placed_[i] = false;
  --num_placed_;
}

int Schedule::sync_delay(const ir::DepEdge& e, const machine::SpmtConfig& cfg) const {
  TMS_ASSERT(e.kind == ir::DepKind::kRegister && e.type == ir::DepType::kFlow);
  return row(e.src) - row(e.dst) + mach_->latency(loop_->instr(e.src).op) + cfg.reg_comm_cycles();
}

int Schedule::mem_gap(const ir::DepEdge& e) const {
  return row(e.src) - row(e.dst) + mach_->latency(loop_->instr(e.src).op);
}

bool Schedule::preserved(const ir::DepEdge& mem, const std::vector<std::size_t>& reg_deps,
                         const machine::SpmtConfig& cfg) const {
  // Definition 3: an earlier synchronised dependence u->v already delays
  // the consumer thread; if that delay covers the memory gap of x->y, the
  // load at y cannot overtake the store at x.
  //
  // We require (our reading of the paper's partially garbled formula):
  //   - u issues no later than x in the kernel (paper: row(u) < row(x)),
  //   - the stall at v reaches y, i.e. v issues no later than y, and
  //   - sync(u,v) >= mem_gap(x,y).
  // The condition is evaluated for the adjacent-thread case (d_ker = 1);
  // for larger kernel distances the consumer thread lags even further, so
  // using the d_ker = 1 test errs on the conservative side.
  const int gap = mem_gap(mem);
  if (gap <= 0) return true;  // consumer already issues after the store completes
  for (const std::size_t ei : reg_deps) {
    const ir::DepEdge& r = loop_->dep(ei);
    if (!(r.kind == ir::DepKind::kRegister && r.type == ir::DepType::kFlow)) continue;
    if (kernel_distance(r) < 1) continue;
    if (row(r.src) > row(mem.src)) continue;  // u must execute no later than x
    if (row(r.dst) > row(mem.dst)) continue;  // stall must reach y
    if (sync_delay(r, cfg) >= gap) return true;
  }
  return false;
}

std::vector<std::size_t> Schedule::reg_dep_set() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < loop_->deps().size(); ++i) {
    const ir::DepEdge& e = loop_->dep(i);
    if (!(e.kind == ir::DepKind::kRegister && e.type == ir::DepType::kFlow)) continue;
    if (!is_placed(e.src) || !is_placed(e.dst)) continue;
    if (kernel_distance(e) >= 1) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> Schedule::mem_dep_set() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < loop_->deps().size(); ++i) {
    const ir::DepEdge& e = loop_->dep(i);
    if (!(e.kind == ir::DepKind::kMemory && e.type == ir::DepType::kFlow)) continue;
    if (!is_placed(e.src) || !is_placed(e.dst)) continue;
    if (kernel_distance(e) >= 1) out.push_back(i);
  }
  return out;
}

void Schedule::normalise() {
  TMS_ASSERT(complete());
  int min_stage = std::numeric_limits<int>::max();
  for (ir::NodeId v = 0; v < loop_->num_instrs(); ++v) min_stage = std::min(min_stage, stage(v));
  if (min_stage == 0) return;
  for (ir::NodeId v = 0; v < loop_->num_instrs(); ++v) {
    slots_[static_cast<std::size_t>(v)] -= min_stage * ii_;
  }
}

int Schedule::min_slot() const {
  TMS_ASSERT(complete());
  int m = std::numeric_limits<int>::max();
  for (ir::NodeId v = 0; v < loop_->num_instrs(); ++v) m = std::min(m, slot(v));
  return m;
}

int Schedule::max_slot() const {
  TMS_ASSERT(complete());
  int m = std::numeric_limits<int>::min();
  for (ir::NodeId v = 0; v < loop_->num_instrs(); ++v) m = std::max(m, slot(v));
  return m;
}

int Schedule::stage_count() const {
  TMS_ASSERT(complete());
  int lo = std::numeric_limits<int>::max();
  int hi = std::numeric_limits<int>::min();
  for (ir::NodeId v = 0; v < loop_->num_instrs(); ++v) {
    lo = std::min(lo, stage(v));
    hi = std::max(hi, stage(v));
  }
  return hi - lo + 1;
}

int Schedule::max_live() const {
  TMS_ASSERT(complete());
  // A value produced by u is live from its issue until the latest consumer
  // issue (+ II*d for inter-iteration consumers). Walking every cycle of
  // every lifetime and bucketing by row yields the steady-state live count
  // per kernel row: an interval [s, e) contributes one live instance at
  // row r for every absolute cycle t in [s, e) with t === r (mod II).
  std::vector<int> live_at_row(static_cast<std::size_t>(ii_), 0);
  for (ir::NodeId u = 0; u < loop_->num_instrs(); ++u) {
    const int start = slot(u);
    int end = start + 1;  // a defined value occupies its register at least one cycle
    bool produces = false;
    for (const std::size_t ei : loop_->out_edges(u)) {
      const ir::DepEdge& e = loop_->dep(ei);
      if (!(e.kind == ir::DepKind::kRegister && e.type == ir::DepType::kFlow)) continue;
      produces = true;
      end = std::max(end, slot(e.dst) + ii_ * e.distance + 1);
    }
    if (!produces && loop_->instr(u).op == ir::Opcode::kStore) continue;  // no register result
    for (int t = start; t < end; ++t) {
      int r = t % ii_;
      if (r < 0) r += ii_;
      ++live_at_row[static_cast<std::size_t>(r)];
    }
  }
  int best = 0;
  for (const int x : live_at_row) best = std::max(best, x);
  return best;
}

int Schedule::c_delay(const machine::SpmtConfig& cfg) const {
  TMS_ASSERT(complete());
  int worst = 0;
  for (const std::size_t ei : reg_dep_set()) {
    worst = std::max(worst, sync_delay(loop_->dep(ei), cfg));
  }
  return worst;
}

std::vector<std::size_t> Schedule::speculated_deps(const machine::SpmtConfig& cfg) const {
  TMS_ASSERT(complete());
  const std::vector<std::size_t> regs = reg_dep_set();
  std::vector<std::size_t> out;
  for (const std::size_t mi : mem_dep_set()) {
    if (!preserved(loop_->dep(mi), regs, cfg)) out.push_back(mi);
  }
  return out;
}

double Schedule::misspec_probability(const machine::SpmtConfig& cfg) const {
  double keep = 1.0;
  for (const std::size_t mi : speculated_deps(cfg)) {
    keep *= 1.0 - loop_->dep(mi).probability;
  }
  return 1.0 - keep;
}

std::optional<std::string> Schedule::validate() const {
  if (!complete()) return "schedule incomplete";
  for (std::size_t i = 0; i < loop_->deps().size(); ++i) {
    const ir::DepEdge& e = loop_->dep(i);
    const int delay = dep_delay(*mach_, *loop_, e);
    if (slot(e.dst) < slot(e.src) + delay - ii_ * e.distance) {
      std::ostringstream os;
      os << "modulo constraint violated on edge " << loop_->instr(e.src).name << " -> "
         << loop_->instr(e.dst).name << " (distance " << e.distance << ", delay " << delay
         << "): slot(src)=" << slot(e.src) << " slot(dst)=" << slot(e.dst) << " II=" << ii_;
      return os.str();
    }
  }
  return std::nullopt;
}

}  // namespace tms::sched
