// Scheduling-window computation shared by SMS and TMS.
//
// For the node being placed, the window is derived from its already-placed
// neighbours: predecessors impose an earliest start, successors a latest
// start, and the window never exceeds II candidate cycles (placing at
// c and c+II is equivalent for the MRT, so trying more is pointless).
// The candidate order implements SMS's "closest to its dependences"
// policy: ascending when driven by predecessors, descending when driven by
// successors.
#pragma once

#include <vector>

#include "sched/schedule.hpp"

namespace tms::sched {

struct Window {
  /// Candidate cycles in SMS preference order (first = most preferred).
  std::vector<int> candidates;
  /// True when both predecessor and successor constraints were present
  /// (the window may then be empty even at a feasible II).
  bool two_sided = false;
};

/// Computes the scheduling window of `v` against the partial schedule.
/// `depth_hint` is the earliest-start hint used when no neighbour of `v`
/// has been placed yet (SMS uses the node's ASAP time).
Window scheduling_window(const Schedule& ps, ir::NodeId v, int depth_hint);

/// Allocation-free variant for placement loops: refills `out` in place,
/// reusing its candidate storage.
void scheduling_window(const Schedule& ps, ir::NodeId v, int depth_hint, Window& out);

}  // namespace tms::sched
