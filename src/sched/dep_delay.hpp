// Scheduling delay contributed by a dependence edge.
//
// The modulo scheduling constraint for an edge u -> v with distance d is
//   slot(v) >= slot(u) + delay(u,v) - II * d.
// Flow dependences require the producer's full latency; anti dependences
// only require the consumer (writer) not to overtake the reader's issue;
// output dependences require one cycle of separation so the later write
// wins.
//
// Communication cost (SpmtConfig::reg_comm_cycles(), which folds in the
// shared-bus contention charge when the bus term is on) never enters the
// modulo constraint itself: it prices the C1 synchronisation-delay check
// (Schedule::sync_delay) and the cost model, not schedule validity.
#pragma once

#include "ir/loop.hpp"
#include "machine/machine.hpp"

namespace tms::sched {

inline int dep_delay(const machine::MachineModel& mach, const ir::Loop& loop,
                     const ir::DepEdge& e) {
  // Speculated dependences: inter-iteration memory dependences are
  // tracked by the MDT and rolled back on violation, so the schedule does
  // not have to cover the producer's latency — only the thread ordering
  // (kernel distance >= 0) is kept, which a zero-delay modulo constraint
  // guarantees. This is what makes the paper's motivating example RecII 8
  // rather than 9: the circuit (n0,n1,n2,n4,n5) is closed by the
  // speculated n5 -> n0, whose store latency does not count.
  if (e.kind == ir::DepKind::kMemory && e.distance >= 1) return 0;
  switch (e.type) {
    case ir::DepType::kFlow:
      return mach.latency(loop.instr(e.src).op);
    case ir::DepType::kAnti:
      return 0;
    case ir::DepType::kOutput:
      return 1;
  }
  return 1;
}

}  // namespace tms::sched
