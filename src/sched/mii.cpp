#include "sched/mii.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "sched/dep_delay.hpp"
#include "support/assert.hpp"

namespace tms::sched {
namespace {

/// Detects a positive-weight cycle among `nodes` using Bellman-Ford style
/// relaxation on longest paths; weight(e) = delay(e) - ii * distance(e).
bool has_positive_cycle(const ir::Loop& loop, const machine::MachineModel& mach, int ii,
                        const std::vector<bool>* in_subset) {
  const auto n = static_cast<std::size_t>(loop.num_instrs());
  // Longest-path relaxation from a virtual source connected to all nodes
  // with weight 0. If any distance still improves after n rounds, a
  // positive cycle exists.
  std::vector<long long> dist(n, 0);
  for (std::size_t round = 0; round <= n; ++round) {
    bool changed = false;
    for (const ir::DepEdge& e : loop.deps()) {
      if (in_subset != nullptr) {
        if (!(*in_subset)[static_cast<std::size_t>(e.src)] ||
            !(*in_subset)[static_cast<std::size_t>(e.dst)]) {
          continue;
        }
      }
      const long long w =
          static_cast<long long>(dep_delay(mach, loop, e)) - static_cast<long long>(ii) * e.distance;
      if (dist[static_cast<std::size_t>(e.src)] + w > dist[static_cast<std::size_t>(e.dst)]) {
        dist[static_cast<std::size_t>(e.dst)] = dist[static_cast<std::size_t>(e.src)] + w;
        changed = true;
      }
    }
    if (!changed) return false;
  }
  return true;
}

int rec_ii_impl(const ir::Loop& loop, const machine::MachineModel& mach,
                const std::vector<bool>* in_subset) {
  // Upper bound: sum of all edge delays (a cycle cannot require more).
  int hi = 1;
  for (const ir::DepEdge& e : loop.deps()) hi += std::max(0, dep_delay(mach, loop, e));
  int lo = 1;
  // Feasibility is monotone in II: larger II only decreases cycle weights.
  if (!has_positive_cycle(loop, mach, hi, in_subset)) {
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      if (has_positive_cycle(loop, mach, mid, in_subset)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
  // A zero-distance positive cycle would make every II infeasible; the Loop
  // validator rejects such graphs, so this is unreachable for valid input.
  TMS_UNREACHABLE("recurrence infeasible at any II; invalid loop");
}

}  // namespace

int res_ii(const ir::Loop& loop, const machine::MachineModel& mach) {
  std::array<int, ir::kNumFuClasses> used{};
  int real_instrs = 0;
  for (const ir::Instr& ins : loop.instrs()) {
    const ir::FuClass c = ir::fu_class(ins.op);
    if (c == ir::FuClass::kNone) continue;
    used[static_cast<std::size_t>(c)] += mach.occupancy(ins.op);
    ++real_instrs;
  }
  int ii = 1;
  for (int c = 0; c < ir::kNumFuClasses; ++c) {
    const int cnt = mach.fu_count(static_cast<ir::FuClass>(c));
    if (used[static_cast<std::size_t>(c)] == 0) continue;
    TMS_ASSERT_MSG(cnt > 0, "loop uses an FU class the machine lacks");
    ii = std::max(ii, (used[static_cast<std::size_t>(c)] + cnt - 1) / cnt);
  }
  ii = std::max(ii, (real_instrs + mach.issue_width() - 1) / mach.issue_width());
  return ii;
}

int rec_ii(const ir::Loop& loop, const machine::MachineModel& mach) {
  return rec_ii_impl(loop, mach, nullptr);
}

int rec_ii_subset(const ir::Loop& loop, const machine::MachineModel& mach,
                  const std::vector<bool>& in_subset) {
  return rec_ii_impl(loop, mach, &in_subset);
}

int min_ii(const ir::Loop& loop, const machine::MachineModel& mach) {
  return std::max(res_ii(loop, mach), rec_ii(loop, mach));
}

bool recurrences_feasible(const ir::Loop& loop, const machine::MachineModel& mach, int ii) {
  return !has_positive_cycle(loop, mach, ii, nullptr);
}

}  // namespace tms::sched
