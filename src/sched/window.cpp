#include "sched/window.hpp"

#include <algorithm>
#include <limits>

#include "sched/dep_delay.hpp"

namespace tms::sched {

Window scheduling_window(const Schedule& ps, ir::NodeId v, int depth_hint) {
  Window w;
  scheduling_window(ps, v, depth_hint, w);
  return w;
}

void scheduling_window(const Schedule& ps, ir::NodeId v, int depth_hint, Window& out) {
  const ir::Loop& loop = ps.loop();
  const machine::MachineModel& mach = ps.machine();
  const int ii = ps.ii();

  bool has_pred = false;
  bool has_succ = false;
  int early = std::numeric_limits<int>::min();
  int late = std::numeric_limits<int>::max();

  for (const std::size_t ei : loop.in_edges(v)) {
    const ir::DepEdge& e = loop.dep(ei);
    if (e.src == v) continue;  // self-loops never constrain the window at a legal II
    if (!ps.is_placed(e.src)) continue;
    has_pred = true;
    early = std::max(early, ps.slot(e.src) + dep_delay(mach, loop, e) - ii * e.distance);
  }
  for (const std::size_t ei : loop.out_edges(v)) {
    const ir::DepEdge& e = loop.dep(ei);
    if (e.dst == v) continue;
    if (!ps.is_placed(e.dst)) continue;
    has_succ = true;
    late = std::min(late, ps.slot(e.dst) - dep_delay(mach, loop, e) + ii * e.distance);
  }

  out.candidates.clear();
  out.two_sided = false;
  if (has_pred && has_succ) {
    out.two_sided = true;
    const int hi = std::min(late, early + ii - 1);
    for (int c = early; c <= hi; ++c) out.candidates.push_back(c);
  } else if (has_pred) {
    for (int c = early; c <= early + ii - 1; ++c) out.candidates.push_back(c);
  } else if (has_succ) {
    for (int c = late; c >= late - ii + 1; --c) out.candidates.push_back(c);
  } else {
    for (int c = depth_hint; c <= depth_hint + ii - 1; ++c) out.candidates.push_back(c);
  }
}

}  // namespace tms::sched
