// Register-pressure-aware scheduling.
//
// MaxLive is a Table-2 metric because it decides whether a schedule is
// realisable at all: if more scalar values are simultaneously live than
// the register file holds, the kernel needs spills — which modulo
// schedulers avoid by re-scheduling at a larger II (longer rows, shorter
// relative lifetimes). These wrappers implement the classic
// "schedule, check MaxLive (+ post-pass copies), bump II, repeat" loop
// on top of SMS and TMS.
#pragma once

#include <optional>

#include "machine/spmt_config.hpp"
#include "sched/sms.hpp"
#include "sched/tms.hpp"

namespace tms::sched {

struct RegLimitResult {
  Schedule schedule;
  int pressure = 0;  ///< MaxLive plus post-pass copy registers
  int retries = 0;   ///< II bumps needed to fit
};

/// Register demand of a schedule: simultaneously live scalars plus one
/// register per post-pass copy (the copy chains hold distinct values).
int register_pressure(const Schedule& s);

/// SMS under a register budget. Returns nullopt if no fitting schedule
/// exists within the retry budget.
std::optional<RegLimitResult> sms_schedule_reglimited(const ir::Loop& loop,
                                                      const machine::MachineModel& mach,
                                                      int register_limit, int max_retries = 32);

/// TMS under a register budget: re-runs the threshold search with a
/// rising II floor until the winning schedule fits.
std::optional<RegLimitResult> tms_schedule_reglimited(const ir::Loop& loop,
                                                      const machine::MachineModel& mach,
                                                      const machine::SpmtConfig& cfg,
                                                      int register_limit, int max_retries = 16,
                                                      const TmsOptions& base_opts = {});

}  // namespace tms::sched
