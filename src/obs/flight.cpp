#include "obs/flight.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "obs/counters.hpp"
#include "support/json.hpp"

namespace tms::obs {

namespace {

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

void flight_copy(char* dst, std::size_t dst_size, std::string_view s) {
  const std::size_t n = std::min(s.size(), dst_size - 1);
  std::memcpy(dst, s.data(), n);
  dst[n] = '\0';
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), slots_(new Slot[capacity_]) {}

void FlightRecorder::record(FlightRecord r) {
  r.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[r.seq % capacity_];
  // Claim empty-or-full -> busy. Losing the claim means a concurrent
  // writer (capacity lapped within one in-flight write) or a reader
  // holds the slot; dropping is the lock-free answer, waiting is not.
  std::uint32_t expect = slot.state.load(std::memory_order_relaxed);
  if (expect == kBusy ||
      !slot.state.compare_exchange_strong(expect, kBusy, std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    counters().serve_flight_drops.add(1);
    return;
  }
  slot.rec = r;
  slot.state.store(kFull, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
  counters().serve_flight_records.add(1);
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::vector<FlightRecord> out;
  out.reserve(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    Slot& slot = slots_[i];
    std::uint32_t expect = kFull;
    if (!slot.state.compare_exchange_strong(expect, kBusy, std::memory_order_acquire,
                                            std::memory_order_relaxed)) {
      continue;  // empty, or a writer is mid-copy — skip, never wait
    }
    out.push_back(slot.rec);
    slot.state.store(kFull, std::memory_order_release);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) { return a.seq < b.seq; });
  return out;
}

std::string flight_to_json(const FlightRecorder& recorder) {
  const std::vector<FlightRecord> records = recorder.snapshot();
  support::JsonWriter w;
  w.begin_object();
  w.member("schema", "tmsd-flight-v1");
  w.member("capacity", static_cast<std::uint64_t>(recorder.capacity()));
  w.member("recorded", recorder.recorded());
  w.member("dropped", recorder.dropped());
  w.key("records").begin_array();
  for (const FlightRecord& r : records) {
    w.begin_object();
    w.member("seq", r.seq);
    if (r.trace_id != 0) {
      w.member("trace_id", hex16(r.trace_id));
      w.member("span_id", hex16(r.span_id));
    }
    w.member("request_id", r.request_id);
    w.member("loop", r.loop);
    w.member("scheduler", r.scheduler);
    w.member("outcome", r.outcome);
    w.member("cache_hit", r.cache_hit);
    w.member("instrs", static_cast<std::int64_t>(r.instrs));
    w.member("ncore", static_cast<std::int64_t>(r.ncore));
    w.member("ii", static_cast<std::int64_t>(r.ii));
    w.member("mii", static_cast<std::int64_t>(r.mii));
    w.member("c_delay_threshold", static_cast<std::int64_t>(r.c_delay_threshold));
    w.member("p_max", r.p_max);
    w.member("t_queue_us", r.t_queue_us);
    w.member("t_schedule_us", r.t_schedule_us);
    w.member("t_validate_us", r.t_validate_us);
    w.member("t_total_us", r.t_total_us);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace tms::obs
