#include "obs/explain.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <map>

namespace tms::obs {
namespace {

std::int64_t arg_int(const TraceEvent& e, const char* key, std::int64_t fallback) {
  for (int i = 0; i < e.nargs; ++i) {
    if (std::strcmp(e.args[i].key, key) == 0 && e.args[i].kind == TraceArg::Kind::kInt) {
      return e.args[i].i;
    }
  }
  return fallback;
}

double arg_double(const TraceEvent& e, const char* key, double fallback) {
  for (int i = 0; i < e.nargs; ++i) {
    if (std::strcmp(e.args[i].key, key) != 0) continue;
    if (e.args[i].kind == TraceArg::Kind::kDouble) return e.args[i].d;
    if (e.args[i].kind == TraceArg::Kind::kInt) return static_cast<double>(e.args[i].i);
  }
  return fallback;
}

const char* arg_str(const TraceEvent& e, const char* key, const char* fallback) {
  for (int i = 0; i < e.nargs; ++i) {
    if (std::strcmp(e.args[i].key, key) == 0 && e.args[i].kind == TraceArg::Kind::kStr) {
      return e.args[i].s != nullptr ? e.args[i].s : fallback;
    }
  }
  return fallback;
}

struct Tally {
  std::int64_t reject_mrt = 0;
  std::int64_t reject_c_delay = 0;
  std::int64_t reject_p_max = 0;
  std::int64_t reject_headroom = 0;
  std::int64_t window_exhausted = 0;
  std::int64_t ejections = 0;

  std::int64_t rejects() const {
    return reject_mrt + reject_c_delay + reject_p_max + reject_headroom;
  }
  void clear() { *this = Tally{}; }
};

struct Attempt {
  int ii = 0;
  int c_delay = 0;
  double p_max = 0.0;
  bool feasible = false;
  Tally tally;
};

std::string fmt(const char* f, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof buf, f, ap);
  va_end(ap);
  return buf;
}

void append_tally(std::string& out, const Tally& t) {
  if (t.rejects() == 0 && t.window_exhausted == 0 && t.ejections == 0) return;
  out += "  [rejects:";
  if (t.reject_mrt != 0) out += fmt(" mrt=%lld", static_cast<long long>(t.reject_mrt));
  if (t.reject_c_delay != 0) out += fmt(" c_delay=%lld", static_cast<long long>(t.reject_c_delay));
  if (t.reject_p_max != 0) out += fmt(" p_max=%lld", static_cast<long long>(t.reject_p_max));
  if (t.reject_headroom != 0)
    out += fmt(" headroom=%lld", static_cast<long long>(t.reject_headroom));
  if (t.rejects() == 0) out += " none";
  if (t.window_exhausted != 0)
    out += fmt("; window-exhausted=%lld", static_cast<long long>(t.window_exhausted));
  if (t.ejections != 0) out += fmt("; ejections=%lld", static_cast<long long>(t.ejections));
  out += "]";
}

}  // namespace

std::string render_tms_explain(const ExplainInput& in) {
  std::vector<Attempt> attempts;
  Tally running;
  Tally total;
  std::map<std::int64_t, std::int64_t> rejects_by_node;
  const TraceEvent* result = nullptr;

  for (const TraceEvent& e : in.events) {
    if (std::strcmp(e.cat, "sched") != 0) continue;
    if (e.phase == 'i' && std::strcmp(e.name, "slot.reject") == 0) {
      const char* reason = arg_str(e, "reason", "?");
      if (std::strcmp(reason, "mrt") == 0) ++running.reject_mrt;
      else if (std::strcmp(reason, "c_delay") == 0) ++running.reject_c_delay;
      else if (std::strcmp(reason, "p_max") == 0) ++running.reject_p_max;
      else if (std::strcmp(reason, "headroom") == 0) ++running.reject_headroom;
      ++rejects_by_node[arg_int(e, "node", -1)];
    } else if (e.phase == 'i' && std::strcmp(e.name, "slot.none") == 0) {
      ++running.window_exhausted;
    } else if (e.phase == 'i' && std::strcmp(e.name, "eject") == 0) {
      ++running.ejections;
    } else if (e.phase == 'X' && std::strcmp(e.name, "tms.attempt") == 0) {
      Attempt a;
      a.ii = static_cast<int>(arg_int(e, "ii", 0));
      a.c_delay = static_cast<int>(arg_int(e, "c_delay", 0));
      a.p_max = arg_double(e, "p_max", 0.0);
      a.feasible = arg_int(e, "feasible", 0) != 0;
      a.tally = running;
      attempts.push_back(a);
      total.reject_mrt += running.reject_mrt;
      total.reject_c_delay += running.reject_c_delay;
      total.reject_p_max += running.reject_p_max;
      total.reject_headroom += running.reject_headroom;
      total.window_exhausted += running.window_exhausted;
      total.ejections += running.ejections;
      running.clear();
    } else if (e.phase == 'i' && std::strcmp(e.name, "tms.result") == 0) {
      result = &e;
    }
  }

  std::string out;
  out += fmt("=== %s explain: %s ===\n", in.scheduler.empty() ? "tms" : in.scheduler.c_str(),
             in.loop_name.c_str());
  out += fmt("MII = %d  (resource/recurrence lower bound)\n", in.mii);
  if (!in.f_breakdown.empty()) out += in.f_breakdown + "\n";

  if (attempts.empty()) {
    out += "no scheduling attempts recorded (was tracing armed?)\n";
    return out;
  }

  out += "\nRelaxation ladder (threshold attempts, in order):\n";
  int last_ii = -1;
  for (const Attempt& a : attempts) {
    if (a.ii != last_ii) {
      out += fmt("II = %d (MII%+d):\n", a.ii, a.ii - in.mii);
      last_ii = a.ii;
    }
    out += fmt("  C_delay <= %-3d p_max = %.2f  ->  %s", a.c_delay, a.p_max,
               a.feasible ? "feasible  " : "infeasible");
    append_tally(out, a.tally);
    out += "\n";
  }

  out += "\nTotals: ";
  out += fmt("%zu threshold attempts", attempts.size());
  append_tally(out, total);
  out += "\n";

  if (!rejects_by_node.empty()) {
    std::vector<std::pair<std::int64_t, std::int64_t>> ranked(rejects_by_node.begin(),
                                                              rejects_by_node.end());
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto& a, const auto& b) { return a.second > b.second; });
    out += "Hardest nodes (most slot rejections):\n";
    const std::size_t top = std::min<std::size_t>(5, ranked.size());
    for (std::size_t i = 0; i < top; ++i) {
      const std::int64_t node = ranked[i].first;
      std::string name = "node#" + std::to_string(node);
      if (node >= 0 && static_cast<std::size_t>(node) < in.node_names.size()) {
        name = in.node_names[static_cast<std::size_t>(node)];
      }
      out += fmt("  %-24s %lld rejections\n", name.c_str(),
                 static_cast<long long>(ranked[i].second));
    }
  }

  if (result != nullptr) {
    const bool ok = arg_int(*result, "feasible", 0) != 0;
    if (ok) {
      const int ii = static_cast<int>(arg_int(*result, "ii", 0));
      out += fmt("\nResult: schedule found at II = %d (MII%+d), C_delay = %lld, p_max = %.2f\n",
                 ii, ii - in.mii, static_cast<long long>(arg_int(*result, "c_delay", 0)),
                 arg_double(*result, "p_max", 0.0));
    } else {
      out += "\nResult: no feasible schedule within the II search range\n";
    }
  }
  return out;
}

}  // namespace tms::obs
