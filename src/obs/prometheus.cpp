#include "obs/prometheus.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <vector>

#include "obs/counters.hpp"

namespace tms::obs {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

std::string escape_help(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

void emit_header(std::string& out, const std::string& name, const char* type,
                 const MetricInfo& m) {
  out += "# HELP " + name + " " + escape_help(m.description);
  out += " (unit: ";
  out += m.unit;
  out += ")\n";
  out += "# TYPE " + name + " ";
  out += type;
  out += '\n';
}

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  if (!head(name[0])) return false;
  for (const char c : name.substr(1)) {
    if (!head(c) && !std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool parse_sample_value(std::string_view s, double& out) {
  if (s.empty()) return false;
  if (s == "+Inf") { out = HUGE_VAL; return true; }
  if (s == "-Inf") { out = -HUGE_VAL; return true; }
  std::string buf(s);
  char* end = nullptr;
  out = std::strtod(buf.c_str(), &end);
  return end != nullptr && *end == '\0';
}

std::string err_at(std::size_t line_no, const std::string& what) {
  return "line " + std::to_string(line_no) + ": " + what;
}

/// Per-histogram, per-labelset accumulation while the metric's sample
/// block is being read; finalized (bucket/count/sum invariants) when
/// the block ends. A cluster dump carries one labelset per shard
/// (`{shard="..."}`), each with its own complete `le` ladder, so the
/// linter keys blocks by the label set with `le` removed.
struct HistogramBlock {
  std::vector<std::pair<double, double>> buckets;  // (le, cumulative count)
  bool has_sum = false;
  bool has_count = false;
  double count = 0;
  std::size_t first_line = 0;
};

std::optional<std::string> finalize_histogram(const std::string& name,
                                              const std::string& labelset,
                                              const HistogramBlock& h) {
  const auto fail = [&](const std::string& what) {
    return err_at(h.first_line, "histogram " + name + labelset + ": " + what);
  };
  if (h.buckets.empty()) return fail("no _bucket series");
  for (std::size_t i = 1; i < h.buckets.size(); ++i) {
    if (!(h.buckets[i].first > h.buckets[i - 1].first))
      return fail("le boundaries not strictly increasing");
    if (h.buckets[i].second < h.buckets[i - 1].second)
      return fail("cumulative bucket counts decrease");
  }
  if (!std::isinf(h.buckets.back().first)) return fail("missing le=\"+Inf\" bucket");
  if (!h.has_sum) return fail("missing _sum");
  if (!h.has_count) return fail("missing _count");
  if (h.count != h.buckets.back().second) return fail("_count != +Inf bucket value");
  return std::nullopt;
}

/// Splits a "{a="x",le="1",b="y"}" label string into the `le` value and
/// the remaining label set (normalised back to "{...}" or ""). Returns
/// false on a malformed set. Label values in this exposition never
/// contain an escaped quote followed by a comma trap — values are
/// numbers, shard labels, and le boundaries — so splitting on
/// top-level commas outside quotes is sufficient.
bool split_le_label(const std::string& labels, std::string& le_value, bool& has_le,
                    std::string& rest) {
  le_value.clear();
  rest.clear();
  has_le = false;
  if (labels.empty()) return true;
  if (labels.front() != '{' || labels.back() != '}') return false;
  const std::string body = labels.substr(1, labels.size() - 2);
  std::vector<std::string> pairs;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (c == '"' && (i == 0 || body[i - 1] != '\\')) in_quotes = !in_quotes;
    if (c == ',' && !in_quotes) {
      pairs.push_back(cur);
      cur.clear();
      continue;
    }
    cur += c;
  }
  if (in_quotes) return false;
  if (!cur.empty()) pairs.push_back(cur);
  std::string kept;
  for (const std::string& p : pairs) {
    if (p.rfind("le=\"", 0) == 0 && p.size() >= 5 && p.back() == '"') {
      if (has_le) return false;  // duplicate le label
      has_le = true;
      le_value = p.substr(4, p.size() - 5);
      continue;
    }
    if (!kept.empty()) kept += ',';
    kept += p;
  }
  if (!kept.empty()) rest = "{" + kept + "}";
  return true;
}

}  // namespace

std::string prometheus_name(std::string_view metric) {
  std::string out = "tms_";
  for (const char c : metric) out += c == '.' ? '_' : c;
  return out;
}

namespace {

std::string escape_label_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

/// Per-shard read position in a snapshot's catalog-ordered vectors.
struct SnapshotCursor {
  std::size_t ci = 0;
  std::size_t hi = 0;
  std::size_t ti = 0;
};

/// Emits one metric's sample lines from `s` (advancing `cur` past it),
/// with `labels` (e.g. `shard="b0"`, may be empty) on every series.
void emit_metric_samples(std::string& out, const MetricInfo& m, const std::string& name,
                         const CountersSnapshot& s, SnapshotCursor& cur,
                         const std::string& labels) {
  const auto labelled = [&](const std::string& extra) {
    std::string l = labels;
    if (!extra.empty()) {
      if (!l.empty()) l += ',';
      l += extra;
    }
    return l.empty() ? std::string() : "{" + l + "}";
  };
  if (m.kind == MetricKind::kCounter) {
    const std::uint64_t v = cur.ci < s.counters.size() ? s.counters[cur.ci] : 0;
    ++cur.ci;
    out += name + labelled("") + " " + std::to_string(v) + "\n";
    return;
  }
  if (m.kind == MetricKind::kHistogram) {
    const std::array<std::uint64_t, Histogram::kBuckets> buckets =
        cur.hi < s.histograms.size() ? s.histograms[cur.hi]
                                     : std::array<std::uint64_t, Histogram::kBuckets>{};
    const std::uint64_t sum = cur.hi < s.histogram_sums.size() ? s.histogram_sums[cur.hi] : 0;
    ++cur.hi;
    std::uint64_t cum = 0;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      cum += buckets[static_cast<std::size_t>(b)];
      // Inclusive upper bound of bucket b: the next bucket's floor - 1.
      const std::string le = b + 1 < Histogram::kBuckets
                                 ? std::to_string(Histogram::bucket_floor(b + 1) - 1)
                                 : std::string("+Inf");
      out += name + "_bucket" + labelled("le=\"" + le + "\"") + " " + std::to_string(cum) + "\n";
    }
    out += name + "_sum" + labelled("") + " " + std::to_string(sum) + "\n";
    out += name + "_count" + labelled("") + " " + std::to_string(cum) + "\n";
    return;
  }
  const std::array<std::uint64_t, TimeHistogram::kBuckets> buckets =
      cur.ti < s.time_histograms.size() ? s.time_histograms[cur.ti]
                                        : std::array<std::uint64_t, TimeHistogram::kBuckets>{};
  const std::uint64_t sum_us =
      cur.ti < s.time_histogram_sums_us.size() ? s.time_histogram_sums_us[cur.ti] : 0;
  ++cur.ti;
  std::uint64_t cum = 0;
  for (int b = 0; b < TimeHistogram::kBuckets; ++b) {
    cum += buckets[static_cast<std::size_t>(b)];
    // Time buckets are exported in seconds; bucket b's values are all
    // < 2^b us, so 2^b / 1e6 s is a valid inclusive upper bound.
    const std::string le = b + 1 < TimeHistogram::kBuckets
                               ? fmt_double(static_cast<double>(std::uint64_t{1} << b) / 1e6)
                               : std::string("+Inf");
    out += name + "_bucket" + labelled("le=\"" + le + "\"") + " " + std::to_string(cum) + "\n";
  }
  out += name + "_sum" + labelled("") + " " + fmt_double(static_cast<double>(sum_us) / 1e6) + "\n";
  out += name + "_count" + labelled("") + " " + std::to_string(cum) + "\n";
}

}  // namespace

std::string write_prometheus_text(const CountersSnapshot& s) {
  const std::vector<MetricInfo>& cat = metric_catalog();
  std::string out;
  SnapshotCursor cur;
  for (const MetricInfo& m : cat) {
    const std::string name = prometheus_name(m.name);
    emit_header(out, name, m.kind == MetricKind::kCounter ? "counter" : "histogram", m);
    emit_metric_samples(out, m, name, s, cur, "");
  }
  return out;
}

std::string write_prometheus_text_sharded(
    const std::vector<std::pair<std::string, CountersSnapshot>>& shards) {
  const std::vector<MetricInfo>& cat = metric_catalog();
  std::string out;
  std::vector<SnapshotCursor> cursors(shards.size());
  for (const MetricInfo& m : cat) {
    const std::string name = prometheus_name(m.name);
    emit_header(out, name, m.kind == MetricKind::kCounter ? "counter" : "histogram", m);
    for (std::size_t i = 0; i < shards.size(); ++i) {
      const std::string labels = "shard=\"" + escape_label_value(shards[i].first) + "\"";
      emit_metric_samples(out, m, name, shards[i].second, cursors[i], labels);
    }
  }
  return out;
}

std::optional<std::string> lint_prometheus_text(std::string_view text) {
  if (text.empty()) return "empty exposition";
  if (text.back() != '\n') return "missing trailing newline";

  std::map<std::string, std::string> types;   // metric -> declared TYPE
  std::set<std::string> helps;                // metrics with a HELP line
  std::set<std::string> series_seen;          // "name{labels}" duplicates
  std::set<std::string> closed_metrics;       // metrics whose block ended
  std::string current_metric;
  // One block per label set (minus `le`): a cluster dump interleaves
  // complete per-shard histograms under one metric header.
  std::map<std::string, HistogramBlock> hist_blocks;

  const auto close_current = [&]() -> std::optional<std::string> {
    if (current_metric.empty()) return std::nullopt;
    closed_metrics.insert(current_metric);
    if (types[current_metric] == "histogram") {
      if (hist_blocks.empty())
        return "histogram " + current_metric + ": no _bucket series";
      for (const auto& [labelset, block] : hist_blocks) {
        if (auto err = finalize_histogram(current_metric, labelset, block)) return err;
      }
    }
    hist_blocks.clear();
    current_metric.clear();
    return std::nullopt;
  };

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) return err_at(line_no, "blank line");

    if (line[0] == '#') {
      // "# HELP name text" or "# TYPE name type".
      if (line.size() < 2 || line[1] != ' ') return err_at(line_no, "malformed comment");
      const std::string_view rest = line.substr(2);
      const std::size_t sp1 = rest.find(' ');
      if (sp1 == std::string_view::npos) return err_at(line_no, "malformed comment");
      const std::string_view kw = rest.substr(0, sp1);
      if (kw != "HELP" && kw != "TYPE") continue;  // other comments are legal
      const std::string_view tail = rest.substr(sp1 + 1);
      const std::size_t sp2 = tail.find(' ');
      if (sp2 == std::string_view::npos) return err_at(line_no, "malformed " + std::string(kw));
      const std::string name(tail.substr(0, sp2));
      if (!valid_metric_name(name)) return err_at(line_no, "bad metric name '" + name + "'");
      if (name != current_metric) {
        if (auto err = close_current()) return err;
        if (closed_metrics.count(name))
          return err_at(line_no, "metric " + name + " not grouped");
        current_metric = name;
      }
      if (kw == "HELP") {
        if (!helps.insert(name).second) return err_at(line_no, "duplicate HELP for " + name);
      } else {
        const std::string type(tail.substr(sp2 + 1));
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped")
          return err_at(line_no, "unknown TYPE '" + type + "'");
        if (!types.emplace(name, type).second)
          return err_at(line_no, "duplicate TYPE for " + name);
      }
      continue;
    }

    // Sample line: name[{labels}] value
    std::size_t name_end = 0;
    while (name_end < line.size() && line[name_end] != '{' && line[name_end] != ' ') ++name_end;
    const std::string name(line.substr(0, name_end));
    if (!valid_metric_name(name)) return err_at(line_no, "bad metric name '" + name + "'");
    std::string labels;
    std::size_t after = name_end;
    if (after < line.size() && line[after] == '{') {
      const std::size_t close = line.find('}', after);
      if (close == std::string_view::npos) return err_at(line_no, "unterminated label set");
      labels = std::string(line.substr(after, close - after + 1));
      after = close + 1;
    }
    if (after >= line.size() || line[after] != ' ')
      return err_at(line_no, "missing value separator");
    double value = 0;
    if (!parse_sample_value(line.substr(after + 1), value))
      return err_at(line_no, "unparseable sample value");
    if (!series_seen.insert(name + labels).second)
      return err_at(line_no, "duplicate series " + name + labels);

    // Resolve the metric this sample belongs to: histogram child series
    // (_bucket/_sum/_count of a declared histogram) or the name itself.
    std::string base = name;
    std::string suffix;
    for (const char* sfx : {"_bucket", "_sum", "_count"}) {
      const std::string s(sfx);
      if (name.size() > s.size() && name.compare(name.size() - s.size(), s.size(), s) == 0) {
        const std::string candidate = name.substr(0, name.size() - s.size());
        if (types.count(candidate) && types[candidate] == "histogram") {
          base = candidate;
          suffix = s;
          break;
        }
      }
    }
    if (!types.count(base))
      return err_at(line_no, "sample for " + base + " before its TYPE");
    if (base != current_metric) return err_at(line_no, "sample for " + base + " not grouped");

    if (types[base] == "histogram") {
      if (suffix.empty()) return err_at(line_no, "bare sample for histogram " + base);
      std::string le_value;
      std::string labelset;
      bool has_le = false;
      if (!split_le_label(labels, le_value, has_le, labelset))
        return err_at(line_no, "malformed label set " + labels);
      HistogramBlock& hist = hist_blocks[labelset];
      if (hist.first_line == 0) hist.first_line = line_no;
      if (suffix == "_bucket") {
        if (!has_le) return err_at(line_no, "_bucket without le label");
        double le = 0;
        if (!parse_sample_value(le_value, le))
          return err_at(line_no, "unparseable le boundary");
        hist.buckets.emplace_back(le, value);
      } else if (suffix == "_sum") {
        if (has_le) return err_at(line_no, "_sum with le label");
        if (hist.has_sum) return err_at(line_no, "duplicate _sum for " + base + labelset);
        hist.has_sum = true;
      } else {
        if (has_le) return err_at(line_no, "_count with le label");
        if (hist.has_count) return err_at(line_no, "duplicate _count for " + base + labelset);
        hist.has_count = true;
        hist.count = value;
      }
    }
  }
  return close_current();
}

}  // namespace tms::obs
