#include "obs/counters.hpp"

#include <cmath>

#include "support/json.hpp"
#include "support/json_parse.hpp"
#include "support/table.hpp"

namespace tms::obs {

int Histogram::bucket_of(std::uint64_t v) {
  if (v < 4) return static_cast<int>(v);
  if (v < 8) return 4;
  if (v < 16) return 5;
  if (v < 32) return 6;
  return 7;
}

std::uint64_t Histogram::bucket_floor(int b) {
  static constexpr std::uint64_t kFloors[kBuckets] = {0, 1, 2, 3, 4, 8, 16, 32};
  return kFloors[b];
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::values() const {
  std::array<std::uint64_t, kBuckets> out{};
  for (int i = 0; i < kBuckets; ++i) out[static_cast<std::size_t>(i)] = b_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (auto& b : b_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

int TimeHistogram::bucket_of_us(std::uint64_t us) {
  if (us == 0) return 0;
  int b = 1;
  while (b < kBuckets - 1 && us >= (std::uint64_t{1} << b)) ++b;
  return b;
}

std::uint64_t TimeHistogram::bucket_floor_us(int b) {
  if (b == 0) return 0;
  return std::uint64_t{1} << (b - 1);
}

std::array<std::uint64_t, TimeHistogram::kBuckets> TimeHistogram::values() const {
  std::array<std::uint64_t, kBuckets> out{};
  for (int i = 0; i < kBuckets; ++i) out[static_cast<std::size_t>(i)] = b_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  return out;
}

void TimeHistogram::reset() {
  for (auto& b : b_) b.store(0, std::memory_order_relaxed);
  sum_us_.store(0, std::memory_order_relaxed);
}

Counters& counters() {
  static Counters c;
  return c;
}

const std::vector<MetricInfo>& metric_catalog() {
  static const std::vector<MetricInfo> catalog = [] {
    std::vector<MetricInfo> v;
#define TMS_OBS_INFO(field, name, unit, desc) v.push_back({name, unit, desc, MetricKind::kCounter});
    TMS_COUNTER_LIST(TMS_OBS_INFO)
#undef TMS_OBS_INFO
#define TMS_OBS_INFO(field, name, unit, desc) v.push_back({name, unit, desc, MetricKind::kHistogram});
    TMS_HISTOGRAM_LIST(TMS_OBS_INFO)
#undef TMS_OBS_INFO
#define TMS_OBS_INFO(field, name, unit, desc) v.push_back({name, unit, desc, MetricKind::kTimeHistogram});
    TMS_TIME_HISTOGRAM_LIST(TMS_OBS_INFO)
#undef TMS_OBS_INFO
    return v;
  }();
  return catalog;
}

std::uint64_t CountersSnapshot::value(std::string_view name) const {
  const std::vector<MetricInfo>& cat = metric_catalog();
  for (std::size_t i = 0; i < counters.size() && i < cat.size(); ++i) {
    if (name == cat[i].name) return counters[i];
  }
  return 0;
}

namespace {

/// Index of `name` within the kTimeHistogram rows of the catalog, or
/// npos when unknown.
std::size_t time_histogram_index(std::string_view name) {
  std::size_t ti = 0;
  for (const MetricInfo& m : metric_catalog()) {
    if (m.kind != MetricKind::kTimeHistogram) continue;
    if (name == m.name) return ti;
    ++ti;
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

std::array<std::uint64_t, TimeHistogram::kBuckets> CountersSnapshot::time_histogram(
    std::string_view name) const {
  const std::size_t ti = time_histogram_index(name);
  if (ti < time_histograms.size()) return time_histograms[ti];
  return {};
}

std::uint64_t CountersSnapshot::time_histogram_count(std::string_view name) const {
  std::uint64_t total = 0;
  for (const std::uint64_t b : time_histogram(name)) total += b;
  return total;
}

std::uint64_t CountersSnapshot::time_histogram_sum_us(std::string_view name) const {
  const std::size_t ti = time_histogram_index(name);
  if (ti < time_histogram_sums_us.size()) return time_histogram_sums_us[ti];
  return 0;
}

CountersSnapshot counters_snapshot() {
  CountersSnapshot s;
  Counters& c = counters();
#define TMS_OBS_SNAP(field, name, unit, desc) s.counters.push_back(c.field.value());
  TMS_COUNTER_LIST(TMS_OBS_SNAP)
#undef TMS_OBS_SNAP
#define TMS_OBS_SNAP(field, name, unit, desc) \
  s.histograms.push_back(c.field.values());   \
  s.histogram_sums.push_back(c.field.sum());
  TMS_HISTOGRAM_LIST(TMS_OBS_SNAP)
#undef TMS_OBS_SNAP
#define TMS_OBS_SNAP(field, name, unit, desc)     \
  s.time_histograms.push_back(c.field.values());  \
  s.time_histogram_sums_us.push_back(c.field.sum_us());
  TMS_TIME_HISTOGRAM_LIST(TMS_OBS_SNAP)
#undef TMS_OBS_SNAP
  return s;
}

CountersSnapshot snapshot_delta(const CountersSnapshot& before, const CountersSnapshot& after) {
  CountersSnapshot d = after;
  for (std::size_t i = 0; i < d.counters.size() && i < before.counters.size(); ++i) {
    d.counters[i] -= before.counters[i];
  }
  for (std::size_t i = 0; i < d.histograms.size() && i < before.histograms.size(); ++i) {
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      d.histograms[i][static_cast<std::size_t>(b)] -=
          before.histograms[i][static_cast<std::size_t>(b)];
    }
  }
  for (std::size_t i = 0; i < d.histogram_sums.size() && i < before.histogram_sums.size(); ++i) {
    d.histogram_sums[i] -= before.histogram_sums[i];
  }
  for (std::size_t i = 0; i < d.time_histograms.size() && i < before.time_histograms.size(); ++i) {
    for (int b = 0; b < TimeHistogram::kBuckets; ++b) {
      d.time_histograms[i][static_cast<std::size_t>(b)] -=
          before.time_histograms[i][static_cast<std::size_t>(b)];
    }
  }
  for (std::size_t i = 0;
       i < d.time_histogram_sums_us.size() && i < before.time_histogram_sums_us.size(); ++i) {
    d.time_histogram_sums_us[i] -= before.time_histogram_sums_us[i];
  }
  return d;
}

void snapshot_accumulate(CountersSnapshot& into, const CountersSnapshot& from) {
  // Grow `into` to catalog shape so an accumulation into a
  // default-constructed snapshot works.
  const std::vector<MetricInfo>& cat = metric_catalog();
  std::size_t n_counters = 0;
  std::size_t n_hist = 0;
  std::size_t n_time = 0;
  for (const MetricInfo& m : cat) {
    if (m.kind == MetricKind::kCounter) ++n_counters;
    else if (m.kind == MetricKind::kHistogram) ++n_hist;
    else ++n_time;
  }
  into.counters.resize(n_counters, 0);
  into.histograms.resize(n_hist);
  into.histogram_sums.resize(n_hist, 0);
  into.time_histograms.resize(n_time);
  into.time_histogram_sums_us.resize(n_time, 0);

  for (std::size_t i = 0; i < into.counters.size() && i < from.counters.size(); ++i) {
    into.counters[i] += from.counters[i];
  }
  for (std::size_t i = 0; i < into.histograms.size() && i < from.histograms.size(); ++i) {
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      into.histograms[i][static_cast<std::size_t>(b)] +=
          from.histograms[i][static_cast<std::size_t>(b)];
    }
  }
  for (std::size_t i = 0; i < into.histogram_sums.size() && i < from.histogram_sums.size(); ++i) {
    into.histogram_sums[i] += from.histogram_sums[i];
  }
  for (std::size_t i = 0; i < into.time_histograms.size() && i < from.time_histograms.size();
       ++i) {
    for (int b = 0; b < TimeHistogram::kBuckets; ++b) {
      into.time_histograms[i][static_cast<std::size_t>(b)] +=
          from.time_histograms[i][static_cast<std::size_t>(b)];
    }
  }
  for (std::size_t i = 0;
       i < into.time_histogram_sums_us.size() && i < from.time_histogram_sums_us.size(); ++i) {
    into.time_histogram_sums_us[i] += from.time_histogram_sums_us[i];
  }
}

namespace {

std::uint64_t json_u64(const support::JsonValue* v) {
  if (v == nullptr || !v->is_number()) return 0;
  const double d = v->as_number();
  if (!(d > 0)) return 0;  // NaN and negatives read as 0
  return static_cast<std::uint64_t>(std::llround(d));
}

}  // namespace

CountersSnapshot snapshot_from_json(const support::JsonValue& v) {
  CountersSnapshot s;
  const std::vector<MetricInfo>& cat = metric_catalog();
  const support::JsonValue* counters = v.find("counters");
  const support::JsonValue* histograms = v.find("histograms");
  const support::JsonValue* time_histograms = v.find("time_histograms");
  for (const MetricInfo& m : cat) {
    if (m.kind == MetricKind::kCounter) {
      s.counters.push_back(json_u64(counters != nullptr ? counters->find(m.name) : nullptr));
      continue;
    }
    const support::JsonValue* h = nullptr;
    if (m.kind == MetricKind::kHistogram && histograms != nullptr) {
      h = histograms->find(m.name);
    } else if (m.kind == MetricKind::kTimeHistogram && time_histograms != nullptr) {
      h = time_histograms->find(m.name);
    }
    const support::JsonValue* buckets = h != nullptr ? h->find("buckets") : nullptr;
    if (m.kind == MetricKind::kHistogram) {
      std::array<std::uint64_t, Histogram::kBuckets> b{};
      if (buckets != nullptr && buckets->is_array()) {
        for (std::size_t i = 0; i < b.size() && i < buckets->items().size(); ++i) {
          b[i] = json_u64(&buckets->items()[i]);
        }
      }
      s.histograms.push_back(b);
      s.histogram_sums.push_back(json_u64(h != nullptr ? h->find("sum") : nullptr));
    } else {
      std::array<std::uint64_t, TimeHistogram::kBuckets> b{};
      if (buckets != nullptr && buckets->is_array()) {
        for (std::size_t i = 0; i < b.size() && i < buckets->items().size(); ++i) {
          b[i] = json_u64(&buckets->items()[i]);
        }
      }
      s.time_histograms.push_back(b);
      s.time_histogram_sums_us.push_back(json_u64(h != nullptr ? h->find("sum_us") : nullptr));
    }
  }
  return s;
}

void write_counters_json(support::JsonWriter& w, const CountersSnapshot& s) {
  const std::vector<MetricInfo>& cat = metric_catalog();
  w.begin_object();
  w.key("counters").begin_object();
  std::size_t ci = 0;
  for (const MetricInfo& m : cat) {
    if (m.kind != MetricKind::kCounter) continue;
    w.member(m.name, ci < s.counters.size() ? s.counters[ci] : 0);
    ++ci;
  }
  w.end_object();
  w.key("histograms").begin_object();
  std::size_t hi = 0;
  for (const MetricInfo& m : cat) {
    if (m.kind != MetricKind::kHistogram) continue;
    const std::array<std::uint64_t, Histogram::kBuckets> buckets =
        hi < s.histograms.size() ? s.histograms[hi]
                                 : std::array<std::uint64_t, Histogram::kBuckets>{};
    const std::uint64_t sum = hi < s.histogram_sums.size() ? s.histogram_sums[hi] : 0;
    ++hi;
    w.key(m.name).begin_object();
    w.key("buckets").begin_array();
    std::uint64_t total = 0;
    for (const std::uint64_t b : buckets) {
      w.value(b);
      total += b;
    }
    w.end_array();
    w.member("count", total);
    w.member("sum", sum);
    w.end_object();
  }
  w.end_object();
  w.key("time_histograms").begin_object();
  std::size_t ti = 0;
  for (const MetricInfo& m : cat) {
    if (m.kind != MetricKind::kTimeHistogram) continue;
    const std::array<std::uint64_t, TimeHistogram::kBuckets> buckets =
        ti < s.time_histograms.size() ? s.time_histograms[ti]
                                      : std::array<std::uint64_t, TimeHistogram::kBuckets>{};
    const std::uint64_t sum_us =
        ti < s.time_histogram_sums_us.size() ? s.time_histogram_sums_us[ti] : 0;
    ++ti;
    w.key(m.name).begin_object();
    w.key("buckets").begin_array();
    std::uint64_t total = 0;
    for (const std::uint64_t b : buckets) {
      w.value(b);
      total += b;
    }
    w.end_array();
    w.member("count", total);
    w.member("sum_us", sum_us);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string counters_to_text(const CountersSnapshot& s) {
  support::TextTable t({"Metric", "Value", "Unit"});
  const std::vector<MetricInfo>& cat = metric_catalog();
  std::size_t ci = 0;
  std::size_t hi = 0;
  std::size_t ti = 0;
  for (const MetricInfo& m : cat) {
    if (m.kind == MetricKind::kCounter) {
      const std::uint64_t v = ci < s.counters.size() ? s.counters[ci] : 0;
      ++ci;
      if (v != 0) t.add_row({m.name, std::to_string(v), m.unit});
      continue;
    }
    if (m.kind == MetricKind::kHistogram) {
      const std::array<std::uint64_t, Histogram::kBuckets> buckets =
          hi < s.histograms.size() ? s.histograms[hi]
                                   : std::array<std::uint64_t, Histogram::kBuckets>{};
      ++hi;
      std::uint64_t total = 0;
      for (const std::uint64_t b : buckets) total += b;
      if (total == 0) continue;
      std::string rendered;
      for (int b = 0; b < Histogram::kBuckets; ++b) {
        const std::uint64_t n = buckets[static_cast<std::size_t>(b)];
        if (n == 0) continue;
        if (!rendered.empty()) rendered += ' ';
        rendered += std::to_string(Histogram::bucket_floor(b)) + (b + 1 < Histogram::kBuckets ? "" : "+") +
                    ":" + std::to_string(n);
      }
      t.add_row({m.name, rendered, m.unit});
      continue;
    }
    const std::array<std::uint64_t, TimeHistogram::kBuckets> buckets =
        ti < s.time_histograms.size() ? s.time_histograms[ti]
                                      : std::array<std::uint64_t, TimeHistogram::kBuckets>{};
    ++ti;
    std::uint64_t total = 0;
    for (const std::uint64_t b : buckets) total += b;
    if (total == 0) continue;
    std::string rendered;
    for (int b = 0; b < TimeHistogram::kBuckets; ++b) {
      const std::uint64_t n = buckets[static_cast<std::size_t>(b)];
      if (n == 0) continue;
      if (!rendered.empty()) rendered += ' ';
      rendered += std::to_string(TimeHistogram::bucket_floor_us(b)) +
                  (b + 1 < TimeHistogram::kBuckets ? "" : "+") + ":" + std::to_string(n);
    }
    t.add_row({m.name, rendered, m.unit});
  }
  return t.render();
}

void counters_reset() {
  Counters& c = counters();
#define TMS_OBS_RESET(field, name, unit, desc) c.field.reset();
  TMS_COUNTER_LIST(TMS_OBS_RESET)
  TMS_HISTOGRAM_LIST(TMS_OBS_RESET)
  TMS_TIME_HISTOGRAM_LIST(TMS_OBS_RESET)
#undef TMS_OBS_RESET
}

}  // namespace tms::obs
