#include "obs/doc_sync.hpp"

#include <algorithm>
#include <set>

#include "obs/counters.hpp"

namespace tms::obs {
namespace {

bool is_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' || c == '.';
}

/// A metric name is dotted lowercase: at least one '.', only
/// [a-z0-9_.], no leading/trailing dot.
bool looks_like_metric_name(std::string_view s) {
  if (s.empty() || s.front() == '.' || s.back() == '.') return false;
  bool dotted = false;
  for (const char c : s) {
    if (!is_name_char(c)) return false;
    if (c == '.') dotted = true;
  }
  return dotted;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) s.remove_suffix(1);
  return s;
}

}  // namespace

std::vector<std::string> documented_metric_names(std::string_view markdown) {
  std::vector<std::string> names;
  std::size_t pos = 0;
  while (pos <= markdown.size()) {
    const std::size_t eol = markdown.find('\n', pos);
    std::string_view line = markdown.substr(pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = eol == std::string_view::npos ? markdown.size() + 1 : eol + 1;

    line = trim(line);
    if (line.size() < 2 || line.front() != '|') continue;
    // First cell: between the leading '|' and the next '|'.
    const std::size_t next_bar = line.find('|', 1);
    if (next_bar == std::string_view::npos) continue;
    std::string_view cell = trim(line.substr(1, next_bar - 1));
    // The cell must be exactly one backticked token.
    if (cell.size() < 3 || cell.front() != '`' || cell.back() != '`') continue;
    const std::string_view token = cell.substr(1, cell.size() - 2);
    if (looks_like_metric_name(token)) names.emplace_back(token);
  }
  return names;
}

DocSyncReport check_counter_catalog(std::string_view markdown) {
  DocSyncReport report;
  const std::vector<std::string> documented_vec = documented_metric_names(markdown);
  const std::set<std::string> documented(documented_vec.begin(), documented_vec.end());

  std::set<std::string> live;
  for (const MetricInfo& m : metric_catalog()) {
    live.insert(m.name);
    if (documented.find(m.name) == documented.end()) report.missing.push_back(m.name);
  }
  for (const std::string& name : documented) {
    if (live.find(name) == live.end()) report.stale.push_back(name);
  }
  std::sort(report.missing.begin(), report.missing.end());
  std::sort(report.stale.begin(), report.stale.end());
  return report;
}

std::string DocSyncReport::to_string() const {
  std::string out;
  for (const std::string& n : missing) {
    out += "missing from docs/OBSERVABILITY.md catalog: " + n + "\n";
  }
  for (const std::string& n : stale) {
    out += "stale in docs/OBSERVABILITY.md catalog (no such metric): " + n + "\n";
  }
  if (out.empty()) out = "catalog in sync\n";
  return out;
}

}  // namespace tms::obs
