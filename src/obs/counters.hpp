// Process-wide counter/histogram registry for scheduler observability.
//
// Every counter the pipeline maintains is declared exactly once, in the
// X-macro lists below; the registry struct, the metric catalog (name,
// unit, description) and the JSON export are all generated from the same
// list, so a counter cannot exist without catalog metadata. The doc-sync
// checker (obs/doc_sync.hpp) walks the same catalog against the table in
// docs/OBSERVABILITY.md, which is what keeps the documentation from
// rotting: adding a counter here without documenting it fails a ctest.
//
// Increments are relaxed atomics and safe from any thread. Hot loops
// (the per-slot placement trials) accumulate into plain local tallies
// and flush once per scheduling attempt, so the steady-state cost is a
// handful of atomic adds per attempt, not per slot.
//
// Counter values measure *work actually performed*: a schedule served
// from the ScheduleCache performs no placement trials, so scheduling
// counters legitimately differ between cold- and warm-cache runs. Sums
// of per-job work are order-independent, which is what makes the
// exported snapshot byte-identical across JobPool thread counts.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tms::support {
class JsonValue;
class JsonWriter;
}

namespace tms::obs {

// clang-format off
/// X(field, name, unit, description) — plain monotone counters.
#define TMS_COUNTER_LIST(X)                                                            \
  X(driver_jobs,             "driver.jobs",             "jobs",       "batch jobs executed by driver::run_batch")                              \
  X(driver_cache_hits,       "driver.cache_hits",       "jobs",       "jobs whose schedule was served from the ScheduleCache")                 \
  X(driver_cache_misses,     "driver.cache_misses",     "jobs",       "jobs that scheduled fresh although a cache was attached")               \
  X(driver_schedules_cached, "driver.schedules_cached", "entries",    "fresh schedules inserted into the ScheduleCache")                       \
  X(sched_attempts,          "sched.attempts",          "attempts",   "fixed-threshold scheduling passes (TMS (II, C_delay, P_max) rungs plus SMS/IMS per-II tries)") \
  X(sched_attempts_feasible, "sched.attempts_feasible", "attempts",   "scheduling passes that produced a complete schedule")                   \
  X(sched_schedules,         "sched.schedules",         "schedules",  "accepted scheduler results, all schedulers")                            \
  X(sched_slots_tried,       "sched.slots_tried",       "slots",      "candidate (node, cycle) slots examined in placement loops")             \
  X(sched_slot_reject_mrt,       "sched.slot_reject.mrt",       "slots", "slots rejected by a modulo-reservation-table conflict")              \
  X(sched_slot_reject_c_delay,   "sched.slot_reject.c_delay",   "slots", "slots rejected because a new sync delay exceeded C_delay (C1)")      \
  X(sched_slot_reject_p_max,     "sched.slot_reject.p_max",     "slots", "slots rejected because the misspeculation frequency exceeded P_max (C2)") \
  X(sched_slot_reject_headroom,  "sched.slot_reject.headroom",  "slots", "slots skipped in the successor dead-zone rows at the end of the II") \
  X(sched_window_exhausted,  "sched.window_exhausted",  "events",     "nodes whose scheduling window held no feasible slot")                   \
  X(sched_ejections,         "sched.ejections",         "nodes",      "placed nodes ejected by TMS backtracking")                              \
  X(sched_pmax_sweeps_skipped, "sched.pmax_sweeps_skipped", "sweeps",  "P_max sweeps skipped because a stricter C2-rejection-free sweep proved them identical") \
  X(check_validations,       "check.validations",       "runs",       "independent validator runs (schedules and kernel programs)")            \
  X(check_violations,        "check.violations",        "violations", "invariant violations reported by the validator")                        \
  X(codegen_lowerings,       "codegen.lowerings",       "kernels",    "schedules lowered to kernel programs")                                  \
  X(sim_runs,                "sim.runs",                "runs",       "SpMT simulations executed")                                             \
  X(sim_squashes,            "sim.squashes",            "squashes",   "misspeculation squash events across all simulations")                   \
  X(sim_sync_stall_cycles,   "sim.sync_stall_cycles",   "cycles",     "cycles committed threads spent stalled at RECV")                        \
  X(sim_mem_stall_cycles,    "sim.mem_stall_cycles",    "cycles",     "load cycles beyond the scheduled hit latency")                          \
  X(sim_squashed_cycles,     "sim.squashed_cycles",     "cycles",     "wasted execution plus invalidation cycles of squashed threads")         \
  X(sim_send_recv_pairs,     "sim.send_recv_pairs",     "pairs",      "dynamic SEND/RECV pairs in committed threads")                          \
  X(sim_events,              "sim.events",              "events",     "events popped from the event-driven engine's clock queue (thread spawns, core wakes, squash retries)") \
  X(sim_sweep_points,        "sim.sweep_points",        "points",     "(workload, config) points simulated by driver::run_sim_sweep")          \
  X(sim_quick_estimates,     "sim.quick_estimates",     "runs",       "fast-path spmt::quick_estimate simulations (simulator-backed verify)")  \
  X(sim_bus_transfers,       "sim.bus_transfers",       "transfers",  "cross-core register transfers charged to the shared bus by committed threads") \
  X(sim_bus_cycles,          "sim.bus_cycles",          "cycles",     "shared-bus contention cycles added to forwarding delays (0 with the bus term off)") \
  X(policy_instances,        "policy.instances",        "policies",   "CorePolicy instantiations via policy::make_policy")                     \
  X(policy_nondefault,       "policy.nondefault",       "policies",   "make_policy calls that selected a non-modulo allocation policy")        \
  X(workloads_loops_built,   "workloads.loops_built",   "loops",      "loops materialised by workloads::build_loop")                           \
  X(trace_events_dropped,    "trace.events_dropped",    "events",     "trace events dropped because the ring buffer was full")                 \
  X(driver_cache_evictions_mem,  "driver.cache_evictions_mem",  "entries", "in-memory ScheduleCache entries evicted by the LRU capacity bound") \
  X(driver_cache_evictions_disk, "driver.cache_evictions_disk", "files",   "on-disk ScheduleCache files evicted by the max-bytes bound")        \
  X(serve_connections,       "serve.connections",       "conns",      "client connections accepted by the compile service")                    \
  X(serve_requests,          "serve.requests",          "requests",   "requests admitted into the compile-service queue")                      \
  X(serve_responses_ok,      "serve.responses_ok",      "requests",   "requests answered with a schedule")                                     \
  X(serve_responses_error,   "serve.responses_error",   "requests",   "requests answered with a structured error")                             \
  X(serve_rejected_overload, "serve.rejected_overload", "requests",   "requests refused with a retry_after error because the queue was over its high-water mark") \
  X(serve_rejected_malformed, "serve.rejected_malformed", "frames",   "malformed frames or request payloads rejected by the compile service")  \
  X(serve_deadline_missed,   "serve.deadline_missed",   "requests",   "requests cancelled or answered late because their deadline expired")    \
  X(serve_drain_refused,     "serve.drain_refused",     "requests",   "requests refused because the server was draining")                      \
  X(serve_idle_timeouts,     "serve.idle_timeouts",     "conns",      "connections closed by the idle read timeout")                           \
  X(serve_slow_requests,     "serve.slow_requests",     "requests",   "requests over the --slow-ms threshold, logged to the slow-request log") \
  X(serve_stats_requests,    "serve.stats_requests",    "requests",   "STATS/HEALTH side-channel snapshots served (never queued, never counted as compile requests)") \
  X(serve_peek_requests,     "serve.peek_requests",     "frames",     "PEEK cache probes answered on the side channel (never queued, answered during drain)") \
  X(serve_peer_fill_hits,    "serve.peer_fill_hits",    "requests",   "local cache misses satisfied by a ring sibling's cache via PEEK")       \
  X(serve_peer_fill_misses,  "serve.peer_fill_misses",  "requests",   "peer-fill attempts that found no sibling entry (unreachable peers included) and scheduled fresh") \
  X(serve_sim_verify_failures, "serve.sim_verify_failures", "requests", "responses refused because the simulator-backed verify diverged from the sequential reference") \
  X(serve_cluster_stats_requests, "serve.cluster_stats_requests", "requests", "CLUSTER_STATS side-channel snapshots served (never queued, answered during drain)") \
  X(serve_flight_requests,   "serve.flight_requests",   "requests",   "FLIGHT side-channel dumps served (never queued, answered during drain)") \
  X(serve_flight_records,    "serve.flight_records",    "records",    "per-request outcome records written into the flight-recorder ring") \
  X(serve_flight_drops,      "serve.flight_drops",      "records",    "flight-recorder records dropped because their ring slot was contended") \
  X(serve_flight_dumps,      "serve.flight_dumps",      "dumps",      "flight-recorder dumps written to disk (SIGUSR2, slow requests, drain)") \
  X(router_requests,         "router.requests",         "requests",   "compile requests accepted by the router front-end")                     \
  X(router_responses_ok,     "router.responses_ok",     "requests",   "routed requests answered with a schedule")                              \
  X(router_responses_error,  "router.responses_error",  "requests",   "routed requests answered with a structured error")                      \
  X(router_retries,          "router.retries",          "requests",   "overload-driven re-sends to the same backend after sleeping its retry_after_ms hint") \
  X(router_hedges,           "router.hedges",           "requests",   "requests moved to the next ring replica after the preferred shard stayed saturated or failed") \
  X(router_transport_errors, "router.transport_errors", "errors",     "backend connect/send/recv failures observed while forwarding")          \
  X(router_ejections,        "router.ejections",        "backends",   "backends ejected from rotation after consecutive health-probe failures") \
  X(router_readmissions,     "router.readmissions",     "backends",   "ejected backends readmitted after a successful health probe")           \
  X(router_probes,           "router.probes",           "probes",     "HEALTH probes issued by the background prober")                         \
  X(router_probe_failures,   "router.probe_failures",   "probes",     "HEALTH probes that failed (connect error, timeout, or malformed reply)") \
  X(router_no_backend,       "router.no_backend",       "requests",   "requests failed because every candidate backend was ejected or unreachable") \
  X(router_cluster_stats_fanouts, "router.cluster_stats_fanouts", "snapshots", "CLUSTER_STATS fan-outs answered by the router (one per snapshot, not per backend)") \
  X(router_cluster_fanout_errors, "router.cluster_fanout_errors", "backends", "backends that failed to answer a CLUSTER_STATS fan-out (unreachable or malformed STATS)")

/// X(field, name, unit, description) — fixed-bucket histograms
/// (buckets 0, 1, 2, 3, 4-7, 8-15, 16-31, 32+).
#define TMS_HISTOGRAM_LIST(X)                                                          \
  X(sched_ii_minus_mii,      "sched.ii_minus_mii",      "cycles",     "II inflation over MII of accepted schedules, all schedulers")           \
  X(sched_tms_c_delay,       "sched.tms_c_delay",       "cycles",     "achieved C_delay of accepted TMS schedules")                            \
  X(serve_queue_depth,       "serve.queue_depth",       "tasks",      "compile-queue depth observed at each admission")

/// X(field, name, unit, description) — log2-microsecond latency
/// histograms (TimeHistogram): bucket 0 holds 0 us, bucket b >= 1 holds
/// [2^(b-1), 2^b) us. The count-shaped TMS_HISTOGRAM_LIST buckets top
/// out at 32, which is useless for latencies; these span 1 us .. ~4 s.
#define TMS_TIME_HISTOGRAM_LIST(X)                                                     \
  X(serve_latency_queue_wait, "serve.latency.queue_wait", "us",       "per-request wait between admission and the compile worker picking it up") \
  X(serve_latency_schedule,   "serve.latency.schedule",   "us",       "per-request scheduling time (cache lookup plus any fresh scheduling pass)") \
  X(serve_latency_validate,   "serve.latency.validate",   "us",       "per-request independent-validator time")                                \
  X(serve_latency_total,      "serve.latency.total",      "us",       "per-request wall time inside CompileService::handle, admission to response") \
  X(serve_latency_sim_verify, "serve.latency.sim_verify", "us",       "per-request simulator-backed verify time (quick_estimate, --sim-verify only)") \
  X(router_latency_backend,   "router.latency.backend",   "us",       "per-forward backend round-trip time, all backends (per-backend split in tmsrouter-stats-v1)") \
  X(router_latency_total,     "router.latency.total",     "us",       "per-request wall time inside Router::handle, arrival to response")
// clang-format on

class Counter {
 public:
  void add(std::uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Histogram {
 public:
  static constexpr int kBuckets = 8;

  /// 0,1,2,3 map to their own buckets; then [4,8), [8,16), [16,32), [32,inf).
  static int bucket_of(std::uint64_t v);
  /// Lower bound of bucket `b` (for rendering).
  static std::uint64_t bucket_floor(int b);

  void record(std::uint64_t v) {
    b_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  std::array<std::uint64_t, kBuckets> values() const;
  /// Exact sum of recorded values (the buckets alone only bound it).
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> b_{};
  std::atomic<std::uint64_t> sum_{0};
};

/// Latency histogram: log2-microsecond buckets plus an exact sum.
/// Bucket 0 holds the value 0 (sub-microsecond); bucket b >= 1 holds
/// [2^(b-1), 2^b) us; the last bucket is open-ended. 24 buckets cover
/// 1 us up to ~4.2 s, which spans everything the compile service does.
/// The exact sum makes `sum(queue+schedule+validate) <= sum(total)`
/// checkable without bucket-rounding slop.
class TimeHistogram {
 public:
  static constexpr int kBuckets = 24;

  static int bucket_of_us(std::uint64_t us);
  /// Lower bound in microseconds of bucket `b` (for rendering).
  static std::uint64_t bucket_floor_us(int b);

  void record_us(std::uint64_t us) {
    b_[bucket_of_us(us)].fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(us, std::memory_order_relaxed);
  }
  std::array<std::uint64_t, kBuckets> values() const;
  std::uint64_t sum_us() const { return sum_us_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> b_{};
  std::atomic<std::uint64_t> sum_us_{0};
};

/// The registry: one member per X-macro entry.
struct Counters {
#define TMS_OBS_DECL(field, name, unit, desc) Counter field;
  TMS_COUNTER_LIST(TMS_OBS_DECL)
#undef TMS_OBS_DECL
#define TMS_OBS_DECL(field, name, unit, desc) Histogram field;
  TMS_HISTOGRAM_LIST(TMS_OBS_DECL)
#undef TMS_OBS_DECL
#define TMS_OBS_DECL(field, name, unit, desc) TimeHistogram field;
  TMS_TIME_HISTOGRAM_LIST(TMS_OBS_DECL)
#undef TMS_OBS_DECL
};

/// The process-wide registry instance.
Counters& counters();

enum class MetricKind { kCounter, kHistogram, kTimeHistogram };

struct MetricInfo {
  const char* name;
  const char* unit;
  const char* description;
  MetricKind kind;
};

/// Catalog of every registered metric — counters, then count-shaped
/// histograms, then time histograms, each in declaration order. This is
/// the authoritative list the doc-sync checker compares against
/// docs/OBSERVABILITY.md.
const std::vector<MetricInfo>& metric_catalog();

/// A point-in-time copy of every metric, aligned with metric_catalog()
/// order (counters, then histograms, then time histograms).
struct CountersSnapshot {
  std::vector<std::uint64_t> counters;
  std::vector<std::array<std::uint64_t, Histogram::kBuckets>> histograms;
  std::vector<std::uint64_t> histogram_sums;
  std::vector<std::array<std::uint64_t, TimeHistogram::kBuckets>> time_histograms;
  std::vector<std::uint64_t> time_histogram_sums_us;

  /// Value of a counter by catalog name (0 when unknown) — convenience
  /// for tests and tools; linear scan.
  std::uint64_t value(std::string_view name) const;
  /// Bucket values of a time histogram by catalog name (all-zero when
  /// unknown).
  std::array<std::uint64_t, TimeHistogram::kBuckets> time_histogram(std::string_view name) const;
  /// Total recorded count of a time histogram by catalog name.
  std::uint64_t time_histogram_count(std::string_view name) const;
  /// Exact sum in microseconds of a time histogram by catalog name.
  std::uint64_t time_histogram_sum_us(std::string_view name) const;
};

CountersSnapshot counters_snapshot();

/// after - before, member-wise. Counters are monotone, so a batch's own
/// work is the delta around it even in a process that has already run
/// other batches.
CountersSnapshot snapshot_delta(const CountersSnapshot& before, const CountersSnapshot& after);

/// into += from, member-wise. Bucket-wise histogram addition is exact,
/// so an aggregate of per-shard snapshots carries the same percentile
/// information one process observing all the traffic would have.
void snapshot_accumulate(CountersSnapshot& into, const CountersSnapshot& from);

/// Rebuilds a snapshot from the object `write_counters_json` produced —
/// typically parsed out of another process's STATS payload (the router
/// aggregating its shards). Names are matched against the local
/// catalog: unknown names are ignored and missing names read 0, so a
/// version-skewed shard degrades to zeros instead of misaligning the
/// vectors.
CountersSnapshot snapshot_from_json(const support::JsonValue& v);

/// Writes one JSON object value:
/// {"counters":{name:value,...},
///  "histograms":{name:{"buckets":[8],"count":n,"sum":s},...},
///  "time_histograms":{name:{"buckets":[24],"count":n,"sum_us":s},...}}
/// Keys are in catalog order — the output is deterministic.
void write_counters_json(support::JsonWriter& w, const CountersSnapshot& s);

/// Human-readable name/value/unit table of the non-zero metrics.
std::string counters_to_text(const CountersSnapshot& s);

/// Zeroes every counter and histogram (tests only).
void counters_reset();

}  // namespace tms::obs
