// In-daemon flight recorder: a lock-free fixed-size ring of recent
// per-request outcome records.
//
// Counters answer "how much, how fast, in aggregate"; the trace buffer
// answers "where did this traced request spend its time" — but only
// while a tracer is armed. The flight recorder fills the operational
// gap between them: tmsd always keeps the last N requests' full outcome
// (trace id, class features, thresholds the relaxation ladder chose,
// per-stage micros, final status) in memory, so a SIGUSR2, a slow
// request, or a FLIGHT verb can dump exactly what the daemon just did
// without any prior arming. The records are also the per-class outcome
// feed the ROADMAP's adaptive (C_delay, P_max) policy item consumes.
//
// Concurrency contract (runs under the CI TSan matrix):
//   - record() never blocks and never tears: a writer CAS-claims its
//     slot (empty|full -> busy), copies the POD record in, and
//     release-publishes it back to full. A slot it cannot claim —
//     another writer or a reader holds it — means the record is
//     *dropped* and counted (serve.flight_drops), never a data race.
//   - snapshot() CAS-claims each full slot the same way, copies it out,
//     and republishes it; slots mid-write are simply skipped. Readers
//     therefore see only whole records, in seq order.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace tms::obs {

/// One request's outcome. Plain data, fixed size: strings are truncated
/// into char arrays so a record can be copied into a ring slot with no
/// allocation on the request path.
struct FlightRecord {
  /// Monotone record number (process lifetime); orders snapshots.
  std::uint64_t seq = 0;
  // Distributed-trace identity (zero for untraced requests) — the
  // exemplar that links this record to a stitched cluster trace.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  char request_id[65] = {};  ///< wire request ids are <= 64 chars
  char loop[33] = {};        ///< loop name, truncated
  char scheduler[8] = {};    ///< "sms", "ims", "tms"
  char outcome[16] = {};     ///< "ok" or the wire ErrorCode name
  // Class features: what kind of request this was.
  std::int32_t instrs = 0;
  std::int32_t ncore = 0;
  bool cache_hit = false;
  // Thresholds the ladder settled on (-1 when not applicable).
  std::int32_t ii = 0;
  std::int32_t mii = 0;
  std::int32_t c_delay_threshold = -1;
  double p_max = -1.0;
  // Per-stage micros, as echoed to the client.
  std::int64_t t_queue_us = 0;
  std::int64_t t_schedule_us = 0;
  std::int64_t t_validate_us = 0;
  std::int64_t t_total_us = 0;
};

/// Copies `s` into a FlightRecord char array, truncating to fit.
void flight_copy(char* dst, std::size_t dst_size, std::string_view s);

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 256);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Stamps `r.seq` and stores it in the ring. Lock-free; drops (and
  /// counts) instead of waiting when the slot is contended.
  void record(FlightRecord r);

  /// Whole records currently retained, sorted by seq ascending.
  std::vector<FlightRecord> snapshot() const;

  std::size_t capacity() const { return capacity_; }
  std::uint64_t recorded() const { return recorded_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  enum : std::uint32_t { kEmpty = 0, kBusy = 1, kFull = 2 };
  struct Slot {
    std::atomic<std::uint32_t> state{kEmpty};
    FlightRecord rec;
  };

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// The canonical tmsd-flight-v1 dump (docs/SERVING.md): schema line,
/// ring stats, then the retained records oldest-first.
std::string flight_to_json(const FlightRecorder& recorder);

}  // namespace tms::obs
