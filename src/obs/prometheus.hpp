// Prometheus text-exposition export of the counter registry, plus an
// internal linter for the format.
//
// `write_prometheus_text` renders a CountersSnapshot in the Prometheus
// text exposition format (version 0.0.4): `# HELP` / `# TYPE` comment
// pairs followed by sample lines, counters as `counter`, both histogram
// kinds as `histogram` with cumulative `_bucket{le="..."}` series, an
// exact `_sum`, a `_count`, and the mandatory `le="+Inf"` bucket. Time
// histograms are exported in **seconds** (the Prometheus base unit for
// time), so `le` boundaries are 2^b / 1e6 and `_sum` is `sum_us / 1e6`.
//
// `lint_prometheus_text` re-checks a rendered exposition without
// external tooling, so tests can verify a dumped metrics file (the
// `metrics_exposition` ctest) and `tmsd --metrics-dump` output is never
// trusted unverified. The linter is deliberately strict about the
// invariants scrapers rely on: declared TYPE before samples, cumulative
// non-decreasing buckets, a trailing `+Inf` bucket equal to `_count`,
// `_sum`/`_count` present for every histogram, and no duplicate series.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tms::obs {

struct CountersSnapshot;

/// `serve.latency.total` -> `tms_serve_latency_total`. Prometheus metric
/// names cannot contain dots; every exported name carries the `tms_`
/// namespace prefix.
std::string prometheus_name(std::string_view metric);

/// Renders the full snapshot as Prometheus text exposition (catalog
/// order — deterministic output).
std::string write_prometheus_text(const CountersSnapshot& s);

/// Renders N labeled snapshots as one exposition — the cluster metrics
/// dump (tmsrouter --metrics-dump). Each metric's HELP/TYPE pair is
/// emitted once, followed by one sample set per shard carrying a
/// `shard="<label>"` label; histogram `le` labels are ordered within
/// each shard's block. Lints clean against `lint_prometheus_text`,
/// which groups histogram buckets per label set.
std::string write_prometheus_text_sharded(
    const std::vector<std::pair<std::string, CountersSnapshot>>& shards);

/// Returns an error message ("line N: ...") when `text` violates the
/// exposition format, or nullopt when it lints clean.
std::optional<std::string> lint_prometheus_text(std::string_view text);

}  // namespace tms::obs
