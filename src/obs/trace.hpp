// Structured tracing: scoped spans and instant events into a process-wide
// fixed-capacity event buffer, exportable as Chrome trace_event JSON
// (chrome://tracing, Perfetto) or as a canonical, timestamp-free JSON
// form that is byte-identical across JobPool thread counts.
//
// Overhead contract:
//   - Configured out (-DTMS_TRACE=OFF, i.e. TMS_TRACE == 0): the macros
//     below expand to nothing; argument expressions are never evaluated.
//   - Compiled in but disabled (the default at runtime): every macro is
//     one relaxed atomic load and a branch.
//   - Enabled: one fetch_add claims a slot, the event is written in
//     place. The buffer never reallocates or overwrites while armed —
//     when full, new events are *dropped* (counted), so concurrent
//     writers never race on a slot and the retained prefix is exactly
//     the first `capacity` events in arrival order.
//
// Determinism: every event records a logical position — the thread-local
// (context phase, context item, sequence) set by ScopedContext — instead
// of relying on wall-clock order. One context instance is only ever
// active on one thread (a batch job, a suite-generation item), so
// sorting by that triple yields the same event order whatever the thread
// count, which is what trace_canonical_json() exports. Events recorded
// outside any context carry (-1, -1) and are deterministic as long as
// they are emitted from the submitting thread only (true for the batch
// driver). Canonical determinism additionally requires that nothing was
// dropped — size the buffer for the workload and check trace_dropped().
//
// String arguments must be string literals or pointers interned via
// obs::intern() — events store the pointer, not a copy.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#ifndef TMS_TRACE
#define TMS_TRACE 1
#endif

namespace tms::obs {

/// Context phases for ScopedContext (kept small and stable: they appear
/// in canonical trace output).
inline constexpr std::int32_t kCtxSuiteGen = 0;
inline constexpr std::int32_t kCtxJob = 1;
inline constexpr std::int32_t kCtxExplain = 2;

struct TraceArg {
  enum class Kind : std::uint8_t { kInt, kStr, kDouble };
  const char* key = "";
  Kind kind = Kind::kInt;
  union {
    std::int64_t i;
    const char* s;
    double d;
  };
  TraceArg() : i(0) {}
};

inline TraceArg targ(const char* key, std::int64_t v) {
  TraceArg a;
  a.key = key;
  a.kind = TraceArg::Kind::kInt;
  a.i = v;
  return a;
}
inline TraceArg targ(const char* key, int v) { return targ(key, static_cast<std::int64_t>(v)); }
inline TraceArg targ(const char* key, std::size_t v) {
  return targ(key, static_cast<std::int64_t>(v));
}
inline TraceArg targ(const char* key, double v) {
  TraceArg a;
  a.key = key;
  a.kind = TraceArg::Kind::kDouble;
  a.d = v;
  return a;
}
inline TraceArg targ(const char* key, const char* v) {
  TraceArg a;
  a.key = key;
  a.kind = TraceArg::Kind::kStr;
  a.s = v;
  return a;
}

struct TraceEvent {
  static constexpr int kMaxArgs = 4;
  const char* cat = "";
  const char* name = "";
  char phase = 'i';  ///< 'X' complete span, 'i' instant
  std::uint8_t nargs = 0;
  std::int32_t ctx_phase = -1;
  std::int32_t ctx_item = -1;
  std::uint32_t seq = 0;
  std::uint32_t tid = 0;
  std::int64_t ts_us = 0;   ///< start, microseconds since tracer epoch
  std::int64_t dur_us = 0;  ///< spans only
  /// Distributed-trace identity (docs/OBSERVABILITY.md "Distributed
  /// tracing"): zero outside any trace context. Exported in the Chrome
  /// JSON (as hex args) but omitted from the canonical form — ids are
  /// minted, so they would break its byte-identity contract.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  TraceArg args[kMaxArgs];
};

/// Mints a process-unique non-zero 64-bit id for traces and spans:
/// a splitmix64 walk from a per-process random seed, so ids minted by
/// different daemons in a cluster do not collide when their trace
/// buffers are stitched into one file. Thread-safe, lock-free.
std::uint64_t mint_id();

/// The current thread's distributed-trace position. trace_id == 0 means
/// "not in a trace" — SpanGuards mint no ids and events carry zeros.
struct TraceContext {
  std::uint64_t trace_id = 0;
  /// Innermost open span — the parent for the next span on this thread.
  std::uint64_t span_id = 0;
  /// Remote parent, consumed by the first SpanGuard after a
  /// ScopedTraceContext install (see `adopt`).
  std::uint64_t parent_span_id = 0;
  /// True between a ScopedTraceContext install and the first SpanGuard:
  /// that guard *adopts* span_id (pre-minted, so it can be echoed on the
  /// wire before the span closes) instead of minting a child.
  bool adopt = false;
};

TraceContext current_trace_context();

/// Continues a trace that started elsewhere (or roots a new one): pins
/// the thread's trace id and pre-mints the continuation span id that the
/// next SpanGuard on this thread will adopt, with `parent_span_id`
/// naming the remote span it hangs under. span_id() is stable from
/// construction, so servers can echo it in the response while the work
/// is still running. trace_id == 0 installs the empty context (useful to
/// keep worker threads from inheriting stale state). Always compiled —
/// a few thread-local stores, like ScopedContext.
class ScopedTraceContext {
 public:
  ScopedTraceContext(std::uint64_t trace_id, std::uint64_t parent_span_id);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

  std::uint64_t trace_id() const { return trace_id_; }
  /// The span id the first SpanGuard in this scope records under (0 when
  /// trace_id was 0).
  std::uint64_t span_id() const { return span_id_; }

 private:
  TraceContext saved_;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
};

/// True when tracing support was compiled in (TMS_TRACE != 0).
bool trace_compiled();

/// True when the tracer is armed. Inline-fast path is in the macros; this
/// is the out-of-line truth.
bool trace_on();

/// Arms the tracer with a buffer of `capacity` events (allocated now).
/// Re-enabling with a different capacity re-allocates; events are kept
/// until trace_reset()/trace_disable().
void trace_enable(std::size_t capacity = 1u << 20);
void trace_disable();  ///< disarms and frees the buffer
void trace_reset();    ///< drops recorded events, keeps armed state + capacity

std::uint64_t trace_dropped();
std::size_t trace_event_count();
std::vector<TraceEvent> trace_snapshot();  ///< arrival order

/// Interns a dynamic string for use as an event arg or name; the returned
/// pointer lives until process exit. Thread-safe.
const char* intern(std::string_view s);

/// Chrome trace_event JSON ("traceEvents" array; ph X/i, ts/dur in
/// microseconds). Loadable by chrome://tracing and Perfetto.
std::string trace_chrome_json();

/// Canonical timestamp-free export: events sorted by
/// (ctx_phase, ctx_item, seq), with ts/dur/tid omitted. Byte-identical
/// across thread counts provided nothing was dropped.
std::string trace_canonical_json();

void emit_instant(const char* cat, const char* name, std::initializer_list<TraceArg> args);

/// RAII span: records the start time at construction and appends one 'X'
/// event at destruction. Args can be attached any time in between.
class SpanGuard {
 public:
  SpanGuard(const char* cat, const char* name);
  ~SpanGuard();
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  void arg(const TraceArg& a);
  void arg(const TraceArg& a, const TraceArg& b) {
    arg(a);
    arg(b);
  }
  void arg(const TraceArg& a, const TraceArg& b, const TraceArg& c) {
    arg(a, b);
    arg(c);
  }
  void arg(const TraceArg& a, const TraceArg& b, const TraceArg& c, const TraceArg& d) {
    arg(a, b, c);
    arg(d);
  }

  /// This span's distributed-trace id: minted (or adopted from the
  /// enclosing ScopedTraceContext) at construction whenever the thread
  /// is inside a trace — even while the tracer is disarmed, so the id
  /// can be echoed on the wire. 0 outside any trace context.
  std::uint64_t id() const { return span_id_; }

 private:
  const char* cat_;
  const char* name_;
  std::int64_t start_us_ = 0;
  bool active_ = false;
  bool ctx_pushed_ = false;
  std::uint8_t nargs_ = 0;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_span_id_ = 0;
  std::uint64_t saved_span_id_ = 0;
  TraceArg args_[TraceEvent::kMaxArgs];
};

/// Establishes the logical position (phase, item) for every event the
/// current thread records, and restarts the per-context sequence number.
/// Restores the previous context (including its sequence counter) on
/// destruction. Always compiled — it is a few thread-local stores — so
/// callers need no #if around it.
class ScopedContext {
 public:
  ScopedContext(std::int32_t phase, std::int32_t item);
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  std::int32_t saved_phase_;
  std::int32_t saved_item_;
  std::uint32_t saved_seq_;
};

}  // namespace tms::obs

#if TMS_TRACE
/// Declares a scoped span `var`; emits one 'X' event when it leaves scope.
#define TMS_TRACE_SPAN(var, cat, name) ::tms::obs::SpanGuard var(cat, name)
/// The distributed span id of a span declared with TMS_TRACE_SPAN
/// (0 when tracing is compiled out or the thread is not in a trace).
#define TMS_TRACE_SPAN_ID(var) (var).id()
/// Attaches args to a span declared with TMS_TRACE_SPAN. Args are only
/// evaluated when the tracer is armed.
#define TMS_TRACE_SPAN_ARG(var, ...)             \
  do {                                           \
    if (::tms::obs::trace_on()) var.arg(__VA_ARGS__); \
  } while (0)
/// Records one instant event. Args are only evaluated when armed.
#define TMS_TRACE_INSTANT(cat, name, ...)                            \
  do {                                                               \
    if (::tms::obs::trace_on())                                      \
      ::tms::obs::emit_instant(cat, name, {__VA_ARGS__});            \
  } while (0)
#else
#define TMS_TRACE_SPAN(var, cat, name) \
  do {                                 \
  } while (0)
#define TMS_TRACE_SPAN_ID(var) (::std::uint64_t{0})
#define TMS_TRACE_SPAN_ARG(var, ...) \
  do {                               \
  } while (0)
#define TMS_TRACE_INSTANT(cat, name, ...) \
  do {                                    \
  } while (0)
#endif
