// --explain renderer: turns a captured trace of one loop's TMS run into
// a human-readable narrative of the relaxation ladder — which (II,
// C_delay, p_max) combinations were attempted, why slots were rejected,
// and where the scheduler finally landed relative to the MII.
//
// The renderer consumes trace events only; it knows nothing about the
// scheduler types, so tms_obs stays below tms_sched in the link order.
// Callers (tools/tmsbatch.cpp) schedule the loop with tracing armed,
// snapshot the buffer, and pass the events here together with the
// little context the trace does not carry.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace tms::obs {

struct ExplainInput {
  std::string loop_name;
  std::vector<std::string> node_names;  ///< index -> instruction name, for "hardest nodes"
  int mii = 0;
  std::string scheduler;     ///< "tms" or "sms", for the header
  std::string f_breakdown;   ///< optional cost-model summary line(s), printed verbatim
  std::vector<TraceEvent> events;  ///< arrival-order snapshot for this loop
};

/// Renders the narrative. Events it understands (all cat "sched"):
///   - 'X' "tms.attempt"  args: ii, c_delay, p_max, feasible
///   - 'i' "slot.reject"  args: node, row, reason
///   - 'i' "slot.none"    args: node       (window exhausted)
///   - 'i' "eject"        args: node, victim
///   - 'i' "tms.result"   args: ii, c_delay, p_max, feasible
/// Unknown events are ignored, so the renderer tolerates traces that
/// include surrounding pipeline activity.
std::string render_tms_explain(const ExplainInput& in);

}  // namespace tms::obs
