// Doc-sync checker: keeps docs/OBSERVABILITY.md's counter catalog table
// in lockstep with the live registry (obs/counters.hpp).
//
// The contract is bidirectional:
//   - every metric in metric_catalog() must appear as a backticked name
//     in a markdown table row ("missing" when it does not), and
//   - every table row whose first cell is a dotted metric name must
//     correspond to a live metric ("stale" when it does not).
// A ctest (tests/obs_test.cpp) runs this against the real document, so a
// counter cannot be added, renamed or removed without the documentation
// following — the docs cannot rot.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tms::obs {

struct DocSyncReport {
  std::vector<std::string> missing;  ///< registered metrics absent from the doc
  std::vector<std::string> stale;    ///< documented names with no live metric

  bool ok() const { return missing.empty() && stale.empty(); }
  std::string to_string() const;
};

/// Extracts every documented metric name from `markdown`: table rows
/// (lines starting with '|') whose first cell is a single backticked
/// dotted identifier, e.g. "| `sched.slots_tried` | slots | ... |".
std::vector<std::string> documented_metric_names(std::string_view markdown);

/// Diffs the live registry against the catalog table in `markdown`.
DocSyncReport check_counter_catalog(std::string_view markdown);

}  // namespace tms::obs
