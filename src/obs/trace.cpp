#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <random>
#include <unordered_set>

#include "obs/counters.hpp"
#include "support/json.hpp"

namespace tms::obs {
namespace {

using Clock = std::chrono::steady_clock;

struct ThreadCtx {
  std::int32_t phase = -1;
  std::int32_t item = -1;
  std::uint32_t seq = 0;
  std::uint32_t tid = 0;
  bool tid_assigned = false;
};

thread_local ThreadCtx t_ctx;
thread_local TraceContext t_trace;

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_head{0};
std::atomic<std::uint64_t> g_dropped{0};
std::atomic<std::uint32_t> g_next_tid{1};

// Guards buffer (re)allocation only; recording never takes it.
std::mutex g_buf_mutex;
std::atomic<std::vector<TraceEvent>*> g_buf{nullptr};

Clock::time_point epoch() {
  static const Clock::time_point e = Clock::now();
  return e;
}

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - epoch()).count();
}

std::uint32_t this_tid() {
  if (!t_ctx.tid_assigned) {
    t_ctx.tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
    t_ctx.tid_assigned = true;
  }
  return t_ctx.tid;
}

/// Claims a slot and stamps the logical position; returns nullptr when
/// the tracer is off or the buffer is full.
TraceEvent* claim() {
  std::vector<TraceEvent>* buf = g_buf.load(std::memory_order_acquire);
  if (buf == nullptr) return nullptr;
  const std::uint64_t idx = g_head.fetch_add(1, std::memory_order_relaxed);
  if (idx >= buf->size()) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    counters().trace_events_dropped.add(1);
    return nullptr;
  }
  TraceEvent* e = &(*buf)[idx];
  e->ctx_phase = t_ctx.phase;
  e->ctx_item = t_ctx.item;
  // Events outside any context (phase -1) sort by arrival order in the
  // canonical export (they are main-thread-only by contract), so their
  // sequence number must not leak thread-local state across resets.
  e->seq = t_ctx.phase < 0 ? 0 : t_ctx.seq++;
  e->tid = this_tid();
  return e;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

void write_args_json(support::JsonWriter& w, const TraceEvent& e, bool with_ids) {
  w.key("args").begin_object();
  for (int i = 0; i < e.nargs; ++i) {
    const TraceArg& a = e.args[i];
    switch (a.kind) {
      case TraceArg::Kind::kInt: w.member(a.key, a.i); break;
      case TraceArg::Kind::kStr: w.member(a.key, a.s != nullptr ? a.s : ""); break;
      case TraceArg::Kind::kDouble: w.member(a.key, a.d); break;
    }
  }
  // Distributed-trace identity, hex like the wire form. Only in the
  // Chrome export: minted ids would break canonical byte-identity.
  if (with_ids && e.trace_id != 0) {
    w.member("trace_id", hex16(e.trace_id));
    w.member("span_id", hex16(e.span_id));
    if (e.parent_span_id != 0) w.member("parent_span_id", hex16(e.parent_span_id));
  }
  w.end_object();
}

}  // namespace

bool trace_compiled() { return TMS_TRACE != 0; }

bool trace_on() { return g_enabled.load(std::memory_order_relaxed); }

void trace_enable(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(g_buf_mutex);
  if (capacity == 0) capacity = 1;
  g_enabled.store(false, std::memory_order_relaxed);
  delete g_buf.load(std::memory_order_relaxed);
  g_buf.store(new std::vector<TraceEvent>(capacity), std::memory_order_release);
  g_head.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  (void)epoch();  // pin the epoch before the first event
  g_enabled.store(true, std::memory_order_release);
}

void trace_disable() {
  std::lock_guard<std::mutex> lock(g_buf_mutex);
  g_enabled.store(false, std::memory_order_relaxed);
  delete g_buf.load(std::memory_order_relaxed);
  g_buf.store(nullptr, std::memory_order_release);
  g_head.store(0, std::memory_order_relaxed);
}

void trace_reset() {
  std::lock_guard<std::mutex> lock(g_buf_mutex);
  g_head.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
}

std::uint64_t trace_dropped() { return g_dropped.load(std::memory_order_relaxed); }

std::size_t trace_event_count() {
  std::lock_guard<std::mutex> lock(g_buf_mutex);
  const std::vector<TraceEvent>* buf = g_buf.load(std::memory_order_relaxed);
  if (buf == nullptr) return 0;
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(g_head.load(std::memory_order_relaxed), buf->size()));
}

std::vector<TraceEvent> trace_snapshot() {
  std::lock_guard<std::mutex> lock(g_buf_mutex);
  const std::vector<TraceEvent>* buf = g_buf.load(std::memory_order_relaxed);
  if (buf == nullptr) return {};
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(g_head.load(std::memory_order_relaxed), buf->size()));
  return std::vector<TraceEvent>(buf->begin(), buf->begin() + static_cast<std::ptrdiff_t>(n));
}

std::uint64_t mint_id() {
  // Per-process random seed + a splitmix64 walk: unique within the
  // process by the counter, disjoint across cluster daemons by the
  // seed, never zero (zero means "no trace").
  static const std::uint64_t seed = [] {
    std::random_device rd;
    std::uint64_t s = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    s ^= static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    return s != 0 ? s : 0x9e3779b97f4a7c15ull;
  }();
  static std::atomic<std::uint64_t> next{1};
  for (;;) {
    std::uint64_t x = seed + 0x9e3779b97f4a7c15ull * next.fetch_add(1, std::memory_order_relaxed);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    if (x != 0) return x;
  }
}

TraceContext current_trace_context() { return t_trace; }

ScopedTraceContext::ScopedTraceContext(std::uint64_t trace_id, std::uint64_t parent_span_id)
    : saved_(t_trace) {
  if (trace_id != 0) {
    trace_id_ = trace_id;
    span_id_ = mint_id();
    t_trace.trace_id = trace_id;
    t_trace.span_id = span_id_;
    t_trace.parent_span_id = parent_span_id;
    t_trace.adopt = true;
  } else {
    t_trace = TraceContext{};
  }
}

ScopedTraceContext::~ScopedTraceContext() { t_trace = saved_; }

const char* intern(std::string_view s) {
  static std::mutex mutex;
  static std::unordered_set<std::string>* pool = new std::unordered_set<std::string>();
  std::lock_guard<std::mutex> lock(mutex);
  return pool->emplace(s).first->c_str();
}

void emit_instant(const char* cat, const char* name, std::initializer_list<TraceArg> args) {
  if (!trace_on()) return;
  TraceEvent* e = claim();
  if (e == nullptr) return;
  e->cat = cat;
  e->name = name;
  e->phase = 'i';
  e->ts_us = now_us();
  e->dur_us = 0;
  e->nargs = 0;
  // Instants hang off the innermost open span without minting an id.
  e->trace_id = t_trace.trace_id;
  e->span_id = 0;
  e->parent_span_id = t_trace.span_id;
  for (const TraceArg& a : args) {
    if (e->nargs >= TraceEvent::kMaxArgs) break;
    e->args[e->nargs++] = a;
  }
}

SpanGuard::SpanGuard(const char* cat, const char* name) : cat_(cat), name_(name) {
  active_ = trace_on();
  if (active_) start_us_ = now_us();
  // Distributed-trace ids are minted (or adopted) whenever the thread is
  // inside a trace, even while the tracer is disarmed: servers echo the
  // span id on the wire regardless of whether events are being kept.
  if (t_trace.trace_id != 0) {
    trace_id_ = t_trace.trace_id;
    if (t_trace.adopt) {
      span_id_ = t_trace.span_id;
      parent_span_id_ = t_trace.parent_span_id;
      t_trace.adopt = false;
      saved_span_id_ = t_trace.span_id;
    } else {
      span_id_ = mint_id();
      parent_span_id_ = t_trace.span_id;
      saved_span_id_ = t_trace.span_id;
      t_trace.span_id = span_id_;
    }
    ctx_pushed_ = true;
  }
}

void SpanGuard::arg(const TraceArg& a) {
  if (!active_ || nargs_ >= TraceEvent::kMaxArgs) return;
  args_[nargs_++] = a;
}

SpanGuard::~SpanGuard() {
  if (ctx_pushed_) t_trace.span_id = saved_span_id_;
  if (!active_ || !trace_on()) return;
  TraceEvent* e = claim();
  if (e == nullptr) return;
  e->cat = cat_;
  e->name = name_;
  e->phase = 'X';
  e->ts_us = start_us_;
  e->dur_us = now_us() - start_us_;
  e->trace_id = trace_id_;
  e->span_id = span_id_;
  e->parent_span_id = parent_span_id_;
  e->nargs = nargs_;
  for (int i = 0; i < nargs_; ++i) e->args[i] = args_[i];
}

ScopedContext::ScopedContext(std::int32_t phase, std::int32_t item)
    : saved_phase_(t_ctx.phase), saved_item_(t_ctx.item), saved_seq_(t_ctx.seq) {
  t_ctx.phase = phase;
  t_ctx.item = item;
  t_ctx.seq = 0;
}

ScopedContext::~ScopedContext() {
  t_ctx.phase = saved_phase_;
  t_ctx.item = saved_item_;
  t_ctx.seq = saved_seq_;
}

std::string trace_chrome_json() {
  const std::vector<TraceEvent> events = trace_snapshot();
  support::JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const TraceEvent& e : events) {
    w.begin_object();
    w.member("name", e.name);
    w.member("cat", e.cat);
    w.member("ph", std::string_view(&e.phase, 1));
    w.member("ts", e.ts_us);
    if (e.phase == 'X') w.member("dur", e.dur_us);
    w.member("pid", 1);
    w.member("tid", static_cast<std::int64_t>(e.tid));
    write_args_json(w, e, /*with_ids=*/true);
    w.end_object();
  }
  w.end_array();
  w.key("otherData").begin_object();
  w.member("schema", "tmstrace-chrome-v1");
  w.member("dropped", trace_dropped());
  w.end_object();
  w.end_object();
  return w.str();
}

std::string trace_canonical_json() {
  std::vector<TraceEvent> events = trace_snapshot();
  std::stable_sort(events.begin(), events.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.ctx_phase != b.ctx_phase) return a.ctx_phase < b.ctx_phase;
    if (a.ctx_item != b.ctx_item) return a.ctx_item < b.ctx_item;
    return a.seq < b.seq;
  });
  support::JsonWriter w;
  w.begin_object();
  w.member("schema", "tmstrace-canonical-v1");
  w.member("dropped", trace_dropped());
  w.key("events").begin_array();
  for (const TraceEvent& e : events) {
    w.begin_object();
    w.member("phase", e.ctx_phase);
    w.member("item", e.ctx_item);
    w.member("seq", static_cast<std::int64_t>(e.seq));
    w.member("cat", e.cat);
    w.member("name", e.name);
    w.member("ph", std::string_view(&e.phase, 1));
    write_args_json(w, e, /*with_ids=*/false);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace tms::obs
