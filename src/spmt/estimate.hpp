// Fast-path simulator estimate for serving-rate verification.
//
// quick_estimate runs the event-driven engine for a small, bounded
// number of iterations — enough to cover the pipeline fill, a steady
// window, and the drain — and checks the committed memory image and
// value fingerprint against the sequential reference interpreter. It is
// what CompileService calls for simulator-backed verification of every
// response (`tmsd --sim-verify`), so it is sized for microseconds, not
// the thousands of iterations an offline oracle run uses.
#pragma once

#include <cstdint>

#include "codegen/kernel_program.hpp"
#include "machine/spmt_config.hpp"
#include "spmt/sim.hpp"

namespace tms::spmt {

struct QuickEstimateOptions {
  /// Source iterations to simulate; 0 picks max(32, 8 * ncore) capped at
  /// 256 — enough that every core commits several steady-state threads.
  std::int64_t iterations = 0;
  std::uint64_t stream_seed = 1;  ///< address-stream layout (default_streams)
  /// Compare the committed memory image and value fingerprint against
  /// run_reference; disable for timing-only probes (keeps keep_memory
  /// off, roughly halving the work).
  bool check_semantics = true;
};

struct QuickEstimate {
  /// True when the speculative execution committed exactly the
  /// sequential reference semantics (always true when check_semantics
  /// was off — timing-only probes assert nothing).
  bool semantics_ok = true;
  std::int64_t iterations = 0;  ///< iterations actually simulated
  double cycles_per_iteration = 0.0;
  double misspec_frequency = 0.0;
  SpmtStats stats;
};

/// Simulates `kp` for a bounded number of iterations on the event-driven
/// engine and (optionally) differentially checks semantics against the
/// sequential reference. Deterministic for fixed inputs.
QuickEstimate quick_estimate(const ir::Loop& loop, const codegen::KernelProgram& kp,
                             const machine::SpmtConfig& cfg,
                             const QuickEstimateOptions& opts = {});

}  // namespace tms::spmt
