// Dependence profiling — the substrate behind the paper's probability
// annotations.
//
// The paper profiles SPECfp2000 with train inputs to learn, for every
// memory dependence, the fraction of producer executions whose value the
// consumer actually reads (Section 4.2's p_d). This module measures the
// same quantity by running the loop's address streams: for each memory
// flow edge x -> y of distance d, the fraction of iterations i in which
// y's address at i equals x's address at i - d. `apply_profile` writes
// the measured frequencies back into a loop's annotations, closing the
// profile-guided loop: annotate -> generate streams -> profile -> verify.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/loop.hpp"
#include "spmt/address.hpp"

namespace tms::spmt {

struct EdgeProfile {
  std::size_t edge = 0;       ///< index into Loop::deps()
  std::int64_t producer_executions = 0;
  std::int64_t collisions = 0;
  double frequency() const {
    return producer_executions > 0
               ? static_cast<double>(collisions) / static_cast<double>(producer_executions)
               : 0.0;
  }
};

/// Profiles every memory flow dependence over `n_iters` iterations of the
/// address streams (the "train input" run).
std::vector<EdgeProfile> profile_dependences(const ir::Loop& loop, const AddressStreams& streams,
                                             std::int64_t n_iters);

/// Rebuilds `loop` with each profiled memory flow dependence's
/// probability replaced by the measured frequency. Edges that never
/// collided are dropped (the profile proved them independent), matching
/// how a profile-guided compiler would prune its dependence graph.
/// `min_probability` clamps rare-but-real dependences away from zero.
ir::Loop apply_profile(const ir::Loop& loop, const std::vector<EdgeProfile>& profile,
                       double min_probability = 0.001);

}  // namespace tms::spmt
