// Set-associative cache models for the simulated memory hierarchy
// (Table 1: 16KB 4-way private L1D per core, 1MB 4-way shared L2).
//
// Only tag state is modelled — data values live in the simulator's
// functional memory. Latency is resolved by probing L1, then L2, then
// main memory, updating LRU state along the way.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/spmt_config.hpp"
#include "support/assert.hpp"

namespace tms::spmt {

class SetAssocCache {
 public:
  SetAssocCache(int sets, int ways, int line_bytes);

  /// Probes and updates the cache. Returns true on hit; on miss the line
  /// is filled (evicting LRU).
  bool access(std::uint64_t addr);

  /// Probe without allocation (used by tests).
  bool contains(std::uint64_t addr) const;

  void invalidate_all();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    std::uint64_t lru = 0;  ///< larger = more recently used
  };

  std::uint64_t set_index(std::uint64_t addr) const;
  std::uint64_t tag_of(std::uint64_t addr) const;

  int sets_;
  int ways_;
  int line_shift_;
  std::vector<Line> lines_;  ///< sets_ * ways_, row-major by set
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Per-core L1D caches in front of one shared L2; returns access latency
/// per the Table 1 parameters.
class MemoryHierarchy {
 public:
  MemoryHierarchy(const machine::SpmtConfig& cfg, int ncore);

  /// Latency of a load/store issued by `core` to `addr`. Stores are
  /// buffered by the speculation write buffer, so their latency is the L1
  /// probe only; the drain to L2 is covered by the commit overhead.
  int access_latency(int core, std::uint64_t addr, bool is_store);

  /// Gang-invalidation of a squashed thread's speculative L1 state. The
  /// paper clears only the speculative bits; we approximate by leaving tag
  /// state in place (refetches hit) — the 15-cycle C_inv already accounts
  /// for the clearing cost.
  void on_squash(int core);

  std::uint64_t l1_hits(int core) const { return l1_[static_cast<std::size_t>(core)].hits(); }
  std::uint64_t l1_misses(int core) const { return l1_[static_cast<std::size_t>(core)].misses(); }
  std::uint64_t l2_hits() const { return l2_.hits(); }
  std::uint64_t l2_misses() const { return l2_.misses(); }

 private:
  const machine::SpmtConfig& cfg_;
  std::vector<SetAssocCache> l1_;
  SetAssocCache l2_;
};

}  // namespace tms::spmt
