#include "spmt/estimate.hpp"

#include <algorithm>

#include "obs/counters.hpp"
#include "spmt/address.hpp"
#include "spmt/reference.hpp"
#include "support/assert.hpp"

namespace tms::spmt {

QuickEstimate quick_estimate(const ir::Loop& loop, const codegen::KernelProgram& kp,
                             const machine::SpmtConfig& cfg, const QuickEstimateOptions& opts) {
  QuickEstimate qe;
  qe.iterations = opts.iterations > 0
                      ? opts.iterations
                      : std::min<std::int64_t>(
                            256, std::max<std::int64_t>(32, 8 * static_cast<std::int64_t>(cfg.ncore)));

  const AddressStreams streams = default_streams(loop, opts.stream_seed);
  SpmtOptions sim;
  sim.iterations = qe.iterations;
  sim.keep_memory = opts.check_semantics;
  sim.engine = SimEngine::kEventDriven;
  const SpmtResult res = run_spmt(loop, kp, cfg, streams, sim);
  qe.stats = res.stats;
  qe.cycles_per_iteration =
      static_cast<double>(res.stats.total_cycles) / static_cast<double>(qe.iterations);
  qe.misspec_frequency = res.stats.misspec_frequency();

  if (opts.check_semantics) {
    const ReferenceResult ref = run_reference(loop, streams, qe.iterations);
    qe.semantics_ok =
        res.value_fingerprint == ref.value_fingerprint && res.memory == ref.memory;
  }
  obs::counters().sim_quick_estimates.add(1);
  return qe;
}

}  // namespace tms::spmt
