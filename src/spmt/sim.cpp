#include "spmt/sim.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "ir/graph.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "policy/policy.hpp"
#include "spmt/cache.hpp"
#include "spmt/values.hpp"
#include "support/assert.hpp"

namespace tms::spmt {
namespace {

/// One recorded store, for forwarding and violation detection. `key` is
/// the program-order position (src_iter * n + topo_rank).
struct StoreRec {
  std::int64_t key = 0;
  std::int64_t time = 0;
  std::uint64_t value = 0;
  std::int64_t thread = 0;
};

struct WalkResult {
  std::int64_t completion = 0;
  std::int64_t sync_stall = 0;
  std::int64_t mem_stall = 0;
  std::int64_t send_block = 0;
  std::int64_t bus_transfers = 0;  ///< not attempt-gated: final walk only is committed
  std::int64_t instances = 0;
  bool violated = false;
  std::int64_t detect_time = 0;  ///< completion of the oldest violating thread
};

constexpr std::int64_t kNoDetect = std::numeric_limits<std::int64_t>::max();

class Engine {
 public:
  Engine(const ir::Loop& loop, const codegen::KernelProgram& kp, const machine::SpmtConfig& cfg,
         const AddressStreams& streams, const SpmtOptions& opts)
      : loop_(loop), kp_(kp), cfg_(cfg), streams_(streams), opts_(opts), hier_(cfg, cfg.ncore),
        pol_(policy::make_policy(cfg, loop)) {
    // Program-order rank within an iteration (reference interpreter order).
    const std::vector<ir::NodeId> topo = ir::topo_order_intra(loop);
    rank_.assign(static_cast<std::size_t>(loop.num_instrs()), 0);
    for (std::size_t r = 0; r < topo.size(); ++r) {
      rank_[static_cast<std::size_t>(topo[r])] = static_cast<std::int64_t>(r);
    }
    topo_ = topo;

    int max_dker = 1;
    for (const auto& in : kp.inputs) max_dker = std::max(max_dker, in.d_ker);
    for (const auto& in : kp.mem_inputs) max_dker = std::max(max_dker, in.d_ker);
    for (const auto& ops : kp.reg_operands) {
      for (const auto& o : ops) max_dker = std::max(max_dker, o.d_ker);
    }
    ring_ = static_cast<std::size_t>(std::max(max_dker, cfg.ring_queue_entries) + 2);
    values_.assign(static_cast<std::size_t>(loop.num_instrs()),
                   std::vector<std::uint64_t>(ring_, 0));
    completion_wall_.assign(static_cast<std::size_t>(loop.num_instrs()),
                            std::vector<std::int64_t>(ring_, 0));
    consume_wall_.assign(static_cast<std::size_t>(loop.num_instrs()),
                         std::vector<std::int64_t>(ring_, 0));

    // Channel producers and the first-hop kernel distance of each (the
    // ring-queue entry is freed when the adjacent core consumes).
    first_hop_.assign(static_cast<std::size_t>(loop.num_instrs()), 0);
    for (const auto& in : kp.inputs) {
      int& hop = first_hop_[static_cast<std::size_t>(in.producer)];
      hop = (hop == 0) ? in.d_ker : std::min(hop, in.d_ker);
    }

    // Per-consumer-node index of cross-thread register inputs.
    reg_inputs_of_.assign(static_cast<std::size_t>(loop.num_instrs()), {});
    for (std::size_t i = 0; i < kp.inputs.size(); ++i) {
      reg_inputs_of_[static_cast<std::size_t>(kp.inputs[i].consumer)].push_back(i);
    }
    mem_inputs_of_.assign(static_cast<std::size_t>(loop.num_instrs()), {});
    for (std::size_t i = 0; i < kp.mem_inputs.size(); ++i) {
      mem_inputs_of_[static_cast<std::size_t>(kp.mem_inputs[i].consumer)].push_back(i);
    }
    stage_.assign(static_cast<std::size_t>(loop.num_instrs()), 0);
    for (const codegen::KernelOp& op : kp.ops) {
      stage_[static_cast<std::size_t>(op.node)] = op.stage;
    }
  }

  SpmtResult run() {
    const std::int64_t n = opts_.iterations;
    const std::int64_t num_threads = n + kp_.stage_count - 1;
    completion_of_thread_.assign(static_cast<std::size_t>(num_threads), 0);

    // Live-in broadcast: the loop's live-in registers are copied to every
    // participating core once, hop by hop around the ring.
    const std::int64_t startup = cfg_.c_reg_com + (cfg_.ncore - 1) * cfg_.hop_cycles;
    std::vector<std::int64_t> free_at(static_cast<std::size_t>(cfg_.ncore), startup);
    std::int64_t prev_start = startup - cfg_.c_spn;  // so thread 0 starts at `startup`
    std::int64_t commit_end_prev = startup;

    if (opts_.keep_memory) {
      committed_values_.assign(
          static_cast<std::size_t>(n) * static_cast<std::size_t>(loop_.num_instrs()), 0);
    }

    SpmtResult res;
    for (std::int64_t k = 0; k < num_threads; ++k) {
      const int core = pol_->core_of(k);
      std::int64_t start =
          std::max(prev_start + cfg_.c_spn, free_at[static_cast<std::size_t>(core)]);
      if (kp_.stores_per_iter > cfg_.spec_write_buffer_entries) {
        // The speculation write buffer cannot hold the thread's stores:
        // the thread must run non-speculatively (as head).
        start = std::max(start, commit_end_prev);
        ++res.stats.wb_overflow_waits;
      }

      WalkResult wr;
      int attempt = 0;
      for (;;) {
        local_stores_.clear();
        wr = walk_thread(k, start, attempt);
        if (!wr.violated) break;
        ++res.stats.misspeculations;
        // The squashed execution plus the gang-invalidation are wasted.
        res.stats.squashed_cycles += (wr.completion - start) + cfg_.c_inv;
        ++attempt;
        if (attempt > opts_.max_reexecutions) {
          // Degenerate aliasing: run as head thread; no older store can
          // then be outstanding.
          start = std::max(start, commit_end_prev);
        } else {
          start = std::max(start, wr.detect_time + cfg_.c_inv);
        }
      }

      // Commit: sequential, one thread at a time, C_ci each (the drain
      // into L2 overlaps with the next thread thanks to double buffering).
      const std::int64_t commit_end = std::max(wr.completion, commit_end_prev) + cfg_.c_ci;
      completion_of_thread_[static_cast<std::size_t>(k)] = wr.completion;
      free_at[static_cast<std::size_t>(core)] = commit_end;
      commit_end_prev = commit_end;
      prev_start = start;

      // Merge the thread's (now committed) stores into the global image.
      for (const auto& [addr, rec] : local_stores_) {
        store_hist_[addr].push_back(rec);
      }

      ++res.stats.threads_committed;
      res.stats.instances_executed += wr.instances;
      res.stats.sync_stall_cycles += wr.sync_stall;
      res.stats.mem_stall_cycles += wr.mem_stall;
      res.stats.send_block_cycles += wr.send_block;
      res.stats.bus_transfers += wr.bus_transfers;
      if (k >= kp_.stage_count - 1 && k < n) {
        res.stats.send_recv_pairs += kp_.comm_pairs_per_iter;
      }
      res.stats.total_cycles = commit_end;
      if (opts_.collect_trace) {
        ThreadTrace tt;
        tt.thread = k;
        tt.core = core;
        tt.start = start;
        tt.completion = wr.completion;
        tt.commit_end = commit_end;
        tt.attempts = attempt + 1;
        tt.sync_stall = wr.sync_stall;
        tt.mem_stall = wr.mem_stall;
        res.trace.push_back(tt);
      }
    }

    res.stats.bus_cycles = res.stats.bus_transfers * cfg_.bus_transfer_cycles();
    res.stats.l2_hits = hier_.l2_hits();
    res.stats.l2_misses = hier_.l2_misses();
    for (int c = 0; c < cfg_.ncore; ++c) {
      res.stats.l1_hits += hier_.l1_hits(c);
      res.stats.l1_misses += hier_.l1_misses(c);
    }

    if (opts_.keep_memory) {
      for (const auto& [addr, hist] : store_hist_) {
        const StoreRec* best = nullptr;
        for (const StoreRec& r : hist) {
          if (best == nullptr || r.key > best->key) best = &r;
        }
        if (best != nullptr) res.memory[addr] = best->value;
      }
      // Fingerprint in reference order: (iteration, topo rank).
      for (std::int64_t i = 0; i < n; ++i) {
        for (const ir::NodeId v : topo_) {
          res.value_fingerprint =
              mix(res.value_fingerprint,
                  committed_values_[static_cast<std::size_t>(i) *
                                        static_cast<std::size_t>(loop_.num_instrs()) +
                                    static_cast<std::size_t>(v)]);
        }
      }
    }
    return res;
  }

 private:
  std::int64_t prog_key(std::int64_t src_iter, ir::NodeId v) const {
    return src_iter * loop_.num_instrs() + rank_[static_cast<std::size_t>(v)];
  }

  WalkResult walk_thread(std::int64_t k, std::int64_t start, int attempt) {
    WalkResult wr;
    const int core = pol_->core_of(k);
    std::int64_t shift = 0;
    std::int64_t completion = start;
    const std::int64_t n = opts_.iterations;

    for (const codegen::KernelOp& op : kp_.ops) {
      const std::int64_t src_iter = k - op.stage;
      if (src_iter < 0 || src_iter >= n) continue;  // prologue/epilogue guard
      ++wr.instances;
      std::int64_t t = start + op.row + shift;

      // Cross-thread register inputs: wait for the ring delivery.
      for (const std::size_t ii : reg_inputs_of_[static_cast<std::size_t>(op.node)]) {
        const codegen::CrossThreadInput& in = kp_.inputs[ii];
        const std::int64_t pk = k - in.d_ker;
        if (pk < 0) continue;  // producer instance predates the loop: live-in
        const std::int64_t src_of_producer = pk - stage_of(in.producer);
        if (src_of_producer < 0 || src_of_producer >= n) continue;
        const policy::CommCost cost = pol_->comm_cost(in.d_ker, k);
        wr.bus_transfers += cost.transfers;
        const std::int64_t avail =
            completion_wall_[static_cast<std::size_t>(in.producer)]
                            [static_cast<std::size_t>(pk % static_cast<std::int64_t>(ring_))] +
            cost.delay;
        if (avail > t) {
          const std::int64_t stall = avail - t;
          shift += stall;
          t = avail;
          if (attempt == 0) wr.sync_stall += stall;
        }
        // First-hop RECV frees the producer's ring-queue entry.
        if (in.d_ker == first_hop_[static_cast<std::size_t>(in.producer)]) {
          consume_wall_[static_cast<std::size_t>(in.producer)]
                       [static_cast<std::size_t>(pk % static_cast<std::int64_t>(ring_))] = t;
        }
      }

      // Ring-queue backpressure (Voltron queue model): a producer's SEND
      // blocks until the receiver has drained the value sent Q instances
      // ago. Only meaningful when the first hop has already been
      // simulated (chained hops with deeper kernel distances are freed
      // by their copy stages).
      if (first_hop_[static_cast<std::size_t>(op.node)] > 0 &&
          first_hop_[static_cast<std::size_t>(op.node)] < cfg_.ring_queue_entries) {
        const std::int64_t freed_k = k - cfg_.ring_queue_entries;
        if (freed_k >= 0) {
          const std::int64_t freed =
              consume_wall_[static_cast<std::size_t>(op.node)]
                           [static_cast<std::size_t>(freed_k % static_cast<std::int64_t>(ring_))];
          const std::int64_t send_at = t + op.latency;
          if (send_at < freed) {
            const std::int64_t stall = freed - send_at;
            shift += stall;
            t += stall;
            if (attempt == 0) wr.send_block += stall;
          }
        }
      }

      // Synchronised memory dependences (speculation disabled).
      if (opts_.disable_speculation && op.is_load) {
        for (const std::size_t mi : mem_inputs_of_[static_cast<std::size_t>(op.node)]) {
          const codegen::CrossThreadInput& in = kp_.mem_inputs[mi];
          const std::int64_t pk = k - in.d_ker;
          if (pk < 0) continue;
          const std::int64_t src_of_producer = pk - stage_of(in.producer);
          if (src_of_producer < 0 || src_of_producer >= n) continue;
          const policy::CommCost cost = pol_->comm_cost(in.d_ker, k);
          wr.bus_transfers += cost.transfers;
          const std::int64_t avail =
              completion_wall_[static_cast<std::size_t>(in.producer)]
                              [static_cast<std::size_t>(pk % static_cast<std::int64_t>(ring_))] +
              cost.delay;
          if (avail > t) {
            const std::int64_t stall = avail - t;
            shift += stall;
            t = avail;
            if (attempt == 0) spec_wait_cycles_ += stall;
          }
        }
      }

      // Operand values, folded exactly like the reference interpreter.
      std::uint64_t acc = node_seed(op.node, loop_.instr(op.node).op);
      for (const codegen::OperandRef& o : kp_.reg_operands[static_cast<std::size_t>(op.node)]) {
        const std::int64_t si = src_iter - o.distance;
        std::uint64_t operand;
        if (si < 0) {
          operand = live_in_value(o.src);
        } else {
          const std::int64_t pk = k - o.d_ker;
          operand = values_[static_cast<std::size_t>(o.src)]
                           [static_cast<std::size_t>(pk % static_cast<std::int64_t>(ring_))];
        }
        acc = mix(acc, operand);
      }

      if (op.is_load) {
        const std::uint64_t addr = streams_.address(op.node, src_iter);
        const int lat = hier_.access_latency(core, addr, /*is_store=*/false);
        const int extra = lat - cfg_.l1d_hit;
        if (extra > 0) {
          shift += extra;
          wr.mem_stall += extra;
        }
        const std::int64_t load_key = prog_key(src_iter, op.node);
        acc = mix(acc, read_memory(addr, load_key, t, k, wr));
      } else if (op.is_store) {
        const std::uint64_t addr = streams_.address(op.node, src_iter);
        hier_.access_latency(core, addr, /*is_store=*/true);
        const std::int64_t store_key = prog_key(src_iter, op.node);
        // The store's value is forwardable from the speculation write
        // buffer as soon as it issues (same-cycle forwarding), which is
        // what makes zero-delay speculated dependences sound for
        // same-thread consumers.
        StoreRec rec{store_key, t, acc, k};
        auto [it, inserted] = local_stores_.try_emplace(addr, rec);
        if (!inserted && rec.key > it->second.key) it->second = rec;
      }

      values_[static_cast<std::size_t>(op.node)]
             [static_cast<std::size_t>(k % static_cast<std::int64_t>(ring_))] = acc;
      completion_wall_[static_cast<std::size_t>(op.node)]
                      [static_cast<std::size_t>(k % static_cast<std::int64_t>(ring_))] =
          t + op.latency;
      if (opts_.keep_memory) {
        committed_values_[static_cast<std::size_t>(src_iter) *
                              static_cast<std::size_t>(loop_.num_instrs()) +
                          static_cast<std::size_t>(op.node)] = acc;
      }
      completion = std::max(completion, t + op.latency);
    }
    wr.completion = completion;
    return wr;
  }

  /// Load semantics: the program-order-latest store to `addr` whose value
  /// was produced before `t` (forwarding from older threads' buffers or
  /// the local buffer), else the initial memory value. Flags a violation
  /// if a program-order-earlier store exists that had not yet executed.
  std::uint64_t read_memory(std::uint64_t addr, std::int64_t load_key, std::int64_t t,
                            std::int64_t thread, WalkResult& wr) {
    const StoreRec* best = nullptr;
    const auto it = store_hist_.find(addr);
    if (it != store_hist_.end()) {
      for (const StoreRec& r : it->second) {
        if (r.key >= load_key) continue;  // program-order after the load
        if (r.time > t) {
          // The load would miss this store: misspeculation. Detected when
          // the offending (older) thread completes.
          if (!wr.violated) {
            wr.violated = true;
            wr.detect_time = kNoDetect;
          }
          wr.detect_time = std::min(
              wr.detect_time, completion_of_thread_[static_cast<std::size_t>(r.thread)]);
          continue;
        }
        if (best == nullptr || r.key > best->key) best = &r;
      }
    }
    const auto lit = local_stores_.find(addr);
    if (lit != local_stores_.end() && lit->second.key < load_key) {
      if (best == nullptr || lit->second.key > best->key) best = &lit->second;
    }
    (void)thread;
    return best != nullptr ? best->value : memory_init_value(addr);
  }

  int stage_of(ir::NodeId v) const { return stage_[static_cast<std::size_t>(v)]; }

  const ir::Loop& loop_;
  const codegen::KernelProgram& kp_;
  const machine::SpmtConfig& cfg_;
  const AddressStreams& streams_;
  const SpmtOptions& opts_;
  MemoryHierarchy hier_;
  std::unique_ptr<policy::CorePolicy> pol_;

  std::vector<std::int64_t> rank_;
  std::vector<int> stage_;
  std::vector<ir::NodeId> topo_;
  std::size_t ring_ = 0;
  std::vector<std::vector<std::uint64_t>> values_;
  std::vector<std::vector<std::int64_t>> completion_wall_;
  std::vector<std::vector<std::int64_t>> consume_wall_;
  std::vector<int> first_hop_;
  std::vector<std::vector<std::size_t>> reg_inputs_of_;
  std::vector<std::vector<std::size_t>> mem_inputs_of_;
  std::vector<std::int64_t> completion_of_thread_;
  std::unordered_map<std::uint64_t, std::vector<StoreRec>> store_hist_;
  std::unordered_map<std::uint64_t, StoreRec> local_stores_;
  std::vector<std::uint64_t> committed_values_;
  std::int64_t spec_wait_cycles_ = 0;

 public:
  std::int64_t spec_wait_cycles() const { return spec_wait_cycles_; }
};

}  // namespace

std::string trace_to_csv(const std::vector<ThreadTrace>& trace) {
  std::string out = "thread,core,start,completion,commit_end,attempts,sync_stall,mem_stall\n";
  for (const ThreadTrace& t : trace) {
    out += std::to_string(t.thread) + "," + std::to_string(t.core) + "," +
           std::to_string(t.start) + "," + std::to_string(t.completion) + "," +
           std::to_string(t.commit_end) + "," + std::to_string(t.attempts) + "," +
           std::to_string(t.sync_stall) + "," + std::to_string(t.mem_stall) + "\n";
  }
  return out;
}

std::string trace_to_ascii(const std::vector<ThreadTrace>& trace, int max_threads) {
  if (trace.empty()) return "(empty trace)\n";
  const int n = std::min<int>(max_threads, static_cast<int>(trace.size()));
  const std::int64_t t0 = trace.front().start;
  std::int64_t t1 = t0 + 1;
  for (int i = 0; i < n; ++i) t1 = std::max(t1, trace[static_cast<std::size_t>(i)].commit_end);
  // Scale to at most 96 columns.
  const std::int64_t span = t1 - t0;
  const std::int64_t scale = std::max<std::int64_t>(1, (span + 95) / 96);

  std::string out = "measured execution ('=' run, 'c' commit, '*' squashed; 1 column = " +
                    std::to_string(scale) + " cycle(s))\n";
  for (int i = 0; i < n; ++i) {
    const ThreadTrace& t = trace[static_cast<std::size_t>(i)];
    std::string line(static_cast<std::size_t>((t1 - t0) / scale) + 2, ' ');
    const auto col = [&](std::int64_t c) {
      return static_cast<std::size_t>((c - t0) / scale);
    };
    for (std::int64_t c = t.start; c < t.completion; c += scale) line[col(c)] = '=';
    for (std::int64_t c = std::max(t.completion, t.start); c < t.commit_end; c += scale) {
      line[col(c)] = 'c';
    }
    out += "  core " + std::to_string(t.core) + " thr " + std::to_string(t.thread) +
           (t.attempts > 1 ? "*" : " ") + " |" + line + "|\n";
  }
  return out;
}

SpmtResult run_spmt_legacy(const ir::Loop& loop, const codegen::KernelProgram& kp,
                           const machine::SpmtConfig& cfg, const AddressStreams& streams,
                           const SpmtOptions& opts) {
  cfg.check();
  TMS_ASSERT(opts.iterations >= 1);
  Engine engine(loop, kp, cfg, streams, opts);
  SpmtResult res = engine.run();
  res.stats.spec_wait_cycles = engine.spec_wait_cycles();
  return res;
}

SpmtResult run_spmt(const ir::Loop& loop, const codegen::KernelProgram& kp,
                    const machine::SpmtConfig& cfg, const AddressStreams& streams,
                    const SpmtOptions& opts) {
  cfg.check();
  TMS_ASSERT(opts.iterations >= 1);
  TMS_TRACE_SPAN(span, "spmt", "spmt.run");
  SpmtResult res = opts.engine == SimEngine::kLegacyStepper
                       ? run_spmt_legacy(loop, kp, cfg, streams, opts)
                       : run_spmt_event(loop, kp, cfg, streams, opts);
  {
    obs::Counters& c = obs::counters();
    c.sim_runs.add(1);
    c.sim_squashes.add(static_cast<std::uint64_t>(std::max<std::int64_t>(0, res.stats.misspeculations)));
    c.sim_sync_stall_cycles.add(
        static_cast<std::uint64_t>(std::max<std::int64_t>(0, res.stats.sync_stall_cycles)));
    c.sim_mem_stall_cycles.add(
        static_cast<std::uint64_t>(std::max<std::int64_t>(0, res.stats.mem_stall_cycles)));
    c.sim_squashed_cycles.add(
        static_cast<std::uint64_t>(std::max<std::int64_t>(0, res.stats.squashed_cycles)));
    c.sim_send_recv_pairs.add(
        static_cast<std::uint64_t>(std::max<std::int64_t>(0, res.stats.send_recv_pairs)));
    c.sim_bus_transfers.add(
        static_cast<std::uint64_t>(std::max<std::int64_t>(0, res.stats.bus_transfers)));
    c.sim_bus_cycles.add(
        static_cast<std::uint64_t>(std::max<std::int64_t>(0, res.stats.bus_cycles)));
  }
  TMS_TRACE_SPAN_ARG(span, obs::targ("iterations", opts.iterations),
                     obs::targ("cycles", res.stats.total_cycles),
                     obs::targ("squashes", res.stats.misspeculations));
  return res;
}

}  // namespace tms::spmt
