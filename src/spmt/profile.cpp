#include "spmt/profile.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace tms::spmt {

std::vector<EdgeProfile> profile_dependences(const ir::Loop& loop, const AddressStreams& streams,
                                             std::int64_t n_iters) {
  TMS_ASSERT(n_iters >= 1);
  std::vector<EdgeProfile> out;
  for (std::size_t ei = 0; ei < loop.deps().size(); ++ei) {
    const ir::DepEdge& e = loop.dep(ei);
    if (!e.is_memory_flow()) continue;
    EdgeProfile p;
    p.edge = ei;
    for (std::int64_t i = e.distance; i < n_iters; ++i) {
      ++p.producer_executions;
      if (streams.address(e.dst, i) == streams.address(e.src, i - e.distance)) {
        ++p.collisions;
      }
    }
    out.push_back(p);
  }
  return out;
}

ir::Loop apply_profile(const ir::Loop& loop, const std::vector<EdgeProfile>& profile,
                       double min_probability) {
  TMS_ASSERT(min_probability > 0.0 && min_probability <= 1.0);
  // Measured frequency per edge index; absent entries keep their
  // annotation.
  std::vector<double> freq(loop.deps().size(), -1.0);
  for (const EdgeProfile& p : profile) freq.at(p.edge) = p.frequency();

  ir::Loop out(loop.name());
  for (const ir::Instr& ins : loop.instrs()) out.add_instr(ins.op, ins.name);
  for (std::size_t ei = 0; ei < loop.deps().size(); ++ei) {
    const ir::DepEdge& e = loop.dep(ei);
    double probability = e.probability;
    if (freq[ei] >= 0.0) {
      if (freq[ei] == 0.0) continue;  // proven independent: prune
      probability = std::max(freq[ei], min_probability);
    }
    out.add_dep(e.src, e.dst, e.kind, e.type, e.distance, probability);
  }
  for (const ir::NodeId v : loop.live_ins()) out.mark_live_in(v);
  out.set_coverage(loop.coverage());
  TMS_ASSERT(!out.validate().has_value());
  return out;
}

}  // namespace tms::spmt
