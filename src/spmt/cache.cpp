#include "spmt/cache.hpp"

namespace tms::spmt {
namespace {

int log2_exact(int x) {
  int s = 0;
  while ((1 << s) < x) ++s;
  TMS_ASSERT_MSG((1 << s) == x, "cache geometry must be a power of two");
  return s;
}

}  // namespace

SetAssocCache::SetAssocCache(int sets, int ways, int line_bytes)
    : sets_(sets),
      ways_(ways),
      line_shift_(log2_exact(line_bytes)),
      lines_(static_cast<std::size_t>(sets) * static_cast<std::size_t>(ways)) {
  TMS_ASSERT(sets >= 1 && ways >= 1);
  (void)log2_exact(sets);  // geometry check
}

std::uint64_t SetAssocCache::set_index(std::uint64_t addr) const {
  return (addr >> line_shift_) & static_cast<std::uint64_t>(sets_ - 1);
}

std::uint64_t SetAssocCache::tag_of(std::uint64_t addr) const {
  return addr >> line_shift_;  // full line address as tag (index bits redundant but harmless)
}

bool SetAssocCache::access(std::uint64_t addr) {
  const std::uint64_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  Line* base = &lines_[static_cast<std::size_t>(set) * static_cast<std::size_t>(ways_)];
  ++tick_;
  for (int w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].lru = tick_;
      ++hits_;
      return true;
    }
  }
  ++misses_;
  // Fill: prefer an invalid way, else evict LRU.
  Line* victim = base;
  for (int w = 0; w < ways_; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  return false;
}

bool SetAssocCache::contains(std::uint64_t addr) const {
  const std::uint64_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  const Line* base = &lines_[static_cast<std::size_t>(set) * static_cast<std::size_t>(ways_)];
  for (int w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void SetAssocCache::invalidate_all() {
  for (Line& l : lines_) l.valid = false;
}

MemoryHierarchy::MemoryHierarchy(const machine::SpmtConfig& cfg, int ncore)
    : cfg_(cfg), l2_(cfg.l2_sets, cfg.l2_ways, cfg.line_bytes) {
  l1_.reserve(static_cast<std::size_t>(ncore));
  for (int c = 0; c < ncore; ++c) {
    l1_.emplace_back(cfg.l1d_sets, cfg.l1d_ways, cfg.line_bytes);
  }
}

int MemoryHierarchy::access_latency(int core, std::uint64_t addr, bool is_store) {
  SetAssocCache& l1 = l1_[static_cast<std::size_t>(core)];
  if (is_store) {
    // Stores retire into the speculation write buffer; we still update L1
    // tag state (write-allocate) but charge only the L1 probe.
    l1.access(addr);
    return 1;
  }
  if (l1.access(addr)) return cfg_.l1d_hit;
  if (l2_.access(addr)) return cfg_.l1d_hit + cfg_.l2_hit;
  return cfg_.l1d_hit + cfg_.l2_miss;
}

void MemoryHierarchy::on_squash(int core) {
  (void)core;  // see header: C_inv covers the gang-clear cost
}

}  // namespace tms::spmt
