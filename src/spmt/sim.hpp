// The SpMT multicore simulator (Section 3's execution model).
//
// Thread k executes kernel iteration k of a modulo-scheduled loop on the
// core chosen by the configured allocation policy (SpmtConfig::policy,
// resolved through policy::make_policy — the paper's default maps k to
// core k mod ncore): for each node v, the instance of source iteration
// k - stage(v) (skipped in prologue/epilogue threads). Threads are
// spawned sequentially (C_spn apart), commit sequentially (C_ci each,
// double-buffered write buffer), and synchronise register dependences at
// the policy's comm_cost — ring SEND/RECV legs plus the shared-bus
// contention charge when the bus term is on. Inter-thread memory dependences
// are speculated: a load that executed before the program-order-earlier
// store it aliases with triggers a violation; the thread is squashed when
// the older thread completes (paying C_inv) and re-executed on its core.
//
// The timing model is in-order issue of the static kernel schedule with a
// cumulative stall shift: RECV waits, L1-miss latency beyond the
// scheduler's assumed hit latency, and re-execution restarts all push the
// remainder of the thread later. This reproduces exactly the overheads of
// the paper's cost model while staying deterministic and fast.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "codegen/kernel_program.hpp"
#include "machine/spmt_config.hpp"
#include "spmt/address.hpp"

namespace tms::spmt {

/// Which simulator core executes the run (docs/SIMULATOR.md). Both
/// engines implement the same execution model and produce bit-identical
/// SpmtStats, memory images, fingerprints and traces — enforced by the
/// differential suite in tests/event_sim_test.cpp. The event-driven core
/// is the default; the legacy thread walker is retained as the
/// differential reference, mirroring the bitmap-vs-scalar MRT pattern.
enum class SimEngine {
  /// Per-core ready queues feeding a global event heap that advances the
  /// shared simulated clock (spawn, core-wake and squash-retry events);
  /// idle gaps are skipped by jumping the clock, per-thread walks touch
  /// only "eventful" kernel ops, and per-address store timelines are
  /// key-sorted with a prefix-max-time index so load forwarding and
  /// violation checks are O(log stores) instead of O(stores).
  kEventDriven,
  /// The original sequential thread walker: every kernel op of every
  /// thread is visited and per-address store history is scanned
  /// linearly per load.
  kLegacyStepper,
};

struct SpmtOptions {
  std::int64_t iterations = 2000;  ///< source iterations N (N >> ncore assumed)
  /// Collect the final committed memory image (for semantics tests);
  /// disable for large benchmark sweeps to save allocation churn.
  bool keep_memory = true;
  /// Record a per-thread execution trace (start/completion/commit,
  /// stalls, squash attempts) in SpmtResult::trace.
  bool collect_trace = false;
  /// Force every inter-thread memory dependence to be correct-by-timing by
  /// never speculating: loads wait until they are in the head thread
  /// whenever their address stream *could* alias (the Section 5.2
  /// "without speculation" ablation).
  bool disable_speculation = false;
  int max_reexecutions = 8;  ///< before falling back to head-only execution
  SimEngine engine = SimEngine::kEventDriven;
};

struct SpmtStats {
  std::int64_t threads_committed = 0;
  std::int64_t instances_executed = 0;
  std::int64_t total_cycles = 0;
  std::int64_t sync_stall_cycles = 0;   ///< committed threads stalled at RECV
  std::int64_t mem_stall_cycles = 0;    ///< load latency beyond the scheduled hit
  std::int64_t send_recv_pairs = 0;     ///< dynamic pairs in committed threads
  std::int64_t misspeculations = 0;     ///< squash events
  std::int64_t squashed_cycles = 0;     ///< wasted execution + invalidation
  std::int64_t wb_overflow_waits = 0;
  std::int64_t spec_wait_cycles = 0;    ///< disable_speculation serialisation
  std::int64_t send_block_cycles = 0;   ///< ring-queue backpressure on SENDs
  /// Cross-core register transfers charged to the shared bus by committed
  /// threads (counted even with the bus term off — it is a pure dataflow
  /// volume; same-core forwards under locality-style policies are free).
  std::int64_t bus_transfers = 0;
  /// Contention cycles those transfers added to forwarding delays:
  /// bus_transfers * SpmtConfig::bus_transfer_cycles(). 0 with the bus off.
  std::int64_t bus_cycles = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;

  double misspec_frequency() const {
    return threads_committed > 0
               ? static_cast<double>(misspeculations) / static_cast<double>(threads_committed)
               : 0.0;
  }
  /// SEND/RECV execution cycles (Section 5.2's definition, priced at the
  /// contention-free c_reg_com; bus contention is reported separately in
  /// bus_cycles so the paper's metric stays comparable).
  std::int64_t comm_cycles(const machine::SpmtConfig& cfg) const {
    return send_recv_pairs * cfg.c_reg_com;
  }
  /// Communication overhead as defined in Section 5.2: RECV stalls plus
  /// SEND/RECV execution cycles.
  std::int64_t communication_overhead(const machine::SpmtConfig& cfg) const {
    return sync_stall_cycles + comm_cycles(cfg);
  }
};

/// One committed thread's measured timeline (collect_trace).
struct ThreadTrace {
  std::int64_t thread = 0;
  int core = 0;
  std::int64_t start = 0;       ///< final (committed) attempt's start
  std::int64_t completion = 0;
  std::int64_t commit_end = 0;
  int attempts = 1;             ///< 1 = never squashed
  std::int64_t sync_stall = 0;  ///< RECV stall cycles of the final attempt
  std::int64_t mem_stall = 0;
};

struct SpmtResult {
  SpmtStats stats;
  /// Committed memory image (program-order-final store per address);
  /// empty when keep_memory is false.
  std::unordered_map<std::uint64_t, std::uint64_t> memory;
  std::uint64_t value_fingerprint = 0;  ///< over committed instances, program order
  std::vector<ThreadTrace> trace;       ///< per thread, when collect_trace
};

/// CSV export of a trace (header + one row per thread).
std::string trace_to_csv(const std::vector<ThreadTrace>& trace);

/// ASCII Gantt rendering of the first `max_threads` threads of a
/// measured trace — the empirical counterpart of viz::render_execution.
std::string trace_to_ascii(const std::vector<ThreadTrace>& trace, int max_threads = 12);

/// Runs the kernel program for `opts.iterations` source iterations of the
/// loop it was lowered from, dispatching on `opts.engine`.
SpmtResult run_spmt(const ir::Loop& loop, const codegen::KernelProgram& kp,
                    const machine::SpmtConfig& cfg, const AddressStreams& streams,
                    const SpmtOptions& opts = {});

/// Engine entry points, exposed so the differential suite can name an
/// engine explicitly regardless of `opts.engine`. Both return the same
/// result for the same inputs; `run_spmt` adds the obs counter flush on
/// top and is what everything outside tests should call.
SpmtResult run_spmt_legacy(const ir::Loop& loop, const codegen::KernelProgram& kp,
                           const machine::SpmtConfig& cfg, const AddressStreams& streams,
                           const SpmtOptions& opts = {});
SpmtResult run_spmt_event(const ir::Loop& loop, const codegen::KernelProgram& kp,
                          const machine::SpmtConfig& cfg, const AddressStreams& streams,
                          const SpmtOptions& opts = {});

}  // namespace tms::spmt
