// Sequential reference interpreter: the semantic ground truth a parallel
// (speculative) execution must reproduce.
//
// Iterations run in source order; within an iteration, instructions run in
// a topological order of the intra-iteration DDG (any such order yields
// identical dataflow values because all real orderings are edges).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "ir/loop.hpp"
#include "spmt/address.hpp"

namespace tms::spmt {

struct ReferenceResult {
  /// Final memory contents: only addresses that were written appear.
  std::unordered_map<std::uint64_t, std::uint64_t> memory;
  /// Hash of every committed value in sequence — a cheap whole-execution
  /// fingerprint used by determinism tests.
  std::uint64_t value_fingerprint = 0;
};

/// Executes `n_iters` iterations of the loop sequentially.
ReferenceResult run_reference(const ir::Loop& loop, const AddressStreams& streams,
                              std::int64_t n_iters);

}  // namespace tms::spmt
