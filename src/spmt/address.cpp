#include "spmt/address.hpp"

namespace tms::spmt {

std::uint64_t stream_hash(std::uint64_t seed, std::int64_t iteration) {
  std::uint64_t z = seed ^ (static_cast<std::uint64_t>(iteration) + 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

AddressStreams::Fn AddressStreams::strided(std::uint64_t base, std::uint64_t stride,
                                           std::uint64_t span) {
  TMS_ASSERT(span > 0);
  return [base, stride, span](std::int64_t i) {
    const std::uint64_t off = (stride * static_cast<std::uint64_t>(i)) % span;
    return base + off;
  };
}

AddressStreams::Fn AddressStreams::dependent(Fn producer, int distance, double probability,
                                             std::uint64_t hash_seed, Fn private_stream) {
  TMS_ASSERT(distance >= 0);
  TMS_ASSERT(probability > 0.0 && probability <= 1.0);
  const auto threshold =
      static_cast<std::uint64_t>(probability * 9007199254740992.0);  // p * 2^53
  return [producer = std::move(producer), distance, threshold, hash_seed,
          private_stream = std::move(private_stream)](std::int64_t i) {
    const bool collide = (stream_hash(hash_seed, i) >> 11) < threshold;
    if (collide && i >= distance) return producer(i - distance);
    return private_stream(i);
  };
}

AddressStreams default_streams(const ir::Loop& loop, std::uint64_t seed) {
  AddressStreams streams(loop.num_instrs());
  // Give each memory instruction its own 8-byte-stride region, spaced far
  // apart so independent streams never alias. The per-stream working set
  // is kept small (512 B): the paper simulates MinneSPEC-reduced inputs
  // whose hot inner arrays are largely cache-resident, and round-robin
  // iteration distribution already dilutes spatial locality across the
  // private L1s. Region bases are staggered across cache sets — without
  // the stagger every 1 MiB-aligned stream would map onto the same sets
  // and a dozen streams would thrash a 4-way L1 into 100% misses.
  constexpr std::uint64_t kRegion = 1ULL << 20;
  constexpr std::uint64_t kSpan = 1ULL << 9;  // 512 B working set per stream

  auto region_base = [&](ir::NodeId v) {
    const std::uint64_t stagger = (static_cast<std::uint64_t>(v) * 37 % 64) * 64;
    return (static_cast<std::uint64_t>(v) + 1) * kRegion + stagger + (seed % 64) * 64;
  };

  // First pass: every memory op gets a private strided stream.
  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    if (!ir::is_memory(loop.instr(v).op)) continue;
    streams.set(v, AddressStreams::strided(region_base(v), 8, kSpan));
  }
  // Second pass: rewire consumers of memory flow dependences through
  // `dependent` so collision frequency matches the annotation. A consumer
  // with several producers follows the first (most workloads have one).
  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    if (!ir::is_memory(loop.instr(v).op)) continue;
    for (const std::size_t ei : loop.in_edges(v)) {
      const ir::DepEdge& e = loop.dep(ei);
      if (!e.is_memory_flow() || e.dst != v || e.src == v) continue;
      const auto producer_base = region_base(e.src);
      AddressStreams::Fn producer = AddressStreams::strided(producer_base, 8, kSpan);
      AddressStreams::Fn priv =
          AddressStreams::strided(region_base(v) + kSpan * 2, 8, kSpan);
      streams.set(v, AddressStreams::dependent(std::move(producer), e.distance, e.probability,
                                               seed ^ (static_cast<std::uint64_t>(ei) * 0x1009),
                                               std::move(priv)));
      break;
    }
  }
  return streams;
}

}  // namespace tms::spmt
