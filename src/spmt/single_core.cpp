#include "spmt/single_core.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "ir/graph.hpp"
#include "spmt/cache.hpp"
#include "support/assert.hpp"

namespace tms::spmt {
namespace {

/// Per-cycle capacity table with gap reuse: an op books the first cycle
/// >= its ready time at which `limit` is not yet reached (for all of its
/// occupancy cycles). Old entries are pruned as the window advances.
class BusyTable {
 public:
  explicit BusyTable(int limit) : limit_(limit) {}

  bool unlimited() const { return limit_ <= 0; }

  std::int64_t find_free(std::int64_t t, int occupancy) const {
    TMS_ASSERT(!unlimited());
    t = std::max(t, floor_);  // pruned region: treated as fully booked
    for (;;) {
      bool ok = true;
      for (int k = 0; k < occupancy; ++k) {
        const auto it = busy_.find(t + k);
        if (it != busy_.end() && it->second >= limit_) {
          t = t + k + 1;
          ok = false;
          break;
        }
      }
      if (ok) return t;
    }
  }

  void book(std::int64_t t, int occupancy) {
    for (int k = 0; k < occupancy; ++k) ++busy_[t + k];
  }

  void prune_below(std::int64_t cycle) {
    if (busy_.size() < 65536 || cycle <= floor_) return;
    floor_ = cycle;
    for (auto it = busy_.begin(); it != busy_.end();) {
      it = (it->first < cycle) ? busy_.erase(it) : std::next(it);
    }
  }

 private:
  int limit_;
  std::int64_t floor_ = 0;
  std::unordered_map<std::int64_t, int> busy_;
};

}  // namespace

SingleCoreStats run_single_threaded(const ir::Loop& loop, const machine::MachineModel& mach,
                                    const machine::SpmtConfig& cfg, const AddressStreams& streams,
                                    std::int64_t n_iters) {
  TMS_ASSERT(n_iters >= 0);
  const std::vector<ir::NodeId> order = ir::topo_order_intra(loop);

  int max_dist = 1;
  for (const ir::DepEdge& e : loop.deps()) max_dist = std::max(max_dist, e.distance);
  const std::int64_t ring = max_dist + 1;
  // done[v][i % ring]: completion time of node v in iteration i.
  std::vector<std::vector<std::int64_t>> done(
      static_cast<std::size_t>(loop.num_instrs()),
      std::vector<std::int64_t>(static_cast<std::size_t>(ring), 0));

  std::vector<BusyTable> fus;
  fus.reserve(ir::kNumFuClasses);
  for (int c = 0; c < ir::kNumFuClasses; ++c) {
    fus.emplace_back(mach.fu_count(static_cast<ir::FuClass>(c)));
  }
  BusyTable issue(mach.issue_width());
  MemoryHierarchy hier(cfg, 1);

  SingleCoreStats stats;
  std::int64_t horizon = 0;
  std::int64_t min_ready_this_iter = 0;

  // In-order retirement window: instruction q cannot issue until
  // instruction q - rob_entries has retired.
  const std::size_t rob = static_cast<std::size_t>(mach.rob_entries());
  std::vector<std::int64_t> retire_ring(rob, 0);
  std::int64_t seq = 0;
  std::int64_t last_retire = 0;

  for (std::int64_t i = 0; i < n_iters; ++i) {
    min_ready_this_iter = horizon;
    for (const ir::NodeId v : order) {
      const ir::Opcode op = loop.instr(v).op;
      // Operand readiness across flow dependences of any distance; the
      // single-threaded baseline does not speculate, so memory flow
      // dependences are honoured like register ones.
      std::int64_t ready = 0;
      for (const std::size_t ei : loop.in_edges(v)) {
        const ir::DepEdge& e = loop.dep(ei);
        if (e.type != ir::DepType::kFlow) continue;
        const std::int64_t si = i - e.distance;
        if (si < 0) continue;
        ready = std::max(
            ready, done[static_cast<std::size_t>(e.src)][static_cast<std::size_t>(si % ring)]);
      }
      // ROB pressure: wait for the slot vacated by instruction q - rob.
      if (seq >= static_cast<std::int64_t>(rob)) {
        ready = std::max(ready, retire_ring[static_cast<std::size_t>(
                                    seq % static_cast<std::int64_t>(rob))]);
      }
      const ir::FuClass cls = ir::fu_class(op);
      const int occ = mach.occupancy(op);
      // Find a cycle honouring both the unit and the issue bandwidth.
      std::int64_t t = ready;
      for (;;) {
        if (!fus[static_cast<std::size_t>(cls)].unlimited()) {
          t = fus[static_cast<std::size_t>(cls)].find_free(t, occ);
        }
        const std::int64_t ti = issue.find_free(t, 1);
        if (ti == t) break;
        t = ti;
      }
      if (!fus[static_cast<std::size_t>(cls)].unlimited()) {
        fus[static_cast<std::size_t>(cls)].book(t, occ);
      }
      issue.book(t, 1);

      int latency = mach.latency(op);
      if (op == ir::Opcode::kLoad) {
        latency = hier.access_latency(0, streams.address(v, i), /*is_store=*/false);
      } else if (op == ir::Opcode::kStore) {
        hier.access_latency(0, streams.address(v, i), /*is_store=*/true);
      }
      done[static_cast<std::size_t>(v)][static_cast<std::size_t>(i % ring)] = t + latency;
      horizon = std::max(horizon, t + latency);
      min_ready_this_iter = std::min(min_ready_this_iter, t);
      // In-order retirement.
      last_retire = std::max(last_retire, t + latency);
      retire_ring[static_cast<std::size_t>(seq % static_cast<std::int64_t>(rob))] = last_retire;
      ++seq;
      ++stats.instances_executed;
    }
    // Entries far behind the current iteration's earliest issue can never
    // be probed again (ready times only move forward with the dataflow).
    const std::int64_t prune = min_ready_this_iter - 4 * (cfg.l2_miss + cfg.l1d_hit);
    issue.prune_below(prune);
    for (auto& f : fus) {
      if (!f.unlimited()) f.prune_below(prune);
    }
  }

  stats.total_cycles = horizon;
  stats.l1_hits = hier.l1_hits(0);
  stats.l1_misses = hier.l1_misses(0);
  stats.l2_hits = hier.l2_hits();
  stats.l2_misses = hier.l2_misses();
  return stats;
}

}  // namespace tms::spmt
