// The event-driven SpMT simulator core (docs/SIMULATOR.md).
//
// Same execution model as the legacy walker in sim.cpp — thread k runs
// kernel iteration k on the core chosen by the configured allocation
// policy (SpmtConfig::policy via policy::make_policy; the paper default
// is core k mod ncore), sequential spawn/commit, policy-priced register
// forwarding (ring SEND/RECV legs plus the optional shared-bus
// contention charge), speculated memory dependences with squash +
// re-execute — but organised around events instead of a monolithic
// per-thread loop:
//
//   * Each simulated core owns a ready queue of threads waiting for the
//     core to drain its previous commit; a global min-heap of
//     (time, seq) events (core-wake, squash-retry) plus a one-slot
//     pending-spawn register (spawns form a serial chain, so the next
//     one never needs heap residency) advances the shared simulated
//     clock straight to the next event — idle cores are never stepped.
//   * Per-address store history is kept sorted by program-order key
//     with a prefix-max-time index, turning the legacy O(stores) scan
//     per load into a binary search plus an O(1) no-violation check
//     (the linear scan survives only on the rare violating path).
//   * When the caller does not ask for the committed memory image
//     (keep_memory == false), steady-state threads walk only the
//     "eventful" kernel ops — ops with cross-thread register inputs,
//     loads/stores, channel producers, or ring backpressure — and fold
//     the pure compute ops in between into precomputed per-segment
//     completion maxima. Timing never depends on functional values, so
//     the stats stay bit-identical while skipping most of the work.
//   * The per-op state the walk touches is flattened up front: kernel
//     metadata (rows, latencies, input lists, address streams) lives in
//     one dense OpInfo array with CSR input ranges, ring-wall slots are
//     derived from one per-walk residue (k mod ring) by subtraction
//     instead of a modulo per access, a thread's uncommitted stores
//     sit in a small linear buffer (bounded by stores_per_iter),
//     and the address -> history lookup is an insert-only open-addressed
//     table — the hot path never consults a node-indexed hash map.
//
// Every stat, the committed memory image, the value fingerprint and
// the trace are bit-identical to the legacy engine; the differential
// suite in tests/event_sim_test.cpp enforces this on randomized
// workloads, and docs/SIMULATOR.md spells out why the guarantee holds.
#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <queue>
#include <vector>

#include "ir/graph.hpp"
#include "obs/counters.hpp"
#include "policy/policy.hpp"
#include "spmt/cache.hpp"
#include "spmt/sim.hpp"
#include "spmt/values.hpp"
#include "support/assert.hpp"

namespace tms::spmt {
namespace {

struct StoreRec {
  std::int64_t key = 0;  ///< program-order position (src_iter * n + topo_rank)
  std::int64_t time = 0;
  std::uint64_t value = 0;
  std::int64_t thread = 0;
};

/// Stores to one address, sorted by program-order key, with a running
/// prefix maximum of store times. A load at time t with program-order
/// key K misses no store iff max(time of stores with key < K) <= t —
/// one comparison instead of a scan.
struct AddrHist {
  std::uint64_t addr = 0;
  std::vector<StoreRec> recs;
  std::vector<std::int64_t> time_pmax;

  void insert(const StoreRec& rec) {
    // Commits happen in thread order and an address is written by one
    // store node, so keys ascend and inserts are appends in practice;
    // the general path only covers adversarial streams.
    if (recs.empty() || rec.key > recs.back().key) {
      time_pmax.push_back(recs.empty() ? rec.time : std::max(time_pmax.back(), rec.time));
      recs.push_back(rec);
      return;
    }
    auto it = std::lower_bound(recs.begin(), recs.end(), rec.key,
                               [](const StoreRec& r, std::int64_t key) { return r.key < key; });
    const std::size_t pos = static_cast<std::size_t>(it - recs.begin());
    recs.insert(it, rec);
    time_pmax.resize(recs.size());
    for (std::size_t i = pos; i < recs.size(); ++i) {
      time_pmax[i] = (i == 0) ? recs[i].time : std::max(time_pmax[i - 1], recs[i].time);
    }
  }
};

/// Insert-only open-addressed map from address to an index into the
/// engine's AddrHist pool. Committed addresses number in the hundreds
/// (streams wrap in small working sets), so a power-of-two table with
/// linear probing stays tiny and collision-light — and a load's lookup
/// is one probe instead of an unordered_map bucket walk.
class AddrIndex {
 public:
  AddrIndex() { slots_.assign(64, Slot{}); }

  int find(std::uint64_t addr) const {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash(addr) & mask;; i = (i + 1) & mask) {
      const Slot& s = slots_[i];
      if (s.idx < 0) return -1;
      if (s.addr == addr) return s.idx;
    }
  }

  /// Returns the slot for `addr`, inserting `fresh_idx` if absent
  /// (`inserted` reports which).
  int find_or_insert(std::uint64_t addr, int fresh_idx, bool& inserted) {
    if ((size_ + 1) * 2 > slots_.size()) grow();
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash(addr) & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.idx < 0) {
        s.addr = addr;
        s.idx = fresh_idx;
        ++size_;
        inserted = true;
        return fresh_idx;
      }
      if (s.addr == addr) {
        inserted = false;
        return s.idx;
      }
    }
  }

 private:
  struct Slot {
    std::uint64_t addr = 0;
    int idx = -1;
  };

  static std::size_t hash(std::uint64_t a) {
    a *= 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(a ^ (a >> 32));
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    const std::size_t mask = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.idx < 0) continue;
      std::size_t i = hash(s.addr) & mask;
      while (slots_[i].idx >= 0) i = (i + 1) & mask;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

struct WalkResult {
  std::int64_t completion = 0;
  std::int64_t sync_stall = 0;
  std::int64_t mem_stall = 0;
  std::int64_t send_block = 0;
  std::int64_t bus_transfers = 0;  ///< not attempt-gated: final walk only is committed
  std::int64_t instances = 0;
  bool violated = false;
  std::int64_t detect_time = 0;
};

constexpr std::int64_t kNoDetect = std::numeric_limits<std::int64_t>::max();

class EventEngine {
 public:
  EventEngine(const ir::Loop& loop, const codegen::KernelProgram& kp,
              const machine::SpmtConfig& cfg, const AddressStreams& streams,
              const SpmtOptions& opts)
      : loop_(loop), kp_(kp), cfg_(cfg), opts_(opts), hier_(cfg, cfg.ncore),
        pol_(policy::make_policy(cfg, loop)), uniform_(pol_->uniform()) {
    const std::size_t ninstr = static_cast<std::size_t>(loop.num_instrs());
    const std::vector<ir::NodeId> topo = ir::topo_order_intra(loop);
    rank_.assign(ninstr, 0);
    for (std::size_t r = 0; r < topo.size(); ++r) {
      rank_[static_cast<std::size_t>(topo[r])] = static_cast<std::int64_t>(r);
    }
    topo_ = topo;

    int max_dker = 1;
    for (const auto& in : kp.inputs) max_dker = std::max(max_dker, in.d_ker);
    for (const auto& in : kp.mem_inputs) max_dker = std::max(max_dker, in.d_ker);
    for (const auto& ops : kp.reg_operands) {
      for (const auto& o : ops) max_dker = std::max(max_dker, o.d_ker);
    }
    // Exactly the legacy ring size: slot contents that are never
    // rewritten for a live instance keep whatever an aliased older
    // instance left there, and the backpressure check can read such a
    // slot — identical aliasing requires an identical ring.
    ring_ = static_cast<std::int64_t>(std::max(max_dker, cfg.ring_queue_entries) + 2);
    const std::size_t flat = ninstr * static_cast<std::size_t>(ring_);
    values_flat_.assign(flat, 0);
    completion_wall_.assign(flat, 0);
    consume_wall_.assign(flat, 0);

    std::vector<int> first_hop(ninstr, 0);
    for (const auto& in : kp.inputs) {
      int& hop = first_hop[static_cast<std::size_t>(in.producer)];
      hop = (hop == 0) ? in.d_ker : std::min(hop, in.d_ker);
    }
    std::vector<int> stage(ninstr, 0);
    for (const codegen::KernelOp& op : kp.ops) {
      stage[static_cast<std::size_t>(op.node)] = op.stage;
    }
    std::vector<char> mem_producer(ninstr, 0);
    for (const auto& in : kp.mem_inputs) {
      mem_producer[static_cast<std::size_t>(in.producer)] = 1;
    }

    // Flatten everything the per-op step touches into one dense array
    // (CSR input ranges, resolved address streams, precomputed wall
    // bases) so the walk reads contiguous memory instead of chasing
    // per-node vectors and hash buckets.
    auto flatten_inputs = [&](const std::vector<codegen::CrossThreadInput>& ins,
                              ir::NodeId consumer, std::vector<RegIn>& flat) {
      for (const codegen::CrossThreadInput& in : ins) {
        if (in.consumer != consumer) continue;
        RegIn ri;
        ri.d_ker = in.d_ker;
        // Uniform policies price an input once here; non-uniform ones
        // are queried per access in step_op (the consumer thread
        // matters, so no per-input constant exists).
        if (uniform_) {
          const policy::CommCost cost = pol_->comm_cost(in.d_ker, /*k=*/0);
          ri.hop_cost = cost.delay;
          ri.transfers = cost.transfers;
        }
        ri.producer_stage = stage[static_cast<std::size_t>(in.producer)];
        ri.producer_wall_base =
            static_cast<std::size_t>(in.producer) * static_cast<std::size_t>(ring_);
        ri.is_first_hop = in.d_ker == first_hop[static_cast<std::size_t>(in.producer)];
        flat.push_back(ri);
      }
    };

    op_info_.reserve(kp.ops.size());
    for (std::size_t i = 0; i < kp.ops.size(); ++i) {
      const codegen::KernelOp& op = kp.ops[i];
      const std::size_t nd = static_cast<std::size_t>(op.node);
      OpInfo oi;
      oi.node = op.node;
      oi.kp_index = static_cast<std::uint32_t>(i);
      oi.stage = op.stage;
      oi.row = op.row;
      oi.latency = op.latency;
      oi.is_load = op.is_load;
      oi.is_store = op.is_store;
      oi.backpressure = first_hop[nd] > 0 && first_hop[nd] < cfg.ring_queue_entries;
      oi.wall_base = nd * static_cast<std::size_t>(ring_);
      oi.key_base = rank_[nd];
      if (op.is_load || op.is_store) oi.addr_fn = &streams.fn(op.node);
      oi.reg_begin = static_cast<std::uint32_t>(reg_in_flat_.size());
      flatten_inputs(kp.inputs, op.node, reg_in_flat_);
      oi.reg_end = static_cast<std::uint32_t>(reg_in_flat_.size());
      oi.mem_begin = static_cast<std::uint32_t>(mem_in_flat_.size());
      if (op.is_load) flatten_inputs(kp.mem_inputs, op.node, mem_in_flat_);
      oi.mem_end = static_cast<std::uint32_t>(mem_in_flat_.size());
      op_info_.push_back(oi);
    }

    // Partition kernel ops for the timing-only steady-state fast path:
    // "eventful" ops can stall, probe caches, publish channel values or
    // free ring entries; everything else only contributes its
    // completion time, folded per segment into seg_max_.
    seg_max_.assign(1, -1);
    for (std::size_t i = 0; i < kp.ops.size(); ++i) {
      const OpInfo& oi = op_info_[i];
      const std::size_t nd = static_cast<std::size_t>(oi.node);
      const bool eventful = oi.is_load || oi.is_store || oi.reg_begin != oi.reg_end ||
                            first_hop[nd] > 0 || mem_producer[nd] != 0;
      if (eventful) {
        eventful_.push_back(oi);
        seg_max_.push_back(-1);
      } else {
        std::int64_t& seg = seg_max_.back();
        seg = std::max(seg, static_cast<std::int64_t>(oi.row) + oi.latency);
      }
    }
    local_stores_.reserve(static_cast<std::size_t>(std::max(kp.stores_per_iter, 1)));
  }

  SpmtResult run() {
    const std::int64_t n = opts_.iterations;
    num_threads_ = n + kp_.stage_count - 1;
    completion_of_thread_.assign(static_cast<std::size_t>(num_threads_), 0);

    // Live-in broadcast: live-in registers reach every participating
    // core hop by hop before thread 0 can spawn.
    const std::int64_t startup = cfg_.c_reg_com + (cfg_.ncore - 1) * cfg_.hop_cycles;
    cores_.assign(static_cast<std::size_t>(cfg_.ncore), Core{startup, {}});
    commit_end_prev_ = startup;

    if (opts_.keep_memory) {
      committed_values_.assign(
          static_cast<std::size_t>(n) * static_cast<std::size_t>(loop_.num_instrs()), 0);
    }

    // Spawns form a serial chain (thread k+1 spawns C_spn after thread
    // k's final start), so the next spawn lives in a one-slot pending
    // register instead of the heap; it still carries a (time, seq) pair
    // and yields to any queued event that sorts before it, so the
    // processing order is exactly the all-heap order.
    spawn_ = Spawn{true, startup, next_seq_++, 0};
    while (spawn_.active || !events_.empty()) {
      if (spawn_.active) {
        const bool queue_first =
            !events_.empty() && (events_.top().time < spawn_.time ||
                                 (events_.top().time == spawn_.time &&
                                  events_.top().seq < spawn_.seq));
        if (!queue_first) {
          const std::int64_t k = spawn_.k;
          const std::int64_t at = spawn_.time;
          spawn_.active = false;
          ++events_processed_;
          clock_ = std::max(clock_, at);
          Core& core = core_of(k);
          if (core.free_at > at) {
            // Core still draining its previous commit: park the thread
            // on the core's ready queue and wake when the core frees.
            core.ready.push_back(k);
            push_event(core.free_at, EvKind::kCoreWake, core_index(k));
          } else {
            start_thread(k, at);
          }
          continue;
        }
      }
      const Event e = events_.top();
      events_.pop();
      ++events_processed_;
      clock_ = std::max(clock_, e.time);
      switch (e.kind) {
        case EvKind::kCoreWake: {
          Core& core = cores_[static_cast<std::size_t>(e.arg)];
          if (core.ready.empty()) break;
          if (core.free_at > e.time) {
            // The commit chain pushed the core further out meanwhile.
            push_event(core.free_at, EvKind::kCoreWake, e.arg);
            break;
          }
          const std::int64_t k = core.ready.front();
          core.ready.pop_front();
          start_thread(k, e.time);
          break;
        }
        case EvKind::kRetry:
          // Squashed thread re-executes at the detection (or
          // head-serialisation) time computed when it was squashed.
          attempt_thread(e.arg);
          break;
      }
    }
    TMS_ASSERT(res_.stats.threads_committed == num_threads_);

    res_.stats.bus_cycles = res_.stats.bus_transfers * cfg_.bus_transfer_cycles();
    res_.stats.l2_hits = hier_.l2_hits();
    res_.stats.l2_misses = hier_.l2_misses();
    for (int c = 0; c < cfg_.ncore; ++c) {
      res_.stats.l1_hits += hier_.l1_hits(c);
      res_.stats.l1_misses += hier_.l1_misses(c);
    }

    if (opts_.keep_memory) {
      for (const AddrHist& hist : hists_) {
        if (!hist.recs.empty()) res_.memory[hist.addr] = hist.recs.back().value;
      }
      for (std::int64_t i = 0; i < n; ++i) {
        for (const ir::NodeId v : topo_) {
          res_.value_fingerprint =
              mix(res_.value_fingerprint,
                  committed_values_[static_cast<std::size_t>(i) *
                                        static_cast<std::size_t>(loop_.num_instrs()) +
                                    static_cast<std::size_t>(v)]);
        }
      }
    }
    return std::move(res_);
  }

  std::int64_t spec_wait_cycles() const { return spec_wait_cycles_; }
  std::int64_t events_processed() const { return events_processed_; }

 private:
  enum class EvKind : std::uint8_t { kCoreWake, kRetry };
  struct Event {
    std::int64_t time = 0;
    std::uint64_t seq = 0;
    EvKind kind = EvKind::kCoreWake;
    std::int64_t arg = 0;  ///< core (kCoreWake) or thread (kRetry)
  };
  /// The pending thread spawn — a one-slot "event" ordered against the
  /// heap by the same (time, seq) key.
  struct Spawn {
    bool active = false;
    std::int64_t time = 0;
    std::uint64_t seq = 0;
    std::int64_t k = 0;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };
  struct Core {
    std::int64_t free_at = 0;
    std::deque<std::int64_t> ready;
  };

  /// One cross-thread (register or synchronised-memory) input, with the
  /// producer's wall base and hop latency resolved at construction.
  struct RegIn {
    int d_ker = 0;
    int producer_stage = 0;
    bool is_first_hop = false;
    std::int64_t hop_cost = 0;   ///< uniform policies only; else queried per access
    std::int64_t transfers = 0;  ///< bus transfers per delivery (uniform policies)
    std::size_t producer_wall_base = 0;
  };

  /// Everything the per-op step reads, dense and in kernel order.
  struct OpInfo {
    ir::NodeId node = 0;
    std::uint32_t kp_index = 0;  ///< into kp_.ops / kp_.reg_operands[node]
    int stage = 0;
    int row = 0;
    int latency = 0;
    bool is_load = false;
    bool is_store = false;
    bool backpressure = false;  ///< producer with first hop inside the ring window
    std::uint32_t reg_begin = 0, reg_end = 0;  ///< into reg_in_flat_
    std::uint32_t mem_begin = 0, mem_end = 0;  ///< into mem_in_flat_
    const AddressStreams::Fn* addr_fn = nullptr;  ///< loads/stores only
    std::size_t wall_base = 0;   ///< node * ring_
    std::int64_t key_base = 0;   ///< topo rank (prog_key = src_iter * n + key_base)
  };

  struct LocalStore {
    std::uint64_t addr = 0;
    StoreRec rec;
  };

  void push_event(std::int64_t time, EvKind kind, std::int64_t arg) {
    events_.push(Event{time, next_seq_++, kind, arg});
  }

  /// The single iteration→core mapping seam: every placement decision
  /// (spawn, wake, trace, walk) goes through the policy here.
  int core_index(std::int64_t k) const { return pol_->core_of(k); }
  Core& core_of(std::int64_t k) { return cores_[static_cast<std::size_t>(core_index(k))]; }

  void start_thread(std::int64_t k, std::int64_t earliest) {
    cur_start_ = std::max(earliest, core_of(k).free_at);
    cur_attempt_ = 0;
    if (kp_.stores_per_iter > cfg_.spec_write_buffer_entries) {
      // The speculation write buffer cannot hold the thread's stores:
      // the thread must run non-speculatively (as head).
      cur_start_ = std::max(cur_start_, commit_end_prev_);
      ++res_.stats.wb_overflow_waits;
    }
    attempt_thread(k);
  }

  void attempt_thread(std::int64_t k) {
    local_stores_.clear();
    const WalkResult wr = walk(k, cur_start_, cur_attempt_);
    if (wr.violated) {
      ++res_.stats.misspeculations;
      res_.stats.squashed_cycles += (wr.completion - cur_start_) + cfg_.c_inv;
      ++cur_attempt_;
      const std::int64_t wake = cur_attempt_ > opts_.max_reexecutions
                                    ? std::max(cur_start_, commit_end_prev_)
                                    : std::max(cur_start_, wr.detect_time + cfg_.c_inv);
      cur_start_ = wake;
      push_event(wake, EvKind::kRetry, k);
      return;
    }
    commit_thread(k, wr);
  }

  void commit_thread(std::int64_t k, const WalkResult& wr) {
    const std::int64_t commit_end = std::max(wr.completion, commit_end_prev_) + cfg_.c_ci;
    completion_of_thread_[static_cast<std::size_t>(k)] = wr.completion;
    core_of(k).free_at = commit_end;
    commit_end_prev_ = commit_end;

    for (const LocalStore& ls : local_stores_) {
      bool inserted = false;
      const int idx =
          addr_index_.find_or_insert(ls.addr, static_cast<int>(hists_.size()), inserted);
      if (inserted) {
        hists_.emplace_back();
        hists_.back().addr = ls.addr;
      }
      hists_[static_cast<std::size_t>(idx)].insert(ls.rec);
    }

    ++res_.stats.threads_committed;
    res_.stats.instances_executed += wr.instances;
    res_.stats.sync_stall_cycles += wr.sync_stall;
    res_.stats.mem_stall_cycles += wr.mem_stall;
    res_.stats.send_block_cycles += wr.send_block;
    res_.stats.bus_transfers += wr.bus_transfers;
    if (k >= kp_.stage_count - 1 && k < opts_.iterations) {
      res_.stats.send_recv_pairs += kp_.comm_pairs_per_iter;
    }
    res_.stats.total_cycles = commit_end;
    if (opts_.collect_trace) {
      ThreadTrace tt;
      tt.thread = k;
      tt.core = core_index(k);
      tt.start = cur_start_;
      tt.completion = wr.completion;
      tt.commit_end = commit_end;
      tt.attempts = cur_attempt_ + 1;
      tt.sync_stall = wr.sync_stall;
      tt.mem_stall = wr.mem_stall;
      res_.trace.push_back(tt);
    }

    if (k + 1 < num_threads_) {
      // Sequential spawn: the successor spawns C_spn after this
      // thread's (final, post-squash) start. Commit order is serial, so
      // the one-slot spawn register is always free here.
      spawn_ = Spawn{true, cur_start_ + cfg_.c_spn, next_seq_++, k + 1};
    }
  }

  /// Ring slot from a precomputed residue (k % ring_, maintained by the
  /// walk) — the hot path never divides.
  static std::size_t slot_at(std::size_t wall_base, std::int64_t residue) {
    return wall_base + static_cast<std::size_t>(residue);
  }
  /// Residue of k - d given k's residue, for 0 <= d < ring_.
  std::int64_t res_sub(std::int64_t k_mod, int d) const {
    const std::int64_t r = k_mod - d;
    return r < 0 ? r + ring_ : r;
  }

  WalkResult walk(std::int64_t k, std::int64_t start, int attempt) {
    if (opts_.keep_memory) return walk_ops<true>(k, start, attempt);
    if (k >= kp_.stage_count - 1 && k < opts_.iterations) {
      return walk_steady_timing(k, start, attempt);
    }
    return walk_ops<false>(k, start, attempt);
  }

  /// One kernel op of thread k at tentative issue time t = start + row +
  /// shift: waits (RECV, backpressure, synchronised loads), cache
  /// probes, violation detection, channel-wall updates — everything the
  /// legacy walker does per op, shared by both walk flavours.
  template <bool kValues>
  void step_op(const OpInfo& oi, std::int64_t k, std::int64_t k_mod, int core,
               std::int64_t src_iter, int attempt, std::int64_t& t, std::int64_t& shift,
               std::int64_t& completion, WalkResult& wr) {
    const std::int64_t n = opts_.iterations;

    // Cross-thread register inputs: wait for the ring delivery.
    for (std::uint32_t ii = oi.reg_begin; ii != oi.reg_end; ++ii) {
      const RegIn& in = reg_in_flat_[ii];
      const std::int64_t pk = k - in.d_ker;
      if (pk < 0) continue;  // producer instance predates the loop: live-in
      const std::int64_t src_of_producer = pk - in.producer_stage;
      if (src_of_producer < 0 || src_of_producer >= n) continue;
      const std::int64_t pk_res = res_sub(k_mod, in.d_ker);
      std::int64_t delay = in.hop_cost;
      std::int64_t transfers = in.transfers;
      if (!uniform_) {
        const policy::CommCost cost = pol_->comm_cost(in.d_ker, k);
        delay = cost.delay;
        transfers = cost.transfers;
      }
      wr.bus_transfers += transfers;
      const std::int64_t avail =
          completion_wall_[slot_at(in.producer_wall_base, pk_res)] + delay;
      if (avail > t) {
        const std::int64_t stall = avail - t;
        shift += stall;
        t = avail;
        if (attempt == 0) wr.sync_stall += stall;
      }
      // First-hop RECV frees the producer's ring-queue entry.
      if (in.is_first_hop) {
        consume_wall_[slot_at(in.producer_wall_base, pk_res)] = t;
      }
    }

    // Ring-queue backpressure: a producer's SEND blocks until the
    // receiver has drained the value sent Q instances ago.
    if (oi.backpressure) {
      const std::int64_t freed_k = k - cfg_.ring_queue_entries;
      if (freed_k >= 0) {
        const std::int64_t freed =
            consume_wall_[slot_at(oi.wall_base, res_sub(k_mod, cfg_.ring_queue_entries))];
        const std::int64_t send_at = t + oi.latency;
        if (send_at < freed) {
          const std::int64_t stall = freed - send_at;
          shift += stall;
          t += stall;
          if (attempt == 0) wr.send_block += stall;
        }
      }
    }

    // Synchronised memory dependences (speculation disabled).
    if (opts_.disable_speculation && oi.is_load) {
      for (std::uint32_t mi = oi.mem_begin; mi != oi.mem_end; ++mi) {
        const RegIn& in = mem_in_flat_[mi];
        const std::int64_t pk = k - in.d_ker;
        if (pk < 0) continue;
        const std::int64_t src_of_producer = pk - in.producer_stage;
        if (src_of_producer < 0 || src_of_producer >= n) continue;
        std::int64_t delay = in.hop_cost;
        std::int64_t transfers = in.transfers;
        if (!uniform_) {
          const policy::CommCost cost = pol_->comm_cost(in.d_ker, k);
          delay = cost.delay;
          transfers = cost.transfers;
        }
        wr.bus_transfers += transfers;
        const std::int64_t avail =
            completion_wall_[slot_at(in.producer_wall_base, res_sub(k_mod, in.d_ker))] +
            delay;
        if (avail > t) {
          const std::int64_t stall = avail - t;
          shift += stall;
          t = avail;
          if (attempt == 0) spec_wait_cycles_ += stall;
        }
      }
    }

    // Operand values, folded exactly like the reference interpreter
    // (skipped entirely in timing-only mode: timing never reads them).
    std::uint64_t acc = 0;
    if constexpr (kValues) {
      acc = node_seed(oi.node, loop_.instr(oi.node).op);
      for (const codegen::OperandRef& o : kp_.reg_operands[static_cast<std::size_t>(oi.node)]) {
        const std::int64_t si = src_iter - o.distance;
        std::uint64_t operand;
        if (si < 0) {
          operand = live_in_value(o.src);
        } else {
          operand = values_flat_[slot_at(
              static_cast<std::size_t>(o.src) * static_cast<std::size_t>(ring_),
              res_sub(k_mod, o.d_ker))];
        }
        acc = mix(acc, operand);
      }
    }

    if (oi.is_load) {
      const std::uint64_t addr = (*oi.addr_fn)(src_iter);
      const int lat = hier_.access_latency(core, addr, /*is_store=*/false);
      const int extra = lat - cfg_.l1d_hit;
      if (extra > 0) {
        shift += extra;
        wr.mem_stall += extra;
      }
      const std::int64_t load_key = src_iter * loop_.num_instrs() + oi.key_base;
      const std::uint64_t loaded = read_memory(addr, load_key, t, wr);
      if constexpr (kValues) acc = mix(acc, loaded);
    } else if (oi.is_store) {
      const std::uint64_t addr = (*oi.addr_fn)(src_iter);
      hier_.access_latency(core, addr, /*is_store=*/true);
      const std::int64_t store_key = src_iter * loop_.num_instrs() + oi.key_base;
      const StoreRec rec{store_key, t, acc, k};
      LocalStore* found = nullptr;
      for (LocalStore& ls : local_stores_) {
        if (ls.addr == addr) {
          found = &ls;
          break;
        }
      }
      if (found == nullptr) {
        local_stores_.push_back(LocalStore{addr, rec});
      } else if (rec.key > found->rec.key) {
        found->rec = rec;
      }
    }

    if constexpr (kValues) {
      values_flat_[slot_at(oi.wall_base, k_mod)] = acc;
      committed_values_[static_cast<std::size_t>(src_iter) *
                            static_cast<std::size_t>(loop_.num_instrs()) +
                        static_cast<std::size_t>(oi.node)] = acc;
    }
    completion_wall_[slot_at(oi.wall_base, k_mod)] = t + oi.latency;
    completion = std::max(completion, t + oi.latency);
  }

  /// Full walk over every kernel op (values mode, and the
  /// prologue/epilogue boundary threads of timing mode).
  template <bool kValues>
  WalkResult walk_ops(std::int64_t k, std::int64_t start, int attempt) {
    WalkResult wr;
    std::int64_t shift = 0;
    std::int64_t completion = start;
    const std::int64_t n = opts_.iterations;
    const int core = core_index(k);
    const std::int64_t k_mod = k % ring_;
    for (const OpInfo& oi : op_info_) {
      const std::int64_t src_iter = k - oi.stage;
      if (src_iter < 0 || src_iter >= n) continue;  // prologue/epilogue guard
      ++wr.instances;
      std::int64_t t = start + oi.row + shift;
      step_op<kValues>(oi, k, k_mod, core, src_iter, attempt, t, shift, completion, wr);
    }
    wr.completion = completion;
    return wr;
  }

  /// Steady-state timing-only walk: every op is active, so pure compute
  /// segments collapse to start + shift + seg_max and only eventful ops
  /// are visited.
  WalkResult walk_steady_timing(std::int64_t k, std::int64_t start, int attempt) {
    WalkResult wr;
    std::int64_t shift = 0;
    std::int64_t completion = start;
    const int core = core_index(k);
    const std::int64_t k_mod = k % ring_;
    for (std::size_t j = 0; j < eventful_.size(); ++j) {
      if (seg_max_[j] >= 0) completion = std::max(completion, start + shift + seg_max_[j]);
      const OpInfo& oi = eventful_[j];
      const std::int64_t src_iter = k - oi.stage;
      std::int64_t t = start + oi.row + shift;
      step_op<false>(oi, k, k_mod, core, src_iter, attempt, t, shift, completion, wr);
    }
    if (seg_max_[eventful_.size()] >= 0) {
      completion = std::max(completion, start + shift + seg_max_[eventful_.size()]);
    }
    wr.instances = static_cast<std::int64_t>(kp_.ops.size());
    wr.completion = completion;
    return wr;
  }

  /// Load semantics + violation detection over the sorted history: the
  /// program-order-latest store to `addr` with key < load_key that had
  /// executed by `t`; any such store with time > t is a violation,
  /// detected when the offending (older) thread completes.
  std::uint64_t read_memory(std::uint64_t addr, std::int64_t load_key, std::int64_t t,
                            WalkResult& wr) {
    const StoreRec* best = nullptr;
    const int hidx = addr_index_.find(addr);
    if (hidx >= 0) {
      const AddrHist& hist = hists_[static_cast<std::size_t>(hidx)];
      const std::vector<StoreRec>& recs = hist.recs;
      // Committed keys trail the running threads, so a load's key is
      // usually past the whole history: try the tail before paying for
      // a binary search across it.
      std::size_t nb;
      if (recs.back().key < load_key) {
        nb = recs.size();
      } else {
        const auto lb =
            std::lower_bound(recs.begin(), recs.end(), load_key,
                             [](const StoreRec& r, std::int64_t key) { return r.key < key; });
        nb = static_cast<std::size_t>(lb - recs.begin());
      }
      if (nb > 0) {
        if (hist.time_pmax[nb - 1] <= t) {
          best = &recs[nb - 1];  // no candidate executed after t: no violation
        } else {
          for (std::size_t i = 0; i < nb; ++i) {
            const StoreRec& r = recs[i];
            if (r.time > t) {
              if (!wr.violated) {
                wr.violated = true;
                wr.detect_time = kNoDetect;
              }
              wr.detect_time = std::min(
                  wr.detect_time, completion_of_thread_[static_cast<std::size_t>(r.thread)]);
              continue;
            }
            best = &r;  // keys ascend: the last surviving rec is the latest
          }
        }
      }
    }
    for (const LocalStore& ls : local_stores_) {
      if (ls.addr != addr || ls.rec.key >= load_key) continue;
      if (best == nullptr || ls.rec.key > best->key) best = &ls.rec;
    }
    return best != nullptr ? best->value : memory_init_value(addr);
  }

  const ir::Loop& loop_;
  const codegen::KernelProgram& kp_;
  const machine::SpmtConfig& cfg_;
  const SpmtOptions& opts_;
  MemoryHierarchy hier_;
  std::unique_ptr<policy::CorePolicy> pol_;
  bool uniform_ = true;

  std::vector<std::int64_t> rank_;
  std::vector<ir::NodeId> topo_;
  std::int64_t ring_ = 0;
  std::vector<std::uint64_t> values_flat_;
  std::vector<std::int64_t> completion_wall_;
  std::vector<std::int64_t> consume_wall_;
  std::vector<RegIn> reg_in_flat_;
  std::vector<RegIn> mem_in_flat_;
  std::vector<OpInfo> op_info_;   ///< all kernel ops, kernel order
  std::vector<OpInfo> eventful_;  ///< the steady-timing subset, kernel order
  std::vector<std::int64_t> seg_max_;  ///< eventful_.size()+1 entries, -1 = empty

  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  Spawn spawn_;
  std::uint64_t next_seq_ = 0;
  std::vector<Core> cores_;
  std::int64_t clock_ = 0;
  std::int64_t num_threads_ = 0;
  std::int64_t commit_end_prev_ = 0;
  std::int64_t cur_start_ = 0;
  int cur_attempt_ = 0;
  std::int64_t events_processed_ = 0;

  std::vector<std::int64_t> completion_of_thread_;
  AddrIndex addr_index_;
  std::vector<AddrHist> hists_;
  std::vector<LocalStore> local_stores_;
  std::vector<std::uint64_t> committed_values_;
  std::int64_t spec_wait_cycles_ = 0;
  SpmtResult res_;
};

}  // namespace

SpmtResult run_spmt_event(const ir::Loop& loop, const codegen::KernelProgram& kp,
                          const machine::SpmtConfig& cfg, const AddressStreams& streams,
                          const SpmtOptions& opts) {
  cfg.check();
  TMS_ASSERT(opts.iterations >= 1);
  EventEngine engine(loop, kp, cfg, streams, opts);
  SpmtResult res = engine.run();
  res.stats.spec_wait_cycles = engine.spec_wait_cycles();
  obs::counters().sim_events.add(
      static_cast<std::uint64_t>(std::max<std::int64_t>(0, engine.events_processed())));
  return res;
}

}  // namespace tms::spmt
