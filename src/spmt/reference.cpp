#include "spmt/reference.hpp"

#include <vector>

#include "ir/graph.hpp"
#include "spmt/values.hpp"
#include "support/assert.hpp"

namespace tms::spmt {

ReferenceResult run_reference(const ir::Loop& loop, const AddressStreams& streams,
                              std::int64_t n_iters) {
  TMS_ASSERT(n_iters >= 0);
  const std::vector<ir::NodeId> order = ir::topo_order_intra(loop);

  // Per-node value history: ring buffer over iterations, deep enough for
  // the largest register dependence distance.
  int max_dist = 1;
  for (const ir::DepEdge& e : loop.deps()) max_dist = std::max(max_dist, e.distance);
  const int ring = max_dist + 1;
  std::vector<std::vector<std::uint64_t>> vals(
      static_cast<std::size_t>(loop.num_instrs()),
      std::vector<std::uint64_t>(static_cast<std::size_t>(ring), 0));

  ReferenceResult res;
  for (std::int64_t i = 0; i < n_iters; ++i) {
    for (const ir::NodeId v : order) {
      std::uint64_t acc = node_seed(v, loop.instr(v).op);
      for (const std::size_t ei : loop.in_edges(v)) {
        const ir::DepEdge& e = loop.dep(ei);
        if (!e.is_register_flow()) continue;
        const std::int64_t src_iter = i - e.distance;
        const std::uint64_t operand =
            (src_iter < 0)
                ? live_in_value(e.src)
                : vals[static_cast<std::size_t>(e.src)]
                      [static_cast<std::size_t>(src_iter % ring)];
        acc = mix(acc, operand);
      }
      const ir::Opcode op = loop.instr(v).op;
      if (op == ir::Opcode::kLoad) {
        const std::uint64_t addr = streams.address(v, i);
        const auto it = res.memory.find(addr);
        const std::uint64_t loaded =
            (it != res.memory.end()) ? it->second : memory_init_value(addr);
        acc = mix(acc, loaded);
      } else if (op == ir::Opcode::kStore) {
        const std::uint64_t addr = streams.address(v, i);
        res.memory[addr] = acc;
      }
      vals[static_cast<std::size_t>(v)][static_cast<std::size_t>(i % ring)] = acc;
      res.value_fingerprint = mix(res.value_fingerprint, acc);
    }
  }
  return res;
}

}  // namespace tms::spmt
