// Functional value semantics for simulated loops.
//
// Every instruction instance computes a 64-bit value by hash-mixing its
// operands, loads read the functional memory, stores write their value.
// This gives speculation bugs observable consequences: a load that reads a
// stale value produces a different hash than the sequential execution, so
// the "committed state equals sequential semantics" property tests have
// real teeth.
#pragma once

#include <cstdint>

#include "ir/loop.hpp"

namespace tms::spmt {

inline std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return z ^ (z >> 27);
}

/// Seed of a node's computation, folded before its operands.
inline std::uint64_t node_seed(ir::NodeId v, ir::Opcode op) {
  return mix(static_cast<std::uint64_t>(v) * 0x9e3779b97f4a7c15ULL,
             static_cast<std::uint64_t>(op));
}

/// Value a producer holds before the loop starts (live-in for negative
/// source iterations).
inline std::uint64_t live_in_value(ir::NodeId v) {
  return mix(0x11EE11EE11EE11EEULL, static_cast<std::uint64_t>(v));
}

/// Initial contents of functional memory.
inline std::uint64_t memory_init_value(std::uint64_t addr) {
  return mix(addr, 0xABCDABCDABCDABCDULL);
}

}  // namespace tms::spmt
