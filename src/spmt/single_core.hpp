// Single-threaded baseline: the original (un-pipelined) loop running on
// one core of the simulated machine.
//
// Models a 4-wide dynamically scheduled core: instructions issue in a
// greedy dataflow order subject to operand readiness, functional-unit
// occupancy, and per-cycle issue width, with loads taking their real
// cache latency. This is the "single-threaded code" TMS is compared
// against in Figure 5.
#pragma once

#include <cstdint>

#include "ir/loop.hpp"
#include "machine/machine.hpp"
#include "machine/spmt_config.hpp"
#include "spmt/address.hpp"

namespace tms::spmt {

struct SingleCoreStats {
  std::int64_t total_cycles = 0;
  std::int64_t instances_executed = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  double ipc() const {
    return total_cycles > 0
               ? static_cast<double>(instances_executed) / static_cast<double>(total_cycles)
               : 0.0;
  }
};

SingleCoreStats run_single_threaded(const ir::Loop& loop, const machine::MachineModel& mach,
                                    const machine::SpmtConfig& cfg, const AddressStreams& streams,
                                    std::int64_t n_iters);

}  // namespace tms::spmt
