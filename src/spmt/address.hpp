// Address streams: per memory instruction, the address it touches in each
// iteration.
//
// The paper profiles SPECfp2000 with train inputs to obtain per-dependence
// probabilities; we invert that: the workload generator annotates each
// memory dependence with a probability and builds address streams whose
// runtime collision frequency matches it (see workloads/). A consumer
// load "collides" with its producer store in iteration i when the
// deterministic hash test passes; otherwise it reads a private region.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ir/loop.hpp"
#include "support/assert.hpp"

namespace tms::spmt {

/// Deterministic per-(stream, iteration) hash used for probability tests;
/// exposed so tests can predict collisions.
std::uint64_t stream_hash(std::uint64_t seed, std::int64_t iteration);

class AddressStreams {
 public:
  using Fn = std::function<std::uint64_t(std::int64_t iteration)>;

  explicit AddressStreams(int num_nodes) : fns_(static_cast<std::size_t>(num_nodes)) {}

  void set(ir::NodeId node, Fn fn) { fns_.at(static_cast<std::size_t>(node)) = std::move(fn); }
  bool has(ir::NodeId node) const {
    return static_cast<bool>(fns_.at(static_cast<std::size_t>(node)));
  }
  std::uint64_t address(ir::NodeId node, std::int64_t iteration) const {
    return fn(node)(iteration);
  }
  /// The stream itself, for callers that resolve it once and call it per
  /// iteration (the simulator hot path).
  const Fn& fn(ir::NodeId node) const {
    const Fn& f = fns_.at(static_cast<std::size_t>(node));
    TMS_ASSERT_MSG(static_cast<bool>(f), "memory instruction lacks an address stream");
    return f;
  }

  // ---- Stream constructors ----------------------------------------------

  /// Sequential array walk: base + stride * iteration (wrapping in a
  /// working set of `span` bytes to exercise cache reuse).
  static Fn strided(std::uint64_t base, std::uint64_t stride, std::uint64_t span);

  /// Consumer stream for a memory flow dependence producer->consumer of
  /// distance d and probability p: with frequency p the consumer reads the
  /// address the producer wrote `d` iterations ago; otherwise it reads
  /// from a disjoint private stream.
  static Fn dependent(Fn producer, int distance, double probability, std::uint64_t hash_seed,
                      Fn private_stream);

 private:
  std::vector<Fn> fns_;
};

/// Builds default address streams for every memory instruction of a loop:
/// producers of memory flow dependences get strided streams, consumers get
/// dependent streams honouring the annotated probability, and independent
/// memory ops get private strided streams. `seed` varies the layout.
AddressStreams default_streams(const ir::Loop& loop, std::uint64_t seed);

}  // namespace tms::spmt
