#include "cost/cost_model.hpp"

#include <algorithm>
#include <cstdio>

#include "support/assert.hpp"

namespace tms::cost {

double thread_lower_bound(int ii, int c_delay, const machine::SpmtConfig& cfg) {
  return static_cast<double>(ii + cfg.c_ci + std::max(cfg.c_spn, c_delay));
}

double per_iter_nomiss(int ii, int c_delay, const machine::SpmtConfig& cfg) {
  TMS_ASSERT(ii >= 1);
  const double serial = static_cast<double>(std::max({cfg.c_spn, cfg.c_ci, c_delay}));
  const double throughput = thread_lower_bound(ii, c_delay, cfg) / cfg.ncore;
  return std::max(serial, throughput);
}

double t_nomiss(int ii, int c_delay, const machine::SpmtConfig& cfg, long long n_iters) {
  return per_iter_nomiss(ii, c_delay, cfg) * static_cast<double>(n_iters);
}

double misspec_penalty(int ii, int c_delay, const machine::SpmtConfig& cfg) {
  return static_cast<double>(ii + cfg.c_inv) -
         std::max(0.0, static_cast<double>(c_delay - cfg.c_spn));
}

double t_mis_spec(int ii, int c_delay, double p_m, const machine::SpmtConfig& cfg,
                  long long n_iters) {
  TMS_ASSERT(p_m >= 0.0 && p_m <= 1.0);
  return misspec_penalty(ii, c_delay, cfg) * p_m * static_cast<double>(n_iters);
}

double estimate_execution_time(int ii, int c_delay, double p_m, const machine::SpmtConfig& cfg,
                               long long n_iters) {
  return t_nomiss(ii, c_delay, cfg, n_iters) + t_mis_spec(ii, c_delay, p_m, cfg, n_iters);
}

std::string f_breakdown(int ii, int c_delay, double p_m, const machine::SpmtConfig& cfg) {
  const int serial = std::max({cfg.c_spn, cfg.c_ci, c_delay});
  const double lb = thread_lower_bound(ii, c_delay, cfg);
  const double throughput = lb / cfg.ncore;
  const double f = per_iter_nomiss(ii, c_delay, cfg);
  const bool serial_bound = static_cast<double>(serial) >= throughput;
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "F(II=%d, C_delay=%d) = max(max(C_spn=%d, C_ci=%d, C_delay=%d) = %d, "
                "(II + C_ci + max(C_spn, C_delay)) / ncore = %.2f/%d = %.2f) = %.2f "
                "cycles/iter (%s-bound)\n"
                "T_misspec/iter = (II + C_inv - max(0, C_delay - C_spn)) * P_M = %.2f * %.4f = "
                "%.4f cycles/iter",
                ii, c_delay, cfg.c_spn, cfg.c_ci, c_delay, serial, lb, cfg.ncore, throughput, f,
                serial_bound ? "serial" : "throughput", misspec_penalty(ii, c_delay, cfg), p_m,
                misspec_penalty(ii, c_delay, cfg) * p_m);
  return buf;
}

}  // namespace tms::cost
