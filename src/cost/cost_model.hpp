// The TMS cost model (Section 4.2).
//
// Execution time of a modulo-scheduled loop of N iterations on an SpMT
// machine is T = T_nomiss + T_mis_spec with
//
//   T_lb      = II + C_ci + max(C_spn, C_delay)                (per thread)
//   T_nomiss  = max(C_spn, C_ci, C_delay, T_lb / ncore) * N       (Eq. 2)
//   P_M       = 1 - prod_{e in M} (1 - p_e)                       (Eq. 3)
//   T_misspec = (II + C_inv - max(0, C_delay - C_spn)) * P_M * N
//
// where M is the set of non-preserved inter-thread memory dependences.
// These are pure arithmetic on the schedule's summary numbers; the
// schedule-dependent inputs (C_delay, P_M) come from sched::Schedule.
#pragma once

#include <string>

#include "machine/spmt_config.hpp"

namespace tms::cost {

/// Lower bound on one thread's wall-clock occupancy of its core.
double thread_lower_bound(int ii, int c_delay, const machine::SpmtConfig& cfg);

/// F(II, C_delay) of Fig. 3 line 4: the misspeculation-free execution time
/// *per iteration* (T_nomiss / N).
double per_iter_nomiss(int ii, int c_delay, const machine::SpmtConfig& cfg);

double t_nomiss(int ii, int c_delay, const machine::SpmtConfig& cfg, long long n_iters);

/// Penalty of a single misspeculation: the squashed thread's II plus the
/// invalidation, minus the sync stall the re-execution no longer pays.
double misspec_penalty(int ii, int c_delay, const machine::SpmtConfig& cfg);

double t_mis_spec(int ii, int c_delay, double p_m, const machine::SpmtConfig& cfg,
                  long long n_iters);

/// Full model: T = T_nomiss + T_mis_spec.
double estimate_execution_time(int ii, int c_delay, double p_m, const machine::SpmtConfig& cfg,
                               long long n_iters);

/// Term-by-term rendering of the per-iteration cost at (ii, c_delay, p_m)
/// — which term of Eq. 2 binds, and the misspeculation penalty — for the
/// tmsbatch --explain narrative.
std::string f_breakdown(int ii, int c_delay, double p_m, const machine::SpmtConfig& cfg);

}  // namespace tms::cost
