// Content-addressed cache of modulo-scheduling results.
//
// Scheduling is the expensive stage of the pipeline (TMS enumerates
// (II, C_delay) pairs, each a full placement attempt), and sweeps keep
// asking for the same triples: fuzz reruns, bench binaries sharing the
// 778-loop suite, tmsbatch invoked over the same directory. The cache
// keys a result by *content*, not identity: a stable 64-bit FNV-1a hash
// of the canonical key string
//
//   tms-schedule-key v1
//   scheduler <sms|ims|tms>
//   machine <issue width, ROB, FU counts, all per-opcode timings>
//   config <every SpmtConfig field>
//   <ir::serialise_loop(loop)>
//
// so any change to the loop body, dependence set, machine description,
// SpmtConfig, or scheduler kind changes the key (that is the whole
// invalidation story — entries are immutable, wrong entries are
// unreachable). A cached entry stores what is needed to reconstruct the
// Schedule exactly: II, per-node slots, and the TMS acceptance
// thresholds (C_delay threshold / P_max) validation re-checks against.
//
// Storage is an in-memory sharded LRU (16 shards, each its own mutex and
// LRU list — lookups from concurrent jobs only contend when they land in
// the same shard) with optional on-disk persistence: one text file per
// entry under `dir/<16-hex-key>.tmscache`, written to a temp file and
// atomically renamed so concurrent writers and readers never see a torn
// entry. Both tiers are bounded so a long-lived process (tmsd) cannot
// grow without limit: the memory tier by entry count (LRU eviction), the
// disk tier by total bytes (least-recently-written files are removed
// after each write until the store fits again). Loads re-verify the embedded key and the slot count against the
// loop being scheduled; any malformed, truncated, or mismatched file is
// rejected (counted in stats().disk_rejects) and the caller recomputes.
// Semantic corruption — a well-formed entry whose slots violate the
// dependences — is caught one layer up: the batch driver re-validates
// every reconstructed schedule and treats failures as misses.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ir/loop.hpp"
#include "machine/machine.hpp"
#include "machine/spmt_config.hpp"

namespace tms::driver {

class ScheduleCache {
 public:
  struct Entry {
    std::string scheduler;       ///< "sms", "ims" or "tms"
    int ii = 0;
    int mii = 0;
    int c_delay_threshold = -1;  ///< TMS acceptance threshold; -1 for SMS/IMS
    double p_max = -1.0;         ///< TMS acceptance threshold; -1 for SMS/IMS
    std::vector<int> slots;      ///< slot per node id, normalised
  };

  struct Stats {
    std::uint64_t memory_hits = 0;
    std::uint64_t disk_hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t disk_rejects = 0;  ///< corrupt/mismatched on-disk entries
    std::uint64_t disk_evictions = 0;  ///< files removed by the max-bytes bound
    std::uint64_t disk_bytes = 0;      ///< current on-disk store size
    std::uint64_t capacity = 0;        ///< configured in-memory entry bound
    std::uint64_t max_disk_bytes = 0;  ///< configured disk bound; 0 = unbounded

    std::uint64_t hits() const { return memory_hits + disk_hits; }
    double hit_rate() const {
      const std::uint64_t total = hits() + misses;
      return total > 0 ? static_cast<double>(hits()) / static_cast<double>(total) : 0.0;
    }
  };

  /// `capacity` bounds the total in-memory entry count (split evenly
  /// across shards); `disk_dir` enables persistence when non-empty (the
  /// directory is created on first insert). `max_disk_bytes` bounds the
  /// on-disk store: after every write, least-recently-written entry files
  /// are removed until the directory fits (0 = unbounded).
  explicit ScheduleCache(std::size_t capacity = 1 << 16, std::string disk_dir = {},
                         std::uint64_t max_disk_bytes = 0);

  /// The canonical key string hashed by key(); exposed so tests and
  /// docs/DRIVER.md can pin down exactly what invalidates an entry.
  static std::string key_string(const ir::Loop& loop, const machine::MachineModel& mach,
                                const machine::SpmtConfig& cfg, std::string_view scheduler);

  static std::uint64_t key(const ir::Loop& loop, const machine::MachineModel& mach,
                           const machine::SpmtConfig& cfg, std::string_view scheduler);

  /// FNV-1a, 64-bit.
  static std::uint64_t fnv1a(std::string_view s);

  /// Memory first, then disk (inserting a disk hit into memory).
  /// `expect_instrs` guards reconstruction: an entry whose slot count
  /// differs (hash collision or stale file) is rejected.
  std::optional<Entry> lookup(std::uint64_t key, int expect_instrs);

  /// Inserts into memory (evicting LRU entries past capacity) and, when
  /// persistence is enabled, writes the entry to disk atomically.
  void insert(std::uint64_t key, const Entry& entry);

  Stats stats() const;

  const std::string& disk_dir() const { return dir_; }

 private:
  static constexpr std::size_t kShards = 16;

  struct Shard {
    std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<std::uint64_t, Entry>> lru;
    std::unordered_map<std::uint64_t, std::list<std::pair<std::uint64_t, Entry>>::iterator> map;
  };

  Shard& shard(std::uint64_t key) { return shards_[key % kShards]; }
  std::string entry_path(std::uint64_t key) const;
  std::optional<Entry> load_from_disk(std::uint64_t key, int expect_instrs);
  void store_to_disk(std::uint64_t key, const Entry& entry);
  void insert_locked(Shard& s, std::uint64_t key, const Entry& entry);
  /// Removes least-recently-written entry files until the store fits the
  /// byte bound again, sparing `keep` (the file just written).
  void enforce_disk_bound(const std::string& keep);

  std::size_t capacity_;
  std::size_t shard_capacity_;
  std::string dir_;
  std::uint64_t max_disk_bytes_;
  std::array<Shard, kShards> shards_;
  std::mutex disk_mu_;  ///< serialises disk-bound accounting and eviction

  mutable std::atomic<std::uint64_t> memory_hits_{0};
  mutable std::atomic<std::uint64_t> disk_hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> inserts_{0};
  mutable std::atomic<std::uint64_t> evictions_{0};
  mutable std::atomic<std::uint64_t> disk_rejects_{0};
  mutable std::atomic<std::uint64_t> disk_evictions_{0};
  mutable std::atomic<std::uint64_t> disk_bytes_{0};
  std::atomic<std::uint64_t> tmp_counter_{0};
};

}  // namespace tms::driver
