#include "driver/sim_sweep.hpp"

#include <exception>
#include <memory>

#include "driver/job_pool.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "spmt/address.hpp"

namespace tms::driver {

namespace {

SimSweepOutcome run_point(const SimSweepPoint& p) {
  SimSweepOutcome out;
  out.name = p.name;
  out.ncore = p.cfg.ncore;
  try {
    const spmt::AddressStreams streams = spmt::default_streams(p.loop, p.stream_seed);
    const spmt::SpmtResult res = spmt::run_spmt(p.loop, p.kp, p.cfg, streams, p.sim);
    out.stats = res.stats;
    out.value_fingerprint = res.value_fingerprint;
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

}  // namespace

std::vector<SimSweepOutcome> run_sim_sweep(const std::vector<SimSweepPoint>& points,
                                           const SimSweepOptions& opts) {
  TMS_TRACE_SPAN(span, "driver", "driver.sim_sweep");
  std::vector<SimSweepOutcome> results(points.size());
  if (!points.empty()) {
    const int threads = opts.threads > 0 ? opts.threads : JobPool::default_threads();
    if (threads <= 1 || points.size() == 1) {
      for (std::size_t i = 0; i < points.size(); ++i) results[i] = run_point(points[i]);
    } else {
      TaskPool pool(threads, points.size());
      std::vector<std::shared_ptr<TaskPool::Task>> tasks(points.size());
      for (std::size_t i = 0; i < points.size(); ++i) {
        tasks[i] = pool.try_submit([&results, &points, i] { results[i] = run_point(points[i]); });
        // Capacity equals the point count, so submission cannot fail; be
        // safe anyway and run rejected points inline.
        if (tasks[i] == nullptr) results[i] = run_point(points[i]);
      }
      for (const auto& t : tasks) {
        if (t != nullptr) t->wait();
      }
      pool.shutdown(TaskPool::Drain::kFinishQueued);
    }
  }
  obs::counters().sim_sweep_points.add(points.size());
  TMS_TRACE_SPAN_ARG(span, obs::targ("points", static_cast<std::int64_t>(points.size())));
  return results;
}

}  // namespace tms::driver
