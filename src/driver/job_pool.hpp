// Work-stealing thread pool for batch compilation jobs.
//
// The driver's workloads are embarrassingly parallel — every (loop,
// config, scheduler) triple is an independent pipeline run — but their
// costs are wildly uneven (a 102-instruction lucas loop takes orders of
// magnitude longer to schedule than an 8-instruction kernel), so static
// partitioning leaves cores idle. JobPool therefore deals jobs round-robin
// into per-worker deques and lets idle workers steal from the busy ones.
//
// The deque is a fixed-buffer variant of the Chase-Lev work-stealing
// deque (Le/Pop/Cohen/Nardelli, PPoPP'13 orderings): because every job is
// seeded before the workers start and jobs never spawn jobs, the buffer
// is immutable while threads run — no growing, no index recycling, and
// the classic ABA hazards disappear. The owner pops LIFO from the bottom;
// thieves CAS the top (the lock-free steal path). Termination is
// likewise simple: a worker exits after a full sweep of every deque finds
// them all empty (a lost CAS race forces a re-sweep, so no job can be
// stranded).
//
// Determinism contract: run(count, body) invokes body(i) exactly once for
// every i in [0, count); callers write results into slot i of a
// pre-sized vector, so result ordering is by submission index no matter
// which worker ran the job or in what order. body must not submit new
// jobs.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tms::driver {

/// Fixed-capacity single-owner work-stealing deque of job indices.
/// All seeding happens before concurrent access starts (seeding
/// happens-before thread creation), so the buffer itself is never
/// written concurrently — only `top_`/`bottom_` are contended.
class StealDeque {
 public:
  explicit StealDeque(std::size_t capacity) { buf_.reserve(capacity); }

  /// Pre-start only: no synchronisation.
  void seed(std::size_t job) {
    buf_.push_back(job);
    bottom_.store(static_cast<std::int64_t>(buf_.size()), std::memory_order_relaxed);
  }

  /// Owner-only LIFO pop from the bottom.
  bool pop(std::size_t& out);

  enum class Steal {
    kStole,  ///< out holds a job
    kEmpty,  ///< nothing to steal
    kLost,   ///< lost a CAS race; the deque may still hold work — retry
  };

  /// Thief-side FIFO steal from the top. Callable from any thread.
  Steal steal(std::size_t& out);

 private:
  std::vector<std::size_t> buf_;
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
};

class JobPool {
 public:
  /// threads <= 0 selects default_threads().
  explicit JobPool(int threads = 0);

  int threads() const { return threads_; }

  /// std::thread::hardware_concurrency, clamped to >= 1.
  static int default_threads();

  /// Runs jobs 0..count-1, each exactly once, across the pool's workers.
  /// The calling thread acts as worker 0 (so a 1-thread pool runs the
  /// batch inline, with zero thread overhead and strict submission
  /// order). If a job throws, the remaining jobs still run and the first
  /// captured exception is rethrown after every worker has drained.
  void run(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  int threads_;
};

/// Persistent bounded executor for the compile service (src/serve).
///
/// JobPool::run is a batch primitive: it assumes every job is known up
/// front and tears the workers down when the batch drains. A daemon needs
/// the opposite shape — workers that outlive any one request, a bounded
/// submission queue whose high-water mark is the admission-control knob,
/// and per-task lifecycle hooks the service builds on:
///
/// - try_submit never blocks: it returns nullptr when the queue is at
///   capacity (the caller turns that into a RETRY_AFTER response) or the
///   pool is shut down.
/// - A queued task can be cancelled before it starts (deadline expiry
///   while waiting); cancellation of a running task is cooperative — the
///   task body checks its own deadline between pipeline stages.
/// - An exception escaping a task body is captured into the task (state
///   kFailed, rethrown by rethrow()), never onto a worker thread.
/// - shutdown(kFinishQueued) drains the queue then joins (graceful
///   drain); shutdown(kCancelQueued) cancels everything still queued,
///   finishes only the tasks already running, then joins.
class TaskPool {
 public:
  enum class TaskState { kQueued, kRunning, kDone, kFailed, kCancelled };

  class Task {
   public:
    TaskState state() const;

    /// Queued -> cancelled; returns false once the task started (or
    /// finished). A cancelled task's body never runs.
    bool cancel();

    /// Blocks until the task is done, failed, or cancelled.
    void wait();

    /// wait() with a deadline; false when the deadline passed first.
    bool wait_until(std::chrono::steady_clock::time_point deadline);

    /// Rethrows the exception captured from the task body, if any.
    void rethrow();

   private:
    friend class TaskPool;
    std::function<void()> fn_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    TaskState state_ = TaskState::kQueued;
    std::exception_ptr error_;

    bool finished_locked() const {
      return state_ == TaskState::kDone || state_ == TaskState::kFailed ||
             state_ == TaskState::kCancelled;
    }
  };

  /// threads <= 0 selects JobPool::default_threads(); queue_capacity is
  /// the admission high-water mark (tasks queued, not running).
  TaskPool(int threads, std::size_t queue_capacity);
  ~TaskPool();  ///< shutdown(Drain::kCancelQueued)

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// nullptr when the queue is full or the pool is shut down.
  std::shared_ptr<Task> try_submit(std::function<void()> fn);

  std::size_t queue_depth() const;
  std::size_t queue_capacity() const { return capacity_; }
  int threads() const { return static_cast<int>(workers_.size()); }

  enum class Drain { kFinishQueued, kCancelQueued };

  /// Idempotent; joins the workers before returning.
  void shutdown(Drain mode);

 private:
  void worker_loop();

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Task>> queue_;
  bool shutdown_ = false;
  bool finish_queued_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tms::driver
