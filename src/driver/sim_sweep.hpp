// Parallel simulator sweeps: run independent (workload, config)
// simulation points concurrently on a driver::TaskPool.
//
// The ncore=16/32/64 scaling studies simulate the same kernels under
// many machine configs; every point is an independent run_spmt call, so
// they parallelise perfectly. Points carry their pre-lowered
// KernelProgram — the sweep measures simulation, not scheduling — and
// results land in submission order regardless of worker interleaving,
// so a sweep is byte-deterministic across thread counts (the same
// contract JobPool gives run_batch).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "codegen/kernel_program.hpp"
#include "ir/loop.hpp"
#include "machine/spmt_config.hpp"
#include "spmt/sim.hpp"

namespace tms::driver {

/// One independent simulation: a loop with its lowered kernel, the
/// machine config to simulate, and the simulator options (iterations,
/// engine, keep_memory, ...).
struct SimSweepPoint {
  std::string name;  ///< label echoed in the outcome (e.g. "fft.ncore32")
  ir::Loop loop;
  codegen::KernelProgram kp;
  machine::SpmtConfig cfg;
  spmt::SpmtOptions sim;
  std::uint64_t stream_seed = 1;  ///< address-stream layout (default_streams)
};

struct SimSweepOutcome {
  std::string name;
  int ncore = 0;
  bool ok = false;
  std::string error;  ///< what() of the failure when !ok
  spmt::SpmtStats stats;
  /// Committed-value fingerprint (0 unless the point kept memory).
  std::uint64_t value_fingerprint = 0;
};

struct SimSweepOptions {
  int threads = 0;  ///< workers; <= 0 selects JobPool::default_threads()
};

/// Runs every point, in parallel, returning outcomes indexed exactly
/// like `points`. Per-point failures are captured in the outcome, never
/// thrown.
std::vector<SimSweepOutcome> run_sim_sweep(const std::vector<SimSweepPoint>& points,
                                           const SimSweepOptions& opts = {});

}  // namespace tms::driver
