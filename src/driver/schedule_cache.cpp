#include "driver/schedule_cache.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ir/opcode.hpp"
#include "ir/textio.hpp"
#include "obs/counters.hpp"

namespace tms::driver {

namespace {

/// Every opcode MachineModel carries a timing for, in enum order. The
/// timing table is part of the cache key: retuning a latency must
/// invalidate every schedule computed under the old machine.
constexpr ir::Opcode kAllOpcodes[] = {
    ir::Opcode::kIAdd, ir::Opcode::kISub,  ir::Opcode::kIMul,  ir::Opcode::kShift,
    ir::Opcode::kLogic, ir::Opcode::kCmp,  ir::Opcode::kCMov,  ir::Opcode::kFAdd,
    ir::Opcode::kFSub, ir::Opcode::kFMul,  ir::Opcode::kFDiv,  ir::Opcode::kFSqrt,
    ir::Opcode::kFCmp, ir::Opcode::kFCvt,  ir::Opcode::kLoad,  ir::Opcode::kStore,
    ir::Opcode::kLea,  ir::Opcode::kCopy,  ir::Opcode::kSend,  ir::Opcode::kRecv,
    ir::Opcode::kSpawn, ir::Opcode::kNop,
};

void append_machine(std::string& out, const machine::MachineModel& m) {
  out += "machine issue ";
  out += std::to_string(m.issue_width());
  out += " rob ";
  out += std::to_string(m.rob_entries());
  out += " fu";
  for (int c = 0; c < ir::kNumFuClasses; ++c) {
    out += ' ';
    out += std::to_string(m.fu_count(static_cast<ir::FuClass>(c)));
  }
  out += " timing";
  for (const ir::Opcode op : kAllOpcodes) {
    const machine::OpTiming& t = m.timing(op);
    out += ' ';
    out += std::to_string(t.latency);
    out += '/';
    out += std::to_string(t.occupancy);
  }
  out += '\n';
}

void append_config(std::string& out, const machine::SpmtConfig& c) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "config ncore %d c_spn %d c_ci %d c_inv %d c_reg_com %d send %d hop %d recv %d "
                "l1i %d l1d %d l2 %d mem %d l1d_geom %d/%d l2_geom %d/%d line %d wb %d mdt %d "
                "ringq %d\n",
                c.ncore, c.c_spn, c.c_ci, c.c_inv, c.c_reg_com, c.send_cycles, c.hop_cycles,
                c.recv_cycles, c.l1i_hit, c.l1d_hit, c.l2_hit, c.l2_miss, c.l1d_sets, c.l1d_ways,
                c.l2_sets, c.l2_ways, c.line_bytes, c.spec_write_buffer_entries, c.mdt_entries,
                c.ring_queue_entries);
  out += buf;
  // Policy and bus terms are appended only when non-default so every key
  // minted before the policy subsystem existed stays byte-identical.
  if (c.policy != machine::AllocPolicy::kModulo || c.policy_stride != 1 || c.policy_block != 1) {
    std::snprintf(buf, sizeof buf, "policy %d stride %d block %d\n", static_cast<int>(c.policy),
                  c.policy_stride, c.policy_block);
    out += buf;
  }
  if (c.bus_bytes_per_transfer != 0 || c.bus_bytes_per_cycle != 16) {
    std::snprintf(buf, sizeof buf, "bus %d/%d\n", c.bus_bytes_per_transfer,
                  c.bus_bytes_per_cycle);
    out += buf;
  }
}

std::string hex_key(std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, key);
  return buf;
}

}  // namespace

ScheduleCache::ScheduleCache(std::size_t capacity, std::string disk_dir,
                             std::uint64_t max_disk_bytes)
    : capacity_(capacity),
      shard_capacity_(std::max<std::size_t>(1, capacity / kShards)),
      dir_(std::move(disk_dir)),
      max_disk_bytes_(max_disk_bytes) {
  if (dir_.empty()) return;
  // Seed the byte accounting from whatever a previous process left
  // behind, so the bound holds across restarts, not just within one run.
  namespace fs = std::filesystem;
  std::error_code ec;
  std::uint64_t bytes = 0;
  for (const auto& e : fs::directory_iterator(dir_, ec)) {
    if (e.is_regular_file(ec) && e.path().extension() == ".tmscache") {
      bytes += static_cast<std::uint64_t>(e.file_size(ec));
    }
  }
  disk_bytes_.store(bytes, std::memory_order_relaxed);
  if (max_disk_bytes_ > 0 && bytes > max_disk_bytes_) enforce_disk_bound({});
}

std::string ScheduleCache::key_string(const ir::Loop& loop, const machine::MachineModel& mach,
                                      const machine::SpmtConfig& cfg,
                                      std::string_view scheduler) {
  std::string out = "tms-schedule-key v1\nscheduler ";
  out += scheduler;
  out += '\n';
  append_machine(out, mach);
  append_config(out, cfg);
  out += ir::serialise_loop(loop);
  return out;
}

std::uint64_t ScheduleCache::key(const ir::Loop& loop, const machine::MachineModel& mach,
                                 const machine::SpmtConfig& cfg, std::string_view scheduler) {
  return fnv1a(key_string(loop, mach, cfg, scheduler));
}

std::uint64_t ScheduleCache::fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::optional<ScheduleCache::Entry> ScheduleCache::lookup(std::uint64_t key, int expect_instrs) {
  Shard& s = shard(key);
  {
    const std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.map.find(key);
    if (it != s.map.end()) {
      if (static_cast<int>(it->second->second.slots.size()) == expect_instrs) {
        s.lru.splice(s.lru.begin(), s.lru, it->second);  // touch
        memory_hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second->second;
      }
      // 64-bit collision between different loops: treat as a miss, do
      // not disturb the resident entry.
    }
  }
  if (!dir_.empty()) {
    if (auto e = load_from_disk(key, expect_instrs)) {
      Shard& sh = shard(key);
      const std::lock_guard<std::mutex> lock(sh.mu);
      insert_locked(sh, key, *e);
      disk_hits_.fetch_add(1, std::memory_order_relaxed);
      return e;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void ScheduleCache::insert_locked(Shard& s, std::uint64_t key, const Entry& entry) {
  const auto it = s.map.find(key);
  if (it != s.map.end()) {
    it->second->second = entry;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  s.lru.emplace_front(key, entry);
  s.map.emplace(key, s.lru.begin());
  while (s.lru.size() > shard_capacity_) {
    s.map.erase(s.lru.back().first);
    s.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    obs::counters().driver_cache_evictions_mem.add(1);
  }
}

void ScheduleCache::insert(std::uint64_t key, const Entry& entry) {
  {
    Shard& s = shard(key);
    const std::lock_guard<std::mutex> lock(s.mu);
    insert_locked(s, key, entry);
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (!dir_.empty()) store_to_disk(key, entry);
}

std::string ScheduleCache::entry_path(std::uint64_t key) const {
  return dir_ + "/" + hex_key(key) + ".tmscache";
}

std::optional<ScheduleCache::Entry> ScheduleCache::load_from_disk(std::uint64_t key,
                                                                  int expect_instrs) {
  std::ifstream in(entry_path(key));
  if (!in) return std::nullopt;  // absent: a plain miss, not a reject

  const auto reject = [&]() -> std::optional<Entry> {
    disk_rejects_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  };

  std::string magic, version;
  if (!(in >> magic >> version) || magic != "tmscache" || version != "v1") return reject();

  Entry e;
  std::string field;
  std::string file_key;
  std::size_t nslots = 0;
  bool have_slots = false;
  bool have_end = false;
  while (in >> field) {
    if (field == "key") {
      if (!(in >> file_key)) return reject();
    } else if (field == "scheduler") {
      if (!(in >> e.scheduler)) return reject();
    } else if (field == "ii") {
      if (!(in >> e.ii)) return reject();
    } else if (field == "mii") {
      if (!(in >> e.mii)) return reject();
    } else if (field == "c_delay_threshold") {
      if (!(in >> e.c_delay_threshold)) return reject();
    } else if (field == "p_max") {
      if (!(in >> e.p_max)) return reject();
    } else if (field == "slots") {
      if (!(in >> nslots)) return reject();
      e.slots.resize(nslots);
      for (std::size_t i = 0; i < nslots; ++i) {
        if (!(in >> e.slots[i])) return reject();
      }
      have_slots = true;
    } else if (field == "end") {
      have_end = true;
      break;
    } else {
      return reject();  // unknown field: corrupt or future-version file
    }
  }
  if (!have_slots || !have_end) return reject();  // truncated
  if (file_key != hex_key(key)) return reject();  // renamed/mismatched file
  if (e.ii <= 0 || e.scheduler.empty()) return reject();
  if (static_cast<int>(e.slots.size()) != expect_instrs) return reject();
  return e;
}

void ScheduleCache::store_to_disk(std::uint64_t key, const Entry& entry) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) return;  // persistence is best-effort; memory cache still works

  const std::string path = entry_path(key);
  const std::string tmp = path + ".tmp" +
                          std::to_string(tmp_counter_.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp);
    if (!out) return;
    out << "tmscache v1\n"
        << "key " << hex_key(key) << '\n'
        << "scheduler " << entry.scheduler << '\n'
        << "ii " << entry.ii << '\n'
        << "mii " << entry.mii << '\n'
        << "c_delay_threshold " << entry.c_delay_threshold << '\n';
    char pbuf[64];
    std::snprintf(pbuf, sizeof pbuf, "%.17g", entry.p_max);
    out << "p_max " << pbuf << '\n' << "slots " << entry.slots.size();
    for (const int slot : entry.slots) out << ' ' << slot;
    out << "\nend\n";
    if (!out) {
      out.close();
      fs::remove(tmp, ec);
      return;
    }
  }
  // Atomic publish: readers either see the old complete file or the new
  // complete file, never a partial write. Last concurrent writer wins.
  // Byte accounting and the rename happen under disk_mu_ so the replaced
  // file's size is subtracted exactly once even with concurrent writers.
  {
    const std::lock_guard<std::mutex> lock(disk_mu_);
    const auto old_size = fs::file_size(path, ec);
    const std::uint64_t replaced = ec ? 0 : static_cast<std::uint64_t>(old_size);
    ec.clear();
    const auto new_size = fs::file_size(tmp, ec);
    const std::uint64_t written = ec ? 0 : static_cast<std::uint64_t>(new_size);
    ec.clear();
    fs::rename(tmp, path, ec);
    if (ec) {
      fs::remove(tmp, ec);
      return;
    }
    disk_bytes_.fetch_add(written, std::memory_order_relaxed);
    disk_bytes_.fetch_sub(std::min(replaced, disk_bytes_.load(std::memory_order_relaxed)),
                          std::memory_order_relaxed);
  }
  if (max_disk_bytes_ > 0 && disk_bytes_.load(std::memory_order_relaxed) > max_disk_bytes_) {
    enforce_disk_bound(path);
  }
}

void ScheduleCache::enforce_disk_bound(const std::string& keep) {
  namespace fs = std::filesystem;
  const std::lock_guard<std::mutex> lock(disk_mu_);
  if (disk_bytes_.load(std::memory_order_relaxed) <= max_disk_bytes_) return;

  struct File {
    fs::path path;
    fs::file_time_type mtime;
    std::uint64_t size = 0;
  };
  std::error_code ec;
  std::vector<File> files;
  for (const auto& e : fs::directory_iterator(dir_, ec)) {
    if (!e.is_regular_file(ec) || e.path().extension() != ".tmscache") continue;
    if (!keep.empty() && e.path() == fs::path(keep)) continue;
    File f;
    f.path = e.path();
    f.mtime = e.last_write_time(ec);
    f.size = static_cast<std::uint64_t>(e.file_size(ec));
    files.push_back(std::move(f));
  }
  // Oldest write first — the disk analogue of LRU under write-through
  // (every insert rewrites its file, refreshing the mtime).
  std::sort(files.begin(), files.end(),
            [](const File& a, const File& b) { return a.mtime < b.mtime; });
  for (const File& f : files) {
    if (disk_bytes_.load(std::memory_order_relaxed) <= max_disk_bytes_) break;
    fs::remove(f.path, ec);
    if (ec) continue;
    disk_bytes_.fetch_sub(std::min(f.size, disk_bytes_.load(std::memory_order_relaxed)),
                          std::memory_order_relaxed);
    disk_evictions_.fetch_add(1, std::memory_order_relaxed);
    obs::counters().driver_cache_evictions_disk.add(1);
  }
}

ScheduleCache::Stats ScheduleCache::stats() const {
  Stats s;
  s.memory_hits = memory_hits_.load(std::memory_order_relaxed);
  s.disk_hits = disk_hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.disk_rejects = disk_rejects_.load(std::memory_order_relaxed);
  s.disk_evictions = disk_evictions_.load(std::memory_order_relaxed);
  s.disk_bytes = disk_bytes_.load(std::memory_order_relaxed);
  s.capacity = capacity_;
  s.max_disk_bytes = max_disk_bytes_;
  return s;
}

}  // namespace tms::driver
