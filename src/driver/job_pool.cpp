#include "driver/job_pool.hpp"

#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "support/assert.hpp"

namespace tms::driver {

bool StealDeque::pop(std::size_t& out) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  bottom_.store(b, std::memory_order_relaxed);
  // The fence orders the bottom_ store against the top_ load below; a
  // concurrent thief issues the mirror-image fence in steal(), so at
  // least one of the two sees the other's write and they cannot both
  // claim the last element without going through the CAS.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_relaxed);
  if (t <= b) {
    out = buf_[static_cast<std::size_t>(b)];
    if (t == b) {
      // Last element: race the thieves for it.
      const bool won = top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                                    std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }
  bottom_.store(b + 1, std::memory_order_relaxed);  // deque was empty; restore
  return false;
}

StealDeque::Steal StealDeque::steal(std::size_t& out) {
  std::int64_t t = top_.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_acquire);
  if (t >= b) return Steal::kEmpty;
  // Safe to read before the CAS: the buffer is immutable while workers
  // run, so a lost race only means `job` goes unused.
  const std::size_t job = buf_[static_cast<std::size_t>(t)];
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    return Steal::kLost;
  }
  out = job;
  return Steal::kStole;
}

JobPool::JobPool(int threads) : threads_(threads > 0 ? threads : default_threads()) {}

int JobPool::default_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

void JobPool::run(std::size_t count, const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const int nworkers = threads_;

  // std::deque: StealDeque holds atomics and is neither movable nor
  // copyable, and deque never relocates its elements.
  std::deque<StealDeque> deques;
  const std::size_t per_worker =
      (count + static_cast<std::size_t>(nworkers) - 1) / static_cast<std::size_t>(nworkers);
  for (int w = 0; w < nworkers; ++w) deques.emplace_back(per_worker);
  for (std::size_t i = 0; i < count; ++i) {
    deques[i % static_cast<std::size_t>(nworkers)].seed(i);
  }

  std::mutex error_mu;
  std::exception_ptr first_error;

  auto worker = [&](int id) {
    auto execute = [&](std::size_t job) {
      try {
        body(job);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    };
    for (;;) {
      std::size_t job;
      if (deques[static_cast<std::size_t>(id)].pop(job)) {
        execute(job);
        continue;
      }
      // Own deque drained: sweep the others. Exit only after a full
      // sweep in which every deque reported empty — a lost CAS means
      // work may remain, so sweep again.
      bool all_empty = true;
      bool stole = false;
      for (int k = 1; k < nworkers && !stole; ++k) {
        const int victim = (id + k) % nworkers;
        switch (deques[static_cast<std::size_t>(victim)].steal(job)) {
          case StealDeque::Steal::kStole:
            stole = true;
            break;
          case StealDeque::Steal::kLost:
            all_empty = false;
            break;
          case StealDeque::Steal::kEmpty:
            break;
        }
      }
      if (stole) {
        execute(job);
        continue;
      }
      if (all_empty) return;  // no queued work anywhere; jobs never respawn
    }
  };

  std::vector<std::thread> helpers;
  helpers.reserve(static_cast<std::size_t>(nworkers - 1));
  for (int id = 1; id < nworkers; ++id) helpers.emplace_back(worker, id);
  worker(0);
  for (std::thread& t : helpers) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

TaskPool::TaskState TaskPool::Task::state() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

bool TaskPool::Task::cancel() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (state_ != TaskState::kQueued) return false;
  state_ = TaskState::kCancelled;
  fn_ = nullptr;  // drop captures eagerly; the body will never run
  cv_.notify_all();
  return true;
}

void TaskPool::Task::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return finished_locked(); });
}

bool TaskPool::Task::wait_until(std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_until(lock, deadline, [&] { return finished_locked(); });
}

void TaskPool::Task::rethrow() {
  std::exception_ptr err;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    err = error_;
  }
  if (err) std::rethrow_exception(err);
}

TaskPool::TaskPool(int threads, std::size_t queue_capacity)
    : capacity_(queue_capacity > 0 ? queue_capacity : 1) {
  const int n = threads > 0 ? threads : JobPool::default_threads();
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

TaskPool::~TaskPool() { shutdown(Drain::kCancelQueued); }

std::shared_ptr<TaskPool::Task> TaskPool::try_submit(std::function<void()> fn) {
  auto task = std::make_shared<Task>();
  task->fn_ = std::move(fn);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || queue_.size() >= capacity_) return nullptr;
    queue_.push_back(task);
  }
  cv_.notify_one();
  return task;
}

std::size_t TaskPool::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void TaskPool::shutdown(Drain mode) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_) {
      shutdown_ = true;
      finish_queued_ = mode == Drain::kFinishQueued;
      if (!finish_queued_) {
        for (const std::shared_ptr<Task>& t : queue_) t->cancel();
        queue_.clear();
      }
    }
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void TaskPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Task> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::function<void()> body;
    {
      const std::lock_guard<std::mutex> lock(task->mu_);
      if (task->state_ != TaskState::kQueued) continue;  // cancelled while queued
      task->state_ = TaskState::kRunning;
      body = std::move(task->fn_);
      task->fn_ = nullptr;
    }
    std::exception_ptr error;
    try {
      body();
    } catch (...) {
      error = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(task->mu_);
      task->error_ = error;
      task->state_ = error ? TaskState::kFailed : TaskState::kDone;
      task->cv_.notify_all();
    }
  }
}

}  // namespace tms::driver
