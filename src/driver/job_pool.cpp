#include "driver/job_pool.hpp"

#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "support/assert.hpp"

namespace tms::driver {

bool StealDeque::pop(std::size_t& out) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  bottom_.store(b, std::memory_order_relaxed);
  // The fence orders the bottom_ store against the top_ load below; a
  // concurrent thief issues the mirror-image fence in steal(), so at
  // least one of the two sees the other's write and they cannot both
  // claim the last element without going through the CAS.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_relaxed);
  if (t <= b) {
    out = buf_[static_cast<std::size_t>(b)];
    if (t == b) {
      // Last element: race the thieves for it.
      const bool won = top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                                    std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }
  bottom_.store(b + 1, std::memory_order_relaxed);  // deque was empty; restore
  return false;
}

StealDeque::Steal StealDeque::steal(std::size_t& out) {
  std::int64_t t = top_.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_acquire);
  if (t >= b) return Steal::kEmpty;
  // Safe to read before the CAS: the buffer is immutable while workers
  // run, so a lost race only means `job` goes unused.
  const std::size_t job = buf_[static_cast<std::size_t>(t)];
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    return Steal::kLost;
  }
  out = job;
  return Steal::kStole;
}

JobPool::JobPool(int threads) : threads_(threads > 0 ? threads : default_threads()) {}

int JobPool::default_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

void JobPool::run(std::size_t count, const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const int nworkers = threads_;

  // std::deque: StealDeque holds atomics and is neither movable nor
  // copyable, and deque never relocates its elements.
  std::deque<StealDeque> deques;
  const std::size_t per_worker =
      (count + static_cast<std::size_t>(nworkers) - 1) / static_cast<std::size_t>(nworkers);
  for (int w = 0; w < nworkers; ++w) deques.emplace_back(per_worker);
  for (std::size_t i = 0; i < count; ++i) {
    deques[i % static_cast<std::size_t>(nworkers)].seed(i);
  }

  std::mutex error_mu;
  std::exception_ptr first_error;

  auto worker = [&](int id) {
    auto execute = [&](std::size_t job) {
      try {
        body(job);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    };
    for (;;) {
      std::size_t job;
      if (deques[static_cast<std::size_t>(id)].pop(job)) {
        execute(job);
        continue;
      }
      // Own deque drained: sweep the others. Exit only after a full
      // sweep in which every deque reported empty — a lost CAS means
      // work may remain, so sweep again.
      bool all_empty = true;
      bool stole = false;
      for (int k = 1; k < nworkers && !stole; ++k) {
        const int victim = (id + k) % nworkers;
        switch (deques[static_cast<std::size_t>(victim)].steal(job)) {
          case StealDeque::Steal::kStole:
            stole = true;
            break;
          case StealDeque::Steal::kLost:
            all_empty = false;
            break;
          case StealDeque::Steal::kEmpty:
            break;
        }
      }
      if (stole) {
        execute(job);
        continue;
      }
      if (all_empty) return;  // no queued work anywhere; jobs never respawn
    }
  };

  std::vector<std::thread> helpers;
  helpers.reserve(static_cast<std::size_t>(nworkers - 1));
  for (int id = 1; id < nworkers; ++id) helpers.emplace_back(worker, id);
  worker(0);
  for (std::thread& t : helpers) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace tms::driver
