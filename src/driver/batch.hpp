// Parallel batch-compilation driver.
//
// Runs the full per-loop pipeline — schedule (SMS/IMS/TMS), measure,
// independently validate (check/validate), lower, cross-check the kernel
// program, optionally simulate on the SpMT machine and run the
// differential oracle — over a batch of (loop, config, scheduler) jobs
// on a work-stealing JobPool, consulting a content-addressed
// ScheduleCache so repeated sweeps hit instead of recompute.
//
// Determinism contract: BatchReport::to_json(/*include_volatile=*/false)
// is a pure function of the jobs and options — byte-identical across
// thread counts and cache states. Everything that legitimately varies
// between runs (wall-clock times, cache hit flags, thread count) is
// emitted only under include_volatile. Per-job randomness (simulation
// address streams, oracle streams) is derived from the batch seed and
// the job's submission index, never from a generator shared across jobs,
// so results do not depend on execution interleaving.
//
// Failure isolation: a job that fails — scheduling, validation, the
// oracle, or an exception escaping any stage — produces a JobResult with
// the failure recorded; it never poisons the rest of the batch.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "driver/schedule_cache.hpp"
#include "ir/loop.hpp"
#include "machine/machine.hpp"
#include "machine/spmt_config.hpp"
#include "obs/counters.hpp"
#include "sched/postpass.hpp"

namespace tms::driver {

struct BatchJob {
  std::string name;        ///< report label (loop or benchmark name)
  ir::Loop loop;
  machine::SpmtConfig cfg;
  std::string scheduler = "tms";  ///< "sms", "ims" or "tms"
};

enum class JobStatus {
  kOk,
  kScheduleFail,  ///< the scheduler found no schedule
  kValidateFail,  ///< check::validate_schedule / validate_kernel_program
  kOracleFail,    ///< the differential oracle disagreed
  kError,         ///< malformed input or an exception escaped the job
};

std::string_view to_string(JobStatus s);

struct JobResult {
  std::string name;
  std::string scheduler;
  JobStatus status = JobStatus::kError;
  std::string detail;            ///< failure message; empty when ok
  sched::LoopMetrics metrics;    ///< valid when scheduling succeeded
  bool cache_hit = false;
  std::int64_t sim_cycles = -1;  ///< -1 when simulation was not requested
  std::int64_t sim_misspecs = -1;
  std::int64_t sim_sync_stalls = -1;
  double wall_ms = 0.0;          ///< volatile; excluded from canonical JSON
};

struct BatchOptions {
  int jobs = 0;                    ///< worker threads; 0 = hardware_concurrency
  bool validate = true;            ///< run check::validate_* on every schedule
  std::int64_t simulate_iterations = 0;  ///< 0 disables SpMT simulation
  bool run_oracle = false;
  std::int64_t oracle_iterations = 96;
  std::uint64_t seed = 42;         ///< batch seed; per-job streams fork from it
};

struct BatchReport {
  std::vector<JobResult> results;  ///< in submission order, always
  ScheduleCache::Stats cache;      ///< zero stats when no cache was used
  /// Observability counters accumulated by this batch's own work (the
  /// delta around run_batch, so earlier activity in the process is
  /// excluded).
  obs::CountersSnapshot counters;
  double wall_ms = 0.0;
  int threads = 0;

  int count(JobStatus s) const;

  /// Human-readable table + summary (support/table).
  std::string to_text() const;

  /// Machine-readable report. With include_volatile=false the output is
  /// byte-identical across thread counts (timings, cache hit flags and
  /// cache stats are omitted). Counters measure work actually performed,
  /// so they are cache-state-dependent (a warm cache schedules nothing);
  /// pass include_counters=false to compare reports across cache states.
  std::string to_json(bool include_volatile = true, bool include_counters = true) const;
};

/// Runs the batch. `mach` must outlive the call; `cache` may be null to
/// disable caching. Jobs execute in parallel; results land at the index
/// of their job.
BatchReport run_batch(const std::vector<BatchJob>& jobs, const machine::MachineModel& mach,
                      const BatchOptions& opts, ScheduleCache* cache);

}  // namespace tms::driver
