#include "driver/batch.hpp"

#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "check/oracle.hpp"
#include "check/validate.hpp"
#include "codegen/kernel_program.hpp"
#include "driver/job_pool.hpp"
#include "obs/trace.hpp"
#include "sched/ims.hpp"
#include "sched/sms.hpp"
#include "sched/tms.hpp"
#include "spmt/address.hpp"
#include "spmt/sim.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace tms::driver {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Deterministic per-job stream seed: a pure function of the batch seed
/// and the submission index (one generator per job — nothing is shared
/// across jobs, so the result cannot depend on scheduling interleaving).
std::uint64_t job_stream_seed(std::uint64_t batch_seed, std::size_t index) {
  support::SplitMix64 sm(batch_seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  return sm.next();
}

struct ScheduledLoop {
  sched::Schedule schedule;
  check::CheckOptions check_opts;  ///< TMS thresholds, or disabled for SMS/IMS
  int mii = 0;
};

/// Reconstructs a schedule from a cache entry; nullopt when the entry is
/// semantically corrupt (slots violating the modulo constraints).
std::optional<ScheduledLoop> from_cache(const ir::Loop& loop, const machine::MachineModel& mach,
                                        const ScheduleCache::Entry& e) {
  sched::Schedule s(loop, mach, e.ii);
  for (int v = 0; v < loop.num_instrs(); ++v) {
    s.set_slot(v, e.slots[static_cast<std::size_t>(v)]);
  }
  if (s.validate().has_value()) return std::nullopt;
  ScheduledLoop out{std::move(s), {}, e.mii};
  out.check_opts.c_delay_threshold = e.c_delay_threshold;
  out.check_opts.p_max = e.p_max;
  return out;
}

std::optional<ScheduledLoop> schedule_fresh(const ir::Loop& loop,
                                            const machine::MachineModel& mach,
                                            const machine::SpmtConfig& cfg,
                                            const std::string& scheduler) {
  if (scheduler == "sms") {
    if (auto r = sched::sms_schedule(loop, mach)) {
      return ScheduledLoop{std::move(r->schedule), {}, r->mii};
    }
    return std::nullopt;
  }
  if (scheduler == "ims") {
    if (auto r = sched::ims_schedule(loop, mach)) {
      return ScheduledLoop{std::move(r->schedule), {}, r->mii};
    }
    return std::nullopt;
  }
  if (scheduler == "tms") {
    if (auto r = sched::tms_schedule(loop, mach, cfg)) {
      ScheduledLoop out{std::move(r->schedule), {}, r->mii};
      out.check_opts.c_delay_threshold = r->c_delay_threshold;
      out.check_opts.p_max = r->p_max;
      return out;
    }
    return std::nullopt;
  }
  throw std::invalid_argument("unknown scheduler '" + scheduler + "'");
}

ScheduleCache::Entry to_entry(const ScheduledLoop& sl, const std::string& scheduler) {
  ScheduleCache::Entry e;
  e.scheduler = scheduler;
  e.ii = sl.schedule.ii();
  e.mii = sl.mii;
  e.c_delay_threshold = sl.check_opts.c_delay_threshold;
  e.p_max = sl.check_opts.p_max;
  const int n = sl.schedule.loop().num_instrs();
  e.slots.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) e.slots.push_back(sl.schedule.slot(v));
  return e;
}

JobResult run_single(const BatchJob& job, const machine::MachineModel& mach,
                     const BatchOptions& opts, ScheduleCache* cache, std::size_t index) {
  const Clock::time_point start = Clock::now();
  // Logical position for every event this job records: one context per
  // submission index, whichever worker thread runs it — this is what
  // makes the canonical trace thread-count-invariant.
  obs::ScopedContext ctx(obs::kCtxJob, static_cast<std::int32_t>(index));
  TMS_TRACE_SPAN(span, "driver", "driver.job");
  TMS_TRACE_SPAN_ARG(span, obs::targ("name", obs::intern(job.name)),
                     obs::targ("scheduler", obs::intern(job.scheduler)),
                     obs::targ("index", index));
  obs::counters().driver_jobs.add(1);
  JobResult r;
  r.name = job.name;
  r.scheduler = job.scheduler;
  try {
    if (const auto err = job.loop.validate()) {
      r.status = JobStatus::kError;
      r.detail = "malformed loop: " + *err;
      r.wall_ms = ms_since(start);
      return r;
    }

    std::optional<ScheduledLoop> sl;
    std::uint64_t key = 0;
    if (cache != nullptr) {
      key = ScheduleCache::key(job.loop, mach, job.cfg, job.scheduler);
      if (const auto entry = cache->lookup(key, job.loop.num_instrs())) {
        sl = from_cache(job.loop, mach, *entry);
        r.cache_hit = sl.has_value();
        // A well-formed but semantically corrupt entry falls through to
        // a fresh schedule below and is overwritten on insert.
      }
      obs::counters().driver_cache_hits.add(sl.has_value() ? 1 : 0);
      obs::counters().driver_cache_misses.add(sl.has_value() ? 0 : 1);
    }
    if (!sl.has_value()) {
      sl = schedule_fresh(job.loop, mach, job.cfg, job.scheduler);
      if (!sl.has_value()) {
        r.status = JobStatus::kScheduleFail;
        r.detail = job.scheduler + " found no schedule";
        r.wall_ms = ms_since(start);
        return r;
      }
      if (cache != nullptr) {
        cache->insert(key, to_entry(*sl, job.scheduler));
        obs::counters().driver_schedules_cached.add(1);
      }
    }

    r.metrics = sched::measure(sl->schedule, job.cfg);

    // Cache hits are always re-validated, even with opts.validate off:
    // reconstruction already proved the modulo constraints, but the full
    // checker also covers resources, normalisation and the thresholds —
    // the defence against semantic disk corruption.
    if (opts.validate || r.cache_hit) {
      const check::CheckReport valid =
          check::validate_schedule(sl->schedule, job.cfg, sl->check_opts);
      if (!valid.ok()) {
        if (r.cache_hit) {
          // Corrupt cached entry that still satisfied the dependence
          // constraints: recompute from scratch, once.
          r.cache_hit = false;
          sl = schedule_fresh(job.loop, mach, job.cfg, job.scheduler);
          if (!sl.has_value()) {
            r.status = JobStatus::kScheduleFail;
            r.detail = job.scheduler + " found no schedule";
            r.wall_ms = ms_since(start);
            return r;
          }
          if (cache != nullptr) {
            cache->insert(key, to_entry(*sl, job.scheduler));
            obs::counters().driver_schedules_cached.add(1);
          }
          r.metrics = sched::measure(sl->schedule, job.cfg);
          const check::CheckReport revalid =
              check::validate_schedule(sl->schedule, job.cfg, sl->check_opts);
          if (!revalid.ok()) {
            r.status = JobStatus::kValidateFail;
            r.detail = "validator: " + revalid.to_string();
            r.wall_ms = ms_since(start);
            return r;
          }
        } else {
          r.status = JobStatus::kValidateFail;
          r.detail = "validator: " + valid.to_string();
          r.wall_ms = ms_since(start);
          return r;
        }
      }
    }

    const bool need_kernel = opts.validate || opts.simulate_iterations > 0;
    if (need_kernel) {
      const codegen::KernelProgram kp = codegen::lower_kernel(sl->schedule, job.cfg);
      if (opts.validate) {
        const check::CheckReport lowered =
            check::validate_kernel_program(kp, sl->schedule, job.cfg);
        if (!lowered.ok()) {
          r.status = JobStatus::kValidateFail;
          r.detail = "kernel program: " + lowered.to_string();
          r.wall_ms = ms_since(start);
          return r;
        }
      }
      if (opts.simulate_iterations > 0) {
        const spmt::AddressStreams streams =
            spmt::default_streams(job.loop, job_stream_seed(opts.seed, index));
        spmt::SpmtOptions sopts;
        sopts.iterations = opts.simulate_iterations;
        sopts.keep_memory = false;
        const spmt::SpmtStats stats =
            spmt::run_spmt(job.loop, kp, job.cfg, streams, sopts).stats;
        r.sim_cycles = stats.total_cycles;
        r.sim_misspecs = stats.misspeculations;
        r.sim_sync_stalls = stats.sync_stall_cycles;
      }
    }

    if (opts.run_oracle) {
      check::OracleOptions oopts;
      oopts.iterations = opts.oracle_iterations;
      oopts.stream_seed = job_stream_seed(opts.seed ^ 0x07ac1e0ULL, index);
      const check::OracleReport oracle =
          check::run_differential_oracle(job.loop, sl->schedule, job.cfg, oopts);
      if (!oracle.ok()) {
        r.status = JobStatus::kOracleFail;
        r.detail = "oracle: " + oracle.to_string();
        r.wall_ms = ms_since(start);
        return r;
      }
    }

    r.status = JobStatus::kOk;
  } catch (const std::exception& ex) {
    r.status = JobStatus::kError;
    r.detail = ex.what();
  } catch (...) {
    r.status = JobStatus::kError;
    r.detail = "unknown exception";
  }
  r.wall_ms = ms_since(start);
  return r;
}

void emit_result(support::JsonWriter& w, const JobResult& r, bool include_volatile) {
  w.begin_object();
  w.member("name", r.name);
  w.member("scheduler", r.scheduler);
  w.member("status", std::string(to_string(r.status)));
  w.member("detail", r.detail);
  const bool scheduled = r.status == JobStatus::kOk || r.status == JobStatus::kValidateFail ||
                         r.status == JobStatus::kOracleFail;
  if (scheduled) {
    w.key("metrics").begin_object();
    w.member("instrs", r.metrics.num_instrs);
    w.member("mii", r.metrics.mii);
    w.member("ii", r.metrics.ii);
    w.member("max_live", r.metrics.max_live);
    w.member("c_delay", r.metrics.c_delay);
    w.member("stages", r.metrics.stages);
    w.member("copies", r.metrics.copies);
    w.member("comm_pairs", r.metrics.comm_pairs);
    w.member("misspec_probability", r.metrics.misspec_probability);
    w.end_object();
  } else {
    w.key("metrics").value_null();
  }
  if (r.sim_cycles >= 0) {
    w.key("sim").begin_object();
    w.member("cycles", r.sim_cycles);
    w.member("misspeculations", r.sim_misspecs);
    w.member("sync_stall_cycles", r.sim_sync_stalls);
    w.end_object();
  }
  if (include_volatile) {
    w.member("cache_hit", r.cache_hit);
    w.member("wall_ms", r.wall_ms);
  }
  w.end_object();
}

}  // namespace

std::string_view to_string(JobStatus s) {
  switch (s) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kScheduleFail: return "schedule-fail";
    case JobStatus::kValidateFail: return "validate-fail";
    case JobStatus::kOracleFail: return "oracle-fail";
    case JobStatus::kError: return "error";
  }
  return "?";
}

int BatchReport::count(JobStatus s) const {
  int n = 0;
  for (const JobResult& r : results) {
    if (r.status == s) ++n;
  }
  return n;
}

std::string BatchReport::to_text() const {
  support::TextTable t({"Name", "Sched", "Status", "II", "MII", "MaxLive", "Cdelay", "P_M",
                        "Cycles", "Cache"});
  using TT = support::TextTable;
  for (const JobResult& r : results) {
    const bool scheduled = r.status != JobStatus::kScheduleFail && r.status != JobStatus::kError;
    t.add_row({r.name, r.scheduler, std::string(to_string(r.status)),
               scheduled ? std::to_string(r.metrics.ii) : "-",
               scheduled ? std::to_string(r.metrics.mii) : "-",
               scheduled ? std::to_string(r.metrics.max_live) : "-",
               scheduled ? std::to_string(r.metrics.c_delay) : "-",
               scheduled ? TT::num(r.metrics.misspec_probability, 4) : "-",
               r.sim_cycles >= 0 ? std::to_string(r.sim_cycles) : "-",
               r.cache_hit ? "hit" : "miss"});
  }
  std::string out = t.render();
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "\n%zu job(s): %d ok, %d schedule-fail, %d validate-fail, %d oracle-fail, "
                "%d error; %d thread(s), %.1f ms\n",
                results.size(), count(JobStatus::kOk), count(JobStatus::kScheduleFail),
                count(JobStatus::kValidateFail), count(JobStatus::kOracleFail),
                count(JobStatus::kError), threads, wall_ms);
  out += buf;
  const std::uint64_t probes = cache.hits() + cache.misses;
  if (probes > 0) {
    std::snprintf(buf, sizeof buf,
                  "cache: %.1f%% hit rate (%llu memory + %llu disk hit(s), %llu miss(es), "
                  "%llu eviction(s), %llu corrupt entr%s rejected)\n",
                  100.0 * cache.hit_rate(), (unsigned long long)cache.memory_hits,
                  (unsigned long long)cache.disk_hits, (unsigned long long)cache.misses,
                  (unsigned long long)cache.evictions, (unsigned long long)cache.disk_rejects,
                  cache.disk_rejects == 1 ? "y" : "ies");
    out += buf;
  }
  return out;
}

std::string BatchReport::to_json(bool include_volatile, bool include_counters) const {
  support::JsonWriter w;
  w.begin_object();
  w.member("schema", "tmsbatch-v1");
  w.key("jobs").begin_array();
  for (const JobResult& r : results) emit_result(w, r, include_volatile);
  w.end_array();

  support::RunningStat ii, c_delay, misspec;
  for (const JobResult& r : results) {
    if (r.status != JobStatus::kOk) continue;
    ii.add(r.metrics.ii);
    c_delay.add(r.metrics.c_delay);
    misspec.add(r.metrics.misspec_probability);
  }
  w.key("summary").begin_object();
  w.member("jobs", static_cast<std::int64_t>(results.size()));
  w.member("ok", count(JobStatus::kOk));
  w.member("schedule_fail", count(JobStatus::kScheduleFail));
  w.member("validate_fail", count(JobStatus::kValidateFail));
  w.member("oracle_fail", count(JobStatus::kOracleFail));
  w.member("error", count(JobStatus::kError));
  w.member("ii_mean", ii.mean());
  w.member("ii_max", ii.max());
  w.member("c_delay_mean", c_delay.mean());
  w.member("c_delay_max", c_delay.max());
  w.member("misspec_probability_mean", misspec.mean());
  w.end_object();

  if (include_counters) {
    w.key("observability");
    obs::write_counters_json(w, counters);
  }

  if (include_volatile) {
    w.key("timing").begin_object();
    w.member("wall_ms", wall_ms);
    w.member("threads", threads);
    w.end_object();
    w.key("cache").begin_object();
    w.member("memory_hits", cache.memory_hits);
    w.member("disk_hits", cache.disk_hits);
    w.member("misses", cache.misses);
    w.member("inserts", cache.inserts);
    w.member("evictions", cache.evictions);
    w.member("disk_rejects", cache.disk_rejects);
    w.member("hit_rate", cache.hit_rate());
    w.end_object();
  }
  w.end_object();
  return w.str();
}

BatchReport run_batch(const std::vector<BatchJob>& jobs, const machine::MachineModel& mach,
                      const BatchOptions& opts, ScheduleCache* cache) {
  const Clock::time_point start = Clock::now();
  BatchReport report;
  report.results.resize(jobs.size());

  JobPool pool(opts.jobs);
  report.threads = pool.threads();
  const obs::CountersSnapshot before = obs::counters_snapshot();
  pool.run(jobs.size(), [&](std::size_t i) {
    report.results[i] = run_single(jobs[i], mach, opts, cache, i);
  });
  report.counters = obs::snapshot_delta(before, obs::counters_snapshot());

  if (cache != nullptr) report.cache = cache->stats();
  report.wall_ms = ms_since(start);
  return report;
}

}  // namespace tms::driver
