#include "router/ring.hpp"

#include <algorithm>

#include "driver/schedule_cache.hpp"

namespace tms::router {

namespace {

/// Splitmix64 finalizer. FNV-1a of short, similar strings ("b0#17") is
/// far from uniform in its high bits, and ring arcs are carved by the
/// FULL 64-bit value — without this remix a 4-backend/64-vnode ring
/// hands one backend ~60% of the keyspace (HashRing.BalanceAcrossBackends
/// pins the fixed spread down). Keys get the same treatment so their
/// positions are independent of the point positions.
std::uint64_t remix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t point_hash(const std::string& node, int i) {
  return remix(driver::ScheduleCache::fnv1a(node + "#" + std::to_string(i)));
}

}  // namespace

HashRing::HashRing(int vnodes) : vnodes_(vnodes < 1 ? 1 : vnodes) {}

void HashRing::add(const std::string& node) {
  if (node.empty() || contains(node)) return;
  points_.reserve(points_.size() + static_cast<std::size_t>(vnodes_));
  for (int i = 0; i < vnodes_; ++i) points_.emplace_back(point_hash(node, i), node);
  std::sort(points_.begin(), points_.end());
  ++nodes_;
}

void HashRing::remove(const std::string& node) {
  const auto it = std::remove_if(points_.begin(), points_.end(),
                                 [&](const auto& p) { return p.second == node; });
  if (it == points_.end()) return;
  points_.erase(it, points_.end());
  --nodes_;
}

bool HashRing::contains(const std::string& node) const {
  for (const auto& p : points_) {
    if (p.second == node) return true;
  }
  return false;
}

std::string HashRing::primary(std::uint64_t key) const {
  const auto owners = successors(key, 1);
  return owners.empty() ? std::string() : owners.front();
}

std::vector<std::string> HashRing::successors(std::uint64_t key, std::size_t n) const {
  std::vector<std::string> out;
  if (points_.empty() || n == 0) return out;
  const std::uint64_t h = remix(key);
  auto it = std::lower_bound(points_.begin(), points_.end(),
                             std::make_pair(h, std::string()));
  const std::size_t want = std::min(n, nodes_);
  out.reserve(want);
  for (std::size_t walked = 0; walked < points_.size() && out.size() < want; ++walked) {
    if (it == points_.end()) it = points_.begin();
    const std::string& node = it->second;
    if (std::find(out.begin(), out.end(), node) == out.end()) out.push_back(node);
    ++it;
  }
  return out;
}

}  // namespace tms::router
