#include "router/cluster.hpp"

#include <utility>

namespace tms::router {

LocalCluster::LocalCluster(const machine::MachineModel& mach, LocalClusterOptions opts)
    : mach_(mach), opts_(std::move(opts)) {}

LocalCluster::~LocalCluster() { stop(); }

std::optional<std::string> LocalCluster::start() {
  if (started_) return std::string("already started");
  if (opts_.backends < 1) return std::string("need at least one backend");
  if (opts_.dir.empty()) return std::string("dir is required");

  backend_sockets_.clear();
  for (int i = 0; i < opts_.backends; ++i) {
    backend_sockets_.push_back(opts_.dir + "/b" + std::to_string(i) + ".sock");
  }
  router_socket_ = opts_.dir + "/router.sock";

  for (int i = 0; i < opts_.backends; ++i) {
    auto shard = std::make_unique<Shard>();
    if (opts_.cache_capacity > 0) {
      shard->cache = std::make_unique<driver::ScheduleCache>(opts_.cache_capacity);
    }

    serve::ServiceOptions sopts;
    sopts.threads = opts_.threads_per_backend;
    sopts.queue_capacity = opts_.queue_capacity;
    sopts.retry_after_ms = opts_.retry_after_ms;
    sopts.validate = opts_.validate;
    if (opts_.peer_fill && opts_.backends > 1 && shard->cache != nullptr) {
      // All-to-all: ask every other shard in fixed order. One fresh
      // connection per probe keeps the hook trivially thread-safe; a
      // dead peer answers with a fast connect error and counts as a
      // miss.
      std::vector<std::string> peers;
      for (int j = 0; j < opts_.backends; ++j) {
        if (j != i) peers.push_back(backend_sockets_[static_cast<std::size_t>(j)]);
      }
      const int timeout_ms = opts_.peer_timeout_ms;
      sopts.peer_fill = [peers, timeout_ms](std::uint64_t key, int expect_instrs)
          -> std::optional<driver::ScheduleCache::Entry> {
        for (const std::string& peer : peers) {
          serve::Client client;
          if (client.connect_unix(peer, timeout_ms).has_value()) continue;
          std::optional<driver::ScheduleCache::Entry> entry;
          if (client.peek({key, expect_instrs}, entry).has_value()) continue;
          if (entry.has_value()) return entry;
        }
        return std::nullopt;
      };
    }
    shard->service =
        std::make_unique<serve::CompileService>(mach_, shard->cache.get(), sopts);

    serve::ServerOptions svopts;
    svopts.unix_path = backend_sockets_[static_cast<std::size_t>(i)];
    shard->server = std::make_unique<serve::SocketServer>(*shard->service, svopts);
    if (auto err = shard->server->start()) {
      shards_.push_back(std::move(shard));  // so stop() tears down what exists
      stop();
      return "backend " + std::to_string(i) + ": " + *err;
    }
    shards_.push_back(std::move(shard));
  }

  RouterOptions ropts = opts_.router;
  ropts.backends = backend_sockets_;
  router_ = std::make_unique<Router>(mach_, ropts);
  if (auto err = router_->start()) {
    stop();
    return "router: " + *err;
  }
  serve::ServerOptions svopts;
  svopts.unix_path = router_socket_;
  router_server_ = std::make_unique<serve::SocketServer>(*router_, svopts);
  if (auto err = router_server_->start()) {
    stop();
    return "router server: " + *err;
  }
  started_ = true;
  return std::nullopt;
}

void LocalCluster::stop() {
  // Same drain order as the daemons: transport first, then the brain —
  // admitted work always completes.
  if (router_ != nullptr) router_->begin_drain();
  if (router_server_ != nullptr) router_server_->drain();
  if (router_ != nullptr) router_->stop();
  router_server_.reset();
  router_.reset();
  for (auto& shard : shards_) {
    if (shard->server != nullptr) shard->server->drain();
    if (shard->service != nullptr) shard->service->shutdown();
  }
  shards_.clear();
  started_ = false;
}

}  // namespace tms::router
