// In-process cluster harness: N tmsd-shaped backends behind a Router.
//
// loadgen --cluster, the benchgate cluster-scaling scenario, and
// router_test all need the same topology — N CompileServices, each with
// its own ScheduleCache and SocketServer on a Unix socket, all-to-all
// peer-fill wiring, and a Router (also behind a SocketServer) in front
// — without forking processes. LocalCluster builds exactly that, over
// real sockets, so everything except process isolation matches the
// tmsd/tmsrouter deployment (tests/router_smoke.sh covers the
// real-process version, including kill -9).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "driver/schedule_cache.hpp"
#include "machine/machine.hpp"
#include "router/router.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace tms::router {

struct LocalClusterOptions {
  int backends = 2;
  int threads_per_backend = 1;        ///< compile workers per shard
  std::size_t queue_capacity = 64;    ///< per-shard admission high-water mark
  std::int64_t retry_after_ms = 5;    ///< per-shard overload backoff hint
  /// Per-shard in-memory ScheduleCache entry bound; 0 = no cache at
  /// all (every request schedules fresh — honest scaling numbers).
  std::size_t cache_capacity = 1 << 16;
  bool peer_fill = true;              ///< all-to-all PEEK wiring between shards
  int peer_timeout_ms = 1000;
  bool validate = true;
  /// Directory for the Unix sockets ("b<i>.sock", "router.sock");
  /// must exist and be short enough for sockaddr_un.
  std::string dir;
  RouterOptions router;               ///< backends/vnodes filled in by start()
};

class LocalCluster {
 public:
  /// `mach` must outlive the cluster.
  LocalCluster(const machine::MachineModel& mach, LocalClusterOptions opts);
  ~LocalCluster();

  LocalCluster(const LocalCluster&) = delete;
  LocalCluster& operator=(const LocalCluster&) = delete;

  /// Brings up every backend, then the router. Returns a failure
  /// description, or nullopt.
  std::optional<std::string> start();

  /// Router first (stop routing), then the backends. Idempotent.
  void stop();

  const std::string& router_socket() const { return router_socket_; }
  const std::string& backend_socket(int i) const { return backend_sockets_[static_cast<std::size_t>(i)]; }
  int backends() const { return static_cast<int>(backend_sockets_.size()); }

  Router& router() { return *router_; }
  serve::CompileService& service(int i) { return *shards_[static_cast<std::size_t>(i)]->service; }
  driver::ScheduleCache* cache(int i) { return shards_[static_cast<std::size_t>(i)]->cache.get(); }

 private:
  struct Shard {
    std::unique_ptr<driver::ScheduleCache> cache;
    std::unique_ptr<serve::CompileService> service;
    std::unique_ptr<serve::SocketServer> server;
  };

  const machine::MachineModel& mach_;
  LocalClusterOptions opts_;
  std::vector<std::string> backend_sockets_;
  std::string router_socket_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<Router> router_;
  std::unique_ptr<serve::SocketServer> router_server_;
  bool started_ = false;
};

}  // namespace tms::router
