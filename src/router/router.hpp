// The tmsrouter core: shard selection, failover, and health tracking.
//
// Router implements serve::Handler, so the tmsrouter daemon is the
// stock SocketServer transport in front of this class — same framing,
// same STATS/HEALTH side channels, same drain semantics as tmsd. What
// it does with a request is route instead of compute:
//
//   1. Key the request with driver::ScheduleCache::key — the same
//      content hash the backends' caches use, so a loop always lands
//      on the shard whose cache is warm for it.
//   2. Walk the consistent-hash ring's successors, skipping ejected
//      backends. Forward to the first candidate.
//   3. A kOverload answer is retried on the same backend up to
//      `retries` times (sleeping the backend's own retry_after_ms
//      hint, clamped); if the shard stays saturated the request hedges
//      to the next ring replica. Transport failures and kShutdown
//      (draining backend) hedge immediately.
//   4. Every candidate exhausted: answer kOverload if any backend said
//      overload (the cluster is saturated, not broken), else kInternal
//      with router.no_backend counted.
//
// Health: a background prober drives the existing HEALTH verb against
// every backend each probe_interval_ms (fanned out on a
// driver::TaskPool so one hung backend cannot stall the sweep). After
// `eject_after` consecutive failures a backend is ejected — skipped by
// the ring walk — and one successful probe readmits it. Forward-path
// transport errors count toward the same consecutive-failure threshold
// so a killed backend stops receiving traffic within a request or two,
// not a probe period (tests/router_smoke.sh kills one mid-load and
// requires zero client-visible failures).
//
// Yavits et al. frame why the router publishes what it does: the
// synchronization (retries, hedges, probe traffic) and communication
// (per-backend round-trip TimeHistograms vs the shard's own compute
// time) overheads are exactly what erodes linear multicore scaling, so
// they are first-class metrics — router.* counters in the registry and
// a per-backend split in the tmsrouter-stats-v1 snapshot.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "driver/job_pool.hpp"
#include "machine/machine.hpp"
#include "obs/counters.hpp"
#include "router/ring.hpp"
#include "serve/client.hpp"
#include "serve/handler.hpp"

namespace tms::router {

struct RouterOptions {
  /// Backend addresses: a Unix socket path (contains '/') or
  /// "host:port" for loopback TCP.
  std::vector<std::string> backends;
  int vnodes = 64;                    ///< ring points per backend
  int retries = 2;                    ///< extra same-backend sends on overload
  int hedges = 2;                     ///< additional ring replicas to try
  std::int64_t retry_sleep_cap_ms = 200;  ///< clamp on honoured retry_after_ms hints
  int backend_timeout_ms = 30000;     ///< per-send/recv timeout on forwards
  std::int64_t probe_interval_ms = 250;
  int probe_timeout_ms = 2000;
  int eject_after = 2;                ///< consecutive failures before ejection
  int probe_threads = 0;              ///< prober fan-out; 0 = min(4, backends)
  std::int64_t retry_after_ms = 100;  ///< hint on router-minted overload answers
  std::size_t pool_per_backend = 16;  ///< idle connections kept per backend
};

class Router : public serve::Handler {
 public:
  /// `mach` must outlive the router and must match the backends' model
  /// (the content key covers the machine description, so a mismatch
  /// would route consistently but defeat cache affinity).
  Router(const machine::MachineModel& mach, RouterOptions opts);
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Runs one synchronous probe sweep (so a dead backend configured at
  /// boot is ejected before the first request) and starts the
  /// background prober. Returns a failure description, or nullopt.
  std::optional<std::string> start();

  /// Stops the prober and closes pooled connections. Idempotent.
  void stop();

  /// Refuse new requests from now on (kShutdown), like a draining
  /// tmsd. STATS/HEALTH/PEEK side channels keep answering.
  void begin_drain() { draining_.store(true, std::memory_order_release); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  serve::Response handle(const serve::Request& req, std::string_view peer) override;
  std::string stats_json() const override;
  std::string health_line() const override;
  std::int64_t retry_after_ms() const override { return opts_.retry_after_ms; }

  /// The CLUSTER_STATS payload: fans STATS out to every configured
  /// backend (fresh connections, probe timeout, ejected backends
  /// included — STATS is a side channel a draining shard still answers)
  /// and merges the counter registries into one cluster-stats-v1
  /// snapshot. Histogram merging is bucket-wise addition, which is
  /// exact: the aggregate carries the same percentile information one
  /// process observing all the traffic would have. Backends that fail
  /// to answer appear with ok:false and are excluded from the
  /// aggregate. Answered during drain, like STATS/HEALTH.
  std::string cluster_stats_json() const override;

  /// The cluster metrics dump (tmsrouter --metrics-dump): the router's
  /// own registry plus every reachable backend's, rendered as one
  /// Prometheus exposition with per-shard `shard="<address>"` labels
  /// (the router is shard="router"). Lints clean against
  /// obs::lint_prometheus_text.
  std::string cluster_prometheus_text() const;

  /// Test/introspection hooks.
  struct BackendSnapshot {
    std::string address;
    bool healthy = true;
    int consecutive_failures = 0;
    std::uint64_t forwarded = 0;        ///< requests answered by this backend
    std::uint64_t transport_errors = 0;
    std::uint64_t latency_count = 0;    ///< forward round trips recorded
    std::uint64_t latency_sum_us = 0;
  };
  std::vector<BackendSnapshot> backends_snapshot() const;
  std::size_t healthy_count() const;
  const HashRing& ring() const { return ring_; }
  /// One synchronous probe sweep (the prober does this on a timer).
  void probe_now();

 private:
  /// One backend's answer to a CLUSTER_STATS fan-out.
  struct ShardStats {
    std::string address;
    bool healthy = true;            ///< router's health view (prober/forwards)
    int consecutive_failures = 0;
    bool ok = false;                ///< this fan-out round trip succeeded
    std::string error;              ///< when !ok: what failed
    std::string raw_json;           ///< the backend's verbatim STATS payload
    obs::CountersSnapshot snapshot; ///< parsed "observability" section
  };
  std::vector<ShardStats> fetch_shard_stats() const;

  struct Backend {
    std::string address;
    std::atomic<bool> healthy{true};
    std::atomic<int> consecutive_failures{0};
    std::atomic<std::uint64_t> forwarded{0};
    std::atomic<std::uint64_t> transport_errors{0};
    obs::TimeHistogram latency;
    std::mutex pool_mu;
    std::vector<std::unique_ptr<serve::Client>> idle;
  };

  Backend* backend(const std::string& address);
  const Backend* backend(const std::string& address) const;
  /// One forward on one backend; a stale pooled connection gets one
  /// fresh-connection retry before the error counts as a failure.
  std::optional<serve::Response> forward(Backend& b, const serve::Request& req);
  std::unique_ptr<serve::Client> acquire(Backend& b, std::string* error);
  void release(Backend& b, std::unique_ptr<serve::Client> client);
  void mark_failure(Backend& b);
  void mark_success(Backend& b);
  bool probe_one(Backend& b);
  void prober_loop();

  const machine::MachineModel& mach_;
  RouterOptions opts_;
  HashRing ring_;
  std::vector<std::unique_ptr<Backend>> backends_;
  /// Probe fan-out (declared after backends_: destroyed, and therefore
  /// drained, first).
  std::unique_ptr<driver::TaskPool> probe_pool_;
  std::atomic<bool> draining_{false};
  const std::chrono::steady_clock::time_point started_;

  std::mutex prober_mu_;
  std::condition_variable prober_cv_;
  bool prober_stop_ = false;
  std::thread prober_;
};

}  // namespace tms::router
