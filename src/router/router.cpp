#include "router/router.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <thread>
#include <utility>

#include "driver/schedule_cache.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "support/json.hpp"
#include "support/json_parse.hpp"

namespace tms::router {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t us_since(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start).count();
}

/// "host:port" (numeric port, no '/') is TCP; anything else is a Unix
/// socket path.
bool split_tcp_address(const std::string& address, std::string& host, int& port) {
  if (address.find('/') != std::string::npos) return false;
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == address.size()) return false;
  const std::string port_s = address.substr(colon + 1);
  char* end = nullptr;
  errno = 0;
  const long p = std::strtol(port_s.c_str(), &end, 10);
  if (errno != 0 || end != port_s.c_str() + port_s.size() || p < 1 || p > 65535) return false;
  host = address.substr(0, colon);
  port = static_cast<int>(p);
  return true;
}

std::optional<std::string> connect_client(serve::Client& client, const std::string& address,
                                          int timeout_ms) {
  std::string host;
  int port = 0;
  if (split_tcp_address(address, host, port)) {
    return client.connect_tcp(host, port, timeout_ms);
  }
  return client.connect_unix(address, timeout_ms);
}

}  // namespace

Router::Router(const machine::MachineModel& mach, RouterOptions opts)
    : mach_(mach), opts_(std::move(opts)), ring_(opts_.vnodes), started_(Clock::now()) {
  for (const std::string& address : opts_.backends) {
    if (backend(address) != nullptr) continue;  // ignore duplicates
    auto b = std::make_unique<Backend>();
    b->address = address;
    backends_.push_back(std::move(b));
    ring_.add(address);
  }
  int threads = opts_.probe_threads;
  if (threads <= 0) threads = std::min<int>(4, std::max<int>(1, static_cast<int>(backends_.size())));
  probe_pool_ = std::make_unique<driver::TaskPool>(threads, std::max<std::size_t>(1, backends_.size()));
}

Router::~Router() { stop(); }

std::optional<std::string> Router::start() {
  if (backends_.empty()) return std::string("no backends configured");
  if (prober_.joinable()) return std::string("already started");
  probe_now();
  {
    const std::lock_guard<std::mutex> lock(prober_mu_);
    prober_stop_ = false;
  }
  if (opts_.probe_interval_ms > 0) {
    prober_ = std::thread([this] { prober_loop(); });
  }
  return std::nullopt;
}

void Router::stop() {
  {
    const std::lock_guard<std::mutex> lock(prober_mu_);
    prober_stop_ = true;
  }
  prober_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
  for (auto& b : backends_) {
    const std::lock_guard<std::mutex> lock(b->pool_mu);
    b->idle.clear();
  }
}

Router::Backend* Router::backend(const std::string& address) {
  for (auto& b : backends_) {
    if (b->address == address) return b.get();
  }
  return nullptr;
}

const Router::Backend* Router::backend(const std::string& address) const {
  for (const auto& b : backends_) {
    if (b->address == address) return b.get();
  }
  return nullptr;
}

std::unique_ptr<serve::Client> Router::acquire(Backend& b, std::string* error) {
  {
    const std::lock_guard<std::mutex> lock(b.pool_mu);
    if (!b.idle.empty()) {
      auto client = std::move(b.idle.back());
      b.idle.pop_back();
      return client;
    }
  }
  auto client = std::make_unique<serve::Client>();
  if (auto err = connect_client(*client, b.address, opts_.backend_timeout_ms)) {
    if (error != nullptr) *error = std::move(*err);
    return nullptr;
  }
  return client;
}

void Router::release(Backend& b, std::unique_ptr<serve::Client> client) {
  if (client == nullptr || !client->connected()) return;
  const std::lock_guard<std::mutex> lock(b.pool_mu);
  if (b.idle.size() < opts_.pool_per_backend) b.idle.push_back(std::move(client));
}

void Router::mark_failure(Backend& b) {
  const int failures = b.consecutive_failures.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (failures >= opts_.eject_after &&
      b.healthy.exchange(false, std::memory_order_acq_rel)) {
    obs::counters().router_ejections.add(1);
  }
}

void Router::mark_success(Backend& b) {
  b.consecutive_failures.store(0, std::memory_order_release);
  if (!b.healthy.exchange(true, std::memory_order_acq_rel)) {
    obs::counters().router_readmissions.add(1);
  }
}

std::optional<serve::Response> Router::forward(Backend& b, const serve::Request& req) {
  // A pooled connection may have been closed under us (backend idle
  // timeout, restart): one fresh-connection retry before the error is
  // real. `fresh` is true once the client cannot be stale.
  bool fresh;
  for (int attempt = 0; attempt < 2; ++attempt) {
    fresh = attempt > 0;
    std::string connect_error;
    std::unique_ptr<serve::Client> client;
    if (fresh) {
      client = std::make_unique<serve::Client>();
      if (auto err = connect_client(*client, b.address, opts_.backend_timeout_ms)) {
        connect_error = std::move(*err);
        client = nullptr;
      }
    } else {
      client = acquire(b, &connect_error);
      // acquire() only connects fresh when the pool is empty; treat a
      // connect failure as final rather than retrying the same connect.
      if (client == nullptr) fresh = true;
    }
    if (client == nullptr) {
      if (!fresh) continue;
      obs::counters().router_transport_errors.add(1);
      b.transport_errors.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }

    const Clock::time_point t0 = Clock::now();
    auto result = client->compile(req);
    if (auto* resp = std::get_if<serve::Response>(&result)) {
      const auto us = static_cast<std::uint64_t>(us_since(t0));
      b.latency.record_us(us);
      obs::counters().router_latency_backend.record_us(us);
      release(b, std::move(client));
      return std::move(*resp);
    }
    if (fresh) break;
  }
  obs::counters().router_transport_errors.add(1);
  b.transport_errors.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

serve::Response Router::handle(const serve::Request& req, std::string_view /*peer*/) {
  const Clock::time_point start = Clock::now();
  obs::Counters& c = obs::counters();
  c.router_requests.add(1);

  // Root of the cluster trace. A client-supplied context is continued;
  // otherwise the router mints a fresh trace id, so every backend hop
  // below is stitchable even when the client did not ask for tracing.
  // The ids are echoed back only when the client sent a trace_id —
  // pre-change clients never see the response fields.
  const bool client_traced = req.trace_id != 0;
  obs::ScopedTraceContext tctx(client_traced ? req.trace_id : obs::mint_id(),
                               req.parent_span_id);
  TMS_TRACE_SPAN(span, "router", "router.request");

  const auto finish = [&](serve::Response resp) {
    c.router_latency_total.record_us(static_cast<std::uint64_t>(us_since(start)));
    if (resp.ok) {
      c.router_responses_ok.add(1);
    } else {
      c.router_responses_error.add(1);
    }
    resp.trace_id = client_traced ? tctx.trace_id() : 0;
    resp.span_id = client_traced ? tctx.span_id() : 0;
    return resp;
  };

  if (draining()) {
    return finish(serve::make_error(req.id, serve::ErrorCode::kShutdown, "router is draining"));
  }

  // The same content hash the shard's ScheduleCache will use — cache
  // affinity is the entire routing policy.
  machine::SpmtConfig cfg;
  cfg.ncore = req.ncore;
  const std::uint64_t key = driver::ScheduleCache::key(req.loop, mach_, cfg, req.scheduler);
  const std::vector<std::string> candidates =
      ring_.successors(key, static_cast<std::size_t>(1 + std::max(0, opts_.hedges)));

  // The request forwarded to backends always carries the trace context
  // (the leg span's id becomes the backend's parent), so backend-side
  // serve.* spans stitch under this router's leg spans in one file.
  serve::Request fwd = req;
  fwd.trace_id = tctx.trace_id();

  bool saw_overload = false;
  bool tried_any = false;
  for (const std::string& name : candidates) {
    Backend* b = backend(name);
    if (b == nullptr) continue;
    if (!b->healthy.load(std::memory_order_acquire)) continue;
    const bool is_hedge = tried_any;
    if (tried_any) c.router_hedges.add(1);
    tried_any = true;

    bool hedge = false;
    for (int attempt = 0; !hedge; ++attempt) {
      std::optional<serve::Response> resp;
      {
        // One span per wire attempt: first try, same-backend overload
        // retries, and hedge legs each get their own.
        TMS_TRACE_SPAN(leg_span, "router", "router.forward");
        TMS_TRACE_SPAN_ARG(leg_span, obs::targ("backend", obs::intern(name)),
                           obs::targ("attempt", attempt),
                           obs::targ("hedge", std::int64_t{is_hedge ? 1 : 0}));
        const std::uint64_t leg_id = TMS_TRACE_SPAN_ID(leg_span);
        fwd.parent_span_id = leg_id != 0 ? leg_id : tctx.span_id();
        resp = forward(*b, fwd);
      }
      if (!resp.has_value()) {
        // Transport failure: counts toward ejection so a killed
        // backend stops receiving traffic ahead of the next probe.
        mark_failure(*b);
        hedge = true;
        break;
      }
      mark_success(*b);
      if (!resp->ok && resp->code == serve::ErrorCode::kOverload) {
        saw_overload = true;
        if (attempt >= opts_.retries) {
          hedge = true;  // shard stayed saturated; try the next replica
          break;
        }
        c.router_retries.add(1);
        const std::int64_t sleep_ms =
            std::clamp<std::int64_t>(resp->retry_after_ms, 1, opts_.retry_sleep_cap_ms);
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
        continue;
      }
      if (!resp->ok && resp->code == serve::ErrorCode::kShutdown) {
        // Draining backend: stop sending it work, let the prober eject
        // it, and answer from a replica.
        hedge = true;
        break;
      }
      b->forwarded.fetch_add(1, std::memory_order_relaxed);
      return finish(std::move(*resp));
    }
  }

  if (saw_overload) {
    return finish(serve::make_error(req.id, serve::ErrorCode::kOverload,
                                    "every candidate shard is saturated",
                                    opts_.retry_after_ms));
  }
  c.router_no_backend.add(1);
  return finish(serve::make_error(req.id, serve::ErrorCode::kInternal,
                                  "no healthy backend for this key"));
}

bool Router::probe_one(Backend& b) {
  obs::counters().router_probes.add(1);
  serve::Client client;
  if (connect_client(client, b.address, opts_.probe_timeout_ms).has_value()) return false;
  std::string line;
  if (client.health(line).has_value()) return false;
  // A draining backend reports "draining ..." — it refuses compile
  // work, so for routing purposes it is down.
  return line.rfind("ok", 0) == 0;
}

void Router::probe_now() {
  std::vector<std::shared_ptr<driver::TaskPool::Task>> tasks(backends_.size());
  std::vector<char> up(backends_.size(), 0);
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    Backend* b = backends_[i].get();
    char* out = &up[i];
    tasks[i] = probe_pool_->try_submit([this, b, out] { *out = probe_one(*b) ? 1 : 0; });
    if (tasks[i] == nullptr) *out = probe_one(*b) ? 1 : 0;  // pool full: probe inline
  }
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (tasks[i] != nullptr) tasks[i]->wait();
    if (up[i] != 0) {
      mark_success(*backends_[i]);
    } else {
      obs::counters().router_probe_failures.add(1);
      mark_failure(*backends_[i]);
    }
  }
}

void Router::prober_loop() {
  std::unique_lock<std::mutex> lock(prober_mu_);
  while (!prober_stop_) {
    const auto interval = std::chrono::milliseconds(std::max<std::int64_t>(1, opts_.probe_interval_ms));
    if (prober_cv_.wait_for(lock, interval, [this] { return prober_stop_; })) break;
    lock.unlock();
    probe_now();
    lock.lock();
  }
}

std::size_t Router::healthy_count() const {
  std::size_t n = 0;
  for (const auto& b : backends_) {
    if (b->healthy.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

std::vector<Router::BackendSnapshot> Router::backends_snapshot() const {
  std::vector<BackendSnapshot> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) {
    BackendSnapshot s;
    s.address = b->address;
    s.healthy = b->healthy.load(std::memory_order_acquire);
    s.consecutive_failures = b->consecutive_failures.load(std::memory_order_acquire);
    s.forwarded = b->forwarded.load(std::memory_order_relaxed);
    s.transport_errors = b->transport_errors.load(std::memory_order_relaxed);
    std::uint64_t count = 0;
    for (const std::uint64_t v : b->latency.values()) count += v;
    s.latency_count = count;
    s.latency_sum_us = b->latency.sum_us();
    out.push_back(std::move(s));
  }
  return out;
}

std::string Router::stats_json() const {
  support::JsonWriter w;
  w.begin_object();
  w.member("schema", "tmsrouter-stats-v1");
  w.member("uptime_ms",
           std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - started_).count());
  w.member("draining", draining());
  w.member("backends_total", static_cast<std::uint64_t>(backends_.size()));
  w.member("backends_healthy", static_cast<std::uint64_t>(healthy_count()));
  w.key("backends");
  w.begin_array();
  for (const BackendSnapshot& s : backends_snapshot()) {
    w.begin_object();
    w.member("address", s.address);
    w.member("healthy", s.healthy);
    w.member("consecutive_failures", s.consecutive_failures);
    w.member("forwarded", s.forwarded);
    w.member("transport_errors", s.transport_errors);
    w.key("latency");
    w.begin_object();
    w.member("count", s.latency_count);
    w.member("sum_us", s.latency_sum_us);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("observability");
  obs::write_counters_json(w, obs::counters_snapshot());
  w.end_object();
  return w.str();
}

std::vector<Router::ShardStats> Router::fetch_shard_stats() const {
  // Fresh connection per backend on the probe timeout: the pooled
  // forward connections stay dedicated to compile traffic, and one hung
  // backend bounds the snapshot delay at probe_timeout_ms, not the
  // 30s forward timeout. Ejected and draining backends are still asked
  // — STATS is a side channel they keep answering.
  std::vector<ShardStats> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) {
    ShardStats s;
    s.address = b->address;
    s.healthy = b->healthy.load(std::memory_order_acquire);
    s.consecutive_failures = b->consecutive_failures.load(std::memory_order_acquire);
    serve::Client client;
    if (auto err = connect_client(client, b->address, opts_.probe_timeout_ms)) {
      s.error = std::move(*err);
    } else if (auto err = client.stats(s.raw_json)) {
      s.error = std::move(*err);
    } else {
      auto parsed = support::parse_json(s.raw_json);
      if (auto* perr = std::get_if<std::string>(&parsed)) {
        s.error = "malformed stats payload: " + *perr;
        s.raw_json.clear();
      } else {
        const support::JsonValue& v = std::get<support::JsonValue>(parsed);
        const support::JsonValue* observability = v.find("observability");
        if (observability == nullptr) {
          s.error = "stats payload has no observability section";
          s.raw_json.clear();
        } else {
          s.snapshot = obs::snapshot_from_json(*observability);
          s.ok = true;
        }
      }
    }
    if (!s.ok) obs::counters().router_cluster_fanout_errors.add(1);
    out.push_back(std::move(s));
  }
  return out;
}

std::string Router::cluster_stats_json() const {
  obs::counters().router_cluster_stats_fanouts.add(1);
  const std::vector<ShardStats> shards = fetch_shard_stats();

  obs::CountersSnapshot aggregate;
  std::uint64_t shards_ok = 0;
  for (const ShardStats& s : shards) {
    if (!s.ok) continue;
    ++shards_ok;
    obs::snapshot_accumulate(aggregate, s.snapshot);
  }

  support::JsonWriter w;
  w.begin_object();
  w.member("schema", "cluster-stats-v1");
  w.member("source", "tmsrouter");
  w.member("draining", draining());
  w.member("shards_total", static_cast<std::uint64_t>(shards.size()));
  w.member("shards_ok", shards_ok);
  w.key("shards");
  w.begin_array();
  for (const ShardStats& s : shards) {
    w.begin_object();
    w.member("address", s.address);
    w.member("healthy", s.healthy);
    w.member("consecutive_failures", s.consecutive_failures);
    w.member("ok", s.ok);
    if (!s.ok) {
      w.member("error", s.error);
    } else {
      w.key("stats").raw_value(s.raw_json);
    }
    w.end_object();
  }
  w.end_array();
  w.key("aggregate");
  obs::write_counters_json(w, aggregate);
  w.end_object();
  return w.str();
}

std::string Router::cluster_prometheus_text() const {
  obs::counters().router_cluster_stats_fanouts.add(1);
  std::vector<std::pair<std::string, obs::CountersSnapshot>> labelled;
  labelled.emplace_back("router", obs::counters_snapshot());
  for (ShardStats& s : fetch_shard_stats()) {
    if (!s.ok) continue;  // unreachable shards are visible in cluster_stats_json
    labelled.emplace_back(std::move(s.address), std::move(s.snapshot));
  }
  return obs::write_prometheus_text_sharded(labelled);
}

std::string Router::health_line() const {
  const bool d = draining();
  std::string out = d ? "draining" : "ok";
  out += " uptime_ms=" +
         std::to_string(
             std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - started_).count());
  out += " backends=" + std::to_string(backends_.size());
  out += " healthy=" + std::to_string(healthy_count());
  out += " draining=";
  out += d ? '1' : '0';
  return out;
}

}  // namespace tms::router
