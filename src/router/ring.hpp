// Consistent-hash ring over tmsd backends, keyed by schedule-cache keys.
//
// Each backend contributes `vnodes` points (FNV-1a of "name#i") on a
// 64-bit ring; a key is routed to the first point clockwise from its
// (remixed) hash. Virtual nodes smooth the load split, and consistency
// is the whole reason to bother: adding or removing one backend moves
// only the keys whose arc it owned — about 1/N of them — so the other
// shards keep their warm ScheduleCaches (router_test pins this down).
//
// The ring itself is static data; membership changes (add/remove) are
// topology changes. Health-driven ejection is deliberately NOT a ring
// operation — the Router walks successors() and skips ejected backends,
// which keeps key movement zero when a backend bounces.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tms::router {

class HashRing {
 public:
  explicit HashRing(int vnodes = 64);

  void add(const std::string& node);
  void remove(const std::string& node);
  bool contains(const std::string& node) const;

  /// Distinct backends on the ring.
  std::size_t size() const { return nodes_; }
  int vnodes() const { return vnodes_; }

  /// The owning backend for `key` (empty when the ring is empty).
  std::string primary(std::uint64_t key) const;

  /// Up to `n` distinct backends in ring order starting at the owner.
  /// Replica 1 is the ring sibling — the hedge target, and the peer a
  /// shard PEEKs after a topology change moved keys onto it.
  std::vector<std::string> successors(std::uint64_t key, std::size_t n) const;

 private:
  int vnodes_;
  std::size_t nodes_ = 0;
  /// Sorted by point hash; ties broken by name so the walk is total.
  std::vector<std::pair<std::uint64_t, std::string>> points_;
};

}  // namespace tms::router
