#include "serve/frame.hpp"

#include <cstring>

namespace tms::serve {

bool frame_type_known(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kRequest) &&
         t <= static_cast<std::uint8_t>(FrameType::kFlightReply);
}

std::string_view to_string(FrameType t) {
  switch (t) {
    case FrameType::kRequest: return "request";
    case FrameType::kResponse: return "response";
    case FrameType::kPing: return "ping";
    case FrameType::kPong: return "pong";
    case FrameType::kStats: return "stats";
    case FrameType::kStatsReply: return "stats-reply";
    case FrameType::kHealth: return "health";
    case FrameType::kHealthReply: return "health-reply";
    case FrameType::kPeek: return "peek";
    case FrameType::kPeekReply: return "peek-reply";
    case FrameType::kClusterStats: return "cluster-stats";
    case FrameType::kClusterStatsReply: return "cluster-stats-reply";
    case FrameType::kFlight: return "flight";
    case FrameType::kFlightReply: return "flight-reply";
  }
  return "?";
}

std::string_view to_string(FrameError e) {
  switch (e) {
    case FrameError::kNone: return "none";
    case FrameError::kBadMagic: return "bad-magic";
    case FrameError::kBadVersion: return "bad-version";
    case FrameError::kBadType: return "bad-type";
    case FrameError::kBadFlags: return "bad-flags";
    case FrameError::kOversize: return "oversize";
  }
  return "?";
}

std::string encode_frame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.append(kFrameMagic, sizeof kFrameMagic);
  out.push_back(static_cast<char>(kProtocolVersion));
  out.push_back(static_cast<char>(type));
  out.push_back('\0');  // flags lo
  out.push_back('\0');  // flags hi
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  out.append(payload);
  return out;
}

void FrameReader::feed(std::string_view bytes) { buf_.append(bytes); }

FrameReader::Next FrameReader::next(Frame& out) {
  if (error_ != FrameError::kNone) return Next::kError;
  if (buf_.size() < kFrameHeaderSize) return Next::kNeedMore;

  const unsigned char* h = reinterpret_cast<const unsigned char*>(buf_.data());
  if (std::memcmp(h, kFrameMagic, sizeof kFrameMagic) != 0) {
    error_ = FrameError::kBadMagic;
    return Next::kError;
  }
  if (h[4] != kProtocolVersion) {
    error_ = FrameError::kBadVersion;
    return Next::kError;
  }
  if (!frame_type_known(h[5])) {
    error_ = FrameError::kBadType;
    return Next::kError;
  }
  if (h[6] != 0 || h[7] != 0) {
    error_ = FrameError::kBadFlags;
    return Next::kError;
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(h[8 + i]) << (8 * i);
  if (len > max_payload_) {
    error_ = FrameError::kOversize;
    return Next::kError;
  }
  if (buf_.size() < kFrameHeaderSize + len) return Next::kNeedMore;

  out.type = static_cast<FrameType>(h[5]);
  out.payload.assign(buf_, kFrameHeaderSize, len);
  buf_.erase(0, kFrameHeaderSize + len);
  return Next::kFrame;
}

}  // namespace tms::serve
