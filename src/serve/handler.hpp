// The request-handler seam between the transport and a service.
//
// SocketServer speaks the TMSQ wire protocol; what answers a parsed
// frame is a Handler. CompileService (one tmsd shard doing real
// scheduling work) and router::Router (a tmsrouter fronting many
// shards) both implement it, which is what lets the router reuse the
// transport byte-for-byte: same framing, same side channels, same
// drain behaviour.
//
// This header also carries the PEEK payload codec. PEEK (frame type 9)
// is the cache peer-fill side channel (docs/ROUTING.md): a shard that
// misses its ScheduleCache asks a ring sibling whether it already
// holds the entry before recomputing. Like STATS/HEALTH it is answered
// inline on the connection thread — never queued, never compile work,
// still answered while draining — so a probe can never be starved by a
// full compile queue.
//
//   tmsq-peek-v1            tmsq-peek-reply-v1
//   key <16-hex>            status hit|miss
//   instrs <N>              [scheduler/ii/mii/c_delay_threshold/p_max/slots]
//                           end
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "driver/schedule_cache.hpp"
#include "serve/message.hpp"

namespace tms::serve {

class Handler {
 public:
  virtual ~Handler();

  /// Answer one compile request; must be safe from any number of
  /// connection threads concurrently and must never throw.
  virtual Response handle(const Request& req, std::string_view peer) = 0;

  /// The STATS payload: one canonical-JSON snapshot.
  virtual std::string stats_json() const = 0;

  /// The HEALTH payload: one line, first token "ok" or "draining".
  virtual std::string health_line() const = 0;

  /// The PEEK_REPLY payload for a PEEK probe. The default is a
  /// well-formed miss — correct for handlers without a cache tier of
  /// their own (the router never answers peer-fill on a shard's
  /// behalf; siblings are asked directly).
  virtual std::string peek_reply(std::string_view payload);

  /// The CLUSTER_STATS payload. Meaningful on a router, which fans out
  /// to every backend and merges the registries into one
  /// cluster-stats-v1 snapshot; the default is a one-shard
  /// degenerate snapshot wrapping stats_json(), so the verb works
  /// (and keeps its schema) pointed directly at a tmsd.
  virtual std::string cluster_stats_json() const;

  /// The FLIGHT_REPLY payload: the handler's flight-recorder dump
  /// (tmsd-flight-v1). The default is a well-formed empty dump —
  /// correct for handlers that record no flights (the router).
  virtual std::string flight_json() const;

  /// Backoff hint the transport attaches to connection-limit
  /// turn-aways.
  virtual std::int64_t retry_after_ms() const = 0;
};

struct PeekQuery {
  std::uint64_t key = 0;
  int expect_instrs = 0;
};

std::string serialise_peek(const PeekQuery& q);
std::variant<PeekQuery, std::string> parse_peek(std::string_view payload);

/// nullopt = miss.
std::string serialise_peek_reply(const std::optional<driver::ScheduleCache::Entry>& entry);
std::variant<std::optional<driver::ScheduleCache::Entry>, std::string> parse_peek_reply(
    std::string_view payload);

}  // namespace tms::serve
