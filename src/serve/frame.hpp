// Length-prefixed framing for the tmsd wire protocol.
//
// Every message on a tmsd connection is one frame: a fixed 12-byte
// header followed by an opaque payload. The header is deliberately
// boring — magic, version, type, reserved flags, length — because the
// parser faces the network and is fuzz-tested (tmsfuzz --frames): every
// field is validated before a single payload byte is trusted, and the
// payload length is capped so a hostile length prefix cannot make the
// reader allocate unboundedly.
//
//   offset  size  field
//   0       4     magic "TMSQ"
//   4       1     protocol version (currently 1)
//   5       1     frame type (FrameType)
//   6       2     flags, little-endian, must be zero in v1
//   8       4     payload length, little-endian, <= max_payload
//
// FrameReader is incremental: feed() it whatever recv() produced and
// pull complete frames out with next(). A malformed header poisons the
// reader (kError) — framing cannot be resynchronised once the byte
// stream is broken, so the connection must be dropped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace tms::serve {

inline constexpr char kFrameMagic[4] = {'T', 'M', 'S', 'Q'};
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 12;
/// Default payload cap: far above any realistic loop, far below "the
/// length prefix said 4 GiB".
inline constexpr std::uint32_t kMaxPayloadBytes = 16u << 20;

enum class FrameType : std::uint8_t {
  kRequest = 1,      ///< client -> server: compile request payload
  kResponse = 2,     ///< server -> client: schedule or structured error
  kPing = 3,         ///< client -> server: liveness probe, empty payload
  kPong = 4,         ///< server -> client: liveness reply, empty payload
  kStats = 5,        ///< client -> server: metrics snapshot probe, empty payload
  kStatsReply = 6,   ///< server -> client: canonical-JSON snapshot payload
  kHealth = 7,       ///< client -> server: health probe, empty payload
  kHealthReply = 8,  ///< server -> client: one-line health summary payload
  // Cache peer-fill side channel (docs/ROUTING.md). Same contract as
  // STATS/HEALTH (5..8): never queued, answered even while draining. A
  // PEEK asks "do you hold this schedule-cache key?"; the reply carries
  // the cached entry or a miss, and the asked shard never recomputes.
  kPeek = 9,         ///< client -> server: tmsq-peek-v1 cache probe payload
  kPeekReply = 10,   ///< server -> client: tmsq-peek-reply-v1 hit/miss payload
  // Cluster-telemetry side channel (docs/ROUTING.md, docs/SERVING.md).
  // Same inline contract as STATS/HEALTH/PEEK: never queued, answered
  // even while draining. CLUSTER_STATS on a router fans out to every
  // backend and merges their registries into one cluster-stats-v1
  // snapshot; FLIGHT dumps the daemon's in-memory flight recorder as
  // tmsd-flight-v1.
  kClusterStats = 11,       ///< client -> server: cluster snapshot probe, empty payload
  kClusterStatsReply = 12,  ///< server -> client: cluster-stats-v1 JSON payload
  kFlight = 13,             ///< client -> server: flight-recorder probe, empty payload
  kFlightReply = 14,        ///< server -> client: tmsd-flight-v1 JSON payload
};

bool frame_type_known(std::uint8_t t);
std::string_view to_string(FrameType t);

struct Frame {
  FrameType type = FrameType::kRequest;
  std::string payload;
};

/// Header + payload, ready to write to a socket.
std::string encode_frame(FrameType type, std::string_view payload);

enum class FrameError {
  kNone,
  kBadMagic,
  kBadVersion,
  kBadType,
  kBadFlags,
  kOversize,  ///< length prefix above the reader's payload cap
};

std::string_view to_string(FrameError e);

class FrameReader {
 public:
  explicit FrameReader(std::uint32_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload) {}

  /// Appends raw bytes from the transport. Cheap; no parsing happens
  /// until next().
  void feed(std::string_view bytes);

  enum class Next {
    kFrame,     ///< out holds a complete frame
    kNeedMore,  ///< no complete frame buffered yet
    kError,     ///< stream is broken; error() names the reason
  };

  /// Extracts the next complete frame. After kError every further call
  /// returns kError — the stream cannot be trusted again.
  Next next(Frame& out);

  FrameError error() const { return error_; }

  /// Bytes buffered but not yet consumed (a partial frame in flight).
  std::size_t pending_bytes() const { return buf_.size(); }

 private:
  std::uint32_t max_payload_;
  std::string buf_;
  FrameError error_ = FrameError::kNone;
};

}  // namespace tms::serve
