#include "serve/handler.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/counters.hpp"
#include "support/json.hpp"

namespace tms::serve {

namespace {

constexpr std::string_view kPeekHeader = "tmsq-peek-v1";
constexpr std::string_view kPeekReplyHeader = "tmsq-peek-reply-v1";

bool next_line(std::string_view& rest, std::string_view& line) {
  if (rest.empty()) return false;
  const std::size_t nl = rest.find('\n');
  if (nl == std::string_view::npos) {
    line = rest;
    rest = {};
  } else {
    line = rest.substr(0, nl);
    rest = rest.substr(nl + 1);
  }
  return true;
}

void split_kv(std::string_view line, std::string_view& key, std::string_view& value) {
  const std::size_t sp = line.find(' ');
  if (sp == std::string_view::npos) {
    key = line;
    value = {};
  } else {
    key = line.substr(0, sp);
    value = line.substr(sp + 1);
  }
}

bool parse_hex_u64(std::string_view s, std::uint64_t& out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    int d;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  out = v;
  return true;
}

bool parse_int(std::string_view s, int& out) {
  if (s.empty()) return false;
  const std::string tmp(s);
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(tmp.c_str(), &end, 10);
  if (errno != 0 || end != tmp.c_str() + tmp.size() || v < INT32_MIN || v > INT32_MAX) {
    return false;
  }
  out = static_cast<int>(v);
  return true;
}

bool parse_double(std::string_view s, double& out) {
  if (s.empty()) return false;
  const std::string tmp(s);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tmp.c_str(), &end);
  if (errno != 0 || end != tmp.c_str() + tmp.size()) return false;
  out = v;
  return true;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

Handler::~Handler() = default;

std::string Handler::peek_reply(std::string_view /*payload*/) {
  return serialise_peek_reply(std::nullopt);
}

std::string Handler::cluster_stats_json() const {
  // Degenerate one-shard cluster: the verb answers with the same schema
  // whether it reaches a router or a lone daemon, so tmstop --cluster
  // can be pointed at either.
  support::JsonWriter w;
  w.begin_object();
  w.member("schema", "cluster-stats-v1");
  w.member("source", "single");
  w.member("draining", false);
  w.member("shards_total", 1);
  w.member("shards_ok", 1);
  w.key("shards").begin_array();
  w.begin_object();
  w.member("address", "self");
  w.member("healthy", true);
  w.member("ok", true);
  w.key("stats").raw_value(stats_json());
  w.end_object();
  w.end_array();
  w.key("aggregate");
  obs::write_counters_json(w, obs::counters_snapshot());
  w.end_object();
  return w.str();
}

std::string Handler::flight_json() const {
  // Well-formed empty dump for handlers without a flight recorder.
  support::JsonWriter w;
  w.begin_object();
  w.member("schema", "tmsd-flight-v1");
  w.member("capacity", 0);
  w.member("recorded", 0);
  w.member("dropped", 0);
  w.key("records").begin_array().end_array();
  w.end_object();
  return w.str();
}

std::string serialise_peek(const PeekQuery& q) {
  std::string out(kPeekHeader);
  out += "\nkey ";
  out += hex16(q.key);
  out += "\ninstrs ";
  out += std::to_string(q.expect_instrs);
  out += '\n';
  return out;
}

std::variant<PeekQuery, std::string> parse_peek(std::string_view payload) {
  std::string_view rest = payload;
  std::string_view line;
  if (!next_line(rest, line) || line != kPeekHeader) return std::string("bad peek header");
  PeekQuery q;
  bool have_key = false;
  bool have_instrs = false;
  while (next_line(rest, line)) {
    if (line.empty()) continue;  // tolerate the trailing newline
    std::string_view key, value;
    split_kv(line, key, value);
    if (key == "key") {
      if (!parse_hex_u64(value, q.key)) return std::string("bad key");
      have_key = true;
    } else if (key == "instrs") {
      if (!parse_int(value, q.expect_instrs) || q.expect_instrs < 1) {
        return std::string("bad instrs");
      }
      have_instrs = true;
    } else {
      return "unknown peek field '" + std::string(key) + "'";
    }
  }
  if (!have_key || !have_instrs) return std::string("truncated peek");
  return q;
}

std::string serialise_peek_reply(const std::optional<driver::ScheduleCache::Entry>& entry) {
  std::string out(kPeekReplyHeader);
  if (!entry.has_value()) {
    out += "\nstatus miss\nend\n";
    return out;
  }
  out += "\nstatus hit\nscheduler ";
  out += entry->scheduler;
  out += "\nii ";
  out += std::to_string(entry->ii);
  out += "\nmii ";
  out += std::to_string(entry->mii);
  out += "\nc_delay_threshold ";
  out += std::to_string(entry->c_delay_threshold);
  out += "\np_max ";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", entry->p_max);
  out += buf;
  out += "\nslots ";
  out += std::to_string(entry->slots.size());
  for (const int s : entry->slots) {
    out += ' ';
    out += std::to_string(s);
  }
  out += "\nend\n";
  return out;
}

std::variant<std::optional<driver::ScheduleCache::Entry>, std::string> parse_peek_reply(
    std::string_view payload) {
  std::string_view rest = payload;
  std::string_view line;
  if (!next_line(rest, line) || line != kPeekReplyHeader) {
    return std::string("bad peek-reply header");
  }
  driver::ScheduleCache::Entry e;
  bool hit = false;
  bool have_status = false;
  bool have_end = false;
  while (next_line(rest, line)) {
    if (line == "end") {
      have_end = true;
      break;
    }
    std::string_view key, value;
    split_kv(line, key, value);
    if (key == "status") {
      if (value == "hit") {
        hit = true;
      } else if (value == "miss") {
        hit = false;
      } else {
        return std::string("bad status");
      }
      have_status = true;
    } else if (key == "scheduler") {
      if (value.empty()) return std::string("bad scheduler");
      e.scheduler = std::string(value);
    } else if (key == "ii") {
      if (!parse_int(value, e.ii)) return std::string("bad ii");
    } else if (key == "mii") {
      if (!parse_int(value, e.mii)) return std::string("bad mii");
    } else if (key == "c_delay_threshold") {
      if (!parse_int(value, e.c_delay_threshold)) return std::string("bad c_delay_threshold");
    } else if (key == "p_max") {
      if (!parse_double(value, e.p_max)) return std::string("bad p_max");
    } else if (key == "slots") {
      std::istringstream in{std::string(value)};
      std::size_t n = 0;
      if (!(in >> n) || n > (1u << 20)) return std::string("bad slots count");
      e.slots.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (!(in >> e.slots[i])) return std::string("bad slots");
      }
      std::string trailing;
      if (in >> trailing) return std::string("bad slots");
    } else {
      return "unknown peek-reply field '" + std::string(key) + "'";
    }
  }
  if (!have_status || !have_end) return std::string("truncated peek-reply");
  if (!hit) return std::optional<driver::ScheduleCache::Entry>{};
  if (e.ii <= 0 || e.scheduler.empty() || e.slots.empty()) {
    return std::string("hit without a complete entry");
  }
  return std::optional<driver::ScheduleCache::Entry>{std::move(e)};
}

}  // namespace tms::serve
