// The tmsd/tmsrouter transport: sockets, connections, graceful drain.
//
// SocketServer owns the listening sockets (a Unix-domain socket always;
// a loopback TCP socket when asked) and one thread per live connection.
// It is a thin shell: every byte that arrives goes through FrameReader,
// every complete request frame through message.hpp's strict parser, and
// every parsed request through Handler::handle() — the server adds
// only what a transport must: accept limits, idle timeouts, and
// orderly shutdown. The Handler seam is what tmsd (CompileService) and
// tmsrouter (router::Router) share.
//
// Robustness contract (exercised by tests/serve_smoke.sh):
//   - over max_connections, a new connection is accepted, answered with
//     a structured kOverload response (retry_after_ms set), and closed —
//     never left hanging in the backlog and never dropped silently;
//   - a connection that sends a malformed frame gets a best-effort
//     kParse error and is dropped (framing cannot resync); a well-framed
//     but unparseable payload gets a kParse error and keeps its
//     connection;
//   - a connection idle past idle_timeout_ms is closed (slowloris
//     guard) and counted in serve.idle_timeouts;
//   - drain() stops accepting, lets every in-flight request finish and
//     its response flush, then joins all threads. It never aborts a
//     request that was already admitted.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "serve/frame.hpp"
#include "serve/handler.hpp"

namespace tms::serve {

struct ServerOptions {
  std::string unix_path;           ///< required; unlinked on bind and on drain
  int tcp_port = -1;               ///< -1 = no TCP; 0 = ephemeral (see tcp_port())
  int max_connections = 64;        ///< live connections before overload turn-away
  std::int64_t idle_timeout_ms = 30000;  ///< 0 = never time out idle connections
};

class SocketServer {
 public:
  /// `handler` must outlive the server.
  SocketServer(Handler& handler, ServerOptions opts);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, and starts the accept thread. Returns a
  /// description of the failure, or nullopt on success.
  std::optional<std::string> start();

  /// Stop accepting, finish in-flight requests, join every thread.
  /// Idempotent. Does not touch the handler — the caller decides when
  /// to drain that (tmsd drains the transport first, then the service,
  /// so admitted work always completes).
  void drain();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Actual TCP port after start() (useful with tcp_port = 0); -1 when
  /// TCP is disabled.
  int tcp_port() const { return tcp_port_; }

  /// Live connection count (test hook for the overload turn-away path).
  int connection_count() const;

 private:
  struct Conn {
    int fd = -1;
    std::string peer;  ///< "unix" or "ip:port"; feeds the slow-request log
    std::thread th;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void connection_loop(Conn* conn);
  /// Returns false when the connection must be dropped.
  bool handle_frame(int fd, const Frame& frame, const std::string& peer);
  void reap_finished(bool join_all);

  Handler& handler_;
  ServerOptions opts_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = -1;
  std::thread accept_thread_;
  mutable std::mutex conns_mu_;
  std::list<std::unique_ptr<Conn>> conns_;
};

}  // namespace tms::serve
