#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace tms::serve {

namespace {

void set_io_timeout(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

bool send_all(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), reader_(std::move(other.reader_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    reader_ = std::move(other.reader_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reader_ = FrameReader();
}

std::optional<std::string> Client::connect_unix(const std::string& path, int timeout_ms) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) return std::string("socket path too long");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return std::string("socket: ") + std::strerror(errno);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = "connect " + path + ": " + std::strerror(errno);
    close();
    return err;
  }
  set_io_timeout(fd_, timeout_ms);
  return std::nullopt;
}

std::optional<std::string> Client::connect_tcp(const std::string& host, int port,
                                               int timeout_ms) {
  close();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return "bad address '" + host + "' (numeric IPv4 only)";
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return std::string("socket: ") + std::strerror(errno);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err =
        "connect " + host + ":" + std::to_string(port) + ": " + std::strerror(errno);
    close();
    return err;
  }
  set_io_timeout(fd_, timeout_ms);
  return std::nullopt;
}

std::variant<Frame, std::string> Client::roundtrip(FrameType type, std::string_view payload) {
  if (fd_ < 0) return std::string("not connected");
  if (!send_all(fd_, encode_frame(type, payload))) {
    return std::string("send: ") + std::strerror(errno);
  }
  char buf[64 * 1024];
  for (;;) {
    Frame frame;
    const FrameReader::Next next = reader_.next(frame);
    if (next == FrameReader::Next::kFrame) return frame;
    if (next == FrameReader::Next::kError) {
      return std::string("malformed frame from server: ") +
             std::string(to_string(reader_.error()));
    }
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n == 0) return std::string("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return std::string("receive timed out");
      return std::string("recv: ") + std::strerror(errno);
    }
    reader_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

std::variant<Response, std::string> Client::compile(const Request& req) {
  auto result = roundtrip(FrameType::kRequest, serialise_request(req));
  if (auto* err = std::get_if<std::string>(&result)) return std::move(*err);
  const Frame& frame = std::get<Frame>(result);
  if (frame.type != FrameType::kResponse) {
    return std::string("unexpected frame type ") + std::string(to_string(frame.type));
  }
  auto parsed = parse_response(frame.payload);
  if (auto* err = std::get_if<std::string>(&parsed)) {
    return "bad response payload: " + *err;
  }
  return std::get<Response>(std::move(parsed));
}

std::optional<std::string> Client::ping() {
  auto result = roundtrip(FrameType::kPing, {});
  if (auto* err = std::get_if<std::string>(&result)) return std::move(*err);
  const Frame& frame = std::get<Frame>(result);
  if (frame.type == FrameType::kPong) return std::nullopt;
  if (frame.type == FrameType::kResponse) {
    auto parsed = parse_response(frame.payload);
    if (auto* resp = std::get_if<Response>(&parsed); resp != nullptr && !resp->ok) {
      return "server refused: " + resp->message;
    }
  }
  return std::string("unexpected frame type ") + std::string(to_string(frame.type));
}

std::optional<std::string> Client::stats(std::string& out_json) {
  auto result = roundtrip(FrameType::kStats, {});
  if (auto* err = std::get_if<std::string>(&result)) return std::move(*err);
  Frame& frame = std::get<Frame>(result);
  if (frame.type != FrameType::kStatsReply) {
    return std::string("unexpected frame type ") + std::string(to_string(frame.type));
  }
  out_json = std::move(frame.payload);
  return std::nullopt;
}

std::optional<std::string> Client::peek(const PeekQuery& q,
                                        std::optional<driver::ScheduleCache::Entry>& out) {
  auto result = roundtrip(FrameType::kPeek, serialise_peek(q));
  if (auto* err = std::get_if<std::string>(&result)) return std::move(*err);
  const Frame& frame = std::get<Frame>(result);
  if (frame.type != FrameType::kPeekReply) {
    return std::string("unexpected frame type ") + std::string(to_string(frame.type));
  }
  auto parsed = parse_peek_reply(frame.payload);
  if (auto* err = std::get_if<std::string>(&parsed)) {
    return "bad peek-reply payload: " + *err;
  }
  out = std::get<std::optional<driver::ScheduleCache::Entry>>(std::move(parsed));
  return std::nullopt;
}

std::optional<std::string> Client::cluster_stats(std::string& out_json) {
  auto result = roundtrip(FrameType::kClusterStats, {});
  if (auto* err = std::get_if<std::string>(&result)) return std::move(*err);
  Frame& frame = std::get<Frame>(result);
  if (frame.type != FrameType::kClusterStatsReply) {
    return std::string("unexpected frame type ") + std::string(to_string(frame.type));
  }
  out_json = std::move(frame.payload);
  return std::nullopt;
}

std::optional<std::string> Client::flight(std::string& out_json) {
  auto result = roundtrip(FrameType::kFlight, {});
  if (auto* err = std::get_if<std::string>(&result)) return std::move(*err);
  Frame& frame = std::get<Frame>(result);
  if (frame.type != FrameType::kFlightReply) {
    return std::string("unexpected frame type ") + std::string(to_string(frame.type));
  }
  out_json = std::move(frame.payload);
  return std::nullopt;
}

std::optional<std::string> Client::health(std::string& out_line) {
  auto result = roundtrip(FrameType::kHealth, {});
  if (auto* err = std::get_if<std::string>(&result)) return std::move(*err);
  Frame& frame = std::get<Frame>(result);
  if (frame.type != FrameType::kHealthReply) {
    return std::string("unexpected frame type ") + std::string(to_string(frame.type));
  }
  out_line = std::move(frame.payload);
  return std::nullopt;
}

}  // namespace tms::serve
