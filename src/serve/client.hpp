// Blocking client for the tmsd wire protocol.
//
// One Client is one connection. It is deliberately synchronous — send a
// frame, read frames until the matching response arrives — because every
// consumer in this tree (tmsq, tmsc --remote, loadgen's per-thread
// clients) wants exactly that shape; concurrency comes from running many
// clients, the same way the server runs many connections.
//
// Not thread-safe: share nothing, or lock outside.
#pragma once

#include <optional>
#include <string>
#include <variant>

#include "serve/frame.hpp"
#include "serve/handler.hpp"
#include "serve/message.hpp"

namespace tms::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect over a Unix-domain socket. Returns a failure description,
  /// or nullopt on success. timeout_ms bounds each send/recv (not the
  /// whole request), so a stalled server surfaces as an error rather
  /// than a hang.
  std::optional<std::string> connect_unix(const std::string& path, int timeout_ms = 30000);

  /// Connect over TCP (tmsd only ever listens on loopback).
  std::optional<std::string> connect_tcp(const std::string& host, int port,
                                         int timeout_ms = 30000);

  bool connected() const { return fd_ >= 0; }
  void close();

  /// One round trip: serialise, frame, send, read the response frame.
  /// Returns the Response (which may itself be a structured error, e.g.
  /// kOverload) or a transport/parse failure description.
  std::variant<Response, std::string> compile(const Request& req);

  /// Liveness probe. Returns a failure description, or nullopt when the
  /// server answered the ping.
  std::optional<std::string> ping();

  /// STATS round trip: fills `out_json` with the server's canonical
  /// snapshot (see CompileService::stats_json). Returns a failure
  /// description, or nullopt on success.
  std::optional<std::string> stats(std::string& out_json);

  /// HEALTH round trip: fills `out_line` with the one-line summary.
  std::optional<std::string> health(std::string& out_line);

  /// PEEK round trip (cache peer-fill): fills `out` with the entry on a
  /// hit, nullopt on a miss. Returns a failure description for
  /// transport or protocol errors — which callers treat as a miss.
  std::optional<std::string> peek(const PeekQuery& q,
                                  std::optional<driver::ScheduleCache::Entry>& out);

  /// CLUSTER_STATS round trip: fills `out_json` with the merged
  /// cluster-stats-v1 snapshot (one-shard degenerate form when pointed
  /// at a lone tmsd).
  std::optional<std::string> cluster_stats(std::string& out_json);

  /// FLIGHT round trip: fills `out_json` with the daemon's
  /// tmsd-flight-v1 flight-recorder dump.
  std::optional<std::string> flight(std::string& out_json);

 private:
  std::variant<Frame, std::string> roundtrip(FrameType type, std::string_view payload);

  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace tms::serve
