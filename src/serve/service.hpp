// The compile service: admission control, deadlines, and the pipeline.
//
// CompileService is the transport-independent heart of tmsd. A
// connection handler calls handle(request) and gets a Response back;
// everything between — admission against a bounded queue, dispatch onto
// a persistent driver::TaskPool, per-request deadline handling with
// cooperative cancellation, consulting the process-wide ScheduleCache,
// validation, and counter accounting — lives here, so it is testable
// without a socket in sight.
//
// Admission control is deliberate, not incidental (Yavits et al.: the
// synchronisation at the sequential service boundary is where multicore
// scaling dies): the queue's high-water mark is a hard bound, and an
// over-limit request is answered immediately with a kOverload error
// carrying a retry_after_ms hint — the server never queues unboundedly
// and never blocks the connection thread on a full queue.
//
// Deadlines are cooperative. A request that expires while still queued
// is cancelled outright (its pipeline never runs); once running, the
// pipeline checks the deadline between stages (before scheduling, after
// scheduling, after validation) and abandons the remaining work. The
// scheduler itself is not interruptible — the check granularity is a
// pipeline stage, which for every workload in the tree is milliseconds.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "driver/job_pool.hpp"
#include "driver/schedule_cache.hpp"
#include "machine/machine.hpp"
#include "obs/flight.hpp"
#include "serve/handler.hpp"
#include "serve/message.hpp"

namespace tms::serve {

/// Cache peer-fill hook: given a schedule-cache key and the expected
/// slot count, ask ring siblings (via Client::peek) whether one of them
/// already holds the entry. Called on compile workers, concurrently;
/// must be thread-safe. nullopt = no sibling had it (or none are
/// configured), and the shard schedules fresh as before.
using PeerFillFn =
    std::function<std::optional<driver::ScheduleCache::Entry>(std::uint64_t key,
                                                              int expect_instrs)>;

struct ServiceOptions {
  int threads = 0;                  ///< compile workers; 0 = hardware_concurrency
  std::size_t queue_capacity = 64;  ///< admission high-water mark
  std::int64_t retry_after_ms = 100;  ///< backoff hint in overload responses
  bool validate = true;             ///< run check::validate_schedule on every result
  /// Slow-request log threshold in milliseconds: a request whose total
  /// handle() time is >= slow_ms gets one canonical-JSON line in the
  /// slow log. -1 disables; 0 logs every request.
  std::int64_t slow_ms = -1;
  /// Destination for slow-request lines; nullptr = stderr. Not owned.
  std::FILE* slow_log = nullptr;
  /// Consulted on a local cache miss, before scheduling fresh. A hit is
  /// validated exactly like a local cache hit and inserted into the
  /// local cache (counted in serve.peer_fill_hits / _misses).
  PeerFillFn peer_fill;
  /// Simulator-backed verification (tmsd --sim-verify): after the
  /// validator passes, lower the kernel and run spmt::quick_estimate;
  /// the response is refused (kValidateFail) unless the simulated
  /// committed state matches the sequential reference. Time lands in
  /// serve.latency.sim_verify, refusals in serve.sim_verify_failures.
  bool sim_verify = false;
  /// Iterations for the sim-verify run; 0 = quick_estimate's auto size
  /// (max(32, 8*ncore) capped at 256).
  std::int64_t sim_verify_iterations = 0;
  /// Server-side defaults for the core-allocation policy and shared-bus
  /// machine terms (tmsd --policy / --bus-*). A request that carries its
  /// own non-default value overrides the corresponding default for that
  /// request only.
  machine::AllocPolicy policy = machine::AllocPolicy::kModulo;
  int policy_stride = 1;
  int policy_block = 1;
  int bus_bytes_per_transfer = 0;
  int bus_bytes_per_cycle = 16;
  /// Flight recorder the service writes one outcome record into per
  /// pipeline run (docs/SERVING.md, tmsd-flight-v1). Not owned; nullptr
  /// disables recording and makes the FLIGHT verb answer an empty dump.
  obs::FlightRecorder* flight = nullptr;
  /// Invoked (on the connection thread, after the slow log line) for
  /// every request at or over slow_ms. tmsd uses it to dump the flight
  /// recorder next to the metrics dump; rate limiting is the callee's
  /// job. Must be thread-safe.
  std::function<void()> on_slow;
};

class CompileService : public Handler {
 public:
  /// `mach` must outlive the service; `cache` may be null (no caching)
  /// and is shared — the whole point — so it must outlive the service
  /// too.
  CompileService(const machine::MachineModel& mach, driver::ScheduleCache* cache,
                 ServiceOptions opts);
  ~CompileService();

  /// Admission + synchronous wait; safe from any number of connection
  /// threads concurrently. Always returns a response (never throws).
  /// `peer` (transport-provided, e.g. "unix" or "127.0.0.1:4321") only
  /// feeds the slow-request log. The response always carries the
  /// request's request_id, or a server-minted "srv-<n>" when the client
  /// sent none.
  Response handle(const Request& req, std::string_view peer = {}) override;

  /// Refuse new compile requests from now on; in-flight requests
  /// complete. STATS/HEALTH snapshots keep being answered.
  void begin_drain();
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// begin_drain + wait for the queue to empty and workers to exit.
  void shutdown();

  std::size_t queue_depth() const { return pool_.queue_depth(); }
  int in_flight() const { return in_flight_.load(std::memory_order_acquire); }
  std::int64_t uptime_ms() const;
  const ServiceOptions& options() const { return opts_; }
  driver::ScheduleCache* cache() const { return cache_; }

  /// The STATS payload: one canonical-JSON object — schema marker,
  /// uptime/queue/in-flight/drain gauges, and the full counter-registry
  /// snapshot under "observability". Cheap (no compile work, never
  /// queued) and answered even while draining.
  std::string stats_json() const override;

  /// The HEALTH payload: one line, first token "ok" or "draining",
  /// then `uptime_ms=N queue_depth=N in_flight=N draining=0|1`.
  std::string health_line() const override;

  /// The PEEK_REPLY payload: a pure cache lookup (hit or miss), never
  /// compile work — a peer's probe must not recurse into peer-fill or
  /// scheduling. Malformed probes answer a well-formed miss.
  std::string peek_reply(std::string_view payload) override;

  /// The FLIGHT_REPLY payload: the flight recorder's tmsd-flight-v1
  /// dump (well-formed empty dump when no recorder is attached).
  std::string flight_json() const override;

  std::int64_t retry_after_ms() const override { return opts_.retry_after_ms; }

  /// Test hook: the underlying pool, for deterministically occupying
  /// workers (see tests/serve_test.cpp).
  driver::TaskPool& pool() { return pool_; }

 private:
  Response admit(const Request& req, const std::string& request_id,
                 std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point deadline, bool has_deadline,
                 bool& pipeline_ran);
  Response compile(const Request& req, const std::string& request_id, std::int64_t queue_us,
                   std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point deadline, bool has_deadline) const;
  void log_slow(const Request& req, const Response& resp, std::string_view peer);

  const machine::MachineModel& mach_;
  driver::ScheduleCache* cache_;
  ServiceOptions opts_;
  std::atomic<bool> draining_{false};
  std::atomic<int> in_flight_{0};
  std::atomic<std::uint64_t> minted_ids_{0};
  const std::chrono::steady_clock::time_point started_;
  std::mutex slow_log_mu_;
  driver::TaskPool pool_;
};

}  // namespace tms::serve
