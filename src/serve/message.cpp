#include "serve/message.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "ir/textio.hpp"
#include "policy/policy.hpp"

namespace tms::serve {

namespace {

constexpr std::string_view kRequestHeader = "tmsq-request v1";
constexpr std::string_view kResponseHeader = "tmsq-response v1";

/// Pops the next '\n'-terminated line (or the final unterminated tail)
/// from `rest`. Returns false when `rest` is exhausted.
bool next_line(std::string_view& rest, std::string_view& line) {
  if (rest.empty()) return false;
  const std::size_t nl = rest.find('\n');
  if (nl == std::string_view::npos) {
    line = rest;
    rest = {};
  } else {
    line = rest.substr(0, nl);
    rest = rest.substr(nl + 1);
  }
  return true;
}

/// Splits "key value" on the first space; value may itself contain
/// spaces (used by `message`).
void split_kv(std::string_view line, std::string_view& key, std::string_view& value) {
  const std::size_t sp = line.find(' ');
  if (sp == std::string_view::npos) {
    key = line;
    value = {};
  } else {
    key = line.substr(0, sp);
    value = line.substr(sp + 1);
  }
}

bool parse_i64(std::string_view s, std::int64_t& out) {
  if (s.empty()) return false;
  const std::string tmp(s);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(tmp.c_str(), &end, 10);
  if (errno != 0 || end != tmp.c_str() + tmp.size()) return false;
  out = v;
  return true;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s[0] == '-') return false;
  const std::string tmp(s);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tmp.c_str(), &end, 10);
  if (errno != 0 || end != tmp.c_str() + tmp.size()) return false;
  out = v;
  return true;
}

bool parse_int(std::string_view s, int& out) {
  std::int64_t v = 0;
  if (!parse_i64(s, v) || v < INT32_MIN || v > INT32_MAX) return false;
  out = static_cast<int>(v);
  return true;
}

bool parse_double(std::string_view s, double& out) {
  if (s.empty()) return false;
  const std::string tmp(s);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tmp.c_str(), &end);
  if (errno != 0 || end != tmp.c_str() + tmp.size()) return false;
  out = v;
  return true;
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

/// Trace ids travel as exactly 16 lowercase hex digits (the same shape
/// the PEEK codec uses for cache keys).
bool parse_hex_u64(std::string_view s, std::uint64_t& out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    int d;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  out = v;
  return true;
}

void append_hex16(std::string& out, std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  out += buf;
}

/// Error messages travel on one line; fold any embedded newline.
std::string one_line(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

}  // namespace

std::string_view to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::kParse: return "parse";
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kScheduleFail: return "schedule-fail";
    case ErrorCode::kValidateFail: return "validate-fail";
    case ErrorCode::kDeadline: return "deadline";
    case ErrorCode::kOverload: return "overload";
    case ErrorCode::kShutdown: return "shutdown";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

bool error_code_from_string(std::string_view s, ErrorCode& out) {
  static constexpr ErrorCode kAll[] = {
      ErrorCode::kParse,    ErrorCode::kBadRequest, ErrorCode::kScheduleFail,
      ErrorCode::kValidateFail, ErrorCode::kDeadline, ErrorCode::kOverload,
      ErrorCode::kShutdown, ErrorCode::kInternal,
  };
  for (const ErrorCode c : kAll) {
    if (to_string(c) == s) {
      out = c;
      return true;
    }
  }
  return false;
}

bool valid_request_id(std::string_view id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == ':' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string serialise_request(const Request& req) {
  std::string out(kRequestHeader);
  out += "\nid ";
  out += std::to_string(req.id);
  if (!req.request_id.empty()) {
    out += "\nrequest_id ";
    out += req.request_id;
  }
  out += "\nscheduler ";
  out += req.scheduler;
  out += "\nncore ";
  out += std::to_string(req.ncore);
  out += "\ndeadline_ms ";
  out += std::to_string(req.deadline_ms);
  // Omit-when-default, like request_id: a default-policy request is
  // byte-identical to one minted before these fields existed.
  if (req.policy != machine::AllocPolicy::kModulo) {
    out += "\npolicy ";
    out += policy::to_string(req.policy);
  }
  if (req.policy_stride != 1) {
    out += "\npolicy_stride ";
    out += std::to_string(req.policy_stride);
  }
  if (req.policy_block != 1) {
    out += "\npolicy_block ";
    out += std::to_string(req.policy_block);
  }
  if (req.bus_bytes_per_transfer != 0) {
    out += "\nbus_bytes_per_transfer ";
    out += std::to_string(req.bus_bytes_per_transfer);
  }
  if (req.bus_bytes_per_cycle != 16) {
    out += "\nbus_bytes_per_cycle ";
    out += std::to_string(req.bus_bytes_per_cycle);
  }
  // Trace context, omit-when-default like the policy fields above: an
  // untraced request stays byte-identical to a pre-tracing one.
  if (req.trace_id != 0) {
    out += "\ntrace_id ";
    append_hex16(out, req.trace_id);
  }
  if (req.parent_span_id != 0) {
    out += "\nparent_span_id ";
    append_hex16(out, req.parent_span_id);
  }
  out += "\nloop\n";
  out += ir::serialise_loop(req.loop);
  return out;
}

std::variant<Request, std::string> parse_request(std::string_view payload) {
  std::string_view rest = payload;
  std::string_view line;
  if (!next_line(rest, line) || line != kRequestHeader) {
    return std::string("bad request header");
  }
  Request req;
  bool have_loop = false;
  while (next_line(rest, line)) {
    if (line == "loop") {
      have_loop = true;
      break;
    }
    std::string_view key, value;
    split_kv(line, key, value);
    if (key == "id") {
      if (!parse_u64(value, req.id)) return std::string("bad id");
    } else if (key == "request_id") {
      if (!valid_request_id(value)) return std::string("bad request_id");
      req.request_id = std::string(value);
    } else if (key == "scheduler") {
      if (value.empty()) return std::string("bad scheduler");
      req.scheduler = std::string(value);
    } else if (key == "ncore") {
      if (!parse_int(value, req.ncore)) return std::string("bad ncore");
    } else if (key == "deadline_ms") {
      if (!parse_i64(value, req.deadline_ms)) return std::string("bad deadline_ms");
    } else if (key == "policy") {
      if (!policy::policy_from_string(value, req.policy)) return std::string("bad policy");
    } else if (key == "policy_stride") {
      if (!parse_int(value, req.policy_stride) || req.policy_stride < 1) {
        return std::string("bad policy_stride");
      }
    } else if (key == "policy_block") {
      if (!parse_int(value, req.policy_block) || req.policy_block < 1) {
        return std::string("bad policy_block");
      }
    } else if (key == "bus_bytes_per_transfer") {
      if (!parse_int(value, req.bus_bytes_per_transfer) || req.bus_bytes_per_transfer < 0) {
        return std::string("bad bus_bytes_per_transfer");
      }
    } else if (key == "bus_bytes_per_cycle") {
      if (!parse_int(value, req.bus_bytes_per_cycle) || req.bus_bytes_per_cycle < 1) {
        return std::string("bad bus_bytes_per_cycle");
      }
    } else if (key == "trace_id") {
      if (!parse_hex_u64(value, req.trace_id)) return std::string("bad trace_id");
    } else if (key == "parent_span_id") {
      if (!parse_hex_u64(value, req.parent_span_id)) return std::string("bad parent_span_id");
    } else {
      return "unknown request field '" + std::string(key) + "'";
    }
  }
  if (!have_loop) return std::string("missing loop section");
  auto parsed = ir::parse_loop_string(std::string(rest));
  if (const auto* err = std::get_if<ir::ParseError>(&parsed)) {
    return "loop line " + std::to_string(err->line) + ": " + err->message;
  }
  req.loop = std::get<ir::Loop>(std::move(parsed));
  return req;
}

std::string serialise_response(const Response& resp) {
  std::string out(kResponseHeader);
  out += "\nid ";
  out += std::to_string(resp.id);
  if (!resp.request_id.empty()) {
    out += "\nrequest_id ";
    out += resp.request_id;
  }
  // Echoed only when the request carried trace context: clients that
  // never send a trace_id never see these keys, so their (strict,
  // pre-tracing) response parsers are unaffected.
  if (resp.trace_id != 0) {
    out += "\ntrace_id ";
    append_hex16(out, resp.trace_id);
    if (resp.span_id != 0) {
      out += "\nspan_id ";
      append_hex16(out, resp.span_id);
    }
  }
  if (!resp.ok) {
    out += "\nstatus error\ncode ";
    out += to_string(resp.code);
    out += "\nretry_after_ms ";
    out += std::to_string(resp.retry_after_ms);
    out += "\nmessage ";
    out += one_line(resp.message);
    out += "\nend\n";
    return out;
  }
  out += "\nstatus ok\nscheduler ";
  out += resp.scheduler;
  out += "\ncache_hit ";
  out += resp.cache_hit ? '1' : '0';
  out += "\nii ";
  out += std::to_string(resp.ii);
  out += "\nmii ";
  out += std::to_string(resp.mii);
  out += "\nc_delay_threshold ";
  out += std::to_string(resp.c_delay_threshold);
  out += "\np_max ";
  append_double(out, resp.p_max);
  out += "\nserver_ms ";
  append_double(out, resp.server_ms);
  out += "\nt_queue_us ";
  out += std::to_string(resp.t_queue_us);
  out += "\nt_schedule_us ";
  out += std::to_string(resp.t_schedule_us);
  out += "\nt_validate_us ";
  out += std::to_string(resp.t_validate_us);
  out += "\nt_total_us ";
  out += std::to_string(resp.t_total_us);
  out += "\nslots ";
  out += std::to_string(resp.slots.size());
  for (const int s : resp.slots) {
    out += ' ';
    out += std::to_string(s);
  }
  out += "\nend\n";
  return out;
}

std::variant<Response, std::string> parse_response(std::string_view payload) {
  std::string_view rest = payload;
  std::string_view line;
  if (!next_line(rest, line) || line != kResponseHeader) {
    return std::string("bad response header");
  }
  Response resp;
  bool have_status = false;
  bool have_end = false;
  while (next_line(rest, line)) {
    if (line == "end") {
      have_end = true;
      break;
    }
    std::string_view key, value;
    split_kv(line, key, value);
    if (key == "id") {
      if (!parse_u64(value, resp.id)) return std::string("bad id");
    } else if (key == "request_id") {
      if (!valid_request_id(value)) return std::string("bad request_id");
      resp.request_id = std::string(value);
    } else if (key == "status") {
      if (value == "ok") {
        resp.ok = true;
      } else if (value == "error") {
        resp.ok = false;
      } else {
        return std::string("bad status");
      }
      have_status = true;
    } else if (key == "code") {
      if (!error_code_from_string(value, resp.code)) return std::string("bad code");
    } else if (key == "retry_after_ms") {
      if (!parse_i64(value, resp.retry_after_ms)) return std::string("bad retry_after_ms");
    } else if (key == "message") {
      resp.message = std::string(value);
    } else if (key == "scheduler") {
      resp.scheduler = std::string(value);
    } else if (key == "cache_hit") {
      if (value == "1") {
        resp.cache_hit = true;
      } else if (value == "0") {
        resp.cache_hit = false;
      } else {
        return std::string("bad cache_hit");
      }
    } else if (key == "ii") {
      if (!parse_int(value, resp.ii)) return std::string("bad ii");
    } else if (key == "mii") {
      if (!parse_int(value, resp.mii)) return std::string("bad mii");
    } else if (key == "c_delay_threshold") {
      if (!parse_int(value, resp.c_delay_threshold)) return std::string("bad c_delay_threshold");
    } else if (key == "p_max") {
      if (!parse_double(value, resp.p_max)) return std::string("bad p_max");
    } else if (key == "server_ms") {
      if (!parse_double(value, resp.server_ms)) return std::string("bad server_ms");
    } else if (key == "t_queue_us") {
      if (!parse_i64(value, resp.t_queue_us)) return std::string("bad t_queue_us");
    } else if (key == "t_schedule_us") {
      if (!parse_i64(value, resp.t_schedule_us)) return std::string("bad t_schedule_us");
    } else if (key == "t_validate_us") {
      if (!parse_i64(value, resp.t_validate_us)) return std::string("bad t_validate_us");
    } else if (key == "t_total_us") {
      if (!parse_i64(value, resp.t_total_us)) return std::string("bad t_total_us");
    } else if (key == "trace_id") {
      if (!parse_hex_u64(value, resp.trace_id)) return std::string("bad trace_id");
    } else if (key == "span_id") {
      if (!parse_hex_u64(value, resp.span_id)) return std::string("bad span_id");
    } else if (key == "slots") {
      std::istringstream in{std::string(value)};
      std::size_t n = 0;
      if (!(in >> n) || n > (1u << 20)) return std::string("bad slots count");
      resp.slots.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (!(in >> resp.slots[i])) return std::string("bad slots");
      }
      std::string trailing;
      if (in >> trailing) return std::string("bad slots");
    } else {
      return "unknown response field '" + std::string(key) + "'";
    }
  }
  if (!have_status || !have_end) return std::string("truncated response");
  if (resp.ok && resp.ii <= 0) return std::string("ok response without schedule");
  return resp;
}

Response make_error(std::uint64_t id, ErrorCode code, std::string message,
                    std::int64_t retry_after_ms) {
  Response r;
  r.id = id;
  r.ok = false;
  r.code = code;
  r.message = std::move(message);
  r.retry_after_ms = retry_after_ms;
  return r;
}

}  // namespace tms::serve
