// Request/response payloads carried inside tmsd frames.
//
// Both directions use the same line-oriented text convention as the
// .loop format and the .tmscache files: a versioned first line, `key
// value` lines, and (for requests) a `loop` line after which the rest of
// the payload is the ir::textio loop text. Parsing is strict — an
// unknown key, a missing field, or trailing garbage is a parse error,
// never silently ignored — because the request parser faces the network
// and is fuzz-tested alongside the frame parser.
//
// A response is either a schedule (`status ok`: II, MII, the TMS
// acceptance thresholds, per-node slots — exactly what a ScheduleCache
// entry stores, so the client reconstructs the identical Schedule) or a
// structured error (`status error`: an ErrorCode, a one-line message,
// and for kOverload a retry_after_ms hint the client should back off
// by).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "ir/loop.hpp"

namespace tms::serve {

struct Request {
  std::uint64_t id = 0;            ///< client correlation id, echoed back
  std::string scheduler = "tms";   ///< "sms", "ims" or "tms"
  int ncore = 4;                   ///< SpmtConfig.ncore for this request
  std::int64_t deadline_ms = 0;    ///< 0 = no deadline
  ir::Loop loop{"unnamed"};
};

enum class ErrorCode {
  kParse,         ///< malformed request payload
  kBadRequest,    ///< well-formed but unacceptable (unknown scheduler, bad ncore)
  kScheduleFail,  ///< the scheduler found no schedule
  kValidateFail,  ///< the independent validator rejected the schedule
  kDeadline,      ///< the request's deadline expired
  kOverload,      ///< queue over the high-water mark; retry after retry_after_ms
  kShutdown,      ///< server is draining; do not retry this connection
  kInternal,      ///< exception escaped the pipeline
};

std::string_view to_string(ErrorCode c);
/// Inverse of to_string; false when `s` names no code.
bool error_code_from_string(std::string_view s, ErrorCode& out);

struct Response {
  std::uint64_t id = 0;
  bool ok = false;

  // status error
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  std::int64_t retry_after_ms = 0;  ///< only meaningful for kOverload

  // status ok
  std::string scheduler;
  bool cache_hit = false;
  int ii = 0;
  int mii = 0;
  int c_delay_threshold = -1;  ///< TMS acceptance threshold; -1 for SMS/IMS
  double p_max = -1.0;
  std::vector<int> slots;      ///< slot per node id, normalised
  double server_ms = 0.0;      ///< server-side wall time for this request
};

std::string serialise_request(const Request& req);
/// Returns the request or a one-line parse-error description.
std::variant<Request, std::string> parse_request(std::string_view payload);

std::string serialise_response(const Response& resp);
std::variant<Response, std::string> parse_response(std::string_view payload);

/// Convenience constructor for error responses.
Response make_error(std::uint64_t id, ErrorCode code, std::string message,
                    std::int64_t retry_after_ms = 0);

}  // namespace tms::serve
