// Request/response payloads carried inside tmsd frames.
//
// Both directions use the same line-oriented text convention as the
// .loop format and the .tmscache files: a versioned first line, `key
// value` lines, and (for requests) a `loop` line after which the rest of
// the payload is the ir::textio loop text. Parsing is strict — an
// unknown key, a missing field, or trailing garbage is a parse error,
// never silently ignored — because the request parser faces the network
// and is fuzz-tested alongside the frame parser.
//
// A response is either a schedule (`status ok`: II, MII, the TMS
// acceptance thresholds, per-node slots — exactly what a ScheduleCache
// entry stores, so the client reconstructs the identical Schedule) or a
// structured error (`status error`: an ErrorCode, a one-line message,
// and for kOverload a retry_after_ms hint the client should back off
// by).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "ir/loop.hpp"
#include "machine/spmt_config.hpp"

namespace tms::serve {

struct Request {
  std::uint64_t id = 0;            ///< client correlation id, echoed back
  /// Optional end-to-end request identity: a token of 1..64 chars from
  /// [A-Za-z0-9._:-], echoed verbatim in the response and attached to
  /// the server-side trace span. Empty = server mints one ("srv-<n>").
  std::string request_id;
  std::string scheduler = "tms";   ///< "sms", "ims" or "tms"
  int ncore = 4;                   ///< SpmtConfig.ncore for this request
  std::int64_t deadline_ms = 0;    ///< 0 = no deadline
  /// Core-allocation policy and shared-bus machine terms for this request
  /// (SpmtConfig fields of the same names). Serialised only when they
  /// differ from the defaults, so pre-policy clients and servers keep
  /// exchanging byte-identical payloads.
  machine::AllocPolicy policy = machine::AllocPolicy::kModulo;
  int policy_stride = 1;
  int policy_block = 1;
  int bus_bytes_per_transfer = 0;
  int bus_bytes_per_cycle = 16;
  /// Distributed-trace context (docs/OBSERVABILITY.md "Distributed
  /// tracing"): a non-zero trace_id ties the server-side spans for this
  /// request into the caller's trace, with parent_span_id naming the
  /// span the server's work should hang under. Both serialise as 16-hex
  /// and are omit-when-default like the policy fields, so an untraced
  /// request is byte-identical to one minted before tracing existed.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  ir::Loop loop{"unnamed"};
};

/// True when `id` is a legal wire request_id (1..64 chars, each from
/// [A-Za-z0-9._:-]). The empty string is *not* valid on the wire — an
/// absent request_id is expressed by omitting the line.
bool valid_request_id(std::string_view id);

enum class ErrorCode {
  kParse,         ///< malformed request payload
  kBadRequest,    ///< well-formed but unacceptable (unknown scheduler, bad ncore)
  kScheduleFail,  ///< the scheduler found no schedule
  kValidateFail,  ///< the independent validator rejected the schedule
  kDeadline,      ///< the request's deadline expired
  kOverload,      ///< queue over the high-water mark; retry after retry_after_ms
  kShutdown,      ///< server is draining; do not retry this connection
  kInternal,      ///< exception escaped the pipeline
};

std::string_view to_string(ErrorCode c);
/// Inverse of to_string; false when `s` names no code.
bool error_code_from_string(std::string_view s, ErrorCode& out);

struct Response {
  std::uint64_t id = 0;
  std::string request_id;  ///< echo of the request's id (or the minted one)
  bool ok = false;

  // status error
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  std::int64_t retry_after_ms = 0;  ///< only meaningful for kOverload

  // status ok
  std::string scheduler;
  bool cache_hit = false;
  int ii = 0;
  int mii = 0;
  int c_delay_threshold = -1;  ///< TMS acceptance threshold; -1 for SMS/IMS
  double p_max = -1.0;
  std::vector<int> slots;      ///< slot per node id, normalised
  double server_ms = 0.0;      ///< server-side wall time for this request

  // Per-stage server timings in microseconds (status ok only): how long
  // the request waited in the admission queue, then scheduling and
  // validation time, then total handle() wall time. Lets a client split
  // its observed latency into network vs queue vs compute.
  std::int64_t t_queue_us = 0;
  std::int64_t t_schedule_us = 0;
  std::int64_t t_validate_us = 0;
  std::int64_t t_total_us = 0;

  // Trace echo: set (and serialised) only when the request carried a
  // trace_id, so clients that never send trace context never see these
  // keys — their strict parsers keep working unchanged. span_id is the
  // server-side span the work ran under, ready to be stitched as a
  // child of the request's parent_span_id.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

std::string serialise_request(const Request& req);
/// Returns the request or a one-line parse-error description.
std::variant<Request, std::string> parse_request(std::string_view payload);

std::string serialise_response(const Response& resp);
std::variant<Response, std::string> parse_response(std::string_view payload);

/// Convenience constructor for error responses.
Response make_error(std::uint64_t id, ErrorCode code, std::string message,
                    std::int64_t retry_after_ms = 0);

}  // namespace tms::serve
