#include "serve/service.hpp"

#include <exception>
#include <optional>
#include <utility>

#include "check/validate.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sched/ims.hpp"
#include "sched/postpass.hpp"
#include "sched/sms.hpp"
#include "sched/tms.hpp"

namespace tms::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct Scheduled {
  sched::Schedule schedule;
  check::CheckOptions check_opts;
  int mii = 0;
};

std::optional<Scheduled> schedule_fresh(const ir::Loop& loop, const machine::MachineModel& mach,
                                        const machine::SpmtConfig& cfg,
                                        const std::string& scheduler) {
  if (scheduler == "sms") {
    if (auto r = sched::sms_schedule(loop, mach)) {
      return Scheduled{std::move(r->schedule), {}, r->mii};
    }
    return std::nullopt;
  }
  if (scheduler == "ims") {
    if (auto r = sched::ims_schedule(loop, mach)) {
      return Scheduled{std::move(r->schedule), {}, r->mii};
    }
    return std::nullopt;
  }
  if (auto r = sched::tms_schedule(loop, mach, cfg)) {
    Scheduled out{std::move(r->schedule), {}, r->mii};
    out.check_opts.c_delay_threshold = r->c_delay_threshold;
    out.check_opts.p_max = r->p_max;
    return out;
  }
  return std::nullopt;
}

std::optional<Scheduled> from_cache(const ir::Loop& loop, const machine::MachineModel& mach,
                                    const driver::ScheduleCache::Entry& e) {
  sched::Schedule s(loop, mach, e.ii);
  for (int v = 0; v < loop.num_instrs(); ++v) {
    s.set_slot(v, e.slots[static_cast<std::size_t>(v)]);
  }
  if (s.validate().has_value()) return std::nullopt;
  Scheduled out{std::move(s), {}, e.mii};
  out.check_opts.c_delay_threshold = e.c_delay_threshold;
  out.check_opts.p_max = e.p_max;
  return out;
}

driver::ScheduleCache::Entry to_entry(const Scheduled& sl, const std::string& scheduler) {
  driver::ScheduleCache::Entry e;
  e.scheduler = scheduler;
  e.ii = sl.schedule.ii();
  e.mii = sl.mii;
  e.c_delay_threshold = sl.check_opts.c_delay_threshold;
  e.p_max = sl.check_opts.p_max;
  const int n = sl.schedule.loop().num_instrs();
  e.slots.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) e.slots.push_back(sl.schedule.slot(v));
  return e;
}

}  // namespace

CompileService::CompileService(const machine::MachineModel& mach, driver::ScheduleCache* cache,
                               ServiceOptions opts)
    : mach_(mach), cache_(cache), opts_(opts), pool_(opts.threads, opts.queue_capacity) {}

CompileService::~CompileService() { shutdown(); }

void CompileService::begin_drain() { draining_.store(true, std::memory_order_release); }

void CompileService::shutdown() {
  begin_drain();
  pool_.shutdown(driver::TaskPool::Drain::kFinishQueued);
}

Response CompileService::handle(const Request& req) {
  const Clock::time_point start = Clock::now();
  if (draining()) {
    obs::counters().serve_drain_refused.add(1);
    obs::counters().serve_responses_error.add(1);
    return make_error(req.id, ErrorCode::kShutdown, "server is draining");
  }
  if (req.scheduler != "sms" && req.scheduler != "ims" && req.scheduler != "tms") {
    obs::counters().serve_responses_error.add(1);
    return make_error(req.id, ErrorCode::kBadRequest,
                      "unknown scheduler '" + req.scheduler + "'");
  }
  if (req.ncore < 1 || req.ncore > 1024) {
    obs::counters().serve_responses_error.add(1);
    return make_error(req.id, ErrorCode::kBadRequest, "ncore out of range");
  }

  const bool has_deadline = req.deadline_ms > 0;
  const Clock::time_point deadline =
      has_deadline ? start + std::chrono::milliseconds(req.deadline_ms) : Clock::time_point::max();

  // Admission: never block on a full queue — answer overload right away.
  obs::counters().serve_queue_depth.record(pool_.queue_depth());
  auto out = std::make_shared<Response>();
  auto task = pool_.try_submit(
      [this, &req, out, start, deadline, has_deadline] {
        *out = compile(req, start, deadline, has_deadline);
      });
  if (task == nullptr) {
    obs::counters().serve_rejected_overload.add(1);
    obs::counters().serve_responses_error.add(1);
    return make_error(req.id, ErrorCode::kOverload, "compile queue over high-water mark",
                      opts_.retry_after_ms);
  }
  obs::counters().serve_requests.add(1);

  if (has_deadline && !task->wait_until(deadline)) {
    // Expired while queued: cancel before it starts. If it is already
    // running, the pipeline's own deadline checks bound the overrun —
    // wait for its (deadline-errored) response.
    if (task->cancel()) {
      obs::counters().serve_deadline_missed.add(1);
      obs::counters().serve_responses_error.add(1);
      return make_error(req.id, ErrorCode::kDeadline, "deadline expired while queued");
    }
  }
  task->wait();
  try {
    task->rethrow();
  } catch (const std::exception& ex) {
    obs::counters().serve_responses_error.add(1);
    return make_error(req.id, ErrorCode::kInternal, ex.what());
  } catch (...) {
    obs::counters().serve_responses_error.add(1);
    return make_error(req.id, ErrorCode::kInternal, "unknown exception");
  }
  out->id = req.id;
  out->server_ms = ms_since(start);
  if (out->ok) {
    obs::counters().serve_responses_ok.add(1);
  } else {
    obs::counters().serve_responses_error.add(1);
  }
  return std::move(*out);
}

Response CompileService::compile(const Request& req, Clock::time_point start,
                                 Clock::time_point deadline, bool has_deadline) const {
  TMS_TRACE_SPAN(span, "serve", "serve.request");
  const auto expired = [&] { return has_deadline && Clock::now() > deadline; };
  const auto deadline_response = [&](const char* stage) {
    obs::counters().serve_deadline_missed.add(1);
    return make_error(req.id, ErrorCode::kDeadline,
                      std::string("deadline expired ") + stage);
  };

  if (const auto err = req.loop.validate()) {
    return make_error(req.id, ErrorCode::kBadRequest, "malformed loop: " + *err);
  }
  if (expired()) return deadline_response("before scheduling");

  machine::SpmtConfig cfg;
  cfg.ncore = req.ncore;

  Response resp;
  resp.id = req.id;
  resp.scheduler = req.scheduler;

  std::optional<Scheduled> sl;
  std::uint64_t key = 0;
  if (cache_ != nullptr) {
    key = driver::ScheduleCache::key(req.loop, mach_, cfg, req.scheduler);
    if (const auto entry = cache_->lookup(key, req.loop.num_instrs())) {
      sl = from_cache(req.loop, mach_, *entry);
      resp.cache_hit = sl.has_value();
    }
    obs::counters().driver_cache_hits.add(sl.has_value() ? 1 : 0);
    obs::counters().driver_cache_misses.add(sl.has_value() ? 0 : 1);
  }
  if (!sl.has_value()) {
    sl = schedule_fresh(req.loop, mach_, cfg, req.scheduler);
    if (!sl.has_value()) {
      return make_error(req.id, ErrorCode::kScheduleFail,
                        req.scheduler + " found no schedule");
    }
    if (cache_ != nullptr) {
      cache_->insert(key, to_entry(*sl, req.scheduler));
      obs::counters().driver_schedules_cached.add(1);
    }
  }
  if (expired()) return deadline_response("after scheduling");

  // Cache hits are always re-validated (defence against semantic disk
  // corruption), mirroring the batch driver's contract.
  if (opts_.validate || resp.cache_hit) {
    const check::CheckReport valid =
        check::validate_schedule(sl->schedule, cfg, sl->check_opts);
    if (!valid.ok()) {
      if (resp.cache_hit) {
        resp.cache_hit = false;
        sl = schedule_fresh(req.loop, mach_, cfg, req.scheduler);
        if (!sl.has_value()) {
          return make_error(req.id, ErrorCode::kScheduleFail,
                            req.scheduler + " found no schedule");
        }
        if (cache_ != nullptr) {
          cache_->insert(key, to_entry(*sl, req.scheduler));
          obs::counters().driver_schedules_cached.add(1);
        }
        const check::CheckReport revalid =
            check::validate_schedule(sl->schedule, cfg, sl->check_opts);
        if (!revalid.ok()) {
          return make_error(req.id, ErrorCode::kValidateFail,
                            "validator: " + revalid.to_string());
        }
      } else {
        return make_error(req.id, ErrorCode::kValidateFail, "validator: " + valid.to_string());
      }
    }
  }
  if (expired()) return deadline_response("after validation");

  resp.ok = true;
  resp.ii = sl->schedule.ii();
  resp.mii = sl->mii;
  resp.c_delay_threshold = sl->check_opts.c_delay_threshold;
  resp.p_max = sl->check_opts.p_max;
  const int n = req.loop.num_instrs();
  resp.slots.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) resp.slots.push_back(sl->schedule.slot(v));
  resp.server_ms = ms_since(start);
  return resp;
}

}  // namespace tms::serve
