#include "serve/service.hpp"

#include <exception>
#include <optional>
#include <utility>

#include "check/validate.hpp"
#include "codegen/kernel_program.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sched/ims.hpp"
#include "sched/postpass.hpp"
#include "sched/sms.hpp"
#include "sched/tms.hpp"
#include "spmt/estimate.hpp"
#include "support/json.hpp"

namespace tms::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

std::int64_t us_since(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start).count();
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

struct Scheduled {
  sched::Schedule schedule;
  check::CheckOptions check_opts;
  int mii = 0;
};

std::optional<Scheduled> schedule_fresh(const ir::Loop& loop, const machine::MachineModel& mach,
                                        const machine::SpmtConfig& cfg,
                                        const std::string& scheduler) {
  if (scheduler == "sms") {
    if (auto r = sched::sms_schedule(loop, mach)) {
      return Scheduled{std::move(r->schedule), {}, r->mii};
    }
    return std::nullopt;
  }
  if (scheduler == "ims") {
    if (auto r = sched::ims_schedule(loop, mach)) {
      return Scheduled{std::move(r->schedule), {}, r->mii};
    }
    return std::nullopt;
  }
  if (auto r = sched::tms_schedule(loop, mach, cfg)) {
    Scheduled out{std::move(r->schedule), {}, r->mii};
    out.check_opts.c_delay_threshold = r->c_delay_threshold;
    out.check_opts.p_max = r->p_max;
    return out;
  }
  return std::nullopt;
}

std::optional<Scheduled> from_cache(const ir::Loop& loop, const machine::MachineModel& mach,
                                    const driver::ScheduleCache::Entry& e) {
  sched::Schedule s(loop, mach, e.ii);
  for (int v = 0; v < loop.num_instrs(); ++v) {
    s.set_slot(v, e.slots[static_cast<std::size_t>(v)]);
  }
  if (s.validate().has_value()) return std::nullopt;
  Scheduled out{std::move(s), {}, e.mii};
  out.check_opts.c_delay_threshold = e.c_delay_threshold;
  out.check_opts.p_max = e.p_max;
  return out;
}

driver::ScheduleCache::Entry to_entry(const Scheduled& sl, const std::string& scheduler) {
  driver::ScheduleCache::Entry e;
  e.scheduler = scheduler;
  e.ii = sl.schedule.ii();
  e.mii = sl.mii;
  e.c_delay_threshold = sl.check_opts.c_delay_threshold;
  e.p_max = sl.check_opts.p_max;
  const int n = sl.schedule.loop().num_instrs();
  e.slots.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) e.slots.push_back(sl.schedule.slot(v));
  return e;
}

}  // namespace

CompileService::CompileService(const machine::MachineModel& mach, driver::ScheduleCache* cache,
                               ServiceOptions opts)
    : mach_(mach),
      cache_(cache),
      opts_(opts),
      started_(Clock::now()),
      pool_(opts.threads, opts.queue_capacity) {}

CompileService::~CompileService() { shutdown(); }

void CompileService::begin_drain() { draining_.store(true, std::memory_order_release); }

void CompileService::shutdown() {
  begin_drain();
  pool_.shutdown(driver::TaskPool::Drain::kFinishQueued);
}

std::int64_t CompileService::uptime_ms() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - started_).count();
}

std::string CompileService::stats_json() const {
  support::JsonWriter w;
  w.begin_object();
  w.member("schema", "tmsd-stats-v1");
  w.member("uptime_ms", uptime_ms());
  w.member("queue_depth", static_cast<std::uint64_t>(pool_.queue_depth()));
  w.member("in_flight", in_flight());
  w.member("draining", draining());
  w.key("observability");
  obs::write_counters_json(w, obs::counters_snapshot());
  w.end_object();
  return w.str();
}

std::string CompileService::peek_reply(std::string_view payload) {
  // A malformed probe gets a well-formed miss rather than a protocol
  // error: the asking shard treats every non-hit identically (it just
  // recomputes), so there is nothing useful to signal.
  auto parsed = parse_peek(payload);
  if (std::holds_alternative<std::string>(parsed) || cache_ == nullptr) {
    return serialise_peek_reply(std::nullopt);
  }
  const PeekQuery& q = std::get<PeekQuery>(parsed);
  return serialise_peek_reply(cache_->lookup(q.key, q.expect_instrs));
}

std::string CompileService::flight_json() const {
  if (opts_.flight == nullptr) return Handler::flight_json();
  return obs::flight_to_json(*opts_.flight);
}

std::string CompileService::health_line() const {
  const bool d = draining();
  std::string out = d ? "draining" : "ok";
  out += " uptime_ms=" + std::to_string(uptime_ms());
  out += " queue_depth=" + std::to_string(pool_.queue_depth());
  out += " in_flight=" + std::to_string(in_flight());
  out += " draining=";
  out += d ? '1' : '0';
  return out;
}

void CompileService::log_slow(const Request& req, const Response& resp, std::string_view peer) {
  support::JsonWriter w;
  w.begin_object();
  w.member("schema", "tmsd-slow-v1");
  w.member("request_id", resp.request_id);
  // Trace exemplar: the id that finds this request in a stitched
  // cluster trace or a flight-recorder dump.
  if (resp.trace_id != 0) w.member("trace_id", hex16(resp.trace_id));
  w.member("peer", peer.empty() ? std::string_view("?") : peer);
  w.member("scheduler", req.scheduler);
  w.member("loop", req.loop.name());
  w.member("outcome", resp.ok ? std::string_view("ok") : to_string(resp.code));
  w.member("queue_us", resp.t_queue_us);
  w.member("schedule_us", resp.t_schedule_us);
  w.member("validate_us", resp.t_validate_us);
  w.member("total_us", resp.t_total_us);
  w.end_object();
  std::FILE* dest = opts_.slow_log != nullptr ? opts_.slow_log : stderr;
  const std::lock_guard<std::mutex> lock(slow_log_mu_);
  std::fprintf(dest, "%s\n", w.str().c_str());
  std::fflush(dest);
}

Response CompileService::handle(const Request& req, std::string_view peer) {
  const Clock::time_point start = Clock::now();
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  std::string request_id = req.request_id;
  if (request_id.empty()) {
    request_id =
        "srv-" + std::to_string(minted_ids_.fetch_add(1, std::memory_order_relaxed) + 1);
  }

  const bool has_deadline = req.deadline_ms > 0;
  const Clock::time_point deadline =
      has_deadline ? start + std::chrono::milliseconds(req.deadline_ms) : Clock::time_point::max();

  bool pipeline_ran = false;
  Response resp = admit(req, request_id, start, deadline, has_deadline, pipeline_ran);
  resp.id = req.id;
  resp.request_id = request_id;
  // Echo the trace id on every outcome, including turn-aways minted in
  // admit(); the span id is set by the pipeline when it ran.
  resp.trace_id = req.trace_id;
  const std::int64_t total_us = us_since(start);
  resp.server_ms = ms_since(start);

  // Stage latencies are recorded together, for exactly the requests
  // whose pipeline task ran (never for overload/drain turn-aways or
  // cancelled-while-queued deadlines): the four serve.latency.*
  // histograms always hold the same number of samples, and a stage the
  // request never reached contributes a zero, so per-request
  // queue + schedule + validate <= total holds across the sums.
  if (pipeline_ran) {
    resp.t_total_us = total_us;
    obs::Counters& c = obs::counters();
    c.serve_latency_queue_wait.record_us(static_cast<std::uint64_t>(resp.t_queue_us));
    c.serve_latency_schedule.record_us(static_cast<std::uint64_t>(resp.t_schedule_us));
    c.serve_latency_validate.record_us(static_cast<std::uint64_t>(resp.t_validate_us));
    c.serve_latency_total.record_us(static_cast<std::uint64_t>(total_us));
  }
  if (resp.ok) {
    obs::counters().serve_responses_ok.add(1);
  } else {
    obs::counters().serve_responses_error.add(1);
  }
  // One flight record per pipeline run: the per-class outcome feed for
  // the FLIGHT verb, SIGUSR2/slow-request dumps, and (next) the
  // adaptive-threshold policy. Turn-aways that never ran the pipeline
  // have no stage story to tell and would flood the ring under
  // overload, so they are not recorded.
  if (pipeline_ran && opts_.flight != nullptr) {
    obs::FlightRecord fr;
    fr.trace_id = resp.trace_id;
    fr.span_id = resp.span_id;
    obs::flight_copy(fr.request_id, sizeof fr.request_id, request_id);
    obs::flight_copy(fr.loop, sizeof fr.loop, req.loop.name());
    obs::flight_copy(fr.scheduler, sizeof fr.scheduler, req.scheduler);
    obs::flight_copy(fr.outcome, sizeof fr.outcome,
                     resp.ok ? std::string_view("ok") : to_string(resp.code));
    fr.instrs = req.loop.num_instrs();
    fr.ncore = req.ncore;
    fr.cache_hit = resp.cache_hit;
    fr.ii = resp.ii;
    fr.mii = resp.mii;
    fr.c_delay_threshold = resp.c_delay_threshold;
    fr.p_max = resp.p_max;
    fr.t_queue_us = resp.t_queue_us;
    fr.t_schedule_us = resp.t_schedule_us;
    fr.t_validate_us = resp.t_validate_us;
    fr.t_total_us = resp.t_total_us;
    opts_.flight->record(fr);
  }
  if (opts_.slow_ms >= 0 && total_us >= opts_.slow_ms * 1000) {
    obs::counters().serve_slow_requests.add(1);
    log_slow(req, resp, peer);
    if (opts_.on_slow) opts_.on_slow();
  }
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  return resp;
}

Response CompileService::admit(const Request& req, const std::string& request_id,
                               Clock::time_point start, Clock::time_point deadline,
                               bool has_deadline, bool& pipeline_ran) {
  if (draining()) {
    obs::counters().serve_drain_refused.add(1);
    return make_error(req.id, ErrorCode::kShutdown, "server is draining");
  }
  if (req.scheduler != "sms" && req.scheduler != "ims" && req.scheduler != "tms") {
    return make_error(req.id, ErrorCode::kBadRequest,
                      "unknown scheduler '" + req.scheduler + "'");
  }
  if (req.ncore < 1 || req.ncore > 1024) {
    return make_error(req.id, ErrorCode::kBadRequest, "ncore out of range");
  }
  if (req.policy_stride < 1 || req.policy_block < 1) {
    return make_error(req.id, ErrorCode::kBadRequest, "policy parameters out of range");
  }
  if (req.bus_bytes_per_transfer < 0 || req.bus_bytes_per_cycle < 1) {
    return make_error(req.id, ErrorCode::kBadRequest, "bus parameters out of range");
  }

  // Admission: never block on a full queue — answer overload right away.
  obs::counters().serve_queue_depth.record(pool_.queue_depth());
  auto out = std::make_shared<Response>();
  auto task = pool_.try_submit(
      [this, &req, &request_id, out, start, deadline, has_deadline] {
        const std::int64_t queue_us = us_since(start);
        *out = compile(req, request_id, queue_us, start, deadline, has_deadline);
      });
  if (task == nullptr) {
    obs::counters().serve_rejected_overload.add(1);
    return make_error(req.id, ErrorCode::kOverload, "compile queue over high-water mark",
                      opts_.retry_after_ms);
  }
  obs::counters().serve_requests.add(1);

  if (has_deadline && !task->wait_until(deadline)) {
    // Expired while queued: cancel before it starts. If it is already
    // running, the pipeline's own deadline checks bound the overrun —
    // wait for its (deadline-errored) response.
    if (task->cancel()) {
      obs::counters().serve_deadline_missed.add(1);
      return make_error(req.id, ErrorCode::kDeadline, "deadline expired while queued");
    }
  }
  task->wait();
  try {
    task->rethrow();
  } catch (const std::exception& ex) {
    return make_error(req.id, ErrorCode::kInternal, ex.what());
  } catch (...) {
    return make_error(req.id, ErrorCode::kInternal, "unknown exception");
  }
  pipeline_ran = true;
  return std::move(*out);
}

Response CompileService::compile(const Request& req, const std::string& request_id,
                                 std::int64_t queue_us, Clock::time_point start,
                                 Clock::time_point deadline, bool has_deadline) const {
  // Continue the caller's distributed trace (or run untraced when the
  // request carried no context): every span below — and any scheduler
  // spans nested deeper — lands in the request's trace, and the
  // pre-minted continuation span id is echoed to the client even while
  // the tracer is disarmed. Compile workers are long-lived pool
  // threads, so the scope also prevents context leaking across
  // requests.
  obs::ScopedTraceContext tctx(req.trace_id, req.parent_span_id);
  TMS_TRACE_SPAN(span, "serve", "serve.request");
  TMS_TRACE_SPAN_ARG(span, obs::targ("request_id", obs::intern(request_id)),
                     obs::targ("queue_us", queue_us));

  Response resp;
  resp.id = req.id;
  resp.scheduler = req.scheduler;
  resp.t_queue_us = queue_us;
  resp.trace_id = req.trace_id;
  resp.span_id = tctx.span_id();

  const auto expired = [&] { return has_deadline && Clock::now() > deadline; };
  // Error responses keep the stage timings accumulated so far, so the
  // slow log and client show where a failed request spent its time.
  const auto fail = [&](ErrorCode code, std::string message, const Response& r) {
    Response e = make_error(req.id, code, std::move(message));
    e.t_queue_us = r.t_queue_us;
    e.t_schedule_us = r.t_schedule_us;
    e.t_validate_us = r.t_validate_us;
    e.trace_id = r.trace_id;
    e.span_id = r.span_id;
    return e;
  };
  const auto deadline_response = [&](const char* stage, const Response& r) {
    obs::counters().serve_deadline_missed.add(1);
    return fail(ErrorCode::kDeadline, std::string("deadline expired ") + stage, r);
  };

  if (const auto err = req.loop.validate()) {
    return fail(ErrorCode::kBadRequest, "malformed loop: " + *err, resp);
  }
  if (expired()) return deadline_response("before scheduling", resp);

  machine::SpmtConfig cfg;
  cfg.ncore = req.ncore;
  // Request fields override the server defaults only where the request
  // deviates from the wire defaults (an omitted field parses back to the
  // default, so "unspecified" and "explicitly default" coincide).
  cfg.policy = req.policy != machine::AllocPolicy::kModulo ? req.policy : opts_.policy;
  cfg.policy_stride = req.policy_stride != 1 ? req.policy_stride : opts_.policy_stride;
  cfg.policy_block = req.policy_block != 1 ? req.policy_block : opts_.policy_block;
  cfg.bus_bytes_per_transfer = req.bus_bytes_per_transfer != 0 ? req.bus_bytes_per_transfer
                                                               : opts_.bus_bytes_per_transfer;
  cfg.bus_bytes_per_cycle =
      req.bus_bytes_per_cycle != 16 ? req.bus_bytes_per_cycle : opts_.bus_bytes_per_cycle;

  const Clock::time_point sched_start = Clock::now();
  std::optional<Scheduled> sl;
  std::uint64_t key = 0;
  {
    TMS_TRACE_SPAN(sched_span, "serve", "serve.schedule");
    if (cache_ != nullptr) {
      key = driver::ScheduleCache::key(req.loop, mach_, cfg, req.scheduler);
      if (const auto entry = cache_->lookup(key, req.loop.num_instrs())) {
        sl = from_cache(req.loop, mach_, *entry);
        resp.cache_hit = sl.has_value();
      }
      obs::counters().driver_cache_hits.add(sl.has_value() ? 1 : 0);
      obs::counters().driver_cache_misses.add(sl.has_value() ? 0 : 1);
    }
    // Local miss: before paying for a fresh scheduling pass, ask ring
    // siblings whether one of them already computed this key (PEEK). A
    // peer hit behaves exactly like a local cache hit — re-validated
    // below, inserted locally so the next miss is local-warm.
    if (!sl.has_value() && cache_ != nullptr && opts_.peer_fill) {
      TMS_TRACE_SPAN(pf_span, "serve", "serve.peer_fill");
      if (const auto entry = opts_.peer_fill(key, req.loop.num_instrs())) {
        sl = from_cache(req.loop, mach_, *entry);
      }
      if (sl.has_value()) {
        resp.cache_hit = true;
        cache_->insert(key, to_entry(*sl, req.scheduler));
        obs::counters().serve_peer_fill_hits.add(1);
      } else {
        obs::counters().serve_peer_fill_misses.add(1);
      }
      TMS_TRACE_SPAN_ARG(pf_span,
                         obs::targ("hit", std::int64_t{sl.has_value() ? 1 : 0}));
    }
    if (!sl.has_value()) {
      sl = schedule_fresh(req.loop, mach_, cfg, req.scheduler);
      if (!sl.has_value()) {
        resp.t_schedule_us = us_since(sched_start);
        return fail(ErrorCode::kScheduleFail, req.scheduler + " found no schedule", resp);
      }
      if (cache_ != nullptr) {
        cache_->insert(key, to_entry(*sl, req.scheduler));
        obs::counters().driver_schedules_cached.add(1);
      }
    }
  }
  resp.t_schedule_us = us_since(sched_start);
  if (expired()) return deadline_response("after scheduling", resp);

  // Cache hits are always re-validated (defence against semantic disk
  // corruption), mirroring the batch driver's contract.
  const Clock::time_point validate_start = Clock::now();
  if (opts_.validate || resp.cache_hit) {
    TMS_TRACE_SPAN(val_span, "serve", "serve.validate");
    const check::CheckReport valid =
        check::validate_schedule(sl->schedule, cfg, sl->check_opts);
    if (!valid.ok()) {
      if (resp.cache_hit) {
        resp.cache_hit = false;
        sl = schedule_fresh(req.loop, mach_, cfg, req.scheduler);
        if (!sl.has_value()) {
          resp.t_validate_us = us_since(validate_start);
          return fail(ErrorCode::kScheduleFail, req.scheduler + " found no schedule", resp);
        }
        if (cache_ != nullptr) {
          cache_->insert(key, to_entry(*sl, req.scheduler));
          obs::counters().driver_schedules_cached.add(1);
        }
        const check::CheckReport revalid =
            check::validate_schedule(sl->schedule, cfg, sl->check_opts);
        if (!revalid.ok()) {
          resp.t_validate_us = us_since(validate_start);
          return fail(ErrorCode::kValidateFail, "validator: " + revalid.to_string(), resp);
        }
      } else {
        resp.t_validate_us = us_since(validate_start);
        return fail(ErrorCode::kValidateFail, "validator: " + valid.to_string(), resp);
      }
    }
  }
  resp.t_validate_us = us_since(validate_start);
  if (expired()) return deadline_response("after validation", resp);

  // Simulator-backed verification (--sim-verify): a bounded run of the
  // event-driven engine over the lowered kernel must commit exactly the
  // sequential reference semantics before the response ships. The
  // validator proves the schedule well-formed; this proves the machine
  // executing it speculatively still produces sequential results.
  if (opts_.sim_verify) {
    TMS_TRACE_SPAN(sv_span, "serve", "serve.sim_verify");
    const Clock::time_point sv_start = Clock::now();
    const codegen::KernelProgram kp = codegen::lower_kernel(sl->schedule, cfg);
    spmt::QuickEstimateOptions qopts;
    qopts.iterations = opts_.sim_verify_iterations;
    const spmt::QuickEstimate qe = spmt::quick_estimate(req.loop, kp, cfg, qopts);
    obs::counters().serve_latency_sim_verify.record_us(
        static_cast<std::uint64_t>(us_since(sv_start)));
    if (!qe.semantics_ok) {
      obs::counters().serve_sim_verify_failures.add(1);
      return fail(ErrorCode::kValidateFail,
                  "sim-verify: committed state diverged from the sequential reference", resp);
    }
    if (expired()) return deadline_response("after sim-verify", resp);
  }

  resp.ok = true;
  resp.ii = sl->schedule.ii();
  resp.mii = sl->mii;
  resp.c_delay_threshold = sl->check_opts.c_delay_threshold;
  resp.p_max = sl->check_opts.p_max;
  const int n = req.loop.num_instrs();
  resp.slots.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) resp.slots.push_back(sl->schedule.slot(v));
  resp.server_ms = ms_since(start);
  return resp;
}

}  // namespace tms::serve
