#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/counters.hpp"
#include "serve/frame.hpp"

namespace tms::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Poll granularity: how quickly connection and accept threads notice
/// stop_ / idle deadlines. Coarse on purpose — shutdown latency, not
/// request latency.
constexpr int kTickMs = 200;

bool send_all(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

bool send_frame(int fd, FrameType type, std::string_view payload) {
  return send_all(fd, encode_frame(type, payload));
}

}  // namespace

SocketServer::SocketServer(Handler& handler, ServerOptions opts)
    : handler_(handler), opts_(std::move(opts)) {}

SocketServer::~SocketServer() { drain(); }

std::optional<std::string> SocketServer::start() {
  if (running_.load(std::memory_order_acquire)) return std::string("already started");
  if (opts_.unix_path.empty()) return std::string("unix_path is required");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.unix_path.size() >= sizeof addr.sun_path) {
    return "unix_path too long (" + std::to_string(opts_.unix_path.size()) + " bytes, max " +
           std::to_string(sizeof addr.sun_path - 1) + ")";
  }
  std::memcpy(addr.sun_path, opts_.unix_path.c_str(), opts_.unix_path.size() + 1);

  unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (unix_fd_ < 0) return std::string("socket: ") + std::strerror(errno);
  ::unlink(opts_.unix_path.c_str());
  if (::bind(unix_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(unix_fd_, 128) != 0) {
    const std::string err = std::string("bind/listen ") + opts_.unix_path + ": " +
                            std::strerror(errno);
    ::close(unix_fd_);
    unix_fd_ = -1;
    return err;
  }

  if (opts_.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (tcp_fd_ < 0) {
      ::close(unix_fd_);
      unix_fd_ = -1;
      return std::string("tcp socket: ") + std::strerror(errno);
    }
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in in{};
    in.sin_family = AF_INET;
    in.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, deliberately
    in.sin_port = htons(static_cast<std::uint16_t>(opts_.tcp_port));
    if (::bind(tcp_fd_, reinterpret_cast<const sockaddr*>(&in), sizeof in) != 0 ||
        ::listen(tcp_fd_, 128) != 0) {
      const std::string err = std::string("tcp bind/listen port ") +
                              std::to_string(opts_.tcp_port) + ": " + std::strerror(errno);
      ::close(tcp_fd_);
      ::close(unix_fd_);
      tcp_fd_ = unix_fd_ = -1;
      return err;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  }

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return std::nullopt;
}

void SocketServer::drain() {
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  reap_finished(/*join_all=*/true);
  running_.store(false, std::memory_order_release);
}

int SocketServer::connection_count() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  int live = 0;
  for (const auto& c : conns_) {
    if (!c->done.load(std::memory_order_acquire)) ++live;
  }
  return live;
}

void SocketServer::reap_finished(bool join_all) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (join_all || (*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->th.joinable()) (*it)->th.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void SocketServer::accept_loop() {
  pollfd pfds[2];
  nfds_t nfds = 0;
  pfds[nfds++] = {unix_fd_, POLLIN, 0};
  if (tcp_fd_ >= 0) pfds[nfds++] = {tcp_fd_, POLLIN, 0};

  while (!stop_.load(std::memory_order_acquire)) {
    const int r = ::poll(pfds, nfds, kTickMs);
    reap_finished(/*join_all=*/false);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) continue;
    for (nfds_t i = 0; i < nfds; ++i) {
      if ((pfds[i].revents & POLLIN) == 0) continue;
      sockaddr_storage peer_addr{};
      socklen_t peer_len = sizeof peer_addr;
      const int fd = ::accept4(pfds[i].fd, reinterpret_cast<sockaddr*>(&peer_addr), &peer_len,
                               SOCK_CLOEXEC);
      if (fd < 0) continue;
      std::string peer = "unix";
      if (peer_addr.ss_family == AF_INET) {
        const auto* in = reinterpret_cast<const sockaddr_in*>(&peer_addr);
        char ip[INET_ADDRSTRLEN] = {};
        ::inet_ntop(AF_INET, &in->sin_addr, ip, sizeof ip);
        peer = std::string(ip) + ":" + std::to_string(ntohs(in->sin_port));
      }
      obs::counters().serve_connections.add(1);
      if (connection_count() >= opts_.max_connections) {
        // Turn the connection away with a structured answer rather than
        // letting it rot in the backlog or vanish with a reset.
        obs::counters().serve_rejected_overload.add(1);
        const Response err =
            make_error(0, ErrorCode::kOverload, "connection limit reached",
                       handler_.retry_after_ms());
        send_frame(fd, FrameType::kResponse, serialise_response(err));
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
        continue;
      }
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conn->peer = std::move(peer);
      Conn* raw = conn.get();
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        conns_.push_back(std::move(conn));
      }
      raw->th = std::thread([this, raw] { connection_loop(raw); });
    }
  }

  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
    ::unlink(opts_.unix_path.c_str());
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
}

void SocketServer::connection_loop(Conn* conn) {
  const int fd = conn->fd;
  FrameReader reader;
  const auto idle_budget = std::chrono::milliseconds(
      opts_.idle_timeout_ms > 0 ? opts_.idle_timeout_ms : 0);
  Clock::time_point idle_deadline = Clock::now() + idle_budget;
  char buf[64 * 1024];
  bool alive = true;

  while (alive && !stop_.load(std::memory_order_acquire)) {
    pollfd pfd{fd, POLLIN, 0};
    const int r = ::poll(&pfd, 1, kTickMs);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) {
      if (opts_.idle_timeout_ms > 0 && Clock::now() > idle_deadline) {
        obs::counters().serve_idle_timeouts.add(1);
        break;
      }
      continue;
    }
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;
    }
    idle_deadline = Clock::now() + idle_budget;

    reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    Frame frame;
    while (alive) {
      const FrameReader::Next next = reader.next(frame);
      if (next == FrameReader::Next::kNeedMore) break;
      if (next == FrameReader::Next::kError) {
        obs::counters().serve_rejected_malformed.add(1);
        const Response err =
            make_error(0, ErrorCode::kParse,
                       std::string("malformed frame: ") + std::string(to_string(reader.error())));
        send_frame(fd, FrameType::kResponse, serialise_response(err));
        alive = false;  // framing cannot resync; drop the connection
        break;
      }
      if (!handle_frame(fd, frame, conn->peer)) alive = false;
    }
  }

  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  conn->done.store(true, std::memory_order_release);
}

bool SocketServer::handle_frame(int fd, const Frame& frame, const std::string& peer) {
  switch (frame.type) {
    case FrameType::kPing:
      return send_frame(fd, FrameType::kPong, {});
    case FrameType::kStats:
      // Side-channel snapshot: cheap, never queued, and answered even
      // while the service drains — the monitoring path must not die
      // first during shutdown.
      obs::counters().serve_stats_requests.add(1);
      return send_frame(fd, FrameType::kStatsReply, handler_.stats_json());
    case FrameType::kHealth:
      obs::counters().serve_stats_requests.add(1);
      return send_frame(fd, FrameType::kHealthReply, handler_.health_line());
    case FrameType::kPeek:
      // Cache peer-fill probe: same side-channel contract as
      // STATS/HEALTH — answered from the cache on this thread, never
      // queued behind compile work, and still answered while draining
      // (a sibling mid-drain is exactly when its cache is warmest).
      obs::counters().serve_peek_requests.add(1);
      return send_frame(fd, FrameType::kPeekReply, handler_.peek_reply(frame.payload));
    case FrameType::kClusterStats:
      // Cluster telemetry joins the side channel: on a router this fans
      // out to the backends and merges; on a daemon it answers a
      // one-shard snapshot. Either way it is served inline and during
      // drain — the cluster view must outlive the request path.
      obs::counters().serve_cluster_stats_requests.add(1);
      return send_frame(fd, FrameType::kClusterStatsReply, handler_.cluster_stats_json());
    case FrameType::kFlight:
      obs::counters().serve_flight_requests.add(1);
      return send_frame(fd, FrameType::kFlightReply, handler_.flight_json());
    case FrameType::kRequest: {
      auto parsed = parse_request(frame.payload);
      if (const auto* err = std::get_if<std::string>(&parsed)) {
        // Well-framed but unparseable: answer and keep the connection —
        // the byte stream itself is still in sync.
        obs::counters().serve_rejected_malformed.add(1);
        const Response resp = make_error(0, ErrorCode::kParse, *err);
        return send_frame(fd, FrameType::kResponse, serialise_response(resp));
      }
      const Response resp = handler_.handle(std::get<Request>(parsed), peer);
      return send_frame(fd, FrameType::kResponse, serialise_response(resp));
    }
    case FrameType::kResponse:
    case FrameType::kPong:
    case FrameType::kStatsReply:
    case FrameType::kHealthReply:
    case FrameType::kPeekReply:
    case FrameType::kClusterStatsReply:
    case FrameType::kFlightReply:
      // Clients must not send server-direction frames.
      obs::counters().serve_rejected_malformed.add(1);
      const Response resp =
          make_error(0, ErrorCode::kBadRequest,
                     std::string("unexpected frame type ") + std::string(to_string(frame.type)));
      send_frame(fd, FrameType::kResponse, serialise_response(resp));
      return false;
  }
  return false;
}

}  // namespace tms::serve
