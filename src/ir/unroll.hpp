// Loop unrolling — the paper's "future work" extension.
//
// Section 6: "We are working on incorporating loop unrolling into TMS to
// allow us to tradeoff between communication and parallelism by varying
// thread granularities." Unrolling by u makes each thread execute u
// source iterations: cross-iteration dependences with distance < u become
// intra-body (no communication), at the cost of a u-times larger II per
// thread (coarser TLP grain).
#pragma once

#include "ir/loop.hpp"

namespace tms::ir {

/// Unrolls `loop` by `factor`. Copy k of node v gets id k*n + v (n =
/// original instruction count). An edge with distance d maps, for each
/// consumer copy k, to producer copy (k - d) mod factor at distance
/// ceil((d - k) / factor); intra-body copies of formerly cross-iteration
/// dependences therefore carry distance 0.
Loop unroll(const Loop& loop, int factor);

/// Copy-k id of node v in the unrolled loop.
inline NodeId unrolled_id(const Loop& original, NodeId v, int copy) {
  return copy * original.num_instrs() + v;
}

}  // namespace tms::ir
