#include "ir/loop.hpp"

#include <sstream>

namespace tms::ir {

void Loop::reserve(int instrs, std::size_t deps) {
  TMS_ASSERT(instrs >= 0);
  const auto n = static_cast<std::size_t>(instrs);
  instrs_.reserve(n);
  out_.reserve(n);
  in_.reserve(n);
  deps_.reserve(deps);
}

NodeId Loop::add_instr(Opcode op, std::string name) {
  const NodeId id = static_cast<NodeId>(instrs_.size());
  if (name.empty()) {
    name = "n" + std::to_string(id);
  }
  instrs_.push_back(Instr{id, op, std::move(name)});
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

std::size_t Loop::add_dep(NodeId src, NodeId dst, DepKind kind, DepType type, int distance,
                          double probability) {
  TMS_ASSERT(src >= 0 && src < num_instrs());
  TMS_ASSERT(dst >= 0 && dst < num_instrs());
  TMS_ASSERT(distance >= 0);
  TMS_ASSERT(probability > 0.0 && probability <= 1.0);
  const std::size_t idx = deps_.size();
  deps_.push_back(DepEdge{src, dst, kind, type, distance, probability});
  out_[static_cast<std::size_t>(src)].push_back(idx);
  in_[static_cast<std::size_t>(dst)].push_back(idx);
  return idx;
}

std::optional<std::string> Loop::validate() const {
  std::ostringstream err;
  if (instrs_.empty()) return "loop has no instructions";
  for (std::size_t i = 0; i < deps_.size(); ++i) {
    const DepEdge& e = deps_[i];
    if (e.src < 0 || e.src >= num_instrs() || e.dst < 0 || e.dst >= num_instrs()) {
      err << "edge " << i << " has out-of-range endpoint";
      return err.str();
    }
    if (e.distance < 0) {
      err << "edge " << i << " has negative distance";
      return err.str();
    }
    if (e.distance == 0 && e.src == e.dst) {
      err << "edge " << i << " is a zero-distance self-loop (unschedulable)";
      return err.str();
    }
    if (e.probability <= 0.0 || e.probability > 1.0) {
      err << "edge " << i << " probability out of (0,1]";
      return err.str();
    }
    if (e.kind == DepKind::kMemory) {
      const Opcode so = instr(e.src).op;
      const Opcode do_ = instr(e.dst).op;
      if (!is_memory(so) || !is_memory(do_)) {
        err << "memory edge " << i << " between non-memory instructions";
        return err.str();
      }
    }
  }
  // Intra-iteration (distance-0) register/memory edges must form a DAG,
  // otherwise no schedule of a single iteration exists.
  std::vector<int> indeg(static_cast<std::size_t>(num_instrs()), 0);
  for (const DepEdge& e : deps_) {
    if (e.distance == 0) ++indeg[static_cast<std::size_t>(e.dst)];
  }
  std::vector<NodeId> stack;
  for (NodeId v = 0; v < num_instrs(); ++v) {
    if (indeg[static_cast<std::size_t>(v)] == 0) stack.push_back(v);
  }
  int seen = 0;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    ++seen;
    for (std::size_t ei : out_edges(v)) {
      const DepEdge& e = deps_[ei];
      if (e.distance != 0) continue;
      if (--indeg[static_cast<std::size_t>(e.dst)] == 0) stack.push_back(e.dst);
    }
  }
  if (seen != num_instrs()) {
    return "distance-0 dependence cycle: a single iteration cannot be sequenced";
  }
  return std::nullopt;
}

}  // namespace tms::ir
