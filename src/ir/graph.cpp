#include "ir/graph.hpp"

#include <algorithm>
#include <functional>
#include <queue>

#include "support/assert.hpp"

namespace tms::ir {
namespace {

/// Iterative Tarjan to avoid deep recursion on the largest synthetic loops.
struct TarjanState {
  const Loop& loop;
  std::vector<int> index;
  std::vector<int> lowlink;
  std::vector<bool> on_stack;
  std::vector<NodeId> stack;
  int next_index = 0;
  SccResult result;

  explicit TarjanState(const Loop& l)
      : loop(l),
        index(static_cast<std::size_t>(l.num_instrs()), -1),
        lowlink(static_cast<std::size_t>(l.num_instrs()), -1),
        on_stack(static_cast<std::size_t>(l.num_instrs()), false) {
    result.component.assign(static_cast<std::size_t>(l.num_instrs()), -1);
  }

  void run(NodeId root) {
    struct Frame {
      NodeId v;
      std::size_t edge_pos;
    };
    std::vector<Frame> frames;
    frames.push_back({root, 0});
    index[static_cast<std::size_t>(root)] = lowlink[static_cast<std::size_t>(root)] = next_index++;
    stack.push_back(root);
    on_stack[static_cast<std::size_t>(root)] = true;

    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& outs = loop.out_edges(f.v);
      if (f.edge_pos < outs.size()) {
        const DepEdge& e = loop.dep(outs[f.edge_pos++]);
        const NodeId w = e.dst;
        if (index[static_cast<std::size_t>(w)] < 0) {
          index[static_cast<std::size_t>(w)] = lowlink[static_cast<std::size_t>(w)] = next_index++;
          stack.push_back(w);
          on_stack[static_cast<std::size_t>(w)] = true;
          frames.push_back({w, 0});
        } else if (on_stack[static_cast<std::size_t>(w)]) {
          lowlink[static_cast<std::size_t>(f.v)] =
              std::min(lowlink[static_cast<std::size_t>(f.v)], index[static_cast<std::size_t>(w)]);
        }
      } else {
        const NodeId v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          const NodeId parent = frames.back().v;
          lowlink[static_cast<std::size_t>(parent)] =
              std::min(lowlink[static_cast<std::size_t>(parent)], lowlink[static_cast<std::size_t>(v)]);
        }
        if (lowlink[static_cast<std::size_t>(v)] == index[static_cast<std::size_t>(v)]) {
          std::vector<NodeId> members;
          for (;;) {
            const NodeId w = stack.back();
            stack.pop_back();
            on_stack[static_cast<std::size_t>(w)] = false;
            result.component[static_cast<std::size_t>(w)] =
                static_cast<int>(result.sccs.size());
            members.push_back(w);
            if (w == v) break;
          }
          std::sort(members.begin(), members.end());
          result.sccs.push_back(std::move(members));
        }
      }
    }
  }
};

}  // namespace

bool SccResult::is_trivial(int comp) const {
  const auto c = static_cast<std::size_t>(comp);
  if (sccs[c].size() > 1) return false;
  return self_loops.empty() || !self_loops[c];
}

SccResult strongly_connected_components(const Loop& loop) {
  TarjanState st(loop);
  for (NodeId v = 0; v < loop.num_instrs(); ++v) {
    if (st.index[static_cast<std::size_t>(v)] < 0) st.run(v);
  }
  // Record which single-node components carry a self-loop (distance >= 1).
  st.result.self_loops.assign(st.result.sccs.size(), false);
  for (const DepEdge& e : loop.deps()) {
    if (e.src == e.dst) {
      st.result.self_loops[static_cast<std::size_t>(
          st.result.component[static_cast<std::size_t>(e.src)])] = true;
    }
  }
  return st.result;
}

int count_nontrivial_sccs(const Loop& loop) {
  const SccResult scc = strongly_connected_components(loop);
  int n = 0;
  for (int c = 0; c < scc.num_components(); ++c) {
    if (!scc.is_trivial(c)) ++n;
  }
  return n;
}

std::vector<NodeId> topo_order_intra(const Loop& loop) {
  const auto n = static_cast<std::size_t>(loop.num_instrs());
  std::vector<int> indeg(n, 0);
  for (const DepEdge& e : loop.deps()) {
    if (e.distance == 0) ++indeg[static_cast<std::size_t>(e.dst)];
  }
  // Min-id-first worklist keeps ordering deterministic; the min-heap
  // extracts the same node a min_element scan would, in O(log n).
  std::vector<NodeId> order;
  order.reserve(n);
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<NodeId>> ready;
  for (NodeId v = 0; v < loop.num_instrs(); ++v) {
    if (indeg[static_cast<std::size_t>(v)] == 0) ready.push(v);
  }
  while (!ready.empty()) {
    const NodeId v = ready.top();
    ready.pop();
    order.push_back(v);
    for (std::size_t ei : loop.out_edges(v)) {
      const DepEdge& e = loop.dep(ei);
      if (e.distance != 0) continue;
      if (--indeg[static_cast<std::size_t>(e.dst)] == 0) ready.push(e.dst);
    }
  }
  TMS_ASSERT_MSG(order.size() == n, "distance-0 subgraph must be acyclic");
  return order;
}

int longest_dependence_path(const Loop& loop, const std::vector<int>& latency) {
  const std::vector<NodeId> order = topo_order_intra(loop);
  std::vector<int> finish(static_cast<std::size_t>(loop.num_instrs()), 0);
  int best = 0;
  for (const NodeId v : order) {
    int start = 0;
    for (std::size_t ei : loop.in_edges(v)) {
      const DepEdge& e = loop.dep(ei);
      if (e.distance != 0) continue;
      start = std::max(start, finish[static_cast<std::size_t>(e.src)]);
    }
    finish[static_cast<std::size_t>(v)] = start + latency[static_cast<std::size_t>(v)];
    best = std::max(best, finish[static_cast<std::size_t>(v)]);
  }
  return best;
}

std::vector<int> node_heights(const Loop& loop, const std::vector<int>& latency) {
  return node_heights(loop, latency, topo_order_intra(loop));
}

std::vector<int> node_heights(const Loop& loop, const std::vector<int>& latency,
                              const std::vector<NodeId>& order) {
  std::vector<int> height(static_cast<std::size_t>(loop.num_instrs()), 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    int below = 0;
    for (std::size_t ei : loop.out_edges(v)) {
      const DepEdge& e = loop.dep(ei);
      if (e.distance != 0) continue;
      below = std::max(below, height[static_cast<std::size_t>(e.dst)]);
    }
    height[static_cast<std::size_t>(v)] = below + latency[static_cast<std::size_t>(v)];
  }
  return height;
}

std::vector<int> node_depths(const Loop& loop, const std::vector<int>& latency) {
  return node_depths(loop, latency, topo_order_intra(loop));
}

std::vector<int> node_depths(const Loop& loop, const std::vector<int>& latency,
                             const std::vector<NodeId>& order) {
  std::vector<int> depth(static_cast<std::size_t>(loop.num_instrs()), 0);
  for (const NodeId v : order) {
    int above = 0;
    for (std::size_t ei : loop.in_edges(v)) {
      const DepEdge& e = loop.dep(ei);
      if (e.distance != 0) continue;
      above = std::max(above,
                       depth[static_cast<std::size_t>(e.src)] + latency[static_cast<std::size_t>(e.src)]);
    }
    depth[static_cast<std::size_t>(v)] = above;
  }
  return depth;
}

}  // namespace tms::ir
