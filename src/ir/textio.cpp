#include "ir/textio.hpp"

#include <map>
#include <sstream>
#include <vector>

namespace tms::ir {
namespace {

const std::map<std::string, Opcode>& opcode_names() {
  static const std::map<std::string, Opcode> names = {
      {"iadd", Opcode::kIAdd},   {"isub", Opcode::kISub}, {"imul", Opcode::kIMul},
      {"shift", Opcode::kShift}, {"logic", Opcode::kLogic}, {"cmp", Opcode::kCmp},
      {"cmov", Opcode::kCMov},   {"fadd", Opcode::kFAdd}, {"fsub", Opcode::kFSub},
      {"fmul", Opcode::kFMul},   {"fdiv", Opcode::kFDiv}, {"fsqrt", Opcode::kFSqrt},
      {"fcmp", Opcode::kFCmp},   {"fcvt", Opcode::kFCvt}, {"load", Opcode::kLoad},
      {"store", Opcode::kStore}, {"lea", Opcode::kLea},   {"copy", Opcode::kCopy},
      {"nop", Opcode::kNop},
  };
  return names;
}

bool parse_dep_type(const std::string& word, DepType& out) {
  if (word == "flow") {
    out = DepType::kFlow;
  } else if (word == "anti") {
    out = DepType::kAnti;
  } else if (word == "output") {
    out = DepType::kOutput;
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::variant<Loop, ParseError> parse_loop(std::istream& in) {
  Loop loop;
  std::map<std::string, NodeId> ids;
  bool named = false;
  std::string line;
  int lineno = 0;

  auto fail = [&](const std::string& msg) { return ParseError{lineno, msg}; };

  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw)) continue;  // blank line

    if (kw == "loop") {
      std::string name;
      if (!(ls >> name)) return fail("'loop' requires a name");
      loop.set_name(name);
      named = true;
    } else if (kw == "coverage") {
      double c = 0.0;
      if (!(ls >> c) || c < 0.0 || c > 1.0) return fail("'coverage' requires a value in [0,1]");
      loop.set_coverage(c);
    } else if (kw == "instr") {
      std::string name;
      std::string opname;
      if (!(ls >> name >> opname)) return fail("'instr' requires: name opcode");
      if (ids.count(name) != 0) return fail("duplicate instruction name '" + name + "'");
      const auto it = opcode_names().find(opname);
      if (it == opcode_names().end()) return fail("unknown opcode '" + opname + "'");
      ids[name] = loop.add_instr(it->second, name);
    } else if (kw == "reg" || kw == "mem") {
      std::string src;
      std::string dst;
      int distance = 0;
      if (!(ls >> src >> dst >> distance)) {
        return fail("'" + kw + "' requires: src dst distance");
      }
      if (ids.count(src) == 0) return fail("unknown instruction '" + src + "'");
      if (ids.count(dst) == 0) return fail("unknown instruction '" + dst + "'");
      if (distance < 0) return fail("distance must be >= 0");
      double probability = 1.0;
      if (kw == "mem" && !(ls >> probability)) {
        return fail("'mem' requires a probability after the distance");
      }
      if (probability <= 0.0 || probability > 1.0) {
        return fail("probability must be in (0,1]");
      }
      DepType type = DepType::kFlow;
      std::string tw;
      if (ls >> tw && !parse_dep_type(tw, type)) {
        return fail("unknown dependence type '" + tw + "'");
      }
      loop.add_dep(ids[src], ids[dst], kw == "reg" ? DepKind::kRegister : DepKind::kMemory,
                   type, distance, probability);
    } else if (kw == "livein") {
      std::string name;
      if (!(ls >> name)) return fail("'livein' requires an instruction name");
      if (ids.count(name) == 0) return fail("unknown instruction '" + name + "'");
      loop.mark_live_in(ids[name]);
    } else {
      return fail("unknown keyword '" + kw + "'");
    }
  }
  if (!named) {
    lineno = 0;
    return fail("missing 'loop <name>' header");
  }
  if (const auto err = loop.validate()) {
    lineno = 0;
    return fail("invalid loop: " + *err);
  }
  return loop;
}

std::variant<Loop, ParseError> parse_loop_string(const std::string& text) {
  std::istringstream in(text);
  return parse_loop(in);
}

std::string serialise_loop(const Loop& loop) {
  std::ostringstream os;
  os << "loop " << loop.name() << "\n";
  if (loop.coverage() > 0.0) os << "coverage " << loop.coverage() << "\n";
  for (const Instr& ins : loop.instrs()) {
    os << "instr " << ins.name << " " << to_string(ins.op) << "\n";
  }
  for (const DepEdge& e : loop.deps()) {
    const char* type = e.type == DepType::kFlow    ? "flow"
                       : e.type == DepType::kAnti ? "anti"
                                                  : "output";
    if (e.kind == DepKind::kRegister) {
      os << "reg " << loop.instr(e.src).name << " " << loop.instr(e.dst).name << " "
         << e.distance << " " << type << "\n";
    } else {
      os << "mem " << loop.instr(e.src).name << " " << loop.instr(e.dst).name << " "
         << e.distance << " " << e.probability << " " << type << "\n";
    }
  }
  for (const NodeId v : loop.live_ins()) {
    os << "livein " << loop.instr(v).name << "\n";
  }
  return os.str();
}

}  // namespace tms::ir
