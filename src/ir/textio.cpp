#include "ir/textio.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

namespace tms::ir {
namespace {

const std::map<std::string, Opcode>& opcode_names() {
  static const std::map<std::string, Opcode> names = {
      {"iadd", Opcode::kIAdd},   {"isub", Opcode::kISub}, {"imul", Opcode::kIMul},
      {"shift", Opcode::kShift}, {"logic", Opcode::kLogic}, {"cmp", Opcode::kCmp},
      {"cmov", Opcode::kCMov},   {"fadd", Opcode::kFAdd}, {"fsub", Opcode::kFSub},
      {"fmul", Opcode::kFMul},   {"fdiv", Opcode::kFDiv}, {"fsqrt", Opcode::kFSqrt},
      {"fcmp", Opcode::kFCmp},   {"fcvt", Opcode::kFCvt}, {"load", Opcode::kLoad},
      {"store", Opcode::kStore}, {"lea", Opcode::kLea},   {"copy", Opcode::kCopy},
      {"nop", Opcode::kNop},
  };
  return names;
}

// Names are free-form (workload generators embed expressions like
// "y - x[i-1]"), so the text format quotes any name the tokeniser would
// otherwise split or misread, with C-style escapes for the characters
// that would break a quoted, line-oriented form.
bool needs_quoting(const std::string& name) {
  if (name.empty()) return true;
  for (const char c : name) {
    if (c == ' ' || c == '\t' || c == '"' || c == '#' || c == '\\' || c == '\n' || c == '\r') {
      return true;
    }
  }
  return false;
}

void write_name(std::ostream& os, const std::string& name) {
  if (!needs_quoting(name)) {
    os << name;
    return;
  }
  os << '"';
  for (const char c : name) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

/// Reads a possibly-quoted name token. False on a malformed (unclosed
/// quote, bad escape) or missing name.
bool read_name(std::istream& ls, std::string& out) {
  ls >> std::ws;
  if (ls.peek() != '"') return static_cast<bool>(ls >> out);
  ls.get();
  out.clear();
  for (int c = ls.get(); c != EOF; c = ls.get()) {
    if (c == '"') return true;
    if (c != '\\') {
      out.push_back(static_cast<char>(c));
      continue;
    }
    switch (ls.get()) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      default: return false;
    }
  }
  return false;  // unterminated quote
}

/// Erases a '#' comment, ignoring '#' inside quoted names.
void strip_comment(std::string& line) {
  bool in_quote = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quote && c == '\\') {
      ++i;
    } else if (c == '"') {
      in_quote = !in_quote;
    } else if (c == '#' && !in_quote) {
      line.erase(i);
      return;
    }
  }
}

/// Prints `v` with the fewest digits that read back exactly. Matters
/// beyond aesthetics: serialised loop text is the ScheduleCache's key
/// content, so two loops whose probabilities differ only past the
/// default six significant digits must not serialise identically.
void write_double(std::ostream& os, double v) {
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  os << buf;
}

bool parse_dep_type(const std::string& word, DepType& out) {
  if (word == "flow") {
    out = DepType::kFlow;
  } else if (word == "anti") {
    out = DepType::kAnti;
  } else if (word == "output") {
    out = DepType::kOutput;
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::variant<Loop, ParseError> parse_loop(std::istream& in) {
  Loop loop;
  std::map<std::string, NodeId> ids;
  bool named = false;
  std::string line;
  int lineno = 0;

  auto fail = [&](const std::string& msg) { return ParseError{lineno, msg}; };

  while (std::getline(in, line)) {
    ++lineno;
    strip_comment(line);
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw)) continue;  // blank line

    if (kw == "loop") {
      std::string name;
      if (!read_name(ls, name)) return fail("'loop' requires a name");
      loop.set_name(name);
      named = true;
    } else if (kw == "coverage") {
      double c = 0.0;
      if (!(ls >> c) || c < 0.0 || c > 1.0) return fail("'coverage' requires a value in [0,1]");
      loop.set_coverage(c);
    } else if (kw == "instr") {
      std::string name;
      std::string opname;
      if (!read_name(ls, name) || !(ls >> opname)) return fail("'instr' requires: name opcode");
      if (ids.count(name) != 0) return fail("duplicate instruction name '" + name + "'");
      const auto it = opcode_names().find(opname);
      if (it == opcode_names().end()) return fail("unknown opcode '" + opname + "'");
      ids[name] = loop.add_instr(it->second, name);
    } else if (kw == "reg" || kw == "mem") {
      std::string src;
      std::string dst;
      int distance = 0;
      if (!read_name(ls, src) || !read_name(ls, dst) || !(ls >> distance)) {
        return fail("'" + kw + "' requires: src dst distance");
      }
      if (ids.count(src) == 0) return fail("unknown instruction '" + src + "'");
      if (ids.count(dst) == 0) return fail("unknown instruction '" + dst + "'");
      if (distance < 0) return fail("distance must be >= 0");
      double probability = 1.0;
      if (kw == "mem" && !(ls >> probability)) {
        return fail("'mem' requires a probability after the distance");
      }
      if (probability <= 0.0 || probability > 1.0) {
        return fail("probability must be in (0,1]");
      }
      DepType type = DepType::kFlow;
      std::string tw;
      if (ls >> tw && !parse_dep_type(tw, type)) {
        return fail("unknown dependence type '" + tw + "'");
      }
      loop.add_dep(ids[src], ids[dst], kw == "reg" ? DepKind::kRegister : DepKind::kMemory,
                   type, distance, probability);
    } else if (kw == "livein") {
      std::string name;
      if (!read_name(ls, name)) return fail("'livein' requires an instruction name");
      if (ids.count(name) == 0) return fail("unknown instruction '" + name + "'");
      loop.mark_live_in(ids[name]);
    } else {
      return fail("unknown keyword '" + kw + "'");
    }
  }
  if (!named) {
    lineno = 0;
    return fail("missing 'loop <name>' header");
  }
  if (const auto err = loop.validate()) {
    lineno = 0;
    return fail("invalid loop: " + *err);
  }
  return loop;
}

std::variant<Loop, ParseError> parse_loop_string(const std::string& text) {
  std::istringstream in(text);
  return parse_loop(in);
}

std::string serialise_loop(const Loop& loop) {
  std::ostringstream os;
  os << "loop ";
  write_name(os, loop.name());
  os << "\n";
  if (loop.coverage() > 0.0) {
    os << "coverage ";
    write_double(os, loop.coverage());
    os << "\n";
  }
  for (const Instr& ins : loop.instrs()) {
    os << "instr ";
    write_name(os, ins.name);
    os << " " << to_string(ins.op) << "\n";
  }
  for (const DepEdge& e : loop.deps()) {
    const char* type = e.type == DepType::kFlow    ? "flow"
                       : e.type == DepType::kAnti ? "anti"
                                                  : "output";
    os << (e.kind == DepKind::kRegister ? "reg " : "mem ");
    write_name(os, loop.instr(e.src).name);
    os << " ";
    write_name(os, loop.instr(e.dst).name);
    os << " " << e.distance;
    if (e.kind == DepKind::kMemory) {
      os << " ";
      write_double(os, e.probability);
    }
    os << " " << type << "\n";
  }
  for (const NodeId v : loop.live_ins()) {
    os << "livein ";
    write_name(os, loop.instr(v).name);
    os << "\n";
  }
  return os.str();
}

}  // namespace tms::ir
