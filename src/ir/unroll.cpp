#include "ir/unroll.hpp"

#include "support/assert.hpp"

namespace tms::ir {

Loop unroll(const Loop& loop, int factor) {
  TMS_ASSERT(factor >= 1);
  TMS_ASSERT_MSG(!loop.validate().has_value(), "unroll requires a well-formed loop");
  Loop out(loop.name() + "_x" + std::to_string(factor));
  out.reserve(loop.num_instrs() * factor,
              loop.deps().size() * static_cast<std::size_t>(factor));

  for (int k = 0; k < factor; ++k) {
    for (NodeId v = 0; v < loop.num_instrs(); ++v) {
      const NodeId id = out.add_instr(loop.instr(v).op,
                                      loop.instr(v).name + "#" + std::to_string(k));
      TMS_ASSERT(id == unrolled_id(loop, v, k));
    }
  }

  for (int k = 0; k < factor; ++k) {
    for (const DepEdge& e : loop.deps()) {
      // Consumer copy k of iteration j consumes the producer instance of
      // source iteration j*factor + k - d; decompose into (iteration
      // delta, copy).
      const int off = k - e.distance;
      int copy = off % factor;
      int jd = off / factor;
      if (copy < 0) {
        copy += factor;
        jd -= 1;
      }
      const int new_distance = -jd;
      TMS_ASSERT(new_distance >= 0);
      out.add_dep(unrolled_id(loop, e.src, copy), unrolled_id(loop, e.dst, k), e.kind, e.type,
                  new_distance, e.probability);
    }
  }

  for (const NodeId v : loop.live_ins()) {
    // Values from before the loop feed (at most) the first few copies,
    // but conservatively every copy that can see distance >= 1 edges.
    for (int k = 0; k < factor; ++k) out.mark_live_in(unrolled_id(loop, v, k));
  }
  out.set_coverage(loop.coverage());
  TMS_ASSERT_MSG(!out.validate().has_value(), "unroll produced a malformed loop");
  return out;
}

}  // namespace tms::ir
