// Plain-text serialisation of loops, so workloads can live in files and
// the command-line driver (tools/tmsc) can schedule user-provided loops.
//
// Format (line oriented, '#' comments):
//
//   loop  dotprod
//   coverage 0.42
//   instr i    iadd
//   instr a    load
//   instr m    fmul
//   instr s    fadd
//   reg   i i 1          # register flow dep, distance 1
//   reg   i a 0
//   reg   a m 0
//   reg   m s 0
//   reg   s s 1
//   livein i
//   livein s
//
// `reg`/`mem` take "src dst distance [flow|anti|output]"; `mem` adds a
// probability before the optional type. Instruction names are unique
// identifiers.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>

#include "ir/loop.hpp"

namespace tms::ir {

struct ParseError {
  int line = 0;
  std::string message;
};

/// Parses a loop; returns the loop or a ParseError naming the offending
/// line.
std::variant<Loop, ParseError> parse_loop(std::istream& in);
std::variant<Loop, ParseError> parse_loop_string(const std::string& text);

/// Serialises in the same format; parse(serialise(l)) is structurally
/// identical to l.
std::string serialise_loop(const Loop& loop);

}  // namespace tms::ir
