// Loop IR: an innermost loop body plus its data dependence graph (DDG).
//
// This is the input to both SMS and TMS. A loop is a list of instructions
// (one iteration of the body) and a set of dependence edges. Each edge
// carries:
//   - kind: register or memory dependence,
//   - type: flow / anti / output,
//   - distance: number of iterations between producer and consumer
//     (0 = intra-iteration),
//   - probability: for memory dependences, the profiled fraction of
//     producer executions whose value is actually read by the consumer
//     (Section 4.2 of the paper); register dependences always have
//     probability 1.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/opcode.hpp"
#include "support/assert.hpp"

namespace tms::ir {

using NodeId = int;
constexpr NodeId kInvalidNode = -1;

enum class DepKind : std::uint8_t { kRegister, kMemory };
enum class DepType : std::uint8_t { kFlow, kAnti, kOutput };

struct Instr {
  NodeId id = kInvalidNode;
  Opcode op = Opcode::kNop;
  std::string name;  ///< debug label, e.g. "n5" or "load a[i-1]"
};

struct DepEdge {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  DepKind kind = DepKind::kRegister;
  DepType type = DepType::kFlow;
  int distance = 0;          ///< iteration distance d(src,dst) >= 0
  double probability = 1.0;  ///< memory flow deps: profiled hit fraction

  bool is_register_flow() const { return kind == DepKind::kRegister && type == DepType::kFlow; }
  bool is_memory_flow() const { return kind == DepKind::kMemory && type == DepType::kFlow; }
};

/// An innermost loop: one iteration's instructions + the DDG over them.
class Loop {
 public:
  Loop() = default;
  explicit Loop(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  /// Pre-sizes the instruction, edge, and adjacency-spine storage for a
  /// builder about to add roughly this many instructions and edges, so
  /// construction does not re-allocate per push.
  void reserve(int instrs, std::size_t deps);

  NodeId add_instr(Opcode op, std::string name = {});

  /// Adds a dependence edge. Distance must be >= 0 and probability in
  /// (0, 1]. Returns the edge index.
  std::size_t add_dep(NodeId src, NodeId dst, DepKind kind, DepType type, int distance,
                      double probability = 1.0);

  std::size_t add_reg_flow(NodeId src, NodeId dst, int distance = 0) {
    return add_dep(src, dst, DepKind::kRegister, DepType::kFlow, distance);
  }
  std::size_t add_mem_flow(NodeId src, NodeId dst, int distance, double probability) {
    return add_dep(src, dst, DepKind::kMemory, DepType::kFlow, distance, probability);
  }

  int num_instrs() const { return static_cast<int>(instrs_.size()); }
  const Instr& instr(NodeId id) const { return instrs_.at(static_cast<std::size_t>(id)); }
  const std::vector<Instr>& instrs() const { return instrs_; }

  const std::vector<DepEdge>& deps() const { return deps_; }
  const DepEdge& dep(std::size_t i) const { return deps_.at(i); }

  /// Outgoing / incoming edge indices per node.
  const std::vector<std::size_t>& out_edges(NodeId id) const {
    return out_.at(static_cast<std::size_t>(id));
  }
  const std::vector<std::size_t>& in_edges(NodeId id) const {
    return in_.at(static_cast<std::size_t>(id));
  }

  /// Live-in values consumed by a node from outside the loop (used by the
  /// simulator's live-in broadcast); purely informational for scheduling.
  void mark_live_in(NodeId id) { live_ins_.push_back(id); }
  const std::vector<NodeId>& live_ins() const { return live_ins_; }

  /// Fraction of whole-program execution time spent in this loop
  /// (Table 3's "LC" column); used to turn loop speedups into program
  /// speedups via Amdahl's law.
  double coverage() const { return coverage_; }
  void set_coverage(double c) {
    TMS_ASSERT(c >= 0.0 && c <= 1.0);
    coverage_ = c;
  }

  /// Validation: all edge endpoints in range, distances >= 0, probability
  /// sane. Returns an error description or nullopt if well-formed.
  std::optional<std::string> validate() const;

 private:
  std::string name_;
  std::vector<Instr> instrs_;
  std::vector<DepEdge> deps_;
  std::vector<std::vector<std::size_t>> out_;
  std::vector<std::vector<std::size_t>> in_;
  std::vector<NodeId> live_ins_;
  double coverage_ = 0.0;
};

}  // namespace tms::ir
