// Instruction opcodes and functional-unit classes for the loop IR.
//
// The IR is deliberately small: modulo scheduling only needs to know an
// instruction's latency and which functional unit it occupies, plus whether
// it touches memory (for speculation) or is a communication/bookkeeping op
// inserted by the post-pass (COPY, SEND, RECV).
#pragma once

#include <cstdint>
#include <string_view>

namespace tms::ir {

enum class Opcode : std::uint8_t {
  // Integer ALU
  kIAdd,
  kISub,
  kIMul,
  kShift,
  kLogic,
  kCmp,
  kCMov,  // conditional move (if-converted branches, per GCC 4.1.1 SMS)
  // Floating point
  kFAdd,
  kFSub,
  kFMul,
  kFDiv,
  kFSqrt,
  kFCmp,
  kFCvt,
  // Memory
  kLoad,
  kStore,
  // Address generation (folds into IALU)
  kLea,
  // Inserted by the post-pass / runtime, never present in source loops
  kCopy,
  kSend,
  kRecv,
  kSpawn,
  kNop,
};

/// Functional unit classes of the simulated core (Table 1: 4-wide
/// out-of-order issue). The FU mix is part of MachineModel; the class of
/// each opcode is fixed here.
enum class FuClass : std::uint8_t {
  kIAlu,
  kFpAdd,
  kFpMul,   // also executes divides/sqrts (non-pipelined occupancy)
  kMem,
  kComm,    // SEND/RECV port onto the ring
  kNone,    // zero-resource ops (NOP, SPAWN handled by the sequencer)
};

constexpr std::string_view to_string(Opcode op) {
  switch (op) {
    case Opcode::kIAdd: return "iadd";
    case Opcode::kISub: return "isub";
    case Opcode::kIMul: return "imul";
    case Opcode::kShift: return "shift";
    case Opcode::kLogic: return "logic";
    case Opcode::kCmp: return "cmp";
    case Opcode::kCMov: return "cmov";
    case Opcode::kFAdd: return "fadd";
    case Opcode::kFSub: return "fsub";
    case Opcode::kFMul: return "fmul";
    case Opcode::kFDiv: return "fdiv";
    case Opcode::kFSqrt: return "fsqrt";
    case Opcode::kFCmp: return "fcmp";
    case Opcode::kFCvt: return "fcvt";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kLea: return "lea";
    case Opcode::kCopy: return "copy";
    case Opcode::kSend: return "send";
    case Opcode::kRecv: return "recv";
    case Opcode::kSpawn: return "spawn";
    case Opcode::kNop: return "nop";
  }
  return "?";
}

constexpr bool is_memory(Opcode op) { return op == Opcode::kLoad || op == Opcode::kStore; }
constexpr bool is_comm(Opcode op) { return op == Opcode::kSend || op == Opcode::kRecv; }

/// FU class an opcode executes on. Latency and occupancy live in
/// MachineModel so alternative machines can be modelled.
constexpr FuClass fu_class(Opcode op) {
  switch (op) {
    case Opcode::kIAdd:
    case Opcode::kISub:
    case Opcode::kIMul:
    case Opcode::kShift:
    case Opcode::kLogic:
    case Opcode::kCmp:
    case Opcode::kCMov:
    case Opcode::kLea:
    case Opcode::kCopy:
      return FuClass::kIAlu;
    case Opcode::kFAdd:
    case Opcode::kFSub:
    case Opcode::kFCmp:
    case Opcode::kFCvt:
      return FuClass::kFpAdd;
    case Opcode::kFMul:
    case Opcode::kFDiv:
    case Opcode::kFSqrt:
      return FuClass::kFpMul;
    case Opcode::kLoad:
    case Opcode::kStore:
      return FuClass::kMem;
    case Opcode::kSend:
    case Opcode::kRecv:
      return FuClass::kComm;
    case Opcode::kSpawn:
    case Opcode::kNop:
      return FuClass::kNone;
  }
  return FuClass::kNone;
}

constexpr int kNumFuClasses = 6;

constexpr std::string_view to_string(FuClass c) {
  switch (c) {
    case FuClass::kIAlu: return "ialu";
    case FuClass::kFpAdd: return "fpadd";
    case FuClass::kFpMul: return "fpmul";
    case FuClass::kMem: return "mem";
    case FuClass::kComm: return "comm";
    case FuClass::kNone: return "none";
  }
  return "?";
}

}  // namespace tms::ir
