// Graph analyses over the DDG: strongly connected components (Tarjan),
// condensation topological order, and the longest dependence path (LDP).
//
// The LDP of a loop (Section 5 of the paper) is the longest latency-weighted
// path through one iteration, i.e. over distance-0 edges only; together with
// MII it delineates the range of IIs at which ILP is exploitable.
#pragma once

#include <vector>

#include "ir/loop.hpp"

namespace tms::ir {

/// Result of SCC decomposition. Components are numbered in reverse
/// topological order of the condensation (Tarjan's natural output order):
/// component(u) > component(v) implies there is no condensation path
/// v -> u.
struct SccResult {
  std::vector<int> component;               ///< node -> component id
  std::vector<std::vector<NodeId>> sccs;    ///< component id -> members
  std::vector<bool> self_loops;             ///< component id -> has a self-loop edge
  int num_components() const { return static_cast<int>(sccs.size()); }

  bool same_component(NodeId a, NodeId b) const {
    return component[static_cast<std::size_t>(a)] == component[static_cast<std::size_t>(b)];
  }
  bool is_trivial(int comp) const;  ///< single node without a self-loop
};

/// Tarjan SCC over all DDG edges (any distance): an SCC with more than one
/// node, or a self-looping node, is a recurrence.
SccResult strongly_connected_components(const Loop& loop);

/// Number of non-trivial SCCs (recurrences) — the "#SCC" column of Table 3.
int count_nontrivial_sccs(const Loop& loop);

/// Longest latency-weighted path over distance-0 edges. `latency[v]` is the
/// latency of node v. Returns path length in cycles including the last
/// node's latency (so a single 4-cycle instruction has LDP 4).
int longest_dependence_path(const Loop& loop, const std::vector<int>& latency);

/// Topological order of nodes over distance-0 edges (ties broken by node
/// id). Precondition: Loop::validate() passed (distance-0 subgraph acyclic).
std::vector<NodeId> topo_order_intra(const Loop& loop);

/// Per-node height: longest latency-weighted distance-0 path starting at
/// the node (inclusive of its own latency). Used by priority heuristics.
std::vector<int> node_heights(const Loop& loop, const std::vector<int>& latency);

/// Per-node depth: longest latency-weighted distance-0 path ending just
/// before the node (exclusive of its own latency).
std::vector<int> node_depths(const Loop& loop, const std::vector<int>& latency);

/// Topo-sharing variants: callers that need several of these analyses
/// (the schedulers need depth and height of every node) compute
/// topo_order_intra once and pass it in instead of re-deriving it per
/// analysis. `topo` must be exactly topo_order_intra(loop).
std::vector<int> node_heights(const Loop& loop, const std::vector<int>& latency,
                              const std::vector<NodeId>& topo);
std::vector<int> node_depths(const Loop& loop, const std::vector<int>& latency,
                             const std::vector<NodeId>& topo);

}  // namespace tms::ir
