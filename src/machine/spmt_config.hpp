// SpMT system configuration — the knobs of Table 1 plus the parameters of
// the cost model (Section 4.2). A single struct shared by the TMS
// scheduler, the cost model, and the simulator so that all three always
// agree on the machine.
#pragma once

#include "support/assert.hpp"

namespace tms::machine {

/// Which iteration→core allocation policy the simulator (and the
/// scheduler's communication-cost terms) assume. The paper hardcodes
/// kModulo; the alternatives come from the thread-to-core allocation
/// line of work (Navarro et al.) and are implemented in src/policy.
/// The enum lives here, next to the other machine knobs, so the
/// scheduler/cost/simulator agree on the machine without depending on
/// the policy library; the behaviour behind each enumerator is
/// policy::make_policy's job.
enum class AllocPolicy {
  kModulo,            ///< iteration k runs on core k mod ncore (paper default)
  kRoundRobinStride,  ///< core (k * stride) mod ncore
  kLocality,          ///< core (k / block) mod ncore: consecutive iterations share a core
  kDepDistance,       ///< block size = dominant cross-iteration dependence distance
};

struct SpmtConfig {
  // --- Topology ---------------------------------------------------------
  int ncore = 4;  ///< the paper evaluates a quad-core ring

  // --- Core allocation (src/policy, docs/POLICY.md) -----------------------
  AllocPolicy policy = AllocPolicy::kModulo;
  int policy_stride = 1;  ///< kRoundRobinStride: must be coprime with ncore
  int policy_block = 1;   ///< kLocality: consecutive iterations per core

  // --- Per-event overheads (Table 1) -------------------------------------
  int c_spn = 3;      ///< spawn overhead C_spn
  int c_ci = 2;       ///< commit overhead C_ci (double-buffered write buffer)
  int c_inv = 15;     ///< invalidation overhead C_inv (gang-clear + flush)
  int c_reg_com = 3;  ///< SEND(1) + 1 hop + RECV(1), Voltron queue model

  // Breakdown of c_reg_com used by the simulator's ring model; their sum
  // must equal c_reg_com for adjacent cores.
  int send_cycles = 1;
  int hop_cycles = 1;  ///< per ring hop
  int recv_cycles = 1;

  // --- Memory hierarchy (Table 1) ----------------------------------------
  int l1i_hit = 1;
  int l1d_hit = 3;
  int l2_hit = 12;
  int l2_miss = 80;  ///< main-memory access
  int l1d_sets = 64;        ///< 16KB, 4-way, 64B lines
  int l1d_ways = 4;
  int l2_sets = 4096;       ///< 1MB, 4-way, 64B lines (shared)
  int l2_ways = 4;
  int line_bytes = 64;

  // --- Speculation machinery ---------------------------------------------
  int spec_write_buffer_entries = 64;  ///< Hydra-style buffer next to L2
  int mdt_entries = 1024;              ///< memory disambiguation table

  // --- Operand network (Voltron queue model) ------------------------------
  /// Entries per SEND/RECV channel between adjacent cores. A SEND blocks
  /// when the receiver has this many undelivered values outstanding
  /// (backpressure); Voltron-style designs keep these queues small.
  int ring_queue_entries = 8;

  // --- Shared-bus contention (Eremeev et al.) ------------------------------
  /// Bytes one inter-core register transfer occupies on the shared bus.
  /// 0 (the default) models a contention-free operand network — the
  /// paper's machine — and keeps every pre-policy number byte-identical.
  int bus_bytes_per_transfer = 0;
  /// Shared-bus bandwidth in bytes per cycle. Only meaningful when
  /// bus_bytes_per_transfer > 0.
  int bus_bytes_per_cycle = 16;

  bool bus_enabled() const { return bus_bytes_per_transfer > 0 && bus_bytes_per_cycle > 0; }

  /// Deterministic TDMA-style contention charge per transfer: with all
  /// ncore cores sharing the bus, a transfer's slot recurs every
  /// ncore * bytes / bandwidth cycles (rounded up). Grows with ncore, so
  /// mappings that avoid cross-core transfers win at high core counts.
  int bus_transfer_cycles() const {
    if (!bus_enabled()) return 0;
    return (bus_bytes_per_transfer * ncore + bus_bytes_per_cycle - 1) / bus_bytes_per_cycle;
  }

  /// Effective cost of one cross-core register communication: the ring
  /// SEND/hop/RECV latency plus the shared-bus contention charge. This —
  /// not bare c_reg_com — is what the scheduler's C1/C2 sync terms and
  /// the simulators' forwarding delays are built from.
  int reg_comm_cycles() const { return c_reg_com + bus_transfer_cycles(); }

  // --- Scheduler-side knobs ----------------------------------------------
  /// Smallest legal C_delay: a 1-cycle producer plus the register
  /// communication (Definition 2 / line 5 of Fig. 3).
  int min_c_delay() const { return 1 + reg_comm_cycles(); }

  /// Communication latency between producer core and the consumer core
  /// `hops` ring positions downstream (consumer of a distance-1 dependence
  /// is always 1 hop away after the copy post-pass).
  int comm_latency(int hops) const {
    TMS_ASSERT(hops >= 1);
    return send_cycles + hops * hop_cycles + recv_cycles;
  }

  void check() const {
    TMS_ASSERT(ncore >= 1);
    TMS_ASSERT(c_spn >= 0 && c_ci >= 0 && c_inv >= 0);
    TMS_ASSERT(send_cycles + hop_cycles + recv_cycles == c_reg_com);
    TMS_ASSERT(spec_write_buffer_entries > 0);
    TMS_ASSERT(policy_stride >= 1 && policy_block >= 1);
    TMS_ASSERT(bus_bytes_per_transfer >= 0 && bus_bytes_per_cycle >= 1);
  }
};

}  // namespace tms::machine
