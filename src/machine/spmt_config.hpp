// SpMT system configuration — the knobs of Table 1 plus the parameters of
// the cost model (Section 4.2). A single struct shared by the TMS
// scheduler, the cost model, and the simulator so that all three always
// agree on the machine.
#pragma once

#include "support/assert.hpp"

namespace tms::machine {

struct SpmtConfig {
  // --- Topology ---------------------------------------------------------
  int ncore = 4;  ///< the paper evaluates a quad-core ring

  // --- Per-event overheads (Table 1) -------------------------------------
  int c_spn = 3;      ///< spawn overhead C_spn
  int c_ci = 2;       ///< commit overhead C_ci (double-buffered write buffer)
  int c_inv = 15;     ///< invalidation overhead C_inv (gang-clear + flush)
  int c_reg_com = 3;  ///< SEND(1) + 1 hop + RECV(1), Voltron queue model

  // Breakdown of c_reg_com used by the simulator's ring model; their sum
  // must equal c_reg_com for adjacent cores.
  int send_cycles = 1;
  int hop_cycles = 1;  ///< per ring hop
  int recv_cycles = 1;

  // --- Memory hierarchy (Table 1) ----------------------------------------
  int l1i_hit = 1;
  int l1d_hit = 3;
  int l2_hit = 12;
  int l2_miss = 80;  ///< main-memory access
  int l1d_sets = 64;        ///< 16KB, 4-way, 64B lines
  int l1d_ways = 4;
  int l2_sets = 4096;       ///< 1MB, 4-way, 64B lines (shared)
  int l2_ways = 4;
  int line_bytes = 64;

  // --- Speculation machinery ---------------------------------------------
  int spec_write_buffer_entries = 64;  ///< Hydra-style buffer next to L2
  int mdt_entries = 1024;              ///< memory disambiguation table

  // --- Operand network (Voltron queue model) ------------------------------
  /// Entries per SEND/RECV channel between adjacent cores. A SEND blocks
  /// when the receiver has this many undelivered values outstanding
  /// (backpressure); Voltron-style designs keep these queues small.
  int ring_queue_entries = 8;

  // --- Scheduler-side knobs ----------------------------------------------
  /// Smallest legal C_delay: a 1-cycle producer plus the register
  /// communication (Definition 2 / line 5 of Fig. 3).
  int min_c_delay() const { return 1 + c_reg_com; }

  /// Communication latency between producer core and the consumer core
  /// `hops` ring positions downstream (consumer of a distance-1 dependence
  /// is always 1 hop away after the copy post-pass).
  int comm_latency(int hops) const {
    TMS_ASSERT(hops >= 1);
    return send_cycles + hops * hop_cycles + recv_cycles;
  }

  void check() const {
    TMS_ASSERT(ncore >= 1);
    TMS_ASSERT(c_spn >= 0 && c_ci >= 0 && c_inv >= 0);
    TMS_ASSERT(send_cycles + hop_cycles + recv_cycles == c_reg_com);
    TMS_ASSERT(spec_write_buffer_entries > 0);
  }
};

}  // namespace tms::machine
