// Machine model: per-core resources and opcode timing.
//
// Matches Table 1 of the paper: each core is 4-wide with private FUs.
// Latency is the number of cycles before a dependent instruction can issue;
// occupancy is the number of cycles the instruction holds its functional
// unit (occupancy > 1 models non-pipelined units such as FP divide, which
// is what makes ResII interesting).
#pragma once

#include <array>
#include <vector>

#include "ir/loop.hpp"
#include "ir/opcode.hpp"
#include "support/assert.hpp"

namespace tms::machine {

struct OpTiming {
  int latency = 1;    ///< result available after this many cycles
  int occupancy = 1;  ///< FU busy cycles (non-pipelined if > 1)
};

class MachineModel {
 public:
  /// Default machine per Table 1: 4-wide issue, 2 integer ALUs, 1 FP
  /// adder, 1 FP multiplier (also divides, non-pipelined), 1 memory port,
  /// 1 communication port. L1D hit latency (3 cycles) is folded into the
  /// load latency, as GCC's scheduler does.
  MachineModel();

  int issue_width() const { return issue_width_; }
  void set_issue_width(int w) {
    TMS_ASSERT(w > 0);
    issue_width_ = w;
  }

  /// Reorder-buffer capacity of the dynamic core (bounds how far the
  /// single-threaded baseline can look ahead; modulo scheduling has no
  /// such limit, which is precisely the ILP edge software pipelining
  /// keeps over hardware scheduling).
  int rob_entries() const { return rob_entries_; }
  void set_rob_entries(int n) {
    TMS_ASSERT(n > 0);
    rob_entries_ = n;
  }

  int fu_count(ir::FuClass c) const { return fu_count_[static_cast<std::size_t>(c)]; }
  void set_fu_count(ir::FuClass c, int n) {
    TMS_ASSERT(n >= 0);
    fu_count_[static_cast<std::size_t>(c)] = n;
  }

  const OpTiming& timing(ir::Opcode op) const {
    return timing_[static_cast<std::size_t>(op)];
  }
  void set_timing(ir::Opcode op, OpTiming t) {
    TMS_ASSERT(t.latency >= 0 && t.occupancy >= 1);
    timing_[static_cast<std::size_t>(op)] = t;
  }

  int latency(ir::Opcode op) const { return timing(op).latency; }
  int occupancy(ir::Opcode op) const { return timing(op).occupancy; }

  /// Per-node latencies for a whole loop (convenience for graph analyses).
  std::vector<int> latencies(const ir::Loop& loop) const;

 private:
  int issue_width_ = 4;
  int rob_entries_ = 64;
  std::array<int, ir::kNumFuClasses> fu_count_{};
  std::array<OpTiming, 22> timing_{};
};

}  // namespace tms::machine
