#include "machine/machine.hpp"

namespace tms::machine {

using ir::FuClass;
using ir::Opcode;

MachineModel::MachineModel() {
  set_fu_count(FuClass::kIAlu, 2);
  set_fu_count(FuClass::kFpAdd, 2);
  set_fu_count(FuClass::kFpMul, 1);
  set_fu_count(FuClass::kMem, 1);
  set_fu_count(FuClass::kComm, 1);
  set_fu_count(FuClass::kNone, 0);

  // Latencies follow the simulated core of Table 1 (L1D hit = 3 cycles
  // folded into loads). The FP multiplier is pipelined; divide and sqrt
  // are not (they monopolise the unit), which is typical of the era's
  // FPUs and is what makes ResII occupancy-aware.
  set_timing(Opcode::kIAdd, {1, 1});
  set_timing(Opcode::kISub, {1, 1});
  set_timing(Opcode::kIMul, {3, 1});
  set_timing(Opcode::kShift, {1, 1});
  set_timing(Opcode::kLogic, {1, 1});
  set_timing(Opcode::kCmp, {1, 1});
  set_timing(Opcode::kCMov, {1, 1});
  set_timing(Opcode::kFAdd, {2, 1});
  set_timing(Opcode::kFSub, {2, 1});
  set_timing(Opcode::kFMul, {4, 1});
  set_timing(Opcode::kFDiv, {12, 12});
  set_timing(Opcode::kFSqrt, {16, 16});
  set_timing(Opcode::kFCmp, {1, 1});
  set_timing(Opcode::kFCvt, {2, 1});
  set_timing(Opcode::kLoad, {3, 1});
  set_timing(Opcode::kStore, {1, 1});
  set_timing(Opcode::kLea, {1, 1});
  set_timing(Opcode::kCopy, {1, 1});
  set_timing(Opcode::kSend, {1, 1});
  set_timing(Opcode::kRecv, {1, 1});
  set_timing(Opcode::kSpawn, {1, 1});
  set_timing(Opcode::kNop, {0, 1});
}

std::vector<int> MachineModel::latencies(const ir::Loop& loop) const {
  std::vector<int> lat(static_cast<std::size_t>(loop.num_instrs()));
  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    lat[static_cast<std::size_t>(v)] = latency(loop.instr(v).op);
  }
  return lat;
}

}  // namespace tms::machine
