// Text rendering of schedules and SpMT executions — the tooling behind
// the paper's Figure 2: (a/d) flat schedules, (b/e) kernels with stage
// annotations, and (c/f) multi-core execution timelines with
// communication events.
#pragma once

#include <string>

#include "machine/spmt_config.hpp"
#include "sched/schedule.hpp"

namespace tms::viz {

/// Flat schedule listing: one line per cycle, instructions at their issue
/// slots (Figure 2 (a)/(d)).
std::string render_flat_schedule(const sched::Schedule& s);

/// Kernel view: II rows, each with its instructions and their stage
/// numbers, plus the inter-thread dependences and their sync delays
/// (Figure 2 (b)/(e)).
std::string render_kernel(const sched::Schedule& s, const machine::SpmtConfig& cfg);

/// Execution timeline: the first `threads` kernel iterations laid out on
/// the ring's cores with start offsets from the cost model, marking
/// SEND/RECV communication (Figure 2 (c)/(f)). Purely model-based (no
/// simulation); the simulator's stats are the measured counterpart.
std::string render_execution(const sched::Schedule& s, const machine::SpmtConfig& cfg,
                             int threads = 4);

/// DDG dump in Graphviz dot format (for documentation and debugging).
std::string render_ddg_dot(const ir::Loop& loop);

}  // namespace tms::viz
