#include "viz/render.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "cost/cost_model.hpp"
#include "policy/policy.hpp"
#include "support/assert.hpp"

namespace tms::viz {
namespace {

std::vector<std::vector<ir::NodeId>> by_cycle(const sched::Schedule& s, int lo, int hi) {
  std::vector<std::vector<ir::NodeId>> rows(static_cast<std::size_t>(hi - lo + 1));
  for (ir::NodeId v = 0; v < s.loop().num_instrs(); ++v) {
    rows[static_cast<std::size_t>(s.slot(v) - lo)].push_back(v);
  }
  return rows;
}

}  // namespace

std::string render_flat_schedule(const sched::Schedule& s) {
  TMS_ASSERT(s.complete());
  const ir::Loop& loop = s.loop();
  const int lo = s.min_slot();
  const int hi = s.max_slot();
  const auto rows = by_cycle(s, lo, hi);

  std::ostringstream os;
  os << "flat schedule of '" << loop.name() << "' (II=" << s.ii() << ")\n";
  for (int c = lo; c <= hi; ++c) {
    const auto& nodes = rows[static_cast<std::size_t>(c - lo)];
    if (nodes.empty()) continue;
    os << "  cycle " << c << ":";
    for (const ir::NodeId v : nodes) {
      os << "  " << loop.instr(v).name << "(" << ir::to_string(loop.instr(v).op) << ")";
    }
    os << "\n";
  }
  return os.str();
}

std::string render_kernel(const sched::Schedule& s, const machine::SpmtConfig& cfg) {
  TMS_ASSERT(s.complete());
  const ir::Loop& loop = s.loop();
  std::ostringstream os;
  os << "kernel of '" << loop.name() << "' (II=" << s.ii() << ", " << s.stage_count()
     << " stage(s))\n";
  for (int r = 0; r < s.ii(); ++r) {
    os << "  row " << r << ":";
    bool any = false;
    for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
      if (s.row(v) != r) continue;
      os << "  " << loop.instr(v).name << "[s" << s.stage(v) << "]";
      any = true;
    }
    if (!any) os << "  -";
    os << "\n";
  }
  os << "inter-thread register dependences (sync delay, Def. 2):\n";
  for (const std::size_t ei : s.reg_dep_set()) {
    const ir::DepEdge& e = loop.dep(ei);
    os << "  " << loop.instr(e.src).name << " -> " << loop.instr(e.dst).name
       << "  d_ker=" << s.kernel_distance(e) << "  sync=" << s.sync_delay(e, cfg) << "\n";
  }
  os << "speculated memory dependences (preserved?):\n";
  const auto regs = s.reg_dep_set();
  for (const std::size_t ei : s.mem_dep_set()) {
    const ir::DepEdge& e = loop.dep(ei);
    os << "  " << loop.instr(e.src).name << " -> " << loop.instr(e.dst).name << "  p="
       << e.probability << "  " << (s.preserved(e, regs, cfg) ? "preserved" : "speculated")
       << "\n";
  }
  return os.str();
}

std::string render_execution(const sched::Schedule& s, const machine::SpmtConfig& cfg,
                             int threads) {
  TMS_ASSERT(s.complete());
  TMS_ASSERT(threads >= 1);
  const ir::Loop& loop = s.loop();
  const int ii = s.ii();
  // Steady-state thread offset per the cost model.
  const auto offset = static_cast<int>(cost::per_iter_nomiss(ii, s.c_delay(cfg), cfg) + 0.5);
  const int width = offset * (threads - 1) + ii + 4;

  std::ostringstream os;
  const std::unique_ptr<policy::CorePolicy> pol = policy::make_policy(cfg, loop);
  os << "model execution of '" << loop.name() << "' on " << cfg.ncore
     << " cores (thread offset " << offset << " cycles):\n";
  for (int k = 0; k < threads; ++k) {
    const int core = pol->core_of(k);
    std::string line(static_cast<std::size_t>(width), ' ');
    const int start = k * offset;
    for (int c = 0; c < ii && start + c < width; ++c) {
      line[static_cast<std::size_t>(start + c)] = '.';
    }
    for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
      const int pos = start + s.row(v);
      if (pos < width) {
        line[static_cast<std::size_t>(pos)] =
            ir::is_memory(loop.instr(v).op) ? 'M' : 'x';
      }
    }
    os << "  core " << core << " | thread " << k << " |" << line << "|\n";
  }
  os << "  ('x' issue slots, 'M' memory ops; consecutive threads " << offset
     << " cycles apart = max(C_spn, C_ci, C_delay, T_lb/ncore))\n";
  return os.str();
}

std::string render_ddg_dot(const ir::Loop& loop) {
  std::ostringstream os;
  os << "digraph \"" << loop.name() << "\" {\n";
  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    os << "  n" << v << " [label=\"" << loop.instr(v).name << "\\n"
       << ir::to_string(loop.instr(v).op) << "\"];\n";
  }
  for (const ir::DepEdge& e : loop.deps()) {
    os << "  n" << e.src << " -> n" << e.dst << " [label=\"d=" << e.distance;
    if (e.kind == ir::DepKind::kMemory) os << ",p=" << e.probability;
    os << "\"";
    if (e.kind == ir::DepKind::kMemory) os << " style=dashed";
    if (e.type != ir::DepType::kFlow) os << " color=gray";
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace tms::viz
