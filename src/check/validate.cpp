#include "check/validate.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace tms::check {
namespace {

/// Flushes validation counters whichever return path is taken.
struct ValidationScope {
  const CheckReport& report;
  explicit ValidationScope(const CheckReport& r) : report(r) {}
  ~ValidationScope() {
    obs::Counters& c = obs::counters();
    c.check_validations.add(1);
    c.check_violations.add(report.violations.size());
  }
};

/// Re-derivation of the per-edge scheduling delay (kept independent of
/// sched/dep_delay.hpp on purpose): flow covers the producer latency,
/// anti needs none, output needs one cycle, and inter-iteration memory
/// dependences are speculated at zero delay (Section 4.1).
int edge_delay(const machine::MachineModel& mach, const ir::Loop& loop, const ir::DepEdge& e) {
  if (e.kind == ir::DepKind::kMemory && e.distance >= 1) return 0;
  switch (e.type) {
    case ir::DepType::kFlow:
      return mach.latency(loop.instr(e.src).op);
    case ir::DepType::kAnti:
      return 0;
    case ir::DepType::kOutput:
      return 1;
  }
  return 1;
}

std::string edge_name(const ir::Loop& loop, const ir::DepEdge& e) {
  std::ostringstream os;
  os << loop.instr(e.src).name << " -> " << loop.instr(e.dst).name
     << (e.kind == ir::DepKind::kMemory ? " (mem" : " (reg") << ", d=" << e.distance << ")";
  return os.str();
}

class Checker {
 public:
  explicit Checker(CheckReport& report) : report_(report) {}

  template <typename... Args>
  void fail(ViolationKind kind, const Args&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    report_.violations.push_back(Violation{kind, os.str()});
  }

 private:
  CheckReport& report_;
};

}  // namespace

std::string_view to_string(ViolationKind k) {
  switch (k) {
    case ViolationKind::kMalformedLoop: return "malformed-loop";
    case ViolationKind::kIncomplete: return "incomplete";
    case ViolationKind::kNotNormalised: return "not-normalised";
    case ViolationKind::kIssueOverflow: return "issue-overflow";
    case ViolationKind::kFuOverflow: return "fu-overflow";
    case ViolationKind::kDependence: return "dependence";
    case ViolationKind::kNegativeKernelDistance: return "negative-kernel-distance";
    case ViolationKind::kStageBound: return "stage-bound";
    case ViolationKind::kRegisterLifetime: return "register-lifetime";
    case ViolationKind::kSyncDelay: return "sync-delay";
    case ViolationKind::kMisspecProbability: return "misspec-probability";
    case ViolationKind::kMetricMismatch: return "metric-mismatch";
    case ViolationKind::kKernelProgram: return "kernel-program";
    case ViolationKind::kFingerprintMismatch: return "fingerprint-mismatch";
    case ViolationKind::kMemoryMismatch: return "memory-mismatch";
    case ViolationKind::kStatsConservation: return "stats-conservation";
    case ViolationKind::kTraceInconsistent: return "trace-inconsistent";
    case ViolationKind::kBaseline: return "baseline";
  }
  return "?";
}

std::string CheckReport::to_string() const {
  std::string out;
  for (const Violation& v : violations) {
    out += std::string(check::to_string(v.kind)) + ": " + v.message + "\n";
  }
  return out;
}

CheckReport validate_schedule(const sched::Schedule& sched, const machine::SpmtConfig& cfg,
                              const CheckOptions& opts) {
  CheckReport report;
  ValidationScope scope(report);
  TMS_TRACE_SPAN(span, "check", "validate.schedule");
  Checker c(report);
  const ir::Loop& loop = sched.loop();
  const machine::MachineModel& mach = sched.machine();
  const int ii = sched.ii();

  if (const auto err = loop.validate()) {
    c.fail(ViolationKind::kMalformedLoop, *err);
    return report;
  }
  if (!sched.complete()) {
    c.fail(ViolationKind::kIncomplete, "placed ", sched.num_placed(), " of ", loop.num_instrs(),
           " instructions");
    return report;  // slot() on unplaced nodes would abort
  }

  // --- Normalisation and stage bounds ------------------------------------
  int min_stage = sched.stage(0);
  int max_stage = sched.stage(0);
  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    min_stage = std::min(min_stage, sched.stage(v));
    max_stage = std::max(max_stage, sched.stage(v));
  }
  if (min_stage != 0) {
    c.fail(ViolationKind::kNotNormalised, "minimum stage is ", min_stage, ", expected 0");
  }
  const int stages = max_stage - min_stage + 1;
  if (sched.stage_count() != stages) {
    c.fail(ViolationKind::kStageBound, "stage_count() reports ", sched.stage_count(),
           " but the slots span ", stages, " stage(s)");
  }
  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    const int s = sched.slot(v);
    if (s < min_stage * ii || s >= (max_stage + 1) * ii) {
      c.fail(ViolationKind::kNotNormalised, "slot(", loop.instr(v).name, ")=", s,
             " outside [", min_stage * ii, ", ", (max_stage + 1) * ii, ")");
    }
  }

  // --- Modulo reservation table, recomputed from scratch ------------------
  std::vector<int> issue_used(static_cast<std::size_t>(ii), 0);
  std::vector<std::vector<int>> fu_used(ir::kNumFuClasses,
                                        std::vector<int>(static_cast<std::size_t>(ii), 0));
  const auto row_of = [ii](int cycle) {
    const int r = cycle % ii;
    return r < 0 ? r + ii : r;
  };
  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    const ir::Opcode op = loop.instr(v).op;
    const ir::FuClass fc = ir::fu_class(op);
    if (fc == ir::FuClass::kNone) continue;
    ++issue_used[static_cast<std::size_t>(row_of(sched.slot(v)))];
    for (int k = 0; k < mach.occupancy(op); ++k) {
      ++fu_used[static_cast<std::size_t>(fc)][static_cast<std::size_t>(row_of(sched.slot(v) + k))];
    }
  }
  for (int r = 0; r < ii; ++r) {
    if (issue_used[static_cast<std::size_t>(r)] > mach.issue_width()) {
      c.fail(ViolationKind::kIssueOverflow, "row ", r, " issues ",
             issue_used[static_cast<std::size_t>(r)], " ops, width is ", mach.issue_width());
    }
    for (int fc = 0; fc < ir::kNumFuClasses; ++fc) {
      const auto cls = static_cast<ir::FuClass>(fc);
      if (cls == ir::FuClass::kNone) continue;
      const int used = fu_used[static_cast<std::size_t>(fc)][static_cast<std::size_t>(r)];
      if (used > mach.fu_count(cls)) {
        c.fail(ViolationKind::kFuOverflow, "row ", r, " uses ", used, " ", ir::to_string(cls),
               " unit(s), machine has ", mach.fu_count(cls));
      }
    }
  }

  // --- Per-edge modulo constraint and Definition 1 ------------------------
  for (std::size_t i = 0; i < loop.deps().size(); ++i) {
    const ir::DepEdge& e = loop.dep(i);
    const int delay = edge_delay(mach, loop, e);
    const int sep = sched.slot(e.dst) - sched.slot(e.src);
    if (sep < delay - ii * e.distance) {
      c.fail(ViolationKind::kDependence, "edge ", edge_name(loop, e), ": slot(dst)-slot(src)=",
             sep, " < delay-II*d = ", delay - ii * e.distance, " (delay ", delay, ", II ", ii,
             ")");
    }
    const int dker = e.distance + sched.stage(e.dst) - sched.stage(e.src);
    if (dker < 0) {
      c.fail(ViolationKind::kNegativeKernelDistance, "edge ", edge_name(loop, e),
             ": kernel distance ", dker);
    }
    // Registers never get the speculation carve-out: the value must live
    // until its consumer issues, covering the producer's full latency.
    if (e.is_register_flow()) {
      const int lifetime = sep + ii * e.distance;
      if (lifetime < mach.latency(loop.instr(e.src).op)) {
        c.fail(ViolationKind::kRegisterLifetime, "edge ", edge_name(loop, e), ": lifetime ",
               lifetime, " < producer latency ", mach.latency(loop.instr(e.src).op));
      }
    }
  }

  // --- C1: synchronisation delays vs the C_delay threshold ----------------
  // Recompute sync(x,y) = row(x) - row(y) + lat(x) + reg_comm_cycles()
  // (C_reg_com plus the bus contention charge when the bus is on) for every
  // inter-thread register flow dependence (Definition 2) without going
  // through Schedule::sync_delay.
  int recomputed_c_delay = 0;
  std::vector<std::size_t> inter_thread_regs;
  for (std::size_t i = 0; i < loop.deps().size(); ++i) {
    const ir::DepEdge& e = loop.dep(i);
    if (!e.is_register_flow()) continue;
    if (e.distance + sched.stage(e.dst) - sched.stage(e.src) < 1) continue;
    inter_thread_regs.push_back(i);
    const int sync = sched.row(e.src) - sched.row(e.dst) +
                     mach.latency(loop.instr(e.src).op) + cfg.reg_comm_cycles();
    recomputed_c_delay = std::max(recomputed_c_delay, sync);
    if (opts.c_delay_threshold >= 0 && sync > opts.c_delay_threshold) {
      c.fail(ViolationKind::kSyncDelay, "edge ", edge_name(loop, e), ": sync delay ", sync,
             " exceeds the accepted C_delay threshold ", opts.c_delay_threshold);
    }
  }
  if (report.ok() && sched.c_delay(cfg) != recomputed_c_delay) {
    c.fail(ViolationKind::kMetricMismatch, "Schedule::c_delay reports ", sched.c_delay(cfg),
           ", recomputed ", recomputed_c_delay);
  }

  // --- C2: misspeculation probability vs P_max ----------------------------
  // Independently re-derive the preserved set (Definition 3) and P_M
  // (Eq. 3) over the non-preserved inter-thread memory dependences.
  if (report.ok()) {
    double keep = 1.0;
    for (std::size_t i = 0; i < loop.deps().size(); ++i) {
      const ir::DepEdge& m = loop.dep(i);
      if (!m.is_memory_flow()) continue;
      if (m.distance + sched.stage(m.dst) - sched.stage(m.src) < 1) continue;
      const int gap =
          sched.row(m.src) - sched.row(m.dst) + mach.latency(loop.instr(m.src).op);
      bool is_preserved = gap <= 0;
      for (const std::size_t ri : inter_thread_regs) {
        if (is_preserved) break;
        const ir::DepEdge& r = loop.dep(ri);
        if (sched.row(r.src) > sched.row(m.src)) continue;
        if (sched.row(r.dst) > sched.row(m.dst)) continue;
        const int sync = sched.row(r.src) - sched.row(r.dst) +
                         mach.latency(loop.instr(r.src).op) + cfg.reg_comm_cycles();
        if (sync >= gap) is_preserved = true;
      }
      if (!is_preserved) keep *= 1.0 - m.probability;
    }
    const double p_m = 1.0 - keep;
    if (opts.p_max >= 0.0 && p_m > opts.p_max + 1e-9) {
      c.fail(ViolationKind::kMisspecProbability, "P_M = ", p_m,
             " exceeds the accepted P_max threshold ", opts.p_max);
    }
    if (std::abs(sched.misspec_probability(cfg) - p_m) > 1e-9) {
      c.fail(ViolationKind::kMetricMismatch, "Schedule::misspec_probability reports ",
             sched.misspec_probability(cfg), ", recomputed ", p_m);
    }
  }

  return report;
}

CheckReport validate_kernel_program(const codegen::KernelProgram& kp,
                                    const sched::Schedule& sched,
                                    const machine::SpmtConfig& cfg) {
  CheckReport report;
  ValidationScope scope(report);
  TMS_TRACE_SPAN(span, "check", "validate.kernel");
  Checker c(report);
  const ir::Loop& loop = sched.loop();
  const machine::MachineModel& mach = sched.machine();

  if (kp.ii != sched.ii()) {
    c.fail(ViolationKind::kKernelProgram, "program II ", kp.ii, " != schedule II ", sched.ii());
  }
  if (kp.stage_count != sched.stage_count()) {
    c.fail(ViolationKind::kKernelProgram, "program stage count ", kp.stage_count,
           " != schedule stage count ", sched.stage_count());
  }

  // Exactly one op per node, carrying the schedule's row/stage and the
  // machine's latency, in (row, oldest-stage-first) issue order.
  std::vector<int> seen(static_cast<std::size_t>(loop.num_instrs()), 0);
  for (std::size_t i = 0; i < kp.ops.size(); ++i) {
    const codegen::KernelOp& op = kp.ops[i];
    if (op.node < 0 || op.node >= loop.num_instrs()) {
      c.fail(ViolationKind::kKernelProgram, "op ", i, " names unknown node ", op.node);
      continue;
    }
    ++seen[static_cast<std::size_t>(op.node)];
    const std::string& name = loop.instr(op.node).name;
    if (op.row != sched.row(op.node) || op.stage != sched.stage(op.node)) {
      c.fail(ViolationKind::kKernelProgram, "op ", name, " at row ", op.row, " stage ", op.stage,
             ", schedule says row ", sched.row(op.node), " stage ", sched.stage(op.node));
    }
    if (op.latency != mach.latency(loop.instr(op.node).op)) {
      c.fail(ViolationKind::kKernelProgram, "op ", name, " carries latency ", op.latency,
             ", machine says ", mach.latency(loop.instr(op.node).op));
    }
    const bool load = loop.instr(op.node).op == ir::Opcode::kLoad;
    const bool store = loop.instr(op.node).op == ir::Opcode::kStore;
    if (op.is_load != load || op.is_store != store) {
      c.fail(ViolationKind::kKernelProgram, "op ", name, " memory flags disagree with its opcode");
    }
    if (i > 0) {
      const codegen::KernelOp& prev = kp.ops[i - 1];
      if (prev.row > op.row || (prev.row == op.row && prev.stage < op.stage)) {
        c.fail(ViolationKind::kKernelProgram, "ops not in (row, oldest-first) issue order at ",
               name);
      }
    }
  }
  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    if (seen[static_cast<std::size_t>(v)] != 1) {
      c.fail(ViolationKind::kKernelProgram, "node ", loop.instr(v).name, " appears ",
             seen[static_cast<std::size_t>(v)], " time(s) in the kernel, expected once");
    }
  }

  // The SEND/RECV input set must cover exactly the inter-thread register
  // flow dependences of the schedule (a dropped SEND loses a value, an
  // invented one deadlocks the ring), with matching kernel distances.
  const auto expect_inputs = [&](const std::vector<std::size_t>& edges,
                                 const std::vector<codegen::CrossThreadInput>& inputs,
                                 const char* what) {
    std::map<std::size_t, int> expected;  // edge index -> d_ker
    for (const std::size_t ei : edges) {
      const ir::DepEdge& e = loop.dep(ei);
      expected[ei] = e.distance + sched.stage(e.dst) - sched.stage(e.src);
    }
    std::set<std::size_t> got;
    for (const codegen::CrossThreadInput& in : inputs) {
      if (!got.insert(in.edge).second) {
        c.fail(ViolationKind::kKernelProgram, what, " input for edge ", in.edge, " duplicated");
        continue;
      }
      const auto it = expected.find(in.edge);
      if (it == expected.end()) {
        c.fail(ViolationKind::kKernelProgram, what, " input for edge ", in.edge,
               " which is not an inter-thread dependence of the schedule");
        continue;
      }
      if (in.d_ker != it->second) {
        c.fail(ViolationKind::kKernelProgram, what, " input for edge ", in.edge, " has d_ker ",
               in.d_ker, ", schedule says ", it->second);
      }
      const ir::DepEdge& e = loop.dep(in.edge);
      if (in.producer != e.src || in.consumer != e.dst) {
        c.fail(ViolationKind::kKernelProgram, what, " input for edge ", in.edge,
               " endpoints disagree with the dependence graph");
      }
    }
    for (const auto& [ei, dker] : expected) {
      if (got.count(ei) == 0) {
        c.fail(ViolationKind::kKernelProgram, what, " input for edge ", edge_name(loop, loop.dep(ei)),
               " is missing (dropped SEND/RECV, d_ker ", dker, ")");
      }
    }
  };
  expect_inputs(sched.reg_dep_set(), kp.inputs, "register");
  expect_inputs(sched.mem_dep_set(), kp.mem_inputs, "memory");

  // Communication accounting, recomputed: dependences sharing a producer
  // share a channel; a channel of kernel distance h costs h SEND/RECV
  // pairs and h-1 copies per iteration (post-pass copy chain).
  std::map<ir::NodeId, int> channel_hops;
  for (const std::size_t ei : sched.reg_dep_set()) {
    const ir::DepEdge& e = loop.dep(ei);
    const int dker = e.distance + sched.stage(e.dst) - sched.stage(e.src);
    int& hops = channel_hops[e.src];
    hops = std::max(hops, dker);
  }
  int pairs = 0;
  int copies = 0;
  for (const auto& [producer, hops] : channel_hops) {
    pairs += hops;
    copies += hops - 1;
  }
  if (kp.comm_pairs_per_iter != pairs) {
    c.fail(ViolationKind::kKernelProgram, "program claims ", kp.comm_pairs_per_iter,
           " SEND/RECV pairs per iteration, recomputed ", pairs);
  }
  if (kp.copies_per_iter != copies) {
    c.fail(ViolationKind::kKernelProgram, "program claims ", kp.copies_per_iter,
           " copies per iteration, recomputed ", copies);
  }

  // Stores per iteration drive write-buffer overflow decisions in the
  // simulator: a miscount silently changes the execution model.
  int stores = 0;
  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    if (loop.instr(v).op == ir::Opcode::kStore) ++stores;
  }
  if (kp.stores_per_iter != stores) {
    c.fail(ViolationKind::kKernelProgram, "program claims ", kp.stores_per_iter,
           " stores per iteration, loop has ", stores);
  }

  (void)cfg;
  return report;
}

}  // namespace tms::check
