// Independent schedule-validity checker.
//
// Re-verifies a complete sched::Schedule against its ir::Loop and
// machine::MachineModel from first principles, sharing no logic with the
// schedulers themselves (the MRT, window and threshold code paths are
// deliberately re-implemented here so that a bug in one of them cannot
// hide itself). The invariants checked are the paper's:
//   - modulo resource feasibility: per kernel row, issue slots <= issue
//     width and per-FU occupancy (with non-pipelined wrap-around) <= FU
//     count — the modulo reservation table, recomputed from scratch;
//   - the modulo scheduling constraint for every dependence edge:
//     sigma(dst) - sigma(src) >= delay(e) - II * distance(e), with the
//     speculated-memory zero-delay carve-out (Section 4.1);
//   - Definition 1: kernel_distance(e) >= 0 for every edge (no instance
//     may consume from a more speculative thread);
//   - normalisation and stage bounds: min stage 0, slots inside
//     [0, II * stage_count), stage_count consistent;
//   - register lifetimes: every register flow dependence covers its
//     producer's full latency (registers never get the memory
//     speculation carve-out);
//   - Definition 2 / C1: recomputed sync(x,y) of every inter-thread
//     register flow dependence is <= the C_delay threshold the TMS
//     schedule was accepted under, and Schedule::c_delay agrees with the
//     recomputed maximum;
//   - Eq. 3 / C2: recomputed P_M over independently re-derived preserved
//     sets is <= the P_max threshold, and agrees with
//     Schedule::misspec_probability.
//
// A second entry point cross-checks a lowered codegen::KernelProgram
// against its schedule (one op per node, rows/stages/latencies match, the
// SEND/RECV input set covers exactly the inter-thread dependence set, and
// the communication-pair accounting matches an independently recomputed
// channel plan) so that dropped or duplicated communication is caught
// before simulation.
#pragma once

#include <string>
#include <vector>

#include "codegen/kernel_program.hpp"
#include "machine/spmt_config.hpp"
#include "sched/schedule.hpp"

namespace tms::check {

enum class ViolationKind {
  kMalformedLoop,       ///< Loop::validate failed under the schedule
  kIncomplete,          ///< schedule does not place every instruction
  kNotNormalised,       ///< min stage != 0 or slot outside [0, II*stages)
  kIssueOverflow,       ///< a kernel row issues more ops than the width
  kFuOverflow,          ///< a functional unit is oversubscribed in a row
  kDependence,          ///< modulo constraint violated on an edge
  kNegativeKernelDistance,  ///< Definition 1 violated
  kStageBound,          ///< stage_count inconsistent with the slots
  kRegisterLifetime,    ///< a register value dies before its producer latency
  kSyncDelay,           ///< C1: sync(x,y) exceeds the C_delay threshold
  kMisspecProbability,  ///< C2: P_M exceeds the P_max threshold
  kMetricMismatch,      ///< Schedule's own analysis disagrees with recomputation
  kKernelProgram,       ///< lowered program inconsistent with the schedule
  // Differential-oracle kinds (reported by check/oracle):
  kFingerprintMismatch,  ///< SpMT committed values differ from the reference
  kMemoryMismatch,       ///< final memory images differ
  kStatsConservation,    ///< SpmtStats break a conservation invariant
  kTraceInconsistent,    ///< per-thread trace disagrees with aggregate stats
  kBaseline,             ///< single-core baseline broke its own invariants
};

std::string_view to_string(ViolationKind k);

struct Violation {
  ViolationKind kind = ViolationKind::kDependence;
  std::string message;
};

struct CheckOptions {
  /// TMS acceptance threshold C_delay; negative disables the C1 check
  /// (SMS/IMS schedules are not built under a threshold).
  int c_delay_threshold = -1;
  /// TMS acceptance threshold P_max; negative disables the C2 check.
  double p_max = -1.0;
};

struct CheckReport {
  std::vector<Violation> violations;
  bool ok() const { return violations.empty(); }
  /// One line per violation, "kind: message".
  std::string to_string() const;
};

/// Re-verifies `sched` (which references its loop and machine) under the
/// SpMT configuration `cfg`. All invariants are checked, not just the
/// first failing one.
CheckReport validate_schedule(const sched::Schedule& sched, const machine::SpmtConfig& cfg,
                              const CheckOptions& opts = {});

/// Cross-checks a lowered kernel program against the schedule it claims
/// to implement.
CheckReport validate_kernel_program(const codegen::KernelProgram& kp,
                                    const sched::Schedule& sched,
                                    const machine::SpmtConfig& cfg);

}  // namespace tms::check
