#include "check/shrink.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace tms::check {

ir::Loop drop_instr(const ir::Loop& loop, ir::NodeId victim) {
  TMS_ASSERT(victim >= 0 && victim < loop.num_instrs());
  TMS_ASSERT_MSG(loop.num_instrs() > 1, "cannot drop the last instruction");
  ir::Loop out(loop.name());
  out.set_coverage(loop.coverage());
  std::vector<ir::NodeId> remap(static_cast<std::size_t>(loop.num_instrs()), ir::kInvalidNode);
  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    if (v == victim) continue;
    remap[static_cast<std::size_t>(v)] = out.add_instr(loop.instr(v).op, loop.instr(v).name);
  }
  for (const ir::DepEdge& e : loop.deps()) {
    if (e.src == victim || e.dst == victim) continue;
    out.add_dep(remap[static_cast<std::size_t>(e.src)], remap[static_cast<std::size_t>(e.dst)],
                e.kind, e.type, e.distance, e.probability);
  }
  for (const ir::NodeId v : loop.live_ins()) {
    if (v == victim) continue;
    out.mark_live_in(remap[static_cast<std::size_t>(v)]);
  }
  return out;
}

ir::Loop drop_dep(const ir::Loop& loop, std::size_t edge) {
  TMS_ASSERT(edge < loop.deps().size());
  ir::Loop out(loop.name());
  out.set_coverage(loop.coverage());
  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    out.add_instr(loop.instr(v).op, loop.instr(v).name);
  }
  for (std::size_t i = 0; i < loop.deps().size(); ++i) {
    if (i == edge) continue;
    const ir::DepEdge& e = loop.dep(i);
    out.add_dep(e.src, e.dst, e.kind, e.type, e.distance, e.probability);
  }
  for (const ir::NodeId v : loop.live_ins()) out.mark_live_in(v);
  return out;
}

ir::Loop shrink_loop(const ir::Loop& loop, const FailurePredicate& still_fails) {
  ir::Loop current = loop;
  bool progress = true;
  while (progress) {
    progress = false;
    // Instructions first — dropping one removes its edges too, which is
    // the biggest single step towards a minimal reproducer. Descending id
    // order tends to keep the loop's "head" structure (induction
    // variable, recurrence circuit) intact for readability.
    for (ir::NodeId v = current.num_instrs() - 1; v >= 0 && current.num_instrs() > 1; --v) {
      ir::Loop candidate = drop_instr(current, v);
      if (!candidate.validate().has_value() && still_fails(candidate)) {
        current = std::move(candidate);
        progress = true;
      }
    }
    for (std::size_t e = current.deps().size(); e-- > 0;) {
      ir::Loop candidate = drop_dep(current, e);
      if (!candidate.validate().has_value() && still_fails(candidate)) {
        current = std::move(candidate);
        progress = true;
      }
    }
  }
  return current;
}

}  // namespace tms::check
