// Differential oracle: executes a scheduled loop on the SpMT simulator
// and cross-checks it against independent executions of the same loop.
//
// Three executions are compared:
//   - spmt::run_spmt over the lowered kernel program (the system under
//     test: speculation, squash, ring communication, caches);
//   - spmt::run_reference, the sequential interpreter (semantic ground
//     truth — the "golden rule" of speculative execution);
//   - spmt::run_single_threaded, the dynamically scheduled single-core
//     baseline (checked for its own conservation invariants).
//
// Beyond value equality (fingerprint + full final memory image diff) the
// oracle enforces conservation laws on SpmtStats that any correct run of
// the Section-3 execution model must satisfy:
//   - threads_committed == N + stage_count - 1 (every kernel iteration,
//     including prologue/epilogue partials, commits exactly once);
//   - instances_executed == N * |loop| (each source instance commits
//     exactly once, however many squashed attempts preceded it);
//   - send_recv_pairs == comm_pairs_per_iter * max(0, N - stages + 1)
//     (only steady-state threads run the full SEND/RECV complement);
//   - squashed_cycles >= misspeculations * C_inv, and zero squashed
//     cycles when nothing misspeculated;
//   - sync_stall_cycles == 0 when the kernel has no cross-thread register
//     inputs (nothing to RECV on);
//   - the per-thread trace, when collected, re-sums to the aggregate
//     stats (starts <= completions < commits, sequential commit order,
//     correct ring core assignment).
#pragma once

#include <cstdint>

#include "check/validate.hpp"
#include "ir/loop.hpp"
#include "machine/machine.hpp"
#include "machine/spmt_config.hpp"
#include "sched/schedule.hpp"
#include "spmt/sim.hpp"

namespace tms::check {

struct OracleOptions {
  std::int64_t iterations = 200;
  /// Seed for spmt::default_streams — varies the memory layout and the
  /// realised collision pattern of speculated dependences.
  std::uint64_t stream_seed = 42;
  /// Also run the single-threaded baseline and its invariants.
  bool run_baseline = true;
  /// Simulator engine the SpMT run uses. The oracle's invariants are
  /// engine-independent; running the suite under both engines is part
  /// of the event-vs-legacy differential guarantee (docs/SIMULATOR.md).
  spmt::SimEngine engine = spmt::SimEngine::kEventDriven;
};

struct OracleReport {
  std::vector<Violation> violations;
  /// Stats of the SpMT run, for callers that want to inspect squash
  /// counts etc. after a clean oracle pass.
  spmt::SpmtStats stats;
  bool ok() const { return violations.empty(); }
  std::string to_string() const;
};

/// Lowers `sched`, runs all executions and returns every violated
/// invariant. The schedule must already have passed validate_schedule
/// (lowering aborts on modulo-invalid schedules).
OracleReport run_differential_oracle(const ir::Loop& loop, const sched::Schedule& sched,
                                     const machine::SpmtConfig& cfg,
                                     const OracleOptions& opts = {});

}  // namespace tms::check
