#include "check/oracle.hpp"

#include <sstream>

#include "codegen/kernel_program.hpp"
#include "obs/trace.hpp"
#include "policy/policy.hpp"
#include "spmt/address.hpp"
#include "spmt/reference.hpp"
#include "spmt/single_core.hpp"

namespace tms::check {
namespace {

class Reporter {
 public:
  explicit Reporter(OracleReport& report) : report_(report) {}

  template <typename... Args>
  void fail(ViolationKind kind, const Args&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    report_.violations.push_back(Violation{kind, os.str()});
  }

 private:
  OracleReport& report_;
};

}  // namespace

std::string OracleReport::to_string() const {
  std::string out;
  for (const Violation& v : violations) {
    out += std::string(check::to_string(v.kind)) + ": " + v.message + "\n";
  }
  return out;
}

OracleReport run_differential_oracle(const ir::Loop& loop, const sched::Schedule& sched,
                                     const machine::SpmtConfig& cfg,
                                     const OracleOptions& opts) {
  OracleReport report;
  Reporter r(report);
  TMS_TRACE_SPAN(span, "check", "oracle.run");
  TMS_TRACE_SPAN_ARG(span, obs::targ("iterations", opts.iterations));
  const std::int64_t n = opts.iterations;

  const spmt::AddressStreams streams = spmt::default_streams(loop, opts.stream_seed);
  const codegen::KernelProgram kp = codegen::lower_kernel(sched, cfg);

  spmt::SpmtOptions sim_opts;
  sim_opts.iterations = n;
  sim_opts.keep_memory = true;
  sim_opts.collect_trace = true;
  sim_opts.engine = opts.engine;
  const spmt::SpmtResult sim = spmt::run_spmt(loop, kp, cfg, streams, sim_opts);
  report.stats = sim.stats;

  const spmt::ReferenceResult ref = spmt::run_reference(loop, streams, n);

  // --- Golden rule: committed values match the sequential reference -------
  if (sim.value_fingerprint != ref.value_fingerprint) {
    r.fail(ViolationKind::kFingerprintMismatch, "SpMT fingerprint ", sim.value_fingerprint,
           " != reference ", ref.value_fingerprint, " over ", n, " iterations");
  }
  for (const auto& [addr, val] : ref.memory) {
    const auto it = sim.memory.find(addr);
    if (it == sim.memory.end()) {
      r.fail(ViolationKind::kMemoryMismatch, "address 0x", std::hex, addr, std::dec,
             " written by the reference but absent from the SpMT image");
    } else if (it->second != val) {
      r.fail(ViolationKind::kMemoryMismatch, "address 0x", std::hex, addr, ": SpMT value ",
             it->second, " != reference ", val, std::dec);
    }
    if (report.violations.size() >= 8) break;  // a diverged run floods otherwise
  }
  if (report.violations.size() < 8) {
    for (const auto& [addr, val] : sim.memory) {
      if (ref.memory.count(addr) == 0) {
        r.fail(ViolationKind::kMemoryMismatch, "address 0x", std::hex, addr, std::dec,
               " written by the SpMT run but never by the reference");
        if (report.violations.size() >= 8) break;
      }
    }
  }

  // --- Conservation invariants on the stats -------------------------------
  const std::int64_t expected_threads = n + kp.stage_count - 1;
  if (sim.stats.threads_committed != expected_threads) {
    r.fail(ViolationKind::kStatsConservation, "threads_committed ", sim.stats.threads_committed,
           " != N + stages - 1 = ", expected_threads);
  }
  const std::int64_t expected_instances = n * loop.num_instrs();
  if (sim.stats.instances_executed != expected_instances) {
    r.fail(ViolationKind::kStatsConservation, "instances_executed ",
           sim.stats.instances_executed, " != N * |loop| = ", expected_instances);
  }
  const std::int64_t steady = std::max<std::int64_t>(0, n - (kp.stage_count - 1));
  if (sim.stats.send_recv_pairs !=
      static_cast<std::int64_t>(kp.comm_pairs_per_iter) * steady) {
    r.fail(ViolationKind::kStatsConservation, "send_recv_pairs ", sim.stats.send_recv_pairs,
           " != comm_pairs_per_iter * steady_threads = ",
           static_cast<std::int64_t>(kp.comm_pairs_per_iter) * steady);
  }
  if (sim.stats.misspeculations == 0 && sim.stats.squashed_cycles != 0) {
    r.fail(ViolationKind::kStatsConservation, "squashed ", sim.stats.squashed_cycles,
           " cycles with zero misspeculations");
  }
  if (sim.stats.squashed_cycles < sim.stats.misspeculations * cfg.c_inv) {
    r.fail(ViolationKind::kStatsConservation, "squashed_cycles ", sim.stats.squashed_cycles,
           " < misspeculations * C_inv = ", sim.stats.misspeculations * cfg.c_inv);
  }
  if (kp.inputs.empty() && sim.stats.sync_stall_cycles != 0) {
    r.fail(ViolationKind::kStatsConservation, "sync_stall_cycles ",
           sim.stats.sync_stall_cycles, " with no cross-thread register inputs");
  }
  if (sim.stats.total_cycles <= 0) {
    r.fail(ViolationKind::kStatsConservation, "total_cycles ", sim.stats.total_cycles,
           " for a non-empty run");
  }

  // --- Trace vs aggregate stats -------------------------------------------
  if (static_cast<std::int64_t>(sim.trace.size()) != sim.stats.threads_committed) {
    r.fail(ViolationKind::kTraceInconsistent, "trace has ", sim.trace.size(),
           " threads, stats committed ", sim.stats.threads_committed);
  } else if (!sim.trace.empty()) {
    const std::unique_ptr<policy::CorePolicy> pol = policy::make_policy(cfg, loop);
    std::int64_t sync = 0;
    std::int64_t extra_attempts = 0;
    std::int64_t prev_commit = 0;
    for (const spmt::ThreadTrace& t : sim.trace) {
      if (t.start > t.completion || t.completion >= t.commit_end) {
        r.fail(ViolationKind::kTraceInconsistent, "thread ", t.thread,
               " timeline not ordered: start ", t.start, ", completion ", t.completion,
               ", commit ", t.commit_end);
        break;
      }
      if (t.commit_end < prev_commit) {
        r.fail(ViolationKind::kTraceInconsistent, "thread ", t.thread,
               " commits before its predecessor");
        break;
      }
      if (t.core != pol->core_of(t.thread)) {
        r.fail(ViolationKind::kTraceInconsistent, "thread ", t.thread, " ran on core ", t.core,
               ", the ", policy::to_string(cfg.policy), " policy places it on ",
               pol->core_of(t.thread));
        break;
      }
      prev_commit = t.commit_end;
      sync += t.sync_stall;
      extra_attempts += t.attempts - 1;
    }
    if (sync != sim.stats.sync_stall_cycles) {
      r.fail(ViolationKind::kTraceInconsistent, "trace sync stalls sum to ", sync,
             ", stats say ", sim.stats.sync_stall_cycles);
    }
    if (extra_attempts != sim.stats.misspeculations) {
      r.fail(ViolationKind::kTraceInconsistent, "trace re-executions sum to ", extra_attempts,
             ", stats count ", sim.stats.misspeculations, " misspeculations");
    }
    if (sim.trace.back().commit_end != sim.stats.total_cycles) {
      r.fail(ViolationKind::kTraceInconsistent, "last commit at ", sim.trace.back().commit_end,
             ", stats total_cycles ", sim.stats.total_cycles);
    }
  }

  // --- Single-core baseline invariants ------------------------------------
  if (opts.run_baseline) {
    const spmt::SingleCoreStats single =
        spmt::run_single_threaded(loop, sched.machine(), cfg, streams, n);
    if (single.instances_executed != expected_instances) {
      r.fail(ViolationKind::kBaseline, "single-core executed ", single.instances_executed,
             " instances, expected ", expected_instances);
    }
    // Issue width bounds throughput; a cycle count below this is not a
    // fast core, it is an accounting bug.
    const std::int64_t floor =
        (expected_instances + sched.machine().issue_width() - 1) / sched.machine().issue_width();
    if (single.total_cycles < floor) {
      r.fail(ViolationKind::kBaseline, "single-core total_cycles ", single.total_cycles,
             " below the issue-width floor ", floor);
    }
  }

  return report;
}

}  // namespace tms::check
