// Test-case reduction for fuzzing failures.
//
// Given a loop on which some checker fails, greedily shrink it: try
// dropping one instruction (with its incident edges) or one dependence
// edge at a time, keeping any drop after which the failure still
// reproduces, until no single drop does. The result is a locally minimal
// reproducer suitable for serialising with ir::textio and checking into
// tests/data/.
#pragma once

#include <functional>

#include "ir/loop.hpp"

namespace tms::check {

/// Returns `loop` minus instruction `victim`: remaining instructions keep
/// their names, node ids are compacted, edges incident to the victim are
/// dropped and the rest remapped, live-ins and coverage carried over.
/// The result passes ir::Loop::validate whenever the input did (dropping
/// a node can only remove cycles) — except that a loop must keep at
/// least one instruction, so the victim must not be the last one.
ir::Loop drop_instr(const ir::Loop& loop, ir::NodeId victim);

/// Returns `loop` minus dependence edge `edge` (index into deps()).
ir::Loop drop_dep(const ir::Loop& loop, std::size_t edge);

/// Returns true while the failure of interest still reproduces on the
/// candidate loop. The predicate must be deterministic.
using FailurePredicate = std::function<bool(const ir::Loop&)>;

/// Greedy delta-debugging to a 1-minimal loop: no single instruction or
/// edge can be removed without losing the failure. Precondition:
/// still_fails(loop) is true; the returned loop also satisfies it.
ir::Loop shrink_loop(const ir::Loop& loop, const FailurePredicate& still_fails);

}  // namespace tms::check
