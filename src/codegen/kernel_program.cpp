#include "codegen/kernel_program.hpp"

#include <algorithm>

#include "ir/graph.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"

namespace tms::codegen {

KernelProgram lower_kernel(const sched::Schedule& sched, const machine::SpmtConfig& cfg) {
  TMS_ASSERT(sched.complete());
  TMS_ASSERT_MSG(!sched.validate().has_value(), "cannot lower an invalid schedule");
  obs::counters().codegen_lowerings.add(1);
  TMS_TRACE_SPAN(span, "codegen", "lower_kernel");
  TMS_TRACE_SPAN_ARG(span, obs::targ("ii", sched.ii()), obs::targ("stages", sched.stage_count()));
  const ir::Loop& loop = sched.loop();
  const machine::MachineModel& mach = sched.machine();

  KernelProgram kp;
  kp.ii = sched.ii();
  kp.stage_count = sched.stage_count();

  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    const ir::Opcode op = loop.instr(v).op;
    KernelOp ko;
    ko.node = v;
    ko.row = sched.row(v);
    ko.stage = sched.stage(v);
    ko.latency = mach.latency(op);
    ko.is_load = (op == ir::Opcode::kLoad);
    ko.is_store = (op == ir::Opcode::kStore);
    if (ko.is_store) ++kp.stores_per_iter;
    kp.ops.push_back(ko);
  }
  // Issue order within a thread: by row, and inside one row in program
  // order — higher stage first (its instance belongs to an older source
  // iteration), then topological rank. This guarantees that a same-row
  // store/load pair related by a speculated dependence (kernel distance
  // 0 after the zero-delay constraint) executes in program order, so
  // local store-buffer forwarding is always correct.
  const std::vector<ir::NodeId> topo = ir::topo_order_intra(loop);
  std::vector<int> rank(static_cast<std::size_t>(loop.num_instrs()), 0);
  for (std::size_t r = 0; r < topo.size(); ++r) {
    rank[static_cast<std::size_t>(topo[r])] = static_cast<int>(r);
  }
  std::sort(kp.ops.begin(), kp.ops.end(), [&rank](const KernelOp& a, const KernelOp& b) {
    if (a.row != b.row) return a.row < b.row;
    if (a.stage != b.stage) return a.stage > b.stage;
    return rank[static_cast<std::size_t>(a.node)] < rank[static_cast<std::size_t>(b.node)];
  });

  for (const std::size_t ei : sched.reg_dep_set()) {
    const ir::DepEdge& e = loop.dep(ei);
    CrossThreadInput in;
    in.edge = ei;
    in.producer = e.src;
    in.consumer = e.dst;
    in.d_ker = sched.kernel_distance(e);
    in.producer_complete_row = sched.row(e.src) + mach.latency(loop.instr(e.src).op);
    in.consumer_row = sched.row(e.dst);
    kp.inputs.push_back(in);
  }
  std::sort(kp.inputs.begin(), kp.inputs.end(),
            [](const CrossThreadInput& a, const CrossThreadInput& b) {
              if (a.consumer_row != b.consumer_row) return a.consumer_row < b.consumer_row;
              return a.edge < b.edge;
            });

  kp.reg_operands.resize(static_cast<std::size_t>(loop.num_instrs()));
  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    for (const std::size_t ei : loop.in_edges(v)) {
      const ir::DepEdge& e = loop.dep(ei);
      if (!e.is_register_flow()) continue;
      kp.reg_operands[static_cast<std::size_t>(v)].push_back(
          OperandRef{ei, e.src, e.distance, sched.kernel_distance(e)});
    }
    // in_edges is already in edge-index order; keep it that way so the
    // value fold matches the reference interpreter exactly.
    std::sort(kp.reg_operands[static_cast<std::size_t>(v)].begin(),
              kp.reg_operands[static_cast<std::size_t>(v)].end(),
              [](const OperandRef& a, const OperandRef& b) { return a.edge < b.edge; });
  }

  for (const std::size_t ei : sched.mem_dep_set()) {
    const ir::DepEdge& e = loop.dep(ei);
    CrossThreadInput in;
    in.edge = ei;
    in.producer = e.src;
    in.consumer = e.dst;
    in.d_ker = sched.kernel_distance(e);
    in.producer_complete_row = sched.row(e.src) + mach.latency(loop.instr(e.src).op);
    in.consumer_row = sched.row(e.dst);
    kp.mem_inputs.push_back(in);
  }

  const sched::CommPlan plan = sched::plan_communication(sched);
  kp.comm_pairs_per_iter = plan.comm_pairs_per_iter;
  kp.copies_per_iter = plan.copies_per_iter;
  (void)cfg;
  return kp;
}

}  // namespace tms::codegen
