// Kernel lowering: from a modulo schedule to the per-thread program the
// SpMT machine executes.
//
// Execution model (Section 3): thread k executes kernel iteration k — for
// every node v, the instance of v belonging to source iteration
// k - stage(v), guarded so that prologue/epilogue threads simply skip
// instances whose source iteration falls outside [0, N). Threads are
// spawned round-robin over the ring; a register dependence with kernel
// distance d_ker is satisfied by the value produced in thread k - d_ker,
// forwarded hop-by-hop (the post-pass copy chain) at C_reg_com per hop.
#pragma once

#include <vector>

#include "ir/loop.hpp"
#include "machine/spmt_config.hpp"
#include "sched/postpass.hpp"
#include "sched/schedule.hpp"

namespace tms::codegen {

/// One instruction slot of the kernel, in issue order.
struct KernelOp {
  ir::NodeId node = ir::kInvalidNode;
  int row = 0;    ///< issue cycle within the kernel iteration
  int stage = 0;  ///< source iteration of this instance is k - stage
  int latency = 0;
  bool is_load = false;
  bool is_store = false;
};

/// A register value consumed from an earlier thread.
struct CrossThreadInput {
  std::size_t edge = 0;       ///< index into Loop::deps()
  ir::NodeId producer = ir::kInvalidNode;
  ir::NodeId consumer = ir::kInvalidNode;
  int d_ker = 0;              ///< threads between producer and consumer (>= 1)
  int producer_complete_row = 0;  ///< producer's issue row + latency
  int consumer_row = 0;
};

/// A register operand of a node: value produced by `src` in thread
/// k - d_ker (same thread when d_ker == 0).
struct OperandRef {
  std::size_t edge = 0;
  ir::NodeId src = ir::kInvalidNode;
  int distance = 0;  ///< source-iteration distance d(e)
  int d_ker = 0;     ///< thread distance in the kernel
};

struct KernelProgram {
  int ii = 0;
  int stage_count = 0;
  std::vector<KernelOp> ops;  ///< sorted by (row, node id)
  std::vector<CrossThreadInput> inputs;
  /// Register flow operands per node, in dependence-edge index order (the
  /// same fold order the reference interpreter uses).
  std::vector<std::vector<OperandRef>> reg_operands;
  /// Inter-thread memory flow dependences (d_ker >= 1): the speculated
  /// dependences, or the ones to synchronise when speculation is off.
  std::vector<CrossThreadInput> mem_inputs;
  /// SEND/RECV pairs a steady-state thread executes (copy-chain hops).
  int comm_pairs_per_iter = 0;
  /// Register copies per iteration from the post-pass.
  int copies_per_iter = 0;
  /// Stores executed per steady-state thread (speculation buffer sizing).
  int stores_per_iter = 0;
};

/// Lowers a complete, normalised schedule.
KernelProgram lower_kernel(const sched::Schedule& sched, const machine::SpmtConfig& cfg);

}  // namespace tms::codegen
