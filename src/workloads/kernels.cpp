#include "workloads/kernels.hpp"

#include "support/assert.hpp"

namespace tms::workloads {
namespace {

using ir::Loop;
using ir::NodeId;
using ir::Opcode;

NodeId induction(Loop& loop) {
  const NodeId i = loop.add_instr(Opcode::kIAdd, "i");
  loop.add_reg_flow(i, i, 1);
  loop.mark_live_in(i);
  return i;
}

/// Livermore kernel 1 (hydro fragment): fully parallel.
Kernel hydro() {
  Loop loop("hydro");
  const NodeId i = induction(loop);
  const NodeId z10 = loop.add_instr(Opcode::kLoad, "z[i+10]");
  const NodeId z11 = loop.add_instr(Opcode::kLoad, "z[i+11]");
  const NodeId y = loop.add_instr(Opcode::kLoad, "y[i]");
  loop.add_reg_flow(i, z10, 0);
  loop.add_reg_flow(i, z11, 0);
  loop.add_reg_flow(i, y, 0);
  const NodeId rz = loop.add_instr(Opcode::kFMul, "r*z10");
  loop.add_reg_flow(z10, rz, 0);
  const NodeId tz = loop.add_instr(Opcode::kFMul, "t*z11");
  loop.add_reg_flow(z11, tz, 0);
  const NodeId sum = loop.add_instr(Opcode::kFAdd, "rz+tz");
  loop.add_reg_flow(rz, sum, 0);
  loop.add_reg_flow(tz, sum, 0);
  const NodeId ys = loop.add_instr(Opcode::kFMul, "y*sum");
  loop.add_reg_flow(y, ys, 0);
  loop.add_reg_flow(sum, ys, 0);
  const NodeId q = loop.add_instr(Opcode::kFAdd, "q+ys");
  loop.add_reg_flow(ys, q, 0);
  const NodeId st = loop.add_instr(Opcode::kStore, "x[i]=");
  loop.add_reg_flow(q, st, 0);
  loop.add_reg_flow(i, st, 0);
  loop.set_coverage(0.4);
  return {"x[i] = q + y[i]*(r*z[i+10] + t*z[i+11])", std::move(loop)};
}

/// Livermore kernel 3: inner product — the canonical reduction.
Kernel inner_prod() {
  Loop loop("inner_prod");
  const NodeId i = induction(loop);
  const NodeId z = loop.add_instr(Opcode::kLoad, "z[i]");
  const NodeId x = loop.add_instr(Opcode::kLoad, "x[i]");
  loop.add_reg_flow(i, z, 0);
  loop.add_reg_flow(i, x, 0);
  const NodeId m = loop.add_instr(Opcode::kFMul, "z*x");
  loop.add_reg_flow(z, m, 0);
  loop.add_reg_flow(x, m, 0);
  const NodeId q = loop.add_instr(Opcode::kFAdd, "q+=");
  loop.add_reg_flow(m, q, 0);
  loop.add_reg_flow(q, q, 1);
  loop.mark_live_in(q);
  loop.set_coverage(0.5);
  return {"q += z[i]*x[i]", std::move(loop)};
}

/// Livermore kernel 5: tri-diagonal elimination — a first-order
/// recurrence through x[i-1], carried in a register after scalar
/// replacement.
Kernel tridiag() {
  Loop loop("tridiag");
  const NodeId i = induction(loop);
  const NodeId z = loop.add_instr(Opcode::kLoad, "z[i]");
  const NodeId y = loop.add_instr(Opcode::kLoad, "y[i]");
  loop.add_reg_flow(i, z, 0);
  loop.add_reg_flow(i, y, 0);
  const NodeId sub = loop.add_instr(Opcode::kFSub, "y - x[i-1]");
  loop.add_reg_flow(y, sub, 0);
  const NodeId x = loop.add_instr(Opcode::kFMul, "x[i] = z*sub");
  loop.add_reg_flow(z, x, 0);
  loop.add_reg_flow(sub, x, 0);
  loop.add_reg_flow(x, sub, 1);  // the recurrence: next iteration's x[i-1]
  loop.mark_live_in(x);
  const NodeId st = loop.add_instr(Opcode::kStore, "x[i]=");
  loop.add_reg_flow(x, st, 0);
  loop.add_reg_flow(i, st, 0);
  loop.set_coverage(0.5);
  return {"x[i] = z[i]*(y[i] - x[i-1])", std::move(loop)};
}

/// Livermore kernel 7-ish (equation of state fragment, shortened): long
/// parallel expression trees feeding one store.
Kernel state_frag() {
  Loop loop("state_frag");
  const NodeId i = induction(loop);
  const NodeId u = loop.add_instr(Opcode::kLoad, "u[i]");
  const NodeId r = loop.add_instr(Opcode::kLoad, "r[i]");
  const NodeId t = loop.add_instr(Opcode::kLoad, "t[i]");
  loop.add_reg_flow(i, u, 0);
  loop.add_reg_flow(i, r, 0);
  loop.add_reg_flow(i, t, 0);
  const NodeId m1 = loop.add_instr(Opcode::kFMul, "u*r");
  loop.add_reg_flow(u, m1, 0);
  loop.add_reg_flow(r, m1, 0);
  const NodeId a1 = loop.add_instr(Opcode::kFAdd, "+t");
  loop.add_reg_flow(m1, a1, 0);
  loop.add_reg_flow(t, a1, 0);
  const NodeId m2 = loop.add_instr(Opcode::kFMul, "*u");
  loop.add_reg_flow(a1, m2, 0);
  loop.add_reg_flow(u, m2, 0);
  const NodeId a2 = loop.add_instr(Opcode::kFAdd, "+r");
  loop.add_reg_flow(m2, a2, 0);
  loop.add_reg_flow(r, a2, 0);
  const NodeId m3 = loop.add_instr(Opcode::kFMul, "*t");
  loop.add_reg_flow(a2, m3, 0);
  loop.add_reg_flow(t, m3, 0);
  const NodeId st = loop.add_instr(Opcode::kStore, "x[i]=");
  loop.add_reg_flow(m3, st, 0);
  loop.add_reg_flow(i, st, 0);
  loop.set_coverage(0.35);
  return {"x[i] = t[i]*(r[i] + u[i]*(u[i]*r[i] + t[i])) (shortened)", std::move(loop)};
}

/// Livermore kernel 11: first sum (prefix sum) — the tightest possible
/// recurrence, the pure-TLP stress case.
Kernel first_sum() {
  Loop loop("first_sum");
  const NodeId i = induction(loop);
  const NodeId y = loop.add_instr(Opcode::kLoad, "y[i]");
  loop.add_reg_flow(i, y, 0);
  const NodeId x = loop.add_instr(Opcode::kFAdd, "x[i]=x[i-1]+y[i]");
  loop.add_reg_flow(y, x, 0);
  loop.add_reg_flow(x, x, 1);
  loop.mark_live_in(x);
  const NodeId st = loop.add_instr(Opcode::kStore, "x[i]=");
  loop.add_reg_flow(x, st, 0);
  loop.add_reg_flow(i, st, 0);
  loop.set_coverage(0.3);
  return {"x[i] = x[i-1] + y[i]", std::move(loop)};
}

/// A 4-tap FIR filter with the taps unrolled: the sliding window keeps
/// x[i-k] alive across iterations (register deps of distance 1..3).
Kernel fir() {
  Loop loop("fir4");
  const NodeId i = induction(loop);
  const NodeId x0 = loop.add_instr(Opcode::kLoad, "x[i]");
  loop.add_reg_flow(i, x0, 0);
  // c0*x[i] + c1*x[i-1] + c2*x[i-2] + c3*x[i-3]: the delayed samples are
  // last iterations' loads, carried in registers.
  const NodeId m0 = loop.add_instr(Opcode::kFMul, "c0*x[i]");
  loop.add_reg_flow(x0, m0, 0);
  const NodeId m1 = loop.add_instr(Opcode::kFMul, "c1*x[i-1]");
  loop.add_reg_flow(x0, m1, 1);
  const NodeId m2 = loop.add_instr(Opcode::kFMul, "c2*x[i-2]");
  loop.add_reg_flow(x0, m2, 2);
  const NodeId m3 = loop.add_instr(Opcode::kFMul, "c3*x[i-3]");
  loop.add_reg_flow(x0, m3, 3);
  const NodeId a0 = loop.add_instr(Opcode::kFAdd, "m0+m1");
  loop.add_reg_flow(m0, a0, 0);
  loop.add_reg_flow(m1, a0, 0);
  const NodeId a1 = loop.add_instr(Opcode::kFAdd, "m2+m3");
  loop.add_reg_flow(m2, a1, 0);
  loop.add_reg_flow(m3, a1, 0);
  const NodeId a2 = loop.add_instr(Opcode::kFAdd, "a0+a1");
  loop.add_reg_flow(a0, a2, 0);
  loop.add_reg_flow(a1, a2, 0);
  const NodeId st = loop.add_instr(Opcode::kStore, "y[i]=");
  loop.add_reg_flow(a2, st, 0);
  loop.add_reg_flow(i, st, 0);
  loop.set_coverage(0.45);
  return {"y[i] = c0*x[i] + c1*x[i-1] + c2*x[i-2] + c3*x[i-3]", std::move(loop)};
}

/// Indirect scatter with a profiled self-alias rate: a[idx[i]] = f(b[i]),
/// where idx occasionally repeats within a short window — the archetypal
/// speculation candidate (cf. the paper's Section 2 prior work).
Kernel scatter() {
  Loop loop("scatter");
  const NodeId i = induction(loop);
  const NodeId idx = loop.add_instr(Opcode::kLoad, "idx[i]");
  const NodeId b = loop.add_instr(Opcode::kLoad, "b[i]");
  loop.add_reg_flow(i, idx, 0);
  loop.add_reg_flow(i, b, 0);
  const NodeId f = loop.add_instr(Opcode::kFMul, "f(b)");
  loop.add_reg_flow(b, f, 0);
  const NodeId g = loop.add_instr(Opcode::kFAdd, "g(f)");
  loop.add_reg_flow(f, g, 0);
  // Read-modify-write of a[idx[i]]: load, combine, store.
  const NodeId a_old = loop.add_instr(Opcode::kLoad, "a[idx]");
  loop.add_reg_flow(idx, a_old, 0);
  const NodeId upd = loop.add_instr(Opcode::kFAdd, "a_old+g");
  loop.add_reg_flow(a_old, upd, 0);
  loop.add_reg_flow(g, upd, 0);
  const NodeId st = loop.add_instr(Opcode::kStore, "a[idx]=");
  loop.add_reg_flow(upd, st, 0);
  loop.add_reg_flow(idx, st, 0);
  // Profiled: consecutive iterations touch the same element 3% of the
  // time (the paper's "small dependence probability" regime).
  loop.add_mem_flow(st, a_old, 1, 0.03);
  loop.set_coverage(0.4);
  return {"a[idx[i]] += g(f(b[i])), idx self-aliases ~3%", std::move(loop)};
}

/// A simplified ADI-style forward sweep: two coupled recurrences plus
/// independent work, the mixed ILP/TLP case TMS balances.
Kernel adi_sweep() {
  Loop loop("adi_sweep");
  const NodeId i = induction(loop);
  const NodeId du = loop.add_instr(Opcode::kLoad, "du[i]");
  const NodeId dv = loop.add_instr(Opcode::kLoad, "dv[i]");
  loop.add_reg_flow(i, du, 0);
  loop.add_reg_flow(i, dv, 0);
  // u-recurrence: u = du - a*u_prev.
  const NodeId au = loop.add_instr(Opcode::kFMul, "a*u_prev");
  const NodeId u = loop.add_instr(Opcode::kFSub, "u=du-au");
  loop.add_reg_flow(du, u, 0);
  loop.add_reg_flow(au, u, 0);
  loop.add_reg_flow(u, au, 1);
  loop.mark_live_in(u);
  // v-recurrence, coupled into u's result.
  const NodeId bv = loop.add_instr(Opcode::kFMul, "b*v_prev");
  const NodeId v = loop.add_instr(Opcode::kFSub, "v=dv-bv");
  loop.add_reg_flow(dv, v, 0);
  loop.add_reg_flow(bv, v, 0);
  loop.add_reg_flow(v, bv, 1);
  loop.mark_live_in(v);
  const NodeId cross = loop.add_instr(Opcode::kFMul, "u*v");
  loop.add_reg_flow(u, cross, 0);
  loop.add_reg_flow(v, cross, 0);
  const NodeId stu = loop.add_instr(Opcode::kStore, "u[i]=");
  loop.add_reg_flow(u, stu, 0);
  loop.add_reg_flow(i, stu, 0);
  const NodeId stx = loop.add_instr(Opcode::kStore, "x[i]=");
  loop.add_reg_flow(cross, stx, 0);
  loop.add_reg_flow(i, stx, 0);
  loop.set_coverage(0.5);
  return {"ADI forward sweep (two coupled first-order recurrences)", std::move(loop)};
}

}  // namespace

std::vector<Kernel> classic_kernels() {
  std::vector<Kernel> out;
  out.push_back(hydro());
  out.push_back(inner_prod());
  out.push_back(tridiag());
  out.push_back(state_frag());
  out.push_back(first_sum());
  out.push_back(fir());
  out.push_back(scatter());
  out.push_back(adi_sweep());
  for (const Kernel& k : out) {
    TMS_ASSERT_MSG(!k.loop.validate().has_value(), "kernel must be well-formed");
  }
  return out;
}

}  // namespace tms::workloads
