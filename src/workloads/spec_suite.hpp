// Synthetic SPECfp2000 suite, calibrated to Table 2.
//
// The paper modulo-schedules 778 innermost loops from 13 SPECfp2000
// benchmarks (galgel excluded). We cannot ship SPEC, so each benchmark is
// replaced by a seeded family of synthetic loops whose structural
// statistics are calibrated to the paper's Table 2: loop count, average
// instruction count, and average MII (the paper's MII is close to
// #inst / issue_width for all benchmarks except the recurrence-bound
// art, which the `rec_*` knobs reproduce). Dependence probabilities
// substitute for train-input profiling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/loop.hpp"
#include "workloads/builder.hpp"

namespace tms::workloads {

struct BenchmarkSpec {
  std::string name;
  int n_loops = 0;
  int inst_lo = 0;
  int inst_hi = 0;
  /// Fraction of loops carrying a main recurrence circuit.
  double rec_fraction = 0.3;
  int rec_delay_lo = 4;
  int rec_delay_hi = 10;
  int feeders_lo = 1;
  int feeders_hi = 2;
  int accs_lo = 1;
  int accs_hi = 3;
  int mem_lo = 0;
  int mem_hi = 2;
  double mem_prob_lo = 0.01;
  double mem_prob_hi = 0.05;
  double fp_fraction = 0.6;
  /// Fraction of program execution time spent in the benchmark's
  /// modulo-scheduled loops (drives program speedups via Amdahl).
  double coverage = 0.4;
  std::uint64_t seed = 0;
};

/// The 13 benchmarks of Table 2 with calibrated parameters.
std::vector<BenchmarkSpec> spec_fp2000_suite();

/// One loop of a benchmark family, before construction: the shape plus
/// the loop's coverage share.
struct ShapedLoop {
  LoopShape shape;
  double coverage = 0.0;
};

/// Derives the benchmark's loop shapes from its seed. This is the cheap,
/// inherently serial part of generation (one shared RNG stream per
/// benchmark); the expensive build_loop step consumes only the forked
/// per-loop seed inside each shape, so callers — the batch driver, the
/// bench harness — can build the loops in parallel with one private RNG
/// per job instead of sharing a generator across jobs.
std::vector<ShapedLoop> benchmark_shapes(const BenchmarkSpec& spec);

/// Generates the benchmark's loop family (benchmark_shapes + build_loop).
/// Each loop's coverage() is its share of whole-program time (they sum to
/// the benchmark's coverage).
std::vector<ir::Loop> generate_benchmark(const BenchmarkSpec& spec);

}  // namespace tms::workloads
