#include "workloads/spec_suite.hpp"

#include "support/assert.hpp"
#include "support/rng.hpp"
#include "workloads/builder.hpp"

namespace tms::workloads {

std::vector<BenchmarkSpec> spec_fp2000_suite() {
  // Columns calibrated against Table 2 (loops / avg #inst / avg MII) plus
  // the paper's qualitative notes: art is recurrence-bound (MII 7.6 vs an
  // issue bound of ~4); wupwise's dominant loop has a single non-trivial
  // SCC and gains nothing from TMS; lucas has very large loop bodies with
  // heavy recurrences; mesa and fma3d are integer-heavier. Coverage
  // values are chosen so loop-to-program speedup dilution matches
  // Figure 4's ~28% -> ~10%.
  std::vector<BenchmarkSpec> suite;

  suite.push_back({"wupwise", 16, 12, 21, 0.90, 8, 11, 0, 1, 1, 1, 0, 1, 0.005, 0.02, 0.65,
                   0.30, 0x5EED0001ULL});
  suite.push_back({"swim", 11, 18, 33, 0.25, 5, 9, 1, 2, 1, 3, 1, 2, 0.005, 0.03, 0.70,
                   0.55, 0x5EED0002ULL});
  suite.push_back({"mgrid", 10, 26, 42, 0.25, 6, 11, 1, 2, 1, 3, 1, 2, 0.005, 0.03, 0.70,
                   0.55, 0x5EED0003ULL});
  suite.push_back({"applu", 41, 34, 60, 0.30, 8, 14, 1, 3, 1, 3, 1, 3, 0.005, 0.03, 0.65,
                   0.50, 0x5EED0004ULL});
  suite.push_back({"mesa", 51, 17, 32, 0.25, 4, 8, 1, 2, 1, 2, 0, 2, 0.005, 0.03, 0.40,
                   0.30, 0x5EED0005ULL});
  suite.push_back({"art", 10, 12, 20, 0.90, 7, 9, 1, 2, 1, 2, 1, 2, 0.005, 0.02, 0.55,
                   0.45, 0x5EED0006ULL});
  suite.push_back({"equake", 5, 33, 54, 0.35, 8, 13, 1, 3, 1, 3, 1, 3, 0.005, 0.04, 0.60,
                   0.65, 0x5EED0007ULL});
  suite.push_back({"facerec", 26, 24, 40, 0.30, 6, 11, 1, 2, 1, 3, 1, 2, 0.005, 0.03, 0.60,
                   0.40, 0x5EED0008ULL});
  suite.push_back({"ammp", 11, 27, 45, 0.45, 8, 13, 1, 2, 1, 3, 1, 2, 0.005, 0.03, 0.55,
                   0.30, 0x5EED0009ULL});
  suite.push_back({"lucas", 24, 130, 210, 0.30, 30, 55, 1, 3, 2, 4, 1, 3, 0.005, 0.03, 0.70,
                   0.40, 0x5EED000AULL});
  suite.push_back({"fma3d", 170, 21, 37, 0.25, 5, 10, 1, 2, 1, 2, 1, 2, 0.005, 0.035, 0.45,
                   0.30, 0x5EED000BULL});
  suite.push_back({"sixtrack", 340, 30, 53, 0.30, 7, 13, 1, 2, 1, 3, 1, 2, 0.005, 0.03, 0.55,
                   0.30, 0x5EED000CULL});
  suite.push_back({"apsi", 63, 21, 37, 0.30, 5, 10, 1, 2, 1, 3, 1, 2, 0.005, 0.03, 0.55,
                   0.35, 0x5EED000DULL});
  return suite;
}

std::vector<ShapedLoop> benchmark_shapes(const BenchmarkSpec& spec) {
  TMS_ASSERT(spec.n_loops > 0);
  support::Rng rng(spec.seed);
  std::vector<ShapedLoop> out;
  out.reserve(static_cast<std::size_t>(spec.n_loops));

  // Execution-time weights within the benchmark: a few hot loops dominate
  // (power-law-ish), as in real programs.
  std::vector<double> weights;
  double wsum = 0.0;
  for (int i = 0; i < spec.n_loops; ++i) {
    const double w = 1.0 / static_cast<double>(1 + i) + 0.05 * rng.uniform();
    weights.push_back(w);
    wsum += w;
  }

  for (int i = 0; i < spec.n_loops; ++i) {
    LoopShape shape;
    shape.name = spec.name + "_loop" + std::to_string(i);
    shape.target_instrs = rng.uniform_int(spec.inst_lo, spec.inst_hi);
    if (rng.chance(spec.rec_fraction)) {
      shape.rec_circuit_delay = rng.uniform_int(spec.rec_delay_lo, spec.rec_delay_hi);
      shape.rec_circuit_len = rng.uniform_int(3, std::max(3, shape.rec_circuit_delay / 2));
    } else {
      shape.rec_circuit_delay = 0;
    }
    shape.accumulators = rng.uniform_int(spec.accs_lo, spec.accs_hi);
    shape.feeders = rng.uniform_int(spec.feeders_lo, spec.feeders_hi);
    shape.mem_deps = rng.uniform_int(spec.mem_lo, spec.mem_hi);
    shape.mem_prob_lo = spec.mem_prob_lo;
    shape.mem_prob_hi = spec.mem_prob_hi;
    shape.fp_fraction = spec.fp_fraction;
    shape.seed = rng.fork_seed();
    out.push_back({std::move(shape), spec.coverage * weights[static_cast<std::size_t>(i)] / wsum});
  }
  return out;
}

std::vector<ir::Loop> generate_benchmark(const BenchmarkSpec& spec) {
  std::vector<ir::Loop> loops;
  loops.reserve(static_cast<std::size_t>(spec.n_loops));
  for (const ShapedLoop& s : benchmark_shapes(spec)) {
    // build_loop draws only from the shape's forked seed, so this step is
    // pure per shape and parallelises (see bench/harness, driver/batch).
    ir::Loop loop = build_loop(s.shape);
    loop.set_coverage(s.coverage);
    loops.push_back(std::move(loop));
  }
  return loops;
}

}  // namespace tms::workloads
