#include "workloads/doacross.hpp"

#include "support/assert.hpp"

namespace tms::workloads {
namespace {

using ir::Loop;
using ir::NodeId;
using ir::Opcode;

/// Appends a dataflow chain `ops` fed by `from`; returns the tail node.
NodeId chain(Loop& loop, NodeId from, std::initializer_list<Opcode> ops) {
  NodeId cur = from;
  for (const Opcode op : ops) {
    const NodeId nxt = loop.add_instr(op);
    loop.add_reg_flow(cur, nxt, 0);
    cur = nxt;
  }
  return cur;
}

/// A load -> compute -> store lane: returns {load, store}.
struct Lane {
  NodeId load;
  NodeId tail;   ///< last compute node before the store
  NodeId store;
};

Lane lane(Loop& loop, NodeId ind, std::initializer_list<Opcode> ops) {
  const NodeId ld = loop.add_instr(Opcode::kLoad);
  loop.add_reg_flow(ind, ld, 0);
  const NodeId tail = chain(loop, ld, ops);
  const NodeId st = loop.add_instr(Opcode::kStore);
  loop.add_reg_flow(tail, st, 0);
  loop.add_reg_flow(ind, st, 0);
  return Lane{ld, tail, st};
}

NodeId accumulator(Loop& loop, Opcode op) {
  const NodeId acc = loop.add_instr(op);
  loop.add_reg_flow(acc, acc, 1);
  loop.mark_live_in(acc);
  return acc;
}

NodeId induction(Loop& loop) {
  const NodeId ind = loop.add_instr(Opcode::kIAdd, "ind");
  loop.add_reg_flow(ind, ind, 1);
  loop.mark_live_in(ind);
  return ind;
}

constexpr Opcode FM = Opcode::kFMul;   // lat 4
constexpr Opcode FA = Opcode::kFAdd;   // lat 2
constexpr Opcode FS = Opcode::kFSub;   // lat 2
constexpr Opcode IA = Opcode::kIAdd;   // lat 1
constexpr Opcode LG = Opcode::kLogic;  // lat 1

/// art: 27 instructions, 3 SCCs (induction + two accumulators), MII 11
/// bound by the single memory port (11 memory ops), LDP ~29. Per the
/// paper, the selected art loops' MIIs are constrained by resources, not
/// recurrences — so TMS can push C_delay down to the accumulator floor
/// (lat(fadd) + C_reg_com = 5, Table 3's D = 5). The paper's two small
/// 11-instruction loops appear here in their 4x-unrolled form; `variant`
/// varies the FP mix across the four selected loops.
Loop make_art(int variant, double coverage) {
  Loop loop("art_sel" + std::to_string(variant));
  const NodeId ind = induction(loop);                          // 1
  const NodeId acc0 = accumulator(loop, FA);
  const NodeId acc1 = accumulator(loop, FA);                   // +2 = 3
  // Deep lane: LDP = 3 + 5*4 + 2*2 + 1 + 1(store) = 29.
  const Lane deep = lane(loop, ind, {FM, FM, FM, FM, FM, FA, FA, IA});  // +10 = 13
  // Short memory lanes (the unrolled bodies).
  const Lane l2 = lane(loop, ind, {FA, variant % 2 == 0 ? FA : FS});    // +4 = 17
  const Lane l3 = lane(loop, ind, {IA});                                // +3 = 20
  const Lane l4 = lane(loop, ind, {FA});                                // +3 = 23
  // Gather loads folded into the accumulators' next-iteration values
  // would close a cycle, so they feed plain consumers instead.
  const NodeId ld5 = loop.add_instr(Opcode::kLoad);
  loop.add_reg_flow(ind, ld5, 0);
  const NodeId ld6 = loop.add_instr(Opcode::kLoad);
  loop.add_reg_flow(ind, ld6, 0);
  const NodeId s0 = loop.add_instr(variant % 2 == 0 ? FS : FA);
  loop.add_reg_flow(ld5, s0, 0);
  loop.add_reg_flow(ld6, s0, 0);
  const NodeId s1 = loop.add_instr(LG);
  loop.add_reg_flow(s0, s1, 0);                                // +4 = 27
  // Cross-iteration feeders: the SMS pathology (Figure 2's n6 -> n0).
  loop.add_reg_flow(acc0, deep.load, 1);
  loop.add_reg_flow(acc1, l2.load, 1);
  // Speculated dependences with small profiled probability.
  loop.add_mem_flow(deep.store, ld5, 1, 0.02);
  loop.add_mem_flow(l2.store, l3.load, 1, 0.02);
  loop.set_coverage(coverage);
  TMS_ASSERT(!loop.validate().has_value());
  return loop;
}

/// equake: 82 instructions, 3 SCCs (induction + 2 accumulators), MII ~20
/// (resource/issue bound), LDP ~26. Good ILP and TLP; the speculated
/// dependences carry small probability but synchronising them would cost
/// ~19% (Section 5.2's ablation).
Loop make_equake(double coverage) {
  Loop loop("equake_sel");
  const NodeId ind = induction(loop);                          // 1
  const NodeId acc0 = accumulator(loop, FA);
  const NodeId acc1 = accumulator(loop, FM);                   // +2 = 3
  // Eight parallel lanes of ~9-10 instructions; the deepest gives LDP 26:
  // 3 (load) + 4+4+4 (fmul) + 2+2 (fadd) + ... capped below 27.
  std::vector<Lane> lanes;
  // LDP lane: 3 + 4*4 + 2*2 + 1 + 1 + 1(store) = 26.
  lanes.push_back(lane(loop, ind, {FM, FM, FM, FM, FA, FA, IA, LG}));  // +10
  lanes.push_back(lane(loop, ind, {FM, FM, FA, FA, IA, LG}));          // +8
  lanes.push_back(lane(loop, ind, {FM, FM, FA, IA, LG}));              // +7
  lanes.push_back(lane(loop, ind, {FM, FA, FA, IA, LG, IA}));          // +8
  lanes.push_back(lane(loop, ind, {FM, FM, FA, FS, IA}));              // +7
  lanes.push_back(lane(loop, ind, {FA, FA, FM, IA, LG}));              // +7
  lanes.push_back(lane(loop, ind, {FM, FS, FA, IA}));                  // +6
  lanes.push_back(lane(loop, ind, {FM, FM, FS, IA, LG}));              // +7
  // Running total: 3 + 60 = 63.
  // Cross-lane coupling through this iteration's values.
  loop.add_reg_flow(lanes[0].tail, lanes[1].store, 0);
  // Feeders: next iteration's lane heads wait on the accumulators.
  loop.add_reg_flow(acc0, lanes[0].load, 1);
  loop.add_reg_flow(acc1, lanes[3].load, 1);
  loop.add_reg_flow(acc0, lanes[5].load, 1);
  // Fill to 82 with integer index arithmetic.
  chain(loop, ind, {IA, LG, IA, LG, IA, LG, IA, IA, LG, IA,
                    LG, IA, IA, LG, IA, LG, IA, IA, LG});  // +19 = 82
  // Speculated dependences (small probability, per the <0.1% misspec rate).
  loop.add_mem_flow(lanes[0].store, lanes[2].load, 1, 0.015);
  loop.add_mem_flow(lanes[1].store, lanes[4].load, 1, 0.02);
  loop.add_mem_flow(lanes[3].store, lanes[6].load, 1, 0.015);
  loop.set_coverage(coverage);
  TMS_ASSERT(!loop.validate().has_value());
  return loop;
}

/// lucas: 102 instructions, 8 SCCs, MII 62 — the largest SCC is closed by
/// probability-1.0 flow dependences (a true loop-carried memory
/// recurrence), so MII is recurrence-bound, C_delay ends up >= MII, and
/// the loop exhibits ILP only (Table 3: II 64, D 62).
Loop make_lucas(double coverage) {
  Loop loop("lucas_sel");
  const NodeId ind = induction(loop);                          // 1 (SCC 1)
  // The big recurrence: load -> 13 fmul -> 3 fadd -> store, closed by a
  // probability-1.0 memory flow dependence of distance 1.
  // Circuit delay: 3 + 13*4 + 3*2 + 1 = 62.
  const NodeId rld = loop.add_instr(Opcode::kLoad, "rec_load");
  loop.add_reg_flow(ind, rld, 0);
  const NodeId rtail = chain(loop, rld, {FM, FM, FM, FM, FM, FM, FM, FM, FM, FM, FM, FM, FM,
                                         FA, FA, FA});
  const NodeId rst = loop.add_instr(Opcode::kStore, "rec_store");
  loop.add_reg_flow(rtail, rst, 0);
  loop.add_reg_flow(ind, rst, 0);
  loop.add_mem_flow(rst, rld, 1, 1.0);                         // +18 = 19 (SCC 2)
  // Six accumulators (SCCs 3-8).
  std::vector<NodeId> accs;
  for (int a = 0; a < 6; ++a) accs.push_back(accumulator(loop, a % 2 == 0 ? FA : FM));
  // = 25
  // A deep independent lane for LDP ~89: 3 + 20*4 + 3*2 = 89.
  const Lane deep = lane(loop, ind, {FM, FM, FM, FM, FM, FM, FM, FM, FM, FM,
                                     FM, FM, FM, FM, FM, FM, FM, FM, FM, FM, FA, FA});
  // +24 = 49
  // Parallel FP lanes to reach 102.
  const Lane l2 = lane(loop, ind, {FM, FM, FM, FA, FA, IA, LG, IA});  // +10 = 59
  const Lane l3 = lane(loop, ind, {FM, FM, FA, FA, IA, LG});          // +8 = 67
  const Lane l4 = lane(loop, ind, {FM, FM, FM, FA, IA});              // +7 = 74
  const Lane l5 = lane(loop, ind, {FM, FA, FA, IA, LG});              // +7 = 81
  const Lane l6 = lane(loop, ind, {FM, FM, FA, IA});                  // +6 = 87
  // Feeders into the recurrence and deep lane.
  loop.add_reg_flow(accs[0], rld, 1);
  loop.add_reg_flow(accs[1], deep.load, 1);
  loop.add_reg_flow(accs[2], l2.load, 1);
  // Integer bookkeeping to 102.
  chain(loop, ind, {IA, LG, IA, LG, IA, IA, LG, IA, LG, IA, IA, LG, IA, LG, IA});  // +15 = 102
  // One more small-probability speculated dependence between lanes.
  loop.add_mem_flow(l2.store, l3.load, 1, 0.02);
  (void)l4;
  (void)l5;
  (void)l6;
  loop.set_coverage(coverage);
  TMS_ASSERT(!loop.validate().has_value());
  return loop;
}

/// fma3d: 72 instructions, 3 SCCs, MII 18 (= 72/4, issue bound), LDP ~34.
Loop make_fma3d(double coverage) {
  Loop loop("fma3d_sel");
  const NodeId ind = induction(loop);                          // 1
  const NodeId acc0 = accumulator(loop, FA);
  const NodeId acc1 = accumulator(loop, FM);                   // +2 = 3
  // LDP lane: 3 + 6*4 + 3*2 + 1 + 1 = 35.
  const Lane l0 = lane(loop, ind, {FM, FM, FM, FM, FM, FM, FA, FA, FA, IA});  // +12 = 15
  const Lane l1 = lane(loop, ind, {FM, FM, FA, FA, IA, LG});                   // +9 = 24
  const Lane l2 = lane(loop, ind, {FM, FM, FM, FA, IA});                       // +8 = 32
  const Lane l3 = lane(loop, ind, {FM, FA, FS, IA, LG});                       // +8 = 40
  const Lane l4 = lane(loop, ind, {FM, FM, FA, IA});                           // +7 = 47
  const Lane l5 = lane(loop, ind, {FA, FA, FM, IA, LG});                       // +8 = 55
  const Lane l6 = lane(loop, ind, {FM, FS, IA});                               // +6 = 61
  // Feeders.
  loop.add_reg_flow(acc0, l0.load, 1);
  loop.add_reg_flow(acc1, l2.load, 1);
  loop.add_reg_flow(acc0, l4.load, 1);
  // Integer bookkeeping to 72.
  chain(loop, ind, {IA, LG, IA, LG, IA, IA, LG, IA, LG, IA, IA,
                    LG, IA, LG, IA, IA, LG});  // +17 = 72
  // Speculated dependences; synchronising them costs ~21% (Section 5.2).
  loop.add_mem_flow(l0.store, l1.load, 1, 0.02);
  loop.add_mem_flow(l2.store, l3.load, 1, 0.025);
  loop.add_mem_flow(l4.store, l6.load, 1, 0.015);
  (void)l5;
  loop.set_coverage(coverage);
  TMS_ASSERT(!loop.validate().has_value());
  return loop;
}

}  // namespace

std::vector<SelectedLoop> doacross_selected_loops() {
  std::vector<SelectedLoop> out;
  // art's four loops share 21.6% coverage.
  for (int v = 0; v < 4; ++v) {
    out.push_back({"art", make_art(v, 0.216 / 4.0)});
  }
  out.push_back({"equake", make_equake(0.585)});
  out.push_back({"lucas", make_lucas(0.334)});
  out.push_back({"fma3d", make_fma3d(0.143)});
  return out;
}

}  // namespace tms::workloads
