#include "workloads/builder.hpp"

#include <algorithm>
#include <vector>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"

namespace tms::workloads {
namespace {

using ir::DepKind;
using ir::DepType;
using ir::Loop;
using ir::NodeId;
using ir::Opcode;
using support::Rng;

/// Latency of the compute opcodes we draw from (default machine).
int op_latency(Opcode op) {
  switch (op) {
    case Opcode::kFMul: return 4;
    case Opcode::kLoad: return 3;
    case Opcode::kFAdd:
    case Opcode::kFSub:
    case Opcode::kFCvt: return 2;
    default: return 1;
  }
}

Opcode pick_compute_op(Rng& rng, double fp_fraction) {
  if (rng.chance(fp_fraction)) {
    const double r = rng.uniform();
    if (r < 0.35) return Opcode::kFAdd;
    if (r < 0.80) return Opcode::kFMul;
    if (r < 0.93) return Opcode::kFSub;
    return Opcode::kFCvt;
  }
  const double r = rng.uniform();
  if (r < 0.5) return Opcode::kIAdd;
  if (r < 0.7) return Opcode::kShift;
  if (r < 0.9) return Opcode::kLogic;
  return Opcode::kISub;
}

/// Fills a recurrence circuit with ops whose latencies sum close to
/// `delay` (sum over the circuit of flow-edge delays = producer
/// latencies).
std::vector<Opcode> circuit_ops(Rng& rng, int len, int delay) {
  TMS_ASSERT(len >= 2);
  std::vector<Opcode> ops;
  int remaining = std::max(delay, len);  // every op contributes >= 1
  for (int i = 0; i < len; ++i) {
    const int slots_left = len - i - 1;
    const int budget = remaining - slots_left;  // leave >= 1 per later op
    Opcode op = Opcode::kIAdd;
    if (budget >= 4 && rng.chance(0.7)) {
      op = Opcode::kFMul;
    } else if (budget >= 2 && rng.chance(0.7)) {
      op = Opcode::kFAdd;
    }
    remaining -= op_latency(op);
    ops.push_back(op);
  }
  return ops;
}

bool reaches(const Loop& loop, NodeId from, NodeId to) {
  std::vector<bool> seen(static_cast<std::size_t>(loop.num_instrs()), false);
  std::vector<NodeId> stack{from};
  seen[static_cast<std::size_t>(from)] = true;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    if (v == to) return true;
    for (const std::size_t ei : loop.out_edges(v)) {
      const NodeId w = loop.dep(ei).dst;
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        stack.push_back(w);
      }
    }
  }
  return false;
}

}  // namespace

ir::Loop build_loop(const LoopShape& shape) {
  tms::obs::counters().workloads_loops_built.add(1);
  TMS_TRACE_SPAN(span, "workloads", "build_loop");
  TMS_TRACE_SPAN_ARG(span, tms::obs::targ("name", tms::obs::intern(shape.name)));
  Rng rng(shape.seed);
  Loop loop(shape.name);
  // Instruction count is capped by target_instrs plus the trailing
  // store/sink of the last chain; edges run roughly 2x the instructions
  // (chain flow + addresses + feeders). Over-reserving slightly is fine.
  loop.reserve(shape.target_instrs + 2,
               2 * static_cast<std::size_t>(std::max(0, shape.target_instrs)) + 16);

  // Induction variable: the address generator of every memory stream.
  const NodeId ind = loop.add_instr(Opcode::kIAdd, "ind");
  loop.add_reg_flow(ind, ind, 1);
  loop.mark_live_in(ind);

  // Main recurrence circuit.
  std::vector<NodeId> circuit;
  if (shape.rec_circuit_delay > 0) {
    const int len = std::max(2, shape.rec_circuit_len);
    const std::vector<Opcode> ops = circuit_ops(rng, len, shape.rec_circuit_delay);
    for (const Opcode op : ops) circuit.push_back(loop.add_instr(op));
    for (std::size_t i = 0; i + 1 < circuit.size(); ++i) {
      loop.add_reg_flow(circuit[i], circuit[i + 1], 0);
    }
    loop.add_reg_flow(circuit.back(), circuit.front(), 1);
    loop.mark_live_in(circuit.front());
  }

  // Pure accumulators: one-node SCCs, never consuming other loop values,
  // so they can safely feed cross-iteration "feeder" dependences.
  std::vector<NodeId> accs;
  for (int a = 0; a < shape.accumulators; ++a) {
    const Opcode op = rng.chance(0.5) ? Opcode::kFAdd : Opcode::kFMul;
    const NodeId acc = loop.add_instr(op, "acc" + std::to_string(a));
    loop.add_reg_flow(acc, acc, 1);
    loop.mark_live_in(acc);
    accs.push_back(acc);
  }

  // Dataflow chains: load -> compute* -> (store | sink), until the budget
  // is met. Chain heads (the loads) are candidate feeder targets; stores
  // and loads are candidate memory-dependence endpoints.
  std::vector<NodeId> loads;
  std::vector<NodeId> stores;
  std::vector<NodeId> chain_heads;
  bool store_turn = true;
  while (loop.num_instrs() < shape.target_instrs) {
    const NodeId ld = loop.add_instr(Opcode::kLoad);
    loop.add_reg_flow(ind, ld, 0);  // address
    loads.push_back(ld);
    chain_heads.push_back(ld);
    NodeId cur = ld;
    const int chain_len = rng.uniform_int(3, 7);
    for (int c = 0; c < chain_len && loop.num_instrs() < shape.target_instrs; ++c) {
      const NodeId nxt = loop.add_instr(pick_compute_op(rng, shape.fp_fraction));
      loop.add_reg_flow(cur, nxt, 0);
      // Occasionally consume a circuit value too (makes the SCC feed the
      // chain, like real loop bodies).
      if (!circuit.empty() && rng.chance(0.25)) {
        loop.add_reg_flow(rng.pick(circuit), nxt, 0);
      }
      cur = nxt;
    }
    if (store_turn) {
      const NodeId st = loop.add_instr(Opcode::kStore);
      loop.add_reg_flow(cur, st, 0);   // value
      loop.add_reg_flow(ind, st, 0);   // address
      stores.push_back(st);
    } else if (!circuit.empty() && rng.chance(0.5)) {
      // Chain result folds into the next iteration via the circuit head:
      // distance-1 edge is safe only if the head cannot reach `cur`...
      // it can (circuit feeds chains), so fold into this iteration's
      // circuit tail input instead of creating a cycle: skip.
    }
    store_turn = !store_turn;
  }

  // Feeders: accumulator -> early node, distance 1 (the SMS pathology).
  // Accumulators have no in-edges besides themselves, so no cycle arises.
  std::vector<NodeId> targets;
  for (const NodeId v : circuit) targets.push_back(v);
  for (const NodeId v : chain_heads) targets.push_back(v);
  int feeders_placed = 0;
  for (int f = 0; f < shape.feeders && !accs.empty() && !targets.empty(); ++f) {
    const NodeId src = accs[static_cast<std::size_t>(f % static_cast<int>(accs.size()))];
    const NodeId dst = rng.pick(targets);
    if (reaches(loop, dst, src)) continue;  // paranoia; cannot happen for pure accs
    loop.add_reg_flow(src, dst, 1);
    ++feeders_placed;
  }
  (void)feeders_placed;

  // Speculated memory dependences: store -> load, distance 1, annotated
  // probability; only pairs that do not close a dependence cycle (in-SCC
  // memory dependences are built explicitly by the DOACROSS workloads).
  int placed = 0;
  for (int attempt = 0; attempt < shape.mem_deps * 8 && placed < shape.mem_deps; ++attempt) {
    if (stores.empty() || loads.empty()) break;
    const NodeId s = rng.pick(stores);
    const NodeId l = rng.pick(loads);
    if (reaches(loop, l, s)) continue;
    bool duplicate = false;
    for (const std::size_t ei : loop.out_edges(s)) {
      const ir::DepEdge& e = loop.dep(ei);
      if (e.dst == l && e.kind == DepKind::kMemory) duplicate = true;
    }
    if (duplicate) continue;
    loop.add_mem_flow(s, l, 1, rng.uniform(shape.mem_prob_lo, shape.mem_prob_hi));
    ++placed;
  }

  TMS_ASSERT_MSG(!loop.validate().has_value(), "builder produced a malformed loop");
  return loop;
}

}  // namespace tms::workloads
