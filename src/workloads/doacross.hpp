// The seven selected DOACROSS loops of Section 5.2 / Table 3.
//
// These are hand-constructed to match the published statistics:
//
//   bench   #loops  LC     #inst  #SCC  MII  LDP
//   art        4    21.6%    27     3    11   29   (two unrolled 4x)
//   equake     1    58.5%    82     3    20   26
//   lucas      1    33.4%   102     8    62   89
//   fma3d      1    14.3%    72     3    18   34
//
// art's loops are recurrence-bound; equake/fma3d are resource-bound with
// good ILP and TLP; lucas's largest SCC is closed by probability-1.0
// (flow) dependences, so its MII is recurrence-constrained and C_delay
// ends up larger than its MII (ILP only, no TLP).
#pragma once

#include <vector>

#include "ir/loop.hpp"

namespace tms::workloads {

struct SelectedLoop {
  std::string benchmark;
  ir::Loop loop;
};

/// All seven loops, in Table 3 order (art x4, equake, lucas, fma3d).
/// Each loop's coverage() is its share of whole-program time.
std::vector<SelectedLoop> doacross_selected_loops();

}  // namespace tms::workloads
