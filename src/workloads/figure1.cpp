#include "workloads/figure1.hpp"

namespace tms::workloads {

using ir::DepKind;
using ir::DepType;
using ir::Opcode;

ir::Loop figure1_loop(double mem_probability) {
  ir::Loop loop("figure1");
  const ir::NodeId n0 = loop.add_instr(Opcode::kLoad, "n0");
  const ir::NodeId n1 = loop.add_instr(Opcode::kIAdd, "n1");
  const ir::NodeId n2 = loop.add_instr(Opcode::kLoad, "n2");
  const ir::NodeId n3 = loop.add_instr(Opcode::kLoad, "n3");
  const ir::NodeId n4 = loop.add_instr(Opcode::kIAdd, "n4");
  const ir::NodeId n5 = loop.add_instr(Opcode::kStore, "n5");
  const ir::NodeId n6 = loop.add_instr(Opcode::kFMul, "n6");
  const ir::NodeId n7 = loop.add_instr(Opcode::kFAdd, "n7");
  const ir::NodeId n8 = loop.add_instr(Opcode::kIAdd, "n8");

  // Recurrence circuit n0 -> n1 -> n2 -> n4 -> n5 -(mem, d=1)-> n0.
  loop.add_reg_flow(n0, n1, 0);
  loop.add_reg_flow(n1, n2, 0);
  loop.add_reg_flow(n2, n4, 0);
  loop.add_reg_flow(n4, n5, 0);
  loop.add_mem_flow(n5, n0, 1, mem_probability);
  loop.add_mem_flow(n5, n2, 1, mem_probability);
  loop.add_mem_flow(n5, n3, 1, mem_probability);

  // Cross-iteration register feeds into the recurrence/consumers.
  loop.add_reg_flow(n6, n0, 1);  // the pathological dependence of Fig. 2
  loop.add_reg_flow(n6, n6, 1);  // multiply accumulator
  loop.add_reg_flow(n7, n3, 1);
  loop.add_reg_flow(n7, n7, 1);  // add accumulator
  loop.add_reg_flow(n8, n8, 1);  // induction variable
  loop.add_reg_flow(n8, n5, 1);  // store address from last iteration's induction

  loop.mark_live_in(n6);
  loop.mark_live_in(n7);
  loop.mark_live_in(n8);
  loop.set_coverage(0.5);
  return loop;
}

machine::MachineModel figure1_machine() {
  machine::MachineModel m;
  // Non-pipelined 4-cycle multiply: a single fmul then yields ResII = 4,
  // as the paper states for the example.
  m.set_timing(Opcode::kFMul, {4, 4});
  // Two memory ports: the recurrence circuit's latency sum exactly equals
  // the RecII of 8, which pins n5's kernel row onto n0's; a second port
  // lets both issue in the same row so the example schedules at II = 8
  // like the paper's illustration.
  m.set_fu_count(ir::FuClass::kMem, 2);
  return m;
}

}  // namespace tms::workloads
