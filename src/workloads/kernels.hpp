// Classic loop kernels, hand-translated to the loop IR.
//
// The synthetic SPECfp2000 suite reproduces the paper's *statistics*;
// these kernels complement it with recognisable, human-auditable loops
// in the spirit of the Livermore loops — each is the DDG a compiler
// front-end would emit for the stated source, with dependence structure
// documented inline. They exercise the full spectrum TMS cares about:
// DOALL, reductions, first-order recurrences, DOACROSS memory
// recurrences, and gather/scatter with profiled alias rates.
#pragma once

#include <string>
#include <vector>

#include "ir/loop.hpp"

namespace tms::workloads {

struct Kernel {
  std::string description;  ///< the source loop it models
  ir::Loop loop;
};

/// The full collection, in a fixed order:
///   hydro        x[i] = q + y[i]*(r*z[i+10] + t*z[i+11])        (DOALL)
///   inner_prod   q += z[i]*x[i]                                 (reduction)
///   tridiag      x[i] = z[i]*(y[i] - x[i-1])                    (1st-order recurrence)
///   state_frag   x[i] = x[i] + b[k]*y[i] (running state update)
///   first_sum    x[i] = x[i-1] + y[i]                           (prefix sum)
///   fir          y[i] = sum_k c[k]*x[i-k], taps unrolled        (sliding window)
///   scatter      a[idx[i]] = b[i] with profiled alias rate      (speculative)
///   adi_sweep    simplified ADI forward sweep                   (coupled recurrences)
std::vector<Kernel> classic_kernels();

}  // namespace tms::workloads
