// The paper's motivating example (Figure 1): a 9-node DDG whose SMS
// schedule serialises consecutive threads through an 11-cycle sync delay
// while TMS reduces it to ~5 cycles.
//
// The paper does not publish opcode choices, so we reconstruct a
// consistent instance: the recurrence circuit (n0,n1,n2,n4,n5) closed by
// the speculated memory dependence n5->n0, the independent accumulators
// n6 (non-pipelined multiply, giving ResII = 4 on the example machine)
// and n7, the induction variable n8, and the cross-iteration register
// feeds n6->n0 and n7->n3 that SMS schedules pathologically tight.
// On the example machine this reproduces the paper's numbers exactly:
// ResII = 4, RecII = 8 (the speculated n5->n0 closes the circuit with
// zero scheduling delay), MII = II = 8.
#pragma once

#include "ir/loop.hpp"
#include "machine/machine.hpp"

namespace tms::workloads {

/// The Figure 1 DDG. Memory dependences n5->n0, n5->n2, n5->n3 carry the
/// given probability (the paper assumes "negligibly small").
ir::Loop figure1_loop(double mem_probability = 0.02);

/// The example's machine: like the default but with a non-pipelined
/// 4-cycle multiplier, so that ResII = 4 as in the paper.
machine::MachineModel figure1_machine();

}  // namespace tms::workloads
