// Parameterised synthetic-loop construction.
//
// Loops are assembled from the structural ingredients that determine how
// SMS and TMS behave:
//   - an induction variable (iadd self-loop, distance 1),
//   - zero or more recurrence circuits whose latency sum sets RecII,
//   - accumulator self-loops (one-node SCCs),
//   - load -> compute-chain -> store dataflow (sets ResII and LDP),
//   - cross-iteration register "feeders": side values consumed by the
//     next iteration's early nodes — the dependences SMS schedules
//     pathologically tight (Figure 2's n6 -> n0),
//   - speculated memory dependences store -> load with an annotated
//     probability.
// All randomness is drawn from one seed, so a LoopShape is a reproducible
// workload identifier.
#pragma once

#include <cstdint>

#include "ir/loop.hpp"
#include "support/rng.hpp"

namespace tms::workloads {

struct LoopShape {
  std::string name;
  int target_instrs = 24;
  /// Latency sum of the main recurrence circuit; 0 = no main recurrence
  /// (resource-bound loop). The circuit always has distance 1.
  int rec_circuit_delay = 0;
  /// Number of instructions in the main recurrence circuit (>= 2 when
  /// rec_circuit_delay > 0).
  int rec_circuit_len = 4;
  /// Accumulator self-loops (each is a one-node SCC).
  int accumulators = 1;
  /// Cross-iteration register feeders into early (SCC/head) nodes.
  int feeders = 1;
  /// Speculated memory dependences (store -> load, distance 1).
  int mem_deps = 1;
  double mem_prob_lo = 0.01;
  double mem_prob_hi = 0.05;
  /// Fraction of compute ops that are FP (vs integer ALU).
  double fp_fraction = 0.6;
  std::uint64_t seed = 1;
};

/// Builds one loop from a shape. Post-condition: Loop::validate() passes.
ir::Loop build_loop(const LoopShape& shape);

}  // namespace tms::workloads
