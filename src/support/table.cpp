#include "support/table.hpp"

#include <iomanip>
#include <sstream>

#include "support/assert.hpp"

namespace tms::support {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  TMS_ASSERT(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  TMS_ASSERT_MSG(row.size() == header_.size(), "row arity must match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::pct(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v << "%";
  return os.str();
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << "\n";
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace tms::support
