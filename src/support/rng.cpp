#include "support/rng.hpp"

// Header-only; this TU pins the library so every module links the same
// instantiation settings.
namespace tms::support {}
