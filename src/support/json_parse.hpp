// Minimal strict JSON reader — the counterpart of JsonWriter.
//
// Until the live-telemetry work nothing in the tree consumed JSON; now
// tmstop and `loadgen --expect-stats` parse the STATS snapshot the
// daemon emits, so a reader exists. It is deliberately small and
// strict: the whole input must be one JSON value (trailing garbage is
// an error), duplicate object keys are an error, nesting depth is
// bounded, and numbers are kept as doubles (every value the registry
// exports fits a double exactly up to 2^53, far beyond any counter this
// service accumulates in practice). Object members preserve insertion
// order, so a parse of JsonWriter output observes the writer's
// deterministic ordering.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace tms::support {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return b_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const { return members_; }

  /// Object member lookup by key; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// `find` chained through a dotted path ("observability.counters");
  /// nullptr as soon as a segment is absent.
  const JsonValue* find_path(std::string_view dotted) const;

  static JsonValue make_null() { return JsonValue(Kind::kNull); }
  static JsonValue make_bool(bool v) {
    JsonValue j(Kind::kBool);
    j.b_ = v;
    return j;
  }
  static JsonValue make_number(double v) {
    JsonValue j(Kind::kNumber);
    j.num_ = v;
    return j;
  }
  static JsonValue make_string(std::string v) {
    JsonValue j(Kind::kString);
    j.str_ = std::move(v);
    return j;
  }
  static JsonValue make_array(std::vector<JsonValue> v) {
    JsonValue j(Kind::kArray);
    j.items_ = std::move(v);
    return j;
  }
  static JsonValue make_object(std::vector<std::pair<std::string, JsonValue>> v) {
    JsonValue j(Kind::kObject);
    j.members_ = std::move(v);
    return j;
  }

 private:
  explicit JsonValue(Kind k) : kind_(k) {}

  Kind kind_ = Kind::kNull;
  bool b_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses `text` as exactly one JSON value. Returns the value, or an
/// error message ("offset N: ...") on malformed input.
std::variant<JsonValue, std::string> parse_json(std::string_view text);

}  // namespace tms::support
