// Lightweight always-on assertion macros.
//
// Scheduler and simulator invariants are cheap relative to the work they
// guard, so these stay enabled in release builds. Violations indicate a
// logic bug, never a user-input problem, hence abort() rather than an
// exception.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace tms::support {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "TMS assertion failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace tms::support

#define TMS_ASSERT(expr)                                                      \
  do {                                                                        \
    if (!(expr)) ::tms::support::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (false)

#define TMS_ASSERT_MSG(expr, msg)                                             \
  do {                                                                        \
    if (!(expr)) ::tms::support::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
  } while (false)

#define TMS_UNREACHABLE(msg) ::tms::support::assert_fail("unreachable", __FILE__, __LINE__, (msg))
