#include "support/stats.hpp"

#include <sstream>

#include "support/assert.hpp"

namespace tms::support {

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ +
         delta * delta * static_cast<double>(n_) * static_cast<double>(other.n_) / total;
  mean_ = (mean_ * static_cast<double>(n_) + other.mean_ * static_cast<double>(other.n_)) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

Histogram::Histogram(double lo, double hi, std::size_t nbuckets)
    : lo_(lo), hi_(hi), buckets_(nbuckets, 0) {
  TMS_ASSERT(hi > lo);
  TMS_ASSERT(nbuckets > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(buckets_.size()));
  if (idx >= buckets_.size()) idx = buckets_.size() - 1;
  ++buckets_[idx];
}

double Histogram::quantile(double p) const {
  TMS_ASSERT(p >= 0.0 && p <= 1.0);
  const std::uint64_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return lo_;
  const auto target = static_cast<std::uint64_t>(p * static_cast<double>(in_range));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) {
      return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) / static_cast<double>(buckets_.size());
    }
  }
  return hi_;
}

std::string Histogram::ascii_render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto b : buckets_) peak = std::max(peak, b);
  std::ostringstream os;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double edge = lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(buckets_.size());
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(buckets_[i]) / static_cast<double>(peak) * static_cast<double>(width));
    os << edge << "\t|" << std::string(bar, '#') << " " << buckets_[i] << "\n";
  }
  return os.str();
}

}  // namespace tms::support
