#include "support/json.hpp"

#include <cmath>
#include <cstdio>

#include "support/assert.hpp"

namespace tms::support {

void JsonWriter::comma_if_needed() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted its comma
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  TMS_ASSERT(!has_element_.empty());
  has_element_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  TMS_ASSERT(!has_element_.empty());
  has_element_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  TMS_ASSERT(!has_element_.empty());
  if (has_element_.back()) out_ += ',';
  has_element_.back() = true;
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::raw_value(std::string_view json) {
  comma_if_needed();
  out_ += json;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_if_needed();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_if_needed();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value_null() {
  comma_if_needed();
  out_ += "null";
  return *this;
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace tms::support
