// Minimal streaming JSON writer.
//
// The batch driver and the bench binaries emit machine-readable reports
// (BatchReport JSON, BENCH_*.json trajectory files); the matching
// strict reader lives in support/json_parse.hpp. Output is compact (no whitespace)
// and fully deterministic: the same sequence of calls yields the same
// bytes, which is what lets driver_test assert byte-identical reports
// across thread counts. Doubles are formatted with "%.10g", so any value
// that survives a round-trip through the pipeline deterministically
// formats the same way on every run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tms::support {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the key of the next member; must be inside an object.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(const std::string& v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value_null();

  /// Splices `json` — which must already be one serialised JSON value —
  /// in as the next value, verbatim. Used to embed a snapshot another
  /// process emitted (e.g. a backend's STATS payload inside the
  /// router's cluster-stats-v1) without a parse/re-serialise round trip.
  JsonWriter& raw_value(std::string_view json);

  /// Convenience: key + value in one call.
  template <typename T>
  JsonWriter& member(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  const std::string& str() const { return out_; }

  static std::string escape(std::string_view s);

 private:
  void comma_if_needed();

  std::string out_;
  /// One entry per open container: true once the first element has been
  /// written (so the next element needs a leading comma).
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

}  // namespace tms::support
