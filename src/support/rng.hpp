// Deterministic pseudo-random number generation.
//
// All synthetic workloads and property tests must be reproducible from a
// single 64-bit seed, so we avoid std::mt19937 (whose seeding and
// distribution implementations vary across standard libraries) and ship a
// self-contained xoshiro256** generator with SplitMix64 seeding. The
// distribution helpers below are exact-specified, so a given seed produces
// the same workload on every platform.
#pragma once

#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace tms::support {

/// SplitMix64: used to expand a single seed into generator state and to
/// derive independent child seeds (e.g. one per synthetic loop).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse generator. Small, fast, and with a period
/// (2^256-1) far beyond anything a workload sweep can exhaust.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi], inclusive. Uses Lemire-style rejection to
  /// avoid modulo bias.
  int uniform_int(int lo, int hi) {
    TMS_ASSERT(lo <= hi);
    const std::uint64_t range = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<int>(bounded(range));
  }

  std::uint64_t bounded(std::uint64_t bound) {
    TMS_ASSERT(bound > 0);
    // Rejection sampling on the top bits.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Derive an independent child seed (for per-loop sub-generators).
  std::uint64_t fork_seed() { return next_u64() ^ 0xa5a5a5a55a5a5a5aULL; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(bounded(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    TMS_ASSERT(!v.empty());
    return v[static_cast<std::size_t>(bounded(v.size()))];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t s_[4];
};

}  // namespace tms::support
