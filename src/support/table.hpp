// Plain-text table rendering for the benchmark harness.
//
// Every bench binary reproduces one of the paper's tables or figures as an
// aligned text table on stdout; this helper keeps the formatting uniform.
#pragma once

#include <string>
#include <vector>

namespace tms::support {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 1);
  static std::string pct(double v, int precision = 1);

  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tms::support
