#include "support/json_parse.hpp"

#include <cctype>
#include <cstdlib>

namespace tms::support {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue* JsonValue::find_path(std::string_view dotted) const {
  const JsonValue* cur = this;
  while (cur != nullptr && !dotted.empty()) {
    const std::size_t dot = dotted.find('.');
    const std::string_view seg = dotted.substr(0, dot);
    cur = cur->find(seg);
    if (dot == std::string_view::npos) break;
    dotted.remove_prefix(dot + 1);
  }
  return cur;
}

namespace {

constexpr int kMaxDepth = 64;

/// Recursive-descent parser over the input; fails by setting `error`
/// once and refusing further work.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::variant<JsonValue, std::string> run() {
    JsonValue v = parse_value(0);
    if (!error_.empty()) return error_;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing garbage after value");
      return error_;
    }
    return v;
  }

 private:
  void fail(const std::string& what) {
    if (error_.empty()) error_ = "offset " + std::to_string(pos_) + ": " + what;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return JsonValue::make_null();
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return JsonValue::make_null();
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') return JsonValue::make_string(parse_string());
    if (c == 't') {
      if (!consume_word("true")) fail("bad literal");
      return JsonValue::make_bool(true);
    }
    if (c == 'f') {
      if (!consume_word("false")) fail("bad literal");
      return JsonValue::make_bool(false);
    }
    if (c == 'n') {
      if (!consume_word("null")) fail("bad literal");
      return JsonValue::make_null();
    }
    return parse_number();
  }

  JsonValue parse_object(int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (consume('}')) return JsonValue::make_object(std::move(members));
    while (error_.empty()) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected object key");
        break;
      }
      std::string key = parse_string();
      if (!error_.empty()) break;
      for (const auto& [k, v] : members) {
        if (k == key) {
          fail("duplicate object key '" + key + "'");
          break;
        }
      }
      if (!error_.empty()) break;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':'");
        break;
      }
      members.emplace_back(std::move(key), parse_value(depth + 1));
      if (!error_.empty()) break;
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return JsonValue::make_object(std::move(members));
      fail("expected ',' or '}'");
      break;
    }
    return JsonValue::make_null();
  }

  JsonValue parse_array(int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    skip_ws();
    if (consume(']')) return JsonValue::make_array(std::move(items));
    while (error_.empty()) {
      items.push_back(parse_value(depth + 1));
      if (!error_.empty()) break;
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return JsonValue::make_array(std::move(items));
      fail("expected ',' or ']'");
      break;
    }
    return JsonValue::make_null();
  }

  std::string parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return out;
          }
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else {
              fail("bad \\u escape");
              return out;
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // combined — JsonWriter never emits them).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape character");
          return out;
      }
    }
    fail("unterminated string");
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    if (!consume('0')) {
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad number");
        return JsonValue::make_null();
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (consume('.')) {
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad number");
        return JsonValue::make_null();
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad number");
        return JsonValue::make_null();
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    const std::string buf(text_.substr(start, pos_ - start));
    return JsonValue::make_number(std::strtod(buf.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::variant<JsonValue, std::string> parse_json(std::string_view text) {
  return Parser(text).run();
}

}  // namespace tms::support
