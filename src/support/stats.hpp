// Streaming statistics accumulators used by the evaluation harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace tms::support {

/// Welford-style running mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  void merge(const RunningStat& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram for latency/stall distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t nbuckets);

  void add(double x);
  std::uint64_t bucket_count(std::size_t i) const { return buckets_.at(i); }
  std::size_t nbuckets() const { return buckets_.size(); }
  std::uint64_t total() const { return total_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

  /// p in [0,1]; returns the upper edge of the bucket containing the
  /// p-quantile of recorded (in-range) samples.
  double quantile(double p) const;

  std::string ascii_render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace tms::support
