# Empty dependencies file for figure2_render.
# This may be replaced when dependencies are built.
