file(REMOVE_RECURSE
  "CMakeFiles/figure2_render.dir/figure2_render.cpp.o"
  "CMakeFiles/figure2_render.dir/figure2_render.cpp.o.d"
  "figure2_render"
  "figure2_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure2_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
