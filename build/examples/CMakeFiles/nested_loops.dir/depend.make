# Empty dependencies file for nested_loops.
# This may be replaced when dependencies are built.
