file(REMOVE_RECURSE
  "CMakeFiles/explore_machine.dir/explore_machine.cpp.o"
  "CMakeFiles/explore_machine.dir/explore_machine.cpp.o.d"
  "explore_machine"
  "explore_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
