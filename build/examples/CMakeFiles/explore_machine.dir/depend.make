# Empty dependencies file for explore_machine.
# This may be replaced when dependencies are built.
