file(REMOVE_RECURSE
  "CMakeFiles/doacross_pipeline.dir/doacross_pipeline.cpp.o"
  "CMakeFiles/doacross_pipeline.dir/doacross_pipeline.cpp.o.d"
  "doacross_pipeline"
  "doacross_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doacross_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
