# Empty dependencies file for doacross_pipeline.
# This may be replaced when dependencies are built.
