file(REMOVE_RECURSE
  "CMakeFiles/tmsc.dir/tmsc.cpp.o"
  "CMakeFiles/tmsc.dir/tmsc.cpp.o.d"
  "tmsc"
  "tmsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
