# Empty dependencies file for tmsc.
# This may be replaced when dependencies are built.
