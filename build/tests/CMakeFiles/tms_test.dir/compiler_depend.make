# Empty compiler generated dependencies file for tms_test.
# This may be replaced when dependencies are built.
