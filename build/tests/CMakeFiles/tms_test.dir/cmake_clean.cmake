file(REMOVE_RECURSE
  "CMakeFiles/tms_test.dir/tms_test.cpp.o"
  "CMakeFiles/tms_test.dir/tms_test.cpp.o.d"
  "tms_test"
  "tms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
