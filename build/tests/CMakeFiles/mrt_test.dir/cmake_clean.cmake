file(REMOVE_RECURSE
  "CMakeFiles/mrt_test.dir/mrt_test.cpp.o"
  "CMakeFiles/mrt_test.dir/mrt_test.cpp.o.d"
  "mrt_test"
  "mrt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
