# Empty compiler generated dependencies file for regpressure_profile_test.
# This may be replaced when dependencies are built.
