file(REMOVE_RECURSE
  "CMakeFiles/regpressure_profile_test.dir/regpressure_profile_test.cpp.o"
  "CMakeFiles/regpressure_profile_test.dir/regpressure_profile_test.cpp.o.d"
  "regpressure_profile_test"
  "regpressure_profile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regpressure_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
