# Empty dependencies file for postpass_test.
# This may be replaced when dependencies are built.
