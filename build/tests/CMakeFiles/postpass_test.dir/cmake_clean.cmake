file(REMOVE_RECURSE
  "CMakeFiles/postpass_test.dir/postpass_test.cpp.o"
  "CMakeFiles/postpass_test.dir/postpass_test.cpp.o.d"
  "postpass_test"
  "postpass_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/postpass_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
