# Empty dependencies file for sms_test.
# This may be replaced when dependencies are built.
