file(REMOVE_RECURSE
  "CMakeFiles/order_window_test.dir/order_window_test.cpp.o"
  "CMakeFiles/order_window_test.dir/order_window_test.cpp.o.d"
  "order_window_test"
  "order_window_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
