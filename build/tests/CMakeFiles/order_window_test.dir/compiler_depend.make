# Empty compiler generated dependencies file for order_window_test.
# This may be replaced when dependencies are built.
