file(REMOVE_RECURSE
  "CMakeFiles/single_core_test.dir/single_core_test.cpp.o"
  "CMakeFiles/single_core_test.dir/single_core_test.cpp.o.d"
  "single_core_test"
  "single_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
