file(REMOVE_RECURSE
  "CMakeFiles/tms_sched.dir/ims.cpp.o"
  "CMakeFiles/tms_sched.dir/ims.cpp.o.d"
  "CMakeFiles/tms_sched.dir/mii.cpp.o"
  "CMakeFiles/tms_sched.dir/mii.cpp.o.d"
  "CMakeFiles/tms_sched.dir/mrt.cpp.o"
  "CMakeFiles/tms_sched.dir/mrt.cpp.o.d"
  "CMakeFiles/tms_sched.dir/order.cpp.o"
  "CMakeFiles/tms_sched.dir/order.cpp.o.d"
  "CMakeFiles/tms_sched.dir/postpass.cpp.o"
  "CMakeFiles/tms_sched.dir/postpass.cpp.o.d"
  "CMakeFiles/tms_sched.dir/regpressure.cpp.o"
  "CMakeFiles/tms_sched.dir/regpressure.cpp.o.d"
  "CMakeFiles/tms_sched.dir/schedule.cpp.o"
  "CMakeFiles/tms_sched.dir/schedule.cpp.o.d"
  "CMakeFiles/tms_sched.dir/sms.cpp.o"
  "CMakeFiles/tms_sched.dir/sms.cpp.o.d"
  "CMakeFiles/tms_sched.dir/tms.cpp.o"
  "CMakeFiles/tms_sched.dir/tms.cpp.o.d"
  "CMakeFiles/tms_sched.dir/window.cpp.o"
  "CMakeFiles/tms_sched.dir/window.cpp.o.d"
  "libtms_sched.a"
  "libtms_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tms_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
