# Empty dependencies file for tms_sched.
# This may be replaced when dependencies are built.
