file(REMOVE_RECURSE
  "libtms_sched.a"
)
