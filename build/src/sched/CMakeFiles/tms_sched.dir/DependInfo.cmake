
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/ims.cpp" "src/sched/CMakeFiles/tms_sched.dir/ims.cpp.o" "gcc" "src/sched/CMakeFiles/tms_sched.dir/ims.cpp.o.d"
  "/root/repo/src/sched/mii.cpp" "src/sched/CMakeFiles/tms_sched.dir/mii.cpp.o" "gcc" "src/sched/CMakeFiles/tms_sched.dir/mii.cpp.o.d"
  "/root/repo/src/sched/mrt.cpp" "src/sched/CMakeFiles/tms_sched.dir/mrt.cpp.o" "gcc" "src/sched/CMakeFiles/tms_sched.dir/mrt.cpp.o.d"
  "/root/repo/src/sched/order.cpp" "src/sched/CMakeFiles/tms_sched.dir/order.cpp.o" "gcc" "src/sched/CMakeFiles/tms_sched.dir/order.cpp.o.d"
  "/root/repo/src/sched/postpass.cpp" "src/sched/CMakeFiles/tms_sched.dir/postpass.cpp.o" "gcc" "src/sched/CMakeFiles/tms_sched.dir/postpass.cpp.o.d"
  "/root/repo/src/sched/regpressure.cpp" "src/sched/CMakeFiles/tms_sched.dir/regpressure.cpp.o" "gcc" "src/sched/CMakeFiles/tms_sched.dir/regpressure.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/tms_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/tms_sched.dir/schedule.cpp.o.d"
  "/root/repo/src/sched/sms.cpp" "src/sched/CMakeFiles/tms_sched.dir/sms.cpp.o" "gcc" "src/sched/CMakeFiles/tms_sched.dir/sms.cpp.o.d"
  "/root/repo/src/sched/tms.cpp" "src/sched/CMakeFiles/tms_sched.dir/tms.cpp.o" "gcc" "src/sched/CMakeFiles/tms_sched.dir/tms.cpp.o.d"
  "/root/repo/src/sched/window.cpp" "src/sched/CMakeFiles/tms_sched.dir/window.cpp.o" "gcc" "src/sched/CMakeFiles/tms_sched.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/tms_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/tms_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/tms_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tms_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
