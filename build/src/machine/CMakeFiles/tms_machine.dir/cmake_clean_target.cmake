file(REMOVE_RECURSE
  "libtms_machine.a"
)
