# Empty compiler generated dependencies file for tms_machine.
# This may be replaced when dependencies are built.
