file(REMOVE_RECURSE
  "CMakeFiles/tms_machine.dir/machine.cpp.o"
  "CMakeFiles/tms_machine.dir/machine.cpp.o.d"
  "libtms_machine.a"
  "libtms_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tms_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
