file(REMOVE_RECURSE
  "CMakeFiles/tms_nest.dir/loop_nest.cpp.o"
  "CMakeFiles/tms_nest.dir/loop_nest.cpp.o.d"
  "libtms_nest.a"
  "libtms_nest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tms_nest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
