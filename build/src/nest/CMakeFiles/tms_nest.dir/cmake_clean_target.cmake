file(REMOVE_RECURSE
  "libtms_nest.a"
)
