# Empty compiler generated dependencies file for tms_nest.
# This may be replaced when dependencies are built.
