
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spmt/address.cpp" "src/spmt/CMakeFiles/tms_spmt.dir/address.cpp.o" "gcc" "src/spmt/CMakeFiles/tms_spmt.dir/address.cpp.o.d"
  "/root/repo/src/spmt/cache.cpp" "src/spmt/CMakeFiles/tms_spmt.dir/cache.cpp.o" "gcc" "src/spmt/CMakeFiles/tms_spmt.dir/cache.cpp.o.d"
  "/root/repo/src/spmt/profile.cpp" "src/spmt/CMakeFiles/tms_spmt.dir/profile.cpp.o" "gcc" "src/spmt/CMakeFiles/tms_spmt.dir/profile.cpp.o.d"
  "/root/repo/src/spmt/reference.cpp" "src/spmt/CMakeFiles/tms_spmt.dir/reference.cpp.o" "gcc" "src/spmt/CMakeFiles/tms_spmt.dir/reference.cpp.o.d"
  "/root/repo/src/spmt/sim.cpp" "src/spmt/CMakeFiles/tms_spmt.dir/sim.cpp.o" "gcc" "src/spmt/CMakeFiles/tms_spmt.dir/sim.cpp.o.d"
  "/root/repo/src/spmt/single_core.cpp" "src/spmt/CMakeFiles/tms_spmt.dir/single_core.cpp.o" "gcc" "src/spmt/CMakeFiles/tms_spmt.dir/single_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codegen/CMakeFiles/tms_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tms_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/tms_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/tms_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tms_support.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/tms_cost.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
