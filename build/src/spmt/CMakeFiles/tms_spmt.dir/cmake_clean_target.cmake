file(REMOVE_RECURSE
  "libtms_spmt.a"
)
