# Empty compiler generated dependencies file for tms_spmt.
# This may be replaced when dependencies are built.
