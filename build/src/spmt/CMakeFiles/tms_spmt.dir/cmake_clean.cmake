file(REMOVE_RECURSE
  "CMakeFiles/tms_spmt.dir/address.cpp.o"
  "CMakeFiles/tms_spmt.dir/address.cpp.o.d"
  "CMakeFiles/tms_spmt.dir/cache.cpp.o"
  "CMakeFiles/tms_spmt.dir/cache.cpp.o.d"
  "CMakeFiles/tms_spmt.dir/profile.cpp.o"
  "CMakeFiles/tms_spmt.dir/profile.cpp.o.d"
  "CMakeFiles/tms_spmt.dir/reference.cpp.o"
  "CMakeFiles/tms_spmt.dir/reference.cpp.o.d"
  "CMakeFiles/tms_spmt.dir/sim.cpp.o"
  "CMakeFiles/tms_spmt.dir/sim.cpp.o.d"
  "CMakeFiles/tms_spmt.dir/single_core.cpp.o"
  "CMakeFiles/tms_spmt.dir/single_core.cpp.o.d"
  "libtms_spmt.a"
  "libtms_spmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tms_spmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
