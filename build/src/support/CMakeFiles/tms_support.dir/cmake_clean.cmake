file(REMOVE_RECURSE
  "CMakeFiles/tms_support.dir/rng.cpp.o"
  "CMakeFiles/tms_support.dir/rng.cpp.o.d"
  "CMakeFiles/tms_support.dir/stats.cpp.o"
  "CMakeFiles/tms_support.dir/stats.cpp.o.d"
  "CMakeFiles/tms_support.dir/table.cpp.o"
  "CMakeFiles/tms_support.dir/table.cpp.o.d"
  "libtms_support.a"
  "libtms_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tms_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
