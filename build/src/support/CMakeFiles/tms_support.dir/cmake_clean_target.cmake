file(REMOVE_RECURSE
  "libtms_support.a"
)
