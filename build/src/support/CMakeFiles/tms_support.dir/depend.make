# Empty dependencies file for tms_support.
# This may be replaced when dependencies are built.
