
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/render.cpp" "src/viz/CMakeFiles/tms_viz.dir/render.cpp.o" "gcc" "src/viz/CMakeFiles/tms_viz.dir/render.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/tms_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/tms_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/tms_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/tms_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tms_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
