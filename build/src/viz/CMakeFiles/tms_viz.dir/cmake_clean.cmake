file(REMOVE_RECURSE
  "CMakeFiles/tms_viz.dir/render.cpp.o"
  "CMakeFiles/tms_viz.dir/render.cpp.o.d"
  "libtms_viz.a"
  "libtms_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tms_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
