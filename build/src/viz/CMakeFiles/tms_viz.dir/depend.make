# Empty dependencies file for tms_viz.
# This may be replaced when dependencies are built.
