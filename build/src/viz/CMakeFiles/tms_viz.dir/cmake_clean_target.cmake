file(REMOVE_RECURSE
  "libtms_viz.a"
)
