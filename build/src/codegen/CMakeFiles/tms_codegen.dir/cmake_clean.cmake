file(REMOVE_RECURSE
  "CMakeFiles/tms_codegen.dir/kernel_program.cpp.o"
  "CMakeFiles/tms_codegen.dir/kernel_program.cpp.o.d"
  "libtms_codegen.a"
  "libtms_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tms_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
