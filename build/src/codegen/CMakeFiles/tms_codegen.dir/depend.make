# Empty dependencies file for tms_codegen.
# This may be replaced when dependencies are built.
