file(REMOVE_RECURSE
  "libtms_codegen.a"
)
