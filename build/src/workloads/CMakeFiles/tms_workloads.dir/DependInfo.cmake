
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/builder.cpp" "src/workloads/CMakeFiles/tms_workloads.dir/builder.cpp.o" "gcc" "src/workloads/CMakeFiles/tms_workloads.dir/builder.cpp.o.d"
  "/root/repo/src/workloads/doacross.cpp" "src/workloads/CMakeFiles/tms_workloads.dir/doacross.cpp.o" "gcc" "src/workloads/CMakeFiles/tms_workloads.dir/doacross.cpp.o.d"
  "/root/repo/src/workloads/figure1.cpp" "src/workloads/CMakeFiles/tms_workloads.dir/figure1.cpp.o" "gcc" "src/workloads/CMakeFiles/tms_workloads.dir/figure1.cpp.o.d"
  "/root/repo/src/workloads/kernels.cpp" "src/workloads/CMakeFiles/tms_workloads.dir/kernels.cpp.o" "gcc" "src/workloads/CMakeFiles/tms_workloads.dir/kernels.cpp.o.d"
  "/root/repo/src/workloads/spec_suite.cpp" "src/workloads/CMakeFiles/tms_workloads.dir/spec_suite.cpp.o" "gcc" "src/workloads/CMakeFiles/tms_workloads.dir/spec_suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/tms_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/tms_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tms_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
