# Empty compiler generated dependencies file for tms_workloads.
# This may be replaced when dependencies are built.
