file(REMOVE_RECURSE
  "libtms_workloads.a"
)
