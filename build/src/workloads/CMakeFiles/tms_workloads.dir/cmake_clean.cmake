file(REMOVE_RECURSE
  "CMakeFiles/tms_workloads.dir/builder.cpp.o"
  "CMakeFiles/tms_workloads.dir/builder.cpp.o.d"
  "CMakeFiles/tms_workloads.dir/doacross.cpp.o"
  "CMakeFiles/tms_workloads.dir/doacross.cpp.o.d"
  "CMakeFiles/tms_workloads.dir/figure1.cpp.o"
  "CMakeFiles/tms_workloads.dir/figure1.cpp.o.d"
  "CMakeFiles/tms_workloads.dir/kernels.cpp.o"
  "CMakeFiles/tms_workloads.dir/kernels.cpp.o.d"
  "CMakeFiles/tms_workloads.dir/spec_suite.cpp.o"
  "CMakeFiles/tms_workloads.dir/spec_suite.cpp.o.d"
  "libtms_workloads.a"
  "libtms_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tms_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
