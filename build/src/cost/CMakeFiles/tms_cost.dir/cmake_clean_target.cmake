file(REMOVE_RECURSE
  "libtms_cost.a"
)
