file(REMOVE_RECURSE
  "CMakeFiles/tms_cost.dir/cost_model.cpp.o"
  "CMakeFiles/tms_cost.dir/cost_model.cpp.o.d"
  "libtms_cost.a"
  "libtms_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tms_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
