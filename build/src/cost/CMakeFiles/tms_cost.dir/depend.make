# Empty dependencies file for tms_cost.
# This may be replaced when dependencies are built.
