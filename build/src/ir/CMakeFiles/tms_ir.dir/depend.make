# Empty dependencies file for tms_ir.
# This may be replaced when dependencies are built.
