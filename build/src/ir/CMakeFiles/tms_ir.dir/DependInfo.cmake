
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/graph.cpp" "src/ir/CMakeFiles/tms_ir.dir/graph.cpp.o" "gcc" "src/ir/CMakeFiles/tms_ir.dir/graph.cpp.o.d"
  "/root/repo/src/ir/loop.cpp" "src/ir/CMakeFiles/tms_ir.dir/loop.cpp.o" "gcc" "src/ir/CMakeFiles/tms_ir.dir/loop.cpp.o.d"
  "/root/repo/src/ir/textio.cpp" "src/ir/CMakeFiles/tms_ir.dir/textio.cpp.o" "gcc" "src/ir/CMakeFiles/tms_ir.dir/textio.cpp.o.d"
  "/root/repo/src/ir/unroll.cpp" "src/ir/CMakeFiles/tms_ir.dir/unroll.cpp.o" "gcc" "src/ir/CMakeFiles/tms_ir.dir/unroll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tms_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
