file(REMOVE_RECURSE
  "libtms_ir.a"
)
