file(REMOVE_RECURSE
  "CMakeFiles/tms_ir.dir/graph.cpp.o"
  "CMakeFiles/tms_ir.dir/graph.cpp.o.d"
  "CMakeFiles/tms_ir.dir/loop.cpp.o"
  "CMakeFiles/tms_ir.dir/loop.cpp.o.d"
  "CMakeFiles/tms_ir.dir/textio.cpp.o"
  "CMakeFiles/tms_ir.dir/textio.cpp.o.d"
  "CMakeFiles/tms_ir.dir/unroll.cpp.o"
  "CMakeFiles/tms_ir.dir/unroll.cpp.o.d"
  "libtms_ir.a"
  "libtms_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tms_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
