# Empty compiler generated dependencies file for bench_ablation_sweeps.
# This may be replaced when dependencies are built.
