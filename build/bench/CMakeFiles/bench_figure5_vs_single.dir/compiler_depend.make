# Empty compiler generated dependencies file for bench_figure5_vs_single.
# This may be replaced when dependencies are built.
