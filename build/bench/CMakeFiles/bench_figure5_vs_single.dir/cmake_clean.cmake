file(REMOVE_RECURSE
  "CMakeFiles/bench_figure5_vs_single.dir/bench_figure5_vs_single.cpp.o"
  "CMakeFiles/bench_figure5_vs_single.dir/bench_figure5_vs_single.cpp.o.d"
  "bench_figure5_vs_single"
  "bench_figure5_vs_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure5_vs_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
