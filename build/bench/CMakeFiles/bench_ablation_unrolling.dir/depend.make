# Empty dependencies file for bench_ablation_unrolling.
# This may be replaced when dependencies are built.
