file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_unrolling.dir/bench_ablation_unrolling.cpp.o"
  "CMakeFiles/bench_ablation_unrolling.dir/bench_ablation_unrolling.cpp.o.d"
  "bench_ablation_unrolling"
  "bench_ablation_unrolling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_unrolling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
