file(REMOVE_RECURSE
  "CMakeFiles/bench_figure6_sync.dir/bench_figure6_sync.cpp.o"
  "CMakeFiles/bench_figure6_sync.dir/bench_figure6_sync.cpp.o.d"
  "bench_figure6_sync"
  "bench_figure6_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure6_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
