# Empty dependencies file for bench_figure6_sync.
# This may be replaced when dependencies are built.
