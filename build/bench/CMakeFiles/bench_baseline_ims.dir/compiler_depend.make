# Empty compiler generated dependencies file for bench_baseline_ims.
# This may be replaced when dependencies are built.
