file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_ims.dir/bench_baseline_ims.cpp.o"
  "CMakeFiles/bench_baseline_ims.dir/bench_baseline_ims.cpp.o.d"
  "bench_baseline_ims"
  "bench_baseline_ims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_ims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
