file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_regpressure.dir/bench_ablation_regpressure.cpp.o"
  "CMakeFiles/bench_ablation_regpressure.dir/bench_ablation_regpressure.cpp.o.d"
  "bench_ablation_regpressure"
  "bench_ablation_regpressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_regpressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
