# Empty dependencies file for bench_ablation_regpressure.
# This may be replaced when dependencies are built.
