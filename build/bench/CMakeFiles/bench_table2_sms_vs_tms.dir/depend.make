# Empty dependencies file for bench_table2_sms_vs_tms.
# This may be replaced when dependencies are built.
