file(REMOVE_RECURSE
  "CMakeFiles/bench_figure4_speedups.dir/bench_figure4_speedups.cpp.o"
  "CMakeFiles/bench_figure4_speedups.dir/bench_figure4_speedups.cpp.o.d"
  "bench_figure4_speedups"
  "bench_figure4_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure4_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
