file(REMOVE_RECURSE
  "../lib/libtms_bench_harness.a"
  "../lib/libtms_bench_harness.pdb"
  "CMakeFiles/tms_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/tms_bench_harness.dir/harness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tms_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
