# Empty compiler generated dependencies file for tms_bench_harness.
# This may be replaced when dependencies are built.
