file(REMOVE_RECURSE
  "../lib/libtms_bench_harness.a"
)
