file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_doacross.dir/bench_table3_doacross.cpp.o"
  "CMakeFiles/bench_table3_doacross.dir/bench_table3_doacross.cpp.o.d"
  "bench_table3_doacross"
  "bench_table3_doacross.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_doacross.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
