// Router subsystem tests: consistent-hash ring stability and balance,
// the PEEK peer-fill codec and its socket side channel, the in-process
// LocalCluster end to end (verified schedules, peer-fill hit counting),
// and health-driven ejection routing around a dead backend. The
// real-process version of the failover story (kill -9 under load) lives
// in tests/router_smoke.sh.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "driver/schedule_cache.hpp"
#include "machine/machine.hpp"
#include "machine/spmt_config.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "router/cluster.hpp"
#include "router/ring.hpp"
#include "router/router.hpp"
#include "sched/tms.hpp"
#include "serve/client.hpp"
#include "serve/handler.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "support/json_parse.hpp"
#include "workloads/kernels.hpp"

namespace tms {
namespace {

namespace fs = std::filesystem;

/// Deterministic pseudo-random keys (splitmix64 stream).
std::vector<std::uint64_t> test_keys(std::size_t n) {
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < n; ++i) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    keys.push_back(z ^ (z >> 31));
  }
  return keys;
}

// ---- ring ----------------------------------------------------------------

TEST(HashRing, AddMovesOnlyNewOwnersShare) {
  router::HashRing ring;
  for (int i = 0; i < 4; ++i) ring.add("b" + std::to_string(i));
  const std::vector<std::uint64_t> keys = test_keys(4096);

  std::map<std::uint64_t, std::string> before;
  for (std::uint64_t k : keys) before[k] = ring.primary(k);

  ring.add("b4");
  std::size_t moved = 0;
  for (std::uint64_t k : keys) {
    const std::string now = ring.primary(k);
    if (now != before[k]) {
      ++moved;
      // Consistency: a key may only move TO the new backend.
      EXPECT_EQ(now, "b4") << "key moved between pre-existing backends";
    }
  }
  // Expected share is 1/5; allow generous slack around it, but a naive
  // mod-N rehash would move ~4/5 of the keys and must fail here.
  EXPECT_GT(moved, keys.size() / 20);
  EXPECT_LT(moved, keys.size() / 2);
}

TEST(HashRing, RemoveMovesOnlyOrphanedKeys) {
  router::HashRing ring;
  for (int i = 0; i < 4; ++i) ring.add("b" + std::to_string(i));
  const std::vector<std::uint64_t> keys = test_keys(4096);

  std::map<std::uint64_t, std::string> before;
  for (std::uint64_t k : keys) before[k] = ring.primary(k);

  ring.remove("b2");
  EXPECT_FALSE(ring.contains("b2"));
  for (std::uint64_t k : keys) {
    const std::string now = ring.primary(k);
    if (before[k] == "b2") {
      EXPECT_NE(now, "b2");
    } else {
      // Every key b2 did not own keeps its warm shard.
      EXPECT_EQ(now, before[k]);
    }
  }
}

TEST(HashRing, BalanceAcrossBackends) {
  router::HashRing ring;
  const int n = 4;
  for (int i = 0; i < n; ++i) ring.add("b" + std::to_string(i));
  std::map<std::string, std::size_t> share;
  const std::vector<std::uint64_t> keys = test_keys(16384);
  for (std::uint64_t k : keys) ++share[ring.primary(k)];
  ASSERT_EQ(share.size(), static_cast<std::size_t>(n));
  for (const auto& [node, count] : share) {
    const double frac = static_cast<double>(count) / static_cast<double>(keys.size());
    EXPECT_GT(frac, 0.10) << node << " is starved";
    EXPECT_LT(frac, 0.45) << node << " is overloaded";
  }
}

TEST(HashRing, SuccessorsAreDistinctAndStartAtPrimary) {
  router::HashRing ring;
  for (int i = 0; i < 4; ++i) ring.add("b" + std::to_string(i));
  for (std::uint64_t k : test_keys(64)) {
    const auto succ = ring.successors(k, 4);
    ASSERT_EQ(succ.size(), 4u);
    EXPECT_EQ(succ.front(), ring.primary(k));
    std::set<std::string> uniq(succ.begin(), succ.end());
    EXPECT_EQ(uniq.size(), succ.size());
  }
}

TEST(HashRing, EmptyAndSingleNode) {
  router::HashRing ring;
  EXPECT_EQ(ring.primary(1234), "");
  EXPECT_TRUE(ring.successors(1234, 3).empty());
  ring.add("only");
  EXPECT_EQ(ring.primary(1234), "only");
  const auto succ = ring.successors(1234, 3);
  ASSERT_EQ(succ.size(), 1u);
  EXPECT_EQ(succ.front(), "only");
}

// ---- PEEK codec ----------------------------------------------------------

TEST(PeekCodec, QueryRoundTrip) {
  serve::PeekQuery q;
  q.key = 0x0123456789abcdefull;
  q.expect_instrs = 17;
  const auto parsed = serve::parse_peek(serve::serialise_peek(q));
  const auto* back = std::get_if<serve::PeekQuery>(&parsed);
  ASSERT_NE(back, nullptr) << std::get<std::string>(parsed);
  EXPECT_EQ(back->key, q.key);
  EXPECT_EQ(back->expect_instrs, q.expect_instrs);
}

TEST(PeekCodec, MalformedQueryIsAnError) {
  for (const char* bad : {"not-a-peek\n", "tmsq-peek-v1\nkey zz\n", ""}) {
    const auto parsed = serve::parse_peek(bad);
    EXPECT_NE(std::get_if<std::string>(&parsed), nullptr) << "accepted: " << bad;
  }
}

TEST(PeekCodec, ReplyRoundTripHit) {
  driver::ScheduleCache::Entry e;
  e.scheduler = "tms";
  e.ii = 7;
  e.mii = 5;
  e.c_delay_threshold = 3;
  e.p_max = 2.5;
  e.slots = {0, 1, 2, 5, 9};
  const auto parsed = serve::parse_peek_reply(serve::serialise_peek_reply(e));
  const auto* opt = std::get_if<std::optional<driver::ScheduleCache::Entry>>(&parsed);
  ASSERT_NE(opt, nullptr) << std::get<std::string>(parsed);
  ASSERT_TRUE(opt->has_value());
  EXPECT_EQ((*opt)->scheduler, "tms");
  EXPECT_EQ((*opt)->ii, 7);
  EXPECT_EQ((*opt)->mii, 5);
  EXPECT_EQ((*opt)->c_delay_threshold, 3);
  EXPECT_DOUBLE_EQ((*opt)->p_max, 2.5);
  EXPECT_EQ((*opt)->slots, (std::vector<int>{0, 1, 2, 5, 9}));
}

TEST(PeekCodec, ReplyRoundTripMiss) {
  const auto parsed = serve::parse_peek_reply(serve::serialise_peek_reply(std::nullopt));
  const auto* opt = std::get_if<std::optional<driver::ScheduleCache::Entry>>(&parsed);
  ASSERT_NE(opt, nullptr);
  EXPECT_FALSE(opt->has_value());
}

TEST(PeekCodec, MalformedProbeGetsWellFormedMissFromService) {
  const machine::MachineModel mach;
  driver::ScheduleCache cache(64);
  serve::CompileService service(mach, &cache, serve::ServiceOptions{});
  // A garbage probe must never crash the side channel — the contract is
  // a well-formed miss, so broken peers degrade to a recompute.
  const auto parsed = serve::parse_peek_reply(service.peek_reply("complete garbage"));
  const auto* opt = std::get_if<std::optional<driver::ScheduleCache::Entry>>(&parsed);
  ASSERT_NE(opt, nullptr);
  EXPECT_FALSE(opt->has_value());
  service.shutdown();
}

// ---- PEEK over a real socket ---------------------------------------------

class RouterSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "router_test." + std::to_string(::getpid());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string dir_;
};

TEST_F(RouterSocketTest, PeekHitAndMissOverSocket) {
  const machine::MachineModel mach;
  driver::ScheduleCache cache(1 << 10);
  serve::CompileService service(mach, &cache, serve::ServiceOptions{});
  serve::ServerOptions sopts;
  sopts.unix_path = dir_ + "/peek.sock";
  serve::SocketServer server(service, sopts);
  ASSERT_FALSE(server.start().has_value());

  std::vector<workloads::Kernel> kernels = workloads::classic_kernels();
  const ir::Loop& loop = kernels.front().loop;

  serve::Client client;
  ASSERT_FALSE(client.connect_unix(sopts.unix_path).has_value());
  serve::Request req;
  req.id = 1;
  req.scheduler = "tms";
  req.loop = loop;
  const auto resp = client.compile(req);
  const auto* ok = std::get_if<serve::Response>(&resp);
  ASSERT_NE(ok, nullptr);
  ASSERT_TRUE(ok->ok);

  // The compile populated the cache; a PEEK for its key must hit and
  // carry the same schedule.
  machine::SpmtConfig cfg;
  cfg.ncore = req.ncore;
  serve::PeekQuery q;
  q.key = driver::ScheduleCache::key(loop, mach, cfg, "tms");
  q.expect_instrs = loop.num_instrs();
  std::optional<driver::ScheduleCache::Entry> entry;
  ASSERT_FALSE(client.peek(q, entry).has_value());
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->ii, ok->ii);
  EXPECT_EQ(entry->slots, ok->slots);

  // Unknown key: well-formed miss.
  q.key ^= 0xdeadbeefull;
  entry.reset();
  ASSERT_FALSE(client.peek(q, entry).has_value());
  EXPECT_FALSE(entry.has_value());

  client.close();
  server.drain();
  service.shutdown();
}

// ---- LocalCluster end to end ---------------------------------------------

TEST_F(RouterSocketTest, ClusterServesVerifiedSchedules) {
  const machine::MachineModel mach;
  router::LocalClusterOptions opts;
  opts.backends = 2;
  opts.dir = dir_;
  router::LocalCluster lc(mach, opts);
  ASSERT_FALSE(lc.start().has_value());

  serve::Client client;
  ASSERT_FALSE(client.connect_unix(lc.router_socket()).has_value());
  const machine::SpmtConfig cfg;
  std::uint64_t id = 0;
  for (workloads::Kernel& k : workloads::classic_kernels()) {
    serve::Request req;
    req.id = ++id;
    req.request_id = "rt-" + std::to_string(id);
    req.scheduler = "tms";
    req.loop = k.loop;
    const auto resp = client.compile(req);
    const auto* ok = std::get_if<serve::Response>(&resp);
    ASSERT_NE(ok, nullptr) << std::get<std::string>(resp);
    ASSERT_TRUE(ok->ok) << ok->message;
    // The id survives the extra hop verbatim.
    EXPECT_EQ(ok->request_id, req.request_id);
    // Deterministic schedulers: the routed answer equals a local run.
    const auto local = sched::tms_schedule(k.loop, mach, cfg);
    ASSERT_TRUE(local.has_value());
    EXPECT_EQ(ok->ii, local->schedule.ii());
    for (int v = 0; v < k.loop.num_instrs(); ++v) {
      EXPECT_EQ(ok->slots[static_cast<std::size_t>(v)], local->schedule.slot(v));
    }
  }
  client.close();
  lc.stop();
}

TEST_F(RouterSocketTest, PeerFillServesWarmSiblingEntry) {
  const machine::MachineModel mach;
  router::LocalClusterOptions opts;
  opts.backends = 2;
  opts.dir = dir_;
  opts.peer_fill = true;
  router::LocalCluster lc(mach, opts);
  ASSERT_FALSE(lc.start().has_value());

  std::vector<workloads::Kernel> kernels = workloads::classic_kernels();
  const std::uint64_t hits_before = obs::counters().serve_peer_fill_hits.value();

  // Warm shard 0 directly, then ask shard 1 directly for the same loop:
  // shard 1 misses its own cache and must fill from its sibling.
  for (int shard = 0; shard < 2; ++shard) {
    serve::Client client;
    ASSERT_FALSE(client.connect_unix(lc.backend_socket(shard)).has_value());
    serve::Request req;
    req.id = static_cast<std::uint64_t>(shard) + 1;
    req.scheduler = "tms";
    req.loop = kernels.front().loop;
    const auto resp = client.compile(req);
    const auto* ok = std::get_if<serve::Response>(&resp);
    ASSERT_NE(ok, nullptr);
    ASSERT_TRUE(ok->ok);
    if (shard == 1) {
      // Served from the sibling's cache: flagged as a hit even though
      // this shard had never seen the loop.
      EXPECT_TRUE(ok->cache_hit);
    }
    client.close();
  }
  EXPECT_GT(obs::counters().serve_peer_fill_hits.value(), hits_before);
  lc.stop();
}

// ---- ejection ------------------------------------------------------------

TEST_F(RouterSocketTest, EjectionRoutesAroundDeadBackend) {
  const machine::MachineModel mach;

  // One real backend, one address nobody listens on.
  serve::CompileService service(mach, nullptr, serve::ServiceOptions{});
  serve::ServerOptions sopts;
  sopts.unix_path = dir_ + "/alive.sock";
  serve::SocketServer server(service, sopts);
  ASSERT_FALSE(server.start().has_value());

  router::RouterOptions ropts;
  ropts.backends = {sopts.unix_path, dir_ + "/dead.sock"};
  ropts.probe_interval_ms = 0;  // probe on demand only
  ropts.probe_timeout_ms = 200;
  ropts.eject_after = 2;
  ropts.retries = 1;
  ropts.hedges = 1;
  router::Router router(mach, ropts);
  ASSERT_FALSE(router.start().has_value());
  router.probe_now();  // second consecutive failure ejects the dead one
  EXPECT_EQ(router.healthy_count(), 1u);

  // Every kernel must be answered, including those whose ring owner is
  // the dead backend — they hedge to the survivor.
  std::uint64_t id = 0;
  for (workloads::Kernel& k : workloads::classic_kernels()) {
    serve::Request req;
    req.id = ++id;
    req.scheduler = "tms";
    req.loop = k.loop;
    const serve::Response resp = router.handle(req, "test");
    EXPECT_TRUE(resp.ok) << resp.message;
  }

  bool saw_dead = false;
  for (const auto& b : router.backends_snapshot()) {
    if (b.address == ropts.backends[1]) {
      saw_dead = true;
      EXPECT_FALSE(b.healthy);
    } else {
      EXPECT_TRUE(b.healthy);
    }
  }
  EXPECT_TRUE(saw_dead);

  router.begin_drain();
  router.stop();
  server.drain();
  service.shutdown();
}

// ---- CLUSTER_STATS aggregation -------------------------------------------

TEST_F(RouterSocketTest, ClusterStatsAggregateIsTheExactSumOfItsShards) {
  const machine::MachineModel mach;
  router::LocalClusterOptions opts;
  opts.backends = 2;
  opts.dir = dir_;
  router::LocalCluster lc(mach, opts);
  ASSERT_FALSE(lc.start().has_value());

  // Put some traffic through so counters and latency buckets are
  // non-trivial before the snapshot.
  serve::Client client;
  ASSERT_FALSE(client.connect_unix(lc.router_socket()).has_value());
  std::uint64_t id = 0;
  for (workloads::Kernel& k : workloads::classic_kernels()) {
    serve::Request req;
    req.id = ++id;
    req.scheduler = "tms";
    req.loop = k.loop;
    const auto resp = client.compile(req);
    const auto* ok = std::get_if<serve::Response>(&resp);
    ASSERT_NE(ok, nullptr) << std::get<std::string>(resp);
    ASSERT_TRUE(ok->ok) << ok->message;
  }

  std::string payload;
  ASSERT_FALSE(client.cluster_stats(payload).has_value());
  const auto parsed = support::parse_json(payload);
  const auto* v = std::get_if<support::JsonValue>(&parsed);
  ASSERT_NE(v, nullptr) << std::get<std::string>(parsed);
  ASSERT_NE(v->find("schema"), nullptr);
  EXPECT_EQ(v->find("schema")->as_string(), "cluster-stats-v1");
  EXPECT_EQ(v->find("source")->as_string(), "tmsrouter");
  EXPECT_EQ(v->find("shards_total")->as_number(), 2.0);
  EXPECT_EQ(v->find("shards_ok")->as_number(), 2.0);

  // The acceptance contract: the aggregate equals the bucket-wise sum
  // of the per-shard registries carried in the same reply — counters,
  // every histogram bucket, and the exact sums.
  const auto* shards = v->find("shards");
  ASSERT_NE(shards, nullptr);
  obs::CountersSnapshot sum;
  std::size_t shards_seen = 0;
  for (const auto& shard : shards->items()) {
    ASSERT_NE(shard.find("ok"), nullptr);
    ASSERT_TRUE(shard.find("ok")->as_bool());
    const auto* observability = shard.find_path("stats.observability");
    ASSERT_NE(observability, nullptr);
    obs::snapshot_accumulate(sum, obs::snapshot_from_json(*observability));
    ++shards_seen;
  }
  EXPECT_EQ(shards_seen, 2u);
  const auto* aggregate = v->find("aggregate");
  ASSERT_NE(aggregate, nullptr);
  const obs::CountersSnapshot agg = obs::snapshot_from_json(*aggregate);
  EXPECT_EQ(agg.counters, sum.counters);
  EXPECT_EQ(agg.histograms, sum.histograms);
  EXPECT_EQ(agg.histogram_sums, sum.histogram_sums);
  EXPECT_EQ(agg.time_histograms, sum.time_histograms);
  EXPECT_EQ(agg.time_histogram_sums_us, sum.time_histogram_sums_us);
  EXPECT_GE(agg.value("serve.requests"), static_cast<std::uint64_t>(id))
      << "the traffic above must be visible in the aggregate";

  client.close();
  lc.stop();
}

TEST_F(RouterSocketTest, ClusterStatsAnswersWhileDrainingAndReportsDeadShards) {
  const machine::MachineModel mach;

  serve::CompileService service(mach, nullptr, serve::ServiceOptions{});
  serve::ServerOptions sopts;
  sopts.unix_path = dir_ + "/alive.sock";
  serve::SocketServer server(service, sopts);
  ASSERT_FALSE(server.start().has_value());

  router::RouterOptions ropts;
  ropts.backends = {sopts.unix_path, dir_ + "/dead.sock"};
  ropts.probe_interval_ms = 0;
  ropts.probe_timeout_ms = 200;
  ropts.eject_after = 2;
  router::Router router(mach, ropts);
  ASSERT_FALSE(router.start().has_value());
  router.probe_now();
  EXPECT_EQ(router.healthy_count(), 1u);

  serve::ServerOptions rsopts;
  rsopts.unix_path = dir_ + "/router.sock";
  serve::SocketServer rserver(router, rsopts);
  ASSERT_FALSE(rserver.start().has_value());

  serve::Client client;
  ASSERT_FALSE(client.connect_unix(rsopts.unix_path).has_value());
  router.begin_drain();

  // Compiles are refused mid-drain; CLUSTER_STATS is a side channel and
  // must keep answering, with the ejected shard reported ok:false.
  serve::Request req;
  req.id = 1;
  req.scheduler = "tms";
  req.loop = workloads::classic_kernels().front().loop;
  const auto refused = client.compile(req);
  const auto* r = std::get_if<serve::Response>(&refused);
  ASSERT_NE(r, nullptr);
  EXPECT_FALSE(r->ok);
  EXPECT_EQ(r->code, serve::ErrorCode::kShutdown);

  std::string payload;
  ASSERT_FALSE(client.cluster_stats(payload).has_value());
  const auto parsed = support::parse_json(payload);
  const auto* v = std::get_if<support::JsonValue>(&parsed);
  ASSERT_NE(v, nullptr) << std::get<std::string>(parsed);
  EXPECT_TRUE(v->find("draining")->as_bool());
  EXPECT_EQ(v->find("shards_total")->as_number(), 2.0);
  EXPECT_EQ(v->find("shards_ok")->as_number(), 1.0);
  bool saw_dead = false;
  for (const auto& shard : v->find("shards")->items()) {
    if (shard.find("address")->as_string() == ropts.backends[1]) {
      saw_dead = true;
      EXPECT_FALSE(shard.find("ok")->as_bool());
      EXPECT_FALSE(shard.find("healthy")->as_bool());
      EXPECT_NE(shard.find("error"), nullptr);
    }
  }
  EXPECT_TRUE(saw_dead);

  client.close();
  rserver.drain();
  router.stop();
  server.drain();
  service.shutdown();
}

// ---- distributed tracing across the router hop ---------------------------

TEST_F(RouterSocketTest, HedgedPeerFilledRequestYieldsOneStitchedTrace) {
  if (!obs::trace_compiled()) GTEST_SKIP() << "built with TMS_TRACE=0";
  const machine::MachineModel mach;
  router::LocalClusterOptions opts;
  opts.backends = 2;
  opts.dir = dir_;
  opts.peer_fill = true;
  router::LocalCluster lc(mach, opts);
  ASSERT_FALSE(lc.start().has_value());

  serve::Client client;
  ASSERT_FALSE(client.connect_unix(lc.router_socket()).has_value());

  // Warm the ring owner via the router, then identify it by its
  // forwarded count.
  serve::Request req;
  req.id = 1;
  req.scheduler = "tms";
  req.loop = workloads::classic_kernels().front().loop;
  {
    const auto resp = client.compile(req);
    const auto* ok = std::get_if<serve::Response>(&resp);
    ASSERT_NE(ok, nullptr);
    ASSERT_TRUE(ok->ok) << ok->message;
  }
  int owner = -1;
  for (const auto& b : lc.router().backends_snapshot()) {
    if (b.forwarded != 1) continue;
    for (int i = 0; i < lc.backends(); ++i) {
      if (lc.backend_socket(i) == b.address) owner = i;
    }
  }
  ASSERT_GE(owner, 0);

  // Drain the owner: the repeat request is answered kShutdown there,
  // hedges to the replica, misses its cold cache, and peer-fills the
  // PEEK side channel the draining owner still serves.
  lc.service(owner).begin_drain();
  obs::trace_enable(1 << 12);
  req.id = 2;
  req.trace_id = obs::mint_id();
  const auto resp = client.compile(req);
  const auto* ok = std::get_if<serve::Response>(&resp);
  ASSERT_NE(ok, nullptr);
  ASSERT_TRUE(ok->ok) << ok->message;
  EXPECT_TRUE(ok->cache_hit) << "the replica must have peer-filled from the owner";
  EXPECT_EQ(ok->trace_id, req.trace_id) << "traced clients get their id echoed";
  client.close();
  lc.stop();

  // One buffer holds the whole path. Walk the spans of this trace:
  // router.request roots it, the hedge adds a second forward leg, and
  // the replica's serve.request hangs under one of the legs with its
  // peer-fill span inside.
  const std::vector<obs::TraceEvent> evs = obs::trace_snapshot();
  obs::trace_disable();
  std::vector<obs::TraceEvent> mine;
  for (const obs::TraceEvent& e : evs) {
    if (e.trace_id == req.trace_id) mine.push_back(e);
  }
  std::set<std::uint64_t> forward_spans;
  std::uint64_t root_span = 0;
  bool saw_hedge_leg = false;
  bool saw_peer_fill = false;
  std::uint64_t serve_parent = 0;
  for (const obs::TraceEvent& e : mine) {
    const std::string name = e.name;
    if (name == "router.request") root_span = e.span_id;
    if (name == "router.forward") {
      forward_spans.insert(e.span_id);
      for (int a = 0; a < e.nargs; ++a) {
        if (std::string_view(e.args[a].key) == "hedge" && e.args[a].i == 1) {
          saw_hedge_leg = true;
        }
      }
    }
    if (name == "serve.request") serve_parent = e.parent_span_id;
    if (name == "serve.peer_fill") saw_peer_fill = true;
  }
  EXPECT_NE(root_span, 0u) << "router must root the trace";
  EXPECT_GE(forward_spans.size(), 2u) << "owner leg + hedge leg";
  EXPECT_TRUE(saw_hedge_leg);
  EXPECT_TRUE(saw_peer_fill) << "the replica's peer-fill span joins the same trace";
  EXPECT_TRUE(forward_spans.count(serve_parent))
      << "the backend's serve.request span must hang under a forward leg";
}

}  // namespace
}  // namespace tms
