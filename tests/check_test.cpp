// Unit tests for the independent schedule validator (check/validate) and
// the shrinker (check/shrink): every curated schedule must be accepted,
// and hand-mutated schedules must be rejected with the right violation.
#include <gtest/gtest.h>

#include <fstream>

#include "check/shrink.hpp"
#include "check/validate.hpp"
#include "codegen/kernel_program.hpp"
#include "ir/textio.hpp"
#include "sched/ims.hpp"
#include "sched/sms.hpp"
#include "sched/tms.hpp"
#include "test_util.hpp"
#include "workloads/figure1.hpp"
#include "workloads/kernels.hpp"

namespace tms {
namespace {

bool has_kind(const check::CheckReport& report, check::ViolationKind kind) {
  for (const check::Violation& v : report.violations) {
    if (v.kind == kind) return true;
  }
  return false;
}

/// Bumps the source of the first zero-slack dependence by one cycle — the
/// "moved slot" mutation an off-by-one in the scheduling window would
/// produce.
void move_tight_slot(sched::Schedule& s) {
  const ir::Loop& loop = s.loop();
  const machine::MachineModel& mach = s.machine();
  for (const ir::DepEdge& e : loop.deps()) {
    int delay = 0;
    if (!(e.kind == ir::DepKind::kMemory && e.distance >= 1)) {
      delay = e.type == ir::DepType::kFlow ? mach.latency(loop.instr(e.src).op)
              : e.type == ir::DepType::kOutput ? 1
                                               : 0;
    }
    if (s.slot(e.dst) - s.slot(e.src) == delay - s.ii() * e.distance) {
      s.set_slot(e.src, s.slot(e.src) + 1);
      return;
    }
  }
  FAIL() << "schedule has no tight dependence to perturb";
}

TEST(Validator, AcceptsAllCuratedKernelSchedules) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  for (const workloads::Kernel& k : workloads::classic_kernels()) {
    const auto sms = sched::sms_schedule(k.loop, mach);
    const auto ims = sched::ims_schedule(k.loop, mach);
    const auto tms = sched::tms_schedule(k.loop, mach, cfg);
    ASSERT_TRUE(sms.has_value() && ims.has_value() && tms.has_value()) << k.loop.name();

    EXPECT_TRUE(check::validate_schedule(sms->schedule, cfg).ok())
        << k.loop.name() << " (sms):\n"
        << check::validate_schedule(sms->schedule, cfg).to_string();
    EXPECT_TRUE(check::validate_schedule(ims->schedule, cfg).ok())
        << k.loop.name() << " (ims):\n"
        << check::validate_schedule(ims->schedule, cfg).to_string();

    check::CheckOptions opts;
    opts.c_delay_threshold = tms->c_delay_threshold;
    opts.p_max = tms->p_max;
    EXPECT_TRUE(check::validate_schedule(tms->schedule, cfg, opts).ok())
        << k.loop.name() << " (tms):\n"
        << check::validate_schedule(tms->schedule, cfg, opts).to_string();

    const auto kp = codegen::lower_kernel(tms->schedule, cfg);
    EXPECT_TRUE(check::validate_kernel_program(kp, tms->schedule, cfg).ok())
        << k.loop.name() << ":\n"
        << check::validate_kernel_program(kp, tms->schedule, cfg).to_string();
  }
}

TEST(Validator, AcceptsFigure1OnItsMachine) {
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel mach = workloads::figure1_machine();
  machine::SpmtConfig cfg;
  const auto tms = sched::tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(tms.has_value());
  check::CheckOptions opts;
  opts.c_delay_threshold = tms->c_delay_threshold;
  opts.p_max = tms->p_max;
  const auto report = check::validate_schedule(tms->schedule, cfg, opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Validator, RejectsMovedSlot) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const ir::Loop loop = test::random_loop(123);
  auto sms = sched::sms_schedule(loop, mach);
  ASSERT_TRUE(sms.has_value());
  ASSERT_TRUE(check::validate_schedule(sms->schedule, cfg).ok());
  move_tight_slot(sms->schedule);
  const auto report = check::validate_schedule(sms->schedule, cfg);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_kind(report, check::ViolationKind::kDependence)) << report.to_string();
}

TEST(Validator, RejectsIncompleteSchedule) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const ir::Loop loop = test::tiny_chain();
  sched::Schedule s(loop, mach, 1);
  s.set_slot(0, 0);  // second node never placed
  const auto report = check::validate_schedule(s, cfg);
  EXPECT_TRUE(has_kind(report, check::ViolationKind::kIncomplete)) << report.to_string();
}

TEST(Validator, RejectsMrtDoubleBooking) {
  // Two loads in the same row of an II=1 kernel oversubscribe the single
  // memory port even though no dependence exists between them.
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  ir::Loop loop("twoloads");
  loop.add_instr(ir::Opcode::kLoad, "a");
  loop.add_instr(ir::Opcode::kLoad, "b");
  sched::Schedule s(loop, mach, 1);
  s.set_slot(0, 0);
  s.set_slot(1, 0);
  const auto report = check::validate_schedule(s, cfg);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_kind(report, check::ViolationKind::kFuOverflow)) << report.to_string();
}

TEST(Validator, RejectsIssueOverflow) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  ir::Loop loop("wide");
  for (int i = 0; i < 6; ++i) loop.add_instr(ir::Opcode::kIAdd);
  sched::Schedule s(loop, mach, 1);
  for (ir::NodeId v = 0; v < 6; ++v) s.set_slot(v, 0);
  const auto report = check::validate_schedule(s, cfg);
  EXPECT_TRUE(has_kind(report, check::ViolationKind::kIssueOverflow)) << report.to_string();
}

TEST(Validator, RejectsDeNormalisedSchedule) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const ir::Loop loop = test::tiny_doall();
  auto sms = sched::sms_schedule(loop, mach);
  ASSERT_TRUE(sms.has_value());
  // Shift the whole schedule up a stage: still dependence- and
  // resource-feasible, but no longer in normal form.
  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    sms->schedule.set_slot(v, sms->schedule.slot(v) + sms->schedule.ii());
  }
  const auto report = check::validate_schedule(sms->schedule, cfg);
  EXPECT_TRUE(has_kind(report, check::ViolationKind::kNotNormalised)) << report.to_string();
}

TEST(Validator, EnforcesTmsThresholds) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel f1mach = workloads::figure1_machine();
  const auto tms = sched::tms_schedule(loop, f1mach, cfg);
  ASSERT_TRUE(tms.has_value());
  ASSERT_GT(tms->c_delay_threshold, 0);

  // The schedule's own thresholds pass; an impossibly strict C_delay
  // (below the minimum legal sync delay) must flag C1.
  check::CheckOptions strict;
  strict.c_delay_threshold = cfg.min_c_delay() - 1;
  const auto report = check::validate_schedule(tms->schedule, cfg, strict);
  EXPECT_TRUE(has_kind(report, check::ViolationKind::kSyncDelay)) << report.to_string();
  (void)mach;
}

TEST(Validator, RejectsDroppedSend) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel f1mach = workloads::figure1_machine();
  const auto sms = sched::sms_schedule(loop, f1mach);
  ASSERT_TRUE(sms.has_value());
  auto kp = codegen::lower_kernel(sms->schedule, cfg);
  ASSERT_FALSE(kp.inputs.empty()) << "figure 1 must have cross-thread register dependences";
  ASSERT_TRUE(check::validate_kernel_program(kp, sms->schedule, cfg).ok());

  auto dropped = kp;
  dropped.inputs.erase(dropped.inputs.begin());
  const auto report = check::validate_kernel_program(dropped, sms->schedule, cfg);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_kind(report, check::ViolationKind::kKernelProgram)) << report.to_string();
  EXPECT_NE(report.to_string().find("missing"), std::string::npos) << report.to_string();
  (void)mach;
}

TEST(Validator, RejectsMiscountedCommPairs) {
  machine::SpmtConfig cfg;
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel f1mach = workloads::figure1_machine();
  const auto sms = sched::sms_schedule(loop, f1mach);
  ASSERT_TRUE(sms.has_value());
  auto kp = codegen::lower_kernel(sms->schedule, cfg);
  ++kp.comm_pairs_per_iter;
  EXPECT_FALSE(check::validate_kernel_program(kp, sms->schedule, cfg).ok());
}

// ---- Shrinker -----------------------------------------------------------

TEST(Shrink, DropInstrRemapsEdgesAndLiveIns) {
  const ir::Loop loop = test::random_loop(7);
  ASSERT_GT(loop.num_instrs(), 2);
  const ir::NodeId victim = 1;
  const ir::Loop out = check::drop_instr(loop, victim);
  EXPECT_EQ(out.num_instrs(), loop.num_instrs() - 1);
  EXPECT_FALSE(out.validate().has_value());
  // Every surviving edge exists in the original between the same-named
  // instructions.
  for (const ir::DepEdge& e : out.deps()) {
    const std::string& sname = out.instr(e.src).name;
    const std::string& dname = out.instr(e.dst).name;
    EXPECT_NE(sname, loop.instr(victim).name);
    EXPECT_NE(dname, loop.instr(victim).name);
    bool found = false;
    for (const ir::DepEdge& o : loop.deps()) {
      if (loop.instr(o.src).name == sname && loop.instr(o.dst).name == dname &&
          o.kind == e.kind && o.type == e.type && o.distance == e.distance) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << sname << " -> " << dname;
  }
}

TEST(Shrink, DropDepRemovesExactlyOne) {
  const ir::Loop loop = test::random_loop(8);
  ASSERT_FALSE(loop.deps().empty());
  const ir::Loop out = check::drop_dep(loop, 0);
  EXPECT_EQ(out.deps().size(), loop.deps().size() - 1);
  EXPECT_EQ(out.num_instrs(), loop.num_instrs());
}

TEST(Shrink, ReducesToMinimalReproducer) {
  // A failure that depends on one instruction shrinks to just that
  // instruction (the induction variable is named "ind" by the builder).
  const ir::Loop loop = test::random_loop(11);
  const auto keeps_ind = [](const ir::Loop& l) {
    for (const ir::Instr& i : l.instrs()) {
      if (i.name == "ind") return true;
    }
    return false;
  };
  ASSERT_TRUE(keeps_ind(loop));
  const ir::Loop shrunk = check::shrink_loop(loop, keeps_ind);
  EXPECT_EQ(shrunk.num_instrs(), 1);
  EXPECT_EQ(shrunk.instr(0).name, "ind");
  EXPECT_TRUE(keeps_ind(shrunk));
  EXPECT_FALSE(shrunk.validate().has_value());
}

TEST(Shrink, ShrunkLoopStillSchedulesAndSerialises) {
  machine::MachineModel mach;
  const ir::Loop loop = test::random_loop(13);
  // Keep any loop that still has a cross-iteration register dependence:
  // the shrinker must preserve schedulability and the text round-trip.
  const auto has_carried = [](const ir::Loop& l) {
    for (const ir::DepEdge& e : l.deps()) {
      if (e.is_register_flow() && e.distance >= 1) return true;
    }
    return false;
  };
  ASSERT_TRUE(has_carried(loop));
  const ir::Loop shrunk = check::shrink_loop(loop, has_carried);
  EXPECT_LT(shrunk.num_instrs(), loop.num_instrs());
  EXPECT_TRUE(sched::sms_schedule(shrunk, mach).has_value());
  auto parsed = ir::parse_loop_string(ir::serialise_loop(shrunk));
  EXPECT_TRUE(std::holds_alternative<ir::Loop>(parsed));
}

// ---- Golden reproducer fixture ------------------------------------------

TEST(GoldenRepro, FixtureParsesAndFailurePipelineAcceptsIt) {
  // A checked-in tmsfuzz reproducer (generated with --inject-bug and
  // shrunk): the fixture must stay parseable and schedulable, and the
  // validator must accept the *correct* schedule of it — the historical
  // failure was in the mutated schedule, not the loop.
  std::ifstream f(std::string(TMS_SOURCE_DIR) + "/tests/data/golden_repro.loop");
  ASSERT_TRUE(f.good()) << "tests/data/golden_repro.loop missing";
  auto parsed = ir::parse_loop(f);
  ASSERT_TRUE(std::holds_alternative<ir::Loop>(parsed))
      << std::get<ir::ParseError>(parsed).message;
  const ir::Loop loop = std::get<ir::Loop>(std::move(parsed));

  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  auto sms = sched::sms_schedule(loop, mach);
  ASSERT_TRUE(sms.has_value());
  EXPECT_TRUE(check::validate_schedule(sms->schedule, cfg).ok());

  // Re-applying the recorded mutation (move a tight slot) must still be
  // caught — the fixture pins the validator's detection behaviour.
  move_tight_slot(sms->schedule);
  const auto report = check::validate_schedule(sms->schedule, cfg);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_kind(report, check::ViolationKind::kDependence)) << report.to_string();
}

}  // namespace
}  // namespace tms
