#!/usr/bin/env bash
# End-to-end smoke for the tmsd compile service (ISSUE acceptance, run
# in CI under TSan/ASan/UBSan):
#
#   1. remote == local: tmsq output is byte-identical to `tmsc --render
#      flat` for every example loop;
#   2. load: 8 concurrent clients push 200 requests through one daemon
#      with --verify (every response checked against a local schedule);
#   3. drain: SIGTERM finishes in-flight work and exits 0;
#   4. backpressure: a 1-worker/1-slot daemon under 8 clients answers
#      overload with RETRY_AFTER hints — never a hang, never a dropped
#      connection (loadgen --expect-retry-after enforces both);
#   5. telemetry: every response echoes the client's request_id, STATS
#      round-trips during the load run (loadgen --expect-stats), tmstop
#      watches the same run and must observe a non-zero request rate
#      between consecutive snapshots, the slow log captures canonical
#      JSON lines, and the final --metrics-dump exposition lands;
#   6. tracing: tmsq --trace-out writes a tmsq-trace-v1 summary whose
#      minted trace id the server echoes and the slow log carries as an
#      exemplar — with the exit-code contract unchanged, even when the
#      summary path is unwritable.
#
# Usage: serve_smoke.sh TMSD TMSQ LOADGEN TMSC TMSTOP LOOPS_DIR
set -u

if [ "$#" -ne 6 ]; then
  echo "usage: $0 TMSD TMSQ LOADGEN TMSC TMSTOP LOOPS_DIR" >&2
  exit 2
fi
TMSD=$1 TMSQ=$2 LOADGEN=$3 TMSC=$4 TMSTOP=$5 LOOPS_DIR=$6

# Relative workdir: ctest runs from the build tree, and a short relative
# socket path sidesteps the ~108-byte sun_path limit no matter how deep
# the build directory is.
WORK=$(mktemp -d serve_smoke.XXXXXX) || exit 1
DAEMON_PID=""
TMSTOP_PID=""

fail=0
note() { echo "serve_smoke: $*"; }
flunk() {
  echo "serve_smoke: FAIL: $*" >&2
  fail=1
}

cleanup() {
  if [ -n "$TMSTOP_PID" ] && kill -0 "$TMSTOP_PID" 2>/dev/null; then
    kill -KILL "$TMSTOP_PID" 2>/dev/null
    wait "$TMSTOP_PID" 2>/dev/null
  fi
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -KILL "$DAEMON_PID" 2>/dev/null
    wait "$DAEMON_PID" 2>/dev/null
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

start_daemon() {  # start_daemon SOCKET LOG [extra tmsd flags...]
  local socket=$1 log=$2
  shift 2
  "$TMSD" --socket "$socket" --counters "$@" >"$log" 2>&1 &
  DAEMON_PID=$!
  # Readiness: the daemon prints its listening line before the first
  # accept, but polling with --ping also proves the accept loop is up.
  for _ in $(seq 1 100); do
    if "$TMSQ" --socket "$socket" --ping --timeout-ms 2000 >/dev/null 2>&1; then
      return 0
    fi
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
      flunk "daemon died during startup; log follows"
      cat "$log" >&2
      DAEMON_PID=""
      return 1
    fi
    sleep 0.1
  done
  flunk "daemon never became ready"
  return 1
}

stop_daemon() {  # stop_daemon LOG — SIGTERM drain must exit 0
  local log=$1
  kill -TERM "$DAEMON_PID" 2>/dev/null
  wait "$DAEMON_PID"
  local code=$?
  DAEMON_PID=""
  if [ "$code" -ne 0 ]; then
    flunk "SIGTERM drain exited $code (want 0); log follows"
    cat "$log" >&2
    return 1
  fi
  if ! grep -q "drained" "$log"; then
    flunk "drain message missing from daemon log"
    return 1
  fi
  return 0
}

# ---------------------------------------------------------------- phase 1+2+3
SOCKET="$WORK/d.sock"
LOG="$WORK/tmsd.log"
SLOWLOG="$WORK/slow.jsonl"
METRICS="$WORK/metrics.prom"
note "starting tmsd on $SOCKET"
start_daemon "$SOCKET" "$LOG" --threads 4 --cache-dir "$WORK/cache" \
  --slow-ms 0 --slow-log "$SLOWLOG" --metrics-dump "$METRICS" || exit 1

note "checking remote == local for every example loop"
loops=0
for loop in "$LOOPS_DIR"/*.loop; do
  [ -e "$loop" ] || continue
  loops=$((loops + 1))
  if ! "$TMSQ" --socket "$SOCKET" "$loop" --quiet >"$WORK/remote.txt" 2>&1; then
    flunk "tmsq failed on $loop: $(cat "$WORK/remote.txt")"
    continue
  fi
  # tmsc prints a TMS-thresholds banner before the flat rendering; the
  # schedule body must match byte for byte.
  "$TMSC" "$loop" --render flat | grep -v "^TMS thresholds:" >"$WORK/local.txt"
  if ! diff -u "$WORK/local.txt" "$WORK/remote.txt" >"$WORK/diff.txt"; then
    flunk "remote schedule differs from local for $loop"
    cat "$WORK/diff.txt" >&2
  fi
done
if [ "$loops" -eq 0 ]; then
  flunk "no .loop files found in $LOOPS_DIR"
else
  note "verified $loops loops remote == local"
fi

note "request-id echo: the response must carry the client's id verbatim"
one_loop=$(ls "$LOOPS_DIR"/*.loop 2>/dev/null | head -n 1)
if [ -n "$one_loop" ]; then
  if ! "$TMSQ" --socket "$SOCKET" "$one_loop" --request-id smoke-req.1 \
       >"$WORK/echo.txt" 2>&1; then
    flunk "tmsq --request-id run failed: $(cat "$WORK/echo.txt")"
  elif ! grep -q "request_id=smoke-req.1" "$WORK/echo.txt"; then
    flunk "tmsq summary did not echo request_id=smoke-req.1"
    cat "$WORK/echo.txt" >&2
  fi
fi

note "tmsq --trace-out: summary written, ids echoed, exit codes unchanged"
if [ -n "$one_loop" ]; then
  "$TMSQ" --socket "$SOCKET" "$one_loop" --quiet --trace-out "$WORK/trace.json"
  code=$?
  if [ "$code" -ne 0 ]; then
    flunk "tmsq --trace-out changed the success exit code (got $code, want 0)"
  elif ! grep -q '"schema":"tmsq-trace-v1"' "$WORK/trace.json" 2>/dev/null; then
    flunk "tmsq --trace-out did not write a tmsq-trace-v1 summary"
  elif ! grep -q '"echoed":true' "$WORK/trace.json"; then
    flunk "server did not echo the minted trace id"
    cat "$WORK/trace.json" >&2
  else
    # --slow-ms 0 logs every request: the slow line for this request
    # must carry the same trace id as the client-side summary
    # (exemplar contract, docs/OBSERVABILITY.md).
    tid=$(grep -o '"trace_id":"[0-9a-f]*"' "$WORK/trace.json" | head -n 1)
    if [ -n "$tid" ] && ! grep -q "$tid" "$SLOWLOG"; then
      flunk "slow log does not carry the tmsq trace id $tid"
    fi
  fi
  # An unwritable --trace-out warns but must not change the exit code.
  if ! "$TMSQ" --socket "$SOCKET" "$one_loop" --quiet \
       --trace-out "$WORK/no-such-dir/trace.json" >/dev/null 2>&1; then
    flunk "unwritable --trace-out changed the success exit code"
  fi
fi

# tmstop watches the daemon for the whole load run (--count 0 ends
# cleanly when the daemon drains below); --expect-traffic makes it fail
# unless some consecutive snapshot pair shows the request counter move.
note "starting tmstop monitor against $SOCKET"
"$TMSTOP" --socket "$SOCKET" --interval-ms 100 --count 0 \
  --expect-traffic --no-clear >"$WORK/tmstop.txt" 2>&1 &
TMSTOP_PID=$!

note "load: 8 clients x 200 verified requests (+ STATS round-trips)"
if ! "$LOADGEN" --socket "$SOCKET" --clients 8 --requests 200 --verify \
     --expect-stats --json "$WORK/loadgen.json"; then
  flunk "loadgen --verify --expect-stats failed"
fi

# Give the monitor a couple more ticks so at least one snapshot pair
# straddles the load run before the daemon goes away.
sleep 0.5

note "draining with SIGTERM"
stop_daemon "$LOG"

# The monitor must exit 0: it saw traffic and ended on server close.
if ! wait "$TMSTOP_PID"; then
  flunk "tmstop exited non-zero; output follows"
  cat "$WORK/tmstop.txt" >&2
fi
if ! grep -q "rates/s: requests" "$WORK/tmstop.txt"; then
  flunk "tmstop never rendered a request rate between snapshots"
  cat "$WORK/tmstop.txt" >&2
fi

# --slow-ms 0 makes every request slow: the structured slow log must
# hold canonical tmsd-slow-v1 lines carrying the loadgen request ids.
if ! grep -q '"schema":"tmsd-slow-v1"' "$SLOWLOG" 2>/dev/null; then
  flunk "slow log missing tmsd-slow-v1 lines"
elif ! grep -q '"request_id":"lg-' "$SLOWLOG"; then
  flunk "slow log lines do not carry loadgen request ids"
fi

# Drain writes a final Prometheus dump; the serve latency histograms
# must be populated (promlint-level checks live in metrics_exposition).
if ! grep -q '^tms_serve_latency_total_count ' "$METRICS" 2>/dev/null; then
  flunk "metrics dump missing serve latency histogram"
fi

if [ -s "$WORK/loadgen.json" ]; then
  if ! grep -q '"server_stage_us"' "$WORK/loadgen.json"; then
    flunk "loadgen JSON report missing server_stage_us section"
  fi
else
  flunk "loadgen --json report was not written"
fi

# ------------------------------------------------------------------- phase 4
SOCKET2="$WORK/d2.sock"
LOG2="$WORK/tmsd2.log"
note "starting a 1-worker/1-slot tmsd for the backpressure check"
start_daemon "$SOCKET2" "$LOG2" --threads 1 --queue-capacity 1 --retry-after-ms 20 || exit 1

if ! "$LOADGEN" --socket "$SOCKET2" --clients 8 --requests 100 --verify \
     --max-retries 200 --expect-retry-after; then
  flunk "overload run failed (no RETRY_AFTER observed, or a request was lost)"
fi
stop_daemon "$LOG2"
# --counters dumps the registry on drain; the overload path must have
# been counted (loadgen already asserted it saw RETRY_AFTER answers).
if ! grep -q "serve.rejected_overload" "$LOG2"; then
  flunk "serve.rejected_overload row missing from the counter dump"
fi

if [ "$fail" -eq 0 ]; then
  note "PASS"
fi
exit "$fail"
