#include <gtest/gtest.h>

#include "ir/graph.hpp"
#include "sched/mii.hpp"
#include "test_util.hpp"
#include "workloads/figure1.hpp"

namespace tms::sched {
namespace {

using ir::Loop;
using ir::NodeId;
using ir::Opcode;

TEST(ResII, IssueWidthBound) {
  // 9 single-cycle integer adds on a 4-wide machine with 2 IALUs:
  // IALU bound ceil(9/2)=5 dominates issue bound ceil(9/4)=3.
  Loop loop("l");
  for (int i = 0; i < 9; ++i) loop.add_instr(Opcode::kIAdd);
  machine::MachineModel mach;
  EXPECT_EQ(res_ii(loop, mach), 5);
}

TEST(ResII, MemoryPortBound) {
  Loop loop("l");
  for (int i = 0; i < 3; ++i) loop.add_instr(Opcode::kLoad);
  machine::MachineModel mach;
  EXPECT_EQ(res_ii(loop, mach), 3);  // one memory port
}

TEST(ResII, OccupancyCounts) {
  Loop loop("l");
  loop.add_instr(Opcode::kFDiv);  // occupancy 12
  machine::MachineModel mach;
  EXPECT_EQ(res_ii(loop, mach), 12);
}

TEST(RecII, NoRecurrenceIsOne) {
  machine::MachineModel mach;
  EXPECT_EQ(rec_ii(test::tiny_chain(), mach), 1);
}

TEST(RecII, SelfLoopEqualsLatencyOverDistance) {
  machine::MachineModel mach;
  // fadd self-loop distance 1: RecII = 2.
  Loop loop("l");
  const NodeId a = loop.add_instr(Opcode::kFAdd);
  loop.add_reg_flow(a, a, 1);
  EXPECT_EQ(rec_ii(loop, mach), 2);
  // distance 2 halves it (ceil).
  Loop loop2("l2");
  const NodeId b = loop2.add_instr(Opcode::kFAdd);
  loop2.add_reg_flow(b, b, 2);
  EXPECT_EQ(rec_ii(loop2, mach), 1);
}

TEST(RecII, CircuitDelaySum) {
  machine::MachineModel mach;
  // fmul(4) -> fadd(2) -> iadd(1) -> back, distance 1: RecII = 7.
  Loop loop("l");
  const NodeId a = loop.add_instr(Opcode::kFMul);
  const NodeId b = loop.add_instr(Opcode::kFAdd);
  const NodeId c = loop.add_instr(Opcode::kIAdd);
  loop.add_reg_flow(a, b, 0);
  loop.add_reg_flow(b, c, 0);
  loop.add_reg_flow(c, a, 1);
  EXPECT_EQ(rec_ii(loop, mach), 7);
}

TEST(RecII, DistanceDividesDelay) {
  machine::MachineModel mach;
  // Same circuit closed with distance 2: RecII = ceil(7/2) = 4.
  Loop loop("l");
  const NodeId a = loop.add_instr(Opcode::kFMul);
  const NodeId b = loop.add_instr(Opcode::kFAdd);
  const NodeId c = loop.add_instr(Opcode::kIAdd);
  loop.add_reg_flow(a, b, 0);
  loop.add_reg_flow(b, c, 0);
  loop.add_reg_flow(c, a, 2);
  EXPECT_EQ(rec_ii(loop, mach), 4);
}

TEST(RecII, SubsetRestrictsEdges) {
  machine::MachineModel mach;
  // Two disjoint self-loops with different latencies.
  Loop loop("l");
  const NodeId a = loop.add_instr(Opcode::kFMul);  // RecII 4
  const NodeId b = loop.add_instr(Opcode::kFAdd);  // RecII 2
  loop.add_reg_flow(a, a, 1);
  loop.add_reg_flow(b, b, 1);
  EXPECT_EQ(rec_ii(loop, mach), 4);
  std::vector<bool> only_b(2, false);
  only_b[static_cast<std::size_t>(b)] = true;
  EXPECT_EQ(rec_ii_subset(loop, mach, only_b), 2);
}

TEST(MinII, IsMaxOfComponents) {
  machine::MachineModel mach;
  for (std::uint64_t seed = 50; seed < 70; ++seed) {
    const Loop loop = test::random_loop(seed);
    EXPECT_EQ(min_ii(loop, mach), std::max(res_ii(loop, mach), rec_ii(loop, mach)));
  }
}

TEST(Feasibility, MonotoneInII) {
  machine::MachineModel mach;
  for (std::uint64_t seed = 70; seed < 85; ++seed) {
    const Loop loop = test::random_loop(seed);
    const int r = rec_ii(loop, mach);
    if (r > 1) EXPECT_FALSE(recurrences_feasible(loop, mach, r - 1));
    EXPECT_TRUE(recurrences_feasible(loop, mach, r));
    EXPECT_TRUE(recurrences_feasible(loop, mach, r + 3));
  }
}

TEST(Figure1, ExampleMiiValues) {
  const Loop loop = workloads::figure1_loop();
  const machine::MachineModel mach = workloads::figure1_machine();
  EXPECT_EQ(res_ii(loop, mach), 4);  // non-pipelined 4-cycle multiply
  EXPECT_EQ(rec_ii(loop, mach), 8);  // circuit n0..n5 closed by a zero-delay speculated dep
  EXPECT_EQ(min_ii(loop, mach), 8);
}

TEST(RecII, AntiAndOutputDelays) {
  machine::MachineModel mach;
  // Anti dependence cycle: a reads, b writes (delay 0), b -> a flow d1.
  Loop loop("l");
  const NodeId a = loop.add_instr(Opcode::kIAdd);
  const NodeId b = loop.add_instr(Opcode::kIAdd);
  loop.add_dep(a, b, ir::DepKind::kRegister, ir::DepType::kAnti, 0);
  loop.add_reg_flow(b, a, 1);
  // Circuit delay = 0 (anti) + 1 (b's latency) = 1, distance 1.
  EXPECT_EQ(rec_ii(loop, mach), 1);
}

}  // namespace
}  // namespace tms::sched
