#include <gtest/gtest.h>

#include "cost/cost_model.hpp"

namespace tms::cost {
namespace {

class CostTest : public ::testing::Test {
 protected:
  machine::SpmtConfig cfg;  // ncore=4, C_spn=3, C_ci=2, C_inv=15, C_reg_com=3
};

TEST_F(CostTest, ThreadLowerBound) {
  // T_lb = II + C_ci + max(C_spn, C_delay).
  EXPECT_DOUBLE_EQ(thread_lower_bound(8, 4, cfg), 8 + 2 + 4);
  EXPECT_DOUBLE_EQ(thread_lower_bound(8, 1, cfg), 8 + 2 + 3);  // spawn dominates
}

TEST_F(CostTest, PerIterSerialDominates) {
  // Large C_delay: threads serialise at C_delay per iteration.
  EXPECT_DOUBLE_EQ(per_iter_nomiss(8, 20, cfg), 20.0);
}

TEST_F(CostTest, PerIterThroughputDominates) {
  // Small C_delay, large II: cores bound the rate at T_lb / ncore.
  EXPECT_DOUBLE_EQ(per_iter_nomiss(40, 4, cfg), (40 + 2 + 4) / 4.0);
}

TEST_F(CostTest, PerIterFloorsAtSpawnCommit) {
  machine::SpmtConfig many = cfg;
  many.ncore = 64;
  EXPECT_DOUBLE_EQ(per_iter_nomiss(4, 1, many), 3.0);  // C_spn floor
}

TEST_F(CostTest, TNomissScalesWithN) {
  EXPECT_DOUBLE_EQ(t_nomiss(8, 20, cfg, 100), 2000.0);
}

TEST_F(CostTest, MonotoneInIIAndCDelay) {
  for (int ii = 2; ii < 40; ++ii) {
    EXPECT_LE(per_iter_nomiss(ii, 5, cfg), per_iter_nomiss(ii + 1, 5, cfg));
  }
  for (int cd = 4; cd < 40; ++cd) {
    EXPECT_LE(per_iter_nomiss(10, cd, cfg), per_iter_nomiss(10, cd + 1, cfg));
  }
}

TEST_F(CostTest, MisspecPenalty) {
  // II + C_inv - max(0, C_delay - C_spn).
  EXPECT_DOUBLE_EQ(misspec_penalty(10, 4, cfg), 10 + 15 - 1);
  EXPECT_DOUBLE_EQ(misspec_penalty(10, 2, cfg), 10 + 15);  // no gain when C_delay < C_spn
}

TEST_F(CostTest, TMisspecScalesWithProbability) {
  EXPECT_DOUBLE_EQ(t_mis_spec(10, 3, 0.0, cfg, 1000), 0.0);
  EXPECT_DOUBLE_EQ(t_mis_spec(10, 3, 0.5, cfg, 1000), 25 * 0.5 * 1000);
}

TEST_F(CostTest, EstimateIsSumOfComponents) {
  const double t = estimate_execution_time(10, 5, 0.1, cfg, 500);
  EXPECT_DOUBLE_EQ(t, t_nomiss(10, 5, cfg, 500) + t_mis_spec(10, 5, 0.1, cfg, 500));
}

TEST_F(CostTest, NcoreScalingHelps) {
  machine::SpmtConfig two = cfg;
  two.ncore = 2;
  EXPECT_GT(per_iter_nomiss(40, 4, two), per_iter_nomiss(40, 4, cfg));
}

}  // namespace
}  // namespace tms::cost
