// Cross-cutting property sweeps over seeded random loop families: the
// invariants every stage of the pipeline must hold for *any* loop, not
// just the curated workloads.
#include <gtest/gtest.h>

#include "codegen/kernel_program.hpp"
#include "ir/graph.hpp"
#include "ir/textio.hpp"
#include "ir/unroll.hpp"
#include "sched/ims.hpp"
#include "sched/mii.hpp"
#include "sched/postpass.hpp"
#include "sched/sms.hpp"
#include "sched/tms.hpp"
#include "spmt/address.hpp"
#include "spmt/reference.hpp"
#include "spmt/sim.hpp"
#include "test_util.hpp"

namespace tms {
namespace {

class PropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
};

TEST_P(PropertyTest, KernelDistancesNeverNegative) {
  // Thread order must follow program order for every dependence: a
  // negative kernel distance would mean an instance consuming a value
  // from a *more speculative* thread, which no hardware could commit.
  const ir::Loop loop = test::random_loop(GetParam());
  const auto sms = sched::sms_schedule(loop, mach);
  const auto tms = sched::tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(sms.has_value());
  ASSERT_TRUE(tms.has_value());
  for (const sched::Schedule* schedule : {&sms->schedule, &tms->schedule}) {
    for (const ir::DepEdge& e : loop.deps()) {
      EXPECT_GE(schedule->kernel_distance(e), 0)
          << loop.instr(e.src).name << " -> " << loop.instr(e.dst).name;
    }
  }
}

TEST_P(PropertyTest, KernelOpsIssueInProgramOrderPerRow) {
  // codegen's same-row ordering guarantee: within one row, older-stage
  // (older source iteration) instances first.
  const ir::Loop loop = test::random_loop(GetParam());
  const auto r = sched::tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(r.has_value());
  const auto kp = codegen::lower_kernel(r->schedule, cfg);
  for (std::size_t i = 1; i < kp.ops.size(); ++i) {
    const auto& a = kp.ops[i - 1];
    const auto& b = kp.ops[i];
    ASSERT_LE(a.row, b.row);
    if (a.row == b.row) {
      EXPECT_GE(a.stage, b.stage) << "same-row instances must be oldest-first";
    }
  }
}

TEST_P(PropertyTest, CommPairsNeverExceedRegDeps) {
  // Channel dedup: the plan never sends more values than there are
  // cross-thread dependences, and at least one pair per producer.
  const ir::Loop loop = test::random_loop(GetParam());
  const auto r = sched::sms_schedule(loop, mach);
  ASSERT_TRUE(r.has_value());
  const sched::CommPlan plan = sched::plan_communication(r->schedule);
  const auto regs = r->schedule.reg_dep_set();
  std::size_t consumers = 0;
  for (const auto& ch : plan.channels) consumers += ch.consumers.size();
  EXPECT_EQ(consumers, regs.size());
  EXPECT_LE(plan.channels.size(), regs.size());
  int max_dker = 0;
  for (const std::size_t ei : regs) {
    max_dker = std::max(max_dker, r->schedule.kernel_distance(loop.dep(ei)));
  }
  for (const auto& ch : plan.channels) {
    EXPECT_GE(ch.hops, 1);
    EXPECT_LE(ch.hops, max_dker);
  }
}

TEST_P(PropertyTest, GoldenRuleAcrossAllThreeSchedulers) {
  const ir::Loop loop = test::random_loop(GetParam());
  const spmt::AddressStreams streams = spmt::default_streams(loop, GetParam() ^ 0xFACE);
  const std::int64_t iters = 120;
  const spmt::ReferenceResult ref = spmt::run_reference(loop, streams, iters);

  auto check = [&](const sched::Schedule& s, const char* tag) {
    const auto kp = codegen::lower_kernel(s, cfg);
    spmt::SpmtOptions opts;
    opts.iterations = iters;
    opts.keep_memory = true;
    const auto sim = spmt::run_spmt(loop, kp, cfg, streams, opts);
    EXPECT_EQ(sim.value_fingerprint, ref.value_fingerprint) << tag;
  };
  const auto sms = sched::sms_schedule(loop, mach);
  const auto ims = sched::ims_schedule(loop, mach);
  const auto tms = sched::tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(sms.has_value() && ims.has_value() && tms.has_value());
  check(sms->schedule, "sms");
  check(ims->schedule, "ims");
  check(tms->schedule, "tms");
}

TEST_P(PropertyTest, TraceIsConsistentWithStats) {
  const ir::Loop loop = test::random_loop(GetParam());
  const auto r = sched::tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(r.has_value());
  const auto kp = codegen::lower_kernel(r->schedule, cfg);
  const spmt::AddressStreams streams = spmt::default_streams(loop, GetParam());
  spmt::SpmtOptions opts;
  opts.iterations = 150;
  opts.keep_memory = false;
  opts.collect_trace = true;
  const auto sim = spmt::run_spmt(loop, kp, cfg, streams, opts);
  ASSERT_EQ(static_cast<std::int64_t>(sim.trace.size()), sim.stats.threads_committed);
  std::int64_t sync = 0;
  std::int64_t extra_attempts = 0;
  std::int64_t prev_commit = 0;
  for (const auto& t : sim.trace) {
    EXPECT_LE(t.start, t.completion);
    EXPECT_LT(t.completion, t.commit_end);
    EXPECT_GE(t.commit_end, prev_commit);  // commits are sequential
    EXPECT_EQ(t.core, static_cast<int>(t.thread % cfg.ncore));
    prev_commit = t.commit_end;
    sync += t.sync_stall;
    extra_attempts += t.attempts - 1;
  }
  EXPECT_EQ(sync, sim.stats.sync_stall_cycles);
  EXPECT_EQ(extra_attempts, sim.stats.misspeculations);
  EXPECT_EQ(sim.trace.back().commit_end, sim.stats.total_cycles);
}

TEST_P(PropertyTest, SerialisationRoundTripsAndReschedulesIdentically) {
  const ir::Loop loop = test::random_loop(GetParam());
  auto parsed = ir::parse_loop_string(ir::serialise_loop(loop));
  ASSERT_TRUE(std::holds_alternative<ir::Loop>(parsed));
  const ir::Loop back = std::get<ir::Loop>(std::move(parsed));
  const auto a = sched::sms_schedule(loop, mach);
  const auto b = sched::sms_schedule(back, mach);
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(a->schedule.ii(), b->schedule.ii());
  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    EXPECT_EQ(a->schedule.slot(v), b->schedule.slot(v));
  }
}

TEST_P(PropertyTest, UnrolledLoopStillGolden) {
  const ir::Loop base = test::random_loop(GetParam());
  if (base.num_instrs() > 32) return;  // keep the sweep fast
  const ir::Loop loop = ir::unroll(base, 2);
  const auto r = sched::sms_schedule(loop, mach);
  ASSERT_TRUE(r.has_value());
  const spmt::AddressStreams streams = spmt::default_streams(loop, GetParam() + 5);
  const auto kp = codegen::lower_kernel(r->schedule, cfg);
  spmt::SpmtOptions opts;
  opts.iterations = 80;
  opts.keep_memory = true;
  const auto sim = spmt::run_spmt(loop, kp, cfg, streams, opts);
  const auto ref = spmt::run_reference(loop, streams, opts.iterations);
  EXPECT_EQ(sim.value_fingerprint, ref.value_fingerprint);
}

TEST_P(PropertyTest, MisspecFrequencyBoundedByModel) {
  // The simulator's misspeculation frequency cannot wildly exceed the
  // schedule's modelled P_M (collisions happen at most at the annotated
  // rates; preservation and timing can only reduce them). Allow
  // generous slack for burstiness and re-violation.
  const ir::Loop loop = test::random_loop(GetParam());
  const auto r = sched::tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(r.has_value());
  double p_all = 1.0;
  for (const ir::DepEdge& e : loop.deps()) {
    if (e.is_memory_flow() && e.distance >= 1) p_all *= 1.0 - e.probability;
  }
  const double p_ceiling = 1.0 - p_all;  // every mem dep violating every time
  const auto kp = codegen::lower_kernel(r->schedule, cfg);
  const spmt::AddressStreams streams = spmt::default_streams(loop, GetParam() + 9);
  spmt::SpmtOptions opts;
  opts.iterations = 400;
  opts.keep_memory = false;
  const auto sim = spmt::run_spmt(loop, kp, cfg, streams, opts);
  EXPECT_LE(sim.stats.misspec_frequency(),
            (opts.max_reexecutions + 1) * p_ceiling + 0.02);
}

TEST_P(PropertyTest, LadderReuseMatchesScratch) {
  // The workspace-recycling relaxation ladder (and its P_max sweep
  // dedup) claims to be *exactly* outcome-preserving. Hold it to that:
  // scheduling with ladder_reuse off runs every rung from freshly
  // constructed state, and everything observable — II, slots, chosen
  // thresholds, cost, even the attempt accounting — must be identical.
  const ir::Loop loop = test::random_loop(GetParam());
  sched::TmsOptions scratch;
  scratch.ladder_reuse = false;
  const auto fast = sched::tms_schedule(loop, mach, cfg);
  const auto slow = sched::tms_schedule(loop, mach, cfg, scratch);
  ASSERT_TRUE(fast.has_value() && slow.has_value());
  EXPECT_EQ(fast->schedule.ii(), slow->schedule.ii());
  EXPECT_EQ(fast->mii, slow->mii);
  EXPECT_EQ(fast->c_delay_threshold, slow->c_delay_threshold);
  EXPECT_EQ(fast->p_max, slow->p_max);
  EXPECT_EQ(fast->f_value, slow->f_value);
  EXPECT_EQ(fast->misspec_probability, slow->misspec_probability);
  EXPECT_EQ(fast->pairs_tried, slow->pairs_tried);
  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    EXPECT_EQ(fast->schedule.slot(v), slow->schedule.slot(v)) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest, ::testing::Range<std::uint64_t>(5000, 5040));

// ---- Edge cases that are not random -----------------------------------

TEST(EdgeCases, SingleIterationRun) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const ir::Loop loop = test::random_loop(42);
  const auto r = sched::sms_schedule(loop, mach);
  ASSERT_TRUE(r.has_value());
  const spmt::AddressStreams streams = spmt::default_streams(loop, 1);
  const auto kp = codegen::lower_kernel(r->schedule, cfg);
  spmt::SpmtOptions opts;
  opts.iterations = 1;
  opts.keep_memory = true;
  const auto sim = spmt::run_spmt(loop, kp, cfg, streams, opts);
  const auto ref = spmt::run_reference(loop, streams, 1);
  EXPECT_EQ(sim.value_fingerprint, ref.value_fingerprint);
  EXPECT_EQ(sim.stats.instances_executed, loop.num_instrs());
}

TEST(EdgeCases, FewerIterationsThanStages) {
  // Prologue/epilogue only: every thread runs a partial kernel.
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const ir::Loop loop = test::tiny_doall();
  const auto r = sched::sms_schedule(loop, mach);
  ASSERT_TRUE(r.has_value());
  const spmt::AddressStreams streams = spmt::default_streams(loop, 2);
  const auto kp = codegen::lower_kernel(r->schedule, cfg);
  for (const std::int64_t n : {1, 2, 3}) {
    if (n >= kp.stage_count) continue;
    spmt::SpmtOptions opts;
    opts.iterations = n;
    opts.keep_memory = true;
    const auto sim = spmt::run_spmt(loop, kp, cfg, streams, opts);
    const auto ref = spmt::run_reference(loop, streams, n);
    EXPECT_EQ(sim.value_fingerprint, ref.value_fingerprint) << "n=" << n;
  }
}

TEST(EdgeCases, SingleInstructionLoop) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  ir::Loop loop("one");
  loop.add_instr(ir::Opcode::kFAdd);
  const auto sms = sched::sms_schedule(loop, mach);
  const auto tms = sched::tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(sms.has_value() && tms.has_value());
  EXPECT_EQ(sms->schedule.ii(), 1);
}

TEST(EdgeCases, EightCoreConfig) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  cfg.ncore = 8;
  const ir::Loop loop = test::random_loop(77);
  const auto tms = sched::tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(tms.has_value());
  const spmt::AddressStreams streams = spmt::default_streams(loop, 3);
  const auto kp = codegen::lower_kernel(tms->schedule, cfg);
  spmt::SpmtOptions opts;
  opts.iterations = 200;
  opts.keep_memory = true;
  const auto sim = spmt::run_spmt(loop, kp, cfg, streams, opts);
  const auto ref = spmt::run_reference(loop, streams, opts.iterations);
  EXPECT_EQ(sim.value_fingerprint, ref.value_fingerprint);
}

}  // namespace
}  // namespace tms
