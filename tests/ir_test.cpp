#include <gtest/gtest.h>

#include "ir/graph.hpp"
#include "ir/loop.hpp"
#include "machine/machine.hpp"
#include "test_util.hpp"
#include "workloads/figure1.hpp"

namespace tms::ir {
namespace {

TEST(Loop, AddInstrAssignsSequentialIds) {
  Loop loop("l");
  EXPECT_EQ(loop.add_instr(Opcode::kIAdd), 0);
  EXPECT_EQ(loop.add_instr(Opcode::kFMul), 1);
  EXPECT_EQ(loop.num_instrs(), 2);
  EXPECT_EQ(loop.instr(1).op, Opcode::kFMul);
}

TEST(Loop, AutoNamesNodes) {
  Loop loop("l");
  const NodeId v = loop.add_instr(Opcode::kIAdd);
  EXPECT_EQ(loop.instr(v).name, "n0");
  const NodeId w = loop.add_instr(Opcode::kIAdd, "custom");
  EXPECT_EQ(loop.instr(w).name, "custom");
}

TEST(Loop, EdgesIndexedBothDirections) {
  Loop loop("l");
  const NodeId a = loop.add_instr(Opcode::kIAdd);
  const NodeId b = loop.add_instr(Opcode::kIAdd);
  const std::size_t e = loop.add_reg_flow(a, b, 0);
  ASSERT_EQ(loop.out_edges(a).size(), 1u);
  ASSERT_EQ(loop.in_edges(b).size(), 1u);
  EXPECT_EQ(loop.out_edges(a)[0], e);
  EXPECT_EQ(loop.in_edges(b)[0], e);
}

TEST(Loop, ValidateAcceptsWellFormed) {
  EXPECT_FALSE(test::tiny_recurrence().validate().has_value());
  EXPECT_FALSE(workloads::figure1_loop().validate().has_value());
}

TEST(Loop, ValidateRejectsEmpty) {
  Loop loop("empty");
  EXPECT_TRUE(loop.validate().has_value());
}

TEST(Loop, ValidateRejectsDistanceZeroCycle) {
  Loop loop("cyc");
  const NodeId a = loop.add_instr(Opcode::kIAdd);
  const NodeId b = loop.add_instr(Opcode::kIAdd);
  loop.add_reg_flow(a, b, 0);
  loop.add_reg_flow(b, a, 0);
  EXPECT_TRUE(loop.validate().has_value());
}

TEST(Loop, ValidateRejectsMemEdgeOnNonMemoryOps) {
  Loop loop("m");
  const NodeId a = loop.add_instr(Opcode::kIAdd);
  const NodeId b = loop.add_instr(Opcode::kIAdd);
  loop.add_dep(a, b, DepKind::kMemory, DepType::kFlow, 1, 0.5);
  EXPECT_TRUE(loop.validate().has_value());
}

TEST(Scc, SingleNodeNoSelfLoopIsTrivial) {
  Loop loop("l");
  loop.add_instr(Opcode::kIAdd);
  const SccResult scc = strongly_connected_components(loop);
  ASSERT_EQ(scc.num_components(), 1);
  EXPECT_TRUE(scc.is_trivial(0));
}

TEST(Scc, SelfLoopIsNonTrivial) {
  Loop loop("l");
  const NodeId a = loop.add_instr(Opcode::kIAdd);
  loop.add_reg_flow(a, a, 1);
  const SccResult scc = strongly_connected_components(loop);
  ASSERT_EQ(scc.num_components(), 1);
  EXPECT_FALSE(scc.is_trivial(0));
}

TEST(Scc, CycleDetectedAcrossDistance) {
  // a -> b (d0), b -> a (d1): one SCC of size 2.
  Loop loop("l");
  const NodeId a = loop.add_instr(Opcode::kIAdd);
  const NodeId b = loop.add_instr(Opcode::kIAdd);
  const NodeId c = loop.add_instr(Opcode::kIAdd);
  loop.add_reg_flow(a, b, 0);
  loop.add_reg_flow(b, a, 1);
  loop.add_reg_flow(b, c, 0);
  const SccResult scc = strongly_connected_components(loop);
  EXPECT_EQ(scc.num_components(), 2);
  EXPECT_TRUE(scc.same_component(a, b));
  EXPECT_FALSE(scc.same_component(a, c));
}

TEST(Scc, Figure1HasFourNontrivialSccs) {
  // Recurrence circuit {n0,n1,n2,n4,n5}, accumulators n6, n7, induction n8.
  const Loop loop = workloads::figure1_loop();
  EXPECT_EQ(count_nontrivial_sccs(loop), 4);
}

TEST(Topo, RespectsIntraIterationEdges) {
  const Loop loop = workloads::figure1_loop();
  const auto order = topo_order_intra(loop);
  std::vector<int> pos(static_cast<std::size_t>(loop.num_instrs()));
  for (std::size_t i = 0; i < order.size(); ++i) pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  for (const DepEdge& e : loop.deps()) {
    if (e.distance == 0) {
      EXPECT_LT(pos[static_cast<std::size_t>(e.src)], pos[static_cast<std::size_t>(e.dst)]);
    }
  }
}

TEST(Topo, CoversAllNodesExactlyOnce) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Loop loop = test::random_loop(seed);
    const auto order = topo_order_intra(loop);
    ASSERT_EQ(static_cast<int>(order.size()), loop.num_instrs());
    std::vector<bool> seen(order.size(), false);
    for (const NodeId v : order) {
      ASSERT_FALSE(seen[static_cast<std::size_t>(v)]);
      seen[static_cast<std::size_t>(v)] = true;
    }
  }
}

TEST(Ldp, SingleNodeEqualsItsLatency) {
  Loop loop("l");
  loop.add_instr(Opcode::kFMul);
  machine::MachineModel mach;
  EXPECT_EQ(longest_dependence_path(loop, mach.latencies(loop)),
            mach.latency(Opcode::kFMul));
}

TEST(Ldp, ChainSumsLatencies) {
  machine::MachineModel mach;
  const ir::Loop loop = test::tiny_chain();  // load(3) -> fadd(2)
  EXPECT_EQ(longest_dependence_path(loop, mach.latencies(loop)), 5);
}

TEST(Ldp, IgnoresInterIterationEdges) {
  machine::MachineModel mach;
  const ir::Loop loop = test::tiny_recurrence();  // load->acc, acc->acc d1
  EXPECT_EQ(longest_dependence_path(loop, mach.latencies(loop)), 5);
}

TEST(HeightsDepths, ChainValues) {
  machine::MachineModel mach;
  const ir::Loop loop = test::tiny_chain();
  const auto lat = mach.latencies(loop);
  const auto h = node_heights(loop, lat);
  const auto d = node_depths(loop, lat);
  EXPECT_EQ(h[0], 5);  // load: 3 + fadd 2 below it
  EXPECT_EQ(h[1], 2);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 3);  // after the load completes
}

TEST(HeightsDepths, HeightIsDepthPlusLatencyOnCriticalPath) {
  machine::MachineModel mach;
  for (std::uint64_t seed = 30; seed < 40; ++seed) {
    const Loop loop = test::random_loop(seed);
    const auto lat = mach.latencies(loop);
    const int ldp = longest_dependence_path(loop, lat);
    const auto h = node_heights(loop, lat);
    const auto d = node_depths(loop, lat);
    int best = 0;
    for (NodeId v = 0; v < loop.num_instrs(); ++v) {
      EXPECT_LE(d[static_cast<std::size_t>(v)] + h[static_cast<std::size_t>(v)], ldp);
      best = std::max(best, d[static_cast<std::size_t>(v)] + h[static_cast<std::size_t>(v)]);
    }
    EXPECT_EQ(best, ldp);
  }
}

}  // namespace
}  // namespace tms::ir
