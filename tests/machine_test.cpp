#include <gtest/gtest.h>

#include "machine/machine.hpp"
#include "machine/spmt_config.hpp"
#include "test_util.hpp"

namespace tms::machine {
namespace {

TEST(MachineModel, DefaultIsFourWide) {
  MachineModel m;
  EXPECT_EQ(m.issue_width(), 4);
  EXPECT_EQ(m.fu_count(ir::FuClass::kIAlu), 2);
  EXPECT_EQ(m.fu_count(ir::FuClass::kMem), 1);
}

TEST(MachineModel, LoadLatencyIsL1Hit) {
  MachineModel m;
  SpmtConfig cfg;
  EXPECT_EQ(m.latency(ir::Opcode::kLoad), cfg.l1d_hit);
}

TEST(MachineModel, DividesAreNonPipelined) {
  MachineModel m;
  EXPECT_GT(m.occupancy(ir::Opcode::kFDiv), 1);
  EXPECT_EQ(m.occupancy(ir::Opcode::kFDiv), m.latency(ir::Opcode::kFDiv));
  EXPECT_EQ(m.occupancy(ir::Opcode::kFMul), 1);
}

TEST(MachineModel, TimingOverride) {
  MachineModel m;
  m.set_timing(ir::Opcode::kFMul, {7, 7});
  EXPECT_EQ(m.latency(ir::Opcode::kFMul), 7);
  EXPECT_EQ(m.occupancy(ir::Opcode::kFMul), 7);
}

TEST(MachineModel, LatenciesVectorMatchesPerOpcode) {
  MachineModel m;
  const ir::Loop loop = test::tiny_chain();
  const auto lat = m.latencies(loop);
  ASSERT_EQ(lat.size(), 2u);
  EXPECT_EQ(lat[0], m.latency(ir::Opcode::kLoad));
  EXPECT_EQ(lat[1], m.latency(ir::Opcode::kFAdd));
}

TEST(SpmtConfig, Table1Defaults) {
  SpmtConfig cfg;
  EXPECT_EQ(cfg.ncore, 4);
  EXPECT_EQ(cfg.c_spn, 3);
  EXPECT_EQ(cfg.c_ci, 2);
  EXPECT_EQ(cfg.c_inv, 15);
  EXPECT_EQ(cfg.c_reg_com, 3);
  EXPECT_EQ(cfg.l2_miss, 80);
  cfg.check();  // must not abort
}

TEST(SpmtConfig, MinCDelayIsOnePlusComm) {
  SpmtConfig cfg;
  EXPECT_EQ(cfg.min_c_delay(), 4);
}

TEST(SpmtConfig, CommLatencyScalesWithHops) {
  SpmtConfig cfg;
  EXPECT_EQ(cfg.comm_latency(1), 3);
  EXPECT_EQ(cfg.comm_latency(3), 5);  // SEND + 3 hops + RECV
}

TEST(OpcodeInfo, FuClassesAndPredicates) {
  EXPECT_EQ(ir::fu_class(ir::Opcode::kLoad), ir::FuClass::kMem);
  EXPECT_EQ(ir::fu_class(ir::Opcode::kFMul), ir::FuClass::kFpMul);
  EXPECT_EQ(ir::fu_class(ir::Opcode::kSend), ir::FuClass::kComm);
  EXPECT_TRUE(ir::is_memory(ir::Opcode::kStore));
  EXPECT_FALSE(ir::is_memory(ir::Opcode::kIAdd));
  EXPECT_TRUE(ir::is_comm(ir::Opcode::kRecv));
  EXPECT_EQ(ir::to_string(ir::Opcode::kFAdd), "fadd");
}

}  // namespace
}  // namespace tms::machine
