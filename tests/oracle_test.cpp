// Differential-oracle tests (check/oracle): the SpMT simulation of every
// scheduled loop must agree with the sequential reference interpreter and
// satisfy the simulator's conservation laws — including through at least
// one run that actually exercises the misspeculation squash path.
#include <gtest/gtest.h>

#include "check/oracle.hpp"
#include "sched/sms.hpp"
#include "sched/tms.hpp"
#include "test_util.hpp"
#include "workloads/doacross.hpp"
#include "workloads/figure1.hpp"

namespace tms {
namespace {

TEST(Oracle, Figure1SmsAndTmsMatchReference) {
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel mach = workloads::figure1_machine();
  machine::SpmtConfig cfg;

  const auto sms = sched::sms_schedule(loop, mach);
  ASSERT_TRUE(sms.has_value());
  const auto sms_report = check::run_differential_oracle(loop, sms->schedule, cfg);
  EXPECT_TRUE(sms_report.ok()) << sms_report.to_string();

  const auto tms = sched::tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(tms.has_value());
  const auto tms_report = check::run_differential_oracle(loop, tms->schedule, cfg);
  EXPECT_TRUE(tms_report.ok()) << tms_report.to_string();
}

TEST(Oracle, DoacrossSuiteMatchesReference) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  check::OracleOptions opts;
  opts.iterations = 96;  // lucas has 102 instrs; keep the suite quick
  for (const workloads::SelectedLoop& sel : workloads::doacross_selected_loops()) {
    const auto tms = sched::tms_schedule(sel.loop, mach, cfg);
    ASSERT_TRUE(tms.has_value()) << sel.loop.name();
    const auto report = check::run_differential_oracle(sel.loop, tms->schedule, cfg, opts);
    EXPECT_TRUE(report.ok()) << sel.benchmark << "/" << sel.loop.name() << ":\n"
                             << report.to_string();
  }
}

TEST(Oracle, DoallLoopNeverMisspeculates) {
  // No memory dependences at all: communication still happens (an
  // iteration is pipelined across stages) but the squash path must stay
  // cold, and every conservation law must hold.
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const ir::Loop loop = test::tiny_doall();
  const auto sms = sched::sms_schedule(loop, mach);
  ASSERT_TRUE(sms.has_value());
  const auto report = check::run_differential_oracle(loop, sms->schedule, cfg);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.stats.misspeculations, 0);
}

TEST(Oracle, MisspeculationSquashPathStillMatchesReference) {
  // A speculated always-colliding dependence: the store sits at the end
  // of the iteration, the dependent load of the next iteration at the
  // start, so every younger thread reads stale memory and is squashed.
  // The committed state must still match the sequential reference
  // through the re-execution machinery, and every conservation law must
  // survive the squash path.
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  ir::Loop loop("squashy");
  const ir::NodeId st = loop.add_instr(ir::Opcode::kStore, "st");
  const ir::NodeId ld = loop.add_instr(ir::Opcode::kLoad, "ld");
  loop.add_mem_flow(st, ld, /*distance=*/1, /*probability=*/1.0);
  sched::Schedule s(loop, mach, 16);
  s.set_slot(st, 15);
  s.set_slot(ld, 0);
  ASSERT_FALSE(s.validate().has_value());
  ASSERT_EQ(s.speculated_deps(cfg).size(), 1u)
      << "dependence must be speculated for this test to bite";

  check::OracleOptions opts;
  opts.iterations = 200;
  opts.stream_seed = 7;
  const auto report = check::run_differential_oracle(loop, s, cfg, opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.stats.misspeculations, 0)
      << "squash path was not exercised; the test lost its teeth";
  EXPECT_GT(report.stats.squashed_cycles, 0);
}

TEST(Oracle, RandomLoopsAcrossCoreCounts) {
  machine::MachineModel mach;
  check::OracleOptions opts;
  opts.iterations = 64;
  for (std::uint64_t seed : {3u, 9u, 21u}) {
    const ir::Loop loop = test::random_loop(seed);
    for (int ncore : {2, 8}) {
      machine::SpmtConfig cfg;
      cfg.ncore = ncore;
      const auto tms = sched::tms_schedule(loop, mach, cfg);
      ASSERT_TRUE(tms.has_value()) << "seed " << seed;
      const auto report = check::run_differential_oracle(loop, tms->schedule, cfg, opts);
      EXPECT_TRUE(report.ok()) << "seed " << seed << " ncore " << ncore << ":\n"
                               << report.to_string();
    }
  }
}

TEST(Oracle, RandomLoopsHoldOnLegacyEngine) {
  // The oracle's invariants are engine-independent: the retained legacy
  // walker must keep passing the same randomized suite the (default)
  // event-driven engine runs, so the differential reference itself stays
  // trustworthy (docs/SIMULATOR.md).
  machine::MachineModel mach;
  check::OracleOptions opts;
  opts.iterations = 64;
  opts.engine = spmt::SimEngine::kLegacyStepper;
  for (std::uint64_t seed : {3u, 9u, 21u}) {
    const ir::Loop loop = test::random_loop(seed);
    for (int ncore : {2, 8}) {
      machine::SpmtConfig cfg;
      cfg.ncore = ncore;
      const auto tms = sched::tms_schedule(loop, mach, cfg);
      ASSERT_TRUE(tms.has_value()) << "seed " << seed;
      const auto report = check::run_differential_oracle(loop, tms->schedule, cfg, opts);
      EXPECT_TRUE(report.ok()) << "legacy seed " << seed << " ncore " << ncore << ":\n"
                               << report.to_string();
    }
  }
}

TEST(Oracle, EveryPolicyHoldsOnBothEngines) {
  // Semantics (memory image, fingerprint, stats conservation, trace
  // consistency against the policy's core map) are allocation-policy
  // independent: the oracle must pass under every policy, with the bus
  // term on, on both engines.
  machine::MachineModel mach;
  check::OracleOptions opts;
  opts.iterations = 64;
  const machine::AllocPolicy policies[] = {
      machine::AllocPolicy::kModulo, machine::AllocPolicy::kRoundRobinStride,
      machine::AllocPolicy::kLocality, machine::AllocPolicy::kDepDistance};
  for (std::uint64_t seed : {3u, 21u}) {
    const ir::Loop loop = test::random_loop(seed);
    for (const machine::AllocPolicy pol : policies) {
      machine::SpmtConfig cfg;
      cfg.ncore = 8;
      cfg.policy = pol;
      cfg.policy_stride = 3;
      cfg.policy_block = 2;
      cfg.bus_bytes_per_transfer = 8;
      const auto tms = sched::tms_schedule(loop, mach, cfg);
      ASSERT_TRUE(tms.has_value()) << "seed " << seed;
      for (const spmt::SimEngine engine :
           {spmt::SimEngine::kEventDriven, spmt::SimEngine::kLegacyStepper}) {
        opts.engine = engine;
        const auto report = check::run_differential_oracle(loop, tms->schedule, cfg, opts);
        EXPECT_TRUE(report.ok())
            << "seed " << seed << " policy " << static_cast<int>(pol) << " engine "
            << static_cast<int>(engine) << ":\n"
            << report.to_string();
      }
    }
  }
}

}  // namespace
}  // namespace tms
