# Binary-level determinism check: tmsbatch's --stable-json report and the
# canonical trace must be byte-identical across --jobs 1/2/8. Run as
#   cmake -DTMSBATCH=... -DLOOPS_DIR=... -DWORK_DIR=... -P trace_determinism.cmake
# by the trace_determinism ctest.
foreach(var TMSBATCH LOOPS_DIR WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

foreach(jobs 1 2 8)
  execute_process(
    COMMAND "${TMSBATCH}" "${LOOPS_DIR}/dotprod.loop" "${LOOPS_DIR}/stencil.loop"
            --schedulers sms,tms --simulate 50 --no-cache --stable-json
            --jobs ${jobs} --quiet
            --trace "${WORK_DIR}/trace${jobs}.json"
            --json "${WORK_DIR}/report${jobs}.json"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "tmsbatch --jobs ${jobs} failed (${rc}):\n${out}\n${err}")
  endif()
endforeach()

foreach(kind trace report)
  foreach(jobs 2 8)
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
              "${WORK_DIR}/${kind}1.json" "${WORK_DIR}/${kind}${jobs}.json"
      RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
          "${kind} JSON differs between --jobs 1 and --jobs ${jobs}; "
          "canonical output must be thread-count-invariant")
    endif()
  endforeach()
endforeach()

message(STATUS "trace + report JSON byte-identical across --jobs 1/2/8")
