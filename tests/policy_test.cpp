// The pluggable core-allocation policy subsystem (src/policy,
// docs/POLICY.md): iteration->core maps, policy-priced communication
// costs, the dominant-dependence-distance heuristic, the name codec, and
// the two identity contracts the rest of the tree leans on — the modulo
// policy with the bus off prices forwarding exactly like the pre-policy
// relay model, and default-policy configs mint byte-identical schedule
// cache keys and wire requests.
#include <gtest/gtest.h>

#include <string>
#include <variant>

#include "driver/schedule_cache.hpp"
#include "obs/counters.hpp"
#include "policy/policy.hpp"
#include "serve/message.hpp"
#include "test_util.hpp"

namespace tms {
namespace {

machine::SpmtConfig make_cfg(machine::AllocPolicy pol, int ncore = 8) {
  machine::SpmtConfig cfg;
  cfg.ncore = ncore;
  cfg.policy = pol;
  return cfg;
}

TEST(Policy, ModuloMapsIterationsRoundRobin) {
  const ir::Loop loop = test::tiny_recurrence();
  const machine::SpmtConfig cfg = make_cfg(machine::AllocPolicy::kModulo);
  const auto pol = policy::make_policy(cfg, loop);
  EXPECT_EQ(pol->kind(), machine::AllocPolicy::kModulo);
  EXPECT_TRUE(pol->uniform());
  for (std::int64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(pol->core_of(k), static_cast<int>(k % cfg.ncore));
  }
}

TEST(Policy, ModuloBusOffPricesLikeLegacyRelay) {
  // The pre-policy simulator charged d_ker * c_reg_com for a
  // distance-d_ker forward; the modulo policy must reproduce that
  // exactly when the bus term is off (the byte-identity contract).
  const ir::Loop loop = test::tiny_recurrence();
  const machine::SpmtConfig cfg = make_cfg(machine::AllocPolicy::kModulo);
  ASSERT_FALSE(cfg.bus_enabled());
  const auto pol = policy::make_policy(cfg, loop);
  for (int d = 0; d <= 6; ++d) {
    const policy::CommCost c = pol->comm_cost(d, /*k=*/17);
    if (d <= 0) {
      EXPECT_EQ(c.delay, 0);
      EXPECT_EQ(c.transfers, 0);
    } else {
      EXPECT_EQ(c.delay, static_cast<std::int64_t>(d) * cfg.c_reg_com);
      EXPECT_EQ(c.transfers, d);
    }
  }
}

TEST(Policy, RoundRobinStrideMapsAndPrices) {
  const ir::Loop loop = test::tiny_recurrence();
  machine::SpmtConfig cfg = make_cfg(machine::AllocPolicy::kRoundRobinStride);
  cfg.policy_stride = 3;
  const auto pol = policy::make_policy(cfg, loop);
  EXPECT_TRUE(pol->uniform());
  for (std::int64_t k = 0; k < 64; ++k) {
    EXPECT_EQ(pol->core_of(k), static_cast<int>((k * 3) % cfg.ncore));
  }
  // hops = (d * stride) mod ncore; 0 hops (same core) is free, otherwise
  // one ring traversal of that many hops plus the bus charge (off here).
  for (int d = 0; d <= 8; ++d) {
    const policy::CommCost c = pol->comm_cost(d, /*k=*/5);
    const int hops = d <= 0 ? 0 : (d * 3) % cfg.ncore;
    if (hops == 0) {
      EXPECT_EQ(c.delay, 0) << d;
      EXPECT_EQ(c.transfers, 0) << d;
    } else {
      EXPECT_EQ(c.delay, cfg.comm_latency(hops)) << d;
      EXPECT_EQ(c.transfers, 1) << d;
    }
  }
}

TEST(Policy, LocalityKeepsBlocksOnOneCore) {
  const ir::Loop loop = test::tiny_recurrence();
  machine::SpmtConfig cfg = make_cfg(machine::AllocPolicy::kLocality);
  cfg.policy_block = 4;
  const auto pol = policy::make_policy(cfg, loop);
  EXPECT_FALSE(pol->uniform());
  for (std::int64_t k = 0; k < 128; ++k) {
    EXPECT_EQ(pol->core_of(k), static_cast<int>((k / 4) % cfg.ncore));
  }
  // Inside a block a distance-1 forward never leaves the core.
  EXPECT_EQ(pol->comm_cost(1, /*k=*/2).delay, 0);
  EXPECT_EQ(pol->comm_cost(1, 2).transfers, 0);
  // Across the block boundary it is exactly one ring hop.
  const policy::CommCost edge = pol->comm_cost(1, /*k=*/4);
  EXPECT_EQ(edge.delay, cfg.comm_latency(1));
  EXPECT_EQ(edge.transfers, 1);
}

TEST(Policy, DominantDepDistancePicksMostFrequent) {
  ir::Loop loop("dom");
  const ir::NodeId a = loop.add_instr(ir::Opcode::kFAdd, "a");
  const ir::NodeId b = loop.add_instr(ir::Opcode::kFMul, "b");
  loop.add_reg_flow(a, b, 0);  // intra-iteration: ignored
  loop.add_reg_flow(a, a, 2);
  loop.add_reg_flow(b, b, 2);
  loop.add_reg_flow(b, a, 3);
  EXPECT_EQ(policy::dominant_dep_distance(loop), 2);
  // No cross-iteration dependence at all: fall back to 1.
  EXPECT_EQ(policy::dominant_dep_distance(test::tiny_doall()), 1);
}

TEST(Policy, DepDistanceMakesDominantDependenceOneHop) {
  // Blocking by the dominant distance D places producer iteration k-D on
  // the neighbouring core of iteration k's, for every k >= D.
  ir::Loop loop("dom4");
  const ir::NodeId a = loop.add_instr(ir::Opcode::kFAdd, "a");
  loop.add_reg_flow(a, a, 4);
  machine::SpmtConfig cfg = make_cfg(machine::AllocPolicy::kDepDistance);
  const auto pol = policy::make_policy(cfg, loop);
  EXPECT_FALSE(pol->uniform());
  for (std::int64_t k = 4; k < 200; ++k) {
    const policy::CommCost c = pol->comm_cost(4, k);
    EXPECT_EQ(c.delay, cfg.comm_latency(1)) << k;
    EXPECT_EQ(c.transfers, 1) << k;
  }
}

TEST(Policy, NameCodecRoundTrips) {
  const machine::AllocPolicy all[] = {
      machine::AllocPolicy::kModulo, machine::AllocPolicy::kRoundRobinStride,
      machine::AllocPolicy::kLocality, machine::AllocPolicy::kDepDistance};
  for (const machine::AllocPolicy p : all) {
    machine::AllocPolicy back;
    ASSERT_TRUE(policy::policy_from_string(policy::to_string(p), back));
    EXPECT_EQ(back, p);
  }
  machine::AllocPolicy out;
  EXPECT_FALSE(policy::policy_from_string("ring", out));
  EXPECT_FALSE(policy::policy_from_string("", out));
}

TEST(Policy, BusTransferCyclesScaleWithCoreCount) {
  machine::SpmtConfig cfg;
  EXPECT_FALSE(cfg.bus_enabled());
  EXPECT_EQ(cfg.bus_transfer_cycles(), 0);
  EXPECT_EQ(cfg.reg_comm_cycles(), cfg.c_reg_com);

  cfg.bus_bytes_per_transfer = 8;
  cfg.bus_bytes_per_cycle = 16;
  cfg.ncore = 4;
  EXPECT_EQ(cfg.bus_transfer_cycles(), 2);  // ceil(8*4/16)
  cfg.ncore = 32;
  EXPECT_EQ(cfg.bus_transfer_cycles(), 16);  // ceil(8*32/16)
  EXPECT_EQ(cfg.reg_comm_cycles(), cfg.c_reg_com + 16);
  EXPECT_EQ(cfg.min_c_delay(), 1 + cfg.c_reg_com + 16);
}

TEST(Policy, MakePolicyCountsInstances) {
  const ir::Loop loop = test::tiny_recurrence();
  const std::uint64_t before = obs::counters().policy_instances.value();
  const std::uint64_t nondefault_before = obs::counters().policy_nondefault.value();
  (void)policy::make_policy(make_cfg(machine::AllocPolicy::kModulo), loop);
  (void)policy::make_policy(make_cfg(machine::AllocPolicy::kLocality), loop);
  EXPECT_EQ(obs::counters().policy_instances.value(), before + 2);
  EXPECT_EQ(obs::counters().policy_nondefault.value(), nondefault_before + 1);
}

TEST(Policy, CacheKeyIsPolicyAndBusSensitiveButDefaultStable) {
  const ir::Loop loop = test::tiny_recurrence();
  const machine::MachineModel mach;
  machine::SpmtConfig def;
  const std::string base = driver::ScheduleCache::key_string(loop, mach, def, "tms");
  // A default config mints the pre-policy key text: no policy/bus lines.
  EXPECT_EQ(base.find("policy"), std::string::npos);
  EXPECT_EQ(base.find("bus"), std::string::npos);

  machine::SpmtConfig pol = def;
  pol.policy = machine::AllocPolicy::kLocality;
  pol.policy_block = 4;
  EXPECT_NE(driver::ScheduleCache::key_string(loop, mach, pol, "tms"), base);

  machine::SpmtConfig bus = def;
  bus.bus_bytes_per_transfer = 8;
  EXPECT_NE(driver::ScheduleCache::key_string(loop, mach, bus, "tms"), base);
  EXPECT_NE(driver::ScheduleCache::key(loop, mach, bus, "tms"),
            driver::ScheduleCache::key(loop, mach, def, "tms"));
}

TEST(Policy, RequestWireOmitsDefaultsAndRoundTrips) {
  serve::Request req;
  req.id = 7;
  req.loop = test::tiny_recurrence();
  const std::string plain = serve::serialise_request(req);
  EXPECT_EQ(plain.find("policy"), std::string::npos);
  EXPECT_EQ(plain.find("bus_"), std::string::npos);

  req.policy = machine::AllocPolicy::kDepDistance;
  req.policy_stride = 2;
  req.policy_block = 3;
  req.bus_bytes_per_transfer = 8;
  req.bus_bytes_per_cycle = 32;
  const std::string wire = serve::serialise_request(req);
  EXPECT_NE(wire.find("policy dep_distance"), std::string::npos);
  auto parsed = serve::parse_request(wire);
  const auto* back = std::get_if<serve::Request>(&parsed);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->policy, machine::AllocPolicy::kDepDistance);
  EXPECT_EQ(back->policy_stride, 2);
  EXPECT_EQ(back->policy_block, 3);
  EXPECT_EQ(back->bus_bytes_per_transfer, 8);
  EXPECT_EQ(back->bus_bytes_per_cycle, 32);
  EXPECT_EQ(serve::serialise_request(*back), wire);  // fixpoint

  auto bad = serve::parse_request("tmsq-request v1\nid 1\npolicy ring\nloop\n");
  EXPECT_NE(std::get_if<std::string>(&bad), nullptr);
}

}  // namespace
}  // namespace tms
