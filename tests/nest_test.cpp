#include <gtest/gtest.h>

#include "ir/graph.hpp"
#include "nest/loop_nest.hpp"
#include "test_util.hpp"
#include "workloads/doacross.hpp"

namespace tms::nest {
namespace {

class NestTest : public ::testing::Test {
 protected:
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
};

/// A DOALL-at-the-outer-level nest: no outer dependences at all.
LoopNest doall_outer_nest(std::int64_t inner_trips) {
  LoopNest nest;
  nest.name = "doall_outer";
  nest.inner = test::tiny_recurrence();  // inner loop itself is DOACROSS
  nest.inner_trips = inner_trips;
  return nest;
}

TEST_F(NestTest, SequentialIsBodyTimesTrips) {
  const LoopNest nest = doall_outer_nest(50);
  const NestEval ev = evaluate_nest(nest, mach, cfg, 20);
  EXPECT_EQ(ev.cycles_sequential, ev.thread_body_cycles * 20);
}

TEST_F(NestTest, IndependentOuterLoopPrefersOuterTls) {
  // Outer iterations are fully independent and the inner loop is a
  // serial recurrence (useless for inner parallelism): outer-TLS is the
  // only way to use the cores.
  const LoopNest nest = doall_outer_nest(50);
  const NestEval ev = evaluate_nest(nest, mach, cfg, 50);
  EXPECT_EQ(ev.best, Strategy::kOuterTls);
  EXPECT_EQ(ev.outer_c_delay, 0);
  EXPECT_EQ(ev.outer_misspeculations, 0);
  EXPECT_LT(ev.cycles_outer_tls, ev.cycles_sequential);
}

TEST_F(NestTest, SerialisingOuterDepHurtsOuterTls) {
  // An outer register dependence from the (late) accumulator to the
  // (early) load limits coarse-thread overlap to the dependence's span
  // of the body.
  LoopNest free_nest = doall_outer_nest(50);
  const NestEval free_ev = evaluate_nest(free_nest, mach, cfg, 50);

  LoopNest dep_nest = doall_outer_nest(50);
  dep_nest.outer_deps.push_back(OuterDep{1 /*acc*/, 0 /*load*/, ir::DepKind::kRegister, 1, 1.0});
  const NestEval dep_ev = evaluate_nest(dep_nest, mach, cfg, 50);

  EXPECT_GT(dep_ev.outer_c_delay, 0);
  EXPECT_GE(dep_ev.cycles_outer_tls, (18 * free_ev.cycles_outer_tls) / 10);
  EXPECT_LE(dep_ev.cycles_outer_tls, dep_ev.cycles_sequential);
}

TEST_F(NestTest, ParallelisableInnerLoopPrefersInnerTms) {
  // A pipelinable inner loop with an end-to-start outer dependence: the
  // inner level is where the usable parallelism is.
  auto sel = workloads::doacross_selected_loops();
  LoopNest nest;
  nest.name = "inner_wins";
  nest.inner = std::move(sel[4].loop);  // equake: good ILP+TLP inner loop
  nest.inner_trips = 400;               // long inner runs amortise fill/drain
  const auto topo = ir::topo_order_intra(nest.inner);
  nest.outer_deps.push_back(
      OuterDep{topo.back(), topo.front(), ir::DepKind::kRegister, 1, 1.0});
  const NestEval ev = evaluate_nest(nest, mach, cfg, 10);
  EXPECT_EQ(ev.best, Strategy::kInnerTms);
  EXPECT_LT(ev.cycles_inner_tms, ev.cycles_sequential);
}

TEST_F(NestTest, ShortInnerTripsFavourCoarseThreads) {
  // With very few inner iterations per outer iteration, the software
  // pipeline's fill/drain wipes out inner-TMS's advantage; independent
  // outer iterations then favour outer-TLS.
  auto sel = workloads::doacross_selected_loops();
  LoopNest nest;
  nest.name = "short_inner";
  nest.inner = std::move(sel[4].loop);
  nest.inner_trips = 6;
  const NestEval short_ev = evaluate_nest(nest, mach, cfg, 100);
  EXPECT_EQ(short_ev.best, Strategy::kOuterTls);
}

TEST_F(NestTest, SpeculativeOuterDepsCostMisspeculations) {
  LoopNest nest = doall_outer_nest(50);
  nest.inner = test::tiny_doall();
  nest.outer_deps.push_back(OuterDep{2 /*store*/, 0 /*load*/, ir::DepKind::kMemory, 1, 0.5});
  const NestEval half = evaluate_nest(nest, mach, cfg, 100);
  EXPECT_NEAR(half.outer_misspec_probability, 0.5, 1e-9);
  EXPECT_EQ(half.outer_misspeculations, 50);

  nest.outer_deps[0].probability = 0.02;
  const NestEval rare = evaluate_nest(nest, mach, cfg, 100);
  EXPECT_LT(rare.cycles_outer_tls, half.cycles_outer_tls);
}

TEST_F(NestTest, Deterministic) {
  const LoopNest nest = doall_outer_nest(30);
  const NestEval a = evaluate_nest(nest, mach, cfg, 40, 9);
  const NestEval b = evaluate_nest(nest, mach, cfg, 40, 9);
  EXPECT_EQ(a.cycles_inner_tms, b.cycles_inner_tms);
  EXPECT_EQ(a.cycles_outer_tls, b.cycles_outer_tls);
  EXPECT_EQ(a.best, b.best);
}

}  // namespace
}  // namespace tms::nest
