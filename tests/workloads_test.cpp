#include <gtest/gtest.h>

#include "ir/graph.hpp"
#include "sched/mii.hpp"
#include "workloads/builder.hpp"
#include "workloads/doacross.hpp"
#include "workloads/figure1.hpp"
#include "workloads/spec_suite.hpp"

namespace tms::workloads {
namespace {

TEST(Figure1, WellFormedWithExpectedStructure) {
  const ir::Loop loop = figure1_loop();
  EXPECT_FALSE(loop.validate().has_value());
  EXPECT_EQ(loop.num_instrs(), 9);
  int mem_edges = 0;
  for (const ir::DepEdge& e : loop.deps()) {
    if (e.kind == ir::DepKind::kMemory) ++mem_edges;
  }
  EXPECT_EQ(mem_edges, 3);  // n5 -> n0, n2, n3
}

TEST(Builder, HitsTargetSize) {
  for (std::uint64_t seed = 1; seed < 30; ++seed) {
    LoopShape s;
    s.target_instrs = 20 + static_cast<int>(seed % 30);
    s.seed = seed;
    const ir::Loop loop = build_loop(s);
    EXPECT_FALSE(loop.validate().has_value());
    // Builder may exceed by a store or chain tail, never by much.
    EXPECT_GE(loop.num_instrs(), s.target_instrs);
    EXPECT_LE(loop.num_instrs(), s.target_instrs + 4);
  }
}

TEST(Builder, RecCircuitSetsRecII) {
  machine::MachineModel mach;
  LoopShape s;
  s.target_instrs = 24;
  s.rec_circuit_delay = 12;
  s.rec_circuit_len = 4;
  s.mem_deps = 0;
  s.seed = 5;
  const ir::Loop loop = build_loop(s);
  // The main circuit dominates RecII; the builder hits the target within
  // the granularity of its opcode latencies.
  EXPECT_GE(sched::rec_ii(loop, mach), 9);
  EXPECT_LE(sched::rec_ii(loop, mach), 15);
}

TEST(Builder, DeterministicPerSeed) {
  LoopShape s;
  s.target_instrs = 25;
  s.seed = 77;
  const ir::Loop a = build_loop(s);
  const ir::Loop b = build_loop(s);
  ASSERT_EQ(a.num_instrs(), b.num_instrs());
  ASSERT_EQ(a.deps().size(), b.deps().size());
  for (std::size_t i = 0; i < a.deps().size(); ++i) {
    EXPECT_EQ(a.dep(i).src, b.dep(i).src);
    EXPECT_EQ(a.dep(i).dst, b.dep(i).dst);
    EXPECT_EQ(a.dep(i).distance, b.dep(i).distance);
  }
}

TEST(Builder, MemDepsNeverCloseCycles) {
  // Memory deps added by the builder must not inflate RecII beyond the
  // requested circuit (they are chosen acyclic).
  machine::MachineModel mach;
  for (std::uint64_t seed = 40; seed < 60; ++seed) {
    LoopShape s;
    s.target_instrs = 30;
    s.rec_circuit_delay = 0;
    s.mem_deps = 3;
    s.seed = seed;
    const ir::Loop loop = build_loop(s);
    // Only self-loops (induction/accumulators) contribute: RecII <= 4.
    EXPECT_LE(sched::rec_ii(loop, mach), 4);
  }
}

TEST(SpecSuite, ThirteenBenchmarks778Loops) {
  const auto suite = spec_fp2000_suite();
  ASSERT_EQ(suite.size(), 13u);
  int total = 0;
  for (const auto& b : suite) total += b.n_loops;
  EXPECT_EQ(total, 778);  // the paper's loop population
}

TEST(SpecSuite, GeneratesCalibratedFamilies) {
  const auto suite = spec_fp2000_suite();
  for (const auto& spec : suite) {
    const auto loops = generate_benchmark(spec);
    ASSERT_EQ(static_cast<int>(loops.size()), spec.n_loops) << spec.name;
    double cov = 0.0;
    double avg_inst = 0.0;
    for (const auto& l : loops) {
      EXPECT_FALSE(l.validate().has_value());
      cov += l.coverage();
      avg_inst += l.num_instrs();
    }
    avg_inst /= static_cast<double>(loops.size());
    EXPECT_NEAR(cov, spec.coverage, 1e-9) << spec.name;
    EXPECT_GE(avg_inst, spec.inst_lo) << spec.name;
    EXPECT_LE(avg_inst, spec.inst_hi + 4) << spec.name;
  }
}

TEST(SpecSuite, DeterministicAcrossCalls) {
  const auto suite = spec_fp2000_suite();
  const auto a = generate_benchmark(suite[0]);
  const auto b = generate_benchmark(suite[0]);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].num_instrs(), b[i].num_instrs());
    EXPECT_EQ(a[i].deps().size(), b[i].deps().size());
  }
}

TEST(Doacross, SevenLoopsWithTable3Shapes) {
  machine::MachineModel mach;
  const auto sel = doacross_selected_loops();
  ASSERT_EQ(sel.size(), 7u);

  // art x4: 27 instrs, 3 SCCs, MII ~11.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sel[static_cast<std::size_t>(i)].benchmark, "art");
    const ir::Loop& l = sel[static_cast<std::size_t>(i)].loop;
    EXPECT_EQ(l.num_instrs(), 27);
    EXPECT_EQ(ir::count_nontrivial_sccs(l), 3);
    EXPECT_NEAR(sched::min_ii(l, mach), 11, 1);
  }
  // equake: 82 instrs, 3 SCCs, MII ~20.
  const ir::Loop& eq = sel[4].loop;
  EXPECT_EQ(sel[4].benchmark, "equake");
  EXPECT_EQ(eq.num_instrs(), 82);
  EXPECT_EQ(ir::count_nontrivial_sccs(eq), 3);
  EXPECT_NEAR(sched::min_ii(eq, mach), 20, 2);
  // lucas: 102 instrs, 8 SCCs, MII ~62 (recurrence-bound).
  const ir::Loop& lu = sel[5].loop;
  EXPECT_EQ(sel[5].benchmark, "lucas");
  EXPECT_EQ(lu.num_instrs(), 102);
  EXPECT_EQ(ir::count_nontrivial_sccs(lu), 8);
  EXPECT_NEAR(sched::min_ii(lu, mach), 62, 2);
  EXPECT_GT(sched::rec_ii(lu, mach), sched::res_ii(lu, mach));
  // fma3d: 72 instrs, 3 SCCs, MII ~18.
  const ir::Loop& fm = sel[6].loop;
  EXPECT_EQ(sel[6].benchmark, "fma3d");
  EXPECT_EQ(fm.num_instrs(), 72);
  EXPECT_EQ(ir::count_nontrivial_sccs(fm), 3);
  EXPECT_NEAR(sched::min_ii(fm, mach), 18, 1);
}

TEST(Doacross, LdpMatchesTable3) {
  machine::MachineModel mach;
  const auto sel = doacross_selected_loops();
  const auto ldp = [&](const ir::Loop& l) {
    return ir::longest_dependence_path(l, mach.latencies(l));
  };
  EXPECT_NEAR(ldp(sel[0].loop), 29, 4);
  EXPECT_NEAR(ldp(sel[4].loop), 26, 3);
  EXPECT_NEAR(ldp(sel[5].loop), 89, 4);
  EXPECT_NEAR(ldp(sel[6].loop), 34, 3);
}

TEST(Doacross, CoveragesMatchPaper) {
  const auto sel = doacross_selected_loops();
  double art = 0;
  for (int i = 0; i < 4; ++i) art += sel[static_cast<std::size_t>(i)].loop.coverage();
  EXPECT_NEAR(art, 0.216, 1e-9);
  EXPECT_NEAR(sel[4].loop.coverage(), 0.585, 1e-9);
  EXPECT_NEAR(sel[5].loop.coverage(), 0.334, 1e-9);
  EXPECT_NEAR(sel[6].loop.coverage(), 0.143, 1e-9);
}

}  // namespace
}  // namespace tms::workloads
