#include <gtest/gtest.h>

#include "spmt/address.hpp"
#include "test_util.hpp"
#include "workloads/figure1.hpp"

namespace tms::spmt {
namespace {

TEST(AddressStreams, StridedWrapsInSpan) {
  const auto fn = AddressStreams::strided(1000, 8, 64);
  EXPECT_EQ(fn(0), 1000u);
  EXPECT_EQ(fn(1), 1008u);
  EXPECT_EQ(fn(8), 1000u);  // wrapped
}

TEST(AddressStreams, DependentCollidesAtAnnotatedFrequency) {
  const auto prod = AddressStreams::strided(0, 8, 1 << 20);
  const auto priv = AddressStreams::strided(1 << 30, 8, 1 << 20);
  const double p = 0.25;
  const auto cons = AddressStreams::dependent(prod, 1, p, 99, priv);
  int collisions = 0;
  const int n = 20000;
  for (int i = 1; i <= n; ++i) {
    if (cons(i) == prod(i - 1)) ++collisions;
  }
  EXPECT_NEAR(static_cast<double>(collisions) / n, p, 0.02);
}

TEST(AddressStreams, DependentProbabilityOneAlwaysCollides) {
  const auto prod = AddressStreams::strided(0, 8, 1 << 20);
  const auto priv = AddressStreams::strided(1 << 30, 8, 1 << 20);
  const auto cons = AddressStreams::dependent(prod, 2, 1.0, 7, priv);
  for (int i = 2; i < 100; ++i) {
    EXPECT_EQ(cons(i), prod(i - 2));
  }
}

TEST(AddressStreams, DependentUsesPrivateBeforeDistance) {
  const auto prod = AddressStreams::strided(0, 8, 1 << 20);
  const auto priv = AddressStreams::strided(1 << 30, 8, 1 << 20);
  const auto cons = AddressStreams::dependent(prod, 3, 1.0, 7, priv);
  for (int i = 0; i < 3; ++i) {
    EXPECT_GE(cons(i), 1u << 30);
  }
}

TEST(AddressStreams, Deterministic) {
  const auto a = default_streams(workloads::figure1_loop(), 42);
  const auto b = default_streams(workloads::figure1_loop(), 42);
  const ir::Loop loop = workloads::figure1_loop();
  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    if (!ir::is_memory(loop.instr(v).op)) continue;
    for (int i = 0; i < 50; ++i) {
      ASSERT_EQ(a.address(v, i), b.address(v, i));
    }
  }
}

TEST(AddressStreams, SeedChangesLayout) {
  const ir::Loop loop = workloads::figure1_loop();
  const auto a = default_streams(loop, 1);
  const auto b = default_streams(loop, 2);
  bool any_diff = false;
  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    if (!ir::is_memory(loop.instr(v).op)) continue;
    if (a.address(v, 0) != b.address(v, 0)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(AddressStreams, EveryMemoryOpHasStream) {
  for (std::uint64_t seed = 300; seed < 320; ++seed) {
    const ir::Loop loop = test::random_loop(seed);
    const auto streams = default_streams(loop, seed);
    for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
      if (ir::is_memory(loop.instr(v).op)) {
        EXPECT_TRUE(streams.has(v));
      } else {
        EXPECT_FALSE(streams.has(v));
      }
    }
  }
}

TEST(AddressStreams, IndependentStreamsDisjoint) {
  // Streams of unrelated memory ops must never alias (1 MiB regions).
  const ir::Loop loop = test::tiny_doall();
  const auto streams = default_streams(loop, 5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(streams.address(0, i), streams.address(2, i));
  }
}

TEST(StreamHash, DeterministicAndSpread) {
  EXPECT_EQ(stream_hash(1, 2), stream_hash(1, 2));
  EXPECT_NE(stream_hash(1, 2), stream_hash(1, 3));
  EXPECT_NE(stream_hash(1, 2), stream_hash(2, 2));
}

}  // namespace
}  // namespace tms::spmt
