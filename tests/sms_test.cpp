#include <gtest/gtest.h>

#include "sched/mii.hpp"
#include "sched/mrt.hpp"
#include "sched/sms.hpp"
#include "test_util.hpp"
#include "workloads/figure1.hpp"

namespace tms::sched {
namespace {

/// Rebuilds an MRT from a complete schedule to verify no over-subscription.
void expect_no_resource_conflicts(const Schedule& s) {
  const ir::Loop& loop = s.loop();
  ModuloReservationTable mrt(s.machine(), s.ii());
  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    ASSERT_TRUE(mrt.can_place(loop.instr(v).op, s.slot(v)))
        << "resource conflict at node " << loop.instr(v).name;
    mrt.place(loop.instr(v).op, s.slot(v));
  }
}

TEST(Sms, SchedulesTinyChainAtMii) {
  machine::MachineModel mach;
  const ir::Loop loop = test::tiny_chain();
  const auto r = sms_schedule(loop, mach);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->schedule.ii(), min_ii(loop, mach));
  EXPECT_FALSE(r->schedule.validate().has_value());
}

TEST(Sms, SchedulesRecurrenceAtRecII) {
  machine::MachineModel mach;
  const ir::Loop loop = test::tiny_recurrence();
  const auto r = sms_schedule(loop, mach);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->schedule.ii(), 2);  // fadd self-loop
}

TEST(Sms, Figure1MatchesPaperShape) {
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel mach = workloads::figure1_machine();
  const auto r = sms_schedule(loop, mach);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->mii, 8);
  EXPECT_EQ(r->schedule.ii(), 8);  // schedulable at MII, matching the paper
  machine::SpmtConfig cfg;
  // The SMS pathology: lifetime-minimal placement of the accumulator
  // feeder makes C_delay land near II + C_reg_com.
  EXPECT_GE(r->schedule.c_delay(cfg), r->schedule.ii());
}

TEST(Sms, IiNeverBelowMii) {
  machine::MachineModel mach;
  for (std::uint64_t seed = 200; seed < 230; ++seed) {
    const ir::Loop loop = test::random_loop(seed);
    const auto r = sms_schedule(loop, mach);
    ASSERT_TRUE(r.has_value()) << "seed " << seed;
    EXPECT_GE(r->schedule.ii(), min_ii(loop, mach));
  }
}

TEST(Sms, StagesPositiveAndNormalised) {
  machine::MachineModel mach;
  const ir::Loop loop = test::tiny_doall();
  const auto r = sms_schedule(loop, mach);
  ASSERT_TRUE(r.has_value());
  EXPECT_GE(r->schedule.min_slot(), 0);
  EXPECT_GE(r->schedule.stage_count(), 1);
}

// Property sweep: on a broad seeded family, SMS produces valid,
// resource-feasible schedules with II close to MII.
class SmsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SmsProperty, ValidSchedule) {
  machine::MachineModel mach;
  const ir::Loop loop = test::random_loop(GetParam());
  const auto r = sms_schedule(loop, mach);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->schedule.validate().has_value());
  expect_no_resource_conflicts(r->schedule);
  EXPECT_GE(r->schedule.ii(), r->mii);
  // SMS is known to schedule nearly all loops close to MII; allow slack
  // for adversarial random DDGs.
  EXPECT_LE(r->schedule.ii(), 2 * r->mii + 16);
  EXPECT_GE(r->schedule.max_live(), 1);
}

INSTANTIATE_TEST_SUITE_P(RandomLoops, SmsProperty,
                         ::testing::Range<std::uint64_t>(1000, 1080));

}  // namespace
}  // namespace tms::sched
