#!/usr/bin/env bash
# End-to-end smoke for the tmsrouter sharded cluster (ISSUE acceptance,
# run in CI under TSan/ASan/UBSan):
#
#   1. topology: four real tmsd backends (each with its own cache and
#      all-to-all --peer wiring) behind one tmsrouter;
#   2. routed == local: tmsq --router output matches `tmsc --render
#      flat`, and the request_id echo survives the extra hop;
#   3. peer-fill: warm one backend directly, route the same loops
#      through the router — whichever shard owns them either has them
#      or fills from the warm sibling; the cluster-wide
#      serve.peer_fill_hits counter must move;
#   4. failover: kill -9 one backend mid-load — the prober ejects it,
#      in-flight and subsequent requests reroute, and the verified
#      loadgen run finishes with ZERO failed requests;
#   5. cluster telemetry: the router's merged Prometheus dump
#      (--cluster-metrics-dump, one sample set per shard="...") passes
#      promlint; with b1 dead, CLUSTER_STATS still answers and `tmstop
#      --cluster` renders 3/4 shards ok with the dead one UNREACHABLE;
#      SIGUSR2 makes b0 dump its flight ring as tmsd-flight-v1; when
#      tracing is compiled in, one `loadgen --cluster` run writes a
#      stitched Chrome trace (router spans parenting backend spans).
#      The trace, flight dump, and cluster exposition are copied to
#      ARTIFACT_DIR for CI upload;
#   6. drain: SIGTERM stops the router cleanly (exit 0) and the exit
#      summary shows the ejection.
#
# Usage: router_smoke.sh TMSD TMSROUTER TMSQ LOADGEN TMSC LOOPS_DIR \
#                        TMSTOP PROMLINT TRACE_ON ARTIFACT_DIR
set -u

if [ "$#" -ne 10 ]; then
  echo "usage: $0 TMSD TMSROUTER TMSQ LOADGEN TMSC LOOPS_DIR TMSTOP PROMLINT TRACE_ON ARTIFACT_DIR" >&2
  exit 2
fi
TMSD=$1 TMSROUTER=$2 TMSQ=$3 LOADGEN=$4 TMSC=$5 LOOPS_DIR=$6
TMSTOP=$7 PROMLINT=$8 TRACE_ON=$9 ARTIFACT_DIR=${10}

# Relative workdir: short socket paths sidestep the sun_path limit.
WORK=$(mktemp -d router_smoke.XXXXXX) || exit 1
BACKENDS=4
declare -a BACKEND_PIDS
ROUTER_PID=""

fail=0
note() { echo "router_smoke: $*"; }
flunk() {
  echo "router_smoke: FAIL: $*" >&2
  fail=1
}

cleanup() {
  if [ -n "$ROUTER_PID" ] && kill -0 "$ROUTER_PID" 2>/dev/null; then
    kill -KILL "$ROUTER_PID" 2>/dev/null
    wait "$ROUTER_PID" 2>/dev/null
  fi
  for pid in "${BACKEND_PIDS[@]:-}"; do
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
      kill -KILL "$pid" 2>/dev/null
      wait "$pid" 2>/dev/null
    fi
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_ready() {  # wait_ready SOCKET PID LOG
  local socket=$1 pid=$2 log=$3
  for _ in $(seq 1 100); do
    if "$TMSQ" --socket "$socket" --ping --timeout-ms 2000 >/dev/null 2>&1; then
      return 0
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
      flunk "process on $socket died during startup; log follows"
      cat "$log" >&2
      return 1
    fi
    sleep 0.1
  done
  flunk "$socket never became ready"
  return 1
}

# ------------------------------------------------------- phase 1: topology
note "starting $BACKENDS tmsd backends with all-to-all peer wiring"
for i in $(seq 0 $((BACKENDS - 1))); do
  peers=()
  for j in $(seq 0 $((BACKENDS - 1))); do
    [ "$j" -ne "$i" ] && peers+=(--peer "$WORK/b$j.sock")
  done
  extra=()
  # b0 carries the flight recorder under test: SIGUSR2 dumps its ring.
  [ "$i" -eq 0 ] && extra+=(--flight-dump "$WORK/flight-b0.json")
  "$TMSD" --socket "$WORK/b$i.sock" --threads 1 --counters \
    "${peers[@]}" "${extra[@]}" >"$WORK/b$i.log" 2>&1 &
  BACKEND_PIDS[$i]=$!
done
for i in $(seq 0 $((BACKENDS - 1))); do
  wait_ready "$WORK/b$i.sock" "${BACKEND_PIDS[$i]}" "$WORK/b$i.log" || exit 1
done

note "starting tmsrouter in front"
"$TMSROUTER" --socket "$WORK/router.sock" \
  --backend "$WORK/b0.sock" --backend "$WORK/b1.sock" \
  --backend "$WORK/b2.sock" --backend "$WORK/b3.sock" \
  --probe-interval-ms 100 --counters \
  --cluster-metrics-dump "$WORK/cluster.prom" >"$WORK/router.log" 2>&1 &
ROUTER_PID=$!
wait_ready "$WORK/router.sock" "$ROUTER_PID" "$WORK/router.log" || exit 1

# -------------------------------------------- phase 2: routed == local + id
note "checking routed == local for every example loop (+ id echo)"
loops=0
for loop in "$LOOPS_DIR"/*.loop; do
  [ -e "$loop" ] || continue
  loops=$((loops + 1))
  if ! "$TMSQ" --router "$WORK/router.sock" "$loop" --quiet \
       --request-id "rs-$loops" >"$WORK/remote.txt" 2>&1; then
    flunk "tmsq --router failed on $loop: $(cat "$WORK/remote.txt")"
    continue
  fi
  "$TMSC" "$loop" --render flat | grep -v "^TMS thresholds:" >"$WORK/local.txt"
  if ! diff -u "$WORK/local.txt" "$WORK/remote.txt" >"$WORK/diff.txt"; then
    flunk "routed schedule differs from local for $loop"
    cat "$WORK/diff.txt" >&2
  fi
done
if [ "$loops" -eq 0 ]; then
  flunk "no .loop files found in $LOOPS_DIR"
else
  note "verified $loops loops routed == local"
fi

# ------------------------------------------------------ phase 3: peer-fill
# Warm backend 0 directly with every example loop, then route the same
# loops through the router. Any loop whose ring owner is NOT backend 0
# misses locally and peer-fills from it.
note "peer-fill: warming b0 directly, then routing the same loops"
for loop in "$LOOPS_DIR"/*.loop; do
  [ -e "$loop" ] || continue
  "$TMSQ" --socket "$WORK/b0.sock" "$loop" --quiet >/dev/null 2>&1 \
    || flunk "direct warm of b0 failed on $loop"
done
for loop in "$LOOPS_DIR"/*.loop; do
  [ -e "$loop" ] || continue
  "$TMSQ" --router "$WORK/router.sock" "$loop" --quiet >/dev/null 2>&1 \
    || flunk "routed request failed on $loop"
done

# --------------------------------------------- phase 4: failover under load
note "load: 4 clients x 800 verified requests (paced ~1.5s), killing b1 mid-run"
"$LOADGEN" --socket "$WORK/router.sock" --clients 4 --requests 800 --qps 500 \
  --verify --json "$WORK/loadgen.json" >"$WORK/loadgen.txt" 2>&1 &
LOADGEN_PID=$!
sleep 0.4
note "kill -9 backend b1 (${BACKEND_PIDS[1]})"
kill -KILL "${BACKEND_PIDS[1]}" 2>/dev/null
wait "${BACKEND_PIDS[1]}" 2>/dev/null
BACKEND_PIDS[1]=""
if ! wait "$LOADGEN_PID"; then
  flunk "loadgen failed across the backend kill; output follows"
  cat "$WORK/loadgen.txt" >&2
fi
if grep -q '"failed":0' "$WORK/loadgen.json" 2>/dev/null; then
  note "zero failed requests across the kill"
else
  flunk "loadgen reported failed requests (want 0)"
  cat "$WORK/loadgen.json" >&2 || true
fi

# ----------------------------------------- phase 5: cluster telemetry
# 5a. CLUSTER_STATS keeps answering with b1 dead: wait for the prober
# to eject it, then `tmstop --cluster` must render 3/4 shards ok with
# the dead shard marked UNREACHABLE.
note "tmstop --cluster against the router with b1 dead"
ejected=0
for _ in $(seq 1 50); do
  if "$TMSTOP" --socket "$WORK/router.sock" --cluster --count 1 \
       >"$WORK/cluster.txt" 2>&1 && grep -q "shards 3/4 ok" "$WORK/cluster.txt"; then
    ejected=1
    break
  fi
  sleep 0.1
done
if [ "$ejected" -ne 1 ]; then
  flunk "tmstop --cluster never saw 3/4 shards ok; last output follows"
  cat "$WORK/cluster.txt" >&2
else
  grep -q "UNREACHABLE" "$WORK/cluster.txt" \
    || flunk "dead shard not rendered UNREACHABLE by tmstop --cluster"
  grep -q "aggregate: requests" "$WORK/cluster.txt" \
    || flunk "tmstop --cluster missing the aggregate line"
fi

# 5b. Merged cluster exposition: SIGUSR1 makes the router fan STATS to
# the live backends and write one per-shard-labelled dump, which must
# pass the shared exposition linter (per-labelset `le` checks).
note "SIGUSR1 router -> merged cluster exposition -> promlint"
kill -USR1 "$ROUTER_PID" 2>/dev/null
prom_ok=0
for _ in $(seq 1 50); do
  [ -s "$WORK/cluster.prom" ] && { prom_ok=1; break; }
  sleep 0.1
done
if [ "$prom_ok" -ne 1 ]; then
  flunk "router never wrote the cluster metrics dump"
else
  "$PROMLINT" "$WORK/cluster.prom" >"$WORK/promlint.txt" 2>&1 \
    || { flunk "promlint rejected the merged cluster dump"; cat "$WORK/promlint.txt" >&2; }
  grep -q 'shard="router"' "$WORK/cluster.prom" \
    || flunk "cluster dump missing the router's own shard=\"router\" samples"
  grep -q 'shard="'"$WORK"'/b0.sock"' "$WORK/cluster.prom" \
    || flunk "cluster dump missing per-backend shard labels"
fi

# 5c. Flight recorder: SIGUSR2 makes b0 dump its ring of recently
# completed requests as tmsd-flight-v1.
note "SIGUSR2 b0 -> flight dump"
kill -USR2 "${BACKEND_PIDS[0]}" 2>/dev/null
flight_ok=0
for _ in $(seq 1 50); do
  [ -s "$WORK/flight-b0.json" ] && { flight_ok=1; break; }
  sleep 0.1
done
if [ "$flight_ok" -ne 1 ]; then
  flunk "b0 never wrote the flight dump"
else
  grep -q '"schema":"tmsd-flight-v1"' "$WORK/flight-b0.json" \
    || flunk "flight dump missing the tmsd-flight-v1 schema tag"
  grep -q '"outcome":"ok"' "$WORK/flight-b0.json" \
    || flunk "flight dump has no completed-ok request record"
fi

# 5d. Stitched cluster trace (tracing builds only): one loadgen
# --cluster run writes a Chrome trace where router.forward legs parent
# the backends' serve.request spans.
if [ "$TRACE_ON" = "1" ]; then
  note "loadgen --cluster 4 --trace-out -> stitched Chrome trace"
  if ! "$LOADGEN" --cluster 4 --clients 4 --requests 60 \
       --trace-out "$WORK/cluster-trace.json" >"$WORK/trace-run.txt" 2>&1; then
    flunk "loadgen --cluster --trace-out failed; output follows"
    cat "$WORK/trace-run.txt" >&2
  else
    for span in router.request router.forward serve.request; do
      grep -q "\"$span\"" "$WORK/cluster-trace.json" \
        || flunk "stitched trace missing $span spans"
    done
    grep -q '"serve.peer_fill"' "$WORK/cluster-trace.json" \
      || flunk "stitched trace has no peer-fill span"
  fi
else
  note "tracing compiled out; skipping the stitched-trace phase"
fi

# Keep the telemetry artifacts where CI can upload them.
if [ -n "$ARTIFACT_DIR" ]; then
  mkdir -p "$ARTIFACT_DIR"
  for f in cluster.prom flight-b0.json cluster-trace.json; do
    [ -e "$WORK/$f" ] && cp "$WORK/$f" "$ARTIFACT_DIR/$f"
  done
  note "artifacts copied to $ARTIFACT_DIR"
fi

# ----------------------------------------------------------- phase 6: drain
note "draining the router with SIGTERM"
kill -TERM "$ROUTER_PID" 2>/dev/null
wait "$ROUTER_PID"
code=$?
ROUTER_PID=""
if [ "$code" -ne 0 ]; then
  flunk "router SIGTERM drain exited $code (want 0); log follows"
  cat "$WORK/router.log" >&2
fi
if ! grep -q "drained" "$WORK/router.log"; then
  flunk "drain message missing from router log"
fi
# The dead backend must show up ejected in the exit summary, and the
# ejection counter must have moved.
if ! grep -q "b1.sock: ejected" "$WORK/router.log"; then
  flunk "router exit summary does not show b1 ejected; log follows"
  cat "$WORK/router.log" >&2
fi
if ! grep -qE "router\.ejections +[1-9]" "$WORK/router.log"; then
  flunk "router.ejections counter did not move"
fi

# Backends drain cleanly too; their counter dumps carry the peer-fill
# evidence: at least one shard must have answered a PEEK with a hit.
note "draining the backends"
total_hits=0
for i in 0 2 3; do
  kill -TERM "${BACKEND_PIDS[$i]}" 2>/dev/null
  wait "${BACKEND_PIDS[$i]}"
  code=$?
  BACKEND_PIDS[$i]=""
  if [ "$code" -ne 0 ]; then
    flunk "backend b$i SIGTERM drain exited $code (want 0)"
    cat "$WORK/b$i.log" >&2
  fi
  hits=$(grep -oE "serve\.peer_fill_hits +[0-9]+" "$WORK/b$i.log" | grep -oE "[0-9]+$" || echo 0)
  total_hits=$((total_hits + ${hits:-0}))
done
if [ "$total_hits" -gt 0 ]; then
  note "peer-fill hits across surviving shards: $total_hits"
else
  flunk "no serve.peer_fill_hits anywhere (want > 0); backend logs follow"
  for i in 0 2 3; do cat "$WORK/b$i.log" >&2; done
fi

if [ "$fail" -eq 0 ]; then
  note "PASS"
fi
exit "$fail"
