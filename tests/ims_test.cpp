#include <gtest/gtest.h>

#include "sched/ims.hpp"
#include "sched/mii.hpp"
#include "sched/mrt.hpp"
#include "sched/sms.hpp"
#include "test_util.hpp"
#include "workloads/figure1.hpp"

namespace tms::sched {
namespace {

TEST(Ims, SchedulesTinyChainAtMii) {
  machine::MachineModel mach;
  const ir::Loop loop = test::tiny_chain();
  const auto r = ims_schedule(loop, mach);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->schedule.ii(), min_ii(loop, mach));
  EXPECT_FALSE(r->schedule.validate().has_value());
}

TEST(Ims, SchedulesFigure1) {
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel mach = workloads::figure1_machine();
  const auto r = ims_schedule(loop, mach);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->schedule.validate().has_value());
  EXPECT_GE(r->schedule.ii(), 8);
  EXPECT_LE(r->schedule.ii(), 10);
}

TEST(Ims, RecurrenceBound) {
  machine::MachineModel mach;
  const ir::Loop loop = test::tiny_recurrence();
  const auto r = ims_schedule(loop, mach);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->schedule.ii(), 2);
}

// Property sweep mirroring the SMS one: valid, resource-feasible
// schedules with II close to MII — plus a head-to-head II comparison
// with SMS (Codina et al.: SMS is the better heuristic on average, but
// both must stay close to MII).
class ImsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ImsProperty, ValidSchedule) {
  machine::MachineModel mach;
  const ir::Loop loop = test::random_loop(GetParam());
  const auto r = ims_schedule(loop, mach);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->schedule.validate().has_value());
  ModuloReservationTable mrt(mach, r->schedule.ii());
  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    ASSERT_TRUE(mrt.can_place(loop.instr(v).op, r->schedule.slot(v)));
    mrt.place(loop.instr(v).op, r->schedule.slot(v));
  }
  EXPECT_GE(r->schedule.ii(), r->mii);
  EXPECT_LE(r->schedule.ii(), 2 * r->mii + 16);
}

INSTANTIATE_TEST_SUITE_P(RandomLoops, ImsProperty,
                         ::testing::Range<std::uint64_t>(3000, 3050));

TEST(ImsVsSms, BothStayNearMiiOnAverage) {
  machine::MachineModel mach;
  double sum_ims = 0;
  double sum_sms = 0;
  int n = 0;
  for (std::uint64_t seed = 3100; seed < 3140; ++seed) {
    const ir::Loop loop = test::random_loop(seed);
    const auto ims = ims_schedule(loop, mach);
    const auto sms = sms_schedule(loop, mach);
    ASSERT_TRUE(ims.has_value() && sms.has_value());
    sum_ims += static_cast<double>(ims->schedule.ii()) / ims->mii;
    sum_sms += static_cast<double>(sms->schedule.ii()) / sms->mii;
    ++n;
  }
  EXPECT_LT(sum_ims / n, 2.2);
  EXPECT_LT(sum_sms / n, 2.2);
}

}  // namespace
}  // namespace tms::sched
