#include <gtest/gtest.h>

#include <set>
#include <string>
#include <variant>

#include "support/json.hpp"
#include "support/json_parse.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace tms::support {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int v = rng.uniform_int(-3, 9);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 9);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, SingletonRange) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, UniformDoubleMeanNearHalf) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceFrequencyMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkSeedProducesIndependentStreams) {
  Rng parent(23);
  Rng c1(parent.fork_seed());
  Rng c2(parent.fork_seed());
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat all;
  RunningStat a;
  RunningStat b;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_NEAR(a.min(), all.min(), 0.0);
  EXPECT_NEAR(a.max(), all.max(), 0.0);
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a;
  a.add(1.0);
  RunningStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Histogram, BucketsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i % 10 + 0.5);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.bucket_count(b), 10u);
  EXPECT_NEAR(h.quantile(0.5), 6.0, 1.01);
}

TEST(Histogram, OutOfRangeCounted) {
  Histogram h(0.0, 1.0, 4);
  h.add(-1.0);
  h.add(2.0);
  h.add(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::pct(12.3456, 1), "12.3%");
}

// ------------------------------------------------------------ JSON parse

const JsonValue* parse_ok(const std::string& text, std::variant<JsonValue, std::string>& hold) {
  hold = parse_json(text);
  const auto* v = std::get_if<JsonValue>(&hold);
  EXPECT_NE(v, nullptr) << text << " -> " << std::get<std::string>(hold);
  return v;
}

TEST(JsonParse, ScalarsArraysAndNestedObjects) {
  std::variant<JsonValue, std::string> hold{std::string()};
  const JsonValue* v = parse_ok(R"({"a":1,"b":[true,null,"x"],"c":{"d":-2.5e1}})", hold);
  ASSERT_NE(v, nullptr);
  ASSERT_TRUE(v->is_object());
  EXPECT_DOUBLE_EQ(v->find("a")->as_number(), 1.0);
  const JsonValue* b = v->find("b");
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->items().size(), 3u);
  EXPECT_TRUE(b->items()[0].as_bool());
  EXPECT_TRUE(b->items()[1].is_null());
  EXPECT_EQ(b->items()[2].as_string(), "x");
  EXPECT_DOUBLE_EQ(v->find_path("c.d")->as_number(), -25.0);
  EXPECT_EQ(v->find("nope"), nullptr);
  EXPECT_EQ(v->find_path("c.nope"), nullptr);
}

TEST(JsonParse, StringEscapesIncludingUnicode) {
  std::variant<JsonValue, std::string> hold{std::string()};
  const JsonValue* v = parse_ok(R"(["a\"b\\c\n\tAé"])", hold);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->items()[0].as_string(), "a\"b\\c\n\tA\xc3\xa9");
}

TEST(JsonParse, MembersPreserveInsertionOrder) {
  std::variant<JsonValue, std::string> hold{std::string()};
  const JsonValue* v = parse_ok(R"({"z":1,"a":2,"m":3})", hold);
  ASSERT_NE(v, nullptr);
  ASSERT_EQ(v->members().size(), 3u);
  EXPECT_EQ(v->members()[0].first, "z");
  EXPECT_EQ(v->members()[1].first, "a");
  EXPECT_EQ(v->members()[2].first, "m");
}

TEST(JsonParse, RoundTripsJsonWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.member("name", "tms");
  w.member("count", std::uint64_t{42});
  w.member("ratio", 0.125);
  w.key("list").begin_array().value(1).value(2).end_array();
  w.end_object();
  std::variant<JsonValue, std::string> hold{std::string()};
  const JsonValue* v = parse_ok(w.str(), hold);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->find("name")->as_string(), "tms");
  EXPECT_DOUBLE_EQ(v->find("count")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(v->find("ratio")->as_number(), 0.125);
  EXPECT_EQ(v->find("list")->items().size(), 2u);
}

TEST(JsonParse, StrictnessRejectsMalformedInput) {
  const std::vector<std::string> bad = {
      "",
      "{",
      "[1,]",
      "{\"a\":1,}",
      "{\"a\" 1}",
      "{\"a\":1} trailing",
      "01",
      "1.",
      "+1",
      "nul",
      "\"unterminated",
      "\"bad\\escape\"",
      "{\"dup\":1,\"dup\":2}",  // duplicate keys are an error by design
      "{1:2}",
  };
  for (const std::string& text : bad) {
    const auto parsed = parse_json(text);
    EXPECT_NE(std::get_if<std::string>(&parsed), nullptr) << "must reject: " << text;
  }
}

TEST(JsonParse, DepthIsBounded) {
  std::string deep;
  for (int i = 0; i < 70; ++i) deep += '[';
  deep += '1';
  for (int i = 0; i < 70; ++i) deep += ']';
  const auto parsed = parse_json(deep);
  EXPECT_NE(std::get_if<std::string>(&parsed), nullptr) << "70 levels must exceed the cap";

  std::string fine = "[[[[[[[[[[1]]]]]]]]]]";
  const auto ok = parse_json(fine);
  EXPECT_NE(std::get_if<JsonValue>(&ok), nullptr);
}

}  // namespace
}  // namespace tms::support
