#include <gtest/gtest.h>

#include "codegen/kernel_program.hpp"
#include "cost/cost_model.hpp"
#include "sched/sms.hpp"
#include "sched/tms.hpp"
#include "spmt/reference.hpp"
#include "spmt/sim.hpp"
#include "test_util.hpp"
#include "workloads/figure1.hpp"

namespace tms::spmt {
namespace {

/// The golden rule of speculative execution: the committed memory image
/// must equal the sequential semantics, and every committed value must
/// match the reference interpreter.
void expect_matches_reference(const ir::Loop& loop, const sched::Schedule& sched,
                              const machine::SpmtConfig& cfg, std::uint64_t stream_seed,
                              std::int64_t iters) {
  const AddressStreams streams = default_streams(loop, stream_seed);
  const auto kp = codegen::lower_kernel(sched, cfg);
  SpmtOptions opts;
  opts.iterations = iters;
  opts.keep_memory = true;
  const SpmtResult sim = run_spmt(loop, kp, cfg, streams, opts);
  const ReferenceResult ref = run_reference(loop, streams, iters);

  EXPECT_EQ(sim.value_fingerprint, ref.value_fingerprint) << "dataflow values diverged";
  ASSERT_EQ(sim.memory.size(), ref.memory.size());
  for (const auto& [addr, val] : ref.memory) {
    const auto it = sim.memory.find(addr);
    ASSERT_NE(it, sim.memory.end()) << "address missing from committed state";
    EXPECT_EQ(it->second, val) << "wrong committed value at address " << addr;
  }
}

class SimTest : public ::testing::Test {
 protected:
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
};

TEST_F(SimTest, GoldenRuleFigure1Sms) {
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel fm = workloads::figure1_machine();
  const auto r = sched::sms_schedule(loop, fm);
  ASSERT_TRUE(r.has_value());
  expect_matches_reference(loop, r->schedule, cfg, 42, 500);
}

TEST_F(SimTest, GoldenRuleFigure1Tms) {
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel fm = workloads::figure1_machine();
  const auto r = sched::tms_schedule(loop, fm, cfg);
  ASSERT_TRUE(r.has_value());
  expect_matches_reference(loop, r->schedule, cfg, 42, 500);
}

TEST_F(SimTest, GoldenRuleWithAggressiveProbabilities) {
  // High-probability memory dependences force real misspeculations; the
  // committed state must still be sequential.
  const ir::Loop loop = workloads::figure1_loop(/*mem_probability=*/0.8);
  const machine::MachineModel fm = workloads::figure1_machine();
  const auto r = sched::sms_schedule(loop, fm);
  ASSERT_TRUE(r.has_value());
  expect_matches_reference(loop, r->schedule, cfg, 7, 400);
}

TEST_F(SimTest, Deterministic) {
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel fm = workloads::figure1_machine();
  const auto r = sched::sms_schedule(loop, fm);
  ASSERT_TRUE(r.has_value());
  const auto kp = codegen::lower_kernel(r->schedule, cfg);
  const AddressStreams streams = default_streams(loop, 42);
  SpmtOptions opts;
  opts.iterations = 300;
  const auto a = run_spmt(loop, kp, cfg, streams, opts);
  const auto b = run_spmt(loop, kp, cfg, streams, opts);
  EXPECT_EQ(a.stats.total_cycles, b.stats.total_cycles);
  EXPECT_EQ(a.stats.sync_stall_cycles, b.stats.sync_stall_cycles);
  EXPECT_EQ(a.stats.misspeculations, b.stats.misspeculations);
  EXPECT_EQ(a.value_fingerprint, b.value_fingerprint);
}

TEST_F(SimTest, ThreadsCommittedCoversPipeline) {
  const ir::Loop loop = test::tiny_doall();
  const auto r = sched::sms_schedule(loop, mach);
  ASSERT_TRUE(r.has_value());
  const auto kp = codegen::lower_kernel(r->schedule, cfg);
  const AddressStreams streams = default_streams(loop, 1);
  SpmtOptions opts;
  opts.iterations = 100;
  const auto res = run_spmt(loop, kp, cfg, streams, opts);
  EXPECT_EQ(res.stats.threads_committed, 100 + kp.stage_count - 1);
  EXPECT_EQ(res.stats.instances_executed,
            static_cast<std::int64_t>(100) * loop.num_instrs());
}

TEST_F(SimTest, SpawnCommitFloorOnTrivialLoop) {
  // A loop with no cross-thread deps and no cache misses after warmup
  // approaches the cost model's floor: max(C_spn, C_ci, T_lb/ncore).
  ir::Loop loop("trivial");
  loop.add_instr(ir::Opcode::kIAdd);
  const auto r = sched::sms_schedule(loop, mach);
  ASSERT_TRUE(r.has_value());
  const auto kp = codegen::lower_kernel(r->schedule, cfg);
  const AddressStreams streams(loop.num_instrs());
  SpmtOptions opts;
  opts.iterations = 2000;
  opts.keep_memory = false;
  const auto res = run_spmt(loop, kp, cfg, streams, opts);
  const double per_iter =
      static_cast<double>(res.stats.total_cycles) / static_cast<double>(opts.iterations);
  const double floor = cost::per_iter_nomiss(r->schedule.ii(), 0, cfg);
  EXPECT_GE(per_iter, floor - 0.01);
  EXPECT_LE(per_iter, floor + 1.0);  // startup amortised over 2000 iterations
}

TEST_F(SimTest, SyncStallsTrackCDelay) {
  // On the figure-1 loop, the SMS schedule (C_delay ~ II+3) must stall
  // far more than the TMS schedule (C_delay ~ 5..7).
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel fm = workloads::figure1_machine();
  const auto s = sched::sms_schedule(loop, fm);
  const auto t = sched::tms_schedule(loop, fm, cfg);
  ASSERT_TRUE(s.has_value() && t.has_value());
  const AddressStreams streams = default_streams(loop, 42);
  SpmtOptions opts;
  opts.iterations = 1000;
  opts.keep_memory = false;
  const auto rs = run_spmt(loop, codegen::lower_kernel(s->schedule, cfg), cfg, streams, opts);
  const auto rt = run_spmt(loop, codegen::lower_kernel(t->schedule, cfg), cfg, streams, opts);
  EXPECT_LT(rt.stats.sync_stall_cycles, rs.stats.sync_stall_cycles);
  EXPECT_LT(rt.stats.total_cycles, rs.stats.total_cycles);
}

TEST_F(SimTest, MisspeculationsScaleWithProbability) {
  // Hand-built schedule whose speculated dependence is inter-thread and
  // unprotected: store at a late row, consumer load at row 0 of the next
  // thread, no synchronised dependences to preserve it. Threads spawn
  // C_spn apart, so the load overtakes the store whenever the addresses
  // collide — misspeculations must track the annotated probability.
  std::int64_t misses[2] = {0, 0};
  int idx = 0;
  for (const double p : {0.05, 0.6}) {
    ir::Loop loop("spec");
    const ir::NodeId st = loop.add_instr(ir::Opcode::kStore);
    const ir::NodeId ld = loop.add_instr(ir::Opcode::kLoad);
    loop.add_mem_flow(st, ld, 1, p);
    sched::Schedule s(loop, mach, 8);
    s.set_slot(st, 6);
    s.set_slot(ld, 0);
    ASSERT_FALSE(s.validate().has_value());
    ASSERT_EQ(s.mem_dep_set().size(), 1u);
    const AddressStreams streams = default_streams(loop, 21);
    SpmtOptions opts;
    opts.iterations = 1000;
    opts.keep_memory = true;
    const auto r = run_spmt(loop, codegen::lower_kernel(s, cfg), cfg, streams, opts);
    misses[idx++] = r.stats.misspeculations;
    // Squash/re-execute must still produce sequential semantics.
    const ReferenceResult ref = run_reference(loop, streams, opts.iterations);
    EXPECT_EQ(r.value_fingerprint, ref.value_fingerprint);
  }
  EXPECT_GT(misses[0], 0);
  EXPECT_GT(misses[1], misses[0]);
}

TEST_F(SimTest, DisableSpeculationRemovesMisspeculations) {
  const ir::Loop loop = workloads::figure1_loop(0.5);
  const machine::MachineModel fm = workloads::figure1_machine();
  const auto t = sched::sms_schedule(loop, fm);
  ASSERT_TRUE(t.has_value());
  const AddressStreams streams = default_streams(loop, 13);
  SpmtOptions opts;
  opts.iterations = 500;
  opts.keep_memory = true;
  opts.disable_speculation = true;
  const auto r = run_spmt(loop, codegen::lower_kernel(t->schedule, cfg), cfg, streams, opts);
  EXPECT_EQ(r.stats.misspeculations, 0);
  // Semantics must still hold.
  const ReferenceResult ref = run_reference(loop, streams, 500);
  EXPECT_EQ(r.value_fingerprint, ref.value_fingerprint);
}

TEST_F(SimTest, SendRecvPairsMatchPlan) {
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel fm = workloads::figure1_machine();
  const auto s = sched::sms_schedule(loop, fm);
  ASSERT_TRUE(s.has_value());
  const auto kp = codegen::lower_kernel(s->schedule, cfg);
  const AddressStreams streams = default_streams(loop, 42);
  SpmtOptions opts;
  opts.iterations = 100;
  opts.keep_memory = false;
  const auto r = run_spmt(loop, kp, cfg, streams, opts);
  // Steady-state threads each execute the plan's SEND/RECV pairs.
  const std::int64_t steady = opts.iterations - (kp.stage_count - 1);
  EXPECT_EQ(r.stats.send_recv_pairs, steady * kp.comm_pairs_per_iter);
}

TEST_F(SimTest, RingBackpressureBlocksSendsUnderTinyQueues) {
  // A producer at row 0 whose (next-thread) consumer sits at the end of
  // the kernel: the receive queue drains a full II after each send, but
  // threads spawn only C_spn apart, so values pile up in flight. With a
  // 2-entry ring queue the producer's SENDs must block; with a deep
  // queue they must not — and semantics hold either way.
  ir::Loop loop("bp");
  const ir::NodeId p = loop.add_instr(ir::Opcode::kIAdd, "p");
  const ir::NodeId c = loop.add_instr(ir::Opcode::kIAdd, "c");
  loop.add_reg_flow(p, p, 1);
  loop.add_reg_flow(p, c, 1);
  sched::Schedule s(loop, mach, 12);
  s.set_slot(p, 0);
  s.set_slot(c, 11);  // drains the queue 11 cycles into each thread
  ASSERT_FALSE(s.validate().has_value());
  const AddressStreams streams = default_streams(loop, 31);
  const auto kp = codegen::lower_kernel(s, cfg);
  SpmtOptions opts;
  opts.iterations = 400;
  opts.keep_memory = true;

  machine::SpmtConfig tiny = cfg;
  tiny.ring_queue_entries = 2;
  machine::SpmtConfig deep = cfg;
  deep.ring_queue_entries = 1024;

  const auto r_tiny = run_spmt(loop, kp, tiny, streams, opts);
  const auto r_deep = run_spmt(loop, kp, deep, streams, opts);
  EXPECT_GT(r_tiny.stats.send_block_cycles, 0);
  EXPECT_EQ(r_deep.stats.send_block_cycles, 0);
  EXPECT_GE(r_tiny.stats.total_cycles, r_deep.stats.total_cycles);
  const ReferenceResult ref = run_reference(loop, streams, opts.iterations);
  EXPECT_EQ(r_tiny.value_fingerprint, ref.value_fingerprint);
  EXPECT_EQ(r_deep.value_fingerprint, ref.value_fingerprint);
}

TEST_F(SimTest, DefaultQueueDepthDoesNotBindOnWellScheduledLoops) {
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel fm = workloads::figure1_machine();
  const auto t = sched::tms_schedule(loop, fm, cfg);
  ASSERT_TRUE(t.has_value());
  const AddressStreams streams = default_streams(loop, 42);
  SpmtOptions opts;
  opts.iterations = 500;
  opts.keep_memory = false;
  const auto r = run_spmt(loop, codegen::lower_kernel(t->schedule, cfg), cfg, streams, opts);
  EXPECT_EQ(r.stats.send_block_cycles, 0);
}

TEST_F(SimTest, GoldenRuleRandomLoops) {
  for (std::uint64_t seed = 500; seed < 515; ++seed) {
    const ir::Loop loop = test::random_loop(seed);
    const auto r = sched::sms_schedule(loop, mach);
    ASSERT_TRUE(r.has_value());
    expect_matches_reference(loop, r->schedule, cfg, seed, 200);
  }
}

TEST_F(SimTest, GoldenRuleRandomLoopsTms) {
  for (std::uint64_t seed = 520; seed < 530; ++seed) {
    const ir::Loop loop = test::random_loop(seed);
    const auto r = sched::tms_schedule(loop, mach, cfg);
    ASSERT_TRUE(r.has_value());
    expect_matches_reference(loop, r->schedule, cfg, seed, 150);
  }
}

}  // namespace
}  // namespace tms::spmt
