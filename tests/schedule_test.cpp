#include <gtest/gtest.h>

#include "sched/schedule.hpp"
#include "test_util.hpp"

namespace tms::sched {
namespace {

using ir::Loop;
using ir::NodeId;
using ir::Opcode;

class ScheduleTest : public ::testing::Test {
 protected:
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
};

TEST_F(ScheduleTest, RowsAndStages) {
  const Loop loop = test::tiny_chain();
  Schedule s(loop, mach, 4);
  s.set_slot(0, 0);
  s.set_slot(1, 9);
  EXPECT_EQ(s.row(0), 0);
  EXPECT_EQ(s.stage(0), 0);
  EXPECT_EQ(s.row(1), 1);
  EXPECT_EQ(s.stage(1), 2);
}

TEST_F(ScheduleTest, NegativeSlots) {
  const Loop loop = test::tiny_chain();
  Schedule s(loop, mach, 4);
  s.set_slot(0, -1);
  s.set_slot(1, -8);
  EXPECT_EQ(s.row(0), 3);
  EXPECT_EQ(s.stage(0), -1);
  EXPECT_EQ(s.row(1), 0);
  EXPECT_EQ(s.stage(1), -2);
}

TEST_F(ScheduleTest, NormaliseShiftsMinStageToZero) {
  const Loop loop = test::tiny_chain();
  Schedule s(loop, mach, 4);
  s.set_slot(0, -5);
  s.set_slot(1, 2);
  s.normalise();
  EXPECT_EQ(s.stage(0), 0);
  // Rows must be preserved by normalisation.
  EXPECT_EQ(s.row(0), 3);
  EXPECT_EQ(s.row(1), 2);
  EXPECT_GE(s.min_slot(), 0);
}

TEST_F(ScheduleTest, KernelDistanceDefinition1) {
  // u -> v with d=1; u in stage 1, v in stage 0 -> d_ker = 0.
  Loop loop("l");
  const NodeId u = loop.add_instr(Opcode::kIAdd);
  const NodeId v = loop.add_instr(Opcode::kIAdd);
  const std::size_t e = loop.add_reg_flow(u, v, 1);
  Schedule s(loop, mach, 4);
  s.set_slot(u, 5);  // stage 1
  s.set_slot(v, 2);  // stage 0
  EXPECT_EQ(s.kernel_distance(loop.dep(e)), 0);
  s.set_slot(v, 6);  // same stage as u
  EXPECT_EQ(s.kernel_distance(loop.dep(e)), 1);
}

TEST_F(ScheduleTest, SyncDelayDefinition2) {
  // sync(x,y) = row(x) - row(y) + lat(x) + C_reg_com.
  Loop loop("l");
  const NodeId x = loop.add_instr(Opcode::kIAdd);  // lat 1
  const NodeId y = loop.add_instr(Opcode::kIAdd);
  const std::size_t e = loop.add_reg_flow(x, y, 1);
  Schedule s(loop, mach, 8);
  s.set_slot(x, 7);
  s.set_slot(y, 0);
  EXPECT_EQ(s.sync_delay(loop.dep(e), cfg), 7 - 0 + 1 + 3);  // the paper's 11
  s.set_slot(x, 1);
  EXPECT_EQ(s.sync_delay(loop.dep(e), cfg), 1 - 0 + 1 + 3);  // TMS's 5
}

TEST_F(ScheduleTest, DepSetsRequireKernelDistance) {
  Loop loop("l");
  const NodeId a = loop.add_instr(Opcode::kIAdd);
  const NodeId b = loop.add_instr(Opcode::kIAdd);
  loop.add_reg_flow(a, b, 0);   // intra-iteration
  loop.add_reg_flow(b, b, 1);   // self, inter-thread
  Schedule s(loop, mach, 4);
  s.set_slot(a, 0);
  s.set_slot(b, 1);
  const auto regs = s.reg_dep_set();
  ASSERT_EQ(regs.size(), 1u);
  EXPECT_EQ(loop.dep(regs[0]).src, b);
}

TEST_F(ScheduleTest, MaxLiveSimpleChain) {
  const Loop loop = test::tiny_chain();  // load(3) -> fadd(2)
  Schedule s(loop, mach, 4);
  s.set_slot(0, 0);
  s.set_slot(1, 3);
  // Load's value live cycles 0..3 (rows 0,1,2,3), fadd result 1 cycle.
  EXPECT_GE(s.max_live(), 1);
  EXPECT_LE(s.max_live(), 2);
}

TEST_F(ScheduleTest, MaxLiveGrowsWithLifetime) {
  Loop loop("l");
  const NodeId u = loop.add_instr(Opcode::kIAdd);
  const NodeId v = loop.add_instr(Opcode::kIAdd);
  loop.add_reg_flow(u, v, 3);  // consumed 3 iterations later
  Schedule s(loop, mach, 2);
  s.set_slot(u, 0);
  s.set_slot(v, 1);
  // Lifetime 0..(1 + 3*2): spans > 3 IIs, so >= 3 copies live at once.
  EXPECT_GE(s.max_live(), 3);
}

TEST_F(ScheduleTest, ValidateCatchesViolation) {
  const Loop loop = test::tiny_chain();
  Schedule s(loop, mach, 4);
  s.set_slot(0, 0);
  s.set_slot(1, 1);  // load needs 3 cycles
  EXPECT_TRUE(s.validate().has_value());
  s.set_slot(1, 3);
  EXPECT_FALSE(s.validate().has_value());
}

TEST_F(ScheduleTest, ValidateHonoursDistance) {
  Loop loop("l");
  const NodeId u = loop.add_instr(Opcode::kFMul);  // lat 4
  const NodeId v = loop.add_instr(Opcode::kIAdd);
  loop.add_reg_flow(u, v, 1);
  Schedule s(loop, mach, 4);
  s.set_slot(u, 3);
  s.set_slot(v, 3);  // 3 >= 3 + 4 - 4*1 = 3: legal
  EXPECT_FALSE(s.validate().has_value());
  Schedule s2(loop, mach, 3);
  s2.set_slot(u, 3);
  s2.set_slot(v, 3);  // 3 >= 3 + 4 - 3 = 4: violated
  EXPECT_TRUE(s2.validate().has_value());
}

TEST_F(ScheduleTest, PreservedGapNonPositive) {
  // Consumer already issues after the producer's store completes.
  Loop loop("l");
  const NodeId x = loop.add_instr(Opcode::kStore);
  const NodeId y = loop.add_instr(Opcode::kLoad);
  const std::size_t e = loop.add_mem_flow(x, y, 1, 0.5);
  Schedule s(loop, mach, 8);
  s.set_slot(x, 0);
  s.set_slot(y, 5);  // gap = 0 - 5 + 1 < 0
  EXPECT_TRUE(s.preserved(loop.dep(e), {}, cfg));
}

TEST_F(ScheduleTest, PreservedByEarlierSync) {
  // Memory dep x(row 6, store) -> y(row 0, load): gap = 7.
  // Register dep u(row 5) -> v(row 0): sync = 5 - 0 + 1 + 3 = 9 >= 7,
  // u no later than x, v no later than y: preserved.
  Loop loop("l");
  const NodeId x = loop.add_instr(Opcode::kStore);
  const NodeId y = loop.add_instr(Opcode::kLoad);
  const NodeId u = loop.add_instr(Opcode::kIAdd);
  const NodeId v = loop.add_instr(Opcode::kIAdd);
  const std::size_t me = loop.add_mem_flow(x, y, 1, 0.9);
  const std::size_t re = loop.add_reg_flow(u, v, 1);
  Schedule s(loop, mach, 8);
  s.set_slot(x, 6);
  s.set_slot(y, 0);
  s.set_slot(u, 5);
  s.set_slot(v, 0);
  EXPECT_TRUE(s.preserved(loop.dep(me), {re}, cfg));
  // Weaker sync (u at row 1): sync = 1+1+3 = 5 < 7: not preserved.
  s.set_slot(u, 1);
  EXPECT_FALSE(s.preserved(loop.dep(me), {re}, cfg));
}

TEST_F(ScheduleTest, PreservedRequiresStallToReachConsumer) {
  Loop loop("l");
  const NodeId x = loop.add_instr(Opcode::kStore);
  const NodeId y = loop.add_instr(Opcode::kLoad);
  const NodeId u = loop.add_instr(Opcode::kIAdd);
  const NodeId v = loop.add_instr(Opcode::kIAdd);
  const std::size_t me = loop.add_mem_flow(x, y, 1, 0.9);
  const std::size_t re = loop.add_reg_flow(u, v, 1);
  Schedule s(loop, mach, 8);
  s.set_slot(x, 6);
  s.set_slot(y, 0);
  s.set_slot(u, 5);
  s.set_slot(v, 3);  // v issues after y: the stall does not delay y
  EXPECT_FALSE(s.preserved(loop.dep(me), {re}, cfg));
}

TEST_F(ScheduleTest, MisspecProbabilityFoldsNonPreserved) {
  Loop loop("l");
  const NodeId x = loop.add_instr(Opcode::kStore);
  const NodeId y = loop.add_instr(Opcode::kLoad);
  const NodeId x2 = loop.add_instr(Opcode::kStore);
  const NodeId y2 = loop.add_instr(Opcode::kLoad);
  loop.add_mem_flow(x, y, 1, 0.1);
  loop.add_mem_flow(x2, y2, 1, 0.2);
  Schedule s(loop, mach, 8);
  // Both not preserved (positive gaps, no register deps).
  s.set_slot(x, 6);
  s.set_slot(y, 0);
  s.set_slot(x2, 7);
  s.set_slot(y2, 1);
  EXPECT_NEAR(s.misspec_probability(cfg), 1.0 - 0.9 * 0.8, 1e-12);
}

}  // namespace
}  // namespace tms::sched
