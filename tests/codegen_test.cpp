#include <gtest/gtest.h>

#include "codegen/kernel_program.hpp"
#include "sched/sms.hpp"
#include "sched/tms.hpp"
#include "test_util.hpp"
#include "workloads/figure1.hpp"

namespace tms::codegen {
namespace {

class CodegenTest : public ::testing::Test {
 protected:
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
};

TEST_F(CodegenTest, OpsSortedByRowAndCoverAllNodes) {
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel fm = workloads::figure1_machine();
  const auto r = sched::sms_schedule(loop, fm);
  ASSERT_TRUE(r.has_value());
  const KernelProgram kp = lower_kernel(r->schedule, cfg);
  ASSERT_EQ(kp.ops.size(), static_cast<std::size_t>(loop.num_instrs()));
  for (std::size_t i = 1; i < kp.ops.size(); ++i) {
    EXPECT_LE(kp.ops[i - 1].row, kp.ops[i].row);
  }
  std::vector<bool> seen(kp.ops.size(), false);
  for (const KernelOp& op : kp.ops) {
    EXPECT_GE(op.row, 0);
    EXPECT_LT(op.row, kp.ii);
    EXPECT_GE(op.stage, 0);
    EXPECT_LT(op.stage, kp.stage_count);
    seen[static_cast<std::size_t>(op.node)] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST_F(CodegenTest, InputsAreExactlyInterThreadRegDeps) {
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel fm = workloads::figure1_machine();
  const auto r = sched::sms_schedule(loop, fm);
  ASSERT_TRUE(r.has_value());
  const KernelProgram kp = lower_kernel(r->schedule, cfg);
  EXPECT_EQ(kp.inputs.size(), r->schedule.reg_dep_set().size());
  for (const CrossThreadInput& in : kp.inputs) {
    EXPECT_GE(in.d_ker, 1);
    EXPECT_EQ(loop.dep(in.edge).src, in.producer);
    EXPECT_EQ(loop.dep(in.edge).dst, in.consumer);
  }
}

TEST_F(CodegenTest, RegOperandsMatchEdgeOrder) {
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel fm = workloads::figure1_machine();
  const auto r = sched::sms_schedule(loop, fm);
  ASSERT_TRUE(r.has_value());
  const KernelProgram kp = lower_kernel(r->schedule, cfg);
  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    std::vector<std::size_t> expected;
    for (const std::size_t ei : loop.in_edges(v)) {
      if (loop.dep(ei).is_register_flow()) expected.push_back(ei);
    }
    std::sort(expected.begin(), expected.end());
    const auto& got = kp.reg_operands[static_cast<std::size_t>(v)];
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].edge, expected[i]);
    }
  }
}

TEST_F(CodegenTest, StoreCountMatches) {
  const ir::Loop loop = test::tiny_doall();
  const auto r = sched::sms_schedule(loop, mach);
  ASSERT_TRUE(r.has_value());
  const KernelProgram kp = lower_kernel(r->schedule, cfg);
  EXPECT_EQ(kp.stores_per_iter, 1);
}

TEST_F(CodegenTest, CommPairsConsistentWithPlan) {
  for (std::uint64_t seed = 400; seed < 420; ++seed) {
    const ir::Loop loop = test::random_loop(seed);
    const auto r = sched::sms_schedule(loop, mach);
    ASSERT_TRUE(r.has_value());
    const KernelProgram kp = lower_kernel(r->schedule, cfg);
    const sched::CommPlan plan = sched::plan_communication(r->schedule);
    EXPECT_EQ(kp.comm_pairs_per_iter, plan.comm_pairs_per_iter);
    EXPECT_EQ(kp.copies_per_iter, plan.copies_per_iter);
  }
}

TEST_F(CodegenTest, MemInputsHaveKernelDistance) {
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel fm = workloads::figure1_machine();
  const auto r = sched::sms_schedule(loop, fm);
  ASSERT_TRUE(r.has_value());
  const KernelProgram kp = lower_kernel(r->schedule, cfg);
  // Exactly the schedule's cross-thread memory dependences are lowered
  // (the scheduler may legally turn some of Figure 1's three speculated
  // deps into intra-thread ones by splitting stages).
  EXPECT_EQ(kp.mem_inputs.size(), r->schedule.mem_dep_set().size());
  for (const CrossThreadInput& in : kp.mem_inputs) {
    EXPECT_GE(in.d_ker, 1);
  }
}

}  // namespace
}  // namespace tms::codegen
