// Tests for the observability layer: counter registry + catalog, trace
// buffer semantics, canonical export determinism, the --explain
// renderer, and the doc-sync contract against docs/OBSERVABILITY.md
// (both directions, with negative fixtures).
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/counters.hpp"
#include "obs/doc_sync.hpp"
#include "obs/explain.hpp"
#include "obs/flight.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "support/json.hpp"
#include "support/json_parse.hpp"

namespace tms {
namespace {

// ------------------------------------------------------------- counters

TEST(Counters, CatalogNamesAreUniqueAndDocumented) {
  const std::vector<obs::MetricInfo>& cat = obs::metric_catalog();
  ASSERT_FALSE(cat.empty());
  std::set<std::string> names;
  for (const obs::MetricInfo& m : cat) {
    EXPECT_TRUE(names.insert(m.name).second) << "duplicate metric name " << m.name;
    EXPECT_NE(std::string(m.unit), "") << m.name << " has no unit";
    EXPECT_NE(std::string(m.description), "") << m.name << " has no description";
    // Dotted lowercase names are the doc-sync extraction contract.
    EXPECT_NE(std::string(m.name).find('.'), std::string::npos) << m.name;
  }
}

TEST(Counters, SnapshotAlignsWithCatalogAndDeltas) {
  const obs::CountersSnapshot before = obs::counters_snapshot();
  obs::counters().sched_slots_tried.add(7);
  obs::counters().sim_squashes.add(2);
  obs::counters().sched_ii_minus_mii.record(5);
  const obs::CountersSnapshot after = obs::counters_snapshot();
  const obs::CountersSnapshot d = obs::snapshot_delta(before, after);
  EXPECT_EQ(d.value("sched.slots_tried"), 7u);
  EXPECT_EQ(d.value("sim.squashes"), 2u);
  EXPECT_EQ(d.value("driver.jobs"), 0u);
  EXPECT_EQ(d.value("no.such.metric"), 0u);

  std::size_t n_hist = 0;
  std::size_t n_time = 0;
  for (const obs::MetricInfo& m : obs::metric_catalog()) {
    n_hist += m.kind == obs::MetricKind::kHistogram ? 1 : 0;
    n_time += m.kind == obs::MetricKind::kTimeHistogram ? 1 : 0;
  }
  EXPECT_EQ(d.histograms.size(), n_hist);
  EXPECT_EQ(d.time_histograms.size(), n_time);
  EXPECT_EQ(d.time_histogram_sums_us.size(), n_time);
  EXPECT_EQ(d.counters.size(), obs::metric_catalog().size() - n_hist - n_time);
}

TEST(Counters, HistogramBuckets) {
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 3);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 4);
  EXPECT_EQ(obs::Histogram::bucket_of(7), 4);
  EXPECT_EQ(obs::Histogram::bucket_of(8), 5);
  EXPECT_EQ(obs::Histogram::bucket_of(31), 6);
  EXPECT_EQ(obs::Histogram::bucket_of(32), 7);
  EXPECT_EQ(obs::Histogram::bucket_of(1u << 20), 7);
  for (int b = 1; b < obs::Histogram::kBuckets; ++b) {
    EXPECT_EQ(obs::Histogram::bucket_of(obs::Histogram::bucket_floor(b)), b);
    EXPECT_EQ(obs::Histogram::bucket_of(obs::Histogram::bucket_floor(b) - 1), b - 1);
  }
}

TEST(Counters, JsonExportContainsEveryMetricInCatalogOrder) {
  const obs::CountersSnapshot s = obs::counters_snapshot();
  support::JsonWriter w;
  obs::write_counters_json(w, s);
  const std::string json = w.str();
  std::size_t last = 0;
  for (const obs::MetricInfo& m : obs::metric_catalog()) {
    if (m.kind != obs::MetricKind::kCounter) continue;  // histograms follow in their own objects
    const std::size_t pos = json.find("\"" + std::string(m.name) + "\"");
    ASSERT_NE(pos, std::string::npos) << m.name << " missing from JSON export";
    EXPECT_GT(pos, last) << m.name << " out of catalog order";
    last = pos;
  }
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"sched.ii_minus_mii\""), std::string::npos);
}

TEST(Counters, TimeHistogramBucketBoundaries) {
  // Bucket 0 is exactly 0us; bucket b >= 1 holds [2^(b-1), 2^b) us; the
  // last bucket is open-ended.
  EXPECT_EQ(obs::TimeHistogram::bucket_of_us(0), 0);
  EXPECT_EQ(obs::TimeHistogram::bucket_of_us(1), 1);
  EXPECT_EQ(obs::TimeHistogram::bucket_of_us(2), 2);
  EXPECT_EQ(obs::TimeHistogram::bucket_of_us(3), 2);
  EXPECT_EQ(obs::TimeHistogram::bucket_of_us(4), 3);
  EXPECT_EQ(obs::TimeHistogram::bucket_of_us(1000), 10);       // ~1ms
  EXPECT_EQ(obs::TimeHistogram::bucket_of_us(1000000), 20);    // ~1s
  EXPECT_EQ(obs::TimeHistogram::bucket_of_us(~0ULL), obs::TimeHistogram::kBuckets - 1);
  for (int b = 1; b < obs::TimeHistogram::kBuckets - 1; ++b) {
    EXPECT_EQ(obs::TimeHistogram::bucket_of_us(obs::TimeHistogram::bucket_floor_us(b)), b);
    EXPECT_EQ(obs::TimeHistogram::bucket_of_us(obs::TimeHistogram::bucket_floor_us(b) - 1),
              b - 1)
        << "floor of bucket " << b << " minus one must land in the bucket below";
    EXPECT_EQ(obs::TimeHistogram::bucket_floor_us(b), 1ULL << (b - 1));
  }
}

TEST(Counters, TimeHistogramRecordsCountAndExactSum) {
  obs::TimeHistogram h;
  h.record_us(0);
  h.record_us(1);
  h.record_us(100);
  h.record_us(1000000);
  const auto v = h.values();
  std::uint64_t total = 0;
  for (const std::uint64_t b : v) total += b;
  EXPECT_EQ(total, 4u);
  EXPECT_EQ(v[0], 1u);
  EXPECT_EQ(h.sum_us(), 1000101u) << "the sum must be exact, not bucket-approximated";
  h.reset();
  EXPECT_EQ(h.sum_us(), 0u);
}

TEST(Counters, TimeHistogramsAppearInSnapshotDeltaAndJson) {
  const obs::CountersSnapshot before = obs::counters_snapshot();
  obs::counters().serve_latency_schedule.record_us(150);
  obs::counters().serve_latency_schedule.record_us(2);
  const obs::CountersSnapshot d = obs::snapshot_delta(before, obs::counters_snapshot());
  EXPECT_EQ(d.time_histogram_count("serve.latency.schedule"), 2u);
  EXPECT_EQ(d.time_histogram_sum_us("serve.latency.schedule"), 152u);
  EXPECT_EQ(d.time_histogram_count("no.such.histogram"), 0u);

  support::JsonWriter w;
  obs::write_counters_json(w, d);
  const std::string json = w.str();
  EXPECT_NE(json.find("\"time_histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"serve.latency.schedule\""), std::string::npos);
  EXPECT_NE(json.find("\"sum_us\":152"), std::string::npos);
}

// ----------------------------------------------------------- prometheus

TEST(Prometheus, NamesAreSanitised) {
  EXPECT_EQ(obs::prometheus_name("serve.latency.queue_wait"), "tms_serve_latency_queue_wait");
  EXPECT_EQ(obs::prometheus_name("driver.jobs"), "tms_driver_jobs");
}

TEST(Prometheus, WriterPassesItsOwnLinter) {
  const obs::CountersSnapshot s = obs::counters_snapshot();
  const std::string text = obs::write_prometheus_text(s);
  const auto err = obs::lint_prometheus_text(text);
  EXPECT_FALSE(err.has_value()) << *err;
}

TEST(Prometheus, ExpositionCoversEveryMetricWithCorrectShapes) {
  const obs::CountersSnapshot before = obs::counters_snapshot();
  obs::counters().serve_latency_total.record_us(100);
  const obs::CountersSnapshot d = obs::snapshot_delta(before, obs::counters_snapshot());
  const std::string text = obs::write_prometheus_text(d);

  for (const obs::MetricInfo& m : obs::metric_catalog()) {
    const std::string pname = obs::prometheus_name(m.name);
    EXPECT_NE(text.find("# HELP " + pname + " "), std::string::npos) << pname;
    EXPECT_NE(text.find("# TYPE " + pname + " "), std::string::npos) << pname;
  }
  // Time histograms are exported in seconds: 100us lands in the le=128us
  // = 0.000128s bucket, every cumulative bucket above it is 1, and the
  // exact sum is 0.0001s.
  EXPECT_NE(text.find("# TYPE tms_serve_latency_total histogram"), std::string::npos);
  EXPECT_NE(text.find("tms_serve_latency_total_bucket{le=\"0.000128\"} 1"), std::string::npos);
  EXPECT_NE(text.find("tms_serve_latency_total_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("tms_serve_latency_total_sum 0.0001\n"), std::string::npos);
  EXPECT_NE(text.find("tms_serve_latency_total_count 1"), std::string::npos);
  // Count-valued histograms keep their integer inclusive bounds.
  EXPECT_NE(text.find("tms_sched_ii_minus_mii_bucket{le=\"0\"}"), std::string::npos);
  EXPECT_NE(text.find("tms_sched_ii_minus_mii_bucket{le=\"+Inf\"}"), std::string::npos);
}

TEST(Prometheus, LinterCatchesBrokenExpositions) {
  struct Case {
    const char* name;
    const char* text;
  };
  const std::vector<Case> cases = {
      {"sample before TYPE", "tms_x_bucket{le=\"+Inf\"} 1\n"},
      {"decreasing cumulative",
       "# HELP tms_h h\n# TYPE tms_h histogram\n"
       "tms_h_bucket{le=\"1\"} 2\ntms_h_bucket{le=\"2\"} 1\ntms_h_bucket{le=\"+Inf\"} 2\n"
       "tms_h_sum 3\ntms_h_count 2\n"},
      {"missing +Inf",
       "# HELP tms_h h\n# TYPE tms_h histogram\n"
       "tms_h_bucket{le=\"1\"} 1\ntms_h_sum 1\ntms_h_count 1\n"},
      {"le out of order",
       "# HELP tms_h h\n# TYPE tms_h histogram\n"
       "tms_h_bucket{le=\"2\"} 1\ntms_h_bucket{le=\"1\"} 1\ntms_h_bucket{le=\"+Inf\"} 1\n"
       "tms_h_sum 1\ntms_h_count 1\n"},
      {"count disagrees with +Inf",
       "# HELP tms_h h\n# TYPE tms_h histogram\n"
       "tms_h_bucket{le=\"1\"} 1\ntms_h_bucket{le=\"+Inf\"} 1\n"
       "tms_h_sum 1\ntms_h_count 5\n"},
      {"duplicate TYPE",
       "# HELP tms_c c\n# TYPE tms_c counter\ntms_c 1\n# TYPE tms_c counter\ntms_c 2\n"},
      {"interleaved metrics",
       "# HELP tms_a a\n# TYPE tms_a counter\ntms_a 1\n"
       "# HELP tms_b b\n# TYPE tms_b counter\ntms_b 1\ntms_a 2\n"},
      {"no trailing newline", "# HELP tms_c c\n# TYPE tms_c counter\ntms_c 1"},
  };
  for (const Case& c : cases) {
    EXPECT_TRUE(obs::lint_prometheus_text(c.text).has_value()) << "must reject: " << c.name;
  }
  // And a clean minimal exposition passes.
  const char* good =
      "# HELP tms_c c\n# TYPE tms_c counter\ntms_c 1\n"
      "# HELP tms_h h\n# TYPE tms_h histogram\n"
      "tms_h_bucket{le=\"1\"} 1\ntms_h_bucket{le=\"+Inf\"} 2\ntms_h_sum 3\ntms_h_count 2\n";
  const auto err = obs::lint_prometheus_text(good);
  EXPECT_FALSE(err.has_value()) << *err;
}

TEST(Prometheus, ShardedWriterLintsCleanWithOneHeaderPerMetric) {
  // The merged cluster exposition: one HELP/TYPE header per metric,
  // then one sample set per shard label. The linter's per-labelset
  // histogram blocks are exactly what makes this legal.
  obs::counters().serve_requests.add(1);
  obs::counters().serve_latency_total.record_us(100);
  const obs::CountersSnapshot s = obs::counters_snapshot();
  const std::string text = obs::write_prometheus_text_sharded(
      {{"router", s}, {"/tmp/b0.sock", s}, {"/tmp/b1.sock", s}});

  const auto err = obs::lint_prometheus_text(text);
  EXPECT_FALSE(err.has_value()) << *err;
  EXPECT_NE(text.find("shard=\"router\""), std::string::npos);
  EXPECT_NE(text.find("shard=\"/tmp/b0.sock\""), std::string::npos);
  EXPECT_NE(text.find("shard=\"/tmp/b1.sock\""), std::string::npos);
  // Every sample carries a shard label; headers appear exactly once.
  std::size_t help_total = 0;
  for (std::size_t at = text.find("# HELP tms_serve_requests ");
       at != std::string::npos; at = text.find("# HELP tms_serve_requests ", at + 1)) {
    ++help_total;
  }
  EXPECT_EQ(help_total, 1u);
}

TEST(Prometheus, LinterRejectsPerLabelsetHistogramViolationsInShardedDumps) {
  // A second shard restarting its le ladder is fine (different
  // labelset); the same shard emitting a second _sum is not.
  const char* good =
      "# HELP tms_h h\n# TYPE tms_h histogram\n"
      "tms_h_bucket{shard=\"a\",le=\"1\"} 1\ntms_h_bucket{shard=\"a\",le=\"+Inf\"} 1\n"
      "tms_h_sum{shard=\"a\"} 1\ntms_h_count{shard=\"a\"} 1\n"
      "tms_h_bucket{shard=\"b\",le=\"1\"} 2\ntms_h_bucket{shard=\"b\",le=\"+Inf\"} 2\n"
      "tms_h_sum{shard=\"b\"} 2\ntms_h_count{shard=\"b\"} 2\n";
  const auto ok = obs::lint_prometheus_text(good);
  EXPECT_FALSE(ok.has_value()) << *ok;

  const char* dup_sum =
      "# HELP tms_h h\n# TYPE tms_h histogram\n"
      "tms_h_bucket{shard=\"a\",le=\"+Inf\"} 1\n"
      "tms_h_sum{shard=\"a\"} 1\ntms_h_sum{shard=\"a\",extra=\"\"} 1\n"
      "tms_h_count{shard=\"a\"} 1\n";
  // Same labelset twice is a duplicate series; a *different* labelset's
  // sum lands in its own block and then fails for missing buckets.
  EXPECT_TRUE(obs::lint_prometheus_text(dup_sum).has_value());

  const char* le_backwards_within_shard =
      "# HELP tms_h h\n# TYPE tms_h histogram\n"
      "tms_h_bucket{shard=\"a\",le=\"2\"} 1\ntms_h_bucket{shard=\"a\",le=\"1\"} 1\n"
      "tms_h_bucket{shard=\"a\",le=\"+Inf\"} 1\n"
      "tms_h_sum{shard=\"a\"} 1\ntms_h_count{shard=\"a\"} 1\n";
  EXPECT_TRUE(obs::lint_prometheus_text(le_backwards_within_shard).has_value());
}

// ------------------------------------------------------- flight recorder

TEST(Flight, RingRetainsTheLastCapacityRecordsInSeqOrder) {
  obs::FlightRecorder rec(4);
  for (int i = 0; i < 6; ++i) {
    obs::FlightRecord r;
    obs::flight_copy(r.request_id, sizeof r.request_id, "req-" + std::to_string(i));
    r.t_total_us = i;
    rec.record(r);
  }
  EXPECT_EQ(rec.recorded(), 6u);
  EXPECT_EQ(rec.dropped(), 0u) << "uncontended writes never drop";
  const std::vector<obs::FlightRecord> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 1; i < snap.size(); ++i) EXPECT_LT(snap[i - 1].seq, snap[i].seq);
  EXPECT_STREQ(snap.back().request_id, "req-5");
  EXPECT_STREQ(snap.front().request_id, "req-2") << "oldest retained after wrap";
}

TEST(Flight, CopyTruncatesOverlongStringsWithTermination) {
  char buf[8];
  obs::flight_copy(buf, sizeof buf, "0123456789abcdef");
  EXPECT_STREQ(buf, "0123456");
  obs::flight_copy(buf, sizeof buf, "ok");
  EXPECT_STREQ(buf, "ok");
}

TEST(Flight, DumpIsCanonicalTmsdFlightV1Json) {
  obs::FlightRecorder rec(8);
  obs::FlightRecord r;
  r.trace_id = 0xABCULL;
  r.span_id = 0xDEFULL;
  obs::flight_copy(r.request_id, sizeof r.request_id, "fr-1");
  obs::flight_copy(r.scheduler, sizeof r.scheduler, "tms");
  obs::flight_copy(r.outcome, sizeof r.outcome, "ok");
  r.instrs = 5;
  r.ncore = 4;
  r.ii = 3;
  r.mii = 2;
  r.t_total_us = 123;
  rec.record(r);

  const std::string json = obs::flight_to_json(rec);
  const auto parsed = support::parse_json(json);
  const auto* v = std::get_if<support::JsonValue>(&parsed);
  ASSERT_NE(v, nullptr) << std::get<std::string>(parsed);
  const auto* schema = v->find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->as_string(), "tmsd-flight-v1");
  EXPECT_NE(v->find("capacity"), nullptr);
  EXPECT_NE(v->find("recorded"), nullptr);
  EXPECT_NE(v->find("dropped"), nullptr);
  const auto* records = v->find("records");
  ASSERT_NE(records, nullptr);
  // Trace ids render as 16-char lowercase hex, like the wire fields.
  EXPECT_NE(json.find("\"0000000000000abc\""), std::string::npos);
  EXPECT_NE(json.find("\"fr-1\""), std::string::npos);
}

TEST(Counters, SnapshotAccumulateIsBucketwiseExactAndResizesItsTarget) {
  // The cluster aggregation primitive: accumulating two shard deltas
  // into a default-constructed snapshot must equal one process having
  // observed all the traffic — exact counters, exact buckets, exact
  // sums. Deltas keep the test independent of whatever earlier tests
  // put in the process-wide registry.
  const obs::CountersSnapshot t0 = obs::counters_snapshot();
  obs::counters().serve_requests.add(3);
  obs::counters().serve_latency_total.record_us(5);
  obs::counters().serve_latency_total.record_us(1000);
  const obs::CountersSnapshot shard_a = obs::snapshot_delta(t0, obs::counters_snapshot());

  const obs::CountersSnapshot t1 = obs::counters_snapshot();
  obs::counters().serve_requests.add(4);
  obs::counters().serve_latency_total.record_us(5);
  obs::counters().sched_ii_minus_mii.record(2);
  const obs::CountersSnapshot shard_b = obs::snapshot_delta(t1, obs::counters_snapshot());

  obs::CountersSnapshot agg;  // starts empty: accumulate must shape it
  obs::snapshot_accumulate(agg, shard_a);
  obs::snapshot_accumulate(agg, shard_b);

  EXPECT_EQ(agg.value("serve.requests"), 7u);
  EXPECT_EQ(agg.time_histogram_count("serve.latency.total"), 3u);
  EXPECT_EQ(agg.time_histogram_sum_us("serve.latency.total"), 1010u);
  const auto buckets = agg.time_histogram("serve.latency.total");
  EXPECT_EQ(buckets[obs::TimeHistogram::bucket_of_us(5)], 2u);
  EXPECT_EQ(buckets[obs::TimeHistogram::bucket_of_us(1000)], 1u);
  // Count-shaped histograms merge the same way.
  const std::size_t hist_index = [] {
    std::size_t i = 0;
    for (const obs::MetricInfo& m : obs::metric_catalog()) {
      if (m.kind != obs::MetricKind::kHistogram) continue;
      if (std::string_view(m.name) == "sched.ii_minus_mii") return i;
      ++i;
    }
    return i;
  }();
  EXPECT_EQ(agg.histograms[hist_index][obs::Histogram::bucket_of(2)], 1u);
  EXPECT_EQ(agg.histogram_sums[hist_index], 2u);
}

TEST(Counters, SnapshotFromJsonRoundTripsExactly) {
  // What the router does per shard: parse the backend's STATS JSON back
  // into a snapshot. Round-tripping through write_counters_json must be
  // lossless for every vector.
  const obs::CountersSnapshot t0 = obs::counters_snapshot();
  obs::counters().serve_responses_ok.add(11);
  obs::counters().serve_queue_depth.record(3);
  obs::counters().serve_latency_schedule.record_us(42);
  const obs::CountersSnapshot s = obs::snapshot_delta(t0, obs::counters_snapshot());

  support::JsonWriter w;
  obs::write_counters_json(w, s);
  const auto parsed = support::parse_json(w.str());
  const auto* v = std::get_if<support::JsonValue>(&parsed);
  ASSERT_NE(v, nullptr) << std::get<std::string>(parsed);
  const obs::CountersSnapshot back = obs::snapshot_from_json(*v);

  EXPECT_EQ(back.counters, s.counters);
  EXPECT_EQ(back.histograms, s.histograms);
  EXPECT_EQ(back.histogram_sums, s.histogram_sums);
  EXPECT_EQ(back.time_histograms, s.time_histograms);
  EXPECT_EQ(back.time_histogram_sums_us, s.time_histogram_sums_us);
}

// ------------------------------------------------------------- doc-sync

std::string catalog_markdown_table(const char* skip = nullptr, const char* extra = nullptr) {
  std::string md = "| Metric | Unit | Description |\n|---|---|---|\n";
  for (const obs::MetricInfo& m : obs::metric_catalog()) {
    if (skip != nullptr && std::string(m.name) == skip) continue;
    md += "| `" + std::string(m.name) + "` | x | x |\n";
  }
  if (extra != nullptr) md += "| `" + std::string(extra) + "` | x | x |\n";
  return md;
}

TEST(DocSync, ExtractsBacktickedDottedFirstCells) {
  const std::string md =
      "# Title\n"
      "Some prose mentioning `driver.jobs` inline, which must NOT count.\n\n"
      "| Metric | Unit |\n"
      "|--------|------|\n"
      "| `sched.slots_tried` | slots |\n"
      "|   `sim.squashes`   | squashes |\n"
      "| not-a-metric | x |\n"
      "| `NotDotted` | x |\n";
  const std::vector<std::string> names = obs::documented_metric_names(md);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "sched.slots_tried");
  EXPECT_EQ(names[1], "sim.squashes");
}

TEST(DocSync, CompleteCatalogIsInSync) {
  const obs::DocSyncReport r = obs::check_counter_catalog(catalog_markdown_table());
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(DocSync, RemovedCounterIsReportedMissing) {
  // Negative fixture: the doc lacks one live metric.
  const obs::DocSyncReport r =
      obs::check_counter_catalog(catalog_markdown_table(/*skip=*/"sched.slots_tried"));
  ASSERT_EQ(r.missing.size(), 1u);
  EXPECT_EQ(r.missing[0], "sched.slots_tried");
  EXPECT_FALSE(r.ok());
}

TEST(DocSync, StaleDocumentedNameIsReported) {
  // Negative fixture: the doc names a metric that no longer exists.
  const obs::DocSyncReport r =
      obs::check_counter_catalog(catalog_markdown_table(nullptr, /*extra=*/"sched.retired_metric"));
  ASSERT_EQ(r.stale.size(), 1u);
  EXPECT_EQ(r.stale[0], "sched.retired_metric");
  EXPECT_FALSE(r.ok());
}

TEST(DocSync, LiveObservabilityDocMatchesRegistry) {
  // The real contract: docs/OBSERVABILITY.md's catalog table must match
  // the live registry exactly. This is the test that fails when a
  // counter is added, renamed, or removed without updating the docs.
  const std::string path = std::string(TMS_SOURCE_DIR) + "/docs/OBSERVABILITY.md";
  std::ifstream f(path);
  ASSERT_TRUE(f.good()) << "cannot open " << path;
  std::stringstream ss;
  ss << f.rdbuf();
  const obs::DocSyncReport r = obs::check_counter_catalog(ss.str());
  EXPECT_TRUE(r.ok()) << r.to_string();
}

// ---------------------------------------------------------------- trace

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::trace_compiled()) GTEST_SKIP() << "built with TMS_TRACE=0";
  }
  void TearDown() override { obs::trace_disable(); }
};

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  EXPECT_FALSE(obs::trace_on());
  TMS_TRACE_INSTANT("t", "nothing", obs::targ("k", 1));
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST_F(TraceTest, SpansAndInstantsAreRecordedWithArgs) {
  obs::trace_enable(64);
  {
    TMS_TRACE_SPAN(s, "cat", "outer");
    TMS_TRACE_SPAN_ARG(s, obs::targ("ii", 7), obs::targ("p", 0.25), obs::targ("why", "mrt"));
    TMS_TRACE_INSTANT("cat", "inner", obs::targ("n", std::size_t{3}));
  }
  const std::vector<obs::TraceEvent> evs = obs::trace_snapshot();
  ASSERT_EQ(evs.size(), 2u);
  // Arrival order: the instant fires before the span closes.
  EXPECT_STREQ(evs[0].name, "inner");
  EXPECT_EQ(evs[0].phase, 'i');
  EXPECT_STREQ(evs[1].name, "outer");
  EXPECT_EQ(evs[1].phase, 'X');
  ASSERT_EQ(evs[1].nargs, 3);
  EXPECT_STREQ(evs[1].args[0].key, "ii");
  EXPECT_EQ(evs[1].args[0].i, 7);
  EXPECT_EQ(evs[1].args[1].kind, obs::TraceArg::Kind::kDouble);
  EXPECT_STREQ(evs[1].args[2].s, "mrt");
  EXPECT_GE(evs[1].dur_us, 0);

  const std::string chrome = obs::trace_chrome_json();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"outer\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
}

TEST_F(TraceTest, FullBufferDropsNewEventsInsteadOfOverwriting) {
  obs::trace_enable(4);
  for (int i = 0; i < 10; ++i) {
    TMS_TRACE_INSTANT("t", "e", obs::targ("i", i));
  }
  EXPECT_EQ(obs::trace_event_count(), 4u);
  EXPECT_EQ(obs::trace_dropped(), 6u);
  // The retained prefix is the first four events, untouched.
  const std::vector<obs::TraceEvent> evs = obs::trace_snapshot();
  ASSERT_EQ(evs.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(evs[static_cast<std::size_t>(i)].args[0].i, i);
}

TEST_F(TraceTest, ScopedContextStampsAndRestores) {
  obs::trace_enable(64);
  {
    obs::ScopedContext outer(obs::kCtxJob, 5);
    TMS_TRACE_INSTANT("t", "a");
    {
      obs::ScopedContext inner(obs::kCtxExplain, 9);
      TMS_TRACE_INSTANT("t", "b");
    }
    TMS_TRACE_INSTANT("t", "c");
  }
  TMS_TRACE_INSTANT("t", "d");
  const std::vector<obs::TraceEvent> evs = obs::trace_snapshot();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs[0].ctx_phase, obs::kCtxJob);
  EXPECT_EQ(evs[0].ctx_item, 5);
  EXPECT_EQ(evs[0].seq, 0u);
  EXPECT_EQ(evs[1].ctx_phase, obs::kCtxExplain);
  EXPECT_EQ(evs[1].ctx_item, 9);
  EXPECT_EQ(evs[2].ctx_phase, obs::kCtxJob);
  EXPECT_EQ(evs[2].seq, 1u) << "inner context must not disturb the outer sequence";
  EXPECT_EQ(evs[3].ctx_phase, -1);
}

TEST_F(TraceTest, CanonicalExportSortsByLogicalPositionNotArrival) {
  obs::trace_enable(64);
  // Record contexts out of order, as parallel workers would.
  {
    obs::ScopedContext c(obs::kCtxJob, 2);
    TMS_TRACE_INSTANT("t", "job2.first");
  }
  {
    obs::ScopedContext c(obs::kCtxJob, 0);
    TMS_TRACE_INSTANT("t", "job0.first");
    TMS_TRACE_INSTANT("t", "job0.second");
  }
  const std::string canon = obs::trace_canonical_json();
  const std::size_t p0 = canon.find("job0.first");
  const std::size_t p1 = canon.find("job0.second");
  const std::size_t p2 = canon.find("job2.first");
  ASSERT_NE(p0, std::string::npos);
  ASSERT_NE(p1, std::string::npos);
  ASSERT_NE(p2, std::string::npos);
  EXPECT_LT(p0, p1);
  EXPECT_LT(p1, p2);
  // Volatile fields are absent from the canonical form.
  EXPECT_EQ(canon.find("\"ts\""), std::string::npos);
  EXPECT_EQ(canon.find("\"tid\""), std::string::npos);
}

TEST_F(TraceTest, ConcurrentWritersEachKeepTheirOwnSequence) {
  obs::trace_enable(1u << 12);
  std::vector<std::thread> threads;
  constexpr int kPerThread = 100;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      obs::ScopedContext ctx(obs::kCtxJob, t);
      for (int i = 0; i < kPerThread; ++i) {
        TMS_TRACE_INSTANT("t", "e", obs::targ("i", i));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(obs::trace_dropped(), 0u);
  const std::vector<obs::TraceEvent> evs = obs::trace_snapshot();
  ASSERT_EQ(evs.size(), 4u * kPerThread);
  // Within each context, sequence numbers are exactly 0..kPerThread-1.
  std::vector<std::set<std::uint32_t>> seqs(4);
  for (const obs::TraceEvent& e : evs) {
    ASSERT_GE(e.ctx_item, 0);
    ASSERT_LT(e.ctx_item, 4);
    EXPECT_TRUE(seqs[static_cast<std::size_t>(e.ctx_item)].insert(e.seq).second)
        << "duplicate seq in one context";
  }
  for (const auto& s : seqs) {
    EXPECT_EQ(s.size(), static_cast<std::size_t>(kPerThread));
    EXPECT_EQ(*s.rbegin(), static_cast<std::uint32_t>(kPerThread - 1));
  }
}

TEST_F(TraceTest, ResetKeepsArmedStateAndClearsEvents) {
  obs::trace_enable(8);
  TMS_TRACE_INSTANT("t", "before");
  ASSERT_EQ(obs::trace_event_count(), 1u);
  obs::trace_reset();
  EXPECT_TRUE(obs::trace_on());
  EXPECT_EQ(obs::trace_event_count(), 0u);
  TMS_TRACE_INSTANT("t", "after");
  const std::vector<obs::TraceEvent> evs = obs::trace_snapshot();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_STREQ(evs[0].name, "after");
}

TEST_F(TraceTest, InternReturnsStablePointers) {
  const char* a = obs::intern("loop_alpha");
  const char* b = obs::intern(std::string("loop_") + "alpha");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "loop_alpha");
}

// -------------------------------------------- distributed trace context

TEST(TraceIds, MintedIdsAreNonZeroAndUnique) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 4096; ++i) {
    const std::uint64_t id = obs::mint_id();
    EXPECT_NE(id, 0u) << "zero means 'no trace' on the wire";
    EXPECT_TRUE(seen.insert(id).second) << "minted ids must be process-unique";
  }
}

TEST_F(TraceTest, ScopedContextIsAdoptedByTheFirstSpanAndChildrenNest) {
  obs::trace_enable(64);
  const std::uint64_t remote_trace = obs::mint_id();
  const std::uint64_t remote_parent = obs::mint_id();
  std::uint64_t continuation = 0;
  {
    obs::ScopedTraceContext tctx(remote_trace, remote_parent);
    continuation = tctx.span_id();
    EXPECT_NE(continuation, 0u) << "pre-minted so it can be echoed before the span closes";
    TMS_TRACE_SPAN(s, "t", "serve.request");
    { TMS_TRACE_SPAN(c, "t", "serve.schedule"); }
  }
  const std::vector<obs::TraceEvent> evs = obs::trace_snapshot();
  ASSERT_EQ(evs.size(), 2u);
  // Spans close inside-out: the child lands first.
  EXPECT_STREQ(evs[0].name, "serve.schedule");
  EXPECT_EQ(evs[0].trace_id, remote_trace);
  EXPECT_EQ(evs[0].parent_span_id, continuation) << "children hang under the adopted span";
  EXPECT_STREQ(evs[1].name, "serve.request");
  EXPECT_EQ(evs[1].trace_id, remote_trace);
  EXPECT_EQ(evs[1].span_id, continuation) << "first span adopts the pre-minted id";
  EXPECT_EQ(evs[1].parent_span_id, remote_parent) << "stitched to the remote caller's span";
}

TEST_F(TraceTest, EmptyContextRecordsZeroIdsAndChromeJsonCarriesHex) {
  obs::trace_enable(64);
  {
    obs::ScopedTraceContext tctx(0, 0);
    EXPECT_EQ(tctx.span_id(), 0u);
    TMS_TRACE_SPAN(s, "t", "untraced");
  }
  {
    obs::ScopedTraceContext tctx(0x12abULL, 0);
    TMS_TRACE_SPAN(s, "t", "traced");
  }
  const std::vector<obs::TraceEvent> evs = obs::trace_snapshot();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].trace_id, 0u);
  EXPECT_EQ(evs[0].span_id, 0u);
  EXPECT_EQ(evs[1].trace_id, 0x12abULL);
  const std::string chrome = obs::trace_chrome_json();
  EXPECT_NE(chrome.find("00000000000012ab"), std::string::npos)
      << "chrome export must carry the hex ids for stitching";
  // The canonical form omits minted ids (they would break byte-identity).
  const std::string canonical = obs::trace_canonical_json();
  EXPECT_EQ(canonical.find("00000000000012ab"), std::string::npos);
}

// -------------------------------------------------------------- explain

obs::TraceEvent attempt_event(int ii, int c_delay, double p_max, bool feasible) {
  obs::TraceEvent e;
  e.cat = "sched";
  e.name = "tms.attempt";
  e.phase = 'X';
  e.nargs = 4;
  e.args[0] = obs::targ("ii", ii);
  e.args[1] = obs::targ("c_delay", c_delay);
  e.args[2] = obs::targ("p_max", p_max);
  e.args[3] = obs::targ("feasible", feasible ? 1 : 0);
  return e;
}

obs::TraceEvent reject_event(int node, const char* reason) {
  obs::TraceEvent e;
  e.cat = "sched";
  e.name = "slot.reject";
  e.phase = 'i';
  e.nargs = 3;
  e.args[0] = obs::targ("node", node);
  e.args[1] = obs::targ("row", 0);
  e.args[2] = obs::targ("reason", reason);
  return e;
}

TEST(Explain, RendersLadderTotalsHardestNodesAndResult) {
  obs::ExplainInput in;
  in.loop_name = "demo";
  in.scheduler = "tms";
  in.mii = 4;
  in.node_names = {"load_a", "mul", "store_b"};
  in.events.push_back(reject_event(1, "mrt"));
  in.events.push_back(reject_event(1, "c_delay"));
  in.events.push_back(reject_event(2, "c_delay"));
  in.events.push_back(attempt_event(4, 3, 0.1, false));
  in.events.push_back(reject_event(1, "p_max"));
  in.events.push_back(attempt_event(5, 6, 0.1, true));
  {
    obs::TraceEvent r;
    r.cat = "sched";
    r.name = "tms.result";
    r.phase = 'i';
    r.nargs = 4;
    r.args[0] = obs::targ("ii", 5);
    r.args[1] = obs::targ("c_delay", 2);
    r.args[2] = obs::targ("p_max", 0.1);
    r.args[3] = obs::targ("feasible", 1);
    in.events.push_back(r);
  }

  const std::string out = obs::render_tms_explain(in);
  EXPECT_NE(out.find("tms explain: demo"), std::string::npos);
  EXPECT_NE(out.find("MII = 4"), std::string::npos);
  EXPECT_NE(out.find("II = 4 (MII+0)"), std::string::npos);
  EXPECT_NE(out.find("II = 5 (MII+1)"), std::string::npos);
  EXPECT_NE(out.find("infeasible"), std::string::npos);
  EXPECT_NE(out.find("mrt=1"), std::string::npos);
  EXPECT_NE(out.find("c_delay=2"), std::string::npos);
  EXPECT_NE(out.find("2 threshold attempts"), std::string::npos);
  EXPECT_NE(out.find("mul"), std::string::npos);  // hardest node by name
  EXPECT_NE(out.find("schedule found at II = 5 (MII+1)"), std::string::npos);
}

TEST(Explain, EmptyTraceSaysSo) {
  obs::ExplainInput in;
  in.loop_name = "empty";
  in.mii = 1;
  const std::string out = obs::render_tms_explain(in);
  EXPECT_NE(out.find("no scheduling attempts recorded"), std::string::npos);
}

}  // namespace
}  // namespace tms
