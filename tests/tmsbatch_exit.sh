#!/usr/bin/env bash
# Regression test for the tmsbatch exit-code contract (docs/DRIVER.md):
#   0  every job compiled, validated, and (if requested) passed the oracle
#   1  any job failed, or an input could not be loaded
#   2  usage errors (bad flags, unknown scheduler names)
#
# Usage: tmsbatch_exit.sh TMSBATCH LOOPS_DIR
set -u

if [ "$#" -ne 2 ]; then
  echo "usage: $0 TMSBATCH LOOPS_DIR" >&2
  exit 2
fi
TMSBATCH=$1 LOOPS_DIR=$2

WORK=$(mktemp -d tmsbatch_exit.XXXXXX) || exit 1
trap 'rm -rf "$WORK"' EXIT

fail=0
expect() {  # expect WANT DESCRIPTION COMMAND...
  local want=$1 what=$2
  shift 2
  "$@" >"$WORK/out.txt" 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "tmsbatch_exit: FAIL: $what: exit $got (want $want)" >&2
    cat "$WORK/out.txt" >&2
    fail=1
  else
    echo "tmsbatch_exit: ok: $what (exit $got)"
  fi
}

# exit 0: a clean batch over real inputs, all schedulers.
expect 0 "all jobs ok" \
  "$TMSBATCH" "$LOOPS_DIR/dotprod.loop" --schedulers sms,ims,tms --quiet

# exit 1: an input that cannot be loaded fails the run.
printf 'loop broken\ninstr a iadd\nreg a a 0\n' >"$WORK/broken.loop"
expect 1 "malformed loop file" "$TMSBATCH" "$WORK/broken.loop" --quiet

# exit 1: a missing input file.
expect 1 "missing loop file" "$TMSBATCH" "$WORK/does_not_exist.loop" --quiet

# exit 2: usage errors never masquerade as job failures.
expect 2 "unknown scheduler" \
  "$TMSBATCH" "$LOOPS_DIR/dotprod.loop" --schedulers bogus --quiet
expect 2 "unknown flag" "$TMSBATCH" "$LOOPS_DIR/dotprod.loop" --wibble

exit "$fail"
